(* Benchmark & reproduction harness.

   Running [dune exec bench/main.exe] first regenerates every table and
   figure of the paper's evaluation (printed as aligned text tables),
   then runs one Bechamel micro-benchmark per experiment to time the
   machinery itself.

   [dune exec bench/main.exe -- <section>] runs a single section; see
   [usage] below. *)

open Regemu_bounds
open Regemu_harness

let pr_report r = Fmt.pr "%a@." Report.pp r

let table1 () =
  pr_report (Table1.report (Table1.compute ~seed:42 ()));
  Fmt.pr
    "shape check: max-register and CAS rows are 2f+1 and independent of k; \
     the register row grows with k and shrinks with n until kf+f+1.@.@."

let fig1 () =
  Fmt.pr "%s@." (Figures.figure1 ());
  pr_report (Theorems.load_balance ~k:5 ~f:2 ~n:6 ~rounds:2 ~seed:42)

let fig2 () =
  match Figures.figure2 ~f:2 () with
  | Ok s -> Fmt.pr "%s@." s
  | Error e -> Fmt.epr "figure2 failed: %s@." e

let lemma1 () =
  (match Theorems.lemma1 ~seed:42 () with
  | Ok r -> pr_report r
  | Error e -> Fmt.epr "lemma1 failed: %s@." e);
  match
    Regemu_adversary.Lowerbound.execute Regemu_core.Algorithm2.factory
      (Params.make_exn ~k:5 ~f:2 ~n:6) ~seed:42 ()
  with
  | Ok run ->
      Fmt.pr "Covering timeline (the staircase of the lower bound):@.%s@."
        (Timeline.render run.trace)
  | Error e -> Fmt.epr "timeline failed: %s@." e

let thm1 () =
  pr_report (Theorems.theorem1_sweep ~k:5 ~f:2 ());
  pr_report (Theorems.theorem1_sweep ~k:8 ~f:1 ())

let thm2 () = pr_report (Theorems.theorem2 ~ks:[ 1; 2; 4; 8; 16 ])

let thm5 () =
  match Theorems.theorem5 ~f:2 with
  | Ok s -> Fmt.pr "%s@." s
  | Error e -> Fmt.epr "theorem5 failed: %s@." e

let thm6 () =
  pr_report (Theorems.theorem6 ~k:4 ~f:2);
  match Theorems.theorem6_adversarial ~k:4 ~f:2 ~seed:42 with
  | Ok r -> pr_report r
  | Error e -> Fmt.epr "theorem6 adversarial failed: %s@." e

let inversion () =
  match Theorems.inversion () with
  | Ok s -> Fmt.pr "%s@." s
  | Error e -> Fmt.epr "inversion failed: %s@." e

let thm7 () =
  pr_report (Theorems.theorem7 ~k:6 ~f:2 ~capacities:[ 1; 2; 3; 4; 6; 12 ])

let thm8 () =
  match Theorems.theorem8 ~seed:42 () with
  | Ok r -> pr_report r
  | Error e -> Fmt.epr "theorem8 failed: %s@." e

let classification () =
  pr_report (Theorems.classification ~k:5 ~f:2 ~n:6)

let rspace () =
  pr_report
    (Theorems.reader_space ~k:3 ~f:1 ~n:5 ~readers_list:[ 0; 1; 2; 4; 8 ])

let latency () =
  let p = Params.make_exn ~k:3 ~f:1 ~n:5 in
  pr_report (Latency.report p (Latency.compute p ~rounds:2));
  let p' = Params.make_exn ~k:3 ~f:2 ~n:5 in
  pr_report (Latency.report p' (Latency.compute p' ~rounds:2))

let alg1 () =
  pr_report
    (Theorems.algorithm1_time ~writers_list:[ 1; 2; 4; 8 ] ~ops_per_writer:8
       ~seed:42);
  pr_report (Theorems.maxreg_comparison ~k:4 ~capacity:64 ~ops:6 ~seed:42)

let netabd () =
  pr_report (Wire.abd_messages ~fs:[ 1; 2; 3; 4 ] ~ops:6 ~seed:1);
  pr_report
    (Wire.alg2_messages
       ~configs:[ (1, 1, 3); (2, 1, 4); (3, 1, 5); (3, 2, 7) ]
       ~seed:3);
  match Wire.staircase ~k:5 ~f:2 ~n:6 ~seed:42 with
  | Ok r -> pr_report r
  | Error e -> Fmt.epr "wire staircase failed: %s@." e

let explore () =
  let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
  let show name factory =
    let r =
      Regemu_mcheck.Explore.run
        (Regemu_mcheck.Explore.emulation_scenario factory p
           ~mode:Regemu_mcheck.Explore.Sequential
           ~writer_ops:[ [ Regemu_objects.Value.Str "a" ] ]
           ~readers:1 ~reads_each:1 ())
        ~max_fired:2_000_000
    in
    Fmt.pr "%-12s %a@." name Regemu_mcheck.Explore.result_pp r
  in
  Fmt.pr
    "== Systematic exploration: one write + one read at (k=1,f=1,n=3), all \
     schedules ==@.";
  show "algorithm2" Regemu_core.Algorithm2.factory;
  show "abd-max" Regemu_baselines.Abd_max.factory;
  show "naive-reg" Regemu_baselines.Naive_reg.factory;
  Fmt.pr
    "(for two writers the same search finds the Figure 2 violation against \
     naive-reg; see `regemu explore --algo naive-reg --writes 2`)@.@."

let saturate () =
  (* a bounded cut of `regemu live --saturate` (the full sweep with
     median-of-3 reps is the Makefile's perf-bench target) *)
  let open Regemu_live in
  Fmt.pr
    "== Live-cluster saturation (bounded; see `make perf-bench` for the \
     tracked sweep) ==@.";
  List.iter
    (fun spec ->
      Fmt.pr "%a@." Live_bench.outcome_pp (Live_bench.run spec))
    (Live_bench.saturate_specs ~clients:[ 2; 8 ] ~ops_per_client:100 ~seed:42
       ())

let sections =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("fig2", fig2);
    ("lemma1", lemma1);
    ("thm1", thm1);
    ("thm2", thm2);
    ("thm5", thm5);
    ("thm6", thm6);
    ("inversion", inversion);
    ("thm7", thm7);
    ("thm8", thm8);
    ("alg1", alg1);
    ("latency", latency);
    ("classification", classification);
    ("rspace", rspace);
    ("netabd", netabd);
    ("explore", explore);
    ("saturate", saturate);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure.          *)

open Bechamel
open Toolkit

let fig1_params = Params.make_exn ~k:5 ~f:2 ~n:6

let seq_write_scenario factory =
  Staged.stage (fun () ->
      match
        Regemu_workload.Scenario.write_sequential factory fig1_params
          ~read_after_each:false ~rounds:1 ~seed:1 ()
      with
      | Ok _ -> ()
      | Error e ->
          failwith (Fmt.str "%a" Regemu_workload.Scenario.error_pp e))

let bench_tests =
  [
    (* Table 1: one full sequential round per emulation *)
    Test.make ~name:"table1/algorithm2"
      (seq_write_scenario Regemu_core.Algorithm2.factory);
    Test.make ~name:"table1/abd-max"
      (seq_write_scenario Regemu_baselines.Abd_max.factory);
    Test.make ~name:"table1/abd-cas"
      (seq_write_scenario Regemu_baselines.Abd_cas.factory);
    (* Figure 1: layout construction *)
    Test.make ~name:"fig1/layout-build"
      (Staged.stage (fun () ->
           let sim = Regemu_sim.Sim.create ~n:6 () in
           ignore (Regemu_core.Layout.build sim fig1_params)));
    (* Figure 2: the violating schedule *)
    Test.make ~name:"fig2/violation"
      (Staged.stage (fun () ->
           match Regemu_adversary.Violation.against_naive ~f:2 with
           | Ok _ -> ()
           | Error e -> failwith e));
    (* Lemma 1: a full adversarial construction *)
    Test.make ~name:"lemma1/adversarial-run"
      (Staged.stage (fun () ->
           match
             Regemu_adversary.Lowerbound.execute
               Regemu_core.Algorithm2.factory
               (Params.make_exn ~k:3 ~f:1 ~n:5)
               ~check_lemma2:false ~seed:1 ()
           with
           | Ok _ -> ()
           | Error e -> failwith e));
    (* Theorem 1: the bound sweep *)
    Test.make ~name:"thm1/bound-sweep"
      (Staged.stage (fun () ->
           ignore (Theorems.theorem1_sweep ~k:5 ~f:2 ())));
    (* Theorem 2: max-register collect read *)
    Test.make ~name:"thm2/reg-maxreg-ops"
      (Staged.stage (fun () ->
           let open Regemu_sim in
           let sim = Sim.create ~n:1 () in
           let writers = List.init 8 (fun _ -> Sim.new_client sim) in
           let m =
             Regemu_baselines.Reg_maxreg.create sim
               ~server:(Regemu_objects.Id.Server.of_int 0)
               ~writers
           in
           let policy = Policy.responds_first in
           List.iteri
             (fun i c ->
               ignore
                 (Driver.finish_call_exn sim policy ~budget:1_000
                    (Regemu_baselines.Reg_maxreg.write_max m c
                       (Regemu_objects.Value.Int i))))
             writers;
           ignore
             (Driver.finish_call_exn sim policy ~budget:1_000
                (Regemu_baselines.Reg_maxreg.read_max m (List.hd writers)))));
    (* Theorem 5: the partitioning schedule *)
    Test.make ~name:"thm5/partition"
      (Staged.stage (fun () ->
           match Regemu_adversary.Partition.impossibility ~f:2 with
           | Ok _ -> ()
           | Error e -> failwith e));
    (* New/old inversion construction + both brute-force checks *)
    Test.make ~name:"inversion/abd-max"
      (Staged.stage (fun () ->
           match Regemu_adversary.Inversion.against_abd_max () with
           | Ok _ -> ()
           | Error e -> failwith e));
    (* Theorem 6: per-server layout audit *)
    Test.make ~name:"thm6/per-server-audit"
      (Staged.stage (fun () -> ignore (Theorems.theorem6 ~k:4 ~f:2)));
    (* Theorem 7: capacity planning *)
    Test.make ~name:"thm7/min-servers"
      (Staged.stage (fun () ->
           ignore (Theorems.theorem7 ~k:6 ~f:2 ~capacities:[ 1; 2; 3; 6 ])));
    (* Theorem 8: contention-vs-usage run *)
    Test.make ~name:"thm8/non-adaptivity-run"
      (Staged.stage (fun () ->
           match
             Theorems.theorem8
               ~params:(Params.make_exn ~k:4 ~f:1 ~n:10)
               ~seed:1 ()
           with
           | Ok _ -> ()
           | Error e -> failwith e));
    (* reader-space and classification tables *)
    Test.make ~name:"rspace/table"
      (Staged.stage (fun () ->
           ignore
             (Theorems.reader_space ~k:3 ~f:1 ~n:5 ~readers_list:[ 0; 2; 4 ])));
    Test.make ~name:"classification/table"
      (Staged.stage (fun () ->
           ignore (Theorems.classification ~k:5 ~f:2 ~n:6)));
    (* Latency comparison *)
    Test.make ~name:"latency/compare"
      (Staged.stage (fun () ->
           ignore
             (Latency.compute (Params.make_exn ~k:2 ~f:1 ~n:4) ~rounds:1)));
    (* bounded exhaustive exploration of a tiny scenario *)
    Test.make ~name:"explore/tiny-exhaustive"
      (Staged.stage (fun () ->
           ignore
             (Regemu_mcheck.Explore.run
                (Regemu_mcheck.Explore.emulation_scenario
                   Regemu_baselines.Abd_max.factory
                   (Params.make_exn ~k:1 ~f:1 ~n:3)
                   ~mode:Regemu_mcheck.Explore.Sequential
                   ~writer_ops:[ [ Regemu_objects.Value.Int 1 ] ]
                   ~readers:0 ~reads_each:0 ())
                ~max_fired:100_000)));
    (* message-passing ABD round *)
    Test.make ~name:"netabd/write-read"
      (Staged.stage (fun () ->
           let net = Regemu_netsim.Net.create ~n:3 () in
           let abd = Regemu_netsim.Abd_net.create net ~f:1 () in
           let w = Regemu_netsim.Net.new_client net in
           let rng = Regemu_sim.Rng.create 1 in
           let call = Regemu_netsim.Abd_net.write abd w (Regemu_objects.Value.Int 1) in
           let rec go budget =
             if Regemu_netsim.Net.call_returned call || budget = 0 then ()
             else begin
               (match Regemu_netsim.Net.enabled net with
               | [] -> ()
               | evs ->
                   Regemu_netsim.Net.fire net (Regemu_sim.Rng.pick rng evs));
               go (budget - 1)
             end
           in
           go 10_000));
    (* Algorithm 1: CAS max-register under contention *)
    Test.make ~name:"alg1/cas-write-max"
      (Staged.stage (fun () ->
           ignore
             (Theorems.algorithm1_time ~writers_list:[ 4 ] ~ops_per_writer:4
                ~seed:1)));
  ]

(* the regemu-bench/1 schema documented in EXPERIMENTS.md: OLS
   ns-per-run estimate and r² per benchmark, per measure *)
let json_of_results results =
  let open Regemu_obs in
  let benchmarks = ref [] in
  Hashtbl.iter
    (fun measure per_test ->
      Hashtbl.iter
        (fun name ols ->
          let ns_per_run =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Json.Float e
            | Some [] | None -> Json.Null
          in
          let r_square =
            match Analyze.OLS.r_square ols with
            | Some r -> Json.Float r
            | None -> Json.Null
          in
          benchmarks :=
            Json.Obj
              [
                ("name", Json.Str name);
                ("measure", Json.Str measure);
                ("ns_per_run", ns_per_run);
                ("r_square", r_square);
              ]
            :: !benchmarks)
        per_test)
    results;
  let by_name a b =
    match (a, b) with
    | Json.Obj (("name", Json.Str x) :: _), Json.Obj (("name", Json.Str y) :: _)
      ->
        String.compare x y
    | _ -> 0
  in
  Json.Obj
    [
      ("schema", Json.Str "regemu-bench/1");
      ("benchmarks", Json.List (List.sort by_name !benchmarks));
    ]

let run_benchmarks ?json () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let tests = Test.make_grouped ~name:"regemu" ~fmt:"%s %s" bench_tests in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock);
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Fmt.pr "== Micro-benchmarks (monotonic clock per run) ==@.";
  Notty_unix.output_image (Notty_unix.eol img);
  match json with
  | None -> ()
  | Some path ->
      Regemu_obs.Json.to_file path (json_of_results results);
      Fmt.pr "wrote %s@." path

let usage () =
  Fmt.pr "usage: main.exe [all|bench|%s] [--json FILE]@."
    (String.concat "|" (List.map fst sections))

let () =
  (* peel off a trailing [--json FILE] before dispatching *)
  let argv = Array.to_list Sys.argv in
  let rec split acc = function
    | "--json" :: path :: rest -> (List.rev_append acc rest, Some path)
    | a :: rest -> split (a :: acc) rest
    | [] -> (List.rev acc, None)
  in
  let args, json = split [] argv in
  match args with
  | [ _ ] | [ _; "all" ] ->
      List.iter (fun (_, f) -> f ()) sections;
      run_benchmarks ?json ()
  | [ _; "bench" ] -> run_benchmarks ?json ()
  | [ _; name ] -> (
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None -> usage ())
  | _ -> usage ()

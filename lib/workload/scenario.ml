open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core
open Regemu_history

type result = {
  sim : Sim.t;
  instance : Emulation.instance;
  writers : Id.Client.t list;
  history : History.t;
  objects_used : int;
}

type error = { stage : string; outcome : Driver.outcome }

let error_pp ppf e =
  Fmt.pf ppf "stage %S did not complete: %a" e.stage Driver.outcome_pp
    e.outcome

let setup (factory : Emulation.factory) (p : Params.t) =
  let sim = Sim.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Sim.new_client sim) in
  let instance = factory.make sim p ~writers in
  (sim, instance, writers)

let value_for ~slot ~round = Value.Str (Fmt.str "w%d.r%d" slot round)

let finish ~stage sim policy ~budget call k =
  match Driver.finish_call sim policy ~budget call with
  | Ok _ -> k ()
  | Error outcome -> Error { stage; outcome }

let mk_result sim instance writers =
  {
    sim;
    instance;
    writers;
    history = History.of_trace (Sim.trace sim);
    objects_used = Id.Obj.Set.cardinal (Sim.used_objects sim);
  }

let write_sequential factory (p : Params.t) ?(read_after_each = false)
    ?(budget_per_op = 50_000) ?(policy = Policy.uniform) ~rounds ~seed () =
  let sim, instance, writers = setup factory p in
  let reader = Sim.new_client sim in
  let policy = policy (Rng.create seed) in
  let rec rounds_loop round =
    if round > rounds then Ok (mk_result sim instance writers)
    else
      let rec writers_loop slot = function
        | [] -> rounds_loop (round + 1)
        | w :: rest ->
            let call = instance.write w (value_for ~slot ~round) in
            finish
              ~stage:(Fmt.str "write slot=%d round=%d" slot round)
              sim policy ~budget:budget_per_op call (fun () ->
                if read_after_each then
                  let rd = instance.read reader in
                  finish
                    ~stage:(Fmt.str "read after slot=%d round=%d" slot round)
                    sim policy ~budget:budget_per_op rd (fun () ->
                      writers_loop (slot + 1) rest)
                else writers_loop (slot + 1) rest)
      in
      writers_loop 0 writers
  in
  rounds_loop 1

(* Crash a random correct server with probability 1/50 per step, while
   the crash budget lasts. *)
let maybe_crash sim rng ~crashes ~crashed =
  if !crashed < crashes && Rng.int rng ~bound:50 = 0 then begin
    let candidates =
      List.filter (fun s -> not (Sim.server_crashed sim s)) (Sim.servers sim)
    in
    if candidates <> [] then begin
      Sim.crash_server sim (Rng.pick rng candidates);
      incr crashed
    end
  end

let concurrent_reads factory (p : Params.t) ?(budget_per_op = 50_000)
    ?(policy = Policy.uniform) ~rounds ~readers ~crashes ~seed () =
  if crashes > p.f then invalid_arg "Scenario.concurrent_reads: crashes > f";
  let sim, instance, writers = setup factory p in
  let reader_clients = List.init readers (fun _ -> Sim.new_client sim) in
  let rng = Rng.create seed in
  let policy = policy (Rng.split rng) in
  let crashed = ref 0 in
  let read_calls = ref [] in
  let maybe_read () =
    if Rng.int rng ~bound:10 = 0 then
      match
        List.filter (fun c -> not (Sim.client_busy sim c)) reader_clients
      with
      | [] -> ()
      | idle -> read_calls := instance.read (Rng.pick rng idle) :: !read_calls
  in
  let drive_write stage call =
    let rec go budget =
      if Sim.call_returned call then Ok ()
      else if budget = 0 then Error { stage; outcome = Driver.Budget_exhausted }
      else begin
        maybe_crash sim rng ~crashes ~crashed;
        maybe_read ();
        if Driver.step sim policy then go (budget - 1)
        else Error { stage; outcome = Driver.Stuck }
      end
    in
    go budget_per_op
  in
  let rec rounds_loop round =
    if round > rounds then Ok ()
    else
      let rec writers_loop slot = function
        | [] -> rounds_loop (round + 1)
        | w :: rest -> (
            let call = instance.write w (value_for ~slot ~round) in
            match
              drive_write (Fmt.str "write slot=%d round=%d" slot round) call
            with
            | Ok () -> writers_loop (slot + 1) rest
            | Error e -> Error e)
      in
      writers_loop 0 writers
  in
  match rounds_loop 1 with
  | Error e -> Error e
  | Ok () -> (
      (* drain outstanding reads *)
      let all_done () = List.for_all Sim.call_returned !read_calls in
      match
        Driver.run_until sim policy
          ~budget:(budget_per_op * (1 + List.length !read_calls))
          all_done
      with
      | Driver.Satisfied -> Ok (mk_result sim instance writers)
      | outcome -> Error { stage = "drain reads"; outcome })

let chaos factory (p : Params.t) ?(budget_per_op = 50_000)
    ?(policy = Policy.uniform) ~writes_per_writer ~readers ~reads_per_reader
    ~crashes ~seed () =
  if crashes > p.f then invalid_arg "Scenario.chaos: crashes > f";
  let sim, instance, writers = setup factory p in
  let reader_clients = List.init readers (fun _ -> Sim.new_client sim) in
  let rng = Rng.create seed in
  let policy = policy (Rng.split rng) in
  let crashed = ref 0 in
  let remaining_writes =
    ref (List.concat_map (fun w -> List.init writes_per_writer (fun r -> (w, r))) writers)
  in
  let remaining_reads =
    ref
      (List.concat_map
         (fun c -> List.init reads_per_reader (fun _ -> c))
         reader_clients)
  in
  let calls = ref [] in
  let try_invoke () =
    let invocable_writes =
      List.filter (fun (w, _) -> not (Sim.client_busy sim w)) !remaining_writes
    in
    let invocable_reads =
      List.filter (fun c -> not (Sim.client_busy sim c)) !remaining_reads
    in
    match (invocable_writes, invocable_reads) with
    | [], [] -> false
    | ws, rs ->
        let pick_write = rs = [] || (ws <> [] && Rng.bool rng) in
        if pick_write then begin
          let ((w, r) as job) = Rng.pick rng ws in
          remaining_writes :=
            (* remove one occurrence *)
            (let removed = ref false in
             List.filter
               (fun j ->
                 if (not !removed) && j = job then begin
                   removed := true;
                   false
                 end
                 else true)
               !remaining_writes);
          calls :=
            instance.write w (value_for ~slot:(Id.Client.to_int w) ~round:r)
            :: !calls;
          true
        end
        else begin
          let c = Rng.pick rng rs in
          remaining_reads :=
            (let removed = ref false in
             List.filter
               (fun c' ->
                 if (not !removed) && Id.Client.equal c' c then begin
                   removed := true;
                   false
                 end
                 else true)
               !remaining_reads);
          calls := instance.read c :: !calls;
          true
        end
  in
  let total_ops =
    (List.length writers * writes_per_writer) + (readers * reads_per_reader)
  in
  let rec loop budget =
    let planned = !remaining_writes <> [] || !remaining_reads <> [] in
    let outstanding = List.exists (fun c -> not (Sim.call_returned c)) !calls in
    if (not planned) && not outstanding then
      Ok (mk_result sim instance writers)
    else if budget = 0 then
      Error { stage = "chaos"; outcome = Driver.Budget_exhausted }
    else begin
      maybe_crash sim rng ~crashes ~crashed;
      let invoked = if Rng.int rng ~bound:4 = 0 then try_invoke () else false in
      if invoked then loop (budget - 1)
      else if Driver.step sim policy then loop (budget - 1)
      else if try_invoke () then loop (budget - 1)
      else Error { stage = "chaos"; outcome = Driver.Stuck }
    end
  in
  loop (budget_per_op * Stdlib.max 1 total_ops)

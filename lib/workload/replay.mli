(** Schedule recording and replay.

    The simulator is deterministic: given the same initial system and
    the same sequence of fired events, it produces the identical trace.
    This module makes that property operational — {!recording} wraps a
    policy so the chosen events are logged, and {!replay} re-drives a
    fresh system following the log — and testable: the determinism
    check re-runs a scenario and compares traces entry by entry.

    Replay logs are also the debugging artifact: a violation found by
    the fuzzer can be replayed step by step on a fresh system. *)

open Regemu_sim

(** A recorded schedule: the events fired, in order. *)
type log

val length : log -> int
val events : log -> Sim.event list

(** [recording base] is a policy that behaves like [base] and a handle
    to the log of every event it chose. *)
val recording : Policy.t -> Policy.t * log

(** [replay sim log] fires the logged events on [sim].  The caller must
    have re-issued the same high-level invocations at the same points —
    for a run whose operations were all invoked before driving started,
    rebuilding the system and re-invoking suffices.  Fails with the
    position and event if one is not enabled, meaning [sim] was not
    prepared identically to the recorded system. *)
val replay : Sim.t -> log -> (unit, string) result

(** [same_trace run1 run2] executes both and compares their traces
    entry by entry — the end-to-end determinism check. *)
val same_trace : (unit -> Sim.t) -> (unit -> Sim.t) -> bool

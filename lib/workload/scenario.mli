(** Workload scenarios: reproducible end-to-end runs of an emulation
    under a schedule policy, with optional crash injection.

    Every scenario returns the {!result}: the simulator (for
    inspection), the extracted high-level history, and the measured
    resource consumption.  Scenarios never raise on liveness failures;
    they surface them as [Error] so tests can assert wait-freedom. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core
open Regemu_history

type result = {
  sim : Sim.t;
  instance : Emulation.instance;
  writers : Id.Client.t list;
  history : History.t;
  objects_used : int;
      (** distinct base objects triggered during the run *)
}

type error = {
  stage : string;  (** which operation failed to return *)
  outcome : Regemu_sim.Driver.outcome;
}

val error_pp : error Fmt.t

(** Fresh simulator with [p.n] servers, an instance of [factory], and
    [p.k] registered writer clients. *)
val setup :
  Emulation.factory -> Params.t -> Sim.t * Emulation.instance * Id.Client.t list

(** Distinct value written by writer [slot] in [round]. *)
val value_for : slot:int -> round:int -> Value.t

(** [write_sequential factory p ~rounds ~seed ()] runs
    [rounds * p.k] high-level writes, one at a time (writer 0, 1, ...,
    k-1, then round 2, ...), each driven to completion under a seeded
    policy ([Policy.uniform] unless [?policy] builds another, e.g.
    [Policy.procrastinating]).  With [~read_after_each:true] a
    dedicated reader client performs a (non-concurrent) read after
    every write — the histories WS-Safety constrains. *)
val write_sequential :
  Emulation.factory ->
  Params.t ->
  ?read_after_each:bool ->
  ?budget_per_op:int ->
  ?policy:(Rng.t -> Policy.t) ->
  rounds:int ->
  seed:int ->
  unit ->
  (result, error) Result.t

(** [concurrent_reads factory p ~rounds ~readers ~crashes ~seed ()]
    keeps the writes sequential (so WS-Regularity applies) while
    [readers] clients read concurrently at random moments, and
    [crashes <= p.f] randomly chosen servers crash at random times.
    All invoked operations are driven to completion (reads invoked
    while a write is in flight genuinely overlap it). *)
val concurrent_reads :
  Emulation.factory ->
  Params.t ->
  ?budget_per_op:int ->
  ?policy:(Rng.t -> Policy.t) ->
  rounds:int ->
  readers:int ->
  crashes:int ->
  seed:int ->
  unit ->
  (result, error) Result.t

(** Fully concurrent writes and reads — histories are generally not
    write-sequential (WS conditions are vacuous); used for liveness
    (wait-freedom) testing under contention and crashes. *)
val chaos :
  Emulation.factory ->
  Params.t ->
  ?budget_per_op:int ->
  ?policy:(Rng.t -> Policy.t) ->
  writes_per_writer:int ->
  readers:int ->
  reads_per_reader:int ->
  crashes:int ->
  seed:int ->
  unit ->
  (result, error) Result.t

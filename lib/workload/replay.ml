open Regemu_sim

type log = { mutable rev_events : Sim.event list }

let length l = List.length l.rev_events
let events l = List.rev l.rev_events

let recording (base : Policy.t) =
  let log = { rev_events = [] } in
  let policy =
    {
      Policy.name = base.name ^ "+recording";
      choose =
        (fun sim enabled ->
          match base.choose sim enabled with
          | Some ev ->
              log.rev_events <- ev :: log.rev_events;
              Some ev
          | None -> None);
    }
  in
  (policy, log)

let replay sim log =
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest ->
        if List.exists (Sim.event_equal ev) (Sim.enabled sim) then begin
          Sim.fire sim ev;
          go (i + 1) rest
        end
        else
          Error
            (Fmt.str "replay diverged at step %d: %a not enabled" i
               Sim.event_pp ev)
  in
  go 0 (events log)

let traces_equal a b =
  let la = Trace.to_list a and lb = Trace.to_list b in
  List.length la = List.length lb
  && List.for_all2
       (fun x y -> Fmt.str "%a" Trace.entry_pp x = Fmt.str "%a" Trace.entry_pp y)
       la lb

let same_trace run1 run2 =
  traces_equal (Sim.trace (run1 ())) (Sim.trace (run2 ()))

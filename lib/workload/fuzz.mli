(** Schedule fuzzing: run an emulation under many seeded random
    schedules (with crash injection) and tally checker verdicts.

    This is the falsification half of the test strategy: the paper's
    positive claims are asserted over fixed seeds in the test suite,
    and the fuzzer gives a cheap way to hunt for counterexamples with
    fresh randomness — for the shipped algorithms it should find none,
    and for the intentionally broken ones it may (the deterministic
    violations in [Regemu_adversary] are the guaranteed way). *)

open Regemu_bounds
open Regemu_core

type scenario =
  | Sequential  (** sequential writes, a read after each *)
  | Concurrent_reads  (** sequential writes, concurrent readers, crashes *)
  | Chaos  (** fully concurrent, crashes *)

val scenario_pp : scenario Fmt.t

type outcome = {
  runs : int;
  ws_safe_violations : int;
  ws_regular_violations : int;
  liveness_failures : int;
      (** runs where some operation failed to complete *)
  first_bad_seed : int option;
      (** seed of the first run with any violation or liveness failure *)
  first_bad_history : Regemu_history.History.t option;
      (** the first violating run's history, for inspection *)
}

val outcome_pp : outcome Fmt.t

(** [run factory p ~scenario ~runs ~seed] executes [runs] independent
    runs seeded [seed, seed+1, ...].  [?policy] selects the schedule
    policy per run (default [Policy.uniform]); pass
    [Policy.procrastinating] with moderate hold parameters to hunt for
    covering bugs — it finds the naive algorithm's Figure 2 violation
    in a handful of runs where uniform schedules never do. *)
val run :
  Emulation.factory ->
  Params.t ->
  ?policy:(Regemu_sim.Rng.t -> Regemu_sim.Policy.t) ->
  scenario:scenario ->
  runs:int ->
  seed:int ->
  unit ->
  outcome

open Regemu_bounds
open Regemu_history

type scenario = Sequential | Concurrent_reads | Chaos

let scenario_pp ppf = function
  | Sequential -> Fmt.string ppf "sequential"
  | Concurrent_reads -> Fmt.string ppf "concurrent-reads"
  | Chaos -> Fmt.string ppf "chaos"

type outcome = {
  runs : int;
  ws_safe_violations : int;
  ws_regular_violations : int;
  liveness_failures : int;
  first_bad_seed : int option;
  first_bad_history : Regemu_history.History.t option;
}

let outcome_pp ppf o =
  Fmt.pf ppf
    "%d runs: %d WS-Safe violations, %d WS-Regular violations, %d liveness \
     failures%a"
    o.runs o.ws_safe_violations o.ws_regular_violations o.liveness_failures
    Fmt.(option (fun ppf s -> Fmt.pf ppf " (first bad seed %d)" s))
    o.first_bad_seed

let one factory (p : Params.t) ~policy ~scenario ~seed =
  match scenario with
  | Sequential ->
      Scenario.write_sequential factory p ~read_after_each:true ~rounds:2
        ~policy ~seed ()
  | Concurrent_reads ->
      Scenario.concurrent_reads factory p ~rounds:2 ~readers:2
        ~crashes:(seed mod (p.f + 1))
        ~policy ~seed ()
  | Chaos ->
      Scenario.chaos factory p ~writes_per_writer:2 ~readers:2
        ~reads_per_reader:2
        ~crashes:(seed mod (p.f + 1))
        ~policy ~seed ()

let run factory p ?(policy = Regemu_sim.Policy.uniform) ~scenario ~runs ~seed
    () =
  let safe_v = ref 0 and reg_v = ref 0 and live_f = ref 0 in
  let first_bad = ref None in
  let first_history = ref None in
  for i = 0 to runs - 1 do
    let this_seed = seed + i in
    let bad ?history b =
      if b && !first_bad = None then begin
        first_bad := Some this_seed;
        first_history := history
      end
    in
    match one factory p ~policy ~scenario ~seed:this_seed with
    | Error _ ->
        incr live_f;
        bad true
    | Ok r ->
        let s_bad =
          match Ws_check.check_ws_safe r.history with
          | Ws_check.Violated _ -> true
          | Ws_check.Holds | Ws_check.Vacuous -> false
        in
        let r_bad =
          match Ws_check.check_ws_regular r.history with
          | Ws_check.Violated _ -> true
          | Ws_check.Holds | Ws_check.Vacuous -> false
        in
        if s_bad then incr safe_v;
        if r_bad then incr reg_v;
        bad ~history:r.history (s_bad || r_bad)
  done;
  {
    runs;
    ws_safe_violations = !safe_v;
    ws_regular_violations = !reg_v;
    liveness_failures = !live_f;
    first_bad_seed = !first_bad;
    first_bad_history = !first_history;
  }

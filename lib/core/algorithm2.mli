(** Algorithm 2 — the paper's upper-bound construction (Theorem 3).

    An [f]-tolerant, wait-free, WS-Regular [k]-register emulated from
    [kf + ceil(k/z)(f+1)] read/write registers laid out as in
    {!Layout}, where [z = floor((n-(f+1))/f)].

    Faithful to the pseudocode: a writer keeps per-writer state
    [(tsVal, wrSet, coverSet)] {e across} high-level writes.  On each
    write it re-covers the registers whose previous low-level writes
    are still pending ([coverSet <- R_j \ wrSet]) and triggers fresh
    writes only on the uncovered ones; when a covered register finally
    responds, the persistent response handler immediately re-triggers a
    write of the current [tsVal] (lines 29–34).  This discipline
    ensures a writer never has two of its own writes pending on one
    register and leaves at most [f] registers covered when a write
    returns — which is what defeats the adversarial environment of
    Definition 3 with only [f] spare registers per write quorum. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim

(** The factory; [expected_objects] is
    [Regemu_bounds.Formulas.register_upper_bound]. *)
val factory : Emulation.factory

(** Like [factory.make], but also returns the underlying {!Layout} for
    tests and experiments that inspect placement.  [build] defaults to
    {!Layout.build}; pass {!Layout.build_colocated} for the placement
    ablation. *)
val make_with_layout :
  ?build:(Sim.t -> Params.t -> Layout.t) ->
  Sim.t ->
  Params.t ->
  writers:Id.Client.t list ->
  Emulation.instance * Layout.t

(** The common interface of all register emulations, plus fiber-side
    helpers shared by the quorum-based algorithms.

    An {!instance} is a live emulated [k]-register wired to a simulator;
    a {!factory} knows how to build one.  The harness, the tests, and
    the lower-bound adversary are all generic over factories, so every
    algorithm (the paper's Algorithm 2 and all baselines) is driven by
    the same machinery. *)

open Regemu_objects
open Regemu_bounds
open Regemu_sim

type instance = {
  algo : string;
  kind : Base_object.kind;  (** base object type the emulation consumes *)
  params : Params.t;
  write : Id.Client.t -> Value.t -> Sim.call;
      (** invoke a high-level write; the client must be one of the [k]
          registered writers *)
  read : Id.Client.t -> Sim.call;
      (** invoke a high-level read; any client *)
  objects : unit -> Id.Obj.t list;  (** base objects allocated *)
}

type factory = {
  name : string;
  obj_kind : Base_object.kind;
  expected_objects : Params.t -> int;
      (** object count the construction promises (Table 1 row) *)
  make : Sim.t -> Params.t -> writers:Id.Client.t list -> instance;
      (** requires [Sim.num_servers sim = p.n] and
          [List.length writers = p.k] *)
}

(** [writer_slot writers c] is the 0-based position of [c] in the writer
    list.  Raises [Invalid_argument] if [c] is not a writer. *)
val writer_slot : Id.Client.t list -> Id.Client.t -> int

(** {2 Fiber-side helpers} *)

(** [collect sim ~client ~objects_on ~n ~f] is the [collect()] of
    Algorithm 2 (lines 20–26): trigger a read on every object of every
    server (a per-server {e scan}), wait until [n - f] scans complete
    (servers with no objects complete vacuously), and return the
    maximum response.  Must run inside a fiber. *)
val collect :
  Sim.t ->
  client:Id.Client.t ->
  objects_on:(Id.Server.t -> Id.Obj.t list) ->
  n:int ->
  f:int ->
  Value.t

(** [call_sync sim ~client b op] triggers [op] on [b] and blocks the
    fiber until the response arrives.  Only safe when [b]'s server
    cannot crash (used by the shared-memory constructions). *)
val call_sync :
  Sim.t -> client:Id.Client.t -> Id.Obj.t -> Base_object.op -> Value.t

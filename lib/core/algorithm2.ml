open Regemu_bounds
open Regemu_objects
open Regemu_sim

(* Per-writer state — a covering-discipline slot over the writer's
   register set R_{slot/z} — kept across high-level writes (the paper's
   State_i; rdSet lives inside each collect). *)

let write_body sim (p : Params.t) layout slot v () =
  let value =
    Emulation.collect sim
      ~client:(Quorum_write.client slot)
      ~objects_on:(Layout.objects_on layout) ~n:p.n ~f:p.f
  in
  let ts_val = Value.with_ts (Value.ts value + 1) v in
  let quorum = Array.length (Quorum_write.registers slot) - p.f in
  Quorum_write.submit sim slot ts_val ~quorum;
  Value.Unit

let read_body sim (p : Params.t) layout client () =
  let value =
    Emulation.collect sim ~client ~objects_on:(Layout.objects_on layout)
      ~n:p.n ~f:p.f
  in
  Value.payload value

let make_with_layout ?(build = Layout.build) sim (p : Params.t) ~writers =
  if List.length writers <> p.k then
    invalid_arg
      (Fmt.str "Algorithm2.make: expected %d writers, got %d" p.k
         (List.length writers));
  let layout = build sim p in
  let slots =
    List.mapi
      (fun slot c ->
        ( Id.Client.to_int c,
          Quorum_write.create c (Layout.set_for_slot layout ~slot) ))
      writers
  in
  let slot_of c =
    match List.assoc_opt (Id.Client.to_int c) slots with
    | Some st -> st
    | None ->
        invalid_arg
          (Fmt.str "Algorithm2.write: %a is not a registered writer"
             Id.Client.pp c)
  in
  let instance =
    {
      Emulation.algo = "algorithm2";
      kind = Base_object.Register;
      params = p;
      write =
        (fun c v ->
          let slot = slot_of c in
          Sim.invoke sim ~client:c (Trace.H_write v)
            (write_body sim p layout slot v));
      read =
        (fun c ->
          Sim.invoke sim ~client:c Trace.H_read (read_body sim p layout c));
      objects = (fun () -> Layout.all_objects layout);
    }
  in
  (instance, layout)

let factory =
  {
    Emulation.name = "algorithm2";
    obj_kind = Base_object.Register;
    expected_objects = Formulas.register_upper_bound;
    make = (fun sim p ~writers -> fst (make_with_layout sim p ~writers));
  }

open Regemu_objects
open Regemu_bounds
open Regemu_sim

type instance = {
  algo : string;
  kind : Base_object.kind;
  params : Params.t;
  write : Id.Client.t -> Value.t -> Sim.call;
  read : Id.Client.t -> Sim.call;
  objects : unit -> Id.Obj.t list;
}

type factory = {
  name : string;
  obj_kind : Base_object.kind;
  expected_objects : Params.t -> int;
  make : Sim.t -> Params.t -> writers:Id.Client.t list -> instance;
}

let writer_slot writers c =
  let rec go i = function
    | [] ->
        invalid_arg
          (Fmt.str "Emulation.writer_slot: %a is not a registered writer"
             Id.Client.pp c)
    | w :: rest -> if Id.Client.equal w c then i else go (i + 1) rest
  in
  go 0 writers

let collect sim ~client ~objects_on ~n ~f =
  let scans_done = ref 0 in
  let best = ref Value.v0 in
  List.iter
    (fun s ->
      match objects_on s with
      | [] -> incr scans_done
      | objs ->
          let remaining = ref (List.length objs) in
          List.iter
            (fun b ->
              ignore
                (Sim.trigger sim ~client b Base_object.Read
                   ~on_response:(fun v ->
                     best := Value.max !best v;
                     decr remaining;
                     if !remaining = 0 then incr scans_done)))
            objs)
    (Sim.servers sim);
  Sim.wait_until (fun () -> !scans_done >= n - f);
  !best

let call_sync sim ~client b op =
  let result = ref None in
  ignore
    (Sim.trigger sim ~client b op ~on_response:(fun v -> result := Some v));
  Sim.wait_until (fun () -> !result <> None);
  Option.get !result

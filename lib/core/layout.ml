open Regemu_objects
open Regemu_bounds
open Regemu_sim

type t = {
  params : Params.t;
  sets : Id.Obj.t array array;
  by_server : Id.Obj.t list array;
  sim : Sim.t;
}

let build_with ~placement sim (p : Params.t) =
  if Sim.num_servers sim <> p.n then
    invalid_arg
      (Fmt.str "Layout.build: sim has %d servers but params need %d"
         (Sim.num_servers sim) p.n);
  let sizes = Formulas.set_sizes p in
  let by_server = Array.make p.n [] in
  let sets =
    List.mapi
      (fun i size ->
        Array.init size (fun j ->
            let s = Id.Server.of_int (placement ~set:i ~index:j ~n:p.n) in
            let b = Sim.alloc sim ~server:s Base_object.Register in
            by_server.(Id.Server.to_int s) <-
              by_server.(Id.Server.to_int s) @ [ b ];
            b))
      sizes
    |> Array.of_list
  in
  { params = p; sets; by_server; sim }

(* register j of set i goes to server (i + j) mod n; sets are smaller
   than n, so servers within a set are pairwise distinct *)
let build sim p =
  build_with ~placement:(fun ~set ~index ~n -> (set + index) mod n) sim p

(* the ablation: two consecutive registers of a set share a server *)
let build_colocated sim p =
  build_with
    ~placement:(fun ~set:_ ~index ~n -> index / 2 mod n)
    sim p

let params t = t.params
let num_sets t = Array.length t.sets

let set t i =
  if i < 0 || i >= num_sets t then invalid_arg "Layout.set: no such set";
  t.sets.(i)

let set_index_for_slot t ~slot =
  let p = t.params in
  if slot < 0 || slot >= p.k then
    invalid_arg (Fmt.str "Layout.set_index_for_slot: slot %d not in [0,%d)"
                   slot p.k);
  slot / Formulas.z p

let set_for_slot t ~slot = t.sets.(set_index_for_slot t ~slot)
let all_objects t = Array.to_list t.sets |> List.concat_map Array.to_list
let objects_on t s = t.by_server.(Id.Server.to_int s)
let size t = Array.fold_left (fun acc s -> acc + Array.length s) 0 t.sets

let pp ppf t =
  let set_of b =
    let found = ref (-1) in
    Array.iteri
      (fun i s -> if Array.exists (Id.Obj.equal b) s then found := i)
      t.sets;
    !found
  in
  Array.iteri
    (fun si objs ->
      let cells =
        List.map (fun b -> Fmt.str "%a(R%d)" Id.Obj.pp b (set_of b)) objs
      in
      Fmt.pf ppf "%a: %s@." Id.Server.pp (Id.Server.of_int si)
        (String.concat " " cells))
    t.by_server

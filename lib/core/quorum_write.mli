(** The covering-discipline quorum write — Algorithm 2's lines 6–11 and
    29–34 as a reusable state machine.

    A {e slot} owns a fixed register set (one of the layout's [R_j])
    and submits timestamped values to it so that:

    - the slot never has two of its own writes pending on one register
      (a register still covered by the previous submission is queued
      and re-triggered by the persistent response handler);
    - each submission returns once [quorum] registers hold it;
    - at most [|set| - quorum] registers are left covered.

    Used by Algorithm 2 for writers, and by the reader-write-back
    variant ({!Regemu_baselines.Algorithm2_rwb}) for readers — the
    point being that {e any} client that must reliably store a value in
    fault-prone registers needs its own slot, which is why atomicity
    makes space grow with the number of readers too. *)

open Regemu_objects
open Regemu_sim

type t

(** [create client rset] — [rset] registers on pairwise distinct
    servers.  Initially everything counts as acknowledged. *)
val create : Id.Client.t -> Id.Obj.t array -> t

val client : t -> Id.Client.t
val registers : t -> Id.Obj.t array

(** The last submitted timestamped value ([<0, v0>] initially). *)
val current : t -> Value.t

(** [submit sim t v ~quorum] runs inside a fiber: adopts [v] as the
    slot's current value, triggers writes per the covering discipline,
    and blocks until [quorum] registers acknowledged [v]. *)
val submit : Sim.t -> t -> Value.t -> quorum:int -> unit

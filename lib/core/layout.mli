(** The register layout of the upper-bound construction (Section 3.3).

    For parameters [(k, f, n)], builds the collection
    [R = {R_0, ..., R_{m-1}}] of pairwise-disjoint register sets, where
    [z = floor((n-(f+1))/f)] writers share each set, full sets have
    [y = zf + f + 1] registers, and the overflow set (when [z] does not
    divide [k]) has [(k mod z) f + f + 1].  Every register of a set is
    mapped to a distinct server ([|delta(R_i)| = |R_i|]), registers are
    spread round-robin across servers (Figure 1 shows one such layout
    for [n=6, k=5, f=2]).

    The total number of registers is exactly
    [Formulas.register_upper_bound]. *)

open Regemu_objects
open Regemu_bounds
open Regemu_sim

type t

(** [build sim p] allocates all base registers on [sim]'s servers.
    Requires [Sim.num_servers sim = p.n]. *)
val build : Sim.t -> Params.t -> t

(** Ablation of the distinct-servers requirement: same set sizes, but
    every set's registers are packed onto as few servers as possible
    (server 0 first).  Violates [|delta(R_i)| = |R_i|]; a single crash
    can then take out several of a set's registers at once, so the
    construction is no longer [f]-tolerant — demonstrated in the test
    suite by a write blocking forever after one crash.  Never use this
    outside ablation experiments. *)
val build_colocated : Sim.t -> Params.t -> t

val params : t -> Params.t

(** Number of register sets [m = ceil(k/z)]. *)
val num_sets : t -> int

(** [set t i] is [R_i]. *)
val set : t -> int -> Id.Obj.t array

(** [set_index_for_slot t ~slot] is the index of the register set
    writer number [slot] (0-based) writes to: [slot / z]. *)
val set_index_for_slot : t -> slot:int -> int

val set_for_slot : t -> slot:int -> Id.Obj.t array

(** All registers of the layout, across all sets. *)
val all_objects : t -> Id.Obj.t list

(** Registers of the layout stored on a given server (the layout's
    [delta^-1({s})]). *)
val objects_on : t -> Id.Server.t -> Id.Obj.t list

(** Total register count; equals [Formulas.register_upper_bound]. *)
val size : t -> int

(** Render the register-to-server mapping as in Figure 1: one line per
    server listing the registers (and their set) stored on it. *)
val pp : t Fmt.t

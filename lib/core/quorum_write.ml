open Regemu_objects
open Regemu_sim

type t = {
  client : Id.Client.t;
  rset : Id.Obj.t array;
  mutable ts_val : Value.t;
  mutable wr_set : Id.Obj.Set.t;  (* responded, no pending write of ours *)
  mutable cover_set : Id.Obj.Set.t;  (* ours pending from an older submit *)
}

let create client rset =
  {
    client;
    rset;
    ts_val = Value.with_ts 0 Value.v0;
    wr_set = Id.Obj.set_of_list (Array.to_list rset);
    cover_set = Id.Obj.Set.empty;
  }

let client t = t.client
let registers t = t.rset
let current t = t.ts_val
let rset_set t = Id.Obj.set_of_list (Array.to_list t.rset)

(* Algorithm 2 lines 29–34: on a covered register's response, uncover
   and immediately re-trigger the current value; otherwise count the
   acknowledgement. *)
let rec on_response sim t b _ack =
  if Id.Obj.Set.mem b t.cover_set then begin
    t.cover_set <- Id.Obj.Set.remove b t.cover_set;
    trigger_write sim t b
  end
  else t.wr_set <- Id.Obj.Set.add b t.wr_set

and trigger_write sim t b =
  ignore
    (Sim.trigger sim ~client:t.client b (Base_object.Write t.ts_val)
       ~on_response:(on_response sim t b))

let submit sim t v ~quorum =
  if quorum > Array.length t.rset then
    invalid_arg "Quorum_write.submit: quorum larger than the register set";
  t.ts_val <- v;
  (* lines 6–10, atomic within the fiber *)
  t.cover_set <- Id.Obj.Set.diff (rset_set t) t.wr_set;
  t.wr_set <- Id.Obj.Set.empty;
  Array.iter
    (fun b ->
      if not (Id.Obj.Set.mem b t.cover_set) then trigger_write sim t b)
    t.rset;
  Sim.wait_until (fun () -> Id.Obj.Set.cardinal t.wr_set >= quorum)

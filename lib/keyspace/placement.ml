open Regemu_bounds

type t = { n : int; f : int; r : int }

let create ~n ~f =
  let r = Formulas.replicas_per_key ~f in
  if n < r then
    invalid_arg
      (Fmt.str "Placement.create: need n >= 2f+1 = %d servers, have %d" r n);
  { n; f; r }

let n t = t.n
let f t = t.f
let replicas_per_key t = t.r
let quorum t = t.f + 1

(* FNV-1a over the key's decimal digits: stable across processes,
   OCaml versions, and architectures (unlike Hashtbl.hash, which is
   seed- and version-dependent). *)
let hash key =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    (string_of_int key);
  (* keep 62 bits: [Int64.to_int] of a 63-bit value can wrap negative
     on OCaml's 63-bit native int *)
  Int64.to_int (Int64.logand !h 0x3FFF_FFFF_FFFF_FFFFL)

let replicas t key =
  let base = hash key mod t.n in
  List.init t.r (fun i -> (base + i) mod t.n)

let server_load t ~keys server =
  let count = ref 0 in
  for key = 0 to keys - 1 do
    if List.mem server (replicas t key) then incr count
  done;
  !count

open Regemu_objects
open Regemu_live
module Rng = Regemu_sim.Rng
module Clock = Regemu_obs.Clock

type config = {
  keys : int;
  zipf : float;
  arrival_rate : float;
  total_ops : int;
  window : int;
  write_fraction : float;
  seed : int;
}

let default_config =
  {
    keys = 1024;
    zipf = 0.99;
    arrival_rate = 2000.0;
    total_ops = 2000;
    window = 8;
    write_fraction = 0.5;
    seed = 1;
  }

type outcome = {
  issued : int;
  completed : int;
  failed : int;
  elapsed_s : float;
  ops_per_s : float;
  max_lateness_s : float;
}

let validate cfg =
  if cfg.keys < 1 then invalid_arg "Openload: keys must be >= 1";
  if cfg.arrival_rate <= 0.0 then
    invalid_arg "Openload: arrival_rate must be positive";
  if cfg.window < 1 then invalid_arg "Openload: window must be >= 1";
  if cfg.write_fraction < 0.0 || cfg.write_fraction > 1.0 then
    invalid_arg "Openload: write_fraction must be in [0, 1]";
  if cfg.total_ops < 0 then invalid_arg "Openload: total_ops must be >= 0"

(* everything about op [i] derives from (seed, i) alone: the stream is
   identical whatever worker runs it and whenever it runs *)
let op_rng cfg i = Rng.create ((cfg.seed * 0x9e3779b9) lxor (i * 0x85ebca6b))

let op_draws cfg i =
  let r = op_rng cfg i in
  let wdraw = Rng.int r ~bound:1_000_000 in
  let kdraw = Rng.int r ~bound:(1 lsl 30) in
  (float_of_int wdraw /. 1e6 < cfg.write_fraction, kdraw)

(* zipf(theta) over ranks 0..keys-1 via the cumulative-weight table;
   theta = 0 degenerates to uniform *)
let make_sampler cfg =
  let cum = Array.make cfg.keys 0.0 in
  let acc = ref 0.0 in
  for r = 0 to cfg.keys - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) cfg.zipf);
    cum.(r) <- !acc
  done;
  let total = cum.(cfg.keys - 1) in
  fun kdraw ->
    let u = float_of_int kdraw /. float_of_int (1 lsl 30) *. total in
    let lo = ref 0 and hi = ref (cfg.keys - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

let key_of_op cfg i =
  validate cfg;
  (make_sampler cfg) (snd (op_draws cfg i))

let is_write_op cfg i = fst (op_draws cfg i)

(* the Poisson arrival schedule: cumulative exponential gaps *)
let arrival_times cfg =
  let r = Rng.create (cfg.seed lxor 0x5deece66) in
  let t = ref 0.0 in
  Array.init cfg.total_ops (fun _ ->
      let u =
        (float_of_int (Rng.int r ~bound:(1 lsl 30)) +. 1.0)
        /. float_of_int ((1 lsl 30) + 1)
      in
      t := !t +. (-.Float.log u /. cfg.arrival_rate);
      !t)

let run ?sched ks cfg =
  validate cfg;
  let sample = make_sampler cfg in
  let arrivals = arrival_times cfg in
  let sleep s =
    match sched with
    | Some hook -> hook.Sched_hook.sleep s
    | None -> Thread.delay s
  in
  let next = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let max_late_ns = Atomic.make 0 in
  let first_error = Atomic.make None in
  let t0 = Clock.now_s () in
  let worker w () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= cfg.total_ops then continue := false
      else begin
        let target = arrivals.(i) in
        let rec pace () =
          let elapsed = Clock.now_s () -. t0 in
          if elapsed < target then begin
            sleep (Float.min 0.05 (target -. elapsed));
            pace ()
          end
          else elapsed
        in
        let started = pace () in
        let late_ns = int_of_float ((started -. target) *. 1e9) in
        let rec bump () =
          let cur = Atomic.get max_late_ns in
          if late_ns > cur then
            if not (Atomic.compare_and_set max_late_ns cur late_ns) then bump ()
        in
        bump ();
        let is_write, kdraw = op_draws cfg i in
        let key = sample kdraw in
        try
          if is_write then
            Kspace.write ks w ~key (Value.Str (Printf.sprintf "o%d" i))
          else ignore (Kspace.read ks w ~key)
        with
        | Cluster.Unavailable _ | Cluster.Timeout _ -> Atomic.incr failed
        | e ->
            ignore (Atomic.compare_and_set first_error None (Some e));
            continue := false
      end
    done
  in
  let workers = List.init cfg.window (fun _ -> Kspace.new_worker ks) in
  (match sched with
  | None ->
      let threads =
        List.map (fun w -> Thread.create (worker w) ()) workers
      in
      List.iter Thread.join threads
  | Some hook ->
      let live = Atomic.make cfg.window in
      List.iteri
        (fun i w ->
          hook.Sched_hook.spawn ~name:(Fmt.str "openload-%d" i) (fun () ->
              worker w ();
              Atomic.decr live))
        workers;
      hook.Sched_hook.suspend (fun () -> Atomic.get live = 0));
  (match Atomic.get first_error with Some e -> raise e | None -> ());
  let elapsed_s = Float.max (Clock.now_s () -. t0) 1e-9 in
  let failed = Atomic.get failed in
  let issued = cfg.total_ops in
  let completed = issued - failed in
  {
    issued;
    completed;
    failed;
    elapsed_s;
    ops_per_s = float_of_int completed /. elapsed_s;
    max_lateness_s = float_of_int (Atomic.get max_late_ns) *. 1e-9;
  }

(** Open-loop load: Poisson arrivals over a zipf key popularity.

    The closed-loop generator ({!Regemu_live.Load}) models N clients
    who each wait for their previous operation — offered load falls
    as latency rises, which is not how a population of millions of
    independent users behaves.  Here the arrival {e schedule} is fixed
    up front (Poisson process: exponential inter-arrival gaps at
    [arrival_rate], drawn from the seed) and a bounded pool of
    [window] workers executes operations at their scheduled times; a
    worker that falls behind executes late and the {e lateness} is
    reported, so saturation shows up as growing backlog instead of
    silently throttled load — the open-loop distinction.

    Everything about operation [i] — its arrival time, key (zipf over
    [keys], skew [zipf]; [0.0] is uniform), kind, and written value —
    is a pure function of [(seed, i)], independent of which worker
    runs it and of timing: two runs issue the identical op stream.

    Under a virtual scheduler ([?sched]) the workers are cooperative
    actors and all waiting is in virtual time. *)

type config = {
  keys : int;
  zipf : float;
  arrival_rate : float;  (** ops per second *)
  total_ops : int;
  window : int;  (** worker-pool size — the in-flight bound *)
  write_fraction : float;  (** of operations that are writes *)
  seed : int;
}

val default_config : config

type outcome = {
  issued : int;
  completed : int;
  failed : int;  (** ops that escaped with [Unavailable]/[Timeout] *)
  elapsed_s : float;
  ops_per_s : float;
  max_lateness_s : float;
      (** worst gap between an op's scheduled arrival and its start *)
}

(** Raises [Invalid_argument] on a non-positive [keys], [arrival_rate],
    [window], or a [write_fraction] outside [0, 1]. *)
val run : ?sched:Regemu_live.Sched_hook.t -> Kspace.t -> config -> outcome

(** The deterministic key of operation [i] — exposed so tests can
    assert the stream is seed-stable and zipf-shaped. *)
val key_of_op : config -> int -> int

(** Whether operation [i] is a write. *)
val is_write_op : config -> int -> bool

(** The keyspace: many per-key max-register emulations multiplexed
    over one live {!Regemu_live.Cluster}.

    Each key runs the ABD max-register protocol ([Kquery]/[Kupdate],
    the keyed twins of the single-register [Query]/[Update] in
    {!Regemu_netsim.Proto}) against the [2f+1] replicas {!Placement}
    assigns it, awaiting [f+1] replies per round.  All keys share the
    cluster's sharded transport lanes — a lane drain carries a batch
    of messages for {e many} keys — its retry/watchdog machinery, and
    its fault injectors; nothing per-key is spawned.

    Operations are recorded in a {!Klog} (bounded, trimmable), not the
    cluster's {!Regemu_live.Histlog}: open-loop runs are long, and the
    per-op history must be garbage-collectible by the checker.  An
    operation that fails with {!Regemu_live.Cluster.Unavailable} is
    {e aborted} in the log and the exception re-raised. *)

open Regemu_objects

type t

(** [create cluster ~f ?write_back_reads ()] — the cluster must
    already have [>= 2f+1] servers; placement spans {e all} its
    servers.  With [write_back_reads] (default off), a read performs
    the ABD write-back round, upgrading the key to atomicity at 2x
    read cost; WS-Regularity needs only the query round.

    Registers keyspace gauges in the cluster's sink:
    [keyspace.server_cells.total] / [.max] (resident per-key cells
    across/on servers) and [keyspace.klog.resident_bytes]. *)
val create : Regemu_live.Cluster.t -> f:int -> ?write_back_reads:bool -> unit -> t

val cluster : t -> Regemu_live.Cluster.t
val placement : t -> Placement.t
val klog : t -> Klog.t

type worker

(** A worker: one sequential stream of keyspace operations (a cluster
    client plus its {!Klog} writer).  The open-loop generator runs a
    bounded pool of these. *)
val new_worker : t -> worker

(** Wrap an existing cluster client as a worker — for harnesses (the
    chaos campaign) that own their clients.  Each wrap allocates a
    fresh {!Klog} writer; keep one worker per client. *)
val worker_of : t -> Regemu_live.Cluster.client -> worker

val worker_client : worker -> Regemu_live.Cluster.client

(** [write t w ~key v] writes [v] to [key]'s register: query-max round
    on the key's replicas, then update with timestamp +1. *)
val write : t -> worker -> key:int -> Value.t -> unit

(** [read t w ~key] reads [key]'s register (query-max round; optional
    write-back), returning the payload. *)
val read : t -> worker -> key:int -> Value.t

(** Max over servers of resident per-key cells, and their sum —
    polled by the gauges, asserted by the capacity tests. *)
val server_cells : t -> int * int

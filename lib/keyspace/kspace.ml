open Regemu_objects
open Regemu_live
open Regemu_netsim

type t = {
  cluster : Cluster.t;
  placement : Placement.t;
  f : int;
  write_back_reads : bool;
  klog : Klog.t;
}

type worker = { cl : Cluster.client; kw : Klog.writer }

let server_cells t =
  let n = Cluster.num_servers t.cluster in
  let mx = ref 0 and total = ref 0 in
  for s = 0 to n - 1 do
    let c = Cluster.server_num_keys t.cluster ~server:s in
    if c > !mx then mx := c;
    total := !total + c
  done;
  (!mx, !total)

let create cluster ~f ?(write_back_reads = false) () =
  let placement = Placement.create ~n:(Cluster.num_servers cluster) ~f in
  let t = { cluster; placement; f; write_back_reads; klog = Klog.create () } in
  let sink = Cluster.sink cluster in
  Sink.gauge_fn sink ~unit_:"cells"
    ~help:"per-key max-register cells resident across all servers"
    "keyspace.server_cells.total" (fun () -> snd (server_cells t));
  Sink.gauge_fn sink ~unit_:"cells"
    ~help:"per-key max-register cells on the fullest server"
    "keyspace.server_cells.max" (fun () -> fst (server_cells t));
  Sink.gauge_fn sink ~unit_:"bytes" ~help:"resident keyspace op log"
    "keyspace.klog.resident_bytes" (fun () -> Klog.approx_bytes t.klog);
  t

let cluster t = t.cluster
let placement t = t.placement
let klog t = t.klog

let new_worker t =
  let cl = Cluster.new_client t.cluster in
  { cl; kw = Klog.new_writer t.klog ~client:(Cluster.client_id cl) }

(* wrap an existing cluster client (a chaos-campaign thread that also
   runs single-register ops, say) as a keyspace worker *)
let worker_of t cl =
  { cl; kw = Klog.new_writer t.klog ~client:(Cluster.client_id cl) }

let worker_client w = w.cl

(* one per-key quorum round, the keyed twin of Abd_live.quorum_round:
   contact the key's replicas (all of them, or a health-biased hedged
   subset when the cluster has a hedge config), await f+1 replies.
   [rpc] retransmits lost requests and dedupes replies per rid, so
   keyed rounds survive drops exactly like single-register rounds. *)
let quorum_round t w ~key ~request ~fold ~init =
  let replicas = Placement.replicas t.placement key in
  let quorum = t.f + 1 in
  let count = ref 0 in
  let acc = ref init in
  Cluster.locked w.cl (fun () ->
      Cluster.rpc_quorum t.cluster ~src:w.cl ~quorum ~make:request
        ~handler:(fun reply ->
          acc := fold !acc reply;
          incr count)
        replicas);
  Cluster.await t.cluster w.cl ~need:(replicas, quorum) (fun () ->
      !count >= quorum);
  Cluster.locked w.cl (fun () -> !acc)

let query_max t w ~key =
  quorum_round t w ~key
    ~request:(fun rid -> Proto.Kquery { rid; key })
    ~init:Value.v0
    ~fold:(fun best reply ->
      match reply with
      | Proto.Kquery_reply { stored; _ } -> Value.max best stored
      | _ -> best)

let update t w ~key ts_val =
  ignore
    (quorum_round t w ~key
       ~request:(fun rid -> Proto.Kupdate { rid; key; proposed = ts_val })
       ~init:() ~fold:(fun () _ -> ()))

(* record the op in the klog; an Unavailable/Timeout escape aborts the
   cell (its effect may still land — the checker breaks the key) *)
let logged w ~key hop body =
  Cluster.begin_op w.cl;
  let ticket = Klog.invoke w.kw ~key hop in
  match body () with
  | v ->
      Klog.return ticket v;
      v
  | exception e ->
      Klog.abort ticket;
      raise e

let write t w ~key v =
  ignore
    (logged w ~key (Regemu_sim.Trace.H_write v) (fun () ->
         let latest = query_max t w ~key in
         update t w ~key (Value.with_ts (Value.ts latest + 1) v);
         Value.Unit))

let read t w ~key =
  logged w ~key Regemu_sim.Trace.H_read (fun () ->
      let latest = query_max t w ~key in
      if t.write_back_reads then update t w ~key latest;
      Value.payload latest)

(** Memory-bounded online WS-Regularity checker for a keyspace.

    The keyspace is many independent per-key max-register emulations,
    so consistency is checked {e per key}: each key's subhistory must
    be WS-Regular.  The checker consumes the {!Klog} incrementally and
    keeps, per key, only what future reads can still be compared
    against — not the key's whole history:

    - a {e window} of completed writes whose returns are at or above
      the GC frontier, plus
    - the single latest write settled below the frontier ([wlast] — the
      "latest preceding write" base any future read may still need),
      plus a sticky broken flag.

    {2 The frontier argument (settled means settled)}

    The frontier [F] is the least event tick any {e unconsumed}
    operation can carry: per worker it is the tick of the first
    unconsumed cell (or the clock read under that worker's lock when
    fully consumed — see {!Klog.poll_view}), and [F] is the minimum
    over workers.  Every operation consumed later is invoked at or
    after [F].  Hence:

    - A read is {e decided} only once its return tick is [<= F]: every
      write invoked before the read returned has then been consumed,
      so the admissible-value window of
      {!Regemu_history.Ws_check.check_read_ws_regular} is complete.
      Undecidable reads wait in a pending queue bounded by the
      in-flight window.
    - A write returning strictly below [F] is final in the key's write
      order (any later-consumed write is invoked at or after [F],
      strictly after this one returned) and can only ever serve a
      future read as "latest preceding write" if it is the {e newest}
      such write.  So the settle step folds all such writes into
      [wlast] and discards the rest — GC that never discards an answer
      a future read could need.  A violation injected {e after} a
      prefix is settled is therefore still caught: the stale value the
      fault resurrects conflicts with [wlast].

    Keys whose write order goes non-sequential (concurrent or aborted
    writes) turn sticky-broken: their later reads are vacuous, exactly
    as the closed-form check requires.

    {2 Sampled deep-checking}

    With [deep_sample = s > 0], keys with [Placement.hash key mod s =
    0] additionally retain their {e full} subhistory (capped; a key
    overflowing the cap is excluded and counted), and {!stop} runs the
    offline {!Regemu_history.Ws_check.check_ws_regular} on each,
    cross-checking the incremental verdicts — the tail-end audit that
    keeps the GC honest in every run, not just in tests. *)

type config = {
  interval_s : float;  (** poll pacing *)
  deep_sample : int;  (** deep-check 1 key in this many; 0 disables *)
  deep_cap : int;  (** max retained ops per deep-checked key *)
}

val default_config : config

type t

type violation = {
  v_key : int;
  v_detail : string;  (** pretty-printed first per-key violation *)
}

type result = {
  checks : int;  (** reads decided *)
  violations : int;  (** reads that failed their window check *)
  first_violation : violation option;
  broken_keys : int;  (** keys gone non-write-sequential (vacuous) *)
  settled_writes : int;  (** completed writes discarded by the GC *)
  pending_undecided : int;  (** reads never decided (quiescence gap) *)
  deep_keys : int;  (** keys deep-checked at {!stop} *)
  deep_evicted : int;  (** sampled keys over [deep_cap], excluded *)
  deep_mismatches : int;
      (** deep verdict Violated where incremental saw a clean
          write-sequential key — the GC-soundness alarm *)
  max_resident_ops : int;
      (** high-water mark of window + pending + deep cells — the
          bounded-memory claim, measured *)
}

(** Spawn the checker over [klog].  Gauges ([kchecker.resident_ops],
    [kchecker.keys], [kchecker.violations]) and the settled-prefix
    counter register in [sink]'s metrics registry. *)
val spawn :
  ?sched:Regemu_live.Sched_hook.t ->
  ?sink:Regemu_live.Sink.t ->
  ?config:config ->
  Klog.t ->
  t

(** Current decided-read count (monotone; test/progress use). *)
val checks : t -> int

(** Writes discarded by the settle GC so far — the regression tests
    read it mid-run to prove a prefix was GC'd {e before} a fault was
    injected. *)
val settled : t -> int

(** Violations seen so far. *)
val violations_so_far : t -> int

(** Resident window + pending + deep cells right now. *)
val resident_ops : t -> int

(** Stop polling, consume the log's tail, decide every decidable read,
    run the deep cross-checks, and report.  Call after the workers have
    quiesced (joined); reads still pending then are counted in
    [pending_undecided], never guessed at. *)
val stop : t -> result

open Regemu_objects
open Regemu_live
module History = Regemu_history.History
module Ws_check = Regemu_history.Ws_check

type config = {
  interval_s : float;
  deep_sample : int;
  deep_cap : int;
}

let default_config = { interval_s = 0.02; deep_sample = 64; deep_cap = 4096 }

(* a completed write on one key, as the window retains it *)
type wrec = { winv : int; wret : int; wval : Value.t }

type kstate = {
  mutable wlast : wrec option;  (* latest write settled below the frontier *)
  mutable window : wrec list;  (* completed writes, oldest first by winv *)
  mutable wcount : int;  (* List.length window *)
  mutable broken : bool;  (* non-write-sequential: reads are vacuous *)
}

(* a completed read waiting for the frontier to pass its return *)
type pread = { rkey : int; rinv : int; rret : int; rgot : Value.t }

(* full retained subhistory of a deep-sampled key *)
type deep = {
  mutable cells : (Id.Client.t * Klog.cell_view) list;  (* newest first *)
  mutable count : int;
  mutable evicted : bool;
}

type cursor = { cw : Klog.writer; mutable pos : int }

type violation = { v_key : int; v_detail : string }

type result = {
  checks : int;
  violations : int;
  first_violation : violation option;
  broken_keys : int;
  settled_writes : int;
  pending_undecided : int;
  deep_keys : int;
  deep_evicted : int;
  deep_mismatches : int;
  max_resident_ops : int;
}

type t = {
  klog : Klog.t;
  cfg : config;
  mutable cursors : cursor list;  (* refreshed as writers register *)
  keys : (int, kstate) Hashtbl.t;
  mutable pending : pread list;
  mutable pending_count : int;
  deeps : (int, deep) Hashtbl.t;
  mutable checks : int;
  mutable violations : int;
  mutable first_violation : violation option;
  mutable settled : int;
  mutable window_ops : int;  (* total wrecs across keys *)
  mutable deep_ops : int;  (* total retained deep cells *)
  mutable max_resident : int;
  mutable running : bool;
  mutable thread : Thread.t option;
  sched : Sched_hook.t option;
  settled_ctr : Sink.Metrics.counter;
}

let kstate t key =
  match Hashtbl.find_opt t.keys key with
  | Some s -> s
  | None ->
      let s = { wlast = None; window = []; wcount = 0; broken = false } in
      Hashtbl.add t.keys key s;
      s

let resident_ops t = t.window_ops + t.pending_count + t.deep_ops

(* --- the closed-form read check over the GC'd write list --------------- *)

let opc = Id.Client.of_int 0 (* client ids are irrelevant to the check *)

let op_of_wrec (w : wrec) =
  {
    History.index = 0;
    client = opc;
    hop = Regemu_sim.Trace.H_write w.wval;
    invoked_at = w.winv;
    returned_at = Some w.wret;
    result = Some Value.Unit;
  }

(* the write list a read on this key is checked against: the settled
   [wlast] (positions below it are excluded by it anyway) then the
   window, oldest first.  [v0] stays admissible only when no write at
   all has settled — exactly the full-history semantics, because any
   GC'd write returned before [wlast] did. *)
let write_ops ks =
  let tail = List.map op_of_wrec ks.window in
  match ks.wlast with Some w -> op_of_wrec w :: tail | None -> tail

let decide_read t (r : pread) =
  let ks = kstate t r.rkey in
  t.checks <- t.checks + 1;
  if not ks.broken then begin
    let rd =
      {
        History.index = 0;
        client = opc;
        hop = Regemu_sim.Trace.H_read;
        invoked_at = r.rinv;
        returned_at = Some r.rret;
        result = Some r.rgot;
      }
    in
    match Ws_check.check_read_ws_regular ~writes:(write_ops ks) rd with
    | None -> ()
    | Some viol ->
        t.violations <- t.violations + 1;
        if t.first_violation = None then
          t.first_violation <-
            Some
              {
                v_key = r.rkey;
                v_detail = Fmt.str "key %d: %a" r.rkey Ws_check.violation_pp viol;
              }
  end

(* --- write insertion and the settle step ------------------------------- *)

let break ks t =
  if not ks.broken then begin
    ks.broken <- true;
    (* a broken key keeps no window: its reads are vacuous forever *)
    t.window_ops <- t.window_ops - ks.wcount;
    ks.window <- [];
    ks.wcount <- 0
  end

(* insert a completed write, keeping [window] sorted by invocation and
   verifying the write order stays sequential (adjacent non-overlap is
   enough on a list sorted by invocation) *)
let insert_write t key (w : wrec) =
  let ks = kstate t key in
  if not ks.broken then begin
    (match ks.wlast with
    | Some last when w.winv < last.wret -> break ks t
    | _ -> ());
    if not ks.broken then begin
      (* [None] iff [w] overlaps a neighbour in invocation order — the
         key's writes are then concurrent, not sequential *)
      let rec ins = function
        | [] -> Some [ w ]
        | x :: rest when x.winv < w.winv ->
            if w.winv <= x.wret then None
            else Option.map (fun tail -> x :: tail) (ins rest)
        | x :: _ when x.winv = w.winv -> None
        | x :: _ when x.winv <= w.wret -> None
        | rest -> Some (w :: rest)
      in
      match ins ks.window with
      | Some nw ->
          ks.window <- nw;
          ks.wcount <- ks.wcount + 1;
          t.window_ops <- t.window_ops + 1
      | None -> break ks t
    end
  end

(* fold every window write returning strictly below the frontier into
   [wlast] — final in the write order, never again an admissible value
   for a future read except as the latest of them *)
let settle_key t ks ~frontier =
  if not ks.broken then begin
    let rec split = function
      | w :: rest when w.wret < frontier ->
          let settled, keep = split rest in
          (w :: settled, keep)
      | keep -> ([], keep)
    in
    let settled, keep = split ks.window in
    match settled with
    | [] -> ()
    | _ ->
        let n = List.length settled in
        let last = List.nth settled (n - 1) in
        ks.wlast <- Some last;
        ks.window <- keep;
        ks.wcount <- ks.wcount - n;
        t.window_ops <- t.window_ops - n;
        t.settled <- t.settled + n;
        Sink.Metrics.add t.settled_ctr n
  end

let settle_all t ~frontier =
  Hashtbl.iter (fun _ ks -> settle_key t ks ~frontier) t.keys

(* --- deep-sample retention --------------------------------------------- *)

let sampled t key =
  t.cfg.deep_sample > 0 && Placement.hash key mod t.cfg.deep_sample = 0

let retain_deep t client (c : Klog.cell_view) =
  let d =
    match Hashtbl.find_opt t.deeps c.k_key with
    | Some d -> d
    | None ->
        let d = { cells = []; count = 0; evicted = false } in
        Hashtbl.add t.deeps c.k_key d;
        d
  in
  if not d.evicted then
    if d.count >= t.cfg.deep_cap then begin
      d.evicted <- true;
      t.deep_ops <- t.deep_ops - d.count;
      d.cells <- [];
      d.count <- 0
    end
    else begin
      d.cells <- (client, c) :: d.cells;
      d.count <- d.count + 1;
      t.deep_ops <- t.deep_ops + 1
    end

(* --- one checker round -------------------------------------------------- *)

let refresh_cursors t =
  let known = List.map (fun c -> c.cw) t.cursors in
  let fresh =
    List.filter (fun w -> not (List.memq w known)) (Klog.writers t.klog)
  in
  t.cursors <-
    t.cursors @ List.map (fun w -> { cw = w; pos = 0 }) fresh

let consume t cur =
  let client = Klog.writer_client cur.cw in
  (* stage under the writer lock, process outside it *)
  let staged = ref [] in
  let view = Klog.poll cur.cw ~from:cur.pos (fun c -> staged := c :: !staged) in
  let cells = List.rev !staged in
  (* consume the contiguous completed prefix; stop at the first cell
     still in flight *)
  let frontier = ref view.Klog.clock in
  let stopped = ref false in
  List.iter
    (fun (c : Klog.cell_view) ->
      if not !stopped then
        match c.k_returned_at with
        | None ->
            stopped := true;
            frontier := c.k_invoked_at
        | Some ret ->
            cur.pos <- cur.pos + 1;
            if sampled t c.k_key then retain_deep t client c;
            if c.k_aborted then begin
              (* its effect may still land later: writes break the key,
                 reads constrain nothing *)
              if c.k_hop <> Regemu_sim.Trace.H_read then
                break (kstate t c.k_key) t
            end
            else begin
              match c.k_hop with
              | Regemu_sim.Trace.H_write v ->
                  insert_write t c.k_key
                    { winv = c.k_invoked_at; wret = ret; wval = v }
              | Regemu_sim.Trace.H_read ->
                  let got =
                    match c.k_result with Some v -> v | None -> Value.v0
                  in
                  t.pending <-
                    {
                      rkey = c.k_key;
                      rinv = c.k_invoked_at;
                      rret = ret;
                      rgot = got;
                    }
                    :: t.pending;
                  t.pending_count <- t.pending_count + 1
            end)
    cells;
  Klog.trim cur.cw ~upto:cur.pos;
  !frontier

let round t =
  refresh_cursors t;
  let frontier =
    List.fold_left (fun acc cur -> min acc (consume t cur)) max_int t.cursors
  in
  if frontier = max_int then ()
  else begin
    (* decide every read whose window is complete *)
    let decidable, still =
      List.partition (fun r -> r.rret <= frontier) t.pending
    in
    List.iter (decide_read t)
      (List.sort (fun a b -> Int.compare a.rinv b.rinv) decidable);
    t.pending <- still;
    t.pending_count <- List.length still;
    (* a write concurrent with a still-undecided read must stay in the
       window — its value is admissible for that read, so folding it
       into [wlast] would flag the read falsely.  Bound the GC below
       every pending invocation, not just the cursor frontier. *)
    let gc_frontier =
      List.fold_left (fun acc (r : pread) -> min acc r.rinv) frontier still
    in
    settle_all t ~frontier:gc_frontier
  end;
  let r = resident_ops t in
  if r > t.max_resident then t.max_resident <- r

let pause t =
  match t.sched with
  | Some hook -> hook.Sched_hook.sleep t.cfg.interval_s
  | None -> Thread.delay t.cfg.interval_s

let loop t =
  while t.running do
    pause t;
    if t.running then round t
  done

let spawn ?sched ?(sink = Sink.none) ?(config = default_config) klog =
  if config.interval_s <= 0.0 then
    invalid_arg "Kchecker.spawn: interval_s must be positive";
  if config.deep_sample < 0 || config.deep_cap < 1 then
    invalid_arg "Kchecker.spawn: bad deep-check configuration";
  let t =
    {
      klog;
      cfg = config;
      cursors = [];
      keys = Hashtbl.create 1024;
      pending = [];
      pending_count = 0;
      deeps = Hashtbl.create 64;
      checks = 0;
      violations = 0;
      first_violation = None;
      settled = 0;
      window_ops = 0;
      deep_ops = 0;
      max_resident = 0;
      running = true;
      thread = None;
      sched;
      settled_ctr =
        Sink.counter sink ~help:"writes discarded by the settle GC"
          "kchecker.settled";
    }
  in
  Sink.gauge_fn sink ~help:"resident checker state (window+pending+deep ops)"
    "kchecker.resident_ops" (fun () -> resident_ops t);
  Sink.gauge_fn sink ~help:"distinct keys with checker state" "kchecker.keys"
    (fun () -> Hashtbl.length t.keys);
  Sink.gauge_fn sink ~help:"per-key WS-Regularity violations seen"
    "kchecker.violations" (fun () -> t.violations);
  (match sched with
  | None -> t.thread <- Some (Thread.create loop t)
  | Some hook -> hook.Sched_hook.spawn ~name:"kchecker" (fun () -> loop t));
  t

let checks t = t.checks
let settled t = t.settled
let violations_so_far t = t.violations

(* --- the final deep cross-check ---------------------------------------- *)

let deep_history d =
  let cells =
    List.sort
      (fun (_, (a : Klog.cell_view)) (_, b) ->
        Int.compare a.k_invoked_at b.k_invoked_at)
      d.cells
  in
  List.mapi
    (fun index (client, (c : Klog.cell_view)) ->
      {
        History.index;
        client;
        hop = c.k_hop;
        invoked_at = c.k_invoked_at;
        (* an aborted op is pending in history terms: its effect has no
           return point *)
        returned_at = (if c.k_aborted then None else c.k_returned_at);
        result = (if c.k_aborted then None else c.k_result);
      })
    cells

let stop t =
  t.running <- false;
  Option.iter Thread.join t.thread;
  t.thread <- None;
  (* the workers are quiescent: one final round consumes the tail, and
     the frontier computed from idle writers decides everything
     decidable *)
  round t;
  round t;
  let deep_keys = ref 0 and deep_evicted = ref 0 and deep_mismatches = ref 0 in
  Hashtbl.iter
    (fun key d ->
      if d.evicted then incr deep_evicted
      else begin
        incr deep_keys;
        match Ws_check.check_ws_regular (deep_history d) with
        | Ws_check.Holds | Ws_check.Vacuous -> ()
        | Ws_check.Violated viol ->
            (* the offline pass found a violation the incremental
               checker must have seen too — unless the key was decided
               clean, which would mean the GC lost an answer *)
            let ks = kstate t key in
            if t.violations = 0 && not ks.broken then begin
              incr deep_mismatches;
              if t.first_violation = None then
                t.first_violation <-
                  Some
                    {
                      v_key = key;
                      v_detail =
                        Fmt.str "deep-check key %d: %a" key
                          Ws_check.violation_pp viol;
                    }
            end
      end)
    t.deeps;
  {
    checks = t.checks;
    violations = t.violations;
    first_violation = t.first_violation;
    broken_keys =
      Hashtbl.fold (fun _ ks acc -> if ks.broken then acc + 1 else acc) t.keys 0;
    settled_writes = t.settled;
    pending_undecided = t.pending_count;
    deep_keys = !deep_keys;
    deep_evicted = !deep_evicted;
    deep_mismatches = !deep_mismatches;
    max_resident_ops = t.max_resident;
  }

(** Key → replica-set placement.

    Each key of the keyspace is an independent [2f+1]-server
    max-register emulation (Table 1 of the paper: the max-register
    space bound is [2f+1] base objects, independent of the number of
    writers and of [n]).  The placement function picks {e which}
    [2f+1] servers hold a key's cells: a deterministic hash of the key
    chooses a base server, and the replica set is the [2f+1]
    consecutive servers from there — the keyed generalization of the
    Figure 1 round-robin layout in {!Regemu_core.Layout}, spreading
    cells evenly instead of piling every key on servers
    [0 .. 2f].

    The hash is FNV-1a over the key's decimal digits, {e not}
    [Hashtbl.hash]: placement must be identical across processes and
    OCaml versions (no hash-seed dependence), because two runs of the
    same experiment must place — and therefore load — identically. *)

type t

(** [create ~n ~f] validates [n >= 2f+1] (otherwise no replica set
    fits; raises [Invalid_argument]) and [f >= 1]. *)
val create : n:int -> f:int -> t

val n : t -> int
val f : t -> int

(** [2f+1]. *)
val replicas_per_key : t -> int

(** [f+1] — the quorum every per-key round awaits. *)
val quorum : t -> int

(** Deterministic non-negative hash of a key (FNV-1a, 63-bit). *)
val hash : int -> int

(** [replicas t key] is the key's replica set: [2f+1] distinct server
    ids, consecutive from [hash key mod n].  Any two quorums of
    [f+1] replicas of the same key intersect. *)
val replicas : t -> int -> int list

(** Expected number of distinct keys stored on [server] when [keys]
    keys [0 .. keys-1] are placed — exact count, by enumeration.
    O(keys); assertions and capacity tests only. *)
val server_load : t -> keys:int -> int -> int

open Regemu_live
module Json = Regemu_obs.Json

type spec = {
  algo : Live_bench.algo;
  n : int;
  f : int;
  keys : int;
  zipfs : float list;
  arrival_rate : float;
  total_ops : int;
  window : int;
  write_fraction : float;
  seed : int;
  deep_sample : int;
  budget_ops : int;
  backend : Transport.backend;
}

let default_spec =
  {
    algo = Live_bench.Abd;
    n = 7;
    f = 1;
    keys = 100_000;
    zipfs = [ 0.0; 0.99; 1.2 ];
    arrival_rate = 50_000.0;
    total_ops = 400_000;
    window = 16;
    write_fraction = 0.5;
    seed = 42;
    deep_sample = 512;
    budget_ops = 50_000;
    backend = Transport.Threads;
  }

let smoke_spec =
  {
    algo = Live_bench.Abd;
    n = 5;
    f = 1;
    keys = 128;
    zipfs = [ 0.0; 0.99; 1.2 ];
    arrival_rate = 20_000.0;
    total_ops = 600;
    window = 4;
    write_fraction = 0.5;
    seed = 7;
    deep_sample = 8;
    budget_ops = 4_096;
    backend = Transport.Threads;
  }

type skew_outcome = {
  zipf : float;
  ops_per_s : float;
  completed : int;
  failed : int;
  elapsed_s : float;
  max_lateness_s : float;
  checks : int;
  violations : int;
  settled_writes : int;
  max_resident_ops : int;
  within_budget : bool;
  server_cells_max : int;
  server_cells_total : int;
  deep_keys : int;
  deep_mismatches : int;
}

type outcome = { spec : spec; skews : skew_outcome list }

let run_skew ?(quiet = true) ?(sink = Sink.none) spec zipf =
  let cluster =
    let base = Cluster.default_config ~n:spec.n ~seed:spec.seed in
    Cluster.create ~sink
      {
        base with
        Cluster.transport =
          { base.Cluster.transport with Transport.backend = spec.backend };
      }
  in
  let ks = Kspace.create cluster ~f:spec.f () in
  Cluster.start cluster;
  let checker =
    Kchecker.spawn ~sink
      ~config:
        {
          Kchecker.interval_s = 0.005;
          deep_sample = spec.deep_sample;
          deep_cap = 4096;
        }
      (Kspace.klog ks)
  in
  let load =
    Openload.run ks
      {
        Openload.keys = spec.keys;
        zipf;
        arrival_rate = spec.arrival_rate;
        total_ops = spec.total_ops;
        window = spec.window;
        write_fraction = spec.write_fraction;
        seed = spec.seed;
      }
  in
  let chk = Kchecker.stop checker in
  let server_cells_max, server_cells_total = Kspace.server_cells ks in
  Cluster.shutdown cluster;
  let o =
    {
      zipf;
      ops_per_s = load.Openload.ops_per_s;
      completed = load.Openload.completed;
      failed = load.Openload.failed;
      elapsed_s = load.Openload.elapsed_s;
      max_lateness_s = load.Openload.max_lateness_s;
      checks = chk.Kchecker.checks;
      violations = chk.Kchecker.violations;
      settled_writes = chk.Kchecker.settled_writes;
      max_resident_ops = chk.Kchecker.max_resident_ops;
      within_budget = chk.Kchecker.max_resident_ops <= spec.budget_ops;
      server_cells_max;
      server_cells_total;
      deep_keys = chk.Kchecker.deep_keys;
      deep_mismatches = chk.Kchecker.deep_mismatches;
    }
  in
  if not quiet then
    Fmt.pr
      "zipf=%.2f: %.0f ops/s, %d completed, %d checks, %d violations, \
       resident<=%d (budget %d), cells max=%d total=%d@."
      zipf o.ops_per_s o.completed o.checks o.violations o.max_resident_ops
      spec.budget_ops server_cells_max server_cells_total;
  o

let run ?(quiet = true) ?(sink = Sink.none) spec =
  (* the keyspace's per-key quorum ops are the keyed ABD construction;
     other live algorithms have no keyed form (yet), so anything else
     is a spec error, not a silent fallback *)
  if spec.algo <> Live_bench.Abd then
    invalid_arg
      (Fmt.str "Kbench: the keyspace runs per-key %s quorums only (got %s)"
         (Live_bench.algo_name Live_bench.Abd)
         (Live_bench.algo_name spec.algo));
  { spec; skews = List.map (run_skew ~quiet ~sink spec) spec.zipfs }

let schema = "regemu-keyspace/1"

let spec_json s =
  Json.Obj
    [
      ("algo", Json.Str (Live_bench.algo_name s.algo));
      ("n", Json.Int s.n);
      ("f", Json.Int s.f);
      ("keys", Json.Int s.keys);
      ("arrival_rate", Json.Float s.arrival_rate);
      ("total_ops", Json.Int s.total_ops);
      ("window", Json.Int s.window);
      ("write_fraction", Json.Float s.write_fraction);
      ("seed", Json.Int s.seed);
      ("deep_sample", Json.Int s.deep_sample);
      ("budget_ops", Json.Int s.budget_ops);
      ("backend", Json.Str (Transport.backend_name s.backend));
    ]

let skew_json (o : skew_outcome) =
  Json.Obj
    [
      ("zipf", Json.Float o.zipf);
      ("ops_per_s", Json.Float o.ops_per_s);
      ("completed", Json.Int o.completed);
      ("failed", Json.Int o.failed);
      ("elapsed_s", Json.Float o.elapsed_s);
      ("max_lateness_s", Json.Float o.max_lateness_s);
      ("checks", Json.Int o.checks);
      ("violations", Json.Int o.violations);
      ("settled_writes", Json.Int o.settled_writes);
      ("max_resident_ops", Json.Int o.max_resident_ops);
      ("within_budget", Json.Bool o.within_budget);
      ("server_cells_max", Json.Int o.server_cells_max);
      ("server_cells_total", Json.Int o.server_cells_total);
      ("deep_keys", Json.Int o.deep_keys);
      ("deep_mismatches", Json.Int o.deep_mismatches);
    ]

let to_json o =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("spec", spec_json o.spec);
      ("skews", Json.List (List.map skew_json o.skews));
    ]

(* structural validation, PR 3 style: reject before persisting *)
let validate_keyspace_json doc =
  let ( let* ) = Result.bind in
  let err fmt = Fmt.kstr Result.error fmt in
  let* () =
    match Json.member "schema" doc with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> err "schema mismatch: %S, wanted %S" s schema
    | _ -> err "missing schema tag"
  in
  let* () =
    match Json.member "spec" doc with
    | Some (Json.Obj _ as s) -> (
        match
          ( Option.bind (Json.member "keys" s) Json.to_int_opt,
            Option.bind (Json.member "budget_ops" s) Json.to_int_opt )
        with
        | Some keys, Some budget when keys > 0 && budget > 0 -> (
            match
              Option.bind
                (Option.bind (Json.member "algo" s) Json.to_str_opt)
                Live_bench.algo_of_name
            with
            | Some _ -> Ok ()
            | None -> err "spec: missing or unknown algo")
        | _ -> err "spec: missing or non-positive keys/budget_ops")
    | _ -> err "missing spec object"
  in
  let* skews =
    match Option.bind (Json.member "skews" doc) Json.to_list_opt with
    | Some [] -> err "skews: empty"
    | Some l -> Ok l
    | None -> err "missing skews list"
  in
  let check_skew i sk =
    let int k = Option.bind (Json.member k sk) Json.to_int_opt in
    let flt k = Option.bind (Json.member k sk) Json.to_float_opt in
    let bol k = Option.bind (Json.member k sk) Json.to_bool_opt in
    match (flt "zipf", flt "ops_per_s", int "completed", int "checks") with
    | Some _, Some ops, Some completed, Some checks ->
        if ops < 0.0 || completed < 0 || checks < 0 then
          err "skews[%d]: negative measure" i
        else if int "violations" = None || int "max_resident_ops" = None then
          err "skews[%d]: missing checker fields" i
        else if bol "within_budget" = None then
          err "skews[%d]: missing within_budget" i
        else Ok ()
    | _ -> err "skews[%d]: missing zipf/ops_per_s/completed/checks" i
  in
  let rec go i = function
    | [] -> Ok ()
    | sk :: rest ->
        let* () = check_skew i sk in
        go (i + 1) rest
  in
  go 0 skews

let outcome_pp ppf o =
  Fmt.pf ppf "keyspace bench: n=%d f=%d keys=%d ops=%d window=%d" o.spec.n
    o.spec.f o.spec.keys o.spec.total_ops o.spec.window;
  List.iter
    (fun s ->
      Fmt.pf ppf
        "@.  zipf=%.2f  %8.0f ops/s  %d/%d ok  resident %d/%d %s  cells \
         max=%d total=%d  violations=%d"
        s.zipf s.ops_per_s s.completed (s.completed + s.failed)
        s.max_resident_ops o.spec.budget_ops
        (if s.within_budget then "(within budget)" else "(OVER BUDGET)")
        s.server_cells_max s.server_cells_total s.violations)
    o.skews

(** The keyspace benchmark: one open-loop run per zipf skew, emitting
    the [regemu-keyspace/1] JSON trajectory.

    Each skew gets a fresh cluster, keyspace, and memory-bounded
    checker; the outcome records throughput, per-key server space
    (max/total resident cells), checker verdicts, and the checker's
    resident high-water mark against the spec's fixed [budget_ops] —
    the measured form of the bounded-memory claim. *)

type spec = {
  algo : Regemu_live.Live_bench.algo;
      (** which emulation runs the per-key quorums; only [Abd] has a
          keyed form — {!run} rejects anything else *)
  n : int;
  f : int;
  keys : int;
  zipfs : float list;  (** one run per skew *)
  arrival_rate : float;
  total_ops : int;  (** per skew *)
  window : int;
  write_fraction : float;
  seed : int;
  deep_sample : int;
  budget_ops : int;  (** resident-op budget the checker must stay under *)
  backend : Regemu_live.Transport.backend;
      (** message fabric under each skew's cluster *)
}

val default_spec : spec

(** Small enough for [dune runtest]. *)
val smoke_spec : spec

type skew_outcome = {
  zipf : float;
  ops_per_s : float;
  completed : int;
  failed : int;
  elapsed_s : float;
  max_lateness_s : float;
  checks : int;
  violations : int;
  settled_writes : int;
  max_resident_ops : int;
  within_budget : bool;
  server_cells_max : int;
  server_cells_total : int;
  deep_keys : int;
  deep_mismatches : int;
}

type outcome = { spec : spec; skews : skew_outcome list }

(** One fresh cluster + keyspace + checker per skew; [quiet] silences
    the per-skew progress lines.  [sink] reaches each skew's cluster,
    keyspace gauges, and checker.  Raises [Invalid_argument] when
    [spec.algo] is not [Abd] (the only algorithm with a keyed form). *)
val run : ?quiet:bool -> ?sink:Regemu_live.Sink.t -> spec -> outcome

val schema : string
(** ["regemu-keyspace/1"] *)

val to_json : outcome -> Regemu_obs.Json.t

(** Structural check of a [regemu-keyspace/1] document — run before
    every write of BENCH_keyspace.json, so a malformed trajectory is
    rejected instead of persisted. *)
val validate_keyspace_json : Regemu_obs.Json.t -> (unit, string) result

val outcome_pp : outcome Fmt.t

(** Bounded per-worker operation log for keyspace runs.

    Plays {!Regemu_live.Histlog}'s role — per-client append-only
    chunked histories merged by one atomic event clock — with the two
    changes an open-loop run needs:

    - every cell names the {e key} it operated on, so the checker can
      demultiplex one log into per-key histories;
    - consumed prefixes can be {e trimmed} ({!trim}): once the online
      checker has consumed a chunk, its memory is released.  Resident
      size is O(in-flight window + polling lag), not O(ops) — the
      difference that lets a 10^6-op run hold a fixed memory budget.

    Because trimming frees history, there is no [snapshot]: the only
    consumer is the incremental checker.  An operation that fails
    ({!Regemu_live.Cluster.Unavailable}) is {e aborted}, not left
    pending: a forever-pending cell would pin every cursor behind it
    and stop the GC frontier.  The checker treats an aborted write as
    breaking its key's write-sequential order (its effect may still
    land later), which is sound.

    Event ticks are taken {e under the writer's lock}, so a poll of a
    writer observes a prefix closed under the tick order: any cell
    appended after the poll carries a tick [>= ] the {!poll_view}'s
    [clock] field.  The checker's GC frontier relies on exactly this. *)

open Regemu_objects
open Regemu_sim

type t
type writer
type ticket

val create : unit -> t
val new_writer : t -> client:Id.Client.t -> writer

(** Take an invocation ticket for an operation on [key]. *)
val invoke : writer -> key:int -> Trace.hop -> ticket

(** Complete a ticket with the operation's result. *)
val return : ticket -> Value.t -> unit

(** Mark a ticket as failed (the op escaped with [Unavailable]); the
    cell completes with no result and [k_aborted = true]. *)
val abort : ticket -> unit

val writers : t -> writer list
val writer_client : writer -> Id.Client.t

type cell_view = {
  k_key : int;
  k_hop : Trace.hop;
  k_invoked_at : int;
  k_returned_at : int option;
  k_result : Value.t option;
  k_aborted : bool;
}

type poll_view = {
  len : int;  (** writer length in {e absolute} positions, trims included *)
  clock : int;
      (** event clock read under the writer's lock: every future cell
          of this writer ticks at or above it *)
}

(** [poll w ~from f] visits cells at absolute positions [>= from]
    (oldest first, under the writer's lock; positions below the trim
    point are gone and silently skipped).  Callers keep cursors and
    must not ask for trimmed positions back. *)
val poll : writer -> from:int -> (cell_view -> unit) -> poll_view

(** [trim w ~upto] releases every chunk wholly below absolute position
    [upto].  Requires the caller to have consumed those positions. *)
val trim : writer -> upto:int -> unit

val invoked : t -> int

(** Completed cells, aborts included. *)
val completed : t -> int

val aborted : t -> int

(** Currently resident cells (whole chunks, all writers) — the
    quantity {!trim} keeps bounded. *)
val resident_cells : t -> int

val approx_bytes : t -> int

open Regemu_objects
open Regemu_sim

let chunk_size = 256

type cell = {
  key : int;
  hop : Trace.hop;
  invoked_at : int;
  mutable returned_at : int option;
  mutable result : Value.t option;
  mutable aborted : bool;
}

let hole =
  {
    key = 0;
    hop = Trace.H_read;
    invoked_at = 0;
    returned_at = None;
    result = None;
    aborted = false;
  }

type t = {
  m : Mutex.t;
  mutable ws : writer list;
  clock : int Atomic.t;
  n_invoked : int Atomic.t;
  n_completed : int Atomic.t;
  n_aborted : int Atomic.t;
}

and writer = {
  log : t;
  client : Id.Client.t;
  wm : Mutex.t;
  (* filled chunks newest first, each tagged with its absolute base
     position; trimmed chunks are simply absent *)
  mutable full : (int * cell array) list;
  mutable last : cell array;
  mutable last_base : int;
  mutable last_len : int;
}

type ticket = { tw : writer; cell : cell }

let create () =
  {
    m = Mutex.create ();
    ws = [];
    clock = Atomic.make 1;
    n_invoked = Atomic.make 0;
    n_completed = Atomic.make 0;
    n_aborted = Atomic.make 0;
  }

let new_writer t ~client =
  let w =
    {
      log = t;
      client;
      wm = Mutex.create ();
      full = [];
      last = Array.make chunk_size hole;
      last_base = 0;
      last_len = 0;
    }
  in
  Mutex.lock t.m;
  t.ws <- w :: t.ws;
  Mutex.unlock t.m;
  w

let invoke w ~key hop =
  let t = w.log in
  Mutex.lock w.wm;
  (* the tick is taken under [wm]: a poll of this writer bounds every
     future cell's tick from below (see the .mli's frontier contract) *)
  let cell =
    {
      key;
      hop;
      invoked_at = Atomic.fetch_and_add t.clock 1;
      returned_at = None;
      result = None;
      aborted = false;
    }
  in
  if w.last_len = chunk_size then begin
    w.full <- (w.last_base, w.last) :: w.full;
    w.last <- Array.make chunk_size hole;
    w.last_base <- w.last_base + chunk_size;
    w.last_len <- 0
  end;
  w.last.(w.last_len) <- cell;
  w.last_len <- w.last_len + 1;
  Mutex.unlock w.wm;
  Atomic.incr t.n_invoked;
  { tw = w; cell }

let return { tw; cell } v =
  let t = tw.log in
  Mutex.lock tw.wm;
  cell.returned_at <- Some (Atomic.fetch_and_add t.clock 1);
  cell.result <- Some v;
  Mutex.unlock tw.wm;
  Atomic.incr t.n_completed

let abort { tw; cell } =
  let t = tw.log in
  Mutex.lock tw.wm;
  cell.returned_at <- Some (Atomic.fetch_and_add t.clock 1);
  cell.aborted <- true;
  Mutex.unlock tw.wm;
  (* an aborted cell is complete — it never blocks a cursor *)
  Atomic.incr t.n_completed;
  Atomic.incr t.n_aborted

let writers t =
  Mutex.lock t.m;
  let ws = t.ws in
  Mutex.unlock t.m;
  ws

let writer_client w = w.client

type cell_view = {
  k_key : int;
  k_hop : Trace.hop;
  k_invoked_at : int;
  k_returned_at : int option;
  k_result : Value.t option;
  k_aborted : bool;
}

type poll_view = { len : int; clock : int }

let poll w ~from f =
  Mutex.lock w.wm;
  let visit base chunk upto =
    for i = 0 to upto - 1 do
      if base + i >= from then begin
        let c = chunk.(i) in
        f
          {
            k_key = c.key;
            k_hop = c.hop;
            k_invoked_at = c.invoked_at;
            k_returned_at = c.returned_at;
            k_result = c.result;
            k_aborted = c.aborted;
          }
      end
    done
  in
  List.iter
    (fun (base, chunk) ->
      if base + chunk_size > from then visit base chunk chunk_size)
    (List.rev w.full);
  visit w.last_base w.last w.last_len;
  let len = w.last_base + w.last_len in
  let clock = Atomic.get w.log.clock in
  Mutex.unlock w.wm;
  { len; clock }

let trim w ~upto =
  Mutex.lock w.wm;
  w.full <- List.filter (fun (base, _) -> base + chunk_size > upto) w.full;
  Mutex.unlock w.wm

let invoked t = Atomic.get t.n_invoked
let completed t = Atomic.get t.n_completed
let aborted t = Atomic.get t.n_aborted

let cell_bytes = 96

let resident_cells t =
  List.fold_left
    (fun acc w ->
      Mutex.lock w.wm;
      let n = (List.length w.full + 1) * chunk_size in
      Mutex.unlock w.wm;
      acc + n)
    0 (writers t)

let approx_bytes t = resident_cells t * cell_bytes

open Regemu_objects
open Regemu_sim

let coverage_curve tr =
  let pending : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let covered = ref 0 in
  let out = ref [] in
  let bump obj d =
    let key = Id.Obj.to_int obj in
    let before = Option.value ~default:0 (Hashtbl.find_opt pending key) in
    let after = before + d in
    Hashtbl.replace pending key after;
    if before = 0 && after > 0 then incr covered;
    if before > 0 && after = 0 then decr covered
  in
  Trace.iter
    (fun e ->
      (match e with
      | Trace.Trigger { obj; op = Base_object.Write _; _ } -> bump obj 1
      | Trace.Respond { obj; op = Base_object.Write _; _ } -> bump obj (-1)
      | Trace.Trigger _ | Trace.Respond _ | Trace.Invoke _ | Trace.Return _
      | Trace.Server_crash _ | Trace.Client_crash _ ->
          ());
      out := !covered :: !out)
    tr;
  List.rev !out

let render ?(width = 72) tr =
  let curve = Array.of_list (coverage_curve tr) in
  let len = Array.length curve in
  if len = 0 then "(empty trace)"
  else begin
    let peak = Array.fold_left Stdlib.max 1 curve in
    let sample i =
      (* max over the bucket so short spikes stay visible *)
      let lo = i * len / width and hi = ((i + 1) * len / width) - 1 in
      let hi = Stdlib.max lo (Stdlib.min hi (len - 1)) in
      let m = ref 0 in
      for j = lo to hi do
        if curve.(j) > !m then m := curve.(j)
      done;
      !m
    in
    let samples = List.init width sample in
    (* write-return markers *)
    let returns = ref [] in
    let t = ref 0 in
    Trace.iter
      (fun e ->
        incr t;
        match e with
        | Trace.Return (_, Trace.H_write _, _) -> returns := !t :: !returns
        | _ -> ())
      tr;
    let marker_row =
      String.init width (fun i ->
          let lo = i * len / width and hi = ((i + 1) * len / width) - 1 in
          if List.exists (fun r -> r - 1 >= lo && r - 1 <= hi) !returns then
            'W'
          else ' ')
    in
    let rows = Stdlib.min peak 12 in
    let b = Buffer.create 1024 in
    for row = rows downto 1 do
      let threshold = (row * peak + rows - 1) / rows in
      Buffer.add_string b (Fmt.str "%3d |" threshold);
      List.iter
        (fun v -> Buffer.add_char b (if v >= threshold then '#' else ' '))
        samples;
      Buffer.add_char b '\n'
    done;
    Buffer.add_string b ("    +" ^ String.make width '-' ^ "\n");
    Buffer.add_string b ("     " ^ marker_row ^ "\n");
    Buffer.add_string b
      (Fmt.str "     |Cov(t)| over %d actions; peak %d; W = write returns\n"
         len peak);
    Buffer.contents b
  end

open Regemu_bounds
open Regemu_history
open Regemu_core

type point = {
  params : Params.t;
  algo : string;
  seeds : int;
  lower_bound : int;
  upper_bound : int;
  objects_allocated : int;
  objects_used_mean : float;
  adversarial_cov_mean : float;
  write_latency_mean : float;
  read_latency_mean : float;
  all_safe : bool;
}

let default_grid =
  Params.grid ~ks:[ 1; 2; 4; 6 ] ~fs:[ 1; 2 ] ~ns:[ 3; 5; 7; 9; 13 ]

let mean = function
  | [] -> Float.nan
  | xs ->
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let latencies_of history =
  let of_ops ops =
    List.filter_map
      (fun (o : History.op) ->
        Option.map (fun r -> float_of_int (r - o.invoked_at)) o.returned_at)
      ops
  in
  (of_ops (History.writes history), of_ops (History.reads history))

let measure (factory : Emulation.factory) (p : Params.t) ~seeds ~lower =
  let used = ref [] in
  let cov = ref [] in
  let wlat = ref [] in
  let rlat = ref [] in
  let safe = ref true in
  let allocated = ref 0 in
  for seed = 1 to seeds do
    (match
       Regemu_workload.Scenario.write_sequential factory p
         ~read_after_each:true ~rounds:1 ~seed ()
     with
    | Error e ->
        failwith (Fmt.str "Sweep: %a" Regemu_workload.Scenario.error_pp e)
    | Ok r ->
        allocated := List.length (r.instance.objects ());
        used := float_of_int r.objects_used :: !used;
        let ws, rs = latencies_of r.history in
        wlat := ws @ !wlat;
        rlat := rs @ !rlat;
        if not (Ws_check.is_ws_safe r.history) then safe := false);
    if factory.obj_kind = Regemu_objects.Base_object.Register then
      match Regemu_adversary.Lowerbound.execute factory p ~seed () with
      | Ok run -> cov := float_of_int run.final_cov :: !cov
      | Error e -> failwith (Fmt.str "Sweep adversarial: %s" e)
  done;
  {
    params = p;
    algo = factory.name;
    seeds;
    lower_bound = lower;
    upper_bound = factory.expected_objects p;
    objects_allocated = !allocated;
    objects_used_mean = mean !used;
    adversarial_cov_mean = mean !cov;
    write_latency_mean = mean !wlat;
    read_latency_mean = mean !rlat;
    all_safe = !safe;
  }

let run ~grid ~seeds () =
  List.concat_map
    (fun p ->
      [
        measure Algorithm2.factory p ~seeds
          ~lower:(Formulas.register_lower_bound p);
        measure Regemu_baselines.Abd_max.factory p ~seeds
          ~lower:(Formulas.maxreg_bound p);
        measure Regemu_baselines.Abd_cas.factory p ~seeds
          ~lower:(Formulas.cas_bound p);
      ])
    grid

let to_csv points =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "k,f,n,algo,seeds,lower_bound,upper_bound,objects_allocated,\
     objects_used_mean,adversarial_cov_mean,write_latency_mean,\
     read_latency_mean,all_safe\n";
  List.iter
    (fun pt ->
      Buffer.add_string b
        (Fmt.str "%d,%d,%d,%s,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%b\n"
           pt.params.Params.k pt.params.Params.f pt.params.Params.n pt.algo
           pt.seeds pt.lower_bound pt.upper_bound pt.objects_allocated
           pt.objects_used_mean pt.adversarial_cov_mean pt.write_latency_mean
           pt.read_latency_mean pt.all_safe))
    points;
  Buffer.contents b

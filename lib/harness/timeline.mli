(** Covering timeline: [|Cov(t)|] as a function of time, rendered as an
    ASCII step chart.

    This is the visual content of the lower bound: under the adversary,
    the number of covered registers climbs a staircase — up by [f] with
    every completed high-level write, never coming back down, because
    the blocked covering writes are never allowed to respond.  Under a
    fair schedule the same curve repeatedly returns to zero. *)

open Regemu_sim

(** [coverage_curve trace] is the value of [|Cov(t)|] after every
    action of the run (index [i] = time [i+1]), counting pending
    register writes per object. *)
val coverage_curve : Trace.t -> int list

(** Sampled ASCII rendering: a fixed-width chart with the peak value on
    the y-axis and write-return markers underneath. *)
val render : ?width:int -> Trace.t -> string

(** Parameter sweeps with CSV output.

    Runs an experiment over a grid of [(k, f, n)] and several seeds and
    aggregates the measurements — the raw material for plotting the
    paper's curves (bounds vs [n], usage vs [k], latency vs [f]).
    Output is CSV so any plotting tool can consume it;
    [regemu sweep --csv out.csv] writes it. *)

open Regemu_bounds

(** One aggregated measurement point. *)
type point = {
  params : Params.t;
  algo : string;
  seeds : int;  (** how many seeded runs were aggregated *)
  lower_bound : int;
  upper_bound : int;
  objects_allocated : int;
  objects_used_mean : float;
  adversarial_cov_mean : float;
      (** mean final [|Cov|] of the Lemma 1 run; NaN for non-register
          emulations *)
  write_latency_mean : float;  (** scheduler steps *)
  read_latency_mean : float;
  all_safe : bool;
}

(** [run ~grid ~seeds ()] measures Algorithm 2 and the two ABD
    baselines at every grid point, [seeds] runs each. *)
val run : grid:Params.t list -> seeds:int -> unit -> point list

(** CSV with a header row; floats with 2 decimals. *)
val to_csv : point list -> string

val default_grid : Params.t list

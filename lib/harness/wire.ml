open Regemu_bounds
open Regemu_objects
open Regemu_netsim

let finish net rng call ~what =
  let rec go budget =
    if Net.call_returned call then ()
    else if budget = 0 then failwith (Fmt.str "Wire.%s stalled" what)
    else begin
      (match Net.enabled net with
      | [] -> ()
      | evs -> Net.fire net (Regemu_sim.Rng.pick rng evs));
      go (budget - 1)
    end
  in
  go 200_000

let abd_messages ~fs ~ops ~seed =
  let measure f =
    let net = Net.create ~n:((2 * f) + 1) () in
    let abd = Abd_net.create net ~f () in
    let w = Net.new_client net in
    let r = Net.new_client net in
    let rng = Regemu_sim.Rng.create seed in
    for i = 1 to ops / 2 do
      finish net rng (Abd_net.write abd w (Value.Int i)) ~what:"abd write";
      finish net rng (Abd_net.read abd r) ~what:"abd read"
    done;
    (ops, Net.delivered net)
  in
  let rows =
    List.map
      (fun f ->
        let ops, delivered = measure f in
        [
          Report.cell_int f;
          Report.cell_int ((2 * f) + 1);
          Report.cell_int ops;
          Report.cell_int delivered;
          Report.cellf "%.1f" (float_of_int delivered /. float_of_int ops);
        ])
      fs
  in
  {
    Report.title =
      "ABD over message passing: messages delivered per high-level \
       operation (two quorum rounds of 2f+1 requests each)";
    headers = [ "f"; "servers"; "ops"; "messages"; "messages/op" ];
    rows;
  }

let alg2_messages ~configs ~seed =
  let measure (k, f, n) =
    let p = Params.make_exn ~k ~f ~n in
    let net = Net.create ~n () in
    let writers = List.init k (fun _ -> Net.new_client net) in
    let t = Alg2_net.create net p ~writers () in
    let reader = Net.new_client net in
    let rng = Regemu_sim.Rng.create seed in
    let ops = ref 0 in
    List.iteri
      (fun i w ->
        finish net rng (Alg2_net.write t w (Value.Int i)) ~what:"alg2 write";
        finish net rng (Alg2_net.read t reader) ~what:"alg2 read";
        ops := !ops + 2)
      writers;
    (Alg2_net.cells t, !ops, Net.delivered net)
  in
  let rows =
    List.map
      (fun ((k, f, n) as cfg) ->
        let cells, ops, delivered = measure cfg in
        [
          Report.cell_int k; Report.cell_int f; Report.cell_int n;
          Report.cell_int cells; Report.cell_int ops;
          Report.cellf "%.1f" (float_of_int delivered /. float_of_int ops);
        ])
      configs
  in
  {
    Report.title =
      "Algorithm 2 over the wire: with register cells both space AND \
       messages grow (collects read every cell of the layout)";
    headers = [ "k"; "f"; "n"; "cells"; "ops"; "messages/op" ];
    rows;
  }

let staircase ~k ~f ~n ~seed =
  match Net_lowerbound.execute (Params.make_exn ~k ~f ~n) ~seed () with
  | Error e -> Error e
  | Ok run ->
      Ok
        {
          Report.title =
            Fmt.str
              "The lower bound on the wire: cells holding undelivered write \
               requests after each write (k=%d, f=%d, n=%d; bound i*f, none \
               on F)"
              k f n;
          headers = [ "write #"; "covered cells"; "i*f"; "on F"; "|Q_i|" ];
          rows =
            List.map
              (fun (s : Net_lowerbound.epoch_stats) ->
                [
                  Report.cell_int s.epoch;
                  Report.cell_int s.covered_total;
                  Report.cell_int (s.epoch * f);
                  Report.cell_int s.covered_on_f;
                  Report.cell_int s.q_size;
                ])
              run.epochs;
        }

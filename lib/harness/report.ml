type t = { title : string; headers : string list; rows : string list list }

let cell_int = string_of_int
let cell_bool b = if b then "yes" else "no"
let cellf fmt = Fmt.str fmt

let pp ppf { title; headers; rows } =
  let all = headers :: rows in
  let cols = List.length headers in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some c -> Stdlib.max acc (String.length c)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    String.concat "  " (List.mapi (fun i c -> pad c (List.nth widths i)) row)
  in
  Fmt.pf ppf "== %s ==@." title;
  Fmt.pf ppf "%s@." (render_row headers);
  Fmt.pf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pf ppf "%s@." (render_row row)) rows

let to_markdown { title; headers; rows } =
  let b = Buffer.create 512 in
  Buffer.add_string b ("## " ^ title ^ "\n\n");
  let row cells = "| " ^ String.concat " | " cells ^ " |\n" in
  Buffer.add_string b (row headers);
  Buffer.add_string b (row (List.map (fun _ -> "---") headers));
  List.iter (fun r -> Buffer.add_string b (row r)) rows;
  Buffer.contents b

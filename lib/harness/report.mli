(** Minimal aligned-column table rendering for the experiment output. *)

type t = { title : string; headers : string list; rows : string list list }

(** Render with a title line, a header row, a separator, and aligned
    columns. *)
val pp : t Fmt.t

(** GitHub-flavoured markdown rendering (## title + table). *)
val to_markdown : t -> string

(** Convenience cell constructors. *)
val cell_int : int -> string

val cell_bool : bool -> string
val cellf : ('a, Format.formatter, unit, string) format4 -> 'a

open Regemu_bounds
open Regemu_objects
open Regemu_history
open Regemu_adversary

type check = { name : string; detail : string; pass : bool }
type summary = { checks : check list; passed : int; failed : int }

let summary_pp ppf s =
  List.iter
    (fun c ->
      Fmt.pf ppf "[%s] %s — %s@."
        (if c.pass then "PASS" else "FAIL")
        c.name c.detail)
    s.checks;
  Fmt.pf ppf "%d passed, %d failed@." s.passed s.failed

let guard name f =
  try f ()
  with e -> { name; detail = Printexc.to_string e; pass = false }

let table1_check ~seed () =
  let name = "Table 1: object counts" in
  let rows =
    Table1.compute
      ~grid:
        [
          Params.make_exn ~k:1 ~f:1 ~n:3;
          Params.make_exn ~k:3 ~f:1 ~n:3;
          Params.make_exn ~k:5 ~f:2 ~n:6;
        ]
      ~seed ()
  in
  let ok =
    List.for_all
      (fun (r : Table1.row) ->
        r.safety_ok
        && r.used_fair <= r.bound_upper
        &&
        match r.used_adversarial with
        | Some u -> u >= r.bound_lower
        | None -> true)
      rows
  in
  {
    name;
    detail =
      Fmt.str "%d rows within bounds, all runs safe" (List.length rows);
    pass = ok;
  }

let lemma1_check ~seed () =
  let name = "Lemma 1/2, Corollary 2, Lemma 4" in
  let p = Params.make_exn ~k:5 ~f:2 ~n:6 in
  match Lowerbound.execute Regemu_core.Algorithm2.factory p ~seed () with
  | Error e -> { name; detail = e; pass = false }
  | Ok run ->
      let ok =
        run.final_cov >= p.k * p.f
        && List.for_all
             (fun (s : Lowerbound.epoch_stats) ->
               s.write_returned && s.cov_on_f = 0 && s.q_size = p.f
               && s.fresh_servers_triggered > 2 * p.f
               && s.lemma2_failure = None)
             run.epochs
      in
      {
        name;
        detail =
          Fmt.str "final |Cov|=%d >= kf=%d; all epoch invariants hold"
            run.final_cov (p.k * p.f);
        pass = ok;
      }

let fig2_check () =
  let name = "Figure 2 / Lemma 4 violation" in
  match Violation.against_naive ~f:2 with
  | Error e -> { name; detail = e; pass = false }
  | Ok o ->
      let violated =
        match o.verdict with Ws_check.Violated _ -> true | _ -> false
      in
      {
        name;
        detail = "naive 2f+1-register algorithm returns a stale value";
        pass = violated && Value.equal o.read_value (Value.Str "v1");
      }

let theorem5_check () =
  let name = "Theorem 5 partitioning at n=2f" in
  match Partition.impossibility ~f:2 with
  | Error e -> { name; detail = e; pass = false }
  | Ok o ->
      {
        name;
        detail = "write invisible to a disjoint read quorum";
        pass =
          (match o.verdict with Ws_check.Violated _ -> true | _ -> false);
      }

let inversion_check () =
  let name = "New/old inversion (atomicity needs write-back)" in
  match Inversion.against_abd_max () with
  | Error e -> { name; detail = e; pass = false }
  | Ok o ->
      {
        name;
        detail = "plain ABD: regular but not atomic";
        pass = (not o.atomic) && o.weakly_regular;
      }

let theorem2_check () =
  let name = "Theorem 2: k registers for a k-writer max-register" in
  let ok =
    List.for_all
      (fun k ->
        let sim = Regemu_sim.Sim.create ~n:1 () in
        let writers = List.init k (fun _ -> Regemu_sim.Sim.new_client sim) in
        let m =
          Regemu_baselines.Reg_maxreg.create sim ~server:(Id.Server.of_int 0)
            ~writers
        in
        List.length (Regemu_baselines.Reg_maxreg.objects m) = k)
      [ 1; 3; 7 ]
  in
  { name; detail = "construction is tight"; pass = ok }

let explore_check () =
  let name = "Exhaustive tiny-scenario exploration" in
  let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
  let r =
    Regemu_mcheck.Explore.run
      (Regemu_mcheck.Explore.emulation_scenario Regemu_core.Algorithm2.factory
         p ~mode:Regemu_mcheck.Explore.Sequential
         ~writer_ops:[ [ Value.Str "a" ] ]
         ~readers:1 ~reads_each:1 ())
      ~max_fired:2_000_000
  in
  {
    name;
    detail =
      Fmt.str "%d schedules, exhaustive=%b, 0 violations expected"
        r.terminal_runs r.exhaustive;
    pass =
      r.exhaustive && r.ws_safe_violations = [] && r.stuck_runs = 0;
  }

let netabd_check ~seed () =
  let name = "ABD over message passing" in
  let net = Regemu_netsim.Net.create ~n:3 () in
  let abd = Regemu_netsim.Abd_net.create net ~f:1 () in
  let w = Regemu_netsim.Net.new_client net in
  let r = Regemu_netsim.Net.new_client net in
  let rng = Regemu_sim.Rng.create seed in
  let finish call =
    let rec go budget =
      if Regemu_netsim.Net.call_returned call then true
      else if budget = 0 then false
      else
        match Regemu_netsim.Net.enabled net with
        | [] -> false
        | evs ->
            Regemu_netsim.Net.fire net (Regemu_sim.Rng.pick rng evs);
            go (budget - 1)
    in
    go 50_000
  in
  Regemu_netsim.Net.crash_server net (Id.Server.of_int 1);
  let ok =
    finish (Regemu_netsim.Abd_net.write abd w (Value.Str "x"))
    && finish (Regemu_netsim.Abd_net.read abd r)
    && Ws_check.is_ws_regular (Regemu_netsim.Net.history net)
  in
  { name; detail = "write/read survive a crash; WS-Regular"; pass = ok }

let run ~seed =
  let checks =
    [
      guard "Table 1: object counts" (table1_check ~seed);
      guard "Lemma 1/2, Corollary 2, Lemma 4" (lemma1_check ~seed);
      guard "Figure 2 / Lemma 4 violation" fig2_check;
      guard "Theorem 5 partitioning at n=2f" theorem5_check;
      guard "New/old inversion" inversion_check;
      guard "Theorem 2" theorem2_check;
      guard "Exhaustive exploration" explore_check;
      guard "ABD over message passing" (netabd_check ~seed);
    ]
  in
  let passed = List.length (List.filter (fun c -> c.pass) checks) in
  { checks; passed; failed = List.length checks - passed }

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core
open Regemu_adversary

let lemma1 ?params ?(factory = Algorithm2.factory) ~seed () =
  let p =
    match params with Some p -> p | None -> Params.make_exn ~k:5 ~f:2 ~n:6
  in
  match Lowerbound.execute factory p ~seed () with
  | Error e -> Error e
  | Ok run ->
      Ok
        {
          Report.title =
            Fmt.str
              "Lemma 1: adversarial covering growth, %s at %a \
               (bound: |Cov(t_i)| >= i*f, none on F)"
              factory.Emulation.name Params.pp p;
          headers =
            [
              "epoch i"; "|Cov(t_i)|"; "i*f"; "on F"; "|Q_i|"; "|F_i|";
              "fresh servers (>2f)"; "objects used"; "lemma2";
            ];
          rows =
            List.map
              (fun (s : Lowerbound.epoch_stats) ->
                [
                  Report.cell_int s.epoch;
                  Report.cell_int s.cov_total;
                  Report.cell_int (s.epoch * p.Params.f);
                  Report.cell_int s.cov_on_f;
                  Report.cell_int s.q_size;
                  Report.cell_int s.f_size;
                  Report.cell_int s.fresh_servers_triggered;
                  Report.cell_int s.objects_used_total;
                  (match s.lemma2_failure with
                  | None -> "ok"
                  | Some m -> m);
                ])
              run.epochs;
        }

let theorem1_sweep ~k ~f ?n_max () =
  let n_max =
    match n_max with Some n -> n | None -> Formulas.saturation_n ~k ~f + 2
  in
  let rows =
    List.filter_map
      (fun n ->
        match Params.make ~k ~f ~n with
        | Error _ -> None
        | Ok p ->
            let lower = Formulas.register_lower_bound p in
            let upper = Formulas.register_upper_bound p in
            let note =
              if n = (2 * f) + 1 then "n = 2f+1 (bounds meet: kf+k(f+1))"
              else if n >= Formulas.saturation_n ~k ~f then
                "saturated (bounds meet: kf+f+1)"
              else if lower = upper then "bounds meet"
              else "gap"
            in
            Some
              [
                Report.cell_int n;
                Report.cell_int (Formulas.z p);
                Report.cell_int lower;
                Report.cell_int upper;
                Report.cell_int (upper - lower);
                note;
              ])
      (List.init n_max (fun i -> i + 1))
  in
  {
    Report.title =
      Fmt.str
        "Theorem 1 / Theorem 3: register bounds vs number of servers \
         (k=%d, f=%d)"
        k f;
    headers = [ "n"; "z"; "lower bound"; "upper bound"; "gap"; "note" ];
    rows;
  }

let theorem2 ~ks =
  let rows =
    List.map
      (fun k ->
        let sim = Sim.create ~n:1 () in
        let writers = List.init k (fun _ -> Sim.new_client sim) in
        let m =
          Regemu_baselines.Reg_maxreg.create sim ~server:(Id.Server.of_int 0)
            ~writers
        in
        let used = List.length (Regemu_baselines.Reg_maxreg.objects m) in
        [
          Report.cell_int k;
          Report.cell_int used;
          Report.cell_int (Formulas.maxreg_register_lower_bound ~k);
          Report.cell_bool (used = k);
        ])
      ks
  in
  {
    Report.title =
      "Theorem 2: k-writer max-register from MWMR registers (lower bound k; \
       our construction is tight)";
    headers = [ "k"; "registers used"; "lower bound"; "tight" ];
    rows;
  }

let theorem6 ~k ~f =
  let n = (2 * f) + 1 in
  let p = Params.make_exn ~k ~f ~n in
  let sim = Sim.create ~n () in
  let layout = Layout.build sim p in
  let rows =
    List.map
      (fun s ->
        let stored = List.length (Layout.objects_on layout s) in
        [
          Fmt.str "%a" Id.Server.pp s;
          Report.cell_int stored;
          Report.cell_int (Formulas.per_server_lower_bound_at_minimum_n p);
          Report.cell_bool (stored >= k);
        ])
      (Sim.servers sim)
  in
  {
    Report.title =
      Fmt.str
        "Theorem 6: registers per server at n=2f+1 (k=%d, f=%d; every server \
         must store >= k)"
        k f;
    headers = [ "server"; "registers stored"; "lower bound"; "meets bound" ];
    rows;
  }

let narration ~title ~steps ~verdict_line =
  let b = Buffer.create 512 in
  let ppf = Fmt.with_buffer b in
  Fmt.pf ppf "%s@." title;
  List.iteri (fun i s -> Fmt.pf ppf "  %d. %s@." (i + 1) s) steps;
  Fmt.pf ppf "%s@." verdict_line;
  Fmt.flush ppf ();
  Buffer.contents b

let theorem5 ~f =
  match Partition.impossibility ~f with
  | Error e -> Error e
  | Ok o ->
      Ok
        (narration
           ~title:
             (Fmt.str
                "Theorem 5: with n = 2f = %d servers, safety is lost (the \
                 partitioning argument)"
                (2 * f))
           ~steps:o.steps
           ~verdict_line:
             (Fmt.str "Checker verdict: %a" Regemu_history.Ws_check.verdict_pp
                o.verdict))

let inversion () =
  match Inversion.against_abd_max () with
  | Error e -> Error e
  | Ok o ->
      Ok
        (narration
           ~title:
             "New/old read inversion: ABD without reader write-back is \
              regular but not atomic"
           ~steps:o.steps
           ~verdict_line:
             (Fmt.str
                "atomic: %b, weakly regular: %b (the write-back variant \
                 abd-max-atomic is atomic)"
                o.atomic o.weakly_regular))

let theorem6_adversarial ~k ~f ~seed =
  let n = (2 * f) + 1 in
  let p = Params.make_exn ~k ~f ~n in
  match Lowerbound.execute Algorithm2.factory p ~seed () with
  | Error e -> Error e
  | Ok run ->
      Ok
        {
          Report.title =
            Fmt.str
              "Theorem 6 (adversarial witness): covered registers per server \
               after the Lemma 1 run at n=2f+1 (k=%d, f=%d; servers outside \
               F must reach k)"
              k f;
          headers =
            [ "server"; "in F"; "covered registers"; "k" ];
          rows =
            List.map
              (fun (s, c) ->
                [
                  Fmt.str "%a" Id.Server.pp s;
                  Report.cell_bool (Id.Server.Set.mem s run.f_set);
                  Report.cell_int c;
                  Report.cell_int k;
                ])
              run.final_cov_per_server;
        }

let max_per_server_load (p : Params.t) =
  let sim = Sim.create ~n:p.n () in
  let layout = Layout.build sim p in
  List.fold_left
    (fun acc s -> Stdlib.max acc (List.length (Layout.objects_on layout s)))
    0 (Sim.servers sim)

let theorem7 ~k ~f ~capacities =
  let rows =
    List.map
      (fun m ->
        let servers_needed = Formulas.min_servers ~k ~f ~capacity:m in
        let feasible_n =
          (* smallest n >= max(2f+1, servers_needed) at which the layout's
             per-server load fits within m *)
          let rec search n =
            if n > (1000 * k * f) + 10 then None
            else
              match Params.make ~k ~f ~n with
              | Error _ -> search (n + 1)
              | Ok p ->
                  if max_per_server_load p <= m then Some n else search (n + 1)
          in
          search (Stdlib.max ((2 * f) + 1) 1)
        in
        [
          Report.cell_int m;
          Report.cell_int servers_needed;
          (match feasible_n with
          | Some n -> Report.cell_int n
          | None -> "-");
          Report.cell_bool
            (match feasible_n with
            | Some n -> n >= servers_needed
            | None -> true);
        ])
      capacities
  in
  {
    Report.title =
      Fmt.str
        "Theorem 7: minimum servers with per-server capacity m (k=%d, f=%d; \
         bound ceil(kf/m)+f+1)"
        k f;
    headers =
      [
        "capacity m"; "lower bound on |S|"; "layout feasible at n";
        "consistent";
      ];
    rows;
  }

let theorem8 ?params ~seed () =
  let p =
    match params with Some p -> p | None -> Params.make_exn ~k:6 ~f:1 ~n:14
  in
  match Lowerbound.execute Algorithm2.factory p ~seed () with
  | Error e -> Error e
  | Ok run ->
      Ok
        {
          Report.title =
            Fmt.str
              "Theorem 8: resource use grows with each write while point \
               contention stays 1 (%a) — no adaptive emulation exists"
              Params.pp p;
          headers =
            [ "write #"; "point contention"; "covered registers"; "objects used" ];
          rows =
            List.map
              (fun (s : Lowerbound.epoch_stats) ->
                [
                  Report.cell_int s.epoch;
                  Report.cell_int s.point_contention;
                  Report.cell_int s.cov_total;
                  Report.cell_int s.objects_used_total;
                ])
              run.epochs;
        }

let algorithm1_time ~writers_list ~ops_per_writer ~seed =
  let measure num_writers =
    let sim = Sim.create ~n:1 () in
    let m = Regemu_baselines.Cas_maxreg.create sim ~server:(Id.Server.of_int 0) in
    let clients = List.init num_writers (fun _ -> Sim.new_client sim) in
    let rng = Rng.create (seed + num_writers) in
    let policy = Policy.uniform (Rng.split rng) in
    let planned =
      ref
        (List.concat_map
           (fun c -> List.init ops_per_writer (fun i -> (c, i)))
           clients)
    in
    let calls = ref [] in
    let next_value = ref 0 in
    let rec loop guard =
      if guard = 0 then failwith "algorithm1_time: did not finish";
      let idle =
        List.filter (fun (c, _) -> not (Sim.client_busy sim c)) !planned
      in
      if !planned = [] then begin
        match
          Driver.run_until sim policy ~budget:1_000_000 (fun () ->
              List.for_all Sim.call_returned !calls)
        with
        | Driver.Satisfied -> ()
        | o -> failwith (Fmt.str "algorithm1_time: %a" Driver.outcome_pp o)
      end
      else if idle <> [] && Rng.int rng ~bound:2 = 0 then begin
        let ((c, _) as job) = Rng.pick rng idle in
        planned := List.filter (fun j -> j <> job) !planned;
        incr next_value;
        calls :=
          Regemu_baselines.Cas_maxreg.write_max m c (Value.Int !next_value)
          :: !calls;
        loop (guard - 1)
      end
      else if Driver.step sim policy then loop (guard - 1)
      else loop (guard - 1)
    in
    loop 1_000_000;
    let total_ops = num_writers * ops_per_writer in
    let cas = Regemu_baselines.Cas_maxreg.cas_count m in
    (total_ops, cas)
  in
  let rows =
    List.map
      (fun w ->
        let ops, cas = measure w in
        [
          Report.cell_int w;
          Report.cell_int ops;
          Report.cell_int cas;
          Report.cellf "%.2f" (float_of_int cas /. float_of_int ops);
        ])
      writers_list
  in
  {
    Report.title =
      "Algorithm 1: CAS operations per write-max vs concurrency (a native \
       max-register costs 1 op; the CAS emulation pays more under \
       contention)";
    headers = [ "concurrent writers"; "write-max ops"; "CAS ops"; "CAS/op" ];
    rows;
  }

(* --- the space-based classification vs Herlihy's hierarchy --------------- *)

let classification ~k ~f ~n =
  let p = Params.make_exn ~k ~f ~n in
  let rows =
    [
      [
        "read/write register"; "1";
        Fmt.str "%d..%d"
          (Formulas.register_lower_bound p)
          (Formulas.register_upper_bound p);
        "grows with k, shrinks with n";
      ];
      [
        "max-register"; "1";
        Report.cell_int (Formulas.maxreg_bound p);
        "independent of k and n";
      ];
      [
        "CAS"; "infinite";
        Report.cell_int (Formulas.cas_bound p);
        "independent of k and n";
      ];
    ]
  in
  {
    Report.title =
      Fmt.str
        "The paper's classification at (k=%d, f=%d, n=%d): space for an \
         f-tolerant k-register vs Herlihy's consensus number — register and \
         max-register share consensus number 1 yet are separated by a \
         factor of k; max-register and CAS differ in consensus number yet \
         cost the same"
        k f n;
    headers =
      [ "base object"; "consensus number"; "objects needed"; "dependence" ];
    rows;
  }

(* --- reader-space dependence (the Section 5 closing question) ----------- *)

let reader_space ~k ~f ~n ~readers_list =
  let p = Params.make_exn ~k ~f ~n in
  let rows =
    List.map
      (fun r ->
        let register_objects =
          Regemu_baselines.Algorithm2_rwb.expected_objects p ~readers:r
        in
        [
          Report.cell_int r;
          Report.cell_int register_objects;
          Report.cell_int (Formulas.maxreg_bound p);
        ])
      readers_list
  in
  {
    Report.title =
      Fmt.str
        "Atomicity and readers (k=%d, f=%d, n=%d): reader write-back over \
         registers pays per reader; max-register servers do not"
        k f n;
    headers =
      [
        "readers"; "registers (algorithm2 + write-back)";
        "max-registers (abd-max-atomic)";
      ];
    rows;
  }

(* --- three max-register implementations, measured ----------------------- *)

let count_lops tr =
  let n = ref 0 in
  Trace.iter (function Trace.Trigger _ -> incr n | _ -> ()) tr;
  !n

let maxreg_comparison ~k ~capacity ~ops ~seed =
  let policy () = Policy.uniform (Rng.create seed) in
  let values = List.init ops (fun i -> 1 + ((i * 7) mod (capacity - 1))) in
  let sequential_run ~write ~read ~clients ~sim =
    let p = policy () in
    List.iter
      (fun v ->
        List.iter
          (fun c ->
            ignore (Driver.finish_call_exn sim p ~budget:100_000 (write c v)))
          clients)
      values;
    List.iter
      (fun c -> ignore (Driver.finish_call_exn sim p ~budget:100_000 (read c)))
      clients;
    let total_ops = (List.length clients * List.length values) + List.length clients in
    (count_lops (Sim.trace sim), total_ops)
  in
  let flat () =
    let sim = Sim.create ~n:1 () in
    let writers = List.init k (fun _ -> Sim.new_client sim) in
    let m =
      Regemu_baselines.Reg_maxreg.create sim ~server:(Id.Server.of_int 0)
        ~writers
    in
    let lops, total =
      sequential_run
        ~write:(fun c v -> Regemu_baselines.Reg_maxreg.write_max m c (Value.Int v))
        ~read:(Regemu_baselines.Reg_maxreg.read_max m)
        ~clients:writers ~sim
    in
    ("flat (one register per writer)", k, lops, total)
  in
  let cas () =
    let sim = Sim.create ~n:1 () in
    let m = Regemu_baselines.Cas_maxreg.create sim ~server:(Id.Server.of_int 0) in
    let writers = List.init k (fun _ -> Sim.new_client sim) in
    let lops, total =
      sequential_run
        ~write:(fun c v -> Regemu_baselines.Cas_maxreg.write_max m c (Value.Int v))
        ~read:(Regemu_baselines.Cas_maxreg.read_max m)
        ~clients:writers ~sim
    in
    ("single CAS (Algorithm 1)", 1, lops, total)
  in
  let tree () =
    let sim = Sim.create ~n:1 () in
    let m =
      Regemu_baselines.Tree_maxreg.create sim ~server:(Id.Server.of_int 0)
        ~capacity
    in
    let writers = List.init k (fun _ -> Sim.new_client sim) in
    let lops, total =
      sequential_run
        ~write:(fun c v -> Regemu_baselines.Tree_maxreg.write_max m c v)
        ~read:(Regemu_baselines.Tree_maxreg.read_max m)
        ~clients:writers ~sim
    in
    ("AAC tree (bounded domain)", capacity - 1, lops, total)
  in
  let rows =
    List.map
      (fun (name, objects, lops, total) ->
        [
          name;
          Report.cell_int objects;
          Report.cell_int total;
          Report.cell_int lops;
          Report.cellf "%.2f" (float_of_int lops /. float_of_int total);
        ])
      [ flat (); cas (); tree () ]
  in
  {
    Report.title =
      Fmt.str
        "Max-register implementations compared (k=%d writers, domain [0,%d), \
         %d writes each): space vs time"
        k capacity ops;
    headers =
      [ "implementation"; "base objects"; "high-level ops"; "low-level ops"; "lops/op" ];
    rows;
  }

(* --- per-server load balance -------------------------------------------- *)

let load_balance ~k ~f ~n ~rounds ~seed =
  let p = Params.make_exn ~k ~f ~n in
  match
    Regemu_workload.Scenario.write_sequential Algorithm2.factory p
      ~read_after_each:true ~rounds ~seed ()
  with
  | Error e ->
      failwith (Fmt.str "load_balance: %a" Regemu_workload.Scenario.error_pp e)
  | Ok r ->
      let stats = Stats.of_trace (Sim.trace r.sim) in
      let per_server = Array.make n 0 in
      Id.Obj.Map.iter
        (fun obj count ->
          let s = Id.Server.to_int (Sim.delta r.sim obj) in
          per_server.(s) <- per_server.(s) + count)
        stats.triggers_per_object;
      let loads = Array.to_list per_server in
      let maxl = List.fold_left Stdlib.max 0 loads in
      let minl = List.fold_left Stdlib.min max_int loads in
      let rows =
        List.mapi
          (fun i load ->
            [
              Fmt.str "s%d" i;
              Report.cell_int load;
              Report.cellf "%.2f"
                (float_of_int load
                /. (float_of_int stats.triggers /. float_of_int n));
            ])
          loads
      in
      {
        Report.title =
          Fmt.str
            "Per-server low-level operations, algorithm2 at %a (%d rounds; \
             max/min = %d/%d)"
            Params.pp p rounds maxl minl;
        headers = [ "server"; "low-level ops"; "x of even share" ];
        rows;
      }

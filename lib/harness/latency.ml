open Regemu_bounds
open Regemu_sim
open Regemu_core
open Regemu_history

type row = {
  algo : string;
  params : Params.t;
  avg_write : float;
  max_write : int;
  write_pcts : (float * int) list;
  avg_read : float;
  max_read : int;
  read_pcts : (float * int) list;
}

let standard_factories (p : Params.t) =
  let base =
    [
      Regemu_baselines.Abd_max.factory;
      Regemu_baselines.Abd_max_atomic.factory;
      Regemu_baselines.Abd_cas.factory;
      Algorithm2.factory;
    ]
  in
  if p.n = (2 * p.f) + 1 then base @ [ Regemu_baselines.Layered.factory ]
  else base

let measure factory (p : Params.t) ~rounds =
  let sim = Sim.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Sim.new_client sim) in
  let instance = factory.Emulation.make sim p ~writers in
  let reader = Sim.new_client sim in
  let policy = Policy.round_robin () in
  for round = 1 to rounds do
    List.iteri
      (fun slot w ->
        ignore
          (Driver.finish_call_exn sim policy ~budget:100_000
             (instance.write w (Regemu_workload.Scenario.value_for ~slot ~round)));
        ignore
          (Driver.finish_call_exn sim policy ~budget:100_000
             (instance.read reader)))
      writers
  done;
  let history = History.of_trace (Sim.trace sim) in
  let latency (o : History.op) =
    match o.returned_at with Some r -> r - o.invoked_at | None -> 0
  in
  let stats ops =
    let ls = List.map latency ops in
    match ls with
    | [] -> (0.0, 0, Stats.percentiles [])
    | _ ->
        ( float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (List.length ls),
          List.fold_left Stdlib.max 0 ls,
          Stats.percentiles ls )
  in
  let avg_write, max_write, write_pcts = stats (History.writes history) in
  let avg_read, max_read, read_pcts = stats (History.reads history) in
  {
    algo = factory.Emulation.name;
    params = p;
    avg_write;
    max_write;
    write_pcts;
    avg_read;
    max_read;
    read_pcts;
  }

let compute p ~rounds =
  List.map (fun f -> measure f p ~rounds) (standard_factories p)

let report p rows =
  {
    Report.title =
      Fmt.str
        "Operation latency in scheduler steps at %a (round-robin policy, \
         lower is faster)"
        Params.pp p;
    headers =
      [
        "algorithm"; "avg write"; "p95 write"; "max write"; "avg read";
        "p95 read"; "max read";
      ];
    rows =
      List.map
        (fun r ->
          let p95 pcts =
            Report.cell_int (try List.assoc 0.95 pcts with Not_found -> 0)
          in
          [
            r.algo;
            Report.cellf "%.1f" r.avg_write;
            p95 r.write_pcts;
            Report.cell_int r.max_write;
            Report.cellf "%.1f" r.avg_read;
            p95 r.read_pcts;
            Report.cell_int r.max_read;
          ])
        rows;
  }

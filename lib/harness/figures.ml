open Regemu_bounds
open Regemu_core
open Regemu_adversary

let figure1 ?params () =
  let p =
    match params with Some p -> p | None -> Params.make_exn ~k:5 ~f:2 ~n:6
  in
  let sim = Regemu_sim.Sim.create ~n:p.Params.n () in
  let layout = Layout.build sim p in
  Fmt.str
    "Figure 1: mapping from R to S for %a (z=%d, y=%d, %d sets, %d registers)@.%a"
    Params.pp p (Formulas.z p) (Formulas.y p) (Layout.num_sets layout)
    (Layout.size layout) Layout.pp layout

let figure2 ?(f = 2) () =
  match Violation.against_naive ~f with
  | Error e -> Error e
  | Ok o ->
      let b = Buffer.create 512 in
      let ppf = Fmt.with_buffer b in
      Fmt.pf ppf
        "Figure 2: the Lemma 4 runs against the naive (2f+1)-register \
         algorithm, f=%d@."
        f;
      List.iteri (fun i s -> Fmt.pf ppf "  %d. %s@." (i + 1) s) o.steps;
      Fmt.pf ppf "Checker verdict: %a@." Regemu_history.Ws_check.verdict_pp
        o.verdict;
      Fmt.flush ppf ();
      Ok (Buffer.contents b)

open Regemu_bounds
open Regemu_core
open Regemu_history
open Regemu_workload
open Regemu_adversary

type row = {
  params : Params.t;
  base : string;
  bound_lower : int;
  bound_upper : int;
  allocated : int;
  used_fair : int;
  used_adversarial : int option;
  safety_ok : bool;
}

let default_grid =
  [
    Params.make_exn ~k:1 ~f:1 ~n:3;
    Params.make_exn ~k:3 ~f:1 ~n:3;
    Params.make_exn ~k:5 ~f:1 ~n:4;
    Params.make_exn ~k:5 ~f:2 ~n:6 (* Figure 1 parameters *);
    Params.make_exn ~k:5 ~f:2 ~n:13;
    Params.make_exn ~k:5 ~f:2 ~n:17 (* saturation: kf+f+1 = 13 <= n *);
    Params.make_exn ~k:8 ~f:3 ~n:12;
  ]

let fair_run factory p ~seed =
  match
    Scenario.write_sequential factory p ~read_after_each:true ~rounds:1 ~seed
      ()
  with
  | Ok r -> r
  | Error e ->
      failwith (Fmt.str "Table1: %s at %a: %a" factory.Emulation.name
                  Params.pp p Scenario.error_pp e)

let measure factory (p : Params.t) ~seed ~lower ~adversarial =
  let r = fair_run factory p ~seed in
  let used_adversarial =
    if adversarial then
      match Lowerbound.execute factory p ~seed () with
      | Ok run -> Some run.final_objects_used
      | Error e ->
          failwith (Fmt.str "Table1 adversarial run failed: %s" e)
    else None
  in
  {
    params = p;
    base = Regemu_objects.Base_object.kind_to_string factory.obj_kind;
    bound_lower = lower;
    bound_upper = factory.expected_objects p;
    allocated = List.length (r.instance.objects ());
    used_fair = r.objects_used;
    used_adversarial;
    safety_ok = Ws_check.is_ws_safe r.history;
  }

let compute ?(grid = default_grid) ~seed () =
  List.concat_map
    (fun p ->
      [
        measure Regemu_baselines.Abd_max.factory p ~seed
          ~lower:(Formulas.maxreg_bound p) ~adversarial:false;
        measure Regemu_baselines.Abd_cas.factory p ~seed
          ~lower:(Formulas.cas_bound p) ~adversarial:false;
        measure Algorithm2.factory p ~seed
          ~lower:(Formulas.register_lower_bound p) ~adversarial:true;
      ])
    grid

let report rows =
  {
    Report.title =
      "Table 1: base objects used by f-tolerant k-register emulations";
    headers =
      [
        "k"; "f"; "n"; "base object"; "lower"; "upper"; "allocated";
        "used(fair)"; "used(Ad_i)"; "safe";
      ];
    rows =
      List.map
        (fun r ->
          [
            Report.cell_int r.params.Params.k;
            Report.cell_int r.params.Params.f;
            Report.cell_int r.params.Params.n;
            r.base;
            Report.cell_int r.bound_lower;
            Report.cell_int r.bound_upper;
            Report.cell_int r.allocated;
            Report.cell_int r.used_fair;
            (match r.used_adversarial with
            | Some u -> Report.cell_int u
            | None -> "-");
            Report.cell_bool r.safety_ok;
          ])
        rows;
  }

(** Experiment T1 — reproduce Table 1: the number of base objects used
    by [f]-tolerant register emulations with [k] writers and [n]
    servers, per base-object type.

    For every parameter triple we report, per base object type:
    - the paper's lower and upper bound formulas;
    - the number of objects the construction allocates;
    - the number actually used in a fair write-sequential run with
      interleaved reads;
    - for the register row, the number used under the lower-bound
      adversary [Ad_i] (which must be at least Theorem 1's bound);
    - whether the run's history satisfied the promised safety level.

    The paper's shape to match: max-register and CAS rows are [2f+1]
    and never depend on [k]; the register row grows linearly in [k]
    and shrinks with [n] until [kf + f + 1]. *)

open Regemu_bounds

type row = {
  params : Params.t;
  base : string;
  bound_lower : int;
  bound_upper : int;
  allocated : int;
  used_fair : int;
  used_adversarial : int option;
  safety_ok : bool;
}

val default_grid : Params.t list

(** Runs the measurements.  Raises [Failure] if any run fails to
    complete (a liveness bug). *)
val compute : ?grid:Params.t list -> seed:int -> unit -> row list

val report : row list -> Report.t

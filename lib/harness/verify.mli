(** A user-facing self-check: re-establish each headline claim of the
    reproduction in a few seconds and report PASS/FAIL per claim.

    This is a condensed, human-readable version of what the test suite
    asserts; `regemu verify` runs it.  Useful after porting or
    modifying the code to see at a glance whether the paper's results
    still hold. *)

type check = { name : string; detail : string; pass : bool }

type summary = { checks : check list; passed : int; failed : int }

val summary_pp : summary Fmt.t

(** Run all checks with the given seed.  Never raises: a crashing check
    is reported as failed with the exception text. *)
val run : seed:int -> summary

(** Experiments F1 and F2 — the paper's two figures.

    Figure 1 is a possible mapping from the register sets
    [R_0..R_{m-1}] to servers for [n=6, k=5, f=2]; we render the layout
    our {!Regemu_core.Layout} actually builds for those parameters.

    Figure 2 illustrates the runs constructed in the proof of Lemma 4;
    we replay the concrete schedule of
    {!Regemu_adversary.Violation.against_naive} and render its
    narration together with the checker's verdict. *)

open Regemu_bounds

(** Figure 1: the register-to-server mapping.  Default parameters are
    the paper's ([n=6, k=5, f=2]). *)
val figure1 : ?params:Params.t -> unit -> string

(** Figure 2: the Lemma 4 schedule and the resulting WS-Safety
    violation.  Returns the rendered narration; [Error] if the
    construction unexpectedly fails. *)
val figure2 : ?f:int -> unit -> (string, string) result

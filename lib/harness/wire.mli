(** Experiments on the message-passing substrate (the NET row of the
    experiment index): message complexity of ABD, message complexity of
    wire-level Algorithm 2, and the lower-bound staircase driven by an
    adversarial router. *)

(** Messages delivered per high-level ABD operation as [f] grows
    (two quorum rounds of [2f+1] requests each). *)
val abd_messages : fs:int list -> ops:int -> seed:int -> Report.t

(** Cells and messages per operation for wire-level Algorithm 2 — with
    plain register cells both space {e and} messages grow. *)
val alg2_messages : configs:(int * int * int) list -> seed:int -> Report.t

(** The covering staircase produced by the router that withholds write
    requests (the Lemma 1 construction on the wire). *)
val staircase :
  k:int -> f:int -> n:int -> seed:int -> (Report.t, string) result

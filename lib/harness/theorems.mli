(** Experiments L1 and TH1–TH8 — the paper's lemmas and theorems as
    measurable artifacts. *)

open Regemu_bounds

(** L1 — the Lemma 1 construction against Algorithm 2 (or any other
    register-based emulation): per-epoch covering growth, [Q_i]/[F_i]
    sizes, Lemma 4's fresh-server count, and the Lemma 2 invariant
    monitor's verdict. *)
val lemma1 :
  ?params:Params.t ->
  ?factory:Regemu_core.Emulation.factory ->
  seed:int ->
  unit ->
  (Report.t, string) result

(** TH1 — sweep the register bounds as a function of [n] for fixed
    [(k, f)]: shows the inverse dependence on [n], the coincidence
    points at [n = 2f+1] and [n >= kf+f+1], and the small residual
    gap in between. *)
val theorem1_sweep : k:int -> f:int -> ?n_max:int -> unit -> Report.t

(** TH2 — the k-writer max-register: our construction from [k]
    registers versus the lower bound of [k] (Theorem 2). *)
val theorem2 : ks:int list -> Report.t

(** TH5 — the partitioning impossibility at [n = 2f]: the executed
    schedule and the checker's verdict, rendered as text. *)
val theorem5 : f:int -> (string, string) result

(** A1b — the new/old read inversion against ABD without reader
    write-back, rendered as text (why the paper's upper bounds target
    WS-Regularity rather than atomicity). *)
val inversion : unit -> (string, string) result

(** TH6 — at [n = 2f+1], registers stored per server by Algorithm 2's
    layout versus the per-server lower bound [k]. *)
val theorem6 : k:int -> f:int -> Report.t

(** TH6 (adversarial) — run the Lemma 1 adversary at [n = 2f+1] and
    count the covered registers per server at the end of the run: every
    server outside [F] ends up with [k] covered registers, witnessing
    the per-server bound of Theorem 6 from below. *)
val theorem6_adversarial :
  k:int -> f:int -> seed:int -> (Report.t, string) result

(** TH7 — minimum number of servers when each server stores at most
    [m] registers: the formula [ceil(kf/m) + f + 1] across capacities,
    with the layout's actual per-server maximum at that server count
    as a feasibility cross-check. *)
val theorem7 : k:int -> f:int -> capacities:int list -> Report.t

(** TH8 — non-adaptivity to point contention: per-epoch resource
    consumption of the Lemma 1 run while point contention stays 1. *)
val theorem8 : ?params:Params.t -> seed:int -> unit -> (Report.t, string) result

(** A1 — Algorithm 1's time complexity: CAS operations per write-max
    as a function of the number of concurrently writing clients
    (the space/time tradeoff noted in the paper's Section 5). *)
val algorithm1_time : writers_list:int list -> ops_per_writer:int -> seed:int -> Report.t

(** CLASS — the paper's classification (Sections 1 and 5): space
    complexity of f-tolerant k-register emulation per base-object type,
    side by side with Herlihy's consensus number — the point being that
    the two hierarchies disagree (register and max-register share
    consensus number 1 yet are separated by a factor of k). *)
val classification : k:int -> f:int -> n:int -> Report.t

(** RSPACE — the paper's closing question made measurable: atomicity
    from plain registers via reader write-back costs space linear in
    the number of readers ([Algorithm2_rwb]), while with max-register
    servers atomicity is free ([Abd_max_atomic] stays at [2f+1]). *)
val reader_space : k:int -> f:int -> n:int -> readers_list:int list -> Report.t

(** BAL — operational load balance: low-level operations landing on
    each server during a sequential Algorithm 2 workload.  The
    round-robin layout of Figure 1 spreads both storage and traffic;
    the report shows per-server trigger counts and the max/min ratio. *)
val load_balance : k:int -> f:int -> n:int -> rounds:int -> seed:int -> Report.t

(** A1c — three max-register implementations side by side (the
    space/time classification theme of Section 5): the flat
    one-register-per-writer construction ([k] objects, O(k) reads), the
    single-CAS emulation of Algorithm 1 (1 object, retrying writes),
    and the Aspnes–Attiya–Censor tree ([capacity-1] objects,
    O(log capacity) everywhere).  [k] writers each write [ops] values
    below [capacity]. *)
val maxreg_comparison : k:int -> capacity:int -> ops:int -> seed:int -> Report.t

(** Operation latency in simulated steps, per emulation.

    The paper's Section 5 raises time complexity as a companion to its
    space results ("we showed that although a max-register can be
    implemented from a single CAS, the time complexity of the
    implementation is high").  This experiment quantifies that inside
    the simulator: the number of scheduler steps between an operation's
    invocation and return, under the deterministic fair round-robin
    policy, which makes the numbers comparable across emulations.

    Expected shape: ABD over max-registers is the cheapest; the CAS
    emulation multiplies each server access by the Algorithm 1 retry
    loop; Algorithm 2's costs grow with its layout size (its collect
    reads every register). *)

open Regemu_bounds

type row = {
  algo : string;
  params : Params.t;
  avg_write : float;
  max_write : int;
  write_pcts : (float * int) list;
      (** p50/p95/p99 from {!Regemu_sim.Stats.percentiles} *)
  avg_read : float;
  max_read : int;
  read_pcts : (float * int) list;
}

(** Measure all applicable standard emulations at the given parameters
    over [rounds] sequential write+read rounds. *)
val compute : Params.t -> rounds:int -> row list

val report : Params.t -> row list -> Report.t

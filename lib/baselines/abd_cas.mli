(** Multi-writer ABD over CAS objects: the [2f+1] upper bound of
    Table 1 for the CAS row.

    Structurally {!Abd_max} with each server's max-register replaced by
    the Algorithm 1 emulation over a single CAS ({!Cas_maxreg}), which
    is how the paper derives the CAS upper bound from the max-register
    one.  Space cost is unchanged ([2f+1] objects); the price is time —
    each per-server write-max may need several CAS round trips. *)

val factory : Regemu_core.Emulation.factory

(** Algorithm 2 with reader write-back — an experimental answer to the
    paper's closing question (Section 5): {e "since atomicity usually
    requires readers to write, it is interesting to investigate whether
    the space complexity (assuming read/write registers) in this case
    also linearly depends on the number of readers."}

    Construction: run Algorithm 2's layout for [k + r] slots, giving
    every one of the [r] registered readers its own register set.  A
    read collects as usual, then {e writes the value it is about to
    return} into its own set with the same covering discipline writers
    use, and only then returns.  Any later read's collect intersects
    the reader's write quorum, so no later read can return an older
    value — the histories become atomic (validated by exhaustive
    linearization search in the tests), at a space cost of

    [(k+r)f + ceil((k+r)/z)(f+1)]

    base registers: linear in the number of readers, exactly the
    dependence the paper anticipates.  (This is an upper bound built
    from the paper's machinery; whether it is {e necessary} is the open
    question.)

    Note the write-back must use the reader's {e own} registers: with
    fault-prone registers a reader cannot safely write into a writer's
    set — its stale covering writes would be indistinguishable from the
    Lemma 1 adversary's, which is why readers cost space here while
    they are free with max-register servers
    ({!Abd_max_atomic}). *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim

type t

(** [create sim p ~writers ~readers]: requires
    [List.length writers = p.k]; readers are extra registered clients.
    The layout is sized for [p.k + List.length readers] slots. *)
val create :
  Sim.t -> Params.t -> writers:Id.Client.t list -> readers:Id.Client.t list -> t

val write : t -> Id.Client.t -> Value.t -> Sim.call

(** Only registered readers may read (they need a slot to write back
    into). *)
val read : t -> Id.Client.t -> Sim.call

val objects : t -> Id.Obj.t list

(** The space formula above. *)
val expected_objects : Params.t -> readers:int -> int

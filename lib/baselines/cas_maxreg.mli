(** Algorithm 1 (Appendix B): a wait-free atomic max-register emulated
    from a single CAS object.

    [write_max v] loops: read the current value with [CAS(v0, v0)]; if
    it is already [>= v], return; otherwise attempt [CAS(current, v)]
    and retry.  [read_max] is a single [CAS(v0, v0)].

    Two entry points are provided:

    - the callback-style primitives {!write_max_async} /
      {!read_max_async}, usable from response handlers, which
      {!Abd_cas} composes with quorums (one CAS per server);
    - a standalone {!instance}-like object over one CAS for the
      atomicity tests (Theorem 4) and the time-complexity benchmark
      discussed in the paper's Section 5: the number of CAS operations
      per write-max grows with the number of intervening updates,
      whereas a native max-register costs one operation. *)

open Regemu_objects
open Regemu_sim

(** [write_max_async sim ~client b v ~on_done] runs the Algorithm 1
    write-max loop on CAS object [b]; calls [on_done] once the
    max-register provably holds a value [>= v].  Never blocks. *)
val write_max_async :
  Sim.t ->
  client:Id.Client.t ->
  Id.Obj.t ->
  Value.t ->
  on_done:(unit -> unit) ->
  unit

(** [read_max_async sim ~client b ~on_value] reads the current maximum
    (one CAS).  Never blocks. *)
val read_max_async :
  Sim.t -> client:Id.Client.t -> Id.Obj.t -> on_value:(Value.t -> unit) -> unit

(** {2 Standalone single-object max-register} *)

type t

(** [create sim ~server] allocates the single CAS base object. *)
val create : Sim.t -> server:Id.Server.t -> t

val obj : t -> Id.Obj.t

(** Total CAS operations triggered through this max-register so far —
    the time-complexity measure. *)
val cas_count : t -> int

(** High-level operations, recorded in the trace as writes/reads of the
    emulated max-register so the linearizability checker can consume
    the history with {!Regemu_history.Linearize.max_register}. *)
val write_max : t -> Id.Client.t -> Value.t -> Sim.call

val read_max : t -> Id.Client.t -> Sim.call

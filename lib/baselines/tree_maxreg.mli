(** The Aspnes–Attiya–Censor bounded max-register (the paper's
    reference [4]): a wait-free linearizable max-register over the
    domain [0, capacity) built recursively from one-bit atomic
    registers.

    A max-register of size [m] is a switch bit plus two max-registers
    of size [ceil(m/2)]: values below the midpoint go left; a writer of
    a high value first writes into the right subtree and only then sets
    the switch, so a reader that sees the switch set finds the value
    already present.  Reads and writes touch [O(log capacity)]
    registers — compare a flat collect over [k] registers
    ({!Reg_maxreg}) or the retry loop over one CAS ({!Cas_maxreg}):
    three implementations of the same type with different space/time
    trade-offs, the theme of the paper's Section 5.

    Space: [capacity - 1] one-bit registers (a perfect binary tree of
    switches).  All of them live on a single server: like
    {!Reg_maxreg} this is a shared-memory construction, used per
    server. *)

open Regemu_objects
open Regemu_sim

type t

(** [create sim ~server ~capacity] builds the tree; requires
    [capacity >= 1].  Values written must lie in [0, capacity). *)
val create : Sim.t -> server:Id.Server.t -> capacity:int -> t

val capacity : t -> int

(** Number of base registers: [capacity - 1]. *)
val objects : t -> Id.Obj.t list

(** [write_max t c v] with [0 <= v < capacity]. *)
val write_max : t -> Id.Client.t -> int -> Sim.call

(** Returns the maximum value written so far (an [Int]), or [Int 0]. *)
val read_max : t -> Id.Client.t -> Sim.call

(** Low-level operations triggered by the last completed call — the
    [O(log capacity)] step-complexity measure. *)
val last_op_steps : t -> int

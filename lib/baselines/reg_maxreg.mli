(** A [k]-writer max-register from exactly [k] MWMR atomic registers —
    the construction matching Theorem 2's lower bound in the standard
    (failure-free) shared-memory model.

    Writer slot [w] owns register [w]: its write-max writes
    [max(previous own value, v)] to its own register and waits for the
    response, so each register holds the monotone maximum of its
    writer's values.  A read-max collects all [k] registers and returns
    the overall maximum.  Monotonicity of every register makes the
    collect linearizable (validated against the brute-force checker in
    the test suite).

    This is a shared-memory object: it assumes its single hosting
    server does not crash. *)

open Regemu_objects
open Regemu_sim

type t

(** [create sim ~server ~writers] allocates [List.length writers]
    registers on [server]. *)
val create : Sim.t -> server:Id.Server.t -> writers:Id.Client.t list -> t

val objects : t -> Id.Obj.t list
val write_max : t -> Id.Client.t -> Value.t -> Sim.call
val read_max : t -> Id.Client.t -> Sim.call

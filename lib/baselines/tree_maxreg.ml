open Regemu_objects
open Regemu_sim
open Regemu_core

(* A node covering the value range [0, size). *)
type node =
  | Leaf  (* size 1: only the value 0, no storage needed *)
  | Node of { switch : Id.Obj.t; mid : int; left : node; right : node }

type t = {
  sim : Sim.t;
  root : node;
  cap : int;
  objs : Id.Obj.t list;
  steps : int ref;  (* low-level ops of the call in progress *)
}

let rec build sim ~server ~size acc =
  if size <= 1 then (Leaf, acc)
  else begin
    let mid = (size + 1) / 2 in
    let switch = Sim.alloc sim ~server Base_object.Register in
    let left, acc = build sim ~server ~size:mid (switch :: acc) in
    let right, acc = build sim ~server ~size:(size - mid) acc in
    (Node { switch; mid; left; right }, acc)
  end

let create sim ~server ~capacity =
  if capacity < 1 then invalid_arg "Tree_maxreg.create: capacity >= 1";
  let root, objs = build sim ~server ~size:capacity [] in
  { sim; root; cap = capacity; objs = List.rev objs; steps = ref 0 }

let capacity t = t.cap
let objects t = t.objs
let last_op_steps t = !(t.steps)

let switch_set v = Value.equal v (Value.Int 1)

(* fiber-side register access, counting steps *)
let reg_read t c b =
  incr t.steps;
  Emulation.call_sync t.sim ~client:c b Base_object.Read

let reg_write t c b v =
  incr t.steps;
  ignore (Emulation.call_sync t.sim ~client:c b (Base_object.Write v))

let rec write_node t c node v =
  match node with
  | Leaf -> ()
  | Node { switch; mid; left; right } ->
      if v >= mid then begin
        (* store in the right subtree first, then flip the switch, so a
           reader that sees the switch finds the value in place *)
        write_node t c right (v - mid);
        reg_write t c switch (Value.Int 1)
      end
      else if not (switch_set (reg_read t c switch)) then
        (* the switch check is essential, not an optimization: once the
           switch is set the maximum is at least [mid], and a late write
           into the left subtree could otherwise be observed by a
           concurrent reader that passed the switch before it was set,
           producing a value that contradicts the real-time write order
           (this exact non-linearizable run was found by the random
           atomicity test before the check was added) *)
        write_node t c left v

let rec read_node t c node =
  match node with
  | Leaf -> 0
  | Node { switch; mid; left; right } ->
      if switch_set (reg_read t c switch) then mid + read_node t c right
      else read_node t c left

let write_max t c v =
  if v < 0 || v >= t.cap then
    invalid_arg
      (Fmt.str "Tree_maxreg.write_max: %d outside [0, %d)" v t.cap);
  Sim.invoke t.sim ~client:c (Trace.H_write (Value.Int v)) (fun () ->
      t.steps := 0;
      write_node t c t.root v;
      Value.Unit)

let read_max t c =
  Sim.invoke t.sim ~client:c Trace.H_read (fun () ->
      t.steps := 0;
      Value.Int (read_node t c t.root))

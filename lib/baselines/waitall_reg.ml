open Regemu_objects
open Regemu_sim
open Regemu_core

let make sim (p : Regemu_bounds.Params.t) ~writers =
  if List.length writers <> p.k then
    invalid_arg "Waitall_reg.make: writer count mismatch";
  if Sim.num_servers sim <> p.n then
    invalid_arg "Waitall_reg.make: server count mismatch";
  let replicas = (2 * p.f) + 1 in
  let objects =
    List.init replicas (fun i ->
        Sim.alloc sim ~server:(Id.Server.of_int i) Base_object.Register)
  in
  let is_writer c = List.exists (Id.Client.equal c) writers in
  let collect_max ~client ~quorum =
    let count = ref 0 in
    let best = ref Value.v0 in
    List.iter
      (fun b ->
        ignore
          (Sim.trigger sim ~client b Base_object.Read ~on_response:(fun v ->
               best := Value.max !best v;
               incr count)))
      objects;
    Sim.wait_until (fun () -> !count >= quorum);
    !best
  in
  let write c v =
    if not (is_writer c) then invalid_arg "Waitall_reg.write: not a writer";
    Sim.invoke sim ~client:c (Trace.H_write v) (fun () ->
        let latest = collect_max ~client:c ~quorum:(p.f + 1) in
        let ts_val = Value.with_ts (Value.ts latest + 1) v in
        let acks = ref 0 in
        List.iter
          (fun b ->
            ignore
              (Sim.trigger sim ~client:c b (Base_object.Write ts_val)
                 ~on_response:(fun _ -> incr acks)))
          objects;
        (* the fatal choice: wait for every single register *)
        Sim.wait_until (fun () -> !acks >= replicas);
        Value.Unit)
  in
  let read c =
    Sim.invoke sim ~client:c Trace.H_read (fun () ->
        Value.payload (collect_max ~client:c ~quorum:(p.f + 1)))
  in
  {
    Emulation.algo = "waitall-reg";
    kind = Base_object.Register;
    params = p;
    write;
    read;
    objects = (fun () -> objects);
  }

let factory =
  {
    Emulation.name = "waitall-reg";
    obj_kind = Base_object.Register;
    expected_objects = (fun p -> (2 * p.f) + 1);
    make;
  }

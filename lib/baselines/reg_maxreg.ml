open Regemu_objects
open Regemu_sim
open Regemu_core

type writer_state = { reg : Id.Obj.t; mutable local_max : Value.t }

type t = {
  sim : Sim.t;
  regs : Id.Obj.t list;
  states : (int * writer_state) list;  (* client id -> state *)
}

let create sim ~server ~writers =
  if writers = [] then invalid_arg "Reg_maxreg.create: no writers";
  let states =
    List.map
      (fun c ->
        let reg = Sim.alloc sim ~server Base_object.Register in
        (Id.Client.to_int c, { reg; local_max = Value.v0 }))
      writers
  in
  { sim; regs = List.map (fun (_, st) -> st.reg) states; states }

let objects t = t.regs

let state_of t c =
  match List.assoc_opt (Id.Client.to_int c) t.states with
  | Some st -> st
  | None -> invalid_arg "Reg_maxreg.write_max: not a registered writer"

let write_max t c v =
  let st = state_of t c in
  Sim.invoke t.sim ~client:c (Trace.H_write v) (fun () ->
      if Value.compare v st.local_max > 0 then begin
        st.local_max <- v;
        ignore
          (Emulation.call_sync t.sim ~client:c st.reg (Base_object.Write v))
      end;
      Value.Unit)

let read_max t c =
  Sim.invoke t.sim ~client:c Trace.H_read (fun () ->
      let remaining = ref (List.length t.regs) in
      let best = ref Value.v0 in
      List.iter
        (fun b ->
          ignore
            (Sim.trigger t.sim ~client:c b Base_object.Read
               ~on_response:(fun v ->
                 best := Value.max !best v;
                 decr remaining)))
        t.regs;
      Sim.wait_until (fun () -> !remaining = 0);
      !best)

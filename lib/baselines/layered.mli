(** The [(2f+1)k]-register construction for [n = 2f+1] (Sections 1
    and 4): every server implements a [k]-writer max-register out of
    [k] base registers (one per writer), and a quorum protocol runs on
    top.

    Because base registers can crash with their server, a writer may
    not wait for its own register on every server; it waits for [f+1]
    servers to durably hold its new timestamped value.  A register
    whose previous low-level write is still pending is not written
    again; instead the new value is queued and re-triggered by the
    response handler (the same never-two-own-pending-writes discipline
    as Algorithm 2, applied per server).

    At [n = 2f+1] the object count [(2f+1)k = kf + k(f+1)] is exactly
    [Formulas.register_upper_bound] — the point where the paper's lower
    and upper bounds coincide. *)

val factory : Regemu_core.Emulation.factory

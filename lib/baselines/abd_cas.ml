open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

let make sim (p : Params.t) ~writers =
  if List.length writers <> p.k then
    invalid_arg "Abd_cas.make: writer count mismatch";
  if Sim.num_servers sim <> p.n then
    invalid_arg "Abd_cas.make: server count mismatch";
  let replicas = (2 * p.f) + 1 in
  let objects =
    List.init replicas (fun i ->
        Sim.alloc sim ~server:(Id.Server.of_int i) Base_object.Cas)
  in
  let quorum = p.f + 1 in
  let is_writer c = List.exists (Id.Client.equal c) writers in
  (* read phase: one read-max (a CAS no-op) per server, wait for f+1 *)
  let collect_max ~client =
    let count = ref 0 in
    let best = ref Value.v0 in
    List.iter
      (fun b ->
        Cas_maxreg.read_max_async sim ~client b ~on_value:(fun v ->
            best := Value.max !best v;
            incr count))
      objects;
    Sim.wait_until (fun () -> !count >= quorum);
    !best
  in
  let write c v =
    if not (is_writer c) then invalid_arg "Abd_cas.write: not a writer";
    Sim.invoke sim ~client:c (Trace.H_write v) (fun () ->
        let latest = collect_max ~client:c in
        let ts_val = Value.with_ts (Value.ts latest + 1) v in
        let acks = ref 0 in
        List.iter
          (fun b ->
            Cas_maxreg.write_max_async sim ~client:c b ts_val
              ~on_done:(fun () -> incr acks))
          objects;
        Sim.wait_until (fun () -> !acks >= quorum);
        Value.Unit)
  in
  let read c =
    Sim.invoke sim ~client:c Trace.H_read (fun () ->
        Value.payload (collect_max ~client:c))
  in
  {
    Emulation.algo = "abd-cas";
    kind = Base_object.Cas;
    params = p;
    write;
    read;
    objects = (fun () -> objects);
  }

let factory =
  {
    Emulation.name = "abd-cas";
    obj_kind = Base_object.Cas;
    expected_objects = Formulas.cas_bound;
    make;
  }

(** Multi-writer ABD over max-registers: the [2f+1] upper bound of
    Table 1 for the max-register row.

    One max-register per server on [2f+1] servers.  A write reads-max
    from a majority to pick a fresh timestamp and writes-max the
    timestamped value to a majority; a read reads-max from a majority
    and returns the payload of the maximum.  Pending stale write-max
    operations are harmless — write-max is monotone — so no covering
    discipline is needed and the object count is independent of [k]:
    exactly the separation from plain registers the paper proves. *)

val factory : Regemu_core.Emulation.factory

(** The "wait for everyone" strawman: ABD over [2f+1] registers whose
    writer waits for {e all} of its low-level writes to respond before
    returning.

    This dodges the covering problem (no write ever leaves a pending
    low-level write behind), which is exactly why it cannot be
    [f]-tolerant: a single crashed — or merely silent — server blocks
    every subsequent write forever.  The test suite shows its write
    gets stuck both under one real crash and under the [Ad_i]
    adversary, while the safe schedules keep it correct.

    Together with {!Naive_reg} this brackets Algorithm 2 from both
    sides: waiting for everything loses liveness; waiting for a quorum
    without the covering discipline loses safety; the paper's
    construction pays [kf + ceil(k/z)(f+1)] registers to keep both. *)

val factory : Regemu_core.Emulation.factory

(** The {e unsound} strawman the lower bound rules out: ABD run
    verbatim over [2f+1] plain read/write registers (one per server),
    treating register writes as if they were write-max.

    With blind overwrites and no covering discipline, a stale pending
    low-level write left behind by an earlier high-level write can take
    effect {e after} a newer value was stored, erasing it on enough
    registers that a later read misses the newest value entirely.  The
    run of Lemma 4 / Figure 2 does exactly this;
    [Regemu_adversary.Violation] builds it against this factory and the
    WS-Safety checker flags the result.

    Under benign (e.g. synchronous, responses-first) schedules the
    algorithm behaves fine — which is why the asynchrony argument of
    the paper is needed at all. *)

val factory : Regemu_core.Emulation.factory

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

(* One register per (server, writer slot). *)
type cell = {
  reg : Id.Obj.t;
  mutable in_flight : Value.t option;
  mutable queued : Value.t option;
}

type writer_state = {
  client : Id.Client.t;
  cells : cell array;  (* one per server *)
  mutable ts_val : Value.t;
  mutable acks : int;  (* servers holding the current ts_val, responded *)
}

let rec submit sim st cell v =
  match cell.in_flight with
  | None ->
      cell.in_flight <- Some v;
      ignore
        (Sim.trigger sim ~client:st.client cell.reg (Base_object.Write v)
           ~on_response:(fun _ack -> on_response sim st cell v))
  | Some _ -> cell.queued <- Some v

and on_response sim st cell written =
  cell.in_flight <- None;
  (match cell.queued with
  | Some q ->
      cell.queued <- None;
      submit sim st cell q
  | None -> ());
  if Value.equal written st.ts_val then st.acks <- st.acks + 1

let make sim (p : Params.t) ~writers =
  if p.n <> (2 * p.f) + 1 then
    invalid_arg "Layered.make: construction defined only for n = 2f+1";
  if List.length writers <> p.k then
    invalid_arg "Layered.make: writer count mismatch";
  if Sim.num_servers sim <> p.n then
    invalid_arg "Layered.make: server count mismatch";
  let by_server = Array.make p.n [] in
  let states =
    List.map
      (fun c ->
        let cells =
          Array.init p.n (fun si ->
              let reg =
                Sim.alloc sim ~server:(Id.Server.of_int si)
                  Base_object.Register
              in
              by_server.(si) <- by_server.(si) @ [ reg ];
              { reg; in_flight = None; queued = None })
        in
        ( Id.Client.to_int c,
          { client = c; cells; ts_val = Value.with_ts 0 Value.v0; acks = 0 } ))
      writers
  in
  let objects_on s = by_server.(Id.Server.to_int s) in
  let all_objects = List.concat (Array.to_list by_server) in
  let state_of c =
    match List.assoc_opt (Id.Client.to_int c) states with
    | Some st -> st
    | None -> invalid_arg "Layered.write: not a registered writer"
  in
  let write c v =
    let st = state_of c in
    Sim.invoke sim ~client:c (Trace.H_write v) (fun () ->
        let latest =
          Emulation.collect sim ~client:c ~objects_on ~n:p.n ~f:p.f
        in
        st.ts_val <- Value.with_ts (Value.ts latest + 1) v;
        st.acks <- 0;
        Array.iter (fun cell -> submit sim st cell st.ts_val) st.cells;
        Sim.wait_until (fun () -> st.acks >= p.f + 1);
        Value.Unit)
  in
  let read c =
    Sim.invoke sim ~client:c Trace.H_read (fun () ->
        Value.payload
          (Emulation.collect sim ~client:c ~objects_on ~n:p.n ~f:p.f))
  in
  {
    Emulation.algo = "layered-2f+1";
    kind = Base_object.Register;
    params = p;
    write;
    read;
    objects = (fun () -> all_objects);
  }

let factory =
  {
    Emulation.name = "layered-2f+1";
    obj_kind = Base_object.Register;
    expected_objects = (fun p -> ((2 * p.f) + 1) * p.k);
    make;
  }

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

(* Phase helper: trigger [op] on every object, collect responses, block
   until [quorum] of them responded; return the max response. *)
let quorum_phase sim ~client ~objects ~op ~quorum =
  let count = ref 0 in
  let best = ref Value.v0 in
  List.iter
    (fun b ->
      ignore
        (Sim.trigger sim ~client b op ~on_response:(fun v ->
             best := Value.max !best v;
             incr count)))
    objects;
  Sim.wait_until (fun () -> !count >= quorum);
  !best

let make sim (p : Params.t) ~writers =
  if List.length writers <> p.k then
    invalid_arg "Abd_max.make: writer count mismatch";
  if Sim.num_servers sim <> p.n then
    invalid_arg "Abd_max.make: server count mismatch";
  let replicas = (2 * p.f) + 1 in
  let objects =
    List.init replicas (fun i ->
        Sim.alloc sim ~server:(Id.Server.of_int i) Base_object.Max_register)
  in
  let quorum = p.f + 1 in
  let is_writer c = List.exists (Id.Client.equal c) writers in
  let write c v =
    if not (is_writer c) then invalid_arg "Abd_max.write: not a writer";
    Sim.invoke sim ~client:c (Trace.H_write v) (fun () ->
        let latest =
          quorum_phase sim ~client:c ~objects ~op:Base_object.Max_read ~quorum
        in
        let ts_val = Value.with_ts (Value.ts latest + 1) v in
        let _ =
          quorum_phase sim ~client:c ~objects
            ~op:(Base_object.Max_write ts_val) ~quorum
        in
        Value.Unit)
  in
  let read c =
    Sim.invoke sim ~client:c Trace.H_read (fun () ->
        let latest =
          quorum_phase sim ~client:c ~objects ~op:Base_object.Max_read ~quorum
        in
        Value.payload latest)
  in
  {
    Emulation.algo = "abd-max";
    kind = Base_object.Max_register;
    params = p;
    write;
    read;
    objects = (fun () -> objects);
  }

let factory =
  {
    Emulation.name = "abd-max";
    obj_kind = Base_object.Max_register;
    expected_objects = Formulas.maxreg_bound;
    make;
  }

(** Atomic multi-writer ABD over max-registers: {!Abd_max} plus a
    reader {e write-back} phase.

    The paper targets WS-Regularity for its upper bounds precisely
    because atomicity usually requires readers to write (Section 1),
    which can make space depend on the number of readers for plain
    registers.  With max-register base objects the write-back reuses
    the same [2f+1] objects, so atomicity costs no extra space — only
    an extra round per read.  This gives the classic linearizable
    register: after a read returns [v], every later read returns a
    value at least as recent.

    Timestamps are totally ordered as [(ts, value)] pairs, so
    concurrent writers that pick the same numeric timestamp are still
    ordered consistently across all servers (write-max keeps the pair
    maximum).

    Atomicity is validated in the test suite by exhaustive
    linearization search over random concurrent schedules. *)

val factory : Regemu_core.Emulation.factory

open Regemu_objects
open Regemu_sim

let bump = function None -> () | Some r -> incr r

let cas_read_op =
  Base_object.Compare_and_swap { expected = Value.v0; desired = Value.v0 }

let rec attempt ?count sim ~client b v ~on_done =
  bump count;
  ignore
    (Sim.trigger sim ~client b cas_read_op ~on_response:(fun tmp ->
         if Value.compare tmp v >= 0 then on_done ()
         else begin
           bump count;
           ignore
             (Sim.trigger sim ~client b
                (Base_object.Compare_and_swap { expected = tmp; desired = v })
                ~on_response:(fun _ ->
                  attempt ?count sim ~client b v ~on_done))
         end))

let write_max_async sim ~client b v ~on_done =
  attempt sim ~client b v ~on_done

let read_max_async sim ~client b ~on_value =
  ignore (Sim.trigger sim ~client b cas_read_op ~on_response:on_value)

type t = { sim : Sim.t; obj : Id.Obj.t; count : int ref }

let create sim ~server =
  { sim; obj = Sim.alloc sim ~server Base_object.Cas; count = ref 0 }

let obj t = t.obj
let cas_count t = !(t.count)

let write_max t client v =
  Sim.invoke t.sim ~client (Trace.H_write v) (fun () ->
      let finished = ref false in
      attempt ~count:t.count t.sim ~client t.obj v ~on_done:(fun () ->
          finished := true);
      Sim.wait_until (fun () -> !finished);
      Value.Unit)

let read_max t client =
  Sim.invoke t.sim ~client Trace.H_read (fun () ->
      incr t.count;
      let got = ref None in
      ignore
        (Sim.trigger t.sim ~client t.obj cas_read_op ~on_response:(fun v ->
             got := Some v));
      Sim.wait_until (fun () -> !got <> None);
      Option.get !got)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

type t = {
  sim : Sim.t;
  params : Params.t;  (* the layout parameters: k' = k + r slots *)
  f : int;
  layout : Layout.t;
  writer_slots : (int * Quorum_write.t) list;
  reader_slots : (int * Quorum_write.t) list;
}

let expected_objects (p : Params.t) ~readers =
  Formulas.register_upper_bound
    (Params.make_exn ~k:(p.k + readers) ~f:p.f ~n:p.n)

let create sim (p : Params.t) ~writers ~readers =
  if List.length writers <> p.k then
    invalid_arg "Algorithm2_rwb.create: writer count mismatch";
  if readers = [] then invalid_arg "Algorithm2_rwb.create: no readers";
  let p' = Params.make_exn ~k:(p.k + List.length readers) ~f:p.f ~n:p.n in
  let layout = Layout.build sim p' in
  let slot_of i c = (Id.Client.to_int c, Quorum_write.create c (Layout.set_for_slot layout ~slot:i)) in
  let writer_slots = List.mapi slot_of writers in
  let reader_slots =
    List.mapi (fun i c -> slot_of (p.k + i) c) readers
  in
  { sim; params = p'; f = p.f; layout; writer_slots; reader_slots }

let objects t = Layout.all_objects t.layout

let collect t ~client =
  Emulation.collect t.sim ~client
    ~objects_on:(Layout.objects_on t.layout)
    ~n:t.params.Params.n ~f:t.f

let submit t slot v =
  let quorum = Array.length (Quorum_write.registers slot) - t.f in
  Quorum_write.submit t.sim slot v ~quorum

let find_slot slots c what =
  match List.assoc_opt (Id.Client.to_int c) slots with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Algorithm2_rwb.%s: unregistered client" what)

let write t c v =
  let slot = find_slot t.writer_slots c "write" in
  Sim.invoke t.sim ~client:c (Trace.H_write v) (fun () ->
      let latest = collect t ~client:c in
      submit t slot (Value.with_ts (Value.ts latest + 1) v);
      Value.Unit)

let read t c =
  let slot = find_slot t.reader_slots c "read" in
  Sim.invoke t.sim ~client:c Trace.H_read (fun () ->
      let latest = collect t ~client:c in
      (* write-back before returning: a later collect must see it *)
      submit t slot latest;
      Value.payload latest)

(** The metrics registry: named counters, gauges, and histograms with
    atomic hot paths, snapshotted to the [regemu-metrics/1] JSON
    schema.

    Counters and gauges are bare [int Atomic.t]s — an instrumented
    component holds the handle and pays one atomic RMW per update, the
    same cost as the ad-hoc [Atomic.t] fields this registry subsumes.
    {!gauge_fn} registers a {e polled} gauge: a closure read only at
    {!snapshot} time, which lets existing counters (history-log totals,
    mailbox depths) surface with zero hot-path change.

    Snapshots list metrics sorted by name, so two snapshots of
    identical state are byte-identical. *)

type t
(** A registry. *)

type counter = int Atomic.t
type gauge = int Atomic.t
type histogram

val schema : string
(** ["regemu-metrics/1"] *)

val create : unit -> t

(** {2 Registration}

    Idempotent per (name, kind): re-registering a name returns the
    existing handle, so a registry may outlive the components feeding
    it — a sweep's runs accumulate into one set of counters,
    Prometheus-style.  Re-registering with a different kind (or
    histogram edges) raises [Invalid_argument].  {!gauge_fn} replaces
    its poller instead (a component rebuilt mid-run just re-registers;
    the latest instance wins). *)

val counter : t -> ?unit_:string -> ?help:string -> string -> counter
val gauge : t -> ?unit_:string -> ?help:string -> string -> gauge

val gauge_fn :
  t -> ?unit_:string -> ?help:string -> string -> (unit -> int) -> unit

(** [histogram t ~edges name]: [edges] are strictly increasing
    inclusive upper bounds; a final [+inf] bucket is implied. *)
val histogram :
  t -> ?unit_:string -> ?help:string -> edges:int array -> string -> histogram

(** An unregistered histogram — same hot path, absent from snapshots.
    Lets a component keep its bucketed stats when no registry was
    supplied. *)
val hist_create : edges:int array -> histogram

val register_histogram :
  t -> ?unit_:string -> ?help:string -> string -> histogram -> unit

(** {2 Hot paths} *)

val incr : counter -> unit
val add : counter -> int -> unit
val get : counter -> int
val set : gauge -> int -> unit
val observe : histogram -> int -> unit

(** {2 Reading} *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_buckets : histogram -> int array
val hist_edges : histogram -> int array

(** [{"schema": "regemu-metrics/1", "metrics": [...]}], metrics sorted
    by name.  Polled gauges are read here. *)
val snapshot : t -> Json.t

(** One metric's snapshot JSON, if registered. *)
val find : t -> string -> Json.t option

(** Structural check of a snapshot: schema tag, per-metric shape,
    no duplicate names. *)
val validate_snapshot : Json.t -> (unit, string) result

(** The structured tracing core: per-actor recorders writing into
    preallocated overwrite rings ({!Ring}), timestamped by {!Clock} —
    so a deterministic-schedule run produces a deterministic trace.

    {2 Design}

    Every traced actor (a client, a transport lane, the checker, the
    fault injector, the cluster's control plane) owns one {!recorder}.
    Emission takes that recorder's uncontended mutex, stamps the event
    with the (possibly virtual) monotonic clock and a per-recorder
    sequence number, and pushes into the ring — no allocation beyond
    the event record, no shared hot lock, no I/O.  Export
    ({!Export.chrome_json}, {!Export.timeline}) happens after the run
    from a merged, deterministically ordered view ({!events}).

    Instrumented components take a [recorder option] seam, [None] by
    default (the same style as [Sched_hook]): an untraced run pays one
    option check per site and nothing else.

    {2 Sampling}

    The two knobs tame overhead on saturated runs: [ops_every] keeps
    every Nth operation span, [msgs_every] every Nth message point
    event, both on deterministic per-recorder counters.  Rare control
    events — retries, crashes, restarts, wipes, partitions, checker
    verdict flips, unavailability — are always recorded regardless of
    sampling; they are why the trace exists. *)

type t
(** A trace being collected: a registry of recorders plus the sampling
    and ring-capacity configuration they inherit. *)

type recorder
(** One actor's event stream. *)

type sampling = { ops_every : int; msgs_every : int }

val full_sampling : sampling

val default_ring_capacity : int
(** 65536 events per recorder. *)

(** [create ()] records everything ([ops_every = msgs_every = 1]).
    Raises [Invalid_argument] on non-positive knobs. *)
val create :
  ?ring_capacity:int -> ?ops_every:int -> ?msgs_every:int -> unit -> t

val sampling : t -> sampling

(** Register a new recorder.  Ids are assigned in registration order,
    which is deterministic under a virtual scheduler. *)
val recorder : t -> name:string -> recorder

val recorders : t -> recorder list
val recorder_name : recorder -> string
val recorder_id : recorder -> int

(** {2 Emission} *)

val span_begin :
  recorder -> ?args:(string * Event.arg) list -> cat:string -> string -> unit

val span_end :
  recorder -> ?args:(string * Event.arg) list -> cat:string -> string -> unit

val instant :
  recorder -> ?args:(string * Event.arg) list -> cat:string -> string -> unit

(** Advance the operation-sampling counter; [true] iff this operation's
    span should be recorded. *)
val sample_op : recorder -> bool

(** Advance the message-sampling counter; [true] iff this message's
    point event should be recorded. *)
val sample_msg : recorder -> bool

(** {2 Reading} *)

(** One recorder's held events, oldest first. *)
val recorder_events : recorder -> Event.t list

(** All events, tagged with their recorder's name, in the canonical
    export order: timestamp, then recorder id, then sequence number —
    a total, deterministic order. *)
val events : t -> (string * Event.t) list

(** Events emitted over the trace's lifetime (including overwritten). *)
val recorded : t -> int

(** Events lost to ring overwrite, across all recorders. *)
val dropped : t -> int

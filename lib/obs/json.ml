type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let rec emit b indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 1));
          emit b (indent + 1) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 1));
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b (indent + 1) x)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b 0 v;
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | Some x -> fail cur (Printf.sprintf "expected %c, found %c" c x)
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word v =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if cur.pos + 4 > String.length cur.s then
                  fail cur "truncated \\u escape";
                let hex = String.sub cur.s cur.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail cur "bad \\u escape"
                in
                cur.pos <- cur.pos + 4;
                (* we only emit \u00xx for control chars; decode the
                   BMP code point as UTF-8 for completeness *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail cur (Printf.sprintf "bad escape \\%c" c));
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
        advance cur;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  let tok = String.sub cur.s start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %s" tok)
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        (* an integer too large for [int] still parses as a float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail cur (Printf.sprintf "bad number %s" tok))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' ->
      advance cur;
      Str (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected , or ] in array"
        in
        List (items [])
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else
        let rec members acc =
          skip_ws cur;
          expect cur '"';
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected , or } in object"
        in
        Obj (members [])
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" cur.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

(** A minimal JSON emitter and parser — enough for the benchmark
    trajectory files and the DST replay format without pulling in a
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Pretty-printed with two-space indentation and a trailing newline. *)
val to_file : string -> t -> unit

(** {2 Parsing}

    A strict recursive-descent parser for the subset this module emits
    (standard JSON; numbers without a [.]/[e] land in [Int], the rest
    in [Float]).  Round-trips everything {!to_string} produces. *)

val of_string : string -> (t, string) result

(** Reads and parses a whole file; [Error] on parse failure.  Raises
    [Sys_error] if the file cannot be read. *)
val of_file : string -> (t, string) result

(** {2 Accessors} *)

(** [member k (Obj kvs)] is the value bound to [k], if any; [None] on
    non-objects. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

(** [Int]s coerce. *)
val to_float_opt : t -> float option

val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

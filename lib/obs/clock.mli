(** Monotonic time for the live runtime — virtualizable.

    Every latency measurement and retry/deadline clock in [lib/live]
    reads CLOCK_MONOTONIC (via the [bechamel.monotonic_clock] stub, a
    [@@noalloc] external), never [Unix.gettimeofday]: an NTP step or a
    leap-second smear must not produce negative latencies or spurious
    retransmission storms.

    Under deterministic-schedule testing ({!Regemu_dst.Sched}) the
    clock is {e virtual}: the scheduler installs its own nanosecond
    counter with {!set_source}, and every timer in the runtime —
    retransmission backoff, watchdog grace, op deadlines, latency
    stamps — reads simulated time instead.  The override is
    process-wide and intended for single-run test harnesses; the
    threaded production path never installs one, and the cost it pays
    is a single ref read per call. *)

(** Nanoseconds on the monotonic clock (origin unspecified; only
    differences are meaningful), or on the installed virtual source. *)
val now_ns : unit -> int64

(** Monotonic seconds as a float — drop-in for elapsed-time arithmetic
    previously done on [Unix.gettimeofday]. *)
val now_s : unit -> float

(** Install a virtual time source; all subsequent {!now_ns}/{!now_s}
    calls read it.  The source must be monotone non-decreasing. *)
val set_source : (unit -> int64) -> unit

(** Return to the real monotonic clock. *)
val clear_source : unit -> unit

(** Is a virtual source currently installed? *)
val virtualized : unit -> bool

let source : (unit -> int64) option ref = ref None

let now_ns () =
  match !source with None -> Monotonic_clock.now () | Some f -> f ()

let now_s () = Int64.to_float (now_ns ()) *. 1e-9
let set_source f = source := Some f
let clear_source () = source := None
let virtualized () = !source <> None

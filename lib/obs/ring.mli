(** A fixed-capacity overwriting ring: the event store behind every
    trace recorder.  A full ring drops its {e oldest} entry on push, so
    a long run keeps the most recent window of events at a bounded,
    preallocated cost — the flight-recorder discipline.  Not
    thread-safe; {!Trace} serializes access per recorder. *)

type 'a t

(** [create ~capacity ~dummy] preallocates [capacity] slots filled with
    [dummy] (never observable through {!to_list}).  Raises
    [Invalid_argument] on a non-positive capacity. *)
val create : capacity:int -> dummy:'a -> 'a t

val capacity : 'a t -> int

(** Entries currently held (≤ capacity). *)
val length : 'a t -> int

(** Total pushes over the ring's lifetime, including overwritten ones. *)
val pushed : 'a t -> int

(** Entries lost to overwriting: [pushed - length] once full. *)
val dropped : 'a t -> int

(** Append, overwriting the oldest entry when full. *)
val push : 'a t -> 'a -> unit

(** Held entries, oldest first. *)
val to_list : 'a t -> 'a list

(** Iterate held entries, oldest first. *)
val iter : 'a t -> ('a -> unit) -> unit

(** Forget everything (capacity is kept). *)
val clear : 'a t -> unit

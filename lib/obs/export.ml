let schema = "regemu-trace/1"

(* One emulated cluster = one Chrome "process"; recorders are threads. *)
let pid = 1

let us_of_ns ns = Int64.to_int (Int64.div ns 1_000L)

(* (recorder id, recorder name, event) for every held event, in the
   canonical (ts, recorder id, seq) order. *)
let tagged_events trace =
  List.concat_map
    (fun r ->
      List.map
        (fun e -> (Trace.recorder_id r, Trace.recorder_name r, e))
        (Trace.recorder_events r))
    (Trace.recorders trace)
  |> List.sort (fun (ia, _, (a : Event.t)) (ib, _, (b : Event.t)) ->
         match Int64.compare a.Event.ts_ns b.Event.ts_ns with
         | 0 -> (
             match Int.compare ia ib with
             | 0 -> Int.compare a.seq b.seq
             | c -> c)
         | c -> c)

let event_json ~tid (e : Event.t) =
  (* "ts" is Chrome's microsecond field (truncated); "tsns"/"seq" carry
     the exact stamp and tie-break rank so a trace round-trips and two
     replays of one schedule compare byte-for-byte. *)
  let args =
    ("tsns", Json.Int (Int64.to_int e.ts_ns))
    :: ("seq", Json.Int e.seq)
    :: List.map (fun (k, v) -> (k, Event.arg_json v)) e.args
  in
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (Event.ph_name e.ph));
      ("ts", Json.Int (us_of_ns e.ts_ns));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let thread_meta ~tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let chrome_json trace =
  let metas =
    List.map
      (fun r -> thread_meta ~tid:(Trace.recorder_id r) (Trace.recorder_name r))
      (Trace.recorders trace)
  in
  let events =
    List.map (fun (tid, _, e) -> event_json ~tid e) (tagged_events trace)
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("displayTimeUnit", Json.Str "ms");
      ("recorded", Json.Int (Trace.recorded trace));
      ("dropped", Json.Int (Trace.dropped trace));
      ("traceEvents", Json.List (metas @ events));
    ]

let ( let* ) r f = Result.bind r f

let str_member k j =
  Json.(member k j |> Option.map to_str_opt |> Option.join)

let int_member k j =
  Json.(member k j |> Option.map to_int_opt |> Option.join)

let req what o = match o with Some v -> Ok v | None -> Error ("missing " ^ what)

let validate_chrome j =
  let* s = req "schema" (str_member "schema" j) in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" s schema)
  in
  let* evs =
    req "traceEvents" Json.(member "traceEvents" j |> Option.map to_list_opt |> Option.join)
  in
  List.fold_left
    (fun acc ev ->
      let* () = acc in
      let* ph = req "ph" (str_member "ph" ev) in
      let* _ = req "tid" (int_member "tid" ev) in
      match ph with
      | "M" -> Ok ()
      | _ when Event.ph_of_name ph <> None ->
          let* _ = req "name" (str_member "name" ev) in
          let* _ = req "cat" (str_member "cat" ev) in
          let* _ = req "ts" (int_member "ts" ev) in
          Ok ()
      | _ -> Error (Printf.sprintf "unknown ph %S" ph))
    (Ok ()) evs

(* Rebuild (recorder name, event) rows from an exported trace, in file
   order (which chrome_json wrote canonically). *)
let of_chrome_json j =
  let* () = validate_chrome j in
  let evs =
    Json.(member "traceEvents" j |> Option.map to_list_opt |> Option.join)
    |> Option.value ~default:[]
  in
  let names = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match (str_member "ph" ev, str_member "name" ev, int_member "tid" ev) with
      | Some "M", Some "thread_name", Some tid -> (
          match
            Json.member "args" ev |> Option.map (str_member "name")
            |> Option.join
          with
          | Some n -> Hashtbl.replace names tid n
          | None -> ())
      | _ -> ())
    evs;
  let rows =
    List.filter_map
      (fun ev ->
        match str_member "ph" ev |> Option.map Event.ph_of_name |> Option.join with
        | None -> None
        | Some ph ->
            let tid = int_member "tid" ev |> Option.value ~default:0 in
            let args =
              Json.member "args" ev |> Option.value ~default:(Json.Obj [])
            in
            let ts_ns =
              match int_member "tsns" args with
              | Some ns -> Int64.of_int ns
              | None ->
                  Int64.mul
                    (Int64.of_int
                       (int_member "ts" ev |> Option.value ~default:0))
                    1_000L
            in
            let seq = int_member "seq" args |> Option.value ~default:0 in
            let rest =
              match args with
              | Json.Obj kvs ->
                  List.filter_map
                    (fun (k, v) ->
                      if k = "tsns" || k = "seq" then None
                      else Option.map (fun a -> (k, a)) (Event.arg_of_json v))
                    kvs
              | _ -> []
            in
            let name =
              Hashtbl.find_opt names tid
              |> Option.value ~default:(Printf.sprintf "tid-%d" tid)
            in
            Some
              ( name,
                {
                  Event.ts_ns;
                  seq;
                  ph;
                  name = str_member "name" ev |> Option.value ~default:"";
                  cat = str_member "cat" ev |> Option.value ~default:"";
                  args = rest;
                } ))
      evs
  in
  Ok rows

(* The compact text timeline: one line per event, time relative to the
   first event, spans indented by nesting depth within their recorder. *)
let timeline_of_events rows =
  match rows with
  | [] -> "(empty trace)\n"
  | (_, (e0 : Event.t)) :: _ ->
      let t0 =
        List.fold_left
          (fun acc (_, (e : Event.t)) -> min acc e.Event.ts_ns)
          e0.Event.ts_ns rows
      in
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 0 rows
      in
      let depth = Hashtbl.create 8 in
      let buf = Buffer.create 4096 in
      List.iter
        (fun (n, (e : Event.t)) ->
          let d0 = Option.value ~default:0 (Hashtbl.find_opt depth n) in
          let d =
            match e.ph with
            | Event.End -> max 0 (d0 - 1)
            | Event.Begin | Event.Instant -> d0
          in
          (match e.ph with
          | Event.Begin -> Hashtbl.replace depth n (d0 + 1)
          | Event.End -> Hashtbl.replace depth n d
          | Event.Instant -> ());
          let dt_us =
            Int64.to_float (Int64.sub e.ts_ns t0) /. 1_000.
          in
          Buffer.add_string buf
            (Fmt.str "%12.3f  %-*s  %s%a\n" dt_us width n
               (String.make (2 * d) ' ')
               Event.pp e))
        rows;
      Buffer.contents buf

let timeline trace =
  timeline_of_events
    (List.map (fun (_, n, e) -> (n, e)) (tagged_events trace))

(** Trace exporters.

    {!chrome_json} emits Chrome's [trace_event] JSON array format
    (load it at [chrome://tracing] or [ui.perfetto.dev]): each recorder
    becomes a named thread, spans become ["B"]/["E"] pairs, points
    become ["i"] instants.  The top-level object carries a
    [regemu-trace/1] schema tag plus [recorded]/[dropped] ring totals.

    Chrome's [ts] field is microseconds; to survive the round trip
    exactly, every event also carries its full nanosecond stamp and
    per-recorder sequence rank as the reserved args [tsns] and [seq].
    Event ordering in the file is canonical — (timestamp, recorder id,
    sequence) — so two runs over one deterministic schedule export
    byte-identical traces.

    {!timeline} renders the same stream as a compact text log: one
    line per event, times in microseconds relative to the first event,
    spans indented by nesting depth within their recorder. *)

val schema : string
(** ["regemu-trace/1"] *)

val chrome_json : Trace.t -> Json.t

(** Structural check: schema tag, [traceEvents] list, known [ph]
    letters, required fields per event. *)
val validate_chrome : Json.t -> (unit, string) result

(** Rebuild (recorder name, event) rows from an exported trace, in
    file order.  Validates first. *)
val of_chrome_json : Json.t -> ((string * Event.t) list, string) result

val timeline : Trace.t -> string

(** Render rows as {!timeline} does — the bridge from
    {!of_chrome_json}, for timelines of previously saved traces. *)
val timeline_of_events : (string * Event.t) list -> string

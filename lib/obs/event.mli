(** The trace event model — a deliberately small vocabulary that maps
    1:1 onto Chrome's [trace_event] phases.

    A {e span} is a [Begin]/[End] pair on one recorder (operation
    bodies, quorum waits); spans on the same recorder nest by
    bracketing, exactly as chrome://tracing renders them.  A {e point}
    ([Instant]) marks a moment: a message sent, dropped, or delivered,
    a retransmission, a crash, a checker verdict flip.

    Timestamps come from {!Clock} — virtual under deterministic
    schedule testing, monotonic nanoseconds otherwise — and [seq] is a
    per-recorder monotone counter that breaks timestamp ties so
    exports are deterministic. *)

type ph = Begin | End | Instant

(** Argument values kept primitive so the hot path never builds JSON. *)
type arg = I of int | S of string | B of bool | F of float

type t = {
  ts_ns : int64;  (** {!Clock.now_ns} at emission *)
  seq : int;  (** per-recorder emission rank *)
  ph : ph;
  name : string;  (** e.g. ["write"], ["send"], ["retry"] *)
  cat : string;  (** e.g. ["op"], ["msg"], ["fault"], ["checker"] *)
  args : (string * arg) list;
}

(** Chrome [ph] letter: ["B"], ["E"], ["i"]. *)
val ph_name : ph -> string

val ph_of_name : string -> ph option
val arg_json : arg -> Json.t
val arg_of_json : Json.t -> arg option
val arg_pp : arg Fmt.t
val args_pp : (string * arg) list Fmt.t
val pp : t Fmt.t

(** Placeholder for preallocated ring slots; never exported. *)
val hole : t

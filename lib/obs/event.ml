type ph = Begin | End | Instant

type arg = I of int | S of string | B of bool | F of float

type t = {
  ts_ns : int64;
  seq : int;
  ph : ph;
  name : string;
  cat : string;
  args : (string * arg) list;
}

let ph_name = function Begin -> "B" | End -> "E" | Instant -> "i"

let ph_of_name = function
  | "B" -> Some Begin
  | "E" -> Some End
  | "i" | "I" -> Some Instant
  | _ -> None

let arg_json = function
  | I i -> Json.Int i
  | S s -> Json.Str s
  | B b -> Json.Bool b
  | F f -> Json.Float f

let arg_of_json = function
  | Json.Int i -> Some (I i)
  | Json.Str s -> Some (S s)
  | Json.Bool b -> Some (B b)
  | Json.Float f -> Some (F f)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let arg_pp ppf = function
  | I i -> Fmt.int ppf i
  | S s -> Fmt.string ppf s
  | B b -> Fmt.bool ppf b
  | F f -> Fmt.pf ppf "%g" f

let args_pp ppf args =
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%a" k arg_pp v) args

let pp ppf e =
  Fmt.pf ppf "%s %s/%s%a"
    (match e.ph with Begin -> ">" | End -> "<" | Instant -> ".")
    e.cat e.name args_pp e.args

(* the placeholder filling unused ring slots *)
let hole = { ts_ns = 0L; seq = 0; ph = Instant; name = ""; cat = ""; args = [] }

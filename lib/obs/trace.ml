type sampling = { ops_every : int; msgs_every : int }

let full_sampling = { ops_every = 1; msgs_every = 1 }

type recorder = {
  id : int;
  name : string;
  m : Mutex.t;  (* guards the ring and the seq counter *)
  ring : Event.t Ring.t;
  sampling : sampling;
  mutable seq : int;
  op_ctr : int Atomic.t;  (* sampling decisions stay lock-free *)
  msg_ctr : int Atomic.t;
}

type t = {
  tm : Mutex.t;  (* guards recorder registration *)
  mutable recs_rev : recorder list;
  mutable nrecs : int;
  ring_capacity : int;
  sampling : sampling;
}

let default_ring_capacity = 65_536

let create ?(ring_capacity = default_ring_capacity) ?(ops_every = 1)
    ?(msgs_every = 1) () =
  if ring_capacity < 1 then invalid_arg "Trace.create: ring_capacity >= 1";
  if ops_every < 1 then invalid_arg "Trace.create: ops_every >= 1";
  if msgs_every < 1 then invalid_arg "Trace.create: msgs_every >= 1";
  {
    tm = Mutex.create ();
    recs_rev = [];
    nrecs = 0;
    ring_capacity;
    sampling = { ops_every; msgs_every };
  }

let sampling t = t.sampling

let recorder t ~name =
  Mutex.lock t.tm;
  let r =
    {
      id = t.nrecs;
      name;
      m = Mutex.create ();
      ring = Ring.create ~capacity:t.ring_capacity ~dummy:Event.hole;
      sampling = t.sampling;
      seq = 0;
      op_ctr = Atomic.make 0;
      msg_ctr = Atomic.make 0;
    }
  in
  t.recs_rev <- r :: t.recs_rev;
  t.nrecs <- t.nrecs + 1;
  Mutex.unlock t.tm;
  r

let recorders t =
  Mutex.lock t.tm;
  let rs = List.rev t.recs_rev in
  Mutex.unlock t.tm;
  rs

let recorder_name r = r.name
let recorder_id r = r.id

let emit r ph ~cat ~name args =
  let ts_ns = Clock.now_ns () in
  Mutex.lock r.m;
  let seq = r.seq in
  r.seq <- seq + 1;
  Ring.push r.ring { Event.ts_ns; seq; ph; name; cat; args };
  Mutex.unlock r.m

let span_begin r ?(args = []) ~cat name = emit r Event.Begin ~cat ~name args
let span_end r ?(args = []) ~cat name = emit r Event.End ~cat ~name args
let instant r ?(args = []) ~cat name = emit r Event.Instant ~cat ~name args

(* Deterministic 1-in-N sampling on per-recorder counters: the Nth,
   2Nth, ... decision says yes.  One atomic RMW per decision — a "no"
   must stay as cheap as the stats counters, since on a saturated run
   it is taken for every message. *)
let sample ctr every =
  every = 1 || Atomic.fetch_and_add ctr 1 mod every = 0

let sample_op r = sample r.op_ctr r.sampling.ops_every
let sample_msg r = sample r.msg_ctr r.sampling.msgs_every

let recorder_events r =
  Mutex.lock r.m;
  let evs = Ring.to_list r.ring in
  Mutex.unlock r.m;
  evs

let events t =
  let tagged =
    List.concat_map
      (fun r -> List.map (fun e -> (r.id, r.name, e)) (recorder_events r))
      (recorders t)
  in
  List.map
    (fun (_, name, e) -> (name, e))
    (List.sort
       (fun (ia, _, (a : Event.t)) (ib, _, (b : Event.t)) ->
         match Int64.compare a.Event.ts_ns b.Event.ts_ns with
         | 0 -> ( match Int.compare ia ib with 0 -> Int.compare a.seq b.seq | c -> c)
         | c -> c)
       tagged)

let recorded t =
  List.fold_left (fun acc r -> acc + Ring.pushed r.ring) 0 (recorders t)

let dropped t =
  List.fold_left (fun acc r -> acc + Ring.dropped r.ring) 0 (recorders t)

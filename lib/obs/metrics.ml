let schema = "regemu-metrics/1"

type counter = int Atomic.t

type gauge = int Atomic.t

type histogram = {
  edges : int array;  (* strictly increasing upper bounds; +inf implied *)
  buckets : int Atomic.t array;  (* length edges + 1 *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

type kind =
  | Counter of counter
  | Gauge of gauge
  | Gauge_fn of (unit -> int)
  | Histogram of histogram

type metric = { name : string; unit_ : string; help : string; kind : kind }

type t = { m : Mutex.t; mutable metrics_rev : metric list }

let create () = { m = Mutex.create (); metrics_rev = [] }

(* Registration is idempotent per (name, kind): asking again returns
   the existing handle, so a registry may outlive the components that
   feed it — a benchmark sweep's runs all accumulate into one set of
   counters, Prometheus-style.  A kind clash is a programming error. *)
let register_or_find t name unit_ help ~found ~make =
  Mutex.lock t.m;
  let r =
    match List.find_opt (fun mt -> mt.name = name) t.metrics_rev with
    | Some mt -> (
        match found mt.kind with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf "Metrics: %S re-registered with a different kind"
                 name))
    | None ->
        let kind, v = make () in
        t.metrics_rev <- { name; unit_; help; kind } :: t.metrics_rev;
        Ok v
  in
  Mutex.unlock t.m;
  match r with Ok v -> v | Error m -> invalid_arg m

let counter t ?(unit_ = "") ?(help = "") name =
  register_or_find t name unit_ help
    ~found:(function Counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = Atomic.make 0 in
      (Counter c, c))

let gauge t ?(unit_ = "") ?(help = "") name =
  register_or_find t name unit_ help
    ~found:(function Gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = Atomic.make 0 in
      (Gauge g, g))

(* Polled at snapshot time — lets existing counters (Histlog, mailbox
   depths, checker totals) surface without touching their hot paths.
   Re-registering a name replaces the previous poller, so a component
   rebuilt mid-run (e.g. a restarted server) just re-registers. *)
let gauge_fn t ?(unit_ = "") ?(help = "") name f =
  Mutex.lock t.m;
  t.metrics_rev <-
    { name; unit_; help; kind = Gauge_fn f }
    :: List.filter (fun mt -> mt.name <> name) t.metrics_rev;
  Mutex.unlock t.m

let hist_create ~edges =
  if Array.length edges = 0 then invalid_arg "Metrics.histogram: no edges";
  Array.iteri
    (fun i e ->
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics.histogram: edges must be strictly increasing")
    edges;
  {
    edges = Array.copy edges;
    buckets = Array.init (Array.length edges + 1) (fun _ -> Atomic.make 0);
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0;
  }

(* Registers the given handle; on an existing same-shape histogram the
   registered (possibly different) handle stays canonical, so callers
   that share registries should prefer {!histogram}. *)
let register_histogram t ?(unit_ = "") ?(help = "") name h =
  ignore
    (register_or_find t name unit_ help
       ~found:(function
         | Histogram h' when h'.edges = h.edges -> Some h'
         | _ -> None)
       ~make:(fun () -> (Histogram h, h)))

let histogram t ?(unit_ = "") ?(help = "") ~edges name =
  register_or_find t name unit_ help
    ~found:(function Histogram h when h.edges = edges -> Some h | _ -> None)
    ~make:(fun () ->
      let h = hist_create ~edges in
      (Histogram h, h))

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let get c = Atomic.get c
let set g v = Atomic.set g v

let observe h v =
  let n = Array.length h.edges in
  let rec idx i = if i >= n || v <= h.edges.(i) then i else idx (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(idx 0) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum v)

let hist_count h = Atomic.get h.h_count
let hist_sum h = Atomic.get h.h_sum
let hist_buckets h = Array.map Atomic.get h.buckets
let hist_edges h = Array.copy h.edges

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ | Gauge_fn _ -> "gauge"
  | Histogram _ -> "histogram"

let metric_json mt =
  let base =
    [ ("name", Json.Str mt.name); ("type", Json.Str (kind_name mt.kind)) ]
  in
  let base = if mt.unit_ = "" then base else base @ [ ("unit", Json.Str mt.unit_) ] in
  let base = if mt.help = "" then base else base @ [ ("help", Json.Str mt.help) ] in
  match mt.kind with
  | Counter c | Gauge c -> Json.Obj (base @ [ ("value", Json.Int (Atomic.get c)) ])
  | Gauge_fn f -> Json.Obj (base @ [ ("value", Json.Int (f ())) ])
  | Histogram h ->
      let buckets =
        List.init
          (Array.length h.buckets)
          (fun i ->
            let le =
              if i < Array.length h.edges then Json.Int h.edges.(i)
              else Json.Str "+inf"
            in
            Json.Obj [ ("le", le); ("count", Json.Int (Atomic.get h.buckets.(i))) ])
      in
      Json.Obj
        (base
        @ [
            ("buckets", Json.List buckets);
            ("count", Json.Int (Atomic.get h.h_count));
            ("sum", Json.Int (Atomic.get h.h_sum));
          ])

let snapshot t =
  Mutex.lock t.m;
  let metrics = List.rev t.metrics_rev in
  Mutex.unlock t.m;
  let metrics =
    List.sort (fun a b -> String.compare a.name b.name) metrics
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("metrics", Json.List (List.map metric_json metrics));
    ]

let find t name =
  Mutex.lock t.m;
  let r = List.find_opt (fun mt -> mt.name = name) t.metrics_rev in
  Mutex.unlock t.m;
  Option.map (fun mt -> metric_json mt) r

let ( let* ) r f = Result.bind r f

let req what o = match o with Some v -> Ok v | None -> Error ("missing " ^ what)

let validate_metric j =
  let* name = req "metric name" Json.(member "name" j |> Option.map to_str_opt |> Option.join) in
  let ctx = Printf.sprintf "metric %S: " name in
  let* ty =
    req (ctx ^ "type") Json.(member "type" j |> Option.map to_str_opt |> Option.join)
  in
  match ty with
  | "counter" | "gauge" ->
      let* v = req (ctx ^ "value") (Json.member "value" j) in
      if Json.to_int_opt v = None then Error (ctx ^ "value must be an integer")
      else Ok ()
  | "histogram" ->
      let* bl =
        req (ctx ^ "buckets")
          Json.(member "buckets" j |> Option.map to_list_opt |> Option.join)
      in
      let* () =
        List.fold_left
          (fun acc b ->
            let* () = acc in
            let* _ = req (ctx ^ "bucket le") (Json.member "le" b) in
            let* _ =
              req (ctx ^ "bucket count")
                Json.(member "count" b |> Option.map to_int_opt |> Option.join)
            in
            Ok ())
          (Ok ()) bl
      in
      let* _ =
        req (ctx ^ "count") Json.(member "count" j |> Option.map to_int_opt |> Option.join)
      in
      let* _ =
        req (ctx ^ "sum") Json.(member "sum" j |> Option.map to_int_opt |> Option.join)
      in
      Ok ()
  | other -> Error (ctx ^ "unknown type " ^ other)

let validate_snapshot j =
  let* s =
    req "schema" Json.(member "schema" j |> Option.map to_str_opt |> Option.join)
  in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" s schema)
  in
  let* ms =
    req "metrics" Json.(member "metrics" j |> Option.map to_list_opt |> Option.join)
  in
  let* _ =
    List.fold_left
      (fun acc m ->
        let* seen = acc in
        let* () = validate_metric m in
        let name =
          Json.(member "name" m |> Option.map to_str_opt |> Option.join)
          |> Option.value ~default:""
        in
        if List.mem name seen then Error (Printf.sprintf "duplicate metric %S" name)
        else Ok (name :: seen))
      (Ok []) ms
  in
  Ok ()

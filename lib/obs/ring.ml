type 'a t = {
  slots : 'a array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable pushed : int;
}

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { slots = Array.make capacity dummy; head = 0; len = 0; pushed = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let pushed t = t.pushed
let dropped t = t.pushed - t.len

let push t x =
  let cap = Array.length t.slots in
  t.slots.(t.head) <- x;
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1;
  t.pushed <- t.pushed + 1

let to_list t =
  let cap = Array.length t.slots in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i -> t.slots.((start + i) mod cap))

let iter t f = List.iter f (to_list t)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.pushed <- 0

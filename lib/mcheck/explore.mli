(** Bounded systematic schedule exploration (stateless model checking).

    Where the fuzzer samples schedules and the scripted adversary
    replays one known-bad schedule, this module enumerates {e all}
    schedules of a small scenario by depth-first search with replay:
    every branch re-executes the run from a fresh simulator, following
    a recorded prefix of event choices and then diverging.  On tiny
    configurations the search is exhaustive, upgrading "no violation
    found" from a sampling statement to a proof over the bounded
    scenario.

    Scenario semantics: each client runs its operations in program
    order; an operation is invoked eagerly as soon as the client is
    free (so concurrency between clients is maximal, which only
    strengthens the check).  Exploration stops a branch when every
    operation has returned — responses that would fire after the last
    return cannot affect any recorded result — or when no event is
    enabled (a stuck state, recorded separately).

    The total number of fired events across all branches is capped;
    [exhaustive] in the result tells whether the cap was hit. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history

(** What each client does, in program order. *)
type script = (Id.Client.t * Trace.hop list) list

(** When operations are invoked:
    - [Eager]: each client invokes its next operation as soon as it is
      free — maximal concurrency across clients;
    - [Sequential]: one high-level operation at a time, in script order
      across all clients — the write-sequential runs of the paper's
      lower bound, where all the adversarial freedom lives in the
      low-level response timing. *)
type mode = Eager | Sequential

(** A scenario builds a fresh system and returns, for every client
    mentioned in the script, a function invoking one operation. *)
type scenario = {
  params : Params.t;
  mode : mode;
  crashes : int;  (** crash choices available per schedule *)
  make : unit -> Sim.t * (Id.Client.t -> Trace.hop -> Sim.call) * script;
}

(** Build a scenario for an emulation factory: [writer_ops.(i)] is the
    list of values writer [i] writes; [reader_ops] is the number of
    reads performed by each of [readers] extra clients.

    [crashes] adds crash {e timing} to the explored choices: at every
    step the environment may also crash any correct server, up to
    [crashes] times per schedule.  Exhaustive exploration then covers
    every interleaving {e and} every crash placement — at a heavy
    multiplicative cost, so keep the scenario tiny. *)
val emulation_scenario :
  Regemu_core.Emulation.factory ->
  Params.t ->
  ?mode:mode ->
  ?crashes:int ->
  writer_ops:Value.t list list ->
  readers:int ->
  reads_each:int ->
  unit ->
  scenario

(** A live run of a scenario that can be advanced one chosen transition
    at a time, auto-invoking eligible script operations after every
    event.  The brute-force search below and the DPOR engine
    ({!Dpor}) both drive scenarios through this interface. *)
module Session : sig
  type t

  (** Fresh run, with the initially eligible operations invoked. *)
  val create : scenario -> t

  val sim : t -> Sim.t
  val calls : t -> Sim.call list

  (** [advance t idx] fires the [idx]-th choice: indices below the
      number of enabled simulator events fire that event; the rest
      index into {!crash_candidates}.  Auto-invokes afterwards. *)
  val advance : t -> int -> unit

  (** Every scripted operation invoked and returned. *)
  val finished : t -> bool

  (** Servers that may still be crashed, in choice order — empty once
      the scenario's crash budget is spent. *)
  val crash_candidates : t -> Id.Server.t list

  val enabled_events : t -> Sim.event list

  (** Number of choices available now (events + crashes). *)
  val width : t -> int

  (** [replay scenario prefix] rebuilds a run and advances it through
      [prefix] — choices are deterministic, so this reproduces the
      state exactly. *)
  val replay : scenario -> int list -> t
end

type result = {
  terminal_runs : int;  (** complete schedules explored *)
  distinct_histories : int;
      (** semantically distinct high-level histories among the
          terminal runs — usually far fewer than the schedules *)
  stuck_runs : int;  (** schedules ending with no enabled event *)
  fired_events : int;  (** total events fired across all replays *)
  exhaustive : bool;  (** the whole space was covered within budget *)
  max_depth : int;
  ws_safe_violations : History.t list;  (** first few violating runs *)
  ws_regular_violations : History.t list;
  first_violation_at : int option;
      (** total fired events when the first violation surfaced *)
}

val result_pp : result Fmt.t

(** [run scenario ~max_fired] explores depth-first until done or until
    [max_fired] events have been fired in total.  With
    [~stop_on_violation:true] the search also stops at the first
    violating run (useful as a bug-finding mode). *)
val run : ?stop_on_violation:bool -> scenario -> max_fired:int -> result

open Regemu_bounds
open Regemu_objects
open Regemu_netsim
open Regemu_history

type scenario = {
  params : Params.t;
  protocol : Net_scenario.protocol;
  ops : [ `Write of Value.t | `Read ] list;
  crashes : int;
}

type result = {
  terminal_runs : int;
  distinct_histories : int;
  stuck_runs : int;
  fired_events : int;
  exhaustive : bool;
  max_depth : int;
  ws_safe_violations : History.t list;
}

let result_pp ppf r =
  Fmt.pf ppf
    "%d terminal runs (%d distinct histories), %d stuck, %d events fired, \
     exhaustive=%b, max depth %d, %d WS-Safe violations"
    r.terminal_runs r.distinct_histories r.stuck_runs r.fired_events
    r.exhaustive r.max_depth
    (List.length r.ws_safe_violations)

type session = {
  net : Net.t;
  calls : unit -> Net.call list;
  all_invoked : unit -> bool;
  advance : int -> unit;
}

let run scenario ~max_fired =
  let p = scenario.params in
  let fired = ref 0 in
  let truncated = ref false in
  let terminal = ref 0 in
  let stuck = ref 0 in
  let max_depth = ref 0 in
  let distinct : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  let fresh_session () =
    let net = Net.create ~n:p.n () in
    let writers = List.init p.k (fun _ -> Net.new_client net) in
    let write, read = scenario.protocol.make net p ~writers in
    let reader = Net.new_client net in
    let remaining = ref scenario.ops in
    let next_writer = ref 0 in
    let calls = ref [] in
    let rec auto_invoke () =
      let all_returned = List.for_all Net.call_returned !calls in
      match !remaining with
      | op :: rest when all_returned ->
          remaining := rest;
          (match op with
          | `Write v ->
              let w = List.nth writers (!next_writer mod p.k) in
              incr next_writer;
              calls := write w v :: !calls
          | `Read -> calls := read reader :: !calls);
          auto_invoke ()
      | _ -> ()
    in
    auto_invoke ();
    {
      net;
      calls = (fun () -> !calls);
      all_invoked = (fun () -> !remaining = []);
      advance =
        (fun idx ->
          let evs = Net.enabled net in
          let n_ev = List.length evs in
          if idx < n_ev then Net.fire net (List.nth evs idx)
          else begin
            let correct =
              List.filter
                (fun s -> not (Net.server_crashed net s))
                (Net.servers net)
            in
            Net.crash_server net (List.nth correct (idx - n_ev))
          end;
          incr fired;
          auto_invoke ());
    }
  in
  let replay prefix =
    let s = fresh_session () in
    List.iter s.advance prefix;
    s
  in
  let record_terminal net =
    let h = Net.history net in
    Hashtbl.replace distinct (Fmt.str "%a" History.pp h) ();
    match Ws_check.check_ws_safe h with
    | Ws_check.Violated _ ->
        if List.length !violations < 3 then violations := h :: !violations
    | Ws_check.Holds | Ws_check.Vacuous -> ()
  in
  let crashed_count net =
    List.length (List.filter (Net.server_crashed net) (Net.servers net))
  in
  let rec dfs session prefix =
    if !fired >= max_fired then truncated := true
    else begin
      let depth = List.length prefix in
      if depth > !max_depth then max_depth := depth;
      let finished =
        session.all_invoked ()
        && List.for_all Net.call_returned (session.calls ())
      in
      if finished then begin
        incr terminal;
        record_terminal session.net
      end
      else begin
        let crash_choices =
          if crashed_count session.net < scenario.crashes then
            List.length
              (List.filter
                 (fun s -> not (Net.server_crashed session.net s))
                 (Net.servers session.net))
          else 0
        in
        match Net.enabled session.net with
        | [] when crash_choices = 0 -> incr stuck
        | evs ->
            let width = List.length evs + crash_choices in
            session.advance 0;
            dfs session (prefix @ [ 0 ]);
            for i = 1 to width - 1 do
              if !fired < max_fired then
                dfs (replay (prefix @ [ i ])) (prefix @ [ i ])
            done
      end
    end
  in
  dfs (fresh_session ()) [];
  {
    terminal_runs = !terminal;
    distinct_histories = Hashtbl.length distinct;
    stuck_runs = !stuck;
    fired_events = !fired;
    exhaustive = not !truncated;
    max_depth = !max_depth;
    ws_safe_violations = List.rev !violations;
  }

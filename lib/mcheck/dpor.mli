(** Bounded-exhaustive exploration with dynamic partial-order
    reduction (Flanagan–Godefroid style), over the same scenarios as
    {!Explore}.

    Where {!Explore.run} fires every enabled transition at every state,
    this engine executes one transition per state and plants {e
    backtrack points} only where two transitions genuinely race:
    happens-before is tracked with vector clocks over a component
    model — a per-client component (predicate wake-ups and response
    delivery), a per-object component (state application at respond),
    and a history component carried by every step that records an
    invocation or return — and a transition is re-ordered against an
    earlier one only when their footprints intersect and neither is in
    the other's causal past.  Sleep sets prune the remaining
    commutative permutations.  Crash choices are treated as globally
    dependent, so every crash placement is still explored.

    Soundness relies on two facts about the substrate checked in
    test/suite_explore.ml: high-level history entries are recorded
    only during [Step] events (so any two history-recording
    transitions share the history component and the WS verdict is
    invariant across a Mazurkiewicz trace class), and commuting
    independent transitions changes at most low-level operation
    numbering, which no recorded verdict reads.  Dependence is
    over-approximated (a step's static footprint includes the history
    component even if it ends up recording nothing), which can only
    cost pruning, never soundness.

    Every terminal (and stuck) state is checked for WS-Safety,
    WS-Regularity, and the algorithm-level invariants of
    {!Regemu_history.Invariants}; a fingerprint of the high-level
    history, final register values, and verdict class is collected so
    reduced and brute-force searches can be compared for state
    equality. *)

type stats = {
  explored : int;  (** transitions executed (DFS edges) *)
  replayed : int;  (** prefix transitions re-fired to rebuild states *)
  pruned : int;
      (** enabled transitions never fired at visited states — a lower
          bound on the extra work brute force would have done, since
          each also roots an unexplored subtree *)
  sleep_skipped : int;  (** backtrack picks skipped as sleeping *)
  terminal_runs : int;
  stuck_runs : int;
  distinct_states : int;  (** distinct terminal fingerprints *)
  max_depth : int;
  exhaustive : bool;  (** finished within [max_explored] *)
  ws_safe_violations : int;
  ws_regular_violations : int;
  invariant_violations : int;
  first_violation : string option;
  state_fingerprints : string list;
      (** sorted; for DPOR-vs-brute-force equivalence checks *)
}

val stats_pp : stats Fmt.t

(** [run scenario ~max_explored] explores until done or until
    [max_explored] transitions have been executed.  [~dpor:false]
    disables the reduction (every enabled transition is a backtrack
    point — brute force in the same engine, for differential testing);
    [~sleep:false] disables sleep sets only.  [~check_invariants:false]
    skips the {!Regemu_history.Invariants} checks (the naive algorithm
    violates them by design). *)
val run :
  ?dpor:bool ->
  ?sleep:bool ->
  ?check_invariants:bool ->
  Explore.scenario ->
  max_explored:int ->
  stats

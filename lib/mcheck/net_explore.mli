(** Bounded systematic exploration for the message-passing substrate:
    enumerate every delivery order (and optionally every crash
    placement) of a tiny wire-protocol scenario.

    The stateless-model-checking twin of {!Explore}, over
    {!Regemu_netsim.Net}: a choice point offers every deliverable
    message, every steppable client, and — within the [crashes]
    budget — crashing any correct server.  High-level operations run
    sequentially in script order (one at a time), which is where the
    interesting nondeterminism lives for quorum protocols: which
    requests a quorum is built from, and which stale datagrams land
    later.

    Exhaustive runs upgrade "ABD is correct on the wire" from a
    sampling statement to a verified one for the bounded instance. *)

open Regemu_bounds
open Regemu_objects
open Regemu_netsim

type scenario = {
  params : Params.t;
  protocol : Net_scenario.protocol;
  ops : [ `Write of Value.t | `Read ] list;
      (** executed sequentially; writes rotate through the [k] writers *)
  crashes : int;
}

type result = {
  terminal_runs : int;
  distinct_histories : int;
  stuck_runs : int;
  fired_events : int;
  exhaustive : bool;
  max_depth : int;
  ws_safe_violations : Regemu_history.History.t list;
}

val result_pp : result Fmt.t

val run : scenario -> max_fired:int -> result

open Regemu_objects
open Regemu_sim
open Regemu_history

(* --- threads, components, clocks ----------------------------------------- *)

type thread = TC of int | TL of int | TX of int

module TMap = Map.Make (struct
  type t = thread

  let compare = compare
end)

module TSet = Set.Make (struct
  type t = thread

  let compare = compare
end)

type comp = Cclient of int | Cobj of int | Chist

(* How a transition touches a component.  [Accum] is a commutative
   update: two accumulations on the same component commute exactly
   (delivering two responses to one client adds both to its response
   set either way, and a quorum-crossing delivery triggers the same
   follow-up operations in either order), but an accumulation races
   with a [Read]/[Write] access (the client's step observes the set's
   intermediate state). *)
type acc = Write | Accum

let acc_dep a b = match (a, b) with Accum, Accum -> false | _ -> true

(* A clock maps a thread to the greatest trace depth of one of its
   events known to be in the causal past; per-thread events are totally
   ordered by depth, so a max-depth map is a sound vector clock. *)
type clock = int TMap.t

let clock_empty : clock = TMap.empty
let clock_mem (v : clock) th i =
  match TMap.find_opt th v with Some d -> d >= i | None -> false

let clock_join (a : clock) (b : clock) : clock =
  TMap.union (fun _ x y -> Some (max x y)) a b

let clock_add (v : clock) th d : clock =
  TMap.update th
    (function Some d' -> Some (max d d') | None -> Some d)
    v

module CMap = Map.Make (struct
  type t = comp

  let compare = compare
end)

(* --- transition descriptors ---------------------------------------------- *)

(* The static footprint over-approximates what firing the transition
   may touch; after execution the footprint is refined with what it
   actually did (history entries recorded, clients invoked).  Crashes
   are modeled as globally dependent: [is_crash] short-circuits the
   component intersection. *)
type tdesc = { thread : thread; comps : (comp * acc) list; is_crash : bool }

(* dependence between an executed event (refined footprint [ca],
   crash flag [ca_crash]) and a transition descriptor [b] *)
let dep_exec ~ca ~ca_crash (b : tdesc) =
  ca_crash || b.is_crash
  || List.exists
       (fun (c, a) ->
         List.exists (fun (c', a') -> c = c' && acc_dep a a') b.comps)
       ca

let describe session =
  let sim = Explore.Session.sim session in
  let pend = Sim.pending sim in
  let lop_info l =
    List.find (fun (p : Sim.pending_info) -> p.lid = l) pend
  in
  let ev_descs =
    List.map
      (fun ev ->
        match ev with
        | Sim.Step c ->
            (* Chist: a step may record returns/invokes.  Executed
               footprints drop it when nothing was recorded. *)
            {
              thread = TC (Id.Client.to_int c);
              comps = [ (Cclient (Id.Client.to_int c), Write); (Chist, Write) ];
              is_crash = false;
            }
        | Sim.Respond l ->
            let p = lop_info l in
            {
              thread = TL (Id.Lop.to_int l);
              comps =
                [
                  (Cclient (Id.Client.to_int p.client), Accum);
                  (Cobj (Id.Obj.to_int p.obj), Write);
                ];
              is_crash = false;
            })
      (Explore.Session.enabled_events session)
  in
  let crash_descs =
    List.map
      (fun s ->
        { thread = TX (Id.Server.to_int s); comps = []; is_crash = true })
      (Explore.Session.crash_candidates session)
  in
  Array.of_list (ev_descs @ crash_descs)

(* --- search nodes --------------------------------------------------------- *)

type node = {
  descs : tdesc array;
  enabled_threads : TSet.t;
  (* entry snapshots; immutable maps make backtracking free *)
  cv : clock TMap.t;  (* per-thread clocks *)
  clast : (clock * clock) CMap.t;
      (* per component: (join of writing accessors, join of all
         accessors) — an accumulation's past needs only the writers,
         a write's past needs everyone *)
  gclock : clock;  (* joined into everything; crashes write it *)
  mutable backtrack : TSet.t;
  mutable done_ : TSet.t;
  mutable cur_sleep : (thread * (comp * acc) list) list;
  mutable executed : int;  (* children actually fired from here *)
  (* set while one child subtree is active *)
  mutable exec_idx : int;
  mutable exec_comps : (comp * acc) list;  (* refined post-execution footprint *)
  mutable exec_is_crash : bool;
  mutable exec_thread : thread;
  mutable exec_clock : clock;
}

type stats = {
  explored : int;
  replayed : int;
  pruned : int;
  sleep_skipped : int;
  terminal_runs : int;
  stuck_runs : int;
  distinct_states : int;
  max_depth : int;
  exhaustive : bool;
  ws_safe_violations : int;
  ws_regular_violations : int;
  invariant_violations : int;
  first_violation : string option;
  state_fingerprints : string list;
}

let stats_pp ppf s =
  Fmt.pf ppf
    "%d transitions explored (+%d replayed), %d pruned, %d sleep-skipped, %d \
     terminal / %d stuck runs, %d distinct states, depth %d, exhaustive=%b, \
     violations ws-safe=%d ws-regular=%d invariant=%d"
    s.explored s.replayed s.pruned s.sleep_skipped s.terminal_runs
    s.stuck_runs s.distinct_states s.max_depth s.exhaustive
    s.ws_safe_violations s.ws_regular_violations s.invariant_violations

(* --- terminal-state recording -------------------------------------------- *)

(* The fingerprint must be invariant across schedules of the same
   Mazurkiewicz trace class: high-level entries are recorded only
   during [Step] events (returns resume fibers; invokes ride on the
   step that freed the client), and any two history-recording steps
   share the [Chist] component, so the Invoke/Return subsequence —
   including every read's result — is class-invariant.  Trace times,
   lop ids (numbering shifts under commuting triggers), and raw base
   object values (a leftover respond firing between the last return
   and the end of the run changes them without affecting anything any
   client observed) are all below the abstraction line and stay
   out. *)
let fingerprint sim ~stuck verdict_s verdict_r =
  let b = Buffer.create 128 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  Trace.iter
    (fun e ->
      match e with
      | Trace.Invoke (c, hop) ->
          add "I%d:%a;" (Id.Client.to_int c) Trace.hop_pp hop
      | Trace.Return (c, hop, v) ->
          add "R%d:%a=%a;" (Id.Client.to_int c) Trace.hop_pp hop Value.pp v
      | _ -> ())
    (Sim.trace sim);
  let letter = function
    | Ws_check.Holds -> 'H'
    | Ws_check.Vacuous -> 'V'
    | Ws_check.Violated _ -> 'X'
  in
  add "|%c%c%s" (letter verdict_s) (letter verdict_r)
    (if stuck then "|stuck" else "");
  Buffer.contents b

(* --- the search ----------------------------------------------------------- *)

let run ?(dpor = true) ?(sleep = true) ?(check_invariants = true)
    (scenario : Explore.scenario) ~max_explored =
  let explored = ref 0 in
  let replayed = ref 0 in
  let pruned = ref 0 in
  let sleep_skipped = ref 0 in
  let terminal = ref 0 in
  let stuck = ref 0 in
  let max_depth = ref 0 in
  let truncated = ref false in
  let fingerprints : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let safe_bad = ref 0 in
  let regular_bad = ref 0 in
  let inv_bad = ref 0 in
  let first_violation = ref None in
  let note_violation msg =
    if !first_violation = None then first_violation := Some msg
  in
  let record session ~is_stuck =
    let sim = Explore.Session.sim session in
    let tr = Sim.trace sim in
    let h = History.of_trace tr in
    let vs = Ws_check.check_ws_safe h in
    let vr = Ws_check.check_ws_regular h in
    (match vs with
    | Ws_check.Violated v ->
        incr safe_bad;
        note_violation (Fmt.str "ws-safe: %a" Ws_check.violation_pp v)
    | _ -> ());
    (match vr with
    | Ws_check.Violated v ->
        incr regular_bad;
        note_violation (Fmt.str "ws-regular: %a" Ws_check.violation_pp v)
    | _ -> ());
    if check_invariants then begin
      (match Invariants.single_pending_write_per_writer_register tr with
      | Error v ->
          incr inv_bad;
          note_violation (Fmt.str "invariant: %a" Invariants.violation_pp v)
      | Ok () -> ());
      match
        Invariants.max_pending_writes_at_return tr ~f:scenario.Explore.params.f
      with
      | Error v ->
          incr inv_bad;
          note_violation (Fmt.str "invariant: %a" Invariants.violation_pp v)
      | Ok () -> ()
    end;
    Hashtbl.replace fingerprints (fingerprint sim ~stuck:is_stuck vs vr) ();
    if is_stuck then incr stuck else incr terminal
  in
  (* the DFS stack; nodes stay addressable for race detection *)
  let stack : node option array ref = ref (Array.make 64 None) in
  let stack_set d n =
    if d >= Array.length !stack then begin
      let bigger = Array.make (2 * (d + 1)) None in
      Array.blit !stack 0 bigger 0 (Array.length !stack);
      stack := bigger
    end;
    !stack.(d) <- Some n
  in
  let stack_get d = Option.get !stack.(d) in
  (* Flanagan–Godefroid race detection: for enabled transition [t] at
     depth [d], find the latest executed event that is dependent with
     [t] and not in its causal past, and plant a backtrack point just
     before it.  If [t]'s thread was not enabled there, fall back to
     the threads that causally feed [t] (or, failing that, everything
     enabled — the conservative patch that keeps the reduction
     sound). *)
  let race_detect d (t : tdesc) =
    let vt =
      match TMap.find_opt t.thread (stack_get d).cv with
      | Some v -> v
      | None -> clock_empty
    in
    let rec scan i =
      if i >= 0 then begin
        let ni = stack_get i in
        if
          dep_exec ~ca:ni.exec_comps ~ca_crash:ni.exec_is_crash t
          && not (clock_mem vt ni.exec_thread i)
        then begin
          if TSet.mem t.thread ni.enabled_threads then
            ni.backtrack <- TSet.add t.thread ni.backtrack
          else begin
            (* threads with events in (i, d) inside t's causal past *)
            let feeders = ref TSet.empty in
            for m = i + 1 to d - 1 do
              let nm = stack_get m in
              if clock_mem vt nm.exec_thread m then
                feeders := TSet.add nm.exec_thread !feeders
            done;
            let cands = TSet.inter !feeders ni.enabled_threads in
            ni.backtrack <-
              TSet.union ni.backtrack
                (if TSet.is_empty cands then ni.enabled_threads else cands)
          end
        end
        else scan (i - 1)
      end
    in
    scan (d - 1)
  in
  (* execute descs.(idx) on [session] positioned at depth [d]'s state,
     updating node [nd]'s exec fields; returns the child's snapshots *)
  let execute nd d session idx =
    let t = nd.descs.(idx) in
    let sim = Explore.Session.sim session in
    let time_before = Sim.now sim in
    let lids_before =
      List.fold_left
        (fun acc (p : Sim.pending_info) ->
          TSet.add (TL (Id.Lop.to_int p.lid)) acc)
        TSet.empty (Sim.pending sim)
    in
    let ncalls_before = List.length (Explore.Session.calls session) in
    Explore.Session.advance session idx;
    incr explored;
    (* the event's clock: its thread's past, the last writers of its
       components, the global clock, and itself *)
    let base =
      match TMap.find_opt t.thread nd.cv with
      | Some v -> v
      | None -> clock_empty
    in
    let v =
      List.fold_left
        (fun vacc (c, a) ->
          match CMap.find_opt c nd.clast with
          | Some (w, all) ->
              clock_join vacc (match a with Accum -> w | Write -> all)
          | None -> vacc)
        (clock_join base nd.gclock) t.comps
    in
    let v = clock_add v t.thread d in
    (* refine the footprint with what actually happened *)
    let recorded_h = ref false in
    List.iter
      (fun e ->
        match e with
        | Trace.Invoke _ | Trace.Return _ -> recorded_h := true
        | _ -> ())
      (Trace.since (Sim.trace sim) time_before);
    let invoked_clients =
      (* calls are consed newest-first; the head of the list is new *)
      let cs = Explore.Session.calls session in
      List.filteri (fun i _ -> i < List.length cs - ncalls_before) cs
      |> List.map (fun c -> Id.Client.to_int (Sim.call_client c))
    in
    let exec_comps =
      List.filter (fun (c, _) -> c <> Chist || !recorded_h) t.comps
      @ List.map (fun c -> (Cclient c, Write)) invoked_clients
    in
    nd.exec_idx <- idx;
    nd.exec_comps <- exec_comps;
    nd.exec_is_crash <- t.is_crash;
    nd.exec_thread <- t.thread;
    nd.exec_clock <- v;
    (* child snapshots *)
    let cv = TMap.add t.thread v nd.cv in
    let cv =
      List.fold_left
        (fun acc c ->
          let th = TC c in
          let old =
            match TMap.find_opt th acc with
            | Some w -> w
            | None -> clock_empty
          in
          TMap.add th (clock_join old v) acc)
        cv invoked_clients
    in
    let cv =
      List.fold_left
        (fun acc (p : Sim.pending_info) ->
          let th = TL (Id.Lop.to_int p.lid) in
          if TSet.mem th lids_before then acc else TMap.add th v acc)
        cv (Sim.pending sim)
    in
    let clast =
      List.fold_left
        (fun acc (c, a) ->
          let w, all =
            match CMap.find_opt c acc with
            | Some p -> p
            | None -> (clock_empty, clock_empty)
          in
          let entry =
            match a with
            | Write -> (clock_join w v, clock_join all v)
            | Accum -> (w, clock_join all v)
          in
          CMap.add c entry acc)
        nd.clast exec_comps
    in
    let gclock = if t.is_crash then v else nd.gclock in
    let sleep' =
      List.filter
        (fun (q, qc) ->
          let q_crash = match q with TX _ -> true | _ -> false in
          not
            (dep_exec ~ca:exec_comps ~ca_crash:t.is_crash
               { thread = q; comps = qc; is_crash = q_crash }))
        nd.cur_sleep
    in
    nd.executed <- nd.executed + 1;
    (cv, clast, gclock, sleep')
  in
  let prefix_of d =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) ((stack_get i).exec_idx :: acc)
    in
    go (d - 1) []
  in
  let rec explore session d ~cv ~clast ~gclock ~sleep_in =
    if !truncated then ()
    else begin
      if d > !max_depth then max_depth := d;
      if Explore.Session.finished session then record session ~is_stuck:false
      else begin
        let descs = describe session in
        if Array.length descs = 0 then record session ~is_stuck:true
        else begin
          let enabled_threads =
            Array.fold_left
              (fun acc t -> TSet.add t.thread acc)
              TSet.empty descs
          in
          let nd =
            {
              descs;
              enabled_threads;
              cv;
              gclock;
              clast;
              backtrack = TSet.empty;
              done_ = TSet.empty;
              cur_sleep = (if sleep then sleep_in else []);
              executed = 0;
              exec_idx = -1;
              exec_comps = [];
              exec_is_crash = false;
              exec_thread = TC (-1);
              exec_clock = clock_empty;
            }
          in
          stack_set d nd;
          if dpor then Array.iter (fun t -> race_detect d t) descs;
          let sleeping th =
            List.exists (fun (q, _) -> q = th) nd.cur_sleep
          in
          (* seed the backtrack set: everything under plain brute
             force, one non-sleeping transition under DPOR *)
          if dpor then begin
            match
              Array.fold_left
                (fun acc t ->
                  match acc with
                  | Some _ -> acc
                  | None -> if sleeping t.thread then None else Some t.thread)
                None descs
            with
            | Some th -> nd.backtrack <- TSet.add th nd.backtrack
            | None -> ()
          end
          else nd.backtrack <- enabled_threads;
          let fresh = ref true in
          let rec loop () =
            if !truncated then ()
            else
              match TSet.choose_opt (TSet.diff nd.backtrack nd.done_) with
              | None -> ()
              | Some th ->
                  nd.done_ <- TSet.add th nd.done_;
                  if sleeping th then begin
                    incr sleep_skipped;
                    loop ()
                  end
                  else if !explored >= max_explored then truncated := true
                  else begin
                    let idx = ref (-1) in
                    Array.iteri
                      (fun i t -> if t.thread = th && !idx < 0 then idx := i)
                      nd.descs;
                    let s =
                      if !fresh then session
                      else begin
                        let prefix = prefix_of d in
                        replayed := !replayed + List.length prefix;
                        Explore.Session.replay scenario prefix
                      end
                    in
                    fresh := false;
                    let cv', clast', gclock', sleep' =
                      execute nd d s !idx
                    in
                    explore s (d + 1) ~cv:cv' ~clast:clast' ~gclock:gclock'
                      ~sleep_in:sleep';
                    nd.cur_sleep <-
                      (nd.descs.(!idx).thread, nd.descs.(!idx).comps)
                      :: nd.cur_sleep;
                    loop ()
                  end
          in
          loop ();
          pruned := !pruned + (Array.length descs - nd.executed);
          !stack.(d) <- None
        end
      end
    end
  in
  explore
    (Explore.Session.create scenario)
    0 ~cv:TMap.empty ~clast:CMap.empty ~gclock:clock_empty ~sleep_in:[];
  {
    explored = !explored;
    replayed = !replayed;
    pruned = !pruned;
    sleep_skipped = !sleep_skipped;
    terminal_runs = !terminal;
    stuck_runs = !stuck;
    distinct_states = Hashtbl.length fingerprints;
    max_depth = !max_depth;
    exhaustive = not !truncated;
    ws_safe_violations = !safe_bad;
    ws_regular_violations = !regular_bad;
    invariant_violations = !inv_bad;
    first_violation = !first_violation;
    state_fingerprints =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) fingerprints []);
  }

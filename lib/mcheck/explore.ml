open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history

type script = (Id.Client.t * Trace.hop list) list

type mode = Eager | Sequential

type scenario = {
  params : Params.t;
  mode : mode;
  crashes : int;
  make : unit -> Sim.t * (Id.Client.t -> Trace.hop -> Sim.call) * script;
}

let emulation_scenario (factory : Regemu_core.Emulation.factory)
    (p : Params.t) ?(mode = Eager) ?(crashes = 0) ~writer_ops ~readers
    ~reads_each () =
  if List.length writer_ops <> p.k then
    invalid_arg "Explore.emulation_scenario: writer_ops size must be k";
  let make () =
    let sim = Sim.create ~n:p.n () in
    let writers = List.init p.k (fun _ -> Sim.new_client sim) in
    let instance = factory.make sim p ~writers in
    let reader_clients = List.init readers (fun _ -> Sim.new_client sim) in
    let script =
      List.map2
        (fun w vs -> (w, List.map (fun v -> Trace.H_write v) vs))
        writers writer_ops
      @ List.map
          (fun r -> (r, List.init reads_each (fun _ -> Trace.H_read)))
          reader_clients
    in
    let invoke1 c hop =
      match hop with
      | Trace.H_write v -> instance.write c v
      | Trace.H_read -> instance.read c
    in
    (sim, invoke1, script)
  in
  { params = p; mode; crashes; make }

type result = {
  terminal_runs : int;
  distinct_histories : int;
  stuck_runs : int;
  fired_events : int;
  exhaustive : bool;
  max_depth : int;
  ws_safe_violations : History.t list;
  ws_regular_violations : History.t list;
  first_violation_at : int option;
}

let result_pp ppf r =
  Fmt.pf ppf
    "%d terminal runs (%d distinct histories), %d stuck, %d events fired, \
     exhaustive=%b, max depth %d, %d WS-Safe / %d WS-Regular violations"
    r.terminal_runs r.distinct_histories r.stuck_runs r.fired_events
    r.exhaustive r.max_depth
    (List.length r.ws_safe_violations)
    (List.length r.ws_regular_violations)

(* A live run that can be advanced one chosen event at a time,
   auto-invoking eligible script operations after every event.  Exposed
   so other search strategies (the DPOR engine in {!Dpor}) can drive
   the same scenarios. *)
module Session = struct
  type t = {
    scenario : scenario;
    sim : Sim.t;
    get_calls : unit -> Sim.call list;
    all_invoked : unit -> bool;
    advance : int -> unit;  (* fire the idx-th enabled event, auto-invoke *)
  }

  let create scenario =
    let sim, invoke1, script = scenario.make () in
    let remaining = Hashtbl.create 8 in
    List.iter
      (fun (c, ops) -> Hashtbl.replace remaining (Id.Client.to_int c) (c, ops))
      script;
    let calls = ref [] in
    (* script-order queue for Sequential mode *)
    let seq_queue =
      ref
        (List.concat_map
           (fun (c, ops) -> List.map (fun o -> (c, o)) ops)
           script)
    in
    let rec auto_invoke () =
      match scenario.mode with
      | Eager ->
          let progressed = ref false in
          Hashtbl.iter
            (fun key (c, ops) ->
              match ops with
              | hop :: rest when not (Sim.client_busy sim c) ->
                  Hashtbl.replace remaining key (c, rest);
                  calls := invoke1 c hop :: !calls;
                  progressed := true
              | _ -> ())
            (Hashtbl.copy remaining);
          if !progressed then auto_invoke ()
      | Sequential -> (
          let all_returned = List.for_all Sim.call_returned !calls in
          match !seq_queue with
          | (c, hop) :: rest when all_returned ->
              seq_queue := rest;
              (match Hashtbl.find_opt remaining (Id.Client.to_int c) with
              | Some (c', _ :: ops_rest) ->
                  Hashtbl.replace remaining (Id.Client.to_int c) (c', ops_rest)
              | _ -> ());
              calls := invoke1 c hop :: !calls;
              auto_invoke ()
          | _ -> ())
    in
    auto_invoke ();
    {
      scenario;
      sim;
      get_calls = (fun () -> !calls);
      all_invoked =
        (fun () ->
          Hashtbl.fold (fun _ (_, ops) acc -> acc && ops = []) remaining true);
      advance =
        (fun idx ->
          let evs = Sim.enabled sim in
          let n_ev = List.length evs in
          if idx < n_ev then Sim.fire sim (List.nth evs idx)
          else begin
            (* a crash choice: index into the correct servers *)
            let correct =
              List.filter
                (fun s -> not (Sim.server_crashed sim s))
                (Sim.servers sim)
            in
            Sim.crash_server sim (List.nth correct (idx - n_ev))
          end;
          auto_invoke ());
    }

  let sim t = t.sim
  let calls t = t.get_calls ()
  let advance t idx = t.advance idx

  let finished t =
    t.all_invoked () && List.for_all Sim.call_returned (t.get_calls ())

  let crash_candidates t =
    let so_far = Id.Server.Set.cardinal (Sim.crashed_servers t.sim) in
    if so_far < t.scenario.crashes then
      List.filter
        (fun s -> not (Sim.server_crashed t.sim s))
        (Sim.servers t.sim)
    else []

  let enabled_events t = Sim.enabled t.sim

  let width t =
    List.length (enabled_events t) + List.length (crash_candidates t)

  let replay scenario prefix =
    let t = create scenario in
    List.iter (advance t) prefix;
    t
end

let run ?(stop_on_violation = false) scenario ~max_fired =
  let fired = ref 0 in
  let truncated = ref false in
  let halted = ref false in
  let distinct : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let terminal = ref 0 in
  let stuck = ref 0 in
  let max_depth = ref 0 in
  let safe_bad = ref [] in
  let regular_bad = ref [] in
  let first_violation = ref None in
  let keep_violation store h =
    if !first_violation = None then first_violation := Some !fired;
    if List.length !store < 3 then store := h :: !store
  in
  let fresh_session () = Session.create scenario in
  let advance s idx =
    Session.advance s idx;
    incr fired
  in
  let replay prefix =
    let s = fresh_session () in
    List.iter (advance s) prefix;
    s
  in
  let record_history ?(terminal_run = false) sim =
    let h = History.of_trace (Sim.trace sim) in
    if terminal_run then
      Hashtbl.replace distinct (Fmt.str "%a" History.pp h) ();
    let violated = ref false in
    (match Ws_check.check_ws_safe h with
    | Ws_check.Violated _ ->
        violated := true;
        keep_violation safe_bad h
    | Ws_check.Holds | Ws_check.Vacuous -> ());
    (match Ws_check.check_ws_regular h with
    | Ws_check.Violated _ ->
        violated := true;
        keep_violation regular_bad h
    | Ws_check.Holds | Ws_check.Vacuous -> ());
    if stop_on_violation && !violated then halted := true
  in
  (* [session] is live and positioned at [prefix]; the first child is
     explored by advancing it in place (saving one replay per node), the
     siblings by replaying their prefixes from scratch. *)
  let rec dfs session prefix =
    if !halted then ()
    else if !fired >= max_fired then truncated := true
    else begin
      let depth = List.length prefix in
      if depth > !max_depth then max_depth := depth;
      if Session.finished session then begin
        incr terminal;
        record_history ~terminal_run:true (Session.sim session)
      end
      else
        let crash_choices = List.length (Session.crash_candidates session) in
        match Session.enabled_events session with
        | [] when crash_choices = 0 ->
            incr stuck;
            record_history (Session.sim session)
        | evs ->
            let width = List.length evs + crash_choices in
            advance session 0;
            dfs session (prefix @ [ 0 ]);
            for i = 1 to width - 1 do
              if (not !halted) && !fired < max_fired then
                dfs (replay (prefix @ [ i ])) (prefix @ [ i ])
            done
    end
  in
  dfs (fresh_session ()) [];
  {
    terminal_runs = !terminal;
    distinct_histories = Hashtbl.length distinct;
    stuck_runs = !stuck;
    fired_events = !fired;
    exhaustive = (not !truncated) && not !halted;
    max_depth = !max_depth;
    ws_safe_violations = List.rev !safe_bad;
    ws_regular_violations = List.rev !regular_bad;
    first_violation_at = !first_violation;
  }

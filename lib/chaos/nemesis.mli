(** The nemesis: a thread that replays a {!Schedule} against a live
    {!Regemu_live.Cluster} in real time, applying each fault event at
    its scheduled offset from {!start}.

    The nemesis only {e applies} faults; it never waits for their
    effects.  Whether the cluster rides them out is for the load
    threads (which may observe {!Regemu_live.Cluster.Unavailable}) and
    the online checker to decide. *)

type counters = {
  crashes : int;
  restarts : int;
  partitions : int;
  heals : int;
  drop_changes : int;
  slows : int;  (** [Slow] events applied *)
  stutters : int;  (** [Stutter] freezes applied (thaws not counted) *)
  heal_slows : int;  (** [Heal_slow] events applied *)
}

val counters_pp : counters Fmt.t
val counters_json : counters -> Regemu_obs.Json.t

type t

(** Validate the schedule against the cluster size, then start the
    replay thread.  Events fire in [at_ms] order regardless of the
    order given.  With [sched], the nemesis runs as a cooperative
    actor and event offsets elapse in the scheduler's virtual time —
    the same schedule fires at the same virtual instants on every
    run. *)
val start : ?sched:Regemu_live.Sched_hook.t -> Regemu_live.Cluster.t -> Schedule.t -> t

(** Wait for every event to have been applied; returns how many of
    each kind fired. *)
val join : t -> counters

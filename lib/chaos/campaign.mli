(** Deterministic nemesis campaigns: named chaos scenarios — each a
    cluster configuration, a phased workload, and a {!Schedule} per
    phase — run against the live runtime with the online WS-Regularity
    checker watching, and judged against an explicit expectation:

    - [Clean]: every operation completes and the checker stays quiet
      (faults stay within the model's [≤ f] bound);
    - [Degraded]: the schedule deliberately exceeds [f] for a window —
      operations in [may_fail] phases must fail {e fast} with
      {!Regemu_live.Cluster.Unavailable} (never crawl to the retry
      deadline), everything outside the window must complete, and the
      checker must stay quiet;
    - [Violation]: the scenario breaks an assumption the protocol needs
      (amnesia restarts wiping storage) and the checker {e must} flag
      it — a passing run is one where the violation is caught.

    Everything is derived from the scenario's seed: the transport's
    fault stream, the retry jitter, and the seeded schedule generators.
    Two runs with the same seed replay the same campaign. *)

type algo =
  | Abd
  | Alg2
  | Cds  (** the CDS multi-writer data store ({!Regemu_live.Cds_live}) *)
  | Keyed
      (** drive {!Regemu_keyspace.Kspace} operations on key 0 — the
          keyed retry path; keyed ops log to the kspace's Klog, so the
          single-register online checker sees an empty history *)

val algo_name : algo -> string

type expectation = Clean | Degraded | Violation

val expectation_name : expectation -> string

type phase = {
  label : string;
  writes_per_writer : int;
  reads_per_reader : int;
  gap_ms : int;  (** pause between one client's operations *)
  may_fail : bool;
      (** operations here may fail with [Unavailable] without failing
          the scenario *)
  schedule : Schedule.t;  (** replayed from the phase's start *)
}

type scenario = {
  name : string;
  descr : string;
  algo : algo;
  k : int;  (** writer clients *)
  readers : int;
  f : int;
  n : int;
  recovery : Regemu_live.Recovery.mode;
  drop_prob : float;
  dup_prob : float;
  delay_prob : float;
  max_delay_us : int;
  hedge : bool;
      (** run with hedged quorum rounds and adaptive deadlines
          ({!Regemu_live.Hedge.default_config} /
          {!Regemu_live.Deadline.default_config}) *)
  expect : expectation;
  seed : int;
  phases : phase list;
}

type phase_outcome = {
  p_label : string;
  expected : int;
  completed : int;
  failed : int;  (** operations that raised [Unavailable] *)
  max_unavail_s : float;  (** slowest fail-fast, 0 when none *)
  nemesis : Nemesis.counters;
}

type outcome = {
  scenario : scenario;
  phases : phase_outcome list;  (** empty if the run aborted *)
  stats : Regemu_live.Cluster.stats;
  backoff_ms : (int * int) list;
  check : Regemu_live.Checker.result;
  wall_s : float;
  pass : bool;  (** outcome matches the scenario's expectation *)
  failure : string option;  (** why not, when [not pass] *)
}

(** Run one scenario to completion: spawn the cluster, replay each
    phase's schedule via a {!Nemesis} while the load threads drive the
    register (absorbing [Unavailable] into the phase outcome), stop the
    checker, and judge the result.  [log] receives progress lines.
    [sink] instruments the scenario's cluster
    ({!Regemu_live.Cluster.create}); pass a fresh one per scenario if
    it carries a metrics registry. *)
val run : ?log:(string -> unit) -> ?sink:Regemu_live.Sink.t -> scenario -> outcome

(** [trace] collects every scenario's events into one trace (a metrics
    registry cannot be shared across scenarios, so only a trace
    threads here). *)
val run_all :
  ?log:(string -> unit) ->
  ?trace:Regemu_obs.Trace.t ->
  scenario list ->
  outcome list

(** The full campaign: rolling crashes (ABD and Algorithm 2), a healed
    majority partition, seeded flapping, a beyond-[f] outage, the
    amnesia wipe, the gray-failure quartet — one straggler, rotating
    straggler, a straggler squeezed against the [f] crash budget (all
    hedged) — the keyspace outage, and the CDS arms: the rival
    emulation through rolling crashes, the partition, flapping, the
    beyond-[f] outage, amnesia, and the straggler ([-cds]-suffixed
    scenario names). *)
val campaign : seed:int -> scenario list

(** The bounded subset for CI: rolling crashes (ABD and CDS),
    beyond-[f], amnesia (ABD and CDS), one-straggler,
    keyspace-outage. *)
val smoke : seed:int -> scenario list

val names : unit -> string list
val by_name : seed:int -> string -> scenario option

val phase_outcome_pp : phase_outcome Fmt.t
val outcome_pp : outcome Fmt.t
val all_pass : outcome list -> bool

(** The [regemu-chaos/1] report document. *)
val to_json : seed:int -> smoke:bool -> outcome list -> Regemu_obs.Json.t

(** The nemesis schedule DSL: a declarative timeline of faults, fully
    determined by its arguments (and, for the seeded generators, the
    seed) — the same seed always yields the same campaign.

    Times are milliseconds from the start of the phase the schedule is
    attached to.  Events map 1:1 onto the cluster's fault surface:
    {!Regemu_live.Cluster.crash}/[restart] (whose semantics depend on
    the cluster's {!Regemu_live.Recovery.mode}),
    [split]/[heal] (partitions; clients travel with group 0),
    [set_drop] (symmetric message-loss rate), and the gray-failure
    surface: [set_slow] (a slow-not-dead replica link),
    [freeze]/[thaw] (stutter bursts — the nemesis expands a [Stutter]
    into its freeze and thaw), and [set_slow 0] ([Heal_slow]). *)

type event =
  | Crash of int
  | Restart of int
  | Partition of int list list
      (** reachability groups; the clients are attached to the first *)
  | Heal
  | Drop_rate of float  (** set both request and reply loss to this *)
  | Slow of int * int
      (** [(server, us)]: add [us] microseconds to every envelope on
          the server's link — a gray straggler *)
  | Stutter of int * int
      (** [(server, ms)]: freeze the server's request lane for [ms]
          milliseconds, then thaw it (queued, not lost) *)
  | Heal_slow of int  (** clear a server's slow link *)

type timed = { at_ms : int; ev : event }
type t = timed list

val event_pp : event Fmt.t
val pp : t Fmt.t

(** Raises [Invalid_argument] on a server id outside [0,n), a negative
    time, a drop rate outside [0,1], overlapping partition groups, a
    negative slow delay, or a non-positive stutter duration. *)
val validate : n:int -> t -> unit

(** Time of the last event (a stutter counts until its thaw). *)
val duration_ms : t -> int

(** Largest number of servers simultaneously crashed, replaying the
    schedule in time order (partitions not counted). *)
val max_down : t -> int

(** {2 Generators} *)

(** Crash then restart each server in turn, [rounds] times over. *)
val rolling_crashes :
  n:int -> ?start_ms:int -> ?gap_ms:int -> rounds:int -> unit -> t

(** Split off the minority ⌊(n-1)/2⌋ servers at [at_ms]; clients stay
    with the majority, so quorums keep forming.  Heal later. *)
val minority_partition : n:int -> at_ms:int -> heal_at_ms:int -> t

(** Leave the clients only [reach] reachable servers.  With
    [reach < n - f] this deliberately exceeds the fault bound: every
    operation must fail fast with [Unavailable] until the heal. *)
val beyond_f : n:int -> reach:int -> at_ms:int -> heal_at_ms:int -> t

(** Seeded flapping: drop-rate pulses interleaved with single-server
    crash/restart flips.  Identical seeds give identical timelines. *)
val flapping : n:int -> flips:int -> gap_ms:int -> seed:int -> t

(** Crash + restart every server in turn — under amnesia recovery this
    erases all cluster state while never exceeding one simultaneous
    failure. *)
val wipe_all : n:int -> ?start_ms:int -> ?gap_ms:int -> unit -> t

(** Crash {e all} [n] servers at [at_ms] and restart them [down_ms]
    later, [storms] times over — under amnesia recovery, a mid-workload
    storm destroys every copy of every written value at once, so any
    read that completes before the next write lands returns stale
    data.  Deliberately beyond any [f]. *)
val wipe_storm :
  n:int -> ?at_ms:int -> ?down_ms:int -> ?storms:int -> unit -> t

(** One server's link turns gray (+[slow_us] per envelope) for
    [at_ms, heal_at_ms) — the single straggler. *)
val one_straggler :
  n:int -> server:int -> slow_us:int -> at_ms:int -> heal_at_ms:int -> t

(** Each server in turn is the straggler for [dwell_ms], healing
    before the next takes over. *)
val rotating_straggler :
  n:int -> slow_us:int -> ?start_ms:int -> dwell_ms:int -> unit -> t

(** [bursts] freeze/thaw cycles of one server's request lane:
    [freeze_ms] frozen, [gap_ms] recovering. *)
val stutter_bursts :
  n:int ->
  server:int ->
  bursts:int ->
  ?start_ms:int ->
  freeze_ms:int ->
  gap_ms:int ->
  unit ->
  t

val to_json : t -> Regemu_obs.Json.t

(** Inverse of {!to_json}; [Error] on a malformed document.  The
    result is {e not} validated — run {!validate} against the target
    cluster before use. *)
val of_json : Regemu_obs.Json.t -> (t, string) result

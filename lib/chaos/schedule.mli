(** The nemesis schedule DSL: a declarative timeline of faults, fully
    determined by its arguments (and, for the seeded generators, the
    seed) — the same seed always yields the same campaign.

    Times are milliseconds from the start of the phase the schedule is
    attached to.  Events map 1:1 onto the cluster's fault surface:
    {!Regemu_live.Cluster.crash}/[restart] (whose semantics depend on
    the cluster's {!Regemu_live.Recovery.mode}),
    [split]/[heal] (partitions; clients travel with group 0), and
    [set_drop] (symmetric message-loss rate). *)

type event =
  | Crash of int
  | Restart of int
  | Partition of int list list
      (** reachability groups; the clients are attached to the first *)
  | Heal
  | Drop_rate of float  (** set both request and reply loss to this *)

type timed = { at_ms : int; ev : event }
type t = timed list

val event_pp : event Fmt.t
val pp : t Fmt.t

(** Raises [Invalid_argument] on a server id outside [0,n), a negative
    time, a drop rate outside [0,1], or overlapping partition groups. *)
val validate : n:int -> t -> unit

(** Time of the last event. *)
val duration_ms : t -> int

(** Largest number of servers simultaneously crashed, replaying the
    schedule in time order (partitions not counted). *)
val max_down : t -> int

(** {2 Generators} *)

(** Crash then restart each server in turn, [rounds] times over. *)
val rolling_crashes :
  n:int -> ?start_ms:int -> ?gap_ms:int -> rounds:int -> unit -> t

(** Split off the minority ⌊(n-1)/2⌋ servers at [at_ms]; clients stay
    with the majority, so quorums keep forming.  Heal later. *)
val minority_partition : n:int -> at_ms:int -> heal_at_ms:int -> t

(** Leave the clients only [reach] reachable servers.  With
    [reach < n - f] this deliberately exceeds the fault bound: every
    operation must fail fast with [Unavailable] until the heal. *)
val beyond_f : n:int -> reach:int -> at_ms:int -> heal_at_ms:int -> t

(** Seeded flapping: drop-rate pulses interleaved with single-server
    crash/restart flips.  Identical seeds give identical timelines. *)
val flapping : n:int -> flips:int -> gap_ms:int -> seed:int -> t

(** Crash + restart every server in turn — under amnesia recovery this
    erases all cluster state while never exceeding one simultaneous
    failure. *)
val wipe_all : n:int -> ?start_ms:int -> ?gap_ms:int -> unit -> t

(** Crash {e all} [n] servers at [at_ms] and restart them [down_ms]
    later, [storms] times over — under amnesia recovery, a mid-workload
    storm destroys every copy of every written value at once, so any
    read that completes before the next write lands returns stale
    data.  Deliberately beyond any [f]. *)
val wipe_storm :
  n:int -> ?at_ms:int -> ?down_ms:int -> ?storms:int -> unit -> t

val to_json : t -> Regemu_obs.Json.t

(** Inverse of {!to_json}; [Error] on a malformed document.  The
    result is {e not} validated — run {!validate} against the target
    cluster before use. *)
val of_json : Regemu_obs.Json.t -> (t, string) result

type event =
  | Crash of int
  | Restart of int
  | Partition of int list list
  | Heal
  | Drop_rate of float
  | Slow of int * int  (* server, added delivery delay in us *)
  | Stutter of int * int  (* server, freeze duration in ms *)
  | Heal_slow of int  (* clear a server's slow link *)

type timed = { at_ms : int; ev : event }
type t = timed list

let event_pp ppf = function
  | Crash s -> Fmt.pf ppf "crash %d" s
  | Restart s -> Fmt.pf ppf "restart %d" s
  | Partition groups ->
      Fmt.pf ppf "partition %a"
        Fmt.(list ~sep:(any "|") (brackets (list ~sep:comma int)))
        groups
  | Heal -> Fmt.string ppf "heal"
  | Drop_rate p -> Fmt.pf ppf "drop-rate %.2f" p
  | Slow (s, us) -> Fmt.pf ppf "slow %d +%dus" s us
  | Stutter (s, ms) -> Fmt.pf ppf "stutter %d %dms" s ms
  | Heal_slow s -> Fmt.pf ppf "heal-slow %d" s

let pp ppf sched =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:(any "; ") (fun ppf { at_ms; ev } ->
          Fmt.pf ppf "@%dms %a" at_ms event_pp ev))
    sched

let validate ~n sched =
  let check_server s =
    if s < 0 || s >= n then
      invalid_arg (Fmt.str "Schedule: server %d out of range [0,%d)" s n)
  in
  List.iter
    (fun { at_ms; ev } ->
      if at_ms < 0 then invalid_arg "Schedule: negative event time";
      match ev with
      | Crash s | Restart s | Heal_slow s -> check_server s
      | Slow (s, us) ->
          check_server s;
          if us < 0 then invalid_arg "Schedule: negative slow delay"
      | Stutter (s, ms) ->
          check_server s;
          if ms <= 0 then invalid_arg "Schedule: stutter needs a positive duration"
      | Heal -> ()
      | Drop_rate p ->
          if not (p >= 0.0 && p <= 1.0) then
            invalid_arg (Fmt.str "Schedule: drop rate %g not in [0,1]" p)
      | Partition groups ->
          let seen = Hashtbl.create 8 in
          List.iter
            (List.iter (fun s ->
                 check_server s;
                 if Hashtbl.mem seen s then
                   invalid_arg
                     (Fmt.str "Schedule: server %d in two partition groups" s);
                 Hashtbl.replace seen s ()))
            groups)
    sched

(* a stutter occupies [at_ms, at_ms + duration): its thaw counts *)
let duration_ms sched =
  List.fold_left
    (fun a { at_ms; ev } ->
      max a (match ev with Stutter (_, ms) -> at_ms + ms | _ -> at_ms))
    0 sched

(* the largest number of servers simultaneously crashed while the
   schedule runs (partitions not counted) *)
let max_down sched =
  let worst = ref 0 and down = ref 0 in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Crash _ ->
          incr down;
          worst := max !worst !down
      | Restart _ -> down := max 0 (!down - 1)
      | Partition _ | Heal | Drop_rate _ | Slow _ | Stutter _ | Heal_slow _ ->
          ())
    (List.stable_sort (fun a b -> compare a.at_ms b.at_ms) sched);
  !worst

(* --- generators --------------------------------------------------------- *)

let rolling_crashes ~n ?(start_ms = 50) ?(gap_ms = 120) ~rounds () =
  List.concat
    (List.init rounds (fun r ->
         List.concat
           (List.init n (fun s ->
                let base = start_ms + (((r * n) + s) * 2 * gap_ms) in
                [
                  { at_ms = base; ev = Crash s };
                  { at_ms = base + gap_ms; ev = Restart s };
                ]))))

(* isolate the minority (the last ⌈(n-1)/2⌉ ≤ f' servers for odd n);
   clients stay with the majority, so quorums keep forming *)
let minority_partition ~n ~at_ms ~heal_at_ms =
  if n < 2 then invalid_arg "Schedule.minority_partition: need n >= 2";
  if heal_at_ms <= at_ms then
    invalid_arg "Schedule.minority_partition: heal must come after the split";
  let minority = (n - 1) / 2 in
  let majority = n - minority in
  [
    {
      at_ms;
      ev =
        Partition
          [
            List.init majority Fun.id;
            List.init minority (fun i -> majority + i);
          ];
    };
    { at_ms = heal_at_ms; ev = Heal };
  ]

(* cut the clients off from all but [reach] servers — with
   [reach < n - f] no operation can assemble a quorum until [Heal] *)
let beyond_f ~n ~reach ~at_ms ~heal_at_ms =
  if reach < 0 || reach >= n then
    invalid_arg "Schedule.beyond_f: reach must be in [0, n)";
  if heal_at_ms <= at_ms then
    invalid_arg "Schedule.beyond_f: heal must come after the split";
  [
    {
      at_ms;
      ev =
        Partition
          [
            List.init reach Fun.id;
            List.init (n - reach) (fun i -> reach + i);
          ];
    };
    { at_ms = heal_at_ms; ev = Heal };
  ]

(* alternating drop-rate pulses and single-server crash/restart flips,
   seeded: the flapping network *)
let flapping ~n ~flips ~gap_ms ~seed =
  let rng = Regemu_sim.Rng.create seed in
  List.concat
    (List.init flips (fun i ->
         let base = (i * 3 * gap_ms) + gap_ms in
         let s = Regemu_sim.Rng.int rng ~bound:n in
         let rate =
           0.15 +. (float_of_int (Regemu_sim.Rng.int rng ~bound:30) /. 100.)
         in
         [
           { at_ms = base; ev = Drop_rate rate };
           { at_ms = base + gap_ms; ev = Crash s };
           { at_ms = base + (2 * gap_ms); ev = Restart s };
           { at_ms = base + (5 * gap_ms / 2); ev = Drop_rate 0.0 };
         ]))

(* crash and immediately restart every server in turn — under
   [Recovery.Amnesia] this erases the whole cluster's state without
   ever exceeding one simultaneous failure *)
let wipe_all ~n ?(start_ms = 30) ?(gap_ms = 80) () =
  List.concat
    (List.init n (fun s ->
         [
           { at_ms = start_ms + (s * 2 * gap_ms); ev = Crash s };
           { at_ms = start_ms + (s * 2 * gap_ms) + gap_ms; ev = Restart s };
         ]))

(* crash the whole cluster at once, restart it a moment later — under
   [Recovery.Amnesia] every copy of every written value is destroyed,
   so the first read completing before the next write lands is a
   guaranteed stale read.  The strongest amnesia counterexample. *)
let wipe_storm ~n ?(at_ms = 3) ?(down_ms = 2) ?(storms = 1) () =
  List.concat
    (List.init storms (fun k ->
         let base = at_ms + (k * 3 * down_ms) in
         List.init n (fun s -> { at_ms = base; ev = Crash s })
         @ List.init n (fun s -> { at_ms = base + down_ms; ev = Restart s })))

(* one server turns gray for a window, then heals: the single
   straggler every quorum system eventually meets *)
let one_straggler ~n ~server ~slow_us ~at_ms ~heal_at_ms =
  if server < 0 || server >= n then
    invalid_arg "Schedule.one_straggler: server out of range";
  if heal_at_ms <= at_ms then
    invalid_arg "Schedule.one_straggler: heal must come after the slowdown";
  [
    { at_ms; ev = Slow (server, slow_us) };
    { at_ms = heal_at_ms; ev = Heal_slow server };
  ]

(* the slowdown wanders: each server takes a turn as the straggler,
   healing before the next one degrades *)
let rotating_straggler ~n ~slow_us ?(start_ms = 40) ~dwell_ms () =
  if dwell_ms <= 0 then
    invalid_arg "Schedule.rotating_straggler: dwell must be positive";
  List.concat
    (List.init n (fun s ->
         let base = start_ms + (s * dwell_ms) in
         [
           { at_ms = base; ev = Slow (s, slow_us) };
           { at_ms = base + dwell_ms; ev = Heal_slow s };
         ]))

(* periodic freeze/resume bursts of one server's request lane *)
let stutter_bursts ~n ~server ~bursts ?(start_ms = 40) ~freeze_ms ~gap_ms () =
  if server < 0 || server >= n then
    invalid_arg "Schedule.stutter_bursts: server out of range";
  if bursts < 1 then invalid_arg "Schedule.stutter_bursts: need >= 1 burst";
  List.init bursts (fun i ->
      {
        at_ms = start_ms + (i * (freeze_ms + gap_ms));
        ev = Stutter (server, freeze_ms);
      })

(* --- serialization ------------------------------------------------------ *)

module Json = Regemu_obs.Json

let event_json = function
  | Crash s -> Json.Obj [ ("crash", Json.Int s) ]
  | Restart s -> Json.Obj [ ("restart", Json.Int s) ]
  | Partition groups ->
      Json.Obj
        [
          ( "partition",
            Json.List
              (List.map (fun g -> Json.List (List.map (fun s -> Json.Int s) g))
                 groups) );
        ]
  | Heal -> Json.Str "heal"
  | Drop_rate p -> Json.Obj [ ("drop_rate", Json.Float p) ]
  | Slow (s, us) -> Json.Obj [ ("slow", Json.List [ Json.Int s; Json.Int us ]) ]
  | Stutter (s, ms) ->
      Json.Obj [ ("stutter", Json.List [ Json.Int s; Json.Int ms ]) ]
  | Heal_slow s -> Json.Obj [ ("heal_slow", Json.Int s) ]

let to_json sched =
  Json.List
    (List.map
       (fun { at_ms; ev } ->
         Json.Obj [ ("at_ms", Json.Int at_ms); ("event", event_json ev) ])
       sched)

let event_of_json = function
  | Json.Str "heal" -> Ok Heal
  | Json.Obj [ ("crash", Json.Int s) ] -> Ok (Crash s)
  | Json.Obj [ ("restart", Json.Int s) ] -> Ok (Restart s)
  | Json.Obj [ ("drop_rate", ((Json.Float _ | Json.Int _) as p)) ] ->
      Ok (Drop_rate (Option.get (Json.to_float_opt p)))
  | Json.Obj [ ("slow", Json.List [ Json.Int s; Json.Int us ]) ] ->
      Ok (Slow (s, us))
  | Json.Obj [ ("stutter", Json.List [ Json.Int s; Json.Int ms ]) ] ->
      Ok (Stutter (s, ms))
  | Json.Obj [ ("heal_slow", Json.Int s) ] -> Ok (Heal_slow s)
  | Json.Obj [ ("partition", Json.List gs) ] ->
      let group g =
        match Json.to_list_opt g with
        | None -> Error "partition group must be a list"
        | Some ss ->
            List.fold_left
              (fun acc s ->
                match (acc, Json.to_int_opt s) with
                | Ok acc, Some s -> Ok (s :: acc)
                | (Error _ as e), _ -> e
                | Ok _, None -> Error "partition member must be an int")
              (Ok []) ss
            |> Result.map List.rev
      in
      List.fold_left
        (fun acc g ->
          match acc with
          | Error _ as e -> e
          | Ok acc -> Result.map (fun g -> g :: acc) (group g))
        (Ok []) gs
      |> Result.map (fun gs -> Partition (List.rev gs))
  | j -> Error (Fmt.str "unknown schedule event %s" (Json.to_string j))

let of_json = function
  | Json.List evs ->
      List.fold_left
        (fun acc j ->
          match acc with
          | Error _ as e -> e
          | Ok acc -> (
              match (Json.member "at_ms" j, Json.member "event" j) with
              | Some (Json.Int at_ms), Some ej ->
                  Result.map (fun ev -> { at_ms; ev } :: acc) (event_of_json ej)
              | _ -> Error "schedule entry needs at_ms and event"))
        (Ok []) evs
      |> Result.map List.rev
  | _ -> Error "schedule must be a list"

open Regemu_bounds
open Regemu_objects
open Regemu_live
module Json = Regemu_obs.Json

type algo = Abd | Alg2 | Cds | Keyed

let algo_name = function
  | Abd -> "abd"
  | Alg2 -> "algorithm2"
  | Cds -> "cds"
  | Keyed -> "keyspace"

(* scenario-name suffix: the ABD arms keep their historical bare names *)
let algo_suffix = function
  | Abd -> ""
  | Alg2 -> "-alg2"
  | Cds -> "-cds"
  | Keyed -> "-keyed"

type expectation = Clean | Degraded | Violation

let expectation_name = function
  | Clean -> "clean"
  | Degraded -> "degraded"
  | Violation -> "violation"

type phase = {
  label : string;
  writes_per_writer : int;
  reads_per_reader : int;
  gap_ms : int;
  may_fail : bool;
  schedule : Schedule.t;
}

type scenario = {
  name : string;
  descr : string;
  algo : algo;
  k : int;
  readers : int;
  f : int;
  n : int;
  recovery : Recovery.mode;
  drop_prob : float;
  dup_prob : float;
  delay_prob : float;
  max_delay_us : int;
  hedge : bool;
  expect : expectation;
  seed : int;
  phases : phase list;
}

type phase_outcome = {
  p_label : string;
  expected : int;
  completed : int;
  failed : int;
  max_unavail_s : float;
  nemesis : Nemesis.counters;
}

type outcome = {
  scenario : scenario;
  phases : phase_outcome list;
  stats : Cluster.stats;
  backoff_ms : (int * int) list;
  check : Checker.result;
  wall_s : float;
  pass : bool;
  failure : string option;
}

(* a fail-fast Unavailable longer than this means the watchdog did not
   do its job and the op crawled to the retry deadline instead *)
let fail_fast_bound_s = 3.0

let retry_config =
  { Retry.base_s = 0.05; cap_s = 0.8; deadline_s = 6.0; grace_s = 0.3 }

let phase_expected s p =
  (s.k * p.writes_per_writer) + (s.readers * p.reads_per_reader)

(* --- one phase: nemesis replay + chaos-tolerant load ------------------- *)

let run_phase cluster s ~write ~read ~writers ~readers phase_ix phase =
  let completed = Atomic.make 0 and failed = Atomic.make 0 in
  let mu = Mutex.create () in
  let max_unavail = ref 0.0 in
  let first_error = Atomic.make None in
  let attempt op =
    try
      op ();
      Atomic.incr completed
    with Cluster.Unavailable u ->
      Atomic.incr failed;
      Mutex.lock mu;
      if u.Cluster.elapsed_s > !max_unavail then
        max_unavail := u.Cluster.elapsed_s;
      Mutex.unlock mu;
      Thread.delay 0.03
  in
  let guard body () =
    try body ()
    with e -> ignore (Atomic.compare_and_set first_error None (Some e))
  in
  let pace () =
    if phase.gap_ms > 0 then Thread.delay (float_of_int phase.gap_ms /. 1e3)
  in
  let writer_thread i cl () =
    for j = 1 to phase.writes_per_writer do
      attempt (fun () ->
          write cl (Value.Str (Printf.sprintf "p%d-w%d-%03d" phase_ix i j)));
      pace ()
    done
  in
  let reader_thread cl () =
    for _ = 1 to phase.reads_per_reader do
      attempt (fun () -> ignore (read cl));
      pace ()
    done
  in
  let nem = Nemesis.start cluster phase.schedule in
  let threads =
    List.mapi (fun i cl -> Thread.create (guard (writer_thread i cl)) ()) writers
    @ List.map (fun cl -> Thread.create (guard (reader_thread cl)) ()) readers
  in
  List.iter Thread.join threads;
  let nemesis = Nemesis.join nem in
  (match Atomic.get first_error with Some e -> raise e | None -> ());
  {
    p_label = phase.label;
    expected = phase_expected s phase;
    completed = Atomic.get completed;
    failed = Atomic.get failed;
    max_unavail_s = !max_unavail;
    nemesis;
  }

(* --- pass/fail ---------------------------------------------------------- *)

let evaluate (s : scenario) ~check ~(stats : Cluster.stats) phases =
  let pairs = List.combine s.phases phases in
  let clean po = po.completed = po.expected && po.failed = 0 in
  match s.expect with
  | Clean ->
      if not (Checker.ok check) then Some "checker flagged a violation"
      else if not (List.for_all (fun (_, po) -> clean po) pairs) then
        Some "not every operation completed"
      else None
  | Degraded ->
      if not (Checker.ok check) then Some "checker flagged a violation"
      else if
        not (List.exists (fun (p, po) -> p.may_fail && po.failed > 0) pairs)
      then Some "expected fail-fast Unavailable during the outage, saw none"
      else if not (List.for_all (fun (p, po) -> p.may_fail || clean po) pairs)
      then Some "operations failed outside the outage window"
      else if
        not
          (List.for_all
             (fun (_, po) -> po.max_unavail_s < fail_fast_bound_s)
             pairs)
      then Some "unavailable operations did not fail fast"
      else None
  | Violation ->
      if Checker.ok check then
        Some "expected a consistency violation, but the checker stayed clean"
      else if s.recovery = Recovery.Amnesia && stats.Cluster.wipes = 0 then
        Some "expected amnesia restarts to wipe a store, none did"
      else None

(* --- one scenario ------------------------------------------------------- *)

let run ?(log = ignore) ?(sink = Sink.none) s =
  List.iter (fun p -> Schedule.validate ~n:s.n p.schedule) s.phases;
  let transport =
    {
      Transport.couriers = 3;
      delay_prob = s.delay_prob;
      max_delay_us = s.max_delay_us;
      dup_prob = s.dup_prob;
      drop_prob = s.drop_prob;
      reorder = true;
      sharded = true;
      backend = Transport.Threads;
      seed = s.seed;
    }
  in
  let cluster =
    Cluster.create ~sink
      {
        Cluster.n = s.n;
        transport;
        op_timeout_s = 60.0;
        recovery = s.recovery;
        retry = Some retry_config;
        hedge = (if s.hedge then Some Hedge.default_config else None);
        deadline = (if s.hedge then Some Deadline.default_config else None);
      }
  in
  let writers = List.init s.k (fun _ -> Cluster.new_client cluster) in
  let readers = List.init s.readers (fun _ -> Cluster.new_client cluster) in
  let write, read =
    match s.algo with
    | Abd ->
        let abd = Abd_live.create cluster ~f:s.f () in
        (Abd_live.write abd, Abd_live.read abd)
    | Alg2 ->
        let p = Params.make_exn ~k:s.k ~f:s.f ~n:s.n in
        let alg2 = Alg2_live.create cluster p ~writers () in
        (Alg2_live.write alg2, Alg2_live.read alg2)
    | Cds ->
        let cds = Cds_live.create cluster ~f:s.f ~writers () in
        (Cds_live.write cds, Cds_live.read cds)
    | Keyed ->
        (* every operation targets key 0: the schedule partitions that
           key's replica set, so the keyed retry/fail-fast path is what
           gets exercised.  Keyed ops log to the kspace's Klog, not the
           cluster Histlog, so the online checker sees an empty (clean)
           history — judgment rides on the expectation instead. *)
        let ks = Regemu_keyspace.Kspace.create cluster ~f:s.f () in
        let worker =
          let table =
            List.map
              (fun cl -> (cl, Regemu_keyspace.Kspace.worker_of ks cl))
              (writers @ readers)
          in
          fun cl -> List.assq cl table
        in
        ( (fun cl v -> Regemu_keyspace.Kspace.write ks (worker cl) ~key:0 v),
          fun cl -> Regemu_keyspace.Kspace.read ks (worker cl) ~key:0 )
  in
  Cluster.start cluster;
  let checker = Checker.spawn cluster ~interval_s:0.02 () in
  let t0 = Unix.gettimeofday () in
  let phases_result =
    try
      Ok
        (List.mapi
           (fun ix p ->
             log (Fmt.str "%s: phase %s (%a)" s.name p.label Schedule.pp
                    p.schedule);
             run_phase cluster s ~write ~read ~writers ~readers ix p)
           s.phases)
    with e -> Error e
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let check = Checker.stop checker in
  let stats = Cluster.stats cluster in
  let backoff_ms = Cluster.backoff_histogram cluster in
  Cluster.shutdown cluster;
  let phases, failure =
    match phases_result with
    | Ok phases -> (phases, evaluate s ~check ~stats phases)
    | Error e -> ([], Some (Printexc.to_string e))
  in
  { scenario = s; phases; stats; backoff_ms; check; wall_s;
    pass = failure = None; failure }

(* --- the campaigns ------------------------------------------------------ *)

let base ~seed =
  {
    name = "";
    descr = "";
    algo = Abd;
    k = 1;
    readers = 2;
    f = 1;
    n = 3;
    recovery = Recovery.Persist;
    drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    max_delay_us = 0;
    hedge = false;
    expect = Clean;
    seed;
    phases = [];
  }

let one_phase ?(may_fail = false) ~label ~writes ~reads ~gap_ms schedule =
  [
    {
      label;
      writes_per_writer = writes;
      reads_per_reader = reads;
      gap_ms;
      may_fail;
      schedule;
    };
  ]

let rolling_crashes ~seed ~algo ~rounds ~ops =
  {
    (base ~seed) with
    name = "rolling-crashes" ^ algo_suffix algo;
    descr =
      Fmt.str
        "crash and restart every server %d time(s) in turn under message \
         loss, duplication, and delay (%s)"
        rounds (algo_name algo);
    algo;
    drop_prob = 0.04;
    dup_prob = 0.03;
    delay_prob = 0.05;
    max_delay_us = 400;
    phases =
      one_phase ~label:"rolling" ~writes:ops ~reads:ops ~gap_ms:55
        (Schedule.rolling_crashes ~n:3 ~rounds ~gap_ms:90 ());
  }

let majority_partition ?(algo = Abd) ~seed () =
  {
    (base ~seed) with
    name = "majority-partition" ^ algo_suffix algo;
    descr =
      Fmt.str
        "isolate the minority server for half a second; clients keep a \
         majority and every operation completes (%s)"
        (algo_name algo);
    algo;
    drop_prob = 0.02;
    phases =
      one_phase ~label:"split" ~writes:10 ~reads:10 ~gap_ms:55
        (Schedule.minority_partition ~n:3 ~at_ms:80 ~heal_at_ms:600);
  }

let flapping ?(algo = Abd) ~seed () =
  {
    (base ~seed) with
    name = "flapping" ^ algo_suffix algo;
    descr =
      Fmt.str
        "seeded flapping: loss-rate pulses interleaved with single-server \
         crash/restart flips (%s)"
        (algo_name algo);
    algo;
    phases =
      one_phase ~label:"flap" ~writes:12 ~reads:12 ~gap_ms:60
        (Schedule.flapping ~n:3 ~flips:5 ~gap_ms:100 ~seed:(seed + 100));
  }

let beyond_f ?(algo = Abd) ~seed ~heal_at_ms ~outage_ops () =
  {
    (base ~seed) with
    name = "beyond-f" ^ algo_suffix algo;
    descr =
      Fmt.str
        "cut the clients down to a single reachable server (beyond f=1): \
         operations must fail fast with Unavailable, then resume after the \
         heal (%s)"
        (algo_name algo);
    algo;
    expect = Degraded;
    phases =
      one_phase ~label:"warmup" ~writes:4 ~reads:4 ~gap_ms:15 []
      @ one_phase ~may_fail:true ~label:"outage" ~writes:outage_ops
          ~reads:outage_ops ~gap_ms:40
          (Schedule.beyond_f ~n:3 ~reach:1 ~at_ms:50 ~heal_at_ms)
      @ one_phase ~label:"recovered" ~writes:4 ~reads:4 ~gap_ms:15 [];
  }

let amnesia ?(algo = Abd) ~seed ~ops () =
  {
    (base ~seed) with
    name = "amnesia" ^ algo_suffix algo;
    descr =
      Fmt.str
        "diskless rolling reboot of every server (never more than one down \
         at once) erases all state: stale reads must be flagged by the \
         WS-Regularity checker (%s)"
        (algo_name algo);
    algo;
    recovery = Recovery.Amnesia;
    expect = Violation;
    phases =
      one_phase ~label:"writes" ~writes:ops ~reads:0 ~gap_ms:15 []
      @ one_phase ~label:"wipe" ~writes:0 ~reads:0 ~gap_ms:0
          (Schedule.wipe_all ~n:3 ~start_ms:30 ~gap_ms:80 ())
      @ one_phase ~label:"stale-reads" ~writes:0 ~reads:ops ~gap_ms:15 [];
  }

(* --- gray-failure scenarios --------------------------------------------- *)

let one_straggler ?(algo = Abd) ~seed ~slow_us ~ops () =
  {
    (base ~seed) with
    name = "one-straggler" ^ algo_suffix algo;
    descr =
      Fmt.str
        "one server's link turns gray (+%dus per message) mid-workload: \
         hedged quorum rounds must keep every operation completing at \
         healthy-replica speed (%s)"
        slow_us (algo_name algo);
    algo;
    hedge = true;
    phases =
      one_phase ~label:"straggle" ~writes:ops ~reads:ops ~gap_ms:30
        (Schedule.one_straggler ~n:3 ~server:2 ~slow_us ~at_ms:60
           ~heal_at_ms:900);
  }

let rotating_straggler ~seed ~slow_us ~ops =
  {
    (base ~seed) with
    name = "rotating-straggler";
    descr =
      "the slowdown wanders: each server takes a turn as the gray \
       straggler, so no fixed replica subset is safe — the adaptive \
       deadline and health-biased hedging must keep adapting";
    hedge = true;
    phases =
      one_phase ~label:"rotate" ~writes:ops ~reads:ops ~gap_ms:30
        (Schedule.rotating_straggler ~n:3 ~slow_us ~start_ms:40 ~dwell_ms:250
           ());
  }

(* one server crashed (the full f budget) while another limps: still
   within the model — the slow server is alive, so a quorum of f+1
   exists — but every round must now wait out or hedge around the
   straggler *)
let straggler_at_f ~seed ~slow_us ~ops =
  {
    (base ~seed) with
    name = "straggler-at-f";
    descr =
      "a crash spends the whole f=1 budget while a second server turns \
       gray: the quorum that remains includes the straggler, so only \
       patience (adaptive deadlines) keeps operations completing";
    hedge = true;
    phases =
      one_phase ~label:"squeeze" ~writes:ops ~reads:ops ~gap_ms:40
        [
          { Schedule.at_ms = 40; ev = Schedule.Slow (1, slow_us) };
          { at_ms = 80; ev = Schedule.Crash 0 };
          { at_ms = 700; ev = Schedule.Restart 0 };
          { at_ms = 800; ev = Schedule.Heal_slow 1 };
        ];
  }

let keyspace_outage ~seed ~heal_at_ms ~outage_ops =
  {
    (base ~seed) with
    name = "keyspace-outage";
    descr =
      "cut the clients off from key 0's replica set beyond f: keyed \
       operations must fail fast with Unavailable, then resume after \
       the heal — the keyed retry path under partition";
    algo = Keyed;
    expect = Degraded;
    phases =
      one_phase ~label:"warmup" ~writes:4 ~reads:4 ~gap_ms:15 []
      @ one_phase ~may_fail:true ~label:"outage" ~writes:outage_ops
          ~reads:outage_ops ~gap_ms:40
          (Schedule.beyond_f ~n:3 ~reach:1 ~at_ms:50 ~heal_at_ms)
      @ one_phase ~label:"recovered" ~writes:4 ~reads:4 ~gap_ms:15 [];
  }

let campaign ~seed =
  [
    rolling_crashes ~seed ~algo:Abd ~rounds:2 ~ops:12;
    rolling_crashes ~seed:(seed + 1) ~algo:Alg2 ~rounds:1 ~ops:10;
    majority_partition ~seed:(seed + 2) ();
    flapping ~seed:(seed + 3) ();
    beyond_f ~seed:(seed + 4) ~heal_at_ms:1500 ~outage_ops:5 ();
    amnesia ~seed:(seed + 5) ~ops:8 ();
    one_straggler ~seed:(seed + 6) ~slow_us:5_000 ~ops:10 ();
    rotating_straggler ~seed:(seed + 7) ~slow_us:4_000 ~ops:10;
    straggler_at_f ~seed:(seed + 8) ~slow_us:3_000 ~ops:8;
    keyspace_outage ~seed:(seed + 9) ~heal_at_ms:1500 ~outage_ops:5;
    (* the CDS arms: the rival emulation through the same nemeses,
       including the two model-edge scenarios (beyond-f, amnesia) *)
    rolling_crashes ~seed:(seed + 10) ~algo:Cds ~rounds:1 ~ops:10;
    majority_partition ~algo:Cds ~seed:(seed + 11) ();
    flapping ~algo:Cds ~seed:(seed + 12) ();
    beyond_f ~algo:Cds ~seed:(seed + 13) ~heal_at_ms:1500 ~outage_ops:5 ();
    amnesia ~algo:Cds ~seed:(seed + 14) ~ops:8 ();
    one_straggler ~algo:Cds ~seed:(seed + 15) ~slow_us:5_000 ~ops:10 ();
  ]

let smoke ~seed =
  [
    rolling_crashes ~seed ~algo:Abd ~rounds:1 ~ops:8;
    beyond_f ~seed:(seed + 4) ~heal_at_ms:800 ~outage_ops:3 ();
    amnesia ~seed:(seed + 5) ~ops:5 ();
    one_straggler ~seed:(seed + 6) ~slow_us:4_000 ~ops:6 ();
    keyspace_outage ~seed:(seed + 9) ~heal_at_ms:800 ~outage_ops:3;
    rolling_crashes ~seed:(seed + 10) ~algo:Cds ~rounds:1 ~ops:8;
    amnesia ~algo:Cds ~seed:(seed + 14) ~ops:5 ();
  ]

let names () = List.map (fun s -> s.name) (campaign ~seed:0)

let by_name ~seed name =
  List.find_opt (fun s -> s.name = name) (campaign ~seed)

(* One trace may span every scenario (recorders are per-run, so thread
   names repeat across scenarios), but a metrics registry must be
   per-run — names register once — so only a trace threads here. *)
let run_all ?log ?trace scenarios =
  let sink =
    match trace with None -> Sink.none | Some tr -> Sink.make ~trace:tr ()
  in
  List.map (run ?log ~sink) scenarios

(* --- reporting ---------------------------------------------------------- *)

let phase_outcome_pp ppf p =
  Fmt.pf ppf "%s: %d/%d ops, %d unavailable%s (%a)" p.p_label p.completed
    p.expected p.failed
    (if p.failed > 0 then Fmt.str " (slowest fail %.2fs)" p.max_unavail_s
     else "")
    Nemesis.counters_pp p.nemesis

let outcome_pp ppf o =
  let s = o.scenario in
  Fmt.pf ppf "%-20s %-10s %s/%s expect=%-9s %.2fs %s%a"
    s.name (algo_name s.algo)
    (Recovery.to_string s.recovery)
    (Fmt.str "f=%d,n=%d" s.f s.n)
    (expectation_name s.expect) o.wall_s
    (if o.pass then "PASS" else "FAIL")
    Fmt.(option (fun ppf m -> Fmt.pf ppf " — %s" m))
    o.failure

let phase_json (p : phase) po =
  Json.Obj
    [
      ("label", Json.Str po.p_label);
      ("writes_per_writer", Json.Int p.writes_per_writer);
      ("reads_per_reader", Json.Int p.reads_per_reader);
      ("may_fail", Json.Bool p.may_fail);
      ("schedule", Schedule.to_json p.schedule);
      ("expected_ops", Json.Int po.expected);
      ("completed", Json.Int po.completed);
      ("unavailable", Json.Int po.failed);
      ("max_unavailable_s", Json.Float po.max_unavail_s);
      ("nemesis", Nemesis.counters_json po.nemesis);
    ]

let outcome_json o =
  let s = o.scenario in
  let stats = o.stats in
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("descr", Json.Str s.descr);
      ("algo", Json.Str (algo_name s.algo));
      ("writers", Json.Int s.k);
      ("readers", Json.Int s.readers);
      ("f", Json.Int s.f);
      ("n", Json.Int s.n);
      ("recovery", Json.Str (Recovery.to_string s.recovery));
      ("drop_prob", Json.Float s.drop_prob);
      ("dup_prob", Json.Float s.dup_prob);
      ("delay_prob", Json.Float s.delay_prob);
      ("hedge", Json.Bool s.hedge);
      ("seed", Json.Int s.seed);
      ("expect", Json.Str (expectation_name s.expect));
      ( "phases",
        (* empty when the run aborted before completing its phases *)
        if List.length o.phases = List.length s.phases then
          Json.List (List.map2 phase_json s.phases o.phases)
        else Json.List [] );
      ( "msgs",
        Json.Obj
          [
            ("sent", Json.Int stats.Cluster.msgs_sent);
            ("delivered", Json.Int stats.Cluster.msgs_delivered);
            ("duplicated", Json.Int stats.Cluster.msgs_duplicated);
            ("delayed", Json.Int stats.Cluster.msgs_delayed);
            ("dropped", Json.Int stats.Cluster.msgs_dropped);
            ("cut", Json.Int stats.Cluster.msgs_cut);
            ("slowed", Json.Int stats.Cluster.msgs_slowed);
          ] );
      ("crashes", Json.Int stats.Cluster.crashes);
      ("restarts", Json.Int stats.Cluster.restarts);
      ("wipes", Json.Int stats.Cluster.wipes);
      ("retries", Json.Int stats.Cluster.retries);
      ("hedges", Json.Int stats.Cluster.hedges);
      ("hedge_wins", Json.Int stats.Cluster.hedge_wins);
      ("unavailable", Json.Int stats.Cluster.unavailable);
      ("ops_completed", Json.Int stats.Cluster.ops_completed);
      ( "backoff_hist_ms",
        Json.List
          (List.map
             (fun (le_ms, count) ->
               Json.Obj
                 [
                   ( "le_ms",
                     if le_ms = max_int then Json.Null else Json.Int le_ms );
                   ("count", Json.Int count);
                 ])
             o.backoff_ms) );
      ("online_checks", Json.Int o.check.Checker.checks);
      ("ops_checked", Json.Int o.check.Checker.ops_checked);
      ( "ws_regular",
        Json.Str
          (Fmt.str "%a" Regemu_history.Ws_check.verdict_pp o.check.Checker.ws)
      );
      ("checker_ok", Json.Bool (Checker.ok o.check));
      ("wall_s", Json.Float o.wall_s);
      ("pass", Json.Bool o.pass);
      ( "failure",
        match o.failure with None -> Json.Null | Some m -> Json.Str m );
    ]

let all_pass outcomes = List.for_all (fun o -> o.pass) outcomes

let to_json ~seed ~smoke outcomes =
  Json.Obj
    [
      ("schema", Json.Str "regemu-chaos/1");
      ("seed", Json.Int seed);
      ("smoke", Json.Bool smoke);
      ("scenarios", Json.List (List.map outcome_json outcomes));
      ("pass", Json.Bool (all_pass outcomes));
    ]

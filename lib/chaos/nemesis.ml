open Regemu_live
module Json = Regemu_obs.Json

type counters = {
  crashes : int;
  restarts : int;
  partitions : int;
  heals : int;
  drop_changes : int;
  slows : int;
  stutters : int;
  heal_slows : int;
}

let counters_pp ppf c =
  Fmt.pf ppf
    "%d crashes, %d restarts, %d partitions, %d heals, %d drop changes, %d \
     slows, %d stutters, %d slow heals"
    c.crashes c.restarts c.partitions c.heals c.drop_changes c.slows
    c.stutters c.heal_slows

let counters_json c =
  Json.Obj
    [
      ("crashes", Json.Int c.crashes);
      ("restarts", Json.Int c.restarts);
      ("partitions", Json.Int c.partitions);
      ("heals", Json.Int c.heals);
      ("drop_changes", Json.Int c.drop_changes);
      ("slows", Json.Int c.slows);
      ("stutters", Json.Int c.stutters);
      ("heal_slows", Json.Int c.heal_slows);
    ]

type mode =
  | Threaded of Thread.t
  | Fiber of { hook : Sched_hook.t; finished : bool ref }

type t = { mode : mode; counters : counters ref }

(* The replay loop is strictly sequential, so a fault with a duration
   ([Stutter]) cannot block in [apply]: schedules pre-expand into
   instantaneous actions — a stutter becomes a freeze at [at_ms] and a
   thaw at [at_ms + duration]. *)
type action =
  | Event of Schedule.event
  | Thaw of int

let expand events =
  List.concat_map
    (fun { Schedule.at_ms; ev } ->
      match ev with
      | Schedule.Stutter (s, ms) ->
          [ (at_ms, Event ev); (at_ms + ms, Thaw s) ]
      | _ -> [ (at_ms, Event ev) ])
    events

let apply cluster counters action =
  let c = !counters in
  match action with
  | Event (Schedule.Crash s) ->
      Cluster.crash cluster s;
      counters := { c with crashes = c.crashes + 1 }
  | Event (Schedule.Restart s) ->
      Cluster.restart cluster s;
      counters := { c with restarts = c.restarts + 1 }
  | Event (Schedule.Partition groups) ->
      Cluster.split cluster ~groups ~clients_with:0;
      counters := { c with partitions = c.partitions + 1 }
  | Event Schedule.Heal ->
      Cluster.heal cluster;
      counters := { c with heals = c.heals + 1 }
  | Event (Schedule.Drop_rate p) ->
      Cluster.set_drop cluster ~requests:p ~replies:p ();
      counters := { c with drop_changes = c.drop_changes + 1 }
  | Event (Schedule.Slow (s, us)) ->
      Cluster.set_slow cluster ~server:s us;
      counters := { c with slows = c.slows + 1 }
  | Event (Schedule.Stutter (s, _ms)) ->
      Cluster.freeze cluster ~server:s;
      counters := { c with stutters = c.stutters + 1 }
  | Event (Schedule.Heal_slow s) ->
      Cluster.set_slow cluster ~server:s 0;
      counters := { c with heal_slows = c.heal_slows + 1 }
  | Thaw s -> Cluster.thaw cluster ~server:s

let start ?sched cluster events =
  Schedule.validate ~n:(Cluster.num_servers cluster) events;
  let actions =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (expand events)
  in
  let counters =
    ref
      {
        crashes = 0;
        restarts = 0;
        partitions = 0;
        heals = 0;
        drop_changes = 0;
        slows = 0;
        stutters = 0;
        heal_slows = 0;
      }
  in
  (* the replay body, parameterized over how to wait: [Thread.delay] on
     the monotonic clock in the threaded mode, the scheduler's virtual
     sleep under DST — identical schedules fire at identical (virtual)
     offsets either way *)
  let replay pause =
    let t0 = Clock.now_s () in
    List.iter
      (fun (at_ms, action) ->
        let due = t0 +. (float_of_int at_ms /. 1e3) in
        let rec sleep_until () =
          let now = Clock.now_s () in
          if now < due then begin
            pause (min 0.02 (due -. now));
            sleep_until ()
          end
        in
        sleep_until ();
        apply cluster counters action)
      actions
  in
  let mode =
    match sched with
    | None -> Threaded (Thread.create (fun () -> replay Thread.delay) ())
    | Some (hook : Sched_hook.t) ->
        let finished = ref false in
        hook.spawn ~name:"nemesis" (fun () ->
            replay hook.sleep;
            finished := true);
        Fiber { hook; finished }
  in
  { mode; counters }

let join t =
  (match t.mode with
  | Threaded th -> Thread.join th
  | Fiber { hook; finished } -> hook.suspend (fun () -> !finished));
  !(t.counters)

open Regemu_live

type counters = {
  crashes : int;
  restarts : int;
  partitions : int;
  heals : int;
  drop_changes : int;
}

let counters_pp ppf c =
  Fmt.pf ppf "%d crashes, %d restarts, %d partitions, %d heals, %d drop changes"
    c.crashes c.restarts c.partitions c.heals c.drop_changes

let counters_json c =
  Json.Obj
    [
      ("crashes", Json.Int c.crashes);
      ("restarts", Json.Int c.restarts);
      ("partitions", Json.Int c.partitions);
      ("heals", Json.Int c.heals);
      ("drop_changes", Json.Int c.drop_changes);
    ]

type t = { thread : Thread.t; counters : counters ref }

let apply cluster counters { Schedule.ev; _ } =
  let c = !counters in
  match ev with
  | Schedule.Crash s ->
      Cluster.crash cluster s;
      counters := { c with crashes = c.crashes + 1 }
  | Schedule.Restart s ->
      Cluster.restart cluster s;
      counters := { c with restarts = c.restarts + 1 }
  | Schedule.Partition groups ->
      Cluster.split cluster ~groups ~clients_with:0;
      counters := { c with partitions = c.partitions + 1 }
  | Schedule.Heal ->
      Cluster.heal cluster;
      counters := { c with heals = c.heals + 1 }
  | Schedule.Drop_rate p ->
      Cluster.set_drop cluster ~requests:p ~replies:p ();
      counters := { c with drop_changes = c.drop_changes + 1 }

let start cluster sched =
  Schedule.validate ~n:(Cluster.num_servers cluster) sched;
  let sched = List.stable_sort (fun a b -> compare a.Schedule.at_ms b.Schedule.at_ms) sched in
  let counters =
    ref { crashes = 0; restarts = 0; partitions = 0; heals = 0; drop_changes = 0 }
  in
  let thread =
    Thread.create
      (fun () ->
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun ev ->
            let due = t0 +. (float_of_int ev.Schedule.at_ms /. 1e3) in
            let rec sleep_until () =
              let now = Unix.gettimeofday () in
              if now < due then (
                Thread.delay (min 0.02 (due -. now));
                sleep_until ())
            in
            sleep_until ();
            apply cluster counters ev)
          sched)
      ()
  in
  { thread; counters }

let join t =
  Thread.join t.thread;
  !(t.counters)

open Regemu_live
module Json = Regemu_obs.Json

type counters = {
  crashes : int;
  restarts : int;
  partitions : int;
  heals : int;
  drop_changes : int;
}

let counters_pp ppf c =
  Fmt.pf ppf "%d crashes, %d restarts, %d partitions, %d heals, %d drop changes"
    c.crashes c.restarts c.partitions c.heals c.drop_changes

let counters_json c =
  Json.Obj
    [
      ("crashes", Json.Int c.crashes);
      ("restarts", Json.Int c.restarts);
      ("partitions", Json.Int c.partitions);
      ("heals", Json.Int c.heals);
      ("drop_changes", Json.Int c.drop_changes);
    ]

type mode =
  | Threaded of Thread.t
  | Fiber of { hook : Sched_hook.t; finished : bool ref }

type t = { mode : mode; counters : counters ref }

let apply cluster counters { Schedule.ev; _ } =
  let c = !counters in
  match ev with
  | Schedule.Crash s ->
      Cluster.crash cluster s;
      counters := { c with crashes = c.crashes + 1 }
  | Schedule.Restart s ->
      Cluster.restart cluster s;
      counters := { c with restarts = c.restarts + 1 }
  | Schedule.Partition groups ->
      Cluster.split cluster ~groups ~clients_with:0;
      counters := { c with partitions = c.partitions + 1 }
  | Schedule.Heal ->
      Cluster.heal cluster;
      counters := { c with heals = c.heals + 1 }
  | Schedule.Drop_rate p ->
      Cluster.set_drop cluster ~requests:p ~replies:p ();
      counters := { c with drop_changes = c.drop_changes + 1 }

let start ?sched cluster events =
  Schedule.validate ~n:(Cluster.num_servers cluster) events;
  let events =
    List.stable_sort
      (fun a b -> compare a.Schedule.at_ms b.Schedule.at_ms)
      events
  in
  let counters =
    ref
      { crashes = 0; restarts = 0; partitions = 0; heals = 0; drop_changes = 0 }
  in
  (* the replay body, parameterized over how to wait: [Thread.delay] on
     the monotonic clock in the threaded mode, the scheduler's virtual
     sleep under DST — identical schedules fire at identical (virtual)
     offsets either way *)
  let replay pause =
    let t0 = Clock.now_s () in
    List.iter
      (fun ev ->
        let due = t0 +. (float_of_int ev.Schedule.at_ms /. 1e3) in
        let rec sleep_until () =
          let now = Clock.now_s () in
          if now < due then begin
            pause (min 0.02 (due -. now));
            sleep_until ()
          end
        in
        sleep_until ();
        apply cluster counters ev)
      events
  in
  let mode =
    match sched with
    | None -> Threaded (Thread.create (fun () -> replay Thread.delay) ())
    | Some (hook : Sched_hook.t) ->
        let finished = ref false in
        hook.spawn ~name:"nemesis" (fun () ->
            replay hook.sleep;
            finished := true);
        Fiber { hook; finished }
  in
  { mode; counters }

let join t =
  (match t.mode with
  | Threaded th -> Thread.join th
  | Fiber { hook; finished } -> hook.suspend (fun () -> !finished));
  !(t.counters)

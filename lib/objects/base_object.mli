(** Sequential semantics of the three base object types studied in the
    paper: read/write registers, max-registers, and CAS.

    All three store a single {!Value.t}.  {!apply} is the object's
    sequential specification: it maps (state, operation) to
    (new state, response).  The simulator calls {!apply} exactly once
    per low-level operation, at the operation's respond step — which is
    its linearization point (the paper's Assumption 1). *)

type kind =
  | Register  (** plain MWMR read/write register *)
  | Max_register
      (** write-max / read-max (Aspnes–Attiya–Censor max register) *)
  | Cas  (** compare-and-swap conditional register (Appendix B) *)

val kind_equal : kind -> kind -> bool
val kind_pp : kind Fmt.t
val kind_to_string : kind -> string

(** A low-level operation on a base object. *)
type op =
  | Read  (** register read; responds with the current value *)
  | Write of Value.t  (** register write; responds with ack ([Unit]) *)
  | Max_read  (** max-register read-max; responds with the max so far *)
  | Max_write of Value.t  (** max-register write-max; responds with ack *)
  | Compare_and_swap of { expected : Value.t; desired : Value.t }
      (** sets state to [desired] iff state equals [expected]; always
          responds with the {e old} value (Appendix B semantics) *)

val op_pp : op Fmt.t

(** [is_mutator op] is [true] for operations whose pending instances
    cover a base object: register writes, write-max, and CAS.
    (For the lower-bound adversary only pending register {e writes}
    matter, but the covering tracker records all mutators.) *)
val is_mutator : op -> bool

(** [matches kind op] checks that [op] belongs to [kind]'s interface. *)
val matches : kind -> op -> bool

(** [apply kind state op] is [(state', response)] per the sequential
    specification of [kind].  Raises [Invalid_argument] when
    [not (matches kind op)]. *)
val apply : kind -> Value.t -> op -> Value.t * Value.t

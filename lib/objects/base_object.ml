type kind = Register | Max_register | Cas

let kind_equal a b =
  match (a, b) with
  | Register, Register | Max_register, Max_register | Cas, Cas -> true
  | (Register | Max_register | Cas), _ -> false

let kind_to_string = function
  | Register -> "register"
  | Max_register -> "max-register"
  | Cas -> "CAS"

let kind_pp ppf k = Fmt.string ppf (kind_to_string k)

type op =
  | Read
  | Write of Value.t
  | Max_read
  | Max_write of Value.t
  | Compare_and_swap of { expected : Value.t; desired : Value.t }

let op_pp ppf = function
  | Read -> Fmt.string ppf "read"
  | Write v -> Fmt.pf ppf "write(%a)" Value.pp v
  | Max_read -> Fmt.string ppf "read-max"
  | Max_write v -> Fmt.pf ppf "write-max(%a)" Value.pp v
  | Compare_and_swap { expected; desired } ->
      Fmt.pf ppf "CAS(%a,%a)" Value.pp expected Value.pp desired

let is_mutator = function
  | Write _ | Max_write _ | Compare_and_swap _ -> true
  | Read | Max_read -> false

let matches kind op =
  match (kind, op) with
  | Register, (Read | Write _) -> true
  | Max_register, (Max_read | Max_write _) -> true
  | Cas, Compare_and_swap _ -> true
  | (Register | Max_register | Cas), _ -> false

let apply kind state op =
  if not (matches kind op) then
    invalid_arg
      (Fmt.str "Base_object.apply: %a not supported by %a" op_pp op kind_pp
         kind);
  match op with
  | Read -> (state, state)
  | Write v -> (v, Value.Unit)
  | Max_read -> (state, state)
  | Max_write v -> (Value.max state v, Value.Unit)
  | Compare_and_swap { expected; desired } ->
      let state' = if Value.equal state expected then desired else state in
      (state', state)

module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t

  val range : int -> t list
  val set_of_list : t list -> Set.t
end

module Make (P : sig
  val prefix : string
end) : S = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let pp ppf i = Fmt.pf ppf "%s%d" P.prefix i

  module Set = Set.Make (Int)
  module Map = Map.Make (Int)

  let range n = List.init n Fun.id
  let set_of_list = Set.of_list
end

module Obj = Make (struct
  let prefix = "b"
end)

module Server = Make (struct
  let prefix = "s"
end)

module Client = Make (struct
  let prefix = "c"
end)

module Lop = Make (struct
  let prefix = "op"
end)

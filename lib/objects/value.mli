(** Values stored in base objects and in the emulated register.

    A small structural value universe with a total order, so the same
    simulator can host plain registers (no order needed), max-registers
    and CAS objects (order/equality needed), and application-level
    payloads such as strings in the examples.

    Timestamped values — the [TSVal = N x V] type of Algorithm 2 — are
    encoded as [Pair (Int ts, payload)] via {!with_ts}; the
    lexicographic order of {!compare} then orders them by timestamp
    first, exactly as the emulations require. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t

(** The distinguished initial value [v0] of every register
    (the paper's [v_0]); equal to [Unit]. *)
val v0 : t

val equal : t -> t -> bool

(** Total order: by constructor rank ([Unit < Bool < Int < Str < Pair]),
    then structurally; pairs compare lexicographically. *)
val compare : t -> t -> int

val max : t -> t -> t
val pp : t Fmt.t
val to_string : t -> string

(** {2 Timestamped values} *)

(** [with_ts ts v] is the timestamped value [<ts, v>]. *)
val with_ts : int -> t -> t

(** [ts v] is the timestamp of a timestamped value, and [0] for any
    value that is not of the form [with_ts ts _] (in particular for
    [v0], matching the initial timestamp [<0, v0>] of Algorithm 2). *)
val ts : t -> int

(** [payload v] is the payload of a timestamped value, or [v] itself
    otherwise. *)
val payload : t -> t

(** Integer-backed identifiers for the three kinds of system components.

    Separate abstract types prevent accidentally using a server id where
    an object id is expected.  Each module also provides [Set] and [Map]
    instances, which the adversary bookkeeping (sets [Q_i], [F_i], ...)
    relies on heavily. *)

module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t

  (** [range n] is [[of_int 0; ...; of_int (n-1)]]. *)
  val range : int -> t list

  val set_of_list : t list -> Set.t
end

(** Identifier of a base object ([b] in the paper's [B]). *)
module Obj : S

(** Identifier of a server ([s] in the paper's [S]). *)
module Server : S

(** Identifier of a client ([c] in the paper's [C]). *)
module Client : S

(** Identifier of a low-level operation instance (a trigger). *)
module Lop : S

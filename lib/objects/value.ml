type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t

let v0 = Unit

let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Pair _ -> 4

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0
let max a b = if compare a b >= 0 then a else b

let rec pp ppf = function
  | Unit -> Fmt.string ppf "v0"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "<%a,%a>" pp a pp b

let to_string v = Fmt.str "%a" pp v
let with_ts ts v = Pair (Int ts, v)
let ts = function Pair (Int ts, _) -> ts | _ -> 0
let payload = function Pair (Int _, v) -> v | v -> v

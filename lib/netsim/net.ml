open Regemu_objects

(* the wire payloads and the server step live in Proto, shared verbatim
   with the live threaded runtime *)
type payload = Proto.payload =
  | Query of { rid : int }
  | Query_reply of { rid : int; stored : Value.t }
  | Update of { rid : int; proposed : Value.t }
  | Update_reply of { rid : int }
  | Reg_read of { rid : int; reg : int }
  | Reg_read_reply of { rid : int; stored : Value.t }
  | Reg_write of { rid : int; reg : int; proposed : Value.t }
  | Reg_write_reply of { rid : int }
  | Kquery of { rid : int; key : int }
  | Kquery_reply of { rid : int; key : int; stored : Value.t }
  | Kupdate of { rid : int; key : int; proposed : Value.t }
  | Kupdate_reply of { rid : int; key : int }
  | Cquery of { rid : int }
  | Cquery_reply of { rid : int; slots : (int * Value.t) list }
  | Cwrite of { rid : int; slot : int; proposed : Value.t }
  | Cwrite_reply of { rid : int; slot : int }

let payload_pp = Proto.payload_pp

type dest = To_server of Id.Server.t | To_client of Id.Client.t

type event = Deliver of int | Step of Id.Client.t

let event_pp ppf = function
  | Deliver m -> Fmt.pf ppf "deliver(m%d)" m
  | Step c -> Fmt.pf ppf "step(%a)" Id.Client.pp c

type _ Effect.t += Net_wait : (unit -> bool) -> unit Effect.t

let wait_until pred = Effect.perform (Net_wait pred)

type message = {
  mid : int;
  src : Id.Client.t option;  (* None for server replies *)
  dest : dest;
  payload : payload;
}

type fiber =
  | Idle
  | Waiting of {
      pred : unit -> bool;
      k : (unit, unit) Effect.Deep.continuation;
    }

type client_rec = { cid : Id.Client.t; mutable fiber : fiber; mutable busy : bool }

type call = {
  cl : Id.Client.t;
  hop : Regemu_sim.Trace.hop;
  invoked_at : int;
  index : int;
  mutable result : Value.t option;
  mutable returned_at : int option;
}

type t = {
  n : int;
  stores : Proto.store array;  (* per-server storage, shared with live *)
  server_down : bool array;
  mutable clients : client_rec list;
  mutable flight : message list;  (* newest first *)
  mutable next_mid : int;
  mutable next_rid : int;
  handlers : (int * int, payload -> unit) Hashtbl.t;  (* (client, rid) *)
  mutable clock : int;
  mutable deliveries : int;
  mutable ops : call list;  (* newest first *)
  mutable next_op_index : int;
}

let create ~n () =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  {
    n;
    stores = Array.init n (fun _ -> Proto.store_create ());
    server_down = Array.make n false;
    clients = [];
    flight = [];
    next_mid = 0;
    next_rid = 0;
    handlers = Hashtbl.create 32;
    clock = 0;
    deliveries = 0;
    ops = [];
    next_op_index = 0;
  }

let num_servers t = t.n
let servers t = Id.Server.range t.n

let new_client t =
  let cid = Id.Client.of_int (List.length t.clients) in
  t.clients <- t.clients @ [ { cid; fiber = Idle; busy = false } ];
  cid

let client_rec t c =
  match
    List.find_opt (fun r -> Id.Client.equal r.cid c) t.clients
  with
  | Some r -> r
  | None -> invalid_arg "Net: unknown client"

let check_server t s =
  let i = Id.Server.to_int s in
  if i < 0 || i >= t.n then invalid_arg "Net: unknown server"

let alloc_reg t s =
  check_server t s;
  Proto.alloc_reg t.stores.(Id.Server.to_int s)

let regs_on t s =
  check_server t s;
  Proto.num_regs t.stores.(Id.Server.to_int s)

let peek_reg t s reg =
  check_server t s;
  Proto.peek_reg t.stores.(Id.Server.to_int s) reg

let crash_server t s =
  check_server t s;
  t.server_down.(Id.Server.to_int s) <- true

let server_crashed t s =
  check_server t s;
  t.server_down.(Id.Server.to_int s)

let tick t = t.clock <- t.clock + 1

let send t ~from dest payload =
  check_server t dest;
  tick t;
  let mid = t.next_mid in
  t.next_mid <- mid + 1;
  t.flight <- { mid; src = Some from; dest = To_server dest; payload } :: t.flight

let send_to_client t c payload =
  let mid = t.next_mid in
  t.next_mid <- mid + 1;
  t.flight <- { mid; src = None; dest = To_client c; payload } :: t.flight

let on_reply t ~client ~rid f =
  Hashtbl.replace t.handlers (Id.Client.to_int client, rid) f

let fresh_rid t =
  let r = t.next_rid in
  t.next_rid <- r + 1;
  r

(* --- fibers ----------------------------------------------------------- *)

let run_fiber t (cr : client_rec) (call : call) body =
  let handler : (Value.t, unit) Effect.Deep.handler =
    {
      retc =
        (fun v ->
          tick t;
          call.result <- Some v;
          call.returned_at <- Some t.clock;
          cr.busy <- false;
          cr.fiber <- Idle);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Net_wait pred ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  cr.fiber <- Waiting { pred; k })
          | _ -> None);
    }
  in
  Effect.Deep.match_with body () handler

let invoke t ~client hop body =
  let cr = client_rec t client in
  if cr.busy then invalid_arg "Net.invoke: client busy";
  cr.busy <- true;
  tick t;
  let call =
    {
      cl = client;
      hop;
      invoked_at = t.clock;
      index = t.next_op_index;
      result = None;
      returned_at = None;
    }
  in
  t.next_op_index <- t.next_op_index + 1;
  t.ops <- call :: t.ops;
  run_fiber t cr call body;
  call

let call_returned c = c.result <> None
let call_result c = c.result

(* --- environment ------------------------------------------------------- *)

let deliverable t (m : message) =
  match m.dest with
  | To_server s -> not (server_crashed t s)
  | To_client _ -> true

let enabled t =
  let steps =
    List.filter_map
      (fun cr ->
        match cr.fiber with
        | Waiting { pred; _ } when pred () -> Some (Step cr.cid)
        | Waiting _ | Idle -> None)
      t.clients
  in
  let delivers =
    List.rev t.flight
    |> List.filter_map (fun m ->
           if deliverable t m then Some (Deliver m.mid) else None)
  in
  steps @ delivers

(* the built-in server behaviour — the shared protocol core applied to
   this server's store *)
let server_process t s payload =
  Proto.step t.stores.(Id.Server.to_int s) payload
  |> List.map (fun reply -> (Proto.rid_of reply, reply))

let client_of_rid t rid =
  (* handlers are keyed by (client, rid); rids are globally unique so a
     linear scan finds the owner *)
  Hashtbl.fold
    (fun (c, r) _ acc -> if r = rid then Some (Id.Client.of_int c) else acc)
    t.handlers None

let fire t ev =
  match ev with
  | Step c -> (
      let cr = client_rec t c in
      match cr.fiber with
      | Waiting { pred; k } when pred () ->
          tick t;
          cr.fiber <- Idle;
          Effect.Deep.continue k ()
      | Waiting _ | Idle ->
          invalid_arg (Fmt.str "Net.fire: %a not enabled" event_pp ev))
  | Deliver mid -> (
      match List.find_opt (fun m -> m.mid = mid) t.flight with
      | None -> invalid_arg "Net.fire: message not in flight"
      | Some m ->
          if not (deliverable t m) then
            invalid_arg "Net.fire: destination crashed";
          t.flight <- List.filter (fun m' -> m'.mid <> mid) t.flight;
          tick t;
          t.deliveries <- t.deliveries + 1;
          (match m.dest with
          | To_server s ->
              let replies = server_process t s m.payload in
              List.iter
                (fun (rid, reply) ->
                  match client_of_rid t rid with
                  | Some c -> send_to_client t c reply
                  | None -> ())
                replies
          | To_client c -> (
              let rid =
                match m.payload with
                | Query { rid }
                | Query_reply { rid; _ }
                | Update { rid; _ }
                | Update_reply { rid }
                | Reg_read { rid; _ }
                | Reg_read_reply { rid; _ }
                | Reg_write { rid; _ }
                | Reg_write_reply { rid }
                | Kquery { rid; _ }
                | Kquery_reply { rid; _ }
                | Kupdate { rid; _ }
                | Kupdate_reply { rid; _ }
                | Cquery { rid }
                | Cquery_reply { rid; _ }
                | Cwrite { rid; _ }
                | Cwrite_reply { rid; _ } ->
                    rid
              in
              match
                Hashtbl.find_opt t.handlers (Id.Client.to_int c, rid)
              with
              | Some f ->
                  (* one-shot: a duplicated reply must not double-count
                     toward a quorum *)
                  Hashtbl.remove t.handlers (Id.Client.to_int c, rid);
                  f m.payload
              | None -> ())))

(* the environment may duplicate any in-flight message (at-least-once
   delivery); the protocol must tolerate it *)
let duplicate t mid =
  match List.find_opt (fun m -> m.mid = mid) t.flight with
  | None -> invalid_arg "Net.duplicate: message not in flight"
  | Some m ->
      let mid' = t.next_mid in
      t.next_mid <- mid' + 1;
      t.flight <- { m with mid = mid' } :: t.flight

let in_flight t = List.length t.flight
let sent t = t.next_mid

let flight t =
  List.rev_map (fun m -> (m.mid, m.dest, m.payload)) t.flight

let src_of t mid =
  match List.find_opt (fun m -> m.mid = mid) t.flight with
  | Some m -> m.src
  | None -> None
let delivered t = t.deliveries

let history t =
  List.rev t.ops
  |> List.map (fun (c : call) ->
         {
           Regemu_history.History.index = c.index;
           client = c.cl;
           hop = c.hop;
           invoked_at = c.invoked_at;
           returned_at = c.returned_at;
           result = c.result;
         })

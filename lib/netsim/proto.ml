open Regemu_objects

type payload =
  | Query of { rid : int }
  | Query_reply of { rid : int; stored : Value.t }
  | Update of { rid : int; proposed : Value.t }
  | Update_reply of { rid : int }
  | Reg_read of { rid : int; reg : int }
  | Reg_read_reply of { rid : int; stored : Value.t }
  | Reg_write of { rid : int; reg : int; proposed : Value.t }
  | Reg_write_reply of { rid : int }
  | Kquery of { rid : int; key : int }
  | Kquery_reply of { rid : int; key : int; stored : Value.t }
  | Kupdate of { rid : int; key : int; proposed : Value.t }
  | Kupdate_reply of { rid : int; key : int }
  | Cquery of { rid : int }
  | Cquery_reply of { rid : int; slots : (int * Value.t) list }
  | Cwrite of { rid : int; slot : int; proposed : Value.t }
  | Cwrite_reply of { rid : int; slot : int }

let payload_pp ppf = function
  | Query { rid } -> Fmt.pf ppf "query#%d" rid
  | Query_reply { rid; stored } ->
      Fmt.pf ppf "query-reply#%d(%a)" rid Value.pp stored
  | Update { rid; proposed } ->
      Fmt.pf ppf "update#%d(%a)" rid Value.pp proposed
  | Update_reply { rid } -> Fmt.pf ppf "update-reply#%d" rid
  | Reg_read { rid; reg } -> Fmt.pf ppf "reg-read#%d[r%d]" rid reg
  | Reg_read_reply { rid; stored } ->
      Fmt.pf ppf "reg-read-reply#%d(%a)" rid Value.pp stored
  | Reg_write { rid; reg; proposed } ->
      Fmt.pf ppf "reg-write#%d[r%d](%a)" rid reg Value.pp proposed
  | Reg_write_reply { rid } -> Fmt.pf ppf "reg-write-reply#%d" rid
  | Kquery { rid; key } -> Fmt.pf ppf "kquery#%d[k%d]" rid key
  | Kquery_reply { rid; key; stored } ->
      Fmt.pf ppf "kquery-reply#%d[k%d](%a)" rid key Value.pp stored
  | Kupdate { rid; key; proposed } ->
      Fmt.pf ppf "kupdate#%d[k%d](%a)" rid key Value.pp proposed
  | Kupdate_reply { rid; key } -> Fmt.pf ppf "kupdate-reply#%d[k%d]" rid key
  | Cquery { rid } -> Fmt.pf ppf "cquery#%d" rid
  | Cquery_reply { rid; slots } ->
      Fmt.pf ppf "cquery-reply#%d(%a)" rid
        Fmt.(
          list ~sep:(any ",") (fun ppf (s, v) ->
              Fmt.pf ppf "s%d=%a" s Value.pp v))
        slots
  | Cwrite { rid; slot; proposed } ->
      Fmt.pf ppf "cwrite#%d[s%d](%a)" rid slot Value.pp proposed
  | Cwrite_reply { rid; slot } -> Fmt.pf ppf "cwrite-reply#%d[s%d]" rid slot

let rid_of = function
  | Query { rid }
  | Query_reply { rid; _ }
  | Update { rid; _ }
  | Update_reply { rid }
  | Reg_read { rid; _ }
  | Reg_read_reply { rid; _ }
  | Reg_write { rid; _ }
  | Reg_write_reply { rid }
  | Kquery { rid; _ }
  | Kquery_reply { rid; _ }
  | Kupdate { rid; _ }
  | Kupdate_reply { rid; _ }
  | Cquery { rid }
  | Cquery_reply { rid; _ }
  | Cwrite { rid; _ }
  | Cwrite_reply { rid; _ } ->
      rid

let is_reply = function
  | Query_reply _ | Update_reply _ | Reg_read_reply _ | Reg_write_reply _
  | Kquery_reply _ | Kupdate_reply _ | Cquery_reply _ | Cwrite_reply _ ->
      true
  | Query _ | Update _ | Reg_read _ | Reg_write _ | Kquery _ | Kupdate _
  | Cquery _ | Cwrite _ ->
      false

type store = {
  mutable maxreg : Value.t;
  mutable regs : Value.t array;
  kmax : (int, Value.t) Hashtbl.t;
  cslots : (int, Value.t) Hashtbl.t;
}

let store_create () =
  {
    maxreg = Value.v0;
    regs = [||];
    kmax = Hashtbl.create 64;
    cslots = Hashtbl.create 8;
  }

let alloc_reg st =
  let ix = Array.length st.regs in
  st.regs <- Array.append st.regs [| Value.v0 |];
  ix

let num_regs st = Array.length st.regs
let peek_reg st reg = st.regs.(reg)
let peek_max st = st.maxreg

let num_keys st = Hashtbl.length st.kmax

let peek_kmax st key =
  match Hashtbl.find_opt st.kmax key with Some v -> v | None -> Value.v0

let num_slots st = Hashtbl.length st.cslots

let peek_slot st slot =
  match Hashtbl.find_opt st.cslots slot with Some v -> v | None -> Value.v0

(* size of [v]'s canonical wire encoding (mirrors the live codec's
   [add_value]): 1 tag byte, plus 1 for bools, 8 for ints, 4+len for
   strings, both branches for pairs.  The resident-bytes metric is the
   sum of this over every resident cell — a backend-independent measure
   of what the server actually holds. *)
let rec value_bytes = function
  | Value.Unit -> 1
  | Value.Bool _ -> 2
  | Value.Int _ -> 9
  | Value.Str s -> 5 + String.length s
  | Value.Pair (l, r) -> 1 + value_bytes l + value_bytes r

(* the built-in max-register counts as resident once something was
   stored in it; plain cells count from allocation (that is Algorithm
   2's space commitment), keyed and per-writer cells from first touch *)
let resident_cells st =
  (if Value.equal st.maxreg Value.v0 then 0 else 1)
  + Array.length st.regs + Hashtbl.length st.kmax + Hashtbl.length st.cslots

let resident_bytes st =
  (if Value.equal st.maxreg Value.v0 then 0 else value_bytes st.maxreg)
  + Array.fold_left (fun a v -> a + value_bytes v) 0 st.regs
  + Hashtbl.fold (fun _ v a -> a + value_bytes v) st.kmax 0
  + Hashtbl.fold (fun _ v a -> a + value_bytes v) st.cslots 0

let reset st =
  st.maxreg <- Value.v0;
  Array.iteri (fun i _ -> st.regs.(i) <- Value.v0) st.regs;
  Hashtbl.reset st.kmax;
  Hashtbl.reset st.cslots

let step st = function
  | Query { rid } -> [ Query_reply { rid; stored = st.maxreg } ]
  | Update { rid; proposed } ->
      st.maxreg <- Value.max st.maxreg proposed;
      [ Update_reply { rid } ]
  | Reg_read { rid; reg } -> [ Reg_read_reply { rid; stored = st.regs.(reg) } ]
  | Reg_write { rid; reg; proposed } ->
      (* plain register: last delivered write wins, whenever it lands *)
      st.regs.(reg) <- proposed;
      [ Reg_write_reply { rid } ]
  | Kquery { rid; key } -> [ Kquery_reply { rid; key; stored = peek_kmax st key } ]
  | Kupdate { rid; key; proposed } ->
      (* per-key write-max: one ABD max-register per key, allocated on
         first touch so an idle keyspace costs no server memory *)
      Hashtbl.replace st.kmax key (Value.max (peek_kmax st key) proposed);
      [ Kupdate_reply { rid; key } ]
  | Cquery { rid } ->
      (* collect every resident per-writer slot; sorted so the reply is
         canonical whatever the hash order *)
      let slots =
        List.sort compare
          (Hashtbl.fold (fun s v acc -> (s, v) :: acc) st.cslots [])
      in
      [ Cquery_reply { rid; slots } ]
  | Cwrite { rid; slot; proposed } ->
      (* per-writer write-max: slot [slot] is one base register of the
         CDS layered max-register, allocated on first touch *)
      Hashtbl.replace st.cslots slot (Value.max (peek_slot st slot) proposed);
      [ Cwrite_reply { rid; slot } ]
  | Query_reply _ | Update_reply _ | Reg_read_reply _ | Reg_write_reply _
  | Kquery_reply _ | Kupdate_reply _ | Cquery_reply _ | Cwrite_reply _ ->
      []

open Regemu_bounds
open Regemu_objects

type cell = { server : Id.Server.t; reg : int }

(* per-writer covering-discipline slot over its register-cell set *)
type slot = {
  client : Id.Client.t;
  rset : cell array;
  mutable ts_val : Value.t;
  mutable acked : int list;  (* rset indexes acknowledged for ts_val *)
  outstanding : (int, Value.t) Hashtbl.t;  (* rset index -> value in flight *)
}

type t = {
  net : Net.t;
  params : Params.t;
  naive : bool;
  cells : cell list;  (* every cell of the construction *)
  by_server : cell list array;  (* index = server id *)
  slots : (int * slot) list;  (* writer client id -> slot *)
}

let cells t = List.length t.cells

let distribute net (p : Params.t) =
  (* the Section 3.3 layout: set i's register j on server (i+j) mod n *)
  let sizes = Formulas.set_sizes p in
  let by_server = Array.make p.n [] in
  let sets =
    List.mapi
      (fun i size ->
        Array.init size (fun j ->
            let server = Id.Server.of_int ((i + j) mod p.n) in
            let reg = Net.alloc_reg net server in
            let c = { server; reg } in
            by_server.(Id.Server.to_int server) <-
              by_server.(Id.Server.to_int server) @ [ c ];
            c))
      sizes
  in
  (sets, by_server)

let naive_cells net (p : Params.t) =
  let by_server = Array.make p.n [] in
  let cells =
    List.init ((2 * p.f) + 1) (fun i ->
        let server = Id.Server.of_int i in
        let reg = Net.alloc_reg net server in
        let c = { server; reg } in
        by_server.(i) <- [ c ];
        c)
  in
  (cells, by_server)

let create net (p : Params.t) ?(naive = false) ~writers () =
  if List.length writers <> p.k then
    invalid_arg "Alg2_net.create: writer count mismatch";
  if Net.num_servers net <> p.n then
    invalid_arg "Alg2_net.create: server count mismatch";
  if naive then begin
    let cells, by_server = naive_cells net p in
    let slots =
      List.map
        (fun c ->
          ( Id.Client.to_int c,
            {
              client = c;
              rset = Array.of_list cells;
              ts_val = Value.with_ts 0 Value.v0;
              acked = [];
              outstanding = Hashtbl.create 8;
            } ))
        writers
    in
    { net; params = p; naive; cells; by_server; slots }
  end
  else begin
    let sets, by_server = distribute net p in
    let z = Formulas.z p in
    let slots =
      List.mapi
        (fun i c ->
          ( Id.Client.to_int c,
            {
              client = c;
              rset = List.nth sets (i / z);
              ts_val = Value.with_ts 0 Value.v0;
              acked = [];
              outstanding = Hashtbl.create 8;
            } ))
        writers
    in
    {
      net;
      params = p;
      naive;
      cells = List.concat_map Array.to_list sets;
      by_server;
      slots;
    }
  end

let slot_of t c what =
  match List.assoc_opt (Id.Client.to_int c) t.slots with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Alg2_net.%s: not a registered writer" what)

(* send the slot's current value to rset index [i]; register the
   covering-discipline acknowledgement handler *)
let rec send_current t slot i =
  let cell = slot.rset.(i) in
  let v = slot.ts_val in
  Hashtbl.replace slot.outstanding i v;
  let rid = Net.fresh_rid t.net in
  Net.on_reply t.net ~client:slot.client ~rid (fun _ ->
      match Hashtbl.find_opt slot.outstanding i with
      | None -> ()  (* naive mode: a superseded acknowledgement *)
      | Some sent ->
          Hashtbl.remove slot.outstanding i;
          if Value.equal sent slot.ts_val then begin
            if not (List.mem i slot.acked) then slot.acked <- i :: slot.acked
          end
          else if not t.naive then
            (* a stale acknowledgement finally arrived: the cell now
               holds an old value; immediately re-send the current one *)
            send_current t slot i);
  Net.send t.net ~from:slot.client cell.server
    (Net.Reg_write { rid; reg = cell.reg; proposed = v })

let submit t slot v ~quorum =
  slot.ts_val <- v;
  slot.acked <- [];
  Array.iteri
    (fun i _ ->
      if t.naive || not (Hashtbl.mem slot.outstanding i) then
        send_current t slot i)
    slot.rset;
  Net.wait_until (fun () -> List.length slot.acked >= quorum)

(* read every cell of [n - f] servers, return the maximum *)
let collect t ~client =
  let scans = ref 0 in
  let best = ref Value.v0 in
  Array.iteri
    (fun _si cells ->
      match cells with
      | [] -> incr scans
      | cells ->
          let remaining = ref (List.length cells) in
          List.iter
            (fun cell ->
              let rid = Net.fresh_rid t.net in
              Net.on_reply t.net ~client ~rid (fun reply ->
                  (match reply with
                  | Net.Reg_read_reply { stored; _ } ->
                      best := Value.max !best stored
                  | _ -> ());
                  decr remaining;
                  if !remaining = 0 then incr scans);
              Net.send t.net ~from:client cell.server
                (Net.Reg_read { rid; reg = cell.reg }))
            cells)
    t.by_server;
  Net.wait_until (fun () -> !scans >= t.params.Params.n - t.params.Params.f);
  !best

let write t c v =
  let slot = slot_of t c "write" in
  Net.invoke t.net ~client:c (Regemu_sim.Trace.H_write v) (fun () ->
      let latest = collect t ~client:c in
      let quorum =
        if t.naive then t.params.Params.f + 1
        else Array.length slot.rset - t.params.Params.f
      in
      submit t slot (Value.with_ts (Value.ts latest + 1) v) ~quorum;
      Value.Unit)

let read t c =
  Net.invoke t.net ~client:c Regemu_sim.Trace.H_read (fun () ->
      Value.payload (collect t ~client:c))

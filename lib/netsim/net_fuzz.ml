open Regemu_bounds
open Regemu_history

type outcome = {
  runs : int;
  ws_safe_violations : int;
  ws_regular_violations : int;
  liveness_failures : int;
  first_bad_seed : int option;
}

let outcome_pp ppf o =
  Fmt.pf ppf
    "%d runs: %d WS-Safe violations, %d WS-Regular violations, %d liveness \
     failures%a"
    o.runs o.ws_safe_violations o.ws_regular_violations o.liveness_failures
    Fmt.(option (fun ppf s -> Fmt.pf ppf " (first bad seed %d)" s))
    o.first_bad_seed

let run ~protocol ~(p : Params.t) ~runs ~seed () =
  let safe_v = ref 0 and reg_v = ref 0 and live_f = ref 0 in
  let first_bad = ref None in
  for i = 0 to runs - 1 do
    let this_seed = seed + i in
    let bad b = if b && !first_bad = None then first_bad := Some this_seed in
    match
      Net_scenario.write_sequential ~protocol ~p ~rounds:2
        ~crashes:(this_seed mod (p.f + 1))
        ~duplication:(this_seed mod 3 = 0)
        ~seed:this_seed ()
    with
    | Error _ ->
        incr live_f;
        bad true
    | Ok r ->
        let s_bad = not (Ws_check.is_ws_safe r.history) in
        let r_bad = not (Ws_check.is_ws_regular r.history) in
        if s_bad then incr safe_v;
        if r_bad then incr reg_v;
        bad (s_bad || r_bad)
  done;
  {
    runs;
    ws_safe_violations = !safe_v;
    ws_regular_violations = !reg_v;
    liveness_failures = !live_f;
    first_bad_seed = !first_bad;
  }

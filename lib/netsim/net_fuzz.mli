(** Seeded random fuzzing for wire protocols — the network twin of
    {!Regemu_workload.Fuzz}: many independent runs of a
    {!Net_scenario}, with crash and duplication injection, tallied by
    checker verdict. *)

open Regemu_bounds

type outcome = {
  runs : int;
  ws_safe_violations : int;
  ws_regular_violations : int;
  liveness_failures : int;
  first_bad_seed : int option;
}

val outcome_pp : outcome Fmt.t

(** [run ~protocol ~p ~runs ~seed ()] executes [runs] sequential
    write+read scenarios seeded [seed, seed+1, ...]; each run crashes
    [seed mod (f+1)] servers and duplicates messages on seeds divisible
    by 3. *)
val run :
  protocol:Net_scenario.protocol ->
  p:Params.t ->
  runs:int ->
  seed:int ->
  unit ->
  outcome

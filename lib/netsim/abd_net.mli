(** Multi-writer ABD over message passing — the original protocol the
    paper's [2f+1] upper bounds descend from (its reference [5],
    multi-writer form per [22, 34, 29]).

    Runs on {!Net} with [2f+1] server processes, each holding one
    stored value with write-max update semantics.  A write queries a
    majority for the highest timestamp, then updates a majority with a
    fresh higher one; a read queries a majority and (in the
    {!val-atomic} variant) writes the value back to a majority before
    returning.

    Correctness obligations mirror the shared-memory emulations and are
    checked in the test suite with the same history checkers:
    WS-Regularity (and atomicity for the write-back variant), and
    wait-freedom while at most [f] servers crash — under arbitrary
    message reordering, since the network delivers in any order. *)

open Regemu_objects


type t

(** [create net ~f] uses servers [s0 .. s2f] of [net]; requires
    [Net.num_servers net >= 2f+1]. *)
val create : Net.t -> f:int -> ?write_back_reads:bool -> unit -> t

val write : t -> Id.Client.t -> Value.t -> Net.call
val read : t -> Id.Client.t -> Net.call

(** Messages sent per operation: 2 phases x (2f+1) requests (plus the
    replies as they arrive). *)
val replicas : t -> int

open Regemu_objects

type t = {
  net : Net.t;
  f : int;
  replicas : Id.Server.t list;
  write_back_reads : bool;
}

let create net ~f ?(write_back_reads = false) () =
  let needed = (2 * f) + 1 in
  if Net.num_servers net < needed then
    invalid_arg
      (Fmt.str "Abd_net.create: need at least %d servers, have %d" needed
         (Net.num_servers net));
  {
    net;
    f;
    replicas = List.init needed Id.Server.of_int;
    write_back_reads;
  }

let replicas t = List.length t.replicas

(* broadcast a request built from a fresh rid per server, await [quorum]
   replies, fold them *)
let quorum_round t ~client ~request ~fold ~init =
  let quorum = t.f + 1 in
  let count = ref 0 in
  let acc = ref init in
  List.iter
    (fun s ->
      let rid = Net.fresh_rid t.net in
      Net.on_reply t.net ~client ~rid (fun reply ->
          acc := fold !acc reply;
          incr count);
      Net.send t.net ~from:client s (request rid))
    t.replicas;
  Net.wait_until (fun () -> !count >= quorum);
  !acc

let query_max t ~client =
  quorum_round t ~client
    ~request:(fun rid -> Net.Query { rid })
    ~init:Value.v0
    ~fold:(fun best reply ->
      match reply with
      | Net.Query_reply { stored; _ } -> Value.max best stored
      | Net.Query _ | Net.Update _ | Net.Update_reply _ | Net.Reg_read _
      | Net.Reg_read_reply _ | Net.Reg_write _ | Net.Reg_write_reply _
      | Net.Kquery _ | Net.Kquery_reply _ | Net.Kupdate _ | Net.Kupdate_reply _
      | Net.Cquery _ | Net.Cquery_reply _ | Net.Cwrite _ | Net.Cwrite_reply _
        ->
          best)

let update t ~client ts_val =
  ignore
    (quorum_round t ~client
       ~request:(fun rid -> Net.Update { rid; proposed = ts_val })
       ~init:() ~fold:(fun () _ -> ()))

let write t client v =
  Net.invoke t.net ~client (Regemu_sim.Trace.H_write v) (fun () ->
      let latest = query_max t ~client in
      update t ~client (Value.with_ts (Value.ts latest + 1) v);
      Value.Unit)

let read t client =
  Net.invoke t.net ~client Regemu_sim.Trace.H_read (fun () ->
      let latest = query_max t ~client in
      if t.write_back_reads then update t ~client latest;
      Value.payload latest)

(** The Lemma 1 lower-bound construction on the message-passing
    substrate: the adversary is a router.

    In the shared-memory model the adversary withholds {e responses};
    on the wire it withholds {e request datagrams}.  An undelivered
    [Reg_write] request covers its cell: whenever the router finally
    delivers it, it overwrites the cell.  The blocking rule is
    Definition 2 verbatim with "pending write on register b" read as
    "undelivered [Reg_write] to cell b":

    - requests sent by clients that already completed a write are held
      forever (rule 1);
    - requests to cells on the sticky first-[f] newly covered servers
      outside [F] are held (rule 2, the [Q_i] set);

    everything else — reads, replies, steps — flows.  Driving
    {!Alg2_net} through [k] sequential writes under this router
    reproduces the covering staircase on the network: at least [i·f]
    cells hold undelivered requests after write [i], none on [F], so
    the space bound is forced by nothing more than slow datagrams. *)

open Regemu_bounds
open Regemu_objects

type epoch_stats = {
  epoch : int;
  write_returned : bool;
  covered_total : int;  (** cells with undelivered write requests *)
  covered_on_f : int;
  q_size : int;
}

val epoch_stats_pp : epoch_stats Fmt.t

type run = {
  params : Params.t;
  epochs : epoch_stats list;
  final_covered : int;
  cells : int;
}

(** [execute p ~seed ()] builds {!Alg2_net} on a fresh network and runs
    the construction.  [f_set] defaults to the last [f+1] servers. *)
val execute :
  Params.t ->
  ?f_set:Id.Server.Set.t ->
  ?budget_per_epoch:int ->
  seed:int ->
  unit ->
  (run, string) result

(** The server-side protocol core shared by the scripted network
    simulator ({!Net}) and the live threaded runtime ([Regemu_live]).

    A server — whether a simulated process stepped by a scripted
    environment or a real OS thread draining a mailbox — is a {!store}
    (one built-in max-register plus dynamically allocated plain
    register cells) together with the {!step} function mapping each
    delivered request to its effect on the store and the replies to
    send back.  Factoring this out guarantees the two runtimes execute
    exactly the same protocol: any divergence between a simulated and a
    live run is a property of the environment, never of the server
    code. *)

open Regemu_objects

(** Wire payloads.  [rid] is a client-chosen request id used to match
    replies to requests.

    [Query]/[Update] talk to the server's built-in {e max-register}
    (the ABD server); [Reg_read]/[Reg_write] talk to plain {e register
    cells} allocated with {!alloc_reg}.  A delayed [Reg_write] request
    is a covering write on the wire: it overwrites whatever the cell
    holds when it is finally delivered. *)
type payload =
  | Query of { rid : int }  (** read the server's stored value *)
  | Query_reply of { rid : int; stored : Value.t }
  | Update of { rid : int; proposed : Value.t }
      (** store [max(stored, proposed)] — the server-side write-max the
          paper observes inside ABD *)
  | Update_reply of { rid : int }
  | Reg_read of { rid : int; reg : int }
  | Reg_read_reply of { rid : int; stored : Value.t }
  | Reg_write of { rid : int; reg : int; proposed : Value.t }
      (** plain overwrite: last delivered wins *)
  | Reg_write_reply of { rid : int }
  | Kquery of { rid : int; key : int }
      (** read one key's max-register in the keyspace ([Regemu_keyspace]) *)
  | Kquery_reply of { rid : int; key : int; stored : Value.t }
  | Kupdate of { rid : int; key : int; proposed : Value.t }
      (** per-key write-max, the keyed twin of [Update] *)
  | Kupdate_reply of { rid : int; key : int }
  | Cquery of { rid : int }
      (** collect every resident per-writer slot — the read side of the
          CDS layered multi-writer register ([Regemu_live.Cds_live]) *)
  | Cquery_reply of { rid : int; slots : (int * Value.t) list }
      (** resident [(slot, value)] pairs, sorted by slot index so the
          reply is canonical *)
  | Cwrite of { rid : int; slot : int; proposed : Value.t }
      (** per-writer write-max: slot [slot] keeps
          [max(stored, proposed)], allocated on first touch *)
  | Cwrite_reply of { rid : int; slot : int }

val payload_pp : payload Fmt.t

(** The request id carried by any payload. *)
val rid_of : payload -> int

(** [true] for server-to-client payloads. *)
val is_reply : payload -> bool

(** One server's storage: the built-in max-register plus its plain
    register cells.  Not thread-safe by itself — in the live runtime
    each store is owned by exactly one server thread. *)
type store

val store_create : unit -> store

(** Allocate a fresh register cell, initially {!Value.v0}; returns its
    per-store index. *)
val alloc_reg : store -> int

val num_regs : store -> int
val peek_reg : store -> int -> Value.t

(** Current content of the built-in max-register. *)
val peek_max : store -> Value.t

(** Number of distinct keys this store has been asked to hold — the
    per-server space metric of the keyspace experiments (cells are
    allocated on first [Kupdate]/[Kquery] touch). *)
val num_keys : store -> int

(** Current content of one key's max-register; {!Value.v0} for a key
    never written here. *)
val peek_kmax : store -> int -> Value.t

(** Number of resident per-writer slots (the CDS space metric: slots
    are allocated on first [Cwrite] touch). *)
val num_slots : store -> int

(** Current content of one per-writer slot; {!Value.v0} for a slot
    never written here. *)
val peek_slot : store -> int -> Value.t

(** Size in bytes of a value's canonical wire encoding — the unit the
    resident-space metrics are reported in. *)
val value_bytes : Value.t -> int

(** Cells this store currently holds: the built-in max-register once
    non-initial, every allocated plain cell, and every touched keyed or
    per-writer cell.  The per-server space metric the benches sample. *)
val resident_cells : store -> int

(** Sum of {!value_bytes} over every resident cell. *)
val resident_bytes : store -> int

(** Wipe the store back to its initial state — every cell and the
    max-register to {!Value.v0}, allocation preserved.  A diskless
    restart ([Regemu_live.Recovery.Amnesia]); never called in the
    paper's persistent model. *)
val reset : store -> unit

(** Apply one delivered request to the store, returning the replies to
    send back.  Replies delivered to a server by mistake produce no
    output.  The update is idempotent for [Update] (write-max) and
    last-write-wins for [Reg_write], so at-least-once delivery is
    tolerated. *)
val step : store -> payload -> payload list

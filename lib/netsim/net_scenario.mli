(** Workload scenarios over the message-passing substrate — the
    counterpart of {!Regemu_workload.Scenario} for wire protocols
    ({!Abd_net}, {!Alg2_net}), with the network-level fault injections:
    server crashes, message reordering (always on — delivery order is
    the environment's choice), and message duplication. *)

open Regemu_bounds
open Regemu_objects
open Regemu_history

(** The protocol under test: how to build it on a fresh network and how
    to invoke its operations. *)
type protocol = {
  name : string;
  make :
    Net.t ->
    Params.t ->
    writers:Id.Client.t list ->
    (Id.Client.t -> Value.t -> Net.call) * (Id.Client.t -> Net.call);
      (** returns [(write, read)] *)
}

(** ABD over the built-in max-register servers. *)
val abd : write_back:bool -> protocol

(** Algorithm 2 over network-attached register cells. *)
val alg2 : protocol

type result = {
  net : Net.t;
  history : History.t;
  messages_delivered : int;
}

type error = { stage : string }

val error_pp : error Fmt.t

(** [write_sequential ~p ~rounds ~crashes ~duplication ~seed ()] runs
    [rounds * p.k] sequential writes with a read after each, over the
    given [protocol] (default: ABD without read write-back).
    [crashes <= p.f] servers crash at random times; with [duplication]
    an in-flight message is duplicated roughly every 20 events. *)
val write_sequential :
  ?protocol:protocol ->
  p:Params.t ->
  rounds:int ->
  crashes:int ->
  duplication:bool ->
  seed:int ->
  unit ->
  (result, error) Result.t

(** Sequential writes with [readers] clients reading concurrently. *)
val concurrent_reads :
  ?protocol:protocol ->
  p:Params.t ->
  rounds:int ->
  readers:int ->
  crashes:int ->
  duplication:bool ->
  seed:int ->
  unit ->
  (result, error) Result.t

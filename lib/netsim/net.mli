(** An asynchronous message-passing network of clients and server
    processes — the layer the paper's model abstracts away.

    In the fault-prone shared-memory model a client {e triggers} an
    operation and the environment decides when it {e responds}.  Over a
    real network each of those corresponds to two message deliveries
    (request to the server, reply to the client), each delayed
    arbitrarily and independently by the environment.  This module
    implements that finer-grained substrate so that the ABD protocol
    can be run as originally stated (message passing, [2f+1] server
    processes), and its runs checked with the same history checkers as
    the shared-memory emulations.

    The environment is again an explicit event choice: which in-flight
    message to deliver next, or which waiting client to step.  Message
    deliveries to a crashed server are lost; a server processes a
    request atomically and its replies enter the network.  Messages may
    be delivered in any order (no FIFO assumption), matching the
    asynchronous model. *)

open Regemu_objects

(** Wire payloads.  [rid] is a client-chosen request id used to match
    replies to requests.

    [Query]/[Update] talk to the server's built-in {e max-register}
    (the ABD server); [Reg_read]/[Reg_write] talk to plain {e register
    cells} allocated with {!alloc_reg} — network-attached disks with
    read/write-only interfaces, the setting of the paper's reference
    [2] and of its register lower bound.  A delayed [Reg_write]
    request is a covering write on the wire: it overwrites whatever
    the cell holds when it is finally delivered.

    The type (and the server behaviour) is shared with the live
    threaded runtime; see {!Proto}. *)
type payload = Proto.payload =
  | Query of { rid : int }  (** read the server's stored value *)
  | Query_reply of { rid : int; stored : Value.t }
  | Update of { rid : int; proposed : Value.t }
      (** store [max(stored, proposed)] — the server-side write-max the
          paper observes inside ABD *)
  | Update_reply of { rid : int }
  | Reg_read of { rid : int; reg : int }
  | Reg_read_reply of { rid : int; stored : Value.t }
  | Reg_write of { rid : int; reg : int; proposed : Value.t }
      (** plain overwrite: last delivered wins *)
  | Reg_write_reply of { rid : int }
  | Kquery of { rid : int; key : int }
      (** read one key's max-register (keyspace; see {!Proto}) *)
  | Kquery_reply of { rid : int; key : int; stored : Value.t }
  | Kupdate of { rid : int; key : int; proposed : Value.t }
      (** per-key write-max, the keyed twin of [Update] *)
  | Kupdate_reply of { rid : int; key : int }
  | Cquery of { rid : int }
      (** collect every resident CDS per-writer slot (see {!Proto}) *)
  | Cquery_reply of { rid : int; slots : (int * Value.t) list }
  | Cwrite of { rid : int; slot : int; proposed : Value.t }
      (** per-writer write-max into slot [slot] *)
  | Cwrite_reply of { rid : int; slot : int }

val payload_pp : payload Fmt.t

type dest = To_server of Id.Server.t | To_client of Id.Client.t

(** A network event: deliver an in-flight message, or step a client
    whose wait predicate holds. *)
type event = Deliver of int  (** message id *) | Step of Id.Client.t

val event_pp : event Fmt.t

type t

val create : n:int -> unit -> t
val num_servers : t -> int
val servers : t -> Id.Server.t list
val new_client : t -> Id.Client.t

(** Allocate a plain register cell on [server]; returns its index
    (per-server).  Cells start at {!Value.v0}. *)
val alloc_reg : t -> Id.Server.t -> int

(** Number of register cells allocated on a server. *)
val regs_on : t -> Id.Server.t -> int

(** Read a cell's current content — assertions/debugging only. *)
val peek_reg : t -> Id.Server.t -> int -> Value.t

(** {2 Failures} *)

val crash_server : t -> Id.Server.t -> unit
val server_crashed : t -> Id.Server.t -> bool

(** {2 Client-side API (fiber context)} *)

(** [send t ~from dest payload] puts a message in flight. *)
val send : t -> from:Id.Client.t -> Id.Server.t -> payload -> unit

(** [on_reply t ~client ~rid f] registers [f] to run when a reply with
    request id [rid] is delivered to [client]. *)
val on_reply : t -> client:Id.Client.t -> rid:int -> (payload -> unit) -> unit

(** Fresh request id, unique per network. *)
val fresh_rid : t -> int

(** Suspend the calling fiber until the predicate holds (same semantics
    as {!Regemu_sim.Sim.wait_until}). *)
val wait_until : (unit -> bool) -> unit

(** {2 High-level operations} *)

type call

val call_returned : call -> bool
val call_result : call -> Value.t option

val invoke :
  t -> client:Id.Client.t -> Regemu_sim.Trace.hop -> (unit -> Value.t) -> call

(** {2 The environment} *)

(** Deliverable messages and steppable clients, deterministic order.
    Messages addressed to crashed servers are not enabled (they are
    lost in transit). *)
val enabled : t -> event list

val fire : t -> event -> unit

(** In-flight message count (for tests). *)
val in_flight : t -> int

(** In-flight messages with ids, destinations, and payloads — for
    scripted (adversarial) delivery schedules. *)
val flight : t -> (int * dest * payload) list

(** Sender of an in-flight request ([None] for server replies or
    unknown ids) — the adversary's rule 1 needs it. *)
val src_of : t -> int -> Id.Client.t option

(** [duplicate t mid] clones an in-flight message (at-least-once
    delivery).  The protocol layer must tolerate this: reply handlers
    are one-shot, and the server-side update is idempotent (write-max).
    Raises if [mid] is not in flight. *)
val duplicate : t -> int -> unit

(** {2 History} *)

(** The high-level operations of the run so far (complete and pending),
    ready for the {!Regemu_history} checkers. *)
val history : t -> Regemu_history.History.t

(** Total messages delivered (a time-complexity measure). *)
val delivered : t -> int

(** Total messages ever put in flight (sends, replies, duplicates).
    Invariant: [sent = delivered + in_flight]. *)
val sent : t -> int

open Regemu_bounds
open Regemu_objects
open Regemu_sim

type epoch_stats = {
  epoch : int;
  write_returned : bool;
  covered_total : int;
  covered_on_f : int;
  q_size : int;
}

let epoch_stats_pp ppf s =
  Fmt.pf ppf "epoch %d: returned=%b covered=%d on-F=%d |Qi|=%d" s.epoch
    s.write_returned s.covered_total s.covered_on_f s.q_size

type run = {
  params : Params.t;
  epochs : epoch_stats list;
  final_covered : int;
  cells : int;
}

module Cell = struct
  type t = int * int  (* server, reg *)

  let compare = Stdlib.compare
end

module Cell_set = Set.Make (Cell)

(* cells with an undelivered Reg_write request *)
let covered_cells net =
  List.fold_left
    (fun acc (_, dest, payload) ->
      match (dest, payload) with
      | Net.To_server s, Net.Reg_write { reg; _ } ->
          Cell_set.add (Id.Server.to_int s, reg) acc
      | _ -> acc)
    Cell_set.empty (Net.flight net)

let servers_of cells =
  Cell_set.fold
    (fun (s, _) acc -> Id.Server.Set.add (Id.Server.of_int s) acc)
    cells Id.Server.Set.empty

let default_f_set (p : Params.t) =
  Id.Server.set_of_list
    (List.init (p.f + 1) (fun i -> Id.Server.of_int (p.n - 1 - i)))

let execute (p : Params.t) ?f_set ?(budget_per_epoch = 400_000) ~seed () =
  let f_set = Option.value f_set ~default:(default_f_set p) in
  if Id.Server.Set.cardinal f_set <> p.f + 1 then
    invalid_arg "Net_lowerbound.execute: |F| must be f+1";
  let net = Net.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Net.new_client net) in
  let t = Alg2_net.create net p ~writers () in
  let rng = Rng.create seed in
  let completed = ref Id.Client.Set.empty in
  let run_epoch i writer =
    let cov_start = covered_cells net in
    let qi = ref Id.Server.Set.empty in
    (* F_i on the wire: servers of F whose cell received an in-epoch
       write request (the delivery is the respond/linearization) *)
    let fi = ref Id.Server.Set.empty in
    let update_sets () =
      let covi = Cell_set.diff (covered_cells net) cov_start in
      let d = Id.Server.Set.diff (servers_of covi) f_set in
      if Id.Server.Set.cardinal d <= p.f then qi := d
    in
    let note_delivery mid =
      (* called just before a Deliver fires: record F_i growth *)
      match List.find_opt (fun (m, _, _) -> m = mid) (Net.flight net) with
      | Some (_, Net.To_server s, Net.Reg_write _)
        when Id.Server.Set.mem s f_set ->
          fi := Id.Server.Set.add s !fi
      | _ -> ()
    in
    let mi () =
      let covi = Cell_set.diff (covered_cells net) cov_start in
      Id.Server.Set.inter (servers_of covi)
        (Id.Server.Set.diff f_set !fi)
    in
    let gi () =
      if Id.Server.Set.cardinal !qi < Id.Server.Set.cardinal !fi then mi ()
      else Id.Server.Set.empty
    in
    (* Definition 2 on the wire: hold write requests of completed
       clients (rule 1), and write requests to cells on Q_i ∪ G_i
       servers (rule 2) *)
    let blocked ev =
      match ev with
      | Net.Step _ -> false
      | Net.Deliver mid -> (
          match
            List.find_opt (fun (m, _, _) -> m = mid) (Net.flight net)
          with
          | Some (_, Net.To_server s, Net.Reg_write _) ->
              (match Net.src_of net mid with
              | Some c when Id.Client.Set.mem c !completed -> true
              | _ -> false)
              || Id.Server.Set.mem s (Id.Server.Set.union !qi (gi ()))
          | _ -> false)
    in
    let step () =
      update_sets ();
      match List.filter (fun ev -> not (blocked ev)) (Net.enabled net) with
      | [] -> false
      | evs ->
          let ev = Rng.pick rng evs in
          (match ev with Net.Deliver mid -> note_delivery mid | _ -> ());
          Net.fire net ev;
          true
    in
    let call = Alg2_net.write t writer (Value.Str (Fmt.str "v%d" i)) in
    let rec drive budget =
      if Net.call_returned call then Ok budget
      else if budget = 0 then
        Error (Fmt.str "epoch %d: write exhausted its budget" i)
      else if step () then drive (budget - 1)
      else Error (Fmt.str "epoch %d: write is stuck under the router" i)
    in
    match drive budget_per_epoch with
    | Error _ as e -> e
    | Ok budget_left ->
        update_sets ();
        let q_size = Id.Server.Set.cardinal !qi in
        (* drain the allowed traffic so nothing newly covered stays on F *)
        let rec drain budget =
          update_sets ();
          let allowed =
            List.filter
              (fun ev ->
                (match ev with Net.Deliver _ -> true | Net.Step _ -> false)
                && not (blocked ev))
              (Net.enabled net)
          in
          if allowed = [] then Ok ()
          else if budget = 0 then
            Error (Fmt.str "epoch %d: drain exhausted its budget" i)
          else begin
            let ev = Rng.pick rng allowed in
            (match ev with Net.Deliver mid -> note_delivery mid | _ -> ());
            Net.fire net ev;
            drain (budget - 1)
          end
        in
        (match drain budget_left with
        | Error _ as e -> e
        | Ok () ->
            completed := Id.Client.Set.add writer !completed;
            let covered = covered_cells net in
            let on_f =
              Cell_set.cardinal
                (Cell_set.filter
                   (fun (s, _) ->
                     Id.Server.Set.mem (Id.Server.of_int s) f_set)
                   covered)
            in
            Ok
              {
                epoch = i;
                write_returned = true;
                covered_total = Cell_set.cardinal covered;
                covered_on_f = on_f;
                q_size;
              })
  in
  let rec epochs i acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
        match run_epoch i w with
        | Error _ as e -> e
        | Ok stats -> epochs (i + 1) (stats :: acc) rest)
  in
  match epochs 1 [] writers with
  | Error _ as e -> e
  | Ok eps ->
      Ok
        {
          params = p;
          epochs = eps;
          final_covered = Cell_set.cardinal (covered_cells net);
          cells = Alg2_net.cells t;
        }

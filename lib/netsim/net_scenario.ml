open Regemu_bounds
open Regemu_objects
open Regemu_history
open Regemu_sim

type protocol = {
  name : string;
  make :
    Net.t ->
    Params.t ->
    writers:Id.Client.t list ->
    (Id.Client.t -> Value.t -> Net.call) * (Id.Client.t -> Net.call);
}

let abd ~write_back =
  {
    name = (if write_back then "abd-net-atomic" else "abd-net");
    make =
      (fun net (p : Params.t) ~writers:_ ->
        let t = Abd_net.create net ~f:p.f ~write_back_reads:write_back () in
        (Abd_net.write t, Abd_net.read t));
  }

let alg2 =
  {
    name = "alg2-net";
    make =
      (fun net p ~writers ->
        let t = Alg2_net.create net p ~writers () in
        (Alg2_net.write t, Alg2_net.read t));
  }

type result = { net : Net.t; history : History.t; messages_delivered : int }
type error = { stage : string }

let error_pp ppf e = Fmt.pf ppf "net scenario stalled at %s" e.stage

let value_for ~slot ~round = Value.Str (Fmt.str "w%d.r%d" slot round)

type driver = {
  net : Net.t;
  rng : Rng.t;
  crashes : int;
  duplication : bool;
  mutable crashed : int;
}

let inject d =
  (* crash a random correct server occasionally, within the budget *)
  if d.crashed < d.crashes && Rng.int d.rng ~bound:40 = 0 then begin
    let candidates =
      List.filter
        (fun s -> not (Net.server_crashed d.net s))
        (Net.servers d.net)
    in
    if candidates <> [] then begin
      Net.crash_server d.net (Rng.pick d.rng candidates);
      d.crashed <- d.crashed + 1
    end
  end;
  if d.duplication && Net.in_flight d.net > 0 && Rng.int d.rng ~bound:20 = 0
  then
    match Net.enabled d.net with
    | Net.Deliver m :: _ -> Net.duplicate d.net m
    | _ -> ()

let step d =
  inject d;
  match Net.enabled d.net with
  | [] -> false
  | evs ->
      Net.fire d.net (Rng.pick d.rng evs);
      true

let drive d ~stage ~goal =
  let rec go budget =
    if goal () then Ok ()
    else if budget = 0 then Error { stage }
    else if step d then go (budget - 1)
    else if goal () then Ok ()
    else Error { stage }
  in
  go 100_000

let ( let* ) = Result.bind

let finish d ~stage call =
  drive d ~stage ~goal:(fun () -> Net.call_returned call)

let mk_result net =
  {
    net;
    history = Net.history net;
    messages_delivered = Net.delivered net;
  }

let setup ~(p : Params.t) ~protocol ~seed ~crashes ~duplication =
  let net = Net.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Net.new_client net) in
  let write, read = protocol.make net p ~writers in
  let rng = Rng.create seed in
  let d = { net; rng; crashes; duplication; crashed = 0 } in
  (net, write, read, writers, d)

let write_sequential ?(protocol = abd ~write_back:false) ~p ~rounds ~crashes
    ~duplication ~seed () =
  if crashes > p.Params.f then
    invalid_arg "Net_scenario.write_sequential: crashes > f";
  let net, write, read, writers, d =
    setup ~p ~protocol ~seed ~crashes ~duplication
  in
  let reader = Net.new_client net in
  let rec rounds_loop round =
    if round > rounds then Ok (mk_result net)
    else
      let rec writers_loop slot = function
        | [] -> rounds_loop (round + 1)
        | w :: rest ->
            let* () =
              finish d
                ~stage:(Fmt.str "write slot=%d round=%d" slot round)
                (write w (value_for ~slot ~round))
            in
            let* () =
              finish d
                ~stage:(Fmt.str "read after slot=%d round=%d" slot round)
                (read reader)
            in
            writers_loop (slot + 1) rest
      in
      writers_loop 0 writers
  in
  rounds_loop 1

let concurrent_reads ?(protocol = abd ~write_back:false) ~p ~rounds ~readers
    ~crashes ~duplication ~seed () =
  if crashes > p.Params.f then
    invalid_arg "Net_scenario.concurrent_reads: crashes > f";
  let net, write, read, writers, d =
    setup ~p ~protocol ~seed ~crashes ~duplication
  in
  let reader_clients = List.init readers (fun _ -> Net.new_client net) in
  let reads = ref [] in
  let maybe_read () =
    if Rng.int d.rng ~bound:10 = 0 then
      match
        List.filter
          (fun c ->
            not
              (List.exists
                 (fun (c', call) ->
                   Id.Client.equal c c' && not (Net.call_returned call))
                 !reads))
          reader_clients
      with
      | [] -> ()
      | idle ->
          let c = Rng.pick d.rng idle in
          reads := (c, read c) :: !reads
  in
  let drive_write ~stage call =
    let rec go budget =
      if Net.call_returned call then Ok ()
      else if budget = 0 then Error { stage }
      else begin
        maybe_read ();
        if step d then go (budget - 1) else Error { stage }
      end
    in
    go 100_000
  in
  let rec rounds_loop round =
    if round > rounds then Ok ()
    else
      let rec writers_loop slot = function
        | [] -> rounds_loop (round + 1)
        | w :: rest ->
            let* () =
              drive_write
                ~stage:(Fmt.str "write slot=%d round=%d" slot round)
                (write w (value_for ~slot ~round))
            in
            writers_loop (slot + 1) rest
      in
      writers_loop 0 writers
  in
  let* () = rounds_loop 1 in
  let* () =
    drive d ~stage:"drain reads" ~goal:(fun () ->
        List.for_all (fun (_, call) -> Net.call_returned call) !reads)
  in
  Ok (mk_result net)

(** Algorithm 2 over the wire: the paper's register-based construction
    run against network-attached register cells.

    Servers expose only read/write cells ({!Net.alloc_reg} /
    [Reg_read] / [Reg_write]); a delayed [Reg_write] {e request} is a
    covering write travelling the network — whenever it is finally
    delivered it overwrites the cell, exactly the erasure the paper's
    lower bound exploits.  The construction is therefore the same as
    the shared-memory Algorithm 2: the Section 3.3 layout sized by
    [kf + ceil(k/z)(f+1)], per-writer covering discipline (never two of
    a writer's requests outstanding on one cell; re-send the current
    value when a stale acknowledgement finally arrives), quorum
    [|R_j| - f] per write, and collects over all cells of [n - f]
    servers.

    An optional [naive] mode drops the covering discipline and uses one
    cell per server ([2f+1] total) — the wire-level strawman that the
    deterministic schedule in the test suite breaks, showing the
    Figure 2 phenomenon needs nothing more exotic than a slow
    datagram. *)

open Regemu_bounds
open Regemu_objects

type t

(** [create net p ~writers] allocates the layout's cells on [net]'s
    servers.  [~naive:true] builds the 2f+1-cell strawman instead. *)
val create : Net.t -> Params.t -> ?naive:bool -> writers:Id.Client.t list -> unit -> t

(** Total register cells allocated. *)
val cells : t -> int

val write : t -> Id.Client.t -> Value.t -> Net.call
val read : t -> Id.Client.t -> Net.call

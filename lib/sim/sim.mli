(** The asynchronous fault-prone shared-memory simulator.

    This is the executable counterpart of the paper's formal model
    (Appendix A): base objects are mapped to servers via an explicit
    [delta]; clients run emulation code as cooperative fibers; the
    environment — a {!Policy.t} chosen by the caller — decides at every
    step which enabled action fires.  Two kinds of actions exist:

    - [Step c]: resume client [c], currently blocked on a
      [wait_until] predicate that now holds;
    - [Respond lid]: make the pending low-level operation [lid] take
      effect on its base object {e and} respond, atomically.  This
      realizes the paper's Assumption 1 (writes linearize at their
      respond step), which is exactly what lets the adversary keep a
      register covered for arbitrarily long.

    Crashes are injected explicitly with {!crash_server} /
    {!crash_client}.  A server crash instantly crashes all objects
    mapped to it; their pending operations never respond.  Pending
    operations of a {e crashed client} may still respond (the
    environment may apply them), but the client's handler is skipped. *)

open Regemu_objects

type t

(** [create ~n ()] is a fresh system with [n] servers and no objects or
    clients. *)
val create : n:int -> unit -> t

val num_servers : t -> int
val servers : t -> Id.Server.t list

(** {2 Base objects} *)

(** [alloc t ~server kind] creates a base object of [kind] on [server],
    initialized to {!Value.v0}. *)
val alloc : t -> server:Id.Server.t -> Base_object.kind -> Id.Obj.t

val objects : t -> Id.Obj.t list
val objects_on : t -> Id.Server.t -> Id.Obj.t list

(** [delta t b] is the server storing [b]. *)
val delta : t -> Id.Obj.t -> Id.Server.t

val kind_of : t -> Id.Obj.t -> Base_object.kind

(** Current state of the object — for assertions and debugging only;
    emulation code must go through low-level operations. *)
val peek : t -> Id.Obj.t -> Value.t

(** Objects on which at least one low-level operation has been
    triggered: the resource consumption of the run (Section 2). *)
val used_objects : t -> Id.Obj.Set.t

(** {2 Clients} *)

val new_client : t -> Id.Client.t
val clients : t -> Id.Client.t list

(** {2 Crashes} *)

val crash_server : t -> Id.Server.t -> unit
val crash_client : t -> Id.Client.t -> unit
val server_crashed : t -> Id.Server.t -> bool
val client_crashed : t -> Id.Client.t -> bool
val crashed_servers : t -> Id.Server.Set.t

(** {2 Low-level operations} *)

(** [trigger t ~client b op ~on_response] triggers [op] on [b] and
    returns immediately (clients never wait for a response implicitly).
    When the environment fires the matching [Respond], [op] is applied
    to [b]'s state and [on_response] runs with the result — unless the
    client has crashed.  [on_response] may itself call [trigger]
    (Algorithm 2's [upon ... respond] handlers do), but must not call
    {!wait_until}.  Raises if [op] does not match [b]'s kind. *)
val trigger :
  t ->
  client:Id.Client.t ->
  Id.Obj.t ->
  Base_object.op ->
  on_response:(Value.t -> unit) ->
  Id.Lop.t

(** [wait_until pred] suspends the calling fiber until [pred ()] holds
    {e and} the environment schedules the client.  Callable only from
    inside a fiber started by {!invoke}. *)
val wait_until : (unit -> bool) -> unit

(** {2 High-level operations} *)

type call

val call_client : call -> Id.Client.t
val call_hop : call -> Trace.hop

(** [None] while the operation is pending; [Some v] once returned. *)
val call_result : call -> Value.t option

val call_returned : call -> bool

(** Time (trace length) at invocation, and at return (once returned). *)
val call_invoked_at : call -> int

val call_returned_at : call -> int option

(** [invoke t ~client hop body] records the invocation and starts [body]
    as a fiber for [client]; the fiber runs until it first blocks or
    returns.  [body]'s return value is the high-level response.
    Raises if the client is crashed or already has an operation
    in progress (runs must be well-formed). *)
val invoke : t -> client:Id.Client.t -> Trace.hop -> (unit -> Value.t) -> call

val client_busy : t -> Id.Client.t -> bool

(** {2 Events} *)

type event = Step of Id.Client.t | Respond of Id.Lop.t

val event_pp : event Fmt.t
val event_equal : event -> event -> bool

(** All actions the environment may fire now, in a deterministic order:
    client steps (ascending client id) whose predicate currently holds,
    then responses (ascending trigger order) on non-crashed objects. *)
val enabled : t -> event list

(** Fire one event.  Raises [Invalid_argument] if the event is not
    currently enabled. *)
val fire : t -> event -> unit

(** {2 Introspection} *)

type pending_info = {
  lid : Id.Lop.t;
  obj : Id.Obj.t;
  op : Base_object.op;
  client : Id.Client.t;
  triggered_at : int;
}

(** All pending (triggered, not yet responded) low-level operations,
    in trigger order — including those on crashed servers. *)
val pending : t -> pending_info list

val pending_on : t -> Id.Obj.t -> pending_info list

(** Objects covered by a pending mutator (the paper's [Cov(t)] when
    restricted to register writes; includes pending write-max / CAS for
    the other object kinds). *)
val covered_objects : t -> Id.Obj.Set.t

val trace : t -> Trace.t

(** Current time = number of actions recorded so far. *)
val now : t -> int

(** Schedule policies: the environment of the formal model.

    A policy picks, at every step of a run, which enabled event fires.
    The lower-bound adversary [Ad_i] is built as a {!filtered} policy in
    [Regemu_adversary]; the fair policies here drive liveness and
    safety tests. *)

type t = {
  name : string;
  choose : Sim.t -> Sim.event list -> Sim.event option;
      (** [choose sim enabled] picks one of [enabled] (never an event
          outside it), or [None] to stop the run.  [enabled] is never
          the empty list. *)
}

(** Uniformly random among enabled events.  Fair with probability 1:
    every continuously-enabled event is eventually chosen. *)
val uniform : Rng.t -> t

(** Deterministic: fire the oldest pending response first; if none,
    step the lowest-id runnable client.  Responses drain before fibers
    advance, which makes runs maximally synchronous. *)
val responds_first : t

(** Deterministic: step clients before letting responses fire, which
    maximizes the number of outstanding low-level operations. *)
val steps_first : t

(** Random, but responses fire with probability [respond_bias] when both
    kinds are enabled.  Low bias stresses algorithms with many
    outstanding operations. *)
val biased : Rng.t -> respond_bias:float -> t

(** Deterministic {e and} fair: always fire the event that has been
    continuously enabled the longest (FIFO by first-enabled time).
    Stateful — create one per run. *)
val round_robin : unit -> t

(** The procrastinator: each pending response is, with probability
    [hold_percent]/100, {e held} for [hold_steps] scheduler steps before
    it becomes eligible again — a randomized version of the covering
    adversary's trick of releasing old writes late.  Still fair (holds
    expire), so wait-free algorithms terminate; algorithms that reuse
    covered registers can be caught red-handed (the fuzzer finds the
    Figure 2 violation with this policy, without any scripting).
    Stateful — create one per run. *)
val procrastinating : Rng.t -> hold_percent:int -> hold_steps:int -> t

(** [filtered ~name ~keep base] restricts [base] to events satisfying
    [keep].  If no enabled event survives the filter, chooses [None]
    (the run is stuck by adversarial blocking). *)
val filtered : name:string -> keep:(Sim.t -> Sim.event -> bool) -> t -> t

(** Run drivers: loops that repeatedly ask a policy for the next event
    and fire it, under an explicit step budget.

    Budgets turn liveness claims into testable properties: a wait-free
    operation must return within the budget under any fair policy; a
    run that exhausts a generous budget is reported as such rather than
    looping forever. *)

type outcome =
  | Satisfied  (** the goal predicate became true *)
  | Stuck
      (** no event was enabled, or the policy declined to choose one
          (e.g. the adversary blocked everything remaining) *)
  | Budget_exhausted

val outcome_pp : outcome Fmt.t
val outcome_equal : outcome -> outcome -> bool

(** [run_until sim policy ~budget goal] fires events until [goal ()]
    holds (checked before each step), no progress is possible, or
    [budget] events have fired. *)
val run_until :
  Sim.t -> Policy.t -> budget:int -> (unit -> bool) -> outcome

(** [finish_call sim policy ~budget call] drives until [call] returns.
    [Ok v] on success, [Error outcome] otherwise. *)
val finish_call :
  Sim.t -> Policy.t -> budget:int -> Sim.call -> (Regemu_objects.Value.t, outcome) result

(** [finish_call_exn] raises [Failure] with diagnostics on failure. *)
val finish_call_exn :
  Sim.t -> Policy.t -> budget:int -> Sim.call -> Regemu_objects.Value.t

(** Drive until no event is enabled (all responses delivered, all
    runnable fibers stepped). *)
val quiesce : Sim.t -> Policy.t -> budget:int -> outcome

(** Fire exactly one policy-chosen event; [false] if none possible. *)
val step : Sim.t -> Policy.t -> bool

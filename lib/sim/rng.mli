(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized schedule policy and workload generator takes an
    explicit [Rng.t], so a run is fully reproducible from its seed.
    We deliberately avoid [Stdlib.Random] to keep the stream stable
    across OCaml versions. *)

type t

val create : int -> t

(** Independent generator split off [t] (advances [t]). *)
val split : t -> t

(** [int t ~bound] is uniform in [0, bound); requires [bound > 0]. *)
val int : t -> bound:int -> int

val bool : t -> bool

(** [pick t xs] is a uniformly chosen element; requires [xs] non-empty. *)
val pick : t -> 'a list -> 'a

(** In-place Fisher–Yates shuffle of a fresh copy of the list. *)
val shuffle : t -> 'a list -> 'a list

type t = {
  name : string;
  choose : Sim.t -> Sim.event list -> Sim.event option;
}

let first = function [] -> None | e :: _ -> Some e

let uniform rng =
  {
    name = "uniform";
    choose =
      (fun _sim enabled ->
        match enabled with [] -> None | es -> Some (Rng.pick rng es));
  }

let is_respond = function Sim.Respond _ -> true | Sim.Step _ -> false

let responds_first =
  {
    name = "responds-first";
    choose =
      (fun _sim enabled ->
        match List.filter is_respond enabled with
        | r :: _ -> Some r
        | [] -> first enabled);
  }

let steps_first =
  {
    name = "steps-first";
    choose =
      (fun _sim enabled ->
        match List.filter (fun e -> not (is_respond e)) enabled with
        | s :: _ -> Some s
        | [] -> first enabled);
  }

let biased rng ~respond_bias =
  {
    name = Fmt.str "biased(%.2f)" respond_bias;
    choose =
      (fun _sim enabled ->
        let responds, steps = List.partition is_respond enabled in
        let roll =
          float_of_int (Rng.int rng ~bound:1_000_000) /. 1_000_000.
        in
        match (responds, steps) with
        | [], [] -> None
        | [], ss -> Some (Rng.pick rng ss)
        | rs, [] -> Some (Rng.pick rng rs)
        | rs, ss ->
            if roll < respond_bias then Some (Rng.pick rng rs)
            else Some (Rng.pick rng ss));
  }

let event_key = function
  | Sim.Step c -> (0, Regemu_objects.Id.Client.to_int c)
  | Sim.Respond l -> (1, Regemu_objects.Id.Lop.to_int l)

(* Deterministic and fair: serve the event that has been continuously
   enabled the longest (FIFO by first-enabled time). *)
let round_robin () =
  let ages : ((int * int), int) Hashtbl.t = Hashtbl.create 64 in
  let clock = ref 0 in
  {
    name = "round-robin";
    choose =
      (fun _sim enabled ->
        match enabled with
        | [] -> None
        | evs ->
            let keyed =
              List.map
                (fun ev ->
                  let key = event_key ev in
                  let age =
                    match Hashtbl.find_opt ages key with
                    | Some a -> a
                    | None ->
                        incr clock;
                        Hashtbl.replace ages key !clock;
                        !clock
                  in
                  (age, key, ev))
                evs
            in
            (* drop ages of events no longer enabled so the table stays
               bounded by the live event set *)
            let live = List.map (fun (_, k, _) -> k) keyed in
            Hashtbl.iter
              (fun k _ -> if not (List.mem k live) then Hashtbl.remove ages k)
              (Hashtbl.copy ages);
            let _, key, ev =
              List.fold_left
                (fun ((ba, _, _) as best) ((a, _, _) as cur) ->
                  if a < ba then cur else best)
                (List.hd keyed) (List.tl keyed)
            in
            Hashtbl.remove ages key;
            Some ev);
  }

let procrastinating rng ~hold_percent ~hold_steps =
  let held : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let clock = ref 0 in
  {
    name = Fmt.str "procrastinating(%d%%,%d)" hold_percent hold_steps;
    choose =
      (fun _sim enabled ->
        incr clock;
        (* decide the fate of responses seen for the first time *)
        List.iter
          (fun ev ->
            match ev with
            | Sim.Respond l ->
                let key = Regemu_objects.Id.Lop.to_int l in
                if not (Hashtbl.mem held key) then
                  Hashtbl.replace held key
                    (if Rng.int rng ~bound:100 < hold_percent then
                       !clock + hold_steps
                     else !clock)
            | Sim.Step _ -> ())
          enabled;
        let eligible =
          List.filter
            (fun ev ->
              match ev with
              | Sim.Step _ -> true
              | Sim.Respond l -> (
                  match
                    Hashtbl.find_opt held (Regemu_objects.Id.Lop.to_int l)
                  with
                  | Some release -> release <= !clock
                  | None -> true))
            enabled
        in
        match (eligible, enabled) with
        | [], [] -> None
        | [], all ->
            (* everything is held: release one anyway so the run cannot
               starve (holds are delays, not refusals) *)
            Some (Rng.pick rng all)
        | es, _ -> Some (Rng.pick rng es));
  }

let filtered ~name ~keep base =
  {
    name;
    choose =
      (fun sim enabled ->
        match List.filter (keep sim) enabled with
        | [] -> None
        | kept -> base.choose sim kept);
  }

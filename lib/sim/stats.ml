open Regemu_objects

type t = {
  triggers : int;
  responds : int;
  invocations : int;
  returns : int;
  server_crashes : int;
  client_crashes : int;
  triggers_per_object : int Id.Obj.Map.t;
  triggers_per_client : int Id.Client.Map.t;
  max_outstanding : int;
  point_contention : int;
}

let bump key m = Id.Obj.Map.update key (fun v -> Some (Option.value ~default:0 v + 1)) m

let bump_client key m =
  Id.Client.Map.update key (fun v -> Some (Option.value ~default:0 v + 1)) m

let of_trace tr =
  let triggers = ref 0
  and responds = ref 0
  and invocations = ref 0
  and returns = ref 0
  and server_crashes = ref 0
  and client_crashes = ref 0 in
  let per_object = ref Id.Obj.Map.empty in
  let per_client = ref Id.Client.Map.empty in
  let outstanding = ref 0
  and max_outstanding = ref 0 in
  let open_hops = ref 0
  and point_contention = ref 0 in
  Trace.iter
    (fun e ->
      match e with
      | Trace.Trigger { obj; client; _ } ->
          incr triggers;
          per_object := bump obj !per_object;
          per_client := bump_client client !per_client;
          incr outstanding;
          if !outstanding > !max_outstanding then
            max_outstanding := !outstanding
      | Trace.Respond _ ->
          incr responds;
          decr outstanding
      | Trace.Invoke _ ->
          incr invocations;
          incr open_hops;
          if !open_hops > !point_contention then
            point_contention := !open_hops
      | Trace.Return _ ->
          incr returns;
          decr open_hops
      | Trace.Server_crash _ -> incr server_crashes
      | Trace.Client_crash _ -> incr client_crashes)
    tr;
  {
    triggers = !triggers;
    responds = !responds;
    invocations = !invocations;
    returns = !returns;
    server_crashes = !server_crashes;
    client_crashes = !client_crashes;
    triggers_per_object = !per_object;
    triggers_per_client = !per_client;
    max_outstanding = !max_outstanding;
    point_contention = !point_contention;
  }

let pp ppf s =
  Fmt.pf ppf
    "triggers=%d responds=%d invocations=%d returns=%d crashes=%d/%d \
     max-outstanding=%d point-contention=%d"
    s.triggers s.responds s.invocations s.returns s.server_crashes
    s.client_crashes s.max_outstanding s.point_contention

let percentile_levels = [ 0.50; 0.95; 0.99 ]

let percentiles samples =
  let arr = Array.of_list (List.sort Int.compare samples) in
  let n = Array.length arr in
  List.map
    (fun p ->
      if n = 0 then (p, 0)
      else
        (* nearest-rank: the ceil(p*n)-th smallest sample *)
        let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
        (p, arr.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))))
    percentile_levels

let latencies tr =
  let open_at = Hashtbl.create 8 in
  let out = ref [] in
  let time = ref 0 in
  Trace.iter
    (fun e ->
      incr time;
      match e with
      | Trace.Invoke (c, _) -> Hashtbl.replace open_at (Id.Client.to_int c) !time
      | Trace.Return (c, _, _) -> (
          match Hashtbl.find_opt open_at (Id.Client.to_int c) with
          | Some t0 ->
              Hashtbl.remove open_at (Id.Client.to_int c);
              out := (t0, !time - t0) :: !out
          | None -> ())
      | Trace.Trigger _ | Trace.Respond _ | Trace.Server_crash _
      | Trace.Client_crash _ ->
          ())
    tr;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !out |> List.map snd

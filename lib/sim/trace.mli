(** Run traces.

    A run of the simulator is a sequence of actions (the paper's runs
    alternate configurations and actions; configurations are implicit in
    the simulator state).  The {e time} [t] of the paper is the number
    of recorded actions, so the entry at index [i] happens at time
    [i + 1]. *)

open Regemu_objects

(** A high-level (emulated-register) operation. *)
type hop = H_write of Value.t | H_read

val hop_pp : hop Fmt.t
val hop_is_write : hop -> bool

type entry =
  | Invoke of Id.Client.t * hop
  | Return of Id.Client.t * hop * Value.t
  | Trigger of {
      lid : Id.Lop.t;
      client : Id.Client.t;
      obj : Id.Obj.t;
      op : Base_object.op;
    }
  | Respond of {
      lid : Id.Lop.t;
      client : Id.Client.t;
      obj : Id.Obj.t;
      op : Base_object.op;
      result : Value.t;
    }
  | Server_crash of Id.Server.t
  | Client_crash of Id.Client.t

val entry_pp : entry Fmt.t

type t

val create : unit -> t

(** Number of recorded actions; the current time of the run. *)
val time : t -> int

val record : t -> entry -> unit

(** [get t i] is the entry at index [i] (0-based), i.e. the action taken
    at time [i + 1]. *)
val get : t -> int -> entry

val to_list : t -> entry list
val iter : (entry -> unit) -> t -> unit

(** All entries from index [from] (inclusive) onward. *)
val since : t -> int -> entry list

val pp : t Fmt.t

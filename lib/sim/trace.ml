open Regemu_objects

type hop = H_write of Value.t | H_read

let hop_pp ppf = function
  | H_write v -> Fmt.pf ppf "write(%a)" Value.pp v
  | H_read -> Fmt.string ppf "read()"

let hop_is_write = function H_write _ -> true | H_read -> false

type entry =
  | Invoke of Id.Client.t * hop
  | Return of Id.Client.t * hop * Value.t
  | Trigger of {
      lid : Id.Lop.t;
      client : Id.Client.t;
      obj : Id.Obj.t;
      op : Base_object.op;
    }
  | Respond of {
      lid : Id.Lop.t;
      client : Id.Client.t;
      obj : Id.Obj.t;
      op : Base_object.op;
      result : Value.t;
    }
  | Server_crash of Id.Server.t
  | Client_crash of Id.Client.t

let entry_pp ppf = function
  | Invoke (c, h) -> Fmt.pf ppf "%a invokes %a" Id.Client.pp c hop_pp h
  | Return (c, h, v) ->
      Fmt.pf ppf "%a returns %a from %a" Id.Client.pp c Value.pp v hop_pp h
  | Trigger { lid; client; obj; op } ->
      Fmt.pf ppf "%a triggers %a as %a on %a" Id.Client.pp client
        Base_object.op_pp op Id.Lop.pp lid Id.Obj.pp obj
  | Respond { lid; client; obj; op; result } ->
      Fmt.pf ppf "%a on %a responds %a to %a (%a)" Id.Lop.pp lid Id.Obj.pp obj
        Value.pp result Id.Client.pp client Base_object.op_pp op
  | Server_crash s -> Fmt.pf ppf "server %a crashes" Id.Server.pp s
  | Client_crash c -> Fmt.pf ppf "client %a crashes" Id.Client.pp c

type t = { mutable entries : entry array; mutable len : int }

let create () = { entries = Array.make 256 (Client_crash (Id.Client.of_int 0)); len = 0 }
let time t = t.len

let record t e =
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * t.len) e in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <- e;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  t.entries.(i)

let to_list t = Array.to_list (Array.sub t.entries 0 t.len)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.entries.(i)
  done

let since t from =
  let from = Stdlib.max 0 from in
  if from >= t.len then []
  else Array.to_list (Array.sub t.entries from (t.len - from))

let pp ppf t =
  let i = ref 0 in
  iter
    (fun e ->
      incr i;
      Fmt.pf ppf "%4d. %a@." !i entry_pp e)
    t

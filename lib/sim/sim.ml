open Regemu_objects

let src = Logs.Src.create "regemu.sim" ~doc:"Simulator event log"

module Log = (val Logs.src_log src : Logs.LOG)

type _ Effect.t += Wait_until : (unit -> bool) -> unit Effect.t

let wait_until pred = Effect.perform (Wait_until pred)

type obj_rec = {
  oid : Id.Obj.t;
  server : Id.Server.t;
  kind : Base_object.kind;
  mutable state : Value.t;
  mutable used : bool;
}

type pending_info = {
  lid : Id.Lop.t;
  obj : Id.Obj.t;
  op : Base_object.op;
  client : Id.Client.t;
  triggered_at : int;
}

type pending_rec = { info : pending_info; on_response : Value.t -> unit }

type call = {
  cl : Id.Client.t;
  hop : Trace.hop;
  invoked_at : int;
  mutable result : Value.t option;
  mutable returned_at : int option;
}

type fiber =
  | Idle
  | Waiting of { pred : unit -> bool; k : (unit, unit) Effect.Deep.continuation }

type client_rec = {
  cid : Id.Client.t;
  mutable crashed : bool;
  mutable fiber : fiber;
  mutable busy : bool;
}

type t = {
  n : int;
  mutable server_crashed : bool array;
  mutable objs : obj_rec array;
  mutable num_objs : int;
  mutable cls : client_rec array;
  mutable num_cls : int;
  pending_tbl : (int, pending_rec) Hashtbl.t;
  mutable pending_order : int list;  (* reversed trigger order *)
  mutable next_lid : int;
  tr : Trace.t;
}

let create ~n () =
  if n <= 0 then invalid_arg "Sim.create: n must be positive";
  {
    n;
    server_crashed = Array.make n false;
    objs = [||];
    num_objs = 0;
    cls = [||];
    num_cls = 0;
    pending_tbl = Hashtbl.create 64;
    pending_order = [];
    next_lid = 0;
    tr = Trace.create ();
  }

let num_servers t = t.n
let servers t = Id.Server.range t.n
let trace t = t.tr
let now t = Trace.time t.tr

(* growable array push *)
let push_obj t o =
  if t.num_objs = Array.length t.objs then begin
    let bigger = Array.make (Stdlib.max 8 (2 * t.num_objs)) o in
    Array.blit t.objs 0 bigger 0 t.num_objs;
    t.objs <- bigger
  end;
  t.objs.(t.num_objs) <- o;
  t.num_objs <- t.num_objs + 1

let push_client t c =
  if t.num_cls = Array.length t.cls then begin
    let bigger = Array.make (Stdlib.max 8 (2 * t.num_cls)) c in
    Array.blit t.cls 0 bigger 0 t.num_cls;
    t.cls <- bigger
  end;
  t.cls.(t.num_cls) <- c;
  t.num_cls <- t.num_cls + 1

let check_server t s =
  let i = Id.Server.to_int s in
  if i < 0 || i >= t.n then invalid_arg "Sim: unknown server"

let obj_rec t oid =
  let i = Id.Obj.to_int oid in
  if i < 0 || i >= t.num_objs then invalid_arg "Sim: unknown object";
  t.objs.(i)

let client_rec t cid =
  let i = Id.Client.to_int cid in
  if i < 0 || i >= t.num_cls then invalid_arg "Sim: unknown client";
  t.cls.(i)

let alloc t ~server kind =
  check_server t server;
  let oid = Id.Obj.of_int t.num_objs in
  push_obj t { oid; server; kind; state = Value.v0; used = false };
  oid

let objects t = List.init t.num_objs Id.Obj.of_int

let objects_on t s =
  check_server t s;
  List.filter (fun o -> Id.Server.equal (obj_rec t o).server s) (objects t)

let delta t oid = (obj_rec t oid).server
let kind_of t oid = (obj_rec t oid).kind
let peek t oid = (obj_rec t oid).state

let used_objects t =
  let rec go i acc =
    if i >= t.num_objs then acc
    else
      go (i + 1)
        (if t.objs.(i).used then Id.Obj.Set.add t.objs.(i).oid acc else acc)
  in
  go 0 Id.Obj.Set.empty

let new_client t =
  let cid = Id.Client.of_int t.num_cls in
  push_client t { cid; crashed = false; fiber = Idle; busy = false };
  cid

let clients t = List.init t.num_cls Id.Client.of_int

let crash_server t s =
  check_server t s;
  if not t.server_crashed.(Id.Server.to_int s) then begin
    t.server_crashed.(Id.Server.to_int s) <- true;
    Log.debug (fun m -> m "t=%d: server %a crashes" (now t) Id.Server.pp s);
    Trace.record t.tr (Server_crash s)
  end

let crash_client t c =
  let cr = client_rec t c in
  if not cr.crashed then begin
    cr.crashed <- true;
    cr.fiber <- Idle;
    Trace.record t.tr (Client_crash c)
  end

let server_crashed t s =
  check_server t s;
  t.server_crashed.(Id.Server.to_int s)

let client_crashed t c = (client_rec t c).crashed

let crashed_servers t =
  List.fold_left
    (fun acc s ->
      if server_crashed t s then Id.Server.Set.add s acc else acc)
    Id.Server.Set.empty (servers t)

let obj_crashed t oid = server_crashed t (obj_rec t oid).server

let trigger t ~client oid op ~on_response =
  let o = obj_rec t oid in
  if not (Base_object.matches o.kind op) then
    invalid_arg
      (Fmt.str "Sim.trigger: %a does not support %a" Base_object.kind_pp
         o.kind Base_object.op_pp op);
  let cr = client_rec t client in
  if cr.crashed then invalid_arg "Sim.trigger: client crashed";
  o.used <- true;
  let lid = Id.Lop.of_int t.next_lid in
  t.next_lid <- t.next_lid + 1;
  Log.debug (fun m ->
      m "t=%d: %a triggers %a on %a" (now t) Id.Client.pp client
        Base_object.op_pp op Id.Obj.pp oid);
  Trace.record t.tr (Trigger { lid; client; obj = oid; op });
  let info = { lid; obj = oid; op; client; triggered_at = now t } in
  Hashtbl.replace t.pending_tbl (Id.Lop.to_int lid) { info; on_response };
  t.pending_order <- Id.Lop.to_int lid :: t.pending_order;
  lid

let call_client c = c.cl
let call_hop c = c.hop
let call_result c = c.result
let call_returned c = c.result <> None
let call_invoked_at c = c.invoked_at
let call_returned_at c = c.returned_at

let client_busy t c = (client_rec t c).busy

let run_fiber t (cr : client_rec) (call : call) (body : unit -> Value.t) =
  let handler : (Value.t, unit) Effect.Deep.handler =
    {
      retc =
        (fun v ->
          call.result <- Some v;
          Trace.record t.tr (Return (call.cl, call.hop, v));
          call.returned_at <- Some (now t);
          cr.busy <- false;
          cr.fiber <- Idle);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait_until pred ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  cr.fiber <- Waiting { pred; k })
          | _ -> None);
    }
  in
  Effect.Deep.match_with body () handler

let invoke t ~client hop body =
  let cr = client_rec t client in
  if cr.crashed then invalid_arg "Sim.invoke: client crashed";
  if cr.busy then invalid_arg "Sim.invoke: client already has a pending call";
  cr.busy <- true;
  Trace.record t.tr (Invoke (client, hop));
  let call =
    { cl = client; hop; invoked_at = now t; result = None; returned_at = None }
  in
  run_fiber t cr call body;
  call

type event = Step of Id.Client.t | Respond of Id.Lop.t

let event_pp ppf = function
  | Step c -> Fmt.pf ppf "step(%a)" Id.Client.pp c
  | Respond l -> Fmt.pf ppf "respond(%a)" Id.Lop.pp l

let event_equal a b =
  match (a, b) with
  | Step x, Step y -> Id.Client.equal x y
  | Respond x, Respond y -> Id.Lop.equal x y
  | (Step _ | Respond _), _ -> false

let step_enabled (cr : client_rec) =
  (not cr.crashed)
  && match cr.fiber with Waiting { pred; _ } -> pred () | Idle -> false

let enabled t =
  let steps =
    List.filter_map
      (fun i ->
        let cr = t.cls.(i) in
        if step_enabled cr then Some (Step cr.cid) else None)
      (List.init t.num_cls Fun.id)
  in
  let responds =
    List.rev t.pending_order
    |> List.filter_map (fun lid_int ->
           match Hashtbl.find_opt t.pending_tbl lid_int with
           | Some p when not (obj_crashed t p.info.obj) ->
               Some (Respond p.info.lid)
           | _ -> None)
  in
  steps @ responds

let fire t ev =
  match ev with
  | Step c ->
      let cr = client_rec t c in
      if not (step_enabled cr) then
        invalid_arg (Fmt.str "Sim.fire: %a not enabled" event_pp ev);
      (match cr.fiber with
      | Waiting { k; _ } ->
          cr.fiber <- Idle;
          Effect.Deep.continue k ()
      | Idle -> assert false)
  | Respond lid -> (
      match Hashtbl.find_opt t.pending_tbl (Id.Lop.to_int lid) with
      | None -> invalid_arg (Fmt.str "Sim.fire: %a not pending" event_pp ev)
      | Some p ->
          if obj_crashed t p.info.obj then
            invalid_arg (Fmt.str "Sim.fire: %a on crashed server" event_pp ev);
          Hashtbl.remove t.pending_tbl (Id.Lop.to_int lid);
          t.pending_order <-
            List.filter (fun l -> l <> Id.Lop.to_int lid) t.pending_order;
          let o = obj_rec t p.info.obj in
          let state', result = Base_object.apply o.kind o.state p.info.op in
          o.state <- state';
          Log.debug (fun m ->
              m "t=%d: %a responds %a on %a" (now t) Id.Lop.pp lid Value.pp
                result Id.Obj.pp p.info.obj);
          Trace.record t.tr
            (Respond
               {
                 lid;
                 client = p.info.client;
                 obj = p.info.obj;
                 op = p.info.op;
                 result;
               });
          if not (client_crashed t p.info.client) then p.on_response result)

let pending t =
  List.rev t.pending_order
  |> List.filter_map (fun lid_int ->
         Option.map
           (fun p -> p.info)
           (Hashtbl.find_opt t.pending_tbl lid_int))

let pending_on t oid =
  List.filter (fun p -> Id.Obj.equal p.obj oid) (pending t)

let covered_objects t =
  List.fold_left
    (fun acc p ->
      if Base_object.is_mutator p.op then Id.Obj.Set.add p.obj acc else acc)
    Id.Obj.Set.empty (pending t)

type outcome = Satisfied | Stuck | Budget_exhausted

let outcome_pp ppf = function
  | Satisfied -> Fmt.string ppf "satisfied"
  | Stuck -> Fmt.string ppf "stuck"
  | Budget_exhausted -> Fmt.string ppf "budget-exhausted"

let outcome_equal a b =
  match (a, b) with
  | Satisfied, Satisfied | Stuck, Stuck | Budget_exhausted, Budget_exhausted
    ->
      true
  | (Satisfied | Stuck | Budget_exhausted), _ -> false

let step sim (policy : Policy.t) =
  match Sim.enabled sim with
  | [] -> false
  | enabled -> (
      match policy.choose sim enabled with
      | None -> false
      | Some ev ->
          Sim.fire sim ev;
          true)

let run_until sim policy ~budget goal =
  let rec go remaining =
    if goal () then Satisfied
    else if remaining = 0 then Budget_exhausted
    else if step sim policy then go (remaining - 1)
    else Stuck
  in
  go budget

let finish_call sim policy ~budget call =
  match run_until sim policy ~budget (fun () -> Sim.call_returned call) with
  | Satisfied -> Ok (Option.get (Sim.call_result call))
  | (Stuck | Budget_exhausted) as o -> Error o

let finish_call_exn sim policy ~budget call =
  match finish_call sim policy ~budget call with
  | Ok v -> v
  | Error o ->
      failwith
        (Fmt.str "high-level %a by %a did not return: %a (policy %s)"
           Trace.hop_pp (Sim.call_hop call) Regemu_objects.Id.Client.pp
           (Sim.call_client call) outcome_pp o policy.Policy.name)

let quiesce sim policy ~budget =
  let rec go remaining =
    if remaining = 0 then Budget_exhausted
    else if step sim policy then go (remaining - 1)
    else Satisfied
  in
  go budget

(** Run statistics computed from a trace.

    Everything here is derived purely from the recorded trace, so it
    can be computed after the fact for any run, including adversarial
    ones.  Used by the harness for operation counts and latencies and
    by tests for precise accounting. *)

open Regemu_objects

type t = {
  triggers : int;  (** low-level operations triggered *)
  responds : int;  (** low-level operations that took effect *)
  invocations : int;  (** high-level operations invoked *)
  returns : int;  (** high-level operations completed *)
  server_crashes : int;
  client_crashes : int;
  triggers_per_object : int Id.Obj.Map.t;
  triggers_per_client : int Id.Client.Map.t;
  max_outstanding : int;
      (** largest number of simultaneously pending low-level ops *)
  point_contention : int;
      (** largest number of simultaneously open high-level ops *)
}

val of_trace : Trace.t -> t
val pp : t Fmt.t

(** Steps between invocation and return for each completed high-level
    operation, in invocation order — the simulated-time latency. *)
val latencies : Trace.t -> int list

(** The percentile levels reported across the repo: p50, p95, p99. *)
val percentile_levels : float list

(** [percentiles samples] is the nearest-rank p50/p95/p99 of the
    samples as [(level, value)] pairs ([(level, 0)] on an empty list).
    Shared by the harness latency tables and the live benchmark, so
    every latency report in the repo uses the same percentile math. *)
val percentiles : int list -> (float * int) list

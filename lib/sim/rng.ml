type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the result fits OCaml's native int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t ~bound:(List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

open Regemu_objects

type violation = {
  read : History.op;
  got : Value.t;
  allowed : Value.t list;
  reason : string;
}

let violation_pp ppf v =
  Fmt.pf ppf "read %a returned %a but only {%a} allowed: %s" History.op_pp
    v.read Value.pp v.got
    Fmt.(list ~sep:comma Value.pp)
    v.allowed v.reason

type verdict = Holds | Vacuous | Violated of violation

let verdict_pp ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Vacuous -> Fmt.string ppf "vacuous (not write-sequential)"
  | Violated v -> Fmt.pf ppf "VIOLATED: %a" violation_pp v

let verdict_equal a b =
  match (a, b) with
  | Holds, Holds | Vacuous, Vacuous -> true
  | Violated x, Violated y -> x.read.index = y.read.index
  | (Holds | Vacuous | Violated _), _ -> false

(* Number of writes (a prefix of the write order) that precede [rd]. *)
let preceding_writes ws rd =
  List.length (List.filter (fun w -> History.precedes w rd) ws)

let value_written w =
  match History.written_value w with
  | Some v -> v
  | None -> assert false

(* Values a linearization of writes ∪ {rd} may let [rd] return, given
   the total write order [ws]: position j ∈ [p, |ws|] is admissible when
   the j-th write (1-based) was invoked before rd returned. *)
let admissible_values ws rd ~only_position =
  let p = preceding_writes ws rd in
  let n = List.length ws in
  let positions =
    match only_position with
    | Some j -> if j >= p && j <= n then [ j ] else []
    | None -> List.init (n - p + 1) (fun i -> p + i)
  in
  List.filter_map
    (fun j ->
      if j = 0 then Some Value.v0
      else
        let w = List.nth ws (j - 1) in
        (* rd must not precede w in real time *)
        if History.precedes rd w then None else Some (value_written w))
    positions

let check_read ws rd ~only_position ~reason =
  match rd.History.result with
  | None -> None (* incomplete reads are unconstrained *)
  | Some got ->
      let allowed = admissible_values ws rd ~only_position in
      if List.exists (Value.equal got) allowed then None
      else Some (Violated { read = rd; got; allowed; reason })

let check ~safe_only h =
  if not (History.write_sequential h) then Vacuous
  else
    let ws = History.writes_in_order h in
    let reads = History.complete (History.reads h) in
    let considered =
      if safe_only then
        List.filter
          (fun rd -> List.for_all (fun w -> not (History.concurrent rd w)) ws)
          reads
      else reads
    in
    let rec go = function
      | [] -> Holds
      | rd :: rest -> (
          let only_position, reason =
            if safe_only then
              ( Some (preceding_writes ws rd),
                "WS-Safe: read with no concurrent write must return the \
                 last preceding write" )
            else
              ( None,
                "WS-Regular: no linearization of the writes and this read \
                 exists" )
          in
          match check_read ws rd ~only_position ~reason with
          | None -> go rest
          | Some v -> v)
    in
    go considered

let check_ws_regular h = check ~safe_only:false h
let check_ws_safe h = check ~safe_only:true h

let check_read_ws_regular ~writes rd =
  match
    check_read writes rd ~only_position:None
      ~reason:
        "WS-Regular: no linearization of the writes and this read exists"
  with
  | Some (Violated v) -> Some v
  | Some _ | None -> None

let not_violated = function Holds | Vacuous -> true | Violated _ -> false
let is_ws_regular h = not_violated (check_ws_regular h)
let is_ws_safe h = not_violated (check_ws_safe h)

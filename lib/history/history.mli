(** High-level operation histories extracted from run traces.

    A history is the subsequence of a run consisting of the invocations
    and responses of the emulated register's read and write
    operations — the schedule the paper's consistency conditions
    (Appendix A.3) are stated over. *)

open Regemu_objects
open Regemu_sim

type op = {
  index : int;  (** invocation order, 0-based *)
  client : Id.Client.t;
  hop : Trace.hop;
  invoked_at : int;  (** trace time of the invocation *)
  returned_at : int option;  (** trace time of the return, if complete *)
  result : Value.t option;
}

val op_pp : op Fmt.t
val is_write : op -> bool
val is_read : op -> bool
val is_complete : op -> bool

(** [written_value op] is the argument of a write. *)
val written_value : op -> Value.t option

type t = op list

(** Extract the high-level history from a trace.  Matches each [Return]
    with the unique open invocation of the same client (runs are
    well-formed: one operation per client at a time). *)
val of_trace : Trace.t -> t

val complete : t -> op list
val writes : t -> op list
val reads : t -> op list

(** [precedes a b]: [a] returns before [b] is invoked (the paper's
    [a ≺ b]). *)
val precedes : op -> op -> bool

val concurrent : op -> op -> bool

(** No two writes are concurrent. *)
val write_sequential : t -> bool

(** Writes sorted by invocation time; in a write-sequential history this
    is also their precedence order. *)
val writes_in_order : t -> op list

val pp : t Fmt.t

open Regemu_objects
open Regemu_sim

type op = {
  index : int;
  client : Id.Client.t;
  hop : Trace.hop;
  invoked_at : int;
  returned_at : int option;
  result : Value.t option;
}

let op_pp ppf o =
  let result ppf = function
    | None -> ()
    | Some v -> (
        match o.hop with
        | Trace.H_write _ -> Fmt.pf ppf " -> ack"
        | Trace.H_read -> Fmt.pf ppf " -> %a" Value.pp v)
  in
  Fmt.pf ppf "#%d %a %a [%d,%a]%a" o.index Id.Client.pp o.client Trace.hop_pp
    o.hop o.invoked_at
    Fmt.(option ~none:(any "pending") int)
    o.returned_at result o.result

let is_write o = Trace.hop_is_write o.hop
let is_read o = not (is_write o)
let is_complete o = o.returned_at <> None

let written_value o =
  match o.hop with Trace.H_write v -> Some v | Trace.H_read -> None

type t = op list

let of_trace tr =
  (* open invocations per client, most recent first *)
  let open_ops : (int, op) Hashtbl.t = Hashtbl.create 16 in
  let finished = ref [] in
  let index = ref 0 in
  let time = ref 0 in
  Trace.iter
    (fun entry ->
      incr time;
      match entry with
      | Trace.Invoke (c, hop) ->
          let o =
            {
              index = !index;
              client = c;
              hop;
              invoked_at = !time;
              returned_at = None;
              result = None;
            }
          in
          incr index;
          Hashtbl.replace open_ops (Id.Client.to_int c) o
      | Trace.Return (c, _hop, v) -> (
          match Hashtbl.find_opt open_ops (Id.Client.to_int c) with
          | None -> ()
          | Some o ->
              Hashtbl.remove open_ops (Id.Client.to_int c);
              finished :=
                { o with returned_at = Some !time; result = Some v }
                :: !finished)
      | Trace.Trigger _ | Trace.Respond _ | Trace.Server_crash _
      | Trace.Client_crash _ ->
          ())
    tr;
  let still_open = Hashtbl.fold (fun _ o acc -> o :: acc) open_ops [] in
  List.sort (fun a b -> Int.compare a.index b.index) (!finished @ still_open)

let complete = List.filter is_complete
let writes = List.filter is_write
let reads = List.filter is_read

let precedes a b =
  match a.returned_at with Some r -> r < b.invoked_at | None -> false

let concurrent a b = (not (precedes a b)) && not (precedes b a)

let write_sequential h =
  let ws = writes h in
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> a.index = b.index || precedes a b || precedes b a)
        ws)
    ws

let writes_in_order h =
  List.sort (fun a b -> Int.compare a.invoked_at b.invoked_at) (writes h)

let pp = Fmt.vbox (Fmt.list op_pp)

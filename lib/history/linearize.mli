(** Brute-force linearizability (atomicity) checker.

    Decides whether a history has a linearization with respect to a
    sequential specification over a single {!Value.t} state.  Used to
    validate atomicity of the max-register-from-CAS construction
    (Appendix B, Theorem 4) and of the simulator's base objects.

    The search is exponential in history length (Wing–Gong style
    backtracking with memoization); use it on small histories only —
    it is the ground truth the fast {!Ws_check} checkers are tested
    against. *)

open Regemu_objects
open Regemu_sim

(** A sequential specification: [apply state hop] is
    [(state', response)]. *)
type semantics = {
  name : string;
  init : Value.t;
  apply : Value.t -> Trace.hop -> Value.t * Value.t;
}

(** Read/write register: a read returns the latest written value. *)
val register : semantics

(** Max-register: [H_write] is write-max, [H_read] is read-max. *)
val max_register : semantics

(** [linearizable sem h] is [true] iff there is a sequential schedule of
    all complete operations of [h] plus some subset of its pending
    operations that respects [h]'s precedence order and [sem], with
    every complete operation returning its recorded result. *)
val linearizable : semantics -> History.t -> bool

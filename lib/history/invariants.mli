(** Algorithm-level invariants decidable from a trace.

    Unlike {!Wellformed} (substrate correctness), these are properties
    of specific {e algorithms}, checkable post-hoc on any recorded run:

    - {!single_pending_write_per_writer_register}: a client never has
      two of its own writes pending on one register.  Algorithm 2's
      coverSet discipline and the layered construction's queueing
      guarantee it; the naive algorithm violates it (that is exactly
      its flaw).
    - {!max_pending_writes_at_return}: when a high-level write returns,
      its writer has at most [f] of its own low-level writes pending —
      the "leaves no more than f covered registers" obligation from the
      paper's upper-bound argument (Observation 3). *)

open Regemu_objects
open Regemu_sim

type violation = { at : int; client : Id.Client.t; detail : string }

val violation_pp : violation Fmt.t

val single_pending_write_per_writer_register :
  Trace.t -> (unit, violation) result

(** [max_pending_writes_at_return tr ~f] checks every high-level write
    return. *)
val max_pending_writes_at_return :
  Trace.t -> f:int -> (unit, violation) result

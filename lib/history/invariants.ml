open Regemu_objects
open Regemu_sim

type violation = { at : int; client : Id.Client.t; detail : string }

let violation_pp ppf v =
  Fmt.pf ppf "at t=%d, client %a: %s" v.at Id.Client.pp v.client v.detail

let is_write = function Base_object.Write _ -> true | _ -> false

(* fold over the trace maintaining, per (client, object), the number of
   pending writes; call [check] after every entry *)
let scan tr ~check =
  let pending : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  (* pending write count per client (all objects) *)
  let per_client : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let owner_of_lop : (int, int * int) Hashtbl.t = Hashtbl.create 32 in
  let time = ref 0 in
  let error = ref None in
  Trace.iter
    (fun entry ->
      incr time;
      if !error = None then begin
        (match entry with
        | Trace.Trigger { lid; client; obj; op } when is_write op ->
            let key = (Id.Client.to_int client, Id.Obj.to_int obj) in
            Hashtbl.replace owner_of_lop (Id.Lop.to_int lid) key;
            Hashtbl.replace pending key
              (Option.value ~default:0 (Hashtbl.find_opt pending key) + 1);
            Hashtbl.replace per_client
              (Id.Client.to_int client)
              (Option.value ~default:0
                 (Hashtbl.find_opt per_client (Id.Client.to_int client))
              + 1)
        | Trace.Respond { lid; op; _ } when is_write op -> (
            match Hashtbl.find_opt owner_of_lop (Id.Lop.to_int lid) with
            | Some ((c, _) as key) ->
                Hashtbl.replace pending key
                  (Option.value ~default:0 (Hashtbl.find_opt pending key) - 1);
                Hashtbl.replace per_client c
                  (Option.value ~default:0 (Hashtbl.find_opt per_client c) - 1)
            | None -> ())
        | _ -> ());
        match check ~time:!time ~entry ~pending ~per_client with
        | None -> ()
        | Some v -> error := Some v
      end)
    tr;
  match !error with None -> Ok () | Some v -> Error v

let single_pending_write_per_writer_register tr =
  scan tr ~check:(fun ~time ~entry:_ ~pending ~per_client:_ ->
      Hashtbl.fold
        (fun (c, o) count acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if count > 1 then
                Some
                  {
                    at = time;
                    client = Id.Client.of_int c;
                    detail =
                      Fmt.str "%d of its writes pending on %a simultaneously"
                        count Id.Obj.pp (Id.Obj.of_int o);
                  }
              else None)
        pending None)

let max_pending_writes_at_return tr ~f =
  scan tr ~check:(fun ~time ~entry ~pending:_ ~per_client ->
      match entry with
      | Trace.Return (c, Trace.H_write _, _) ->
          let n =
            Option.value ~default:0
              (Hashtbl.find_opt per_client (Id.Client.to_int c))
          in
          if n > f then
            Some
              {
                at = time;
                client = c;
                detail =
                  Fmt.str
                    "write returned with %d of its low-level writes pending \
                     (> f = %d)"
                    n f;
              }
          else None
      | _ -> None)

(** Checkers for the paper's consistency conditions (Appendix A.3).

    Both conditions constrain only {e write-sequential} schedules; on a
    schedule with concurrent writes they hold vacuously.

    - {e WS-Regularity}: every complete read, together with all writes,
      has a linearization.
    - {e WS-Safety}: as WS-Regularity, but only for complete reads that
      are concurrent with no write.

    In a write-sequential schedule the writes are totally ordered by
    precedence, which reduces both checks to closed-form conditions on
    each read; no linearization search is needed. *)

open Regemu_objects

type violation = {
  read : History.op;
  got : Value.t;
  allowed : Value.t list;  (** return values a linearization would permit *)
  reason : string;
}

val violation_pp : violation Fmt.t

type verdict =
  | Holds
  | Vacuous  (** the schedule is not write-sequential *)
  | Violated of violation

val verdict_pp : verdict Fmt.t
val verdict_equal : verdict -> verdict -> bool

val check_ws_regular : History.t -> verdict
val check_ws_safe : History.t -> verdict

(** [check_read_ws_regular ~writes rd] checks one read against the
    total write order [writes] (the caller must have verified the
    history is write-sequential, e.g. via {!History.write_sequential}).
    [None] when the read is admissible or incomplete.

    This is the incremental entry point for online checking: once a
    completed read has been validated against the write order it stays
    valid — any write that appears later was invoked after the read
    returned, so it can only land at excluded positions.  Validating
    each completed read once is therefore equivalent to re-checking the
    full history every time. *)
val check_read_ws_regular : writes:History.op list -> History.op -> violation option

(** [true] iff the corresponding check does not return [Violated]. *)
val is_ws_regular : History.t -> bool

val is_ws_safe : History.t -> bool

type verdict = Holds | Violated of History.op

let verdict_pp ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Violated rd -> Fmt.pf ppf "VIOLATED at %a" History.op_pp rd

let check_weak_regular (h : History.t) =
  let writes = History.writes h in
  let complete_reads = History.complete (History.reads h) in
  let rec go = function
    | [] -> Holds
    | rd :: rest ->
        if Linearize.linearizable Linearize.register (writes @ [ rd ]) then
          go rest
        else Violated rd
  in
  go complete_reads

let is_weak_regular h =
  match check_weak_regular h with Holds -> true | Violated _ -> false

let is_atomic h = Linearize.linearizable Linearize.register h

(** Per-read regularity for {e arbitrary} (not necessarily
    write-sequential) histories.

    The paper's WS-Regularity conditions only constrain
    write-sequential schedules; this module implements the natural
    generalization in the style of Shao et al. (the paper's [34]): a
    history is {e weakly regular} if for every complete read [rd] there
    is a linearization of all the writes together with [rd] (each read
    may order the concurrent writes differently).

    The check reduces to one brute-force register-linearizability query
    per read, so it is exponential in the number of concurrent writes —
    fine for test-sized histories, and exactly the definition, so it
    serves as ground truth for the stronger conditions.

    Implications verified in the test suite:
    atomicity ⟹ weak regularity ⟹ WS-Regularity (on write-sequential
    histories they agree with {!Ws_check}). *)

type verdict = Holds | Violated of History.op

val verdict_pp : verdict Fmt.t

(** [check_weak_regular h] verifies every complete read of [h]. *)
val check_weak_regular : History.t -> verdict

val is_weak_regular : History.t -> bool

(** Full atomicity of the register history (single linearization for
    everything) — a convenience wrapper over {!Linearize}. *)
val is_atomic : History.t -> bool

open Regemu_objects
open Regemu_sim

type semantics = {
  name : string;
  init : Value.t;
  apply : Value.t -> Trace.hop -> Value.t * Value.t;
}

let register =
  {
    name = "register";
    init = Value.v0;
    apply =
      (fun state -> function
        | Trace.H_write v -> (v, Value.Unit)
        | Trace.H_read -> (state, state));
  }

let max_register =
  {
    name = "max-register";
    init = Value.v0;
    apply =
      (fun state -> function
        | Trace.H_write v -> (Value.max state v, Value.Unit)
        | Trace.H_read -> (state, state));
  }

module Key = struct
  type t = int list * Value.t

  let equal (a, va) (b, vb) = a = b && Value.equal va vb
  let hash (a, v) = Hashtbl.hash (a, Value.to_string v)
end

module Memo = Hashtbl.Make (Key)

let linearizable sem (h : History.t) =
  let ops = Array.of_list h in
  let n = Array.length ops in
  let memo = Memo.create 64 in
  (* [remaining] is a sorted list of live op indices. *)
  let minimal remaining i =
    let o = ops.(i) in
    List.for_all (fun j -> not (History.precedes ops.(j) o)) remaining
  in
  let rec search remaining state =
    match remaining with
    | [] -> true
    | _ -> (
        let key = (remaining, state) in
        match Memo.find_opt memo key with
        | Some r -> r
        | None ->
            let result =
              List.exists
                (fun i ->
                  minimal remaining i
                  &&
                  let o = ops.(i) in
                  let rest = List.filter (fun j -> j <> i) remaining in
                  let state', response = sem.apply state o.History.hop in
                  match o.History.result with
                  | Some expected ->
                      Value.equal response expected && search rest state'
                  | None ->
                      (* pending: either takes effect here or never *)
                      search rest state' || search rest state)
                remaining
            in
            Memo.add memo key result;
            result)
  in
  search (List.init n Fun.id) sem.init

open Regemu_objects
open Regemu_sim

type violation = { at : int; what : string }

let violation_pp ppf v = Fmt.pf ppf "at t=%d: %s" v.at v.what

let scan ~on_respond tr =
  let open_triggers : (int, Trace.entry) Hashtbl.t = Hashtbl.create 32 in
  let client_open : (int, bool) Hashtbl.t = Hashtbl.create 8 in
  let crashed_servers = ref Id.Server.Set.empty in
  let time = ref 0 in
  let error = ref None in
  let fail what = if !error = None then error := Some { at = !time; what } in
  Trace.iter
    (fun entry ->
      incr time;
      if !error = None then
        match entry with
        | Trace.Trigger { lid; _ } ->
            if Hashtbl.mem open_triggers (Id.Lop.to_int lid) then
              fail (Fmt.str "duplicate trigger id %a" Id.Lop.pp lid)
            else Hashtbl.replace open_triggers (Id.Lop.to_int lid) entry
        | Trace.Respond { lid; client; obj; op; result } -> (
            match Hashtbl.find_opt open_triggers (Id.Lop.to_int lid) with
            | None ->
                fail
                  (Fmt.str "respond without matching trigger (%a)" Id.Lop.pp
                     lid)
            | Some (Trace.Trigger t) ->
                Hashtbl.remove open_triggers (Id.Lop.to_int lid);
                if not (Id.Client.equal t.client client) then
                  fail "respond delivered to a different client";
                if not (Id.Obj.equal t.obj obj) then
                  fail "respond on a different object than triggered";
                if t.op <> op then fail "respond for a different operation";
                on_respond ~time:!time ~obj ~op ~result ~fail;
                ignore crashed_servers
            | Some _ -> assert false)
        | Trace.Invoke (c, _) ->
            if
              Option.value ~default:false
                (Hashtbl.find_opt client_open (Id.Client.to_int c))
            then fail (Fmt.str "%a invokes while busy" Id.Client.pp c)
            else Hashtbl.replace client_open (Id.Client.to_int c) true
        | Trace.Return (c, _, _) ->
            if
              not
                (Option.value ~default:false
                   (Hashtbl.find_opt client_open (Id.Client.to_int c)))
            then fail (Fmt.str "%a returns without invocation" Id.Client.pp c)
            else Hashtbl.replace client_open (Id.Client.to_int c) false
        | Trace.Server_crash s ->
            if Id.Server.Set.mem s !crashed_servers then
              fail (Fmt.str "%a crashes twice" Id.Server.pp s)
            else crashed_servers := Id.Server.Set.add s !crashed_servers
        | Trace.Client_crash _ -> ())
    tr;
  match !error with None -> Ok () | Some v -> Error v

let check tr = scan ~on_respond:(fun ~time:_ ~obj:_ ~op:_ ~result:_ ~fail:_ -> ()) tr

let check_replay tr ~kind_of =
  (* replay object states in respond order *)
  let states : (int, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let state_of obj =
    Option.value ~default:Value.v0 (Hashtbl.find_opt states (Id.Obj.to_int obj))
  in
  scan tr ~on_respond:(fun ~time:_ ~obj ~op ~result ~fail ->
      let kind = kind_of obj in
      let state', expected = Base_object.apply kind (state_of obj) op in
      Hashtbl.replace states (Id.Obj.to_int obj) state';
      if not (Value.equal expected result) then
        fail
          (Fmt.str "respond on %a returned %a, semantics say %a" Id.Obj.pp obj
             Value.pp result Value.pp expected))

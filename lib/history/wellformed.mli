(** Structural well-formedness of run traces.

    These are invariants of the {e simulator}, not of any algorithm:
    every respond matches exactly one earlier trigger of the same
    operation on the same object; no operation responds twice; no
    response follows its object's server crash; per client, high-level
    invocations and returns alternate; responses carry results
    consistent with replaying the base-object semantics in respond
    order (Assumption 1).

    Used as a property-test oracle over random event sequences: if any
    of this ever fails, the bug is in the substrate and every other
    result is suspect — so it is checked first. *)

open Regemu_sim

type violation = { at : int;  (** 1-based time of the offending entry *)
                   what : string }

val violation_pp : violation Fmt.t

(** Full structural check; [Ok ()] or the first violation. *)
val check : Trace.t -> (unit, violation) result

(** [check_replay] additionally replays every respond against the
    recorded object kinds and verifies each result value.  Needs the
    kind of every object, supplied by the simulator. *)
val check_replay :
  Trace.t ->
  kind_of:(Regemu_objects.Id.Obj.t -> Regemu_objects.Base_object.kind) ->
  (unit, violation) result

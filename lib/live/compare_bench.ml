open Regemu_bounds
module Json = Regemu_obs.Json

let schema = "regemu-compare/1"

type load = { label : string; k : int; readers : int; f : int; n : int }

(* Two load points that pull the three axes apart: a light point at
   the minimum interesting writer count, and a heavy one where both
   the writer count and the fault tolerance grow — CDS pays k cells on
   every replica, Algorithm 2 spreads kf + ⌈k/z⌉(f+1) cells across all
   n servers, ABD holds one (unbounded) max-register per replica
   whatever k is. *)
let loads =
  [
    { label = "k2-f1"; k = 2; readers = 4; f = 1; n = 5 };
    { label = "k6-f2"; k = 6; readers = 6; f = 2; n = 7 };
  ]

let smoke_loads = [ { label = "k2-f1"; k = 2; readers = 2; f = 1; n = 5 } ]

let algos = [ Live_bench.Abd; Live_bench.Alg2; Live_bench.Cds ]
let algo_names = List.map Live_bench.algo_name algos

(* the socket backend's stores live in child processes the sampler
   cannot see, so the committed comparison covers the two in-process
   fabrics *)
let backends = [ Transport.Threads; Transport.Domains ]

(* the paper-side prediction for the measured [space_cells_total]
   column: what each construction commits to holding, cluster-wide *)
let formula_cells_total ~algo l =
  match algo with
  | Live_bench.Abd | Live_bench.Abd_wb -> (2 * l.f) + 1
  | Live_bench.Alg2 ->
      Formulas.register_upper_bound (Params.make_exn ~k:l.k ~f:l.f ~n:l.n)
  | Live_bench.Cds -> l.k * ((2 * l.f) + 1)

let spec_of ~backend ~algo ~ops_per_client ~seed l =
  {
    Live_bench.algo;
    k = l.k;
    readers = l.readers;
    f = l.f;
    n = l.n;
    ops_per_client;
    couriers = 3;
    chaos = false;
    (* peak-pipeline mode, like the saturation sweep *)
    reorder = false;
    backend;
    seed;
  }

(* backends adjacent per (load, algo) so the round-robined reps measure
   each threads/domains pair under the same machine weather *)
let specs ?(loads = loads) ?(ops_per_client = 150) ~seed () =
  List.concat_map
    (fun l ->
      List.concat_map
        (fun algo ->
          List.map
            (fun backend ->
              (l, spec_of ~backend ~algo ~ops_per_client ~seed l))
            backends)
        algos)
    loads

let smoke_specs ~seed () = specs ~loads:smoke_loads ~ops_per_client:25 ~seed ()

type row = { load : load; outcome : Live_bench.outcome }

let run ?sink ?(reps = 1) pairs =
  let outs = Live_bench.run_sweep_median ~reps ?sink (List.map snd pairs) in
  List.map2 (fun (l, _) o -> { load = l; outcome = o }) pairs outs

let clean rows = List.for_all (fun r -> Live_bench.clean r.outcome) rows

(* --- reporting ---------------------------------------------------------- *)

let pct o p =
  try List.assoc p o.Live_bench.pcts_us with Not_found -> 0.0

let row_pp ppf r =
  let o = r.outcome in
  let s = o.Live_bench.spec in
  Fmt.pf ppf
    "%-10s %-7s %-6s f=%d n=%d k=%d: %7.0f ops/s p95=%.0fus space/server \
     %d cells %d B (total %d, formula %d)%s"
    (Live_bench.algo_name s.Live_bench.algo)
    (Transport.backend_name s.Live_bench.backend)
    r.load.label s.Live_bench.f s.Live_bench.n s.Live_bench.k
    o.Live_bench.throughput (pct o 0.95) o.Live_bench.space_cells
    o.Live_bench.space_bytes o.Live_bench.space_cells_total
    (formula_cells_total ~algo:s.Live_bench.algo r.load)
    (if Live_bench.clean o then "" else " DIRTY")

let row_json r =
  let o = r.outcome in
  let s = o.Live_bench.spec in
  Json.Obj
    [
      ("algo", Json.Str (Live_bench.algo_name s.Live_bench.algo));
      ("backend", Json.Str (Transport.backend_name s.Live_bench.backend));
      ("load", Json.Str r.load.label);
      ("writers", Json.Int s.Live_bench.k);
      ("readers", Json.Int s.Live_bench.readers);
      ("f", Json.Int s.Live_bench.f);
      ("n", Json.Int s.Live_bench.n);
      ("clients", Json.Int (s.Live_bench.k + s.Live_bench.readers));
      ("ops", Json.Int o.Live_bench.ops);
      ("ops_per_s", Json.Float o.Live_bench.throughput);
      ("latency_p50_us", Json.Float (pct o 0.50));
      ("latency_p95_us", Json.Float (pct o 0.95));
      ("space_resident_cells", Json.Int o.Live_bench.space_cells);
      ("space_resident_bytes", Json.Int o.Live_bench.space_bytes);
      ("space_cells_total", Json.Int o.Live_bench.space_cells_total);
      ( "space_formula_cells_total",
        Json.Int (formula_cells_total ~algo:s.Live_bench.algo r.load) );
      ( "ws_regular",
        Json.Str
          (Fmt.str "%a" Regemu_history.Ws_check.verdict_pp
             o.Live_bench.check.Checker.ws) );
      ("clean", Json.Bool (Live_bench.clean o));
    ]

let to_json ~seed ~smoke rows =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("seed", Json.Int seed);
      ("smoke", Json.Bool smoke);
      ("rows", Json.List (List.map row_json rows));
      ("clean", Json.Bool (clean rows));
    ]

(* --- validation (on write and on read-back) ------------------------------ *)

let backend_names = List.map Transport.backend_name backends

let validate_compare_json json =
  let ( let* ) = Result.bind in
  let field name = function
    | Json.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Fmt.str "missing field %S" name))
    | _ -> Error "expected an object"
  in
  let str what = function
    | Json.Str s -> Ok s
    | _ -> Error (Fmt.str "%s must be a string" what)
  in
  let* schema_v = field "schema" json in
  let* schema_s = str "schema" schema_v in
  let* () =
    if schema_s = schema then Ok () else Error (Fmt.str "bad schema %S" schema_s)
  in
  let* rows = field "rows" json in
  let* rows =
    match rows with
    | Json.List [] -> Error "rows must be non-empty"
    | Json.List rs -> Ok rs
    | _ -> Error "rows must be a list"
  in
  let* triples =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* algo = Result.bind (field "algo" r) (str "algo") in
        let* () =
          if List.mem algo algo_names then Ok ()
          else
            Error
              (Fmt.str "unknown algo %S; expected one of %s" algo
                 (String.concat ", " algo_names))
        in
        let* backend = Result.bind (field "backend" r) (str "backend") in
        let* () =
          if List.mem backend backend_names then Ok ()
          else Error (Fmt.str "unknown backend %S" backend)
        in
        let* load = Result.bind (field "load" r) (str "load") in
        let* () =
          List.fold_left
            (fun acc k ->
              let* () = acc in
              let* v = field k r in
              match v with
              | Json.Float _ | Json.Int _ -> Ok ()
              | _ -> Error (Fmt.str "%s must be a number" k))
            (Ok ())
            [
              "ops_per_s"; "latency_p50_us"; "latency_p95_us";
              "space_resident_cells"; "space_resident_bytes";
              "space_cells_total"; "space_formula_cells_total"; "f"; "n";
            ]
        in
        let* () =
          match field "clean" r with
          | Ok (Json.Bool _) -> Ok ()
          | Ok _ -> Error "clean must be a bool"
          | Error e -> Error e
        in
        Ok ((algo, backend, load) :: acc))
      (Ok []) rows
  in
  (* coverage: exactly one row per (algo × backend) for every load
     point present — a missing or duplicated cell is a schema error,
     not a dashboard surprise *)
  let load_labels = List.sort_uniq compare (List.map (fun (_, _, l) -> l) triples) in
  List.fold_left
    (fun acc l ->
      let* () = acc in
      List.fold_left
        (fun acc algo ->
          let* () = acc in
          List.fold_left
            (fun acc backend ->
              let* () = acc in
              match
                List.length
                  (List.filter (fun t -> t = (algo, backend, l)) triples)
              with
              | 1 -> Ok ()
              | 0 ->
                  Error
                    (Fmt.str "missing row (%s, %s, %s)" algo backend l)
              | n ->
                  Error
                    (Fmt.str "%d duplicate rows (%s, %s, %s)" n algo backend l))
            (Ok ()) backend_names)
        (Ok ()) algo_names)
    (Ok ()) load_labels

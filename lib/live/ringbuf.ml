type 'a t = {
  mutable buf : 'a array;  (* [||] until the first push *)
  mutable head : int;
  mutable len : int;
}

let create () = { buf = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.buf in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let buf' = Array.make cap' x in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf';
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t x;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
  t.len <- t.len + 1

let take_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ringbuf.take_at: out of range";
  let cap = Array.length t.buf in
  let slot = (t.head + i) mod cap in
  let x = t.buf.(slot) in
  (* swap the front into the vacated slot, then advance the front;
     O(1), at the price of perturbing the order of survivors *)
  t.buf.(slot) <- t.buf.(t.head);
  t.head <- (t.head + 1) mod cap;
  t.len <- t.len - 1;
  if t.len = 0 then t.head <- 0;
  x

let pop t =
  if t.len = 0 then invalid_arg "Ringbuf.pop: empty";
  take_at t 0

let clear t =
  t.buf <- [||];
  t.head <- 0;
  t.len <- 0

let to_list t =
  List.init t.len (fun i -> t.buf.((t.head + i) mod Array.length t.buf))

type config = {
  window : int;
  quantile : float;
  ewma_alpha : float;
  mult : float;
  min_s : float;
  max_s : float;
}

let default_config =
  {
    window = 64;
    quantile = 0.95;
    ewma_alpha = 0.2;
    mult = 4.0;
    min_s = 0.05;
    max_s = 10.0;
  }

let validate_config cfg =
  if cfg.window < 1 then invalid_arg "Deadline: window must be >= 1";
  if not (cfg.quantile >= 0.0 && cfg.quantile <= 1.0) then
    invalid_arg "Deadline: quantile must be in [0,1]";
  if not (cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0) then
    invalid_arg "Deadline: ewma_alpha must be in (0,1]";
  if not (cfg.mult > 0.0) then invalid_arg "Deadline: mult must be > 0";
  if not (cfg.min_s >= 0.0) then invalid_arg "Deadline: min_s must be >= 0";
  if not (cfg.max_s >= cfg.min_s) then
    invalid_arg "Deadline: max_s must be >= min_s"

type t = {
  cfg : config;
  ring : float array;  (* last [window] samples, a circular buffer *)
  mutable next : int;  (* write cursor into [ring] *)
  mutable count : int;  (* samples seen, saturates at [window] *)
  mutable ewma : float;  (* negative = no samples yet *)
}

let create cfg =
  validate_config cfg;
  { cfg; ring = Array.make cfg.window 0.0; next = 0; count = 0; ewma = -1.0 }

let samples t = min t.count t.cfg.window

let observe t s =
  let s = Float.max 0.0 s in
  t.ring.(t.next) <- s;
  t.next <- (t.next + 1) mod t.cfg.window;
  if t.count < t.cfg.window then t.count <- t.count + 1;
  t.ewma <-
    (if t.ewma < 0.0 then s
     else ((1.0 -. t.cfg.ewma_alpha) *. t.ewma) +. (t.cfg.ewma_alpha *. s))

let ewma t = if t.ewma < 0.0 then 0.0 else t.ewma

(* the q-quantile of the current window by nearest-rank on a sorted
   copy; the window is small (tens of samples) so the copy-and-sort is
   cheaper than maintaining an order statistic online *)
let quantile t =
  let n = samples t in
  if n = 0 then 0.0
  else begin
    let a = Array.sub t.ring 0 n in
    Array.sort Float.compare a;
    let rank =
      int_of_float (Float.round (t.cfg.quantile *. float_of_int (n - 1)))
    in
    a.(max 0 (min (n - 1) rank))
  end

(* No samples yet means no evidence the cluster is fast: answer with
   the clamp ceiling, which callers align with the static deadline so
   behaviour before the first reply is unchanged. *)
let latency_s t =
  if samples t = 0 then 0.0 else Float.max (quantile t) (ewma t)

let estimate_s t =
  if samples t = 0 then t.cfg.max_s
  else
    Float.min t.cfg.max_s (Float.max t.cfg.min_s (t.cfg.mult *. latency_s t))

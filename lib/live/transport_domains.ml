(* The [Domains] backend: each server's lane is an OCaml 5 [Domain.t]
   draining a lock-free MPSC ring ({!Mpsc}), plus one lane for
   client-bound replies.  A send is one atomic exchange — no mutex, no
   condvar, no courier handoff — and the lane's domain both applies
   the seeded fault stream and (for server lanes) executes the server
   itself: the delivering domain IS the server's execution context, so
   a request costs one cross-domain push where the threaded backend
   pays a lane handoff plus a mailbox handoff.

   Fault semantics match the courier backend with two documented
   differences: fault decisions (drop/dup/delay/reorder) are made by
   the consuming domain from its own seeded rng (same distribution,
   different interleaving — this backend is not DST-replayable), and a
   delivery delay is served in-lane, head-of-line, preserving
   per-destination FIFO instead of letting other couriers pass the
   held envelope.

   Crash gating: a server lane parks while its server is down
   ([set_server_up]) or frozen, so messages to a crashed-but-reachable
   server wait in the ring — the asynchronous model's treatment of
   crashes, same as the mailbox of the threaded backend. *)

open Transport_intf

type lane = {
  lserver : int option;  (* Some s: server [s]'s request lane *)
  q : envelope Mpsc.t;
  lrng : Regemu_sim.Rng.t;  (* consumer-domain private *)
  stash : envelope Ringbuf.t;  (* consumer-private batch/reorder buffer *)
  lrec : Sink.Trace.recorder option;
  mutable dom : unit Domain.t option;
}

type t = {
  cfg : config;
  deliver : envelope -> unit;
  nservers : int;
  lanes : lane array;  (* one per server + the client lane *)
  state : net_state Atomic.t;
  up : bool Atomic.t array;  (* per-server crash gate *)
  stopped : bool Atomic.t;
  quiet : bool;  (* no configured faults: replies may deliver inline *)
  sent : int Atomic.t;
  duplicated : int Atomic.t;
  delayed : int Atomic.t;
  slowed : int Atomic.t;
  dropped : int Atomic.t;
  cut : int Atomic.t;
  delivered : int Atomic.t;
}

(* how many envelopes a lane drains per wakeup *)
let batch_max = 32

let create ?(sink = Sink.none) cfg ~servers ~deliver =
  validate_config cfg;
  if servers < 1 then invalid_arg "Transport.create: need >= 1 server";
  let lane_name i =
    if i < servers then Fmt.str "lane-s%d" i else "lane-client"
  in
  {
    cfg;
    deliver;
    nservers = servers;
    lanes =
      Array.init (servers + 1) (fun i ->
          {
            lserver = (if i < servers then Some i else None);
            q = Mpsc.create ();
            lrng = Regemu_sim.Rng.create (cfg.seed + ((i + 1) * 0x9e3779b9));
            stash = Ringbuf.create ();
            lrec = Sink.recorder sink ~name:(lane_name i);
            dom = None;
          });
    state = Atomic.make (initial_state cfg);
    up = Array.init servers (fun _ -> Atomic.make true);
    stopped = Atomic.make false;
    quiet =
      (not cfg.reorder) && cfg.delay_prob = 0.0 && cfg.dup_prob = 0.0;
    sent = Sink.counter sink ~help:"envelopes accepted for delivery" "transport.sent";
    duplicated = Sink.counter sink ~help:"envelopes duplicated in flight" "transport.duplicated";
    delayed = Sink.counter sink ~help:"envelopes held by a delivery delay" "transport.delayed";
    slowed = Sink.counter sink ~help:"envelopes held by a gray slow link" "transport.slowed";
    dropped = Sink.counter sink ~help:"envelopes lost to the drop rates" "transport.dropped";
    cut = Sink.counter sink ~help:"envelopes lost to a partition" "transport.cut";
    delivered = Sink.counter sink ~help:"envelopes handed to their destination" "transport.delivered";
  }

let lane_for t dest =
  match dest with
  | To_server s when s >= 0 && s < t.nservers -> t.lanes.(s)
  | To_server _ | To_client _ -> t.lanes.(t.nservers)

let msg_point lane name env =
  if Sink.sample_msg lane.lrec then
    Sink.instant lane.lrec ~cat:"msg" ~args:(env_args env) name

(* a lane is gated while its server is crashed or frozen: it keeps
   accepting pushes but stops draining *)
let gated t lane =
  match lane.lserver with
  | None -> false
  | Some s ->
      (not (Atomic.get t.up.(s)))
      || frozen_of (Atomic.get t.state) ~server:s

(* deliver one envelope, applying the consumer-side fault stream *)
let process t lane st env =
  if not (reachable_of st ~server:(link_server env)) then begin
    Atomic.incr t.cut;
    msg_point lane "cut" env
  end
  else begin
    let drop_p =
      if Regemu_netsim.Proto.is_reply env.payload then st.drop_replies
      else st.drop_requests
    in
    if hit lane.lrng drop_p then begin
      Atomic.incr t.dropped;
      msg_point lane "drop" env
    end
    else begin
      let dup = hit lane.lrng t.cfg.dup_prob in
      if dup then begin
        Atomic.incr t.sent;
        Atomic.incr t.duplicated;
        msg_point lane "dup" env
      end;
      let copies = if dup then 2 else 1 in
      for _ = 1 to copies do
        let delay_us =
          if hit lane.lrng t.cfg.delay_prob && t.cfg.max_delay_us > 0 then begin
            Atomic.incr t.delayed;
            let d =
              1 + Regemu_sim.Rng.int lane.lrng ~bound:t.cfg.max_delay_us
            in
            if Sink.sample_msg lane.lrec then
              Sink.instant lane.lrec ~cat:"msg"
                ~args:(("delay_us", Sink.Event.I d) :: env_args env)
                "delay";
            d
          end
          else 0
        in
        let slow_us = slow_of st ~server:(link_server env) in
        if slow_us > 0 then begin
          Atomic.incr t.slowed;
          if Sink.sample_msg lane.lrec then
            Sink.instant lane.lrec ~cat:"msg"
              ~args:(("slow_us", Sink.Event.I slow_us) :: env_args env)
              "slow"
        end;
        let delay_us = delay_us + slow_us in
        (* head-of-line: the lane itself serves the delay *)
        if delay_us > 0 then Thread.delay (float_of_int delay_us *. 1e-6);
        t.deliver env;
        Atomic.incr t.delivered;
        msg_point lane "recv" env
      done
    end
  end

let lane_loop t lane =
  let ready () =
    Atomic.get t.stopped
    || ((not (Mpsc.is_empty lane.q)) && not (gated t lane))
  in
  while not (Atomic.get t.stopped) do
    if Mpsc.is_empty lane.q || gated t lane then Mpsc.park lane.q ~ready
    else begin
      (* drain a batch into the consumer-private stash, then deliver —
         in arrival order, or by seeded random pick under [reorder] *)
      let more = ref true in
      let n = ref 0 in
      while !more && !n < batch_max do
        match Mpsc.try_pop lane.q with
        | Some env ->
            Ringbuf.push lane.stash env;
            incr n
        | None -> more := false
      done;
      let st = Atomic.get t.state in
      while not (Ringbuf.is_empty lane.stash) do
        let len = Ringbuf.length lane.stash in
        let env =
          if t.cfg.reorder && len > 1 then
            Ringbuf.take_at lane.stash (Regemu_sim.Rng.int lane.lrng ~bound:len)
          else Ringbuf.pop lane.stash
        in
        process t lane st env
      done
    end
  done

let start t =
  Array.iter
    (fun lane -> lane.dom <- Some (Domain.spawn (fun () -> lane_loop t lane)))
    t.lanes

let send t env =
  if not (Atomic.get t.stopped) then begin
    Atomic.incr t.sent;
    let lane = lane_for t env.dest in
    msg_point lane "send" env;
    let inline_ok =
      t.quiet
      &&
      match env.dest with
      | To_server _ -> false  (* a server step must run in its lane's domain *)
      | To_client _ ->
          (* quiet config and quiet state: delivering on the sending
             domain skips the client-lane hop.  Replies from one server
             stay ordered (its lane delivers them sequentially); the
             rare queued-then-inline overtake after a heal only reorders
             replies, which every layer above already tolerates. *)
          let st = Atomic.get t.state in
          st.groups = None
          && st.drop_replies = 0.0
          && slow_of st ~server:env.src = 0
          && Mpsc.is_empty lane.q
    in
    if inline_ok then begin
      t.deliver env;
      Atomic.incr t.delivered;
      msg_point lane "recv" env
    end
    else Mpsc.push lane.q env
  end

(* --- crash gating ------------------------------------------------------- *)

let check_server t what server =
  if server < 0 || server >= t.nservers then
    invalid_arg
      (Fmt.str "Transport.%s: server %d out of range [0,%d)" what server
         t.nservers)

let set_server_up t ~server v =
  check_server t "set_server_up" server;
  Atomic.set t.up.(server) v;
  if v then Mpsc.wake t.lanes.(server).q

(* --- hostile-network controls ------------------------------------------ *)

let update_state t f = Atomic.set t.state (f (Atomic.get t.state))

let split t ~groups ~clients_with =
  let h = groups_table ~groups ~clients_with in
  update_state t (fun st ->
      { st with groups = Some h; client_group = clients_with })

let heal t = update_state t (fun st -> { st with groups = None; client_group = 0 })

let set_drop t ?requests ?replies () =
  Option.iter (check_prob "requests") requests;
  Option.iter (check_prob "replies") replies;
  update_state t (fun st ->
      {
        st with
        drop_requests = Option.value ~default:st.drop_requests requests;
        drop_replies = Option.value ~default:st.drop_replies replies;
      })

let reachable t ~server = reachable_of (Atomic.get t.state) ~server

let set_slow t ~server us =
  check_server t "set_slow" server;
  if us < 0 then invalid_arg "Transport.set_slow: negative delay";
  update_state t (fun st ->
      { st with slow = with_cell st.slow t.nservers server us ~default:0 })

let slow_us t ~server =
  check_server t "slow_us" server;
  slow_of (Atomic.get t.state) ~server

let set_frozen t ~server v =
  update_state t (fun st ->
      { st with frozen = with_cell st.frozen t.nservers server v ~default:false });
  if not v then Mpsc.wake t.lanes.(server).q

let freeze t ~server =
  check_server t "freeze" server;
  set_frozen t ~server true

let thaw t ~server =
  check_server t "thaw" server;
  set_frozen t ~server false

let frozen t ~server =
  check_server t "frozen" server;
  frozen_of (Atomic.get t.state) ~server

let heal_gray t =
  update_state t (fun st -> { st with slow = [||]; frozen = [||] });
  Array.iter (fun lane -> Mpsc.wake lane.q) t.lanes

let stop t =
  Atomic.set t.stopped true;
  Array.iter (fun lane -> Mpsc.wake lane.q) t.lanes;
  Array.iter
    (fun lane ->
      Option.iter Domain.join lane.dom;
      lane.dom <- None)
    t.lanes

let lanes t = Array.length t.lanes
let sent t = Atomic.get t.sent
let delivered t = Atomic.get t.delivered
let duplicated t = Atomic.get t.duplicated
let delayed t = Atomic.get t.delayed
let slowed t = Atomic.get t.slowed
let dropped t = Atomic.get t.dropped
let cut t = Atomic.get t.cut

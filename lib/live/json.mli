(** Compatibility alias: the JSON emitter/parser now lives in
    {!Regemu_obs.Json} (the observability layer sits below the live
    runtime and needs it for snapshots and trace export).  Everything
    that used [Regemu_live.Json] keeps working — the type and its
    constructors are re-exported with equality. *)

type t = Regemu_obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_file : string -> t -> unit
val of_string : string -> (t, string) result
val of_file : string -> (t, string) result
val member : string -> t -> t option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

(** A minimal JSON emitter — enough for the benchmark trajectory files
    without pulling in a dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Pretty-printed with two-space indentation and a trailing newline. *)
val to_file : string -> t -> unit

(** A lock-free multi-producer single-consumer queue (Vyukov's
    intrusive MPSC) with an eventcount for idle parking.

    The send path is wait-free-ish: one [Atomic.exchange] plus one
    [Atomic.set], never a mutex or condvar — except that a producer
    which observes the consumer parked (a truly idle lane) takes the
    park mutex once to wake it.

    Pop order is an interleaving of the producers' push orders with
    {e per-producer FIFO}: each producer's elements come out in its
    own push order.  Exactly-once: every pushed element is popped by
    the (single) consumer exactly once.

    All consumer-side operations ([try_pop], [park]) must be called
    from one thread/domain at a time. *)

type 'a t

val create : unit -> 'a t

(** Enqueue; safe from any thread or domain. *)
val push : 'a t -> 'a -> unit

(** Dequeue the oldest linked element; [None] when (conservatively)
    empty.  Single consumer only. *)
val try_pop : 'a t -> 'a option

(** [true] when no linked element is visible.  Conservative: an
    element mid-push may read as absent; the {!park} protocol
    guarantees its producer will wake a parked consumer once the
    element is linked. *)
val is_empty : 'a t -> bool

(** [pushed - popped]; approximate under concurrency. *)
val length : 'a t -> int

(** [park t ~ready] blocks the consumer until [ready ()] is [true],
    re-checking after every wake-up.  [ready] must read only atomic
    state.  Producers wake a parked consumer automatically; other
    state changes feeding [ready] must call {!wake}. *)
val park : 'a t -> ready:(unit -> bool) -> unit

(** Wake a parked consumer so it re-evaluates its predicate. *)
val wake : 'a t -> unit

val pushed : 'a t -> int
val popped : 'a t -> int

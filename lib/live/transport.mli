(** The live message fabric behind a pluggable backend seam: one
    nemesis-ready network API, three implementations.

    {ul
    {- [Threads] (the default): the seeded in-process courier fabric
       described below — deterministic per lane, DST-replayable, and
       the backend every existing digest was recorded against.}
    {- [Domains]: each server lane is its own OCaml 5 [Domain.t]
       draining a lock-free MPSC ring ({!Mpsc}); a send is one atomic
       exchange, with no lock or condvar on the path, and the lane's
       domain doubles as the server's execution context.  Fault
       rates and seeds are honoured, but decisions are made by the
       consuming domain, so runs are {e not} DST-replayable; delivery
       delays are served head-of-line, preserving per-destination
       FIFO.}
    {- [Socket]: each server is a forked process of the current
       executable speaking the length-prefixed binary {!Codec} over a
       Unix-domain socketpair (TCP-ready framing).  Crash injection
       SIGKILLs the process; restarts exec a fresh image, so recovery
       is inherently amnesiac, and in-kernel bytes die with the child
       (real message loss, absorbed by the retry layer).  [reorder]
       is ignored: a stream socket is FIFO.  Executables hosting this
       backend must call {!Transport_socket.child_check} first thing
       in [main].}}

    A {!Sched_hook} forces the [Threads] backend regardless of the
    configured one ({!effective_backend}): the deterministic scheduler
    owns all concurrency in a DST run, and only the courier fabric
    cooperates with it.

    The [Threads] backend: an asynchronous, reordering, duplicating,
    delaying — and, when asked, lossy and partitionable — network made
    of real threads, sharded into per-destination {e lanes}.

    [send] enqueues an envelope into the lane of its destination: one
    lane per server plus one lane for all client-bound replies (or a
    single shared lane with [sharded = false]).  Each lane has its own
    lock, condition variable, array-backed ring buffer ({!Ringbuf}),
    seeded RNG, and dedicated pool of {e courier} threads — so
    concurrent RPCs to different servers, and the replies streaming
    back, never contend on a common lock.  Couriers drain their lane in
    batches (one lock acquisition per batch) and hand each envelope to
    the [deliver] callback supplied at creation.

    The faults of the paper's asynchronous model are injected here,
    with configurable rates drawn from each lane's deterministic RNG:

    - {e reorder}: couriers pick a random queued envelope (an O(1)
      pick-and-swap on the ring buffer) instead of the oldest;
    - {e delay}: a courier sleeps before delivering, holding exactly
      the envelopes it drew delays for — its lane's other couriers
      keep delivering past it;
    - {e duplicate}: an envelope is enqueued twice (at-least-once
      delivery; the protocol layer must tolerate it);
    - {e drop}: a send is discarded at the lane, so delivery is
      at-most-once and the client layer must retransmit ({!Retry});
    - {e partition}: a dynamic reachability map over servers
      ({!split} / {!heal}); an envelope whose server-side endpoint is
      in a different group than the clients is cut, in both
      directions;
    - {e gray slowness}: a per-server added delivery delay
      ({!set_slow}) applied to every envelope whose link touches that
      server, in both directions — the replica is slow, not dead;
    - {e stutter}: a server's request lane can be frozen and thawed
      ({!freeze} / {!thaw}); queued requests wait, nothing is lost,
      and replies the server already produced still flow.

    When [reorder] is off and a lane is completely idle (no backlog,
    no in-flight delivery), [send] delivers on the calling thread —
    the same FIFO order with two context switches fewer.  [deliver]
    must therefore be safe to call from courier threads {e and} from
    sending threads.

    Determinism: each lane's fault stream is a pure function of the
    seed and that lane's send order, so single-threaded (or otherwise
    externally ordered) traffic replays exactly.

    Messages to a {e crashed but reachable} server still wait in its
    mailbox, indistinguishable from an arbitrarily slow server —
    exactly the asynchronous model's treatment of crashes.  Drops and
    cuts, by contrast, lose the message for good. *)

type backend = Transport_intf.backend = Threads | Domains | Socket

val backend_name : backend -> string
(** ["threads"], ["domains"], ["socket"] — the CLI/JSON spelling. *)

val backend_of_name : string -> backend option
val backend_pp : backend Fmt.t

type dest = Transport_intf.dest = To_server of int | To_client of int

type envelope = Transport_intf.envelope = {
  src : int;
  dest : dest;
  payload : Regemu_netsim.Proto.payload;
}

type config = Transport_intf.config = {
  couriers : int;  (** delivery threads {e per lane}; ≥ 2 interleaves *)
  delay_prob : float;  (** chance a delivery sleeps first *)
  max_delay_us : int;  (** uniform sleep bound, microseconds *)
  dup_prob : float;  (** chance a send is enqueued twice *)
  drop_prob : float;
      (** chance a send is discarded (initial rate for both requests
          and replies; adjustable at runtime with {!set_drop}) *)
  reorder : bool;  (** couriers pick a random queued envelope *)
  sharded : bool;
      (** one lane per destination (the default); [false] forces the
          single-queue fallback — every envelope through one lane.
          [Threads] only; the other backends are always sharded *)
  backend : backend;  (** which fabric carries the messages *)
  seed : int;
}

val default_config : seed:int -> config
(** [Threads] backend: 2 couriers per lane, sharded, reorder on, no
    delays, no duplication, no loss. *)

(** The backend a given configuration will actually run: [cfg.backend],
    except that a scheduler forces [Threads]. *)
val effective_backend : ?sched:Sched_hook.t -> config -> backend

type t

(** [create ?sched cfg ~servers ~deliver] builds the fabric for a
    cluster of [servers] server endpoints; no thread runs until
    {!start}.  With [sched], couriers run as cooperative actors and
    delivery delays elapse in virtual time ({!Sched_hook}) — and the
    backend is forced to [Threads].  With [sink] ({!Sink.none} by
    default), every lane records sampled
    [send]/[recv]/[drop]/[cut]/[dup]/[delay] point events on its own
    trace recorder and the message counters below register in the
    metrics registry.  [server_regs] (used by the [Socket] backend
    only) reports the parent-side register-cell count of a server, so
    freshly spawned or restarted children can mirror parent-side
    [alloc_reg] calls.  Raises [Invalid_argument] if a probability is
    outside [0,1], [couriers < 1], [servers < 1], or
    [max_delay_us < 0]. *)
val create :
  ?sched:Sched_hook.t ->
  ?sink:Sink.t ->
  ?server_regs:(int -> int) ->
  config ->
  servers:int ->
  deliver:(envelope -> unit) ->
  t

(** The backend this fabric runs on. *)
val backend : t -> backend

val start : t -> unit

(** [set_server_up t ~server up] tells the fabric about a crash or
    restart.  [Threads]: a no-op (the server's mailbox gates).
    [Domains]: the server's lane parks while down — queued messages
    wait, like mail to a crashed-but-reachable server.  [Socket]:
    down SIGKILLs the child process; up execs a fresh one (empty
    store) and resumes the parent-side outbox. *)
val set_server_up : t -> server:int -> bool -> unit

(** Enqueue an envelope (dropped silently after {!stop}). *)
val send : t -> envelope -> unit

(** {2 Hostile-network controls (the nemesis interface)} *)

(** [split t ~groups ~clients_with] installs a partition: server [s]
    is reachable iff its group is [List.nth groups clients_with] (the
    side the clients are on).  Servers not listed in any group are
    isolated.  Raises [Invalid_argument] on overlapping groups, a
    negative server id, or an out-of-range [clients_with]. *)
val split : t -> groups:int list list -> clients_with:int -> unit

(** Remove any partition: every server reachable again. *)
val heal : t -> unit

(** Adjust the message-loss rates at runtime (requests are
    client→server envelopes, replies server→client).  Raises
    [Invalid_argument] on a rate outside [0,1]. *)
val set_drop : t -> ?requests:float -> ?replies:float -> unit -> unit

(** Is [server] currently reachable from the clients? *)
val reachable : t -> server:int -> bool

(** {2 Gray-failure controls}

    Gray faults model a replica that is {e slow, not dead}: the
    quorum layers above must route around it rather than wait for it.
    All controls are runtime-adjustable from the nemesis, like
    {!split}/{!set_drop}. *)

(** [set_slow t ~server us] adds [us] microseconds to the delivery of
    every envelope on [server]'s link (requests to it and replies
    from it); [0] heals the link.  Raises [Invalid_argument] on a
    negative delay or an out-of-range server. *)
val set_slow : t -> server:int -> int -> unit

(** The current added delay on [server]'s link, microseconds. *)
val slow_us : t -> server:int -> int

(** [freeze t ~server] stops [server]'s request lane from draining:
    requests queue (nothing is dropped) until {!thaw}.  Replies from
    the server still flow.  Only effective with sharded lanes (the
    default); the single shared lane cannot freeze one server. *)
val freeze : t -> server:int -> unit

(** Resume a frozen request lane, delivering its backlog. *)
val thaw : t -> server:int -> unit

(** Is [server]'s request lane currently frozen? *)
val frozen : t -> server:int -> bool

(** Clear every slow link and frozen lane at once. *)
val heal_gray : t -> unit

(** Stop accepting sends, discard the queues, join the couriers. *)
val stop : t -> unit

(** {2 Accounting} *)

val lanes : t -> int  (** number of lanes (servers + 1, or 1) *)

val sent : t -> int  (** envelopes accepted, duplicates included *)

val delivered : t -> int
val duplicated : t -> int
val delayed : t -> int

val slowed : t -> int  (** envelopes held by a gray slow link *)

val dropped : t -> int  (** lost to the random drop rates *)

val cut : t -> int  (** lost to a partition *)

(** The live message fabric: an asynchronous, reordering, duplicating,
    delaying network made of real threads.

    [send] enqueues an envelope into a shared outbox; a pool of
    {e courier} threads drains it and hands each envelope to the
    [deliver] callback supplied at creation (the cluster routes it to a
    server mailbox or a client reply handler).  The faults of the
    paper's asynchronous model are injected here, with configurable
    rates drawn from a seeded deterministic RNG:

    - {e reorder}: couriers pick a random queued envelope instead of
      the oldest (and with several couriers, delivery interleaves even
      in FIFO mode);
    - {e delay}: a courier sleeps before delivering, holding exactly
      the message it carries — other couriers keep delivering past it;
    - {e duplicate}: an envelope is enqueued twice (at-least-once
      delivery; the protocol layer must tolerate it).

    Messages are never dropped: a request to a crashed server waits in
    its mailbox, indistinguishable from an arbitrarily slow server —
    exactly the asynchronous model's treatment of crashes. *)

type dest = To_server of int | To_client of int

type envelope = { src : int; dest : dest; payload : Regemu_netsim.Proto.payload }

type config = {
  couriers : int;  (** delivery threads; ≥ 2 gives interleaving *)
  delay_prob : float;  (** chance a delivery sleeps first *)
  max_delay_us : int;  (** uniform sleep bound, microseconds *)
  dup_prob : float;  (** chance a send is enqueued twice *)
  reorder : bool;  (** couriers pick a random queued envelope *)
  seed : int;
}

val default_config : seed:int -> config
(** 2 couriers, reorder on, no delays, no duplication. *)

type t

(** [create cfg ~deliver] builds the fabric; no thread runs until
    {!start}.  [deliver] is called from courier threads. *)
val create : config -> deliver:(envelope -> unit) -> t

val start : t -> unit

(** Enqueue an envelope (dropped silently after {!stop}). *)
val send : t -> envelope -> unit

(** Stop accepting sends, discard the queue, join the couriers. *)
val stop : t -> unit

(** {2 Accounting} *)

val sent : t -> int  (** envelopes accepted, duplicates included *)

val delivered : t -> int
val duplicated : t -> int
val delayed : t -> int

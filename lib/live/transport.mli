(** The live message fabric: an asynchronous, reordering, duplicating,
    delaying — and, when asked, lossy and partitionable — network made
    of real threads.

    [send] enqueues an envelope into a shared outbox; a pool of
    {e courier} threads drains it and hands each envelope to the
    [deliver] callback supplied at creation (the cluster routes it to a
    server mailbox or a client reply handler).  The faults of the
    paper's asynchronous model are injected here, with configurable
    rates drawn from a seeded deterministic RNG:

    - {e reorder}: couriers pick a random queued envelope instead of
      the oldest (and with several couriers, delivery interleaves even
      in FIFO mode);
    - {e delay}: a courier sleeps before delivering, holding exactly
      the message it carries — other couriers keep delivering past it;
    - {e duplicate}: an envelope is enqueued twice (at-least-once
      delivery; the protocol layer must tolerate it);
    - {e drop}: a send is discarded at the outbox, so delivery is
      at-most-once and the client layer must retransmit ({!Retry});
    - {e partition}: a dynamic reachability map over servers
      ({!split} / {!heal}); an envelope whose server-side endpoint is
      in a different group than the clients is cut, in both
      directions.

    Messages to a {e crashed but reachable} server still wait in its
    mailbox, indistinguishable from an arbitrarily slow server —
    exactly the asynchronous model's treatment of crashes.  Drops and
    cuts, by contrast, lose the message for good. *)

type dest = To_server of int | To_client of int

type envelope = { src : int; dest : dest; payload : Regemu_netsim.Proto.payload }

type config = {
  couriers : int;  (** delivery threads; ≥ 2 gives interleaving *)
  delay_prob : float;  (** chance a delivery sleeps first *)
  max_delay_us : int;  (** uniform sleep bound, microseconds *)
  dup_prob : float;  (** chance a send is enqueued twice *)
  drop_prob : float;
      (** chance a send is discarded (initial rate for both requests
          and replies; adjustable at runtime with {!set_drop}) *)
  reorder : bool;  (** couriers pick a random queued envelope *)
  seed : int;
}

val default_config : seed:int -> config
(** 2 couriers, reorder on, no delays, no duplication, no loss. *)

type t

(** [create cfg ~deliver] builds the fabric; no thread runs until
    {!start}.  [deliver] is called from courier threads.  Raises
    [Invalid_argument] if a probability is outside [0,1],
    [couriers < 1], or [max_delay_us < 0]. *)
val create : config -> deliver:(envelope -> unit) -> t

val start : t -> unit

(** Enqueue an envelope (dropped silently after {!stop}). *)
val send : t -> envelope -> unit

(** {2 Hostile-network controls (the nemesis interface)} *)

(** [split t ~groups ~clients_with] installs a partition: server [s]
    is reachable iff its group is [List.nth groups clients_with] (the
    side the clients are on).  Servers not listed in any group are
    isolated.  Raises [Invalid_argument] on overlapping groups, a
    negative server id, or an out-of-range [clients_with]. *)
val split : t -> groups:int list list -> clients_with:int -> unit

(** Remove any partition: every server reachable again. *)
val heal : t -> unit

(** Adjust the message-loss rates at runtime (requests are
    client→server envelopes, replies server→client).  Raises
    [Invalid_argument] on a rate outside [0,1]. *)
val set_drop : t -> ?requests:float -> ?replies:float -> unit -> unit

(** Is [server] currently reachable from the clients? *)
val reachable : t -> server:int -> bool

(** Stop accepting sends, discard the queue, join the couriers. *)
val stop : t -> unit

(** {2 Accounting} *)

val sent : t -> int  (** envelopes accepted, duplicates included *)

val delivered : t -> int
val duplicated : t -> int
val delayed : t -> int

val dropped : t -> int  (** lost to the random drop rates *)

val cut : t -> int  (** lost to a partition *)

(* The types every transport backend shares: destinations, envelopes,
   the configuration record, and the runtime-adjustable hostile-network
   state.  Pulling them out of [Transport] lets the three backends —
   the seeded in-process courier ([Threads]), the multi-core
   [Domains] fabric, and the forked-process [Socket] fabric — agree on
   one wire-level vocabulary while [Transport] itself is only a
   dispatcher. *)

type backend = Threads | Domains | Socket

let backend_name = function
  | Threads -> "threads"
  | Domains -> "domains"
  | Socket -> "socket"

let backend_of_name = function
  | "threads" -> Some Threads
  | "domains" -> Some Domains
  | "socket" -> Some Socket
  | _ -> None

let backend_pp ppf b = Fmt.string ppf (backend_name b)

type dest = To_server of int | To_client of int

type envelope = { src : int; dest : dest; payload : Regemu_netsim.Proto.payload }

type config = {
  couriers : int;
  delay_prob : float;
  max_delay_us : int;
  dup_prob : float;
  drop_prob : float;
  reorder : bool;
  sharded : bool;
  backend : backend;
  seed : int;
}

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Fmt.str "Transport: %s=%g not a probability in [0,1]" what p)

let validate_config cfg =
  if cfg.couriers < 1 then invalid_arg "Transport.create: need >= 1 courier";
  if cfg.max_delay_us < 0 then
    invalid_arg "Transport.create: max_delay_us must be >= 0";
  check_prob "delay_prob" cfg.delay_prob;
  check_prob "dup_prob" cfg.dup_prob;
  check_prob "drop_prob" cfg.drop_prob

(* The runtime-adjustable hostile-network state, published as one
   immutable value so the send fast path reads it with a single
   [Atomic.get] instead of taking a lock.  [groups] is built once per
   [split] and never mutated after publication; [slow] and [frozen]
   are copied on every write (gray-failure controls are nemesis-rate,
   not send-rate).  Shared by all backends so the nemesis API behaves
   identically regardless of how messages move. *)
type net_state = {
  drop_requests : float;
  drop_replies : float;
  groups : (int, int) Hashtbl.t option;  (* server -> group id *)
  client_group : int;
  slow : int array;  (* per-server added delivery delay, us; [||] = none *)
  frozen : bool array;  (* per-server request-lane freeze; [||] = none *)
}

let initial_state cfg =
  {
    drop_requests = cfg.drop_prob;
    drop_replies = cfg.drop_prob;
    groups = None;
    client_group = 0;
    slow = [||];
    frozen = [||];
  }

(* Which server is this envelope's link attached to?  (Clients are not
   partitioned — or slowed — among themselves.) *)
let link_server env =
  match env.dest with To_server s -> s | To_client _ -> env.src

let slow_of st ~server =
  if server >= 0 && server < Array.length st.slow then st.slow.(server) else 0

let frozen_of st ~server =
  server >= 0 && server < Array.length st.frozen && st.frozen.(server)

let reachable_of st ~server =
  match st.groups with
  | None -> true
  | Some g -> Hashtbl.find_opt g server = Some st.client_group

(* build the [split] reachability map, validating the groups *)
let groups_table ~groups ~clients_with =
  if groups = [] then invalid_arg "Transport.split: no groups";
  if clients_with < 0 || clients_with >= List.length groups then
    invalid_arg
      (Fmt.str "Transport.split: clients_with=%d not a group index" clients_with);
  let h = Hashtbl.create 16 in
  List.iteri
    (fun gi servers ->
      List.iter
        (fun s ->
          if s < 0 then invalid_arg "Transport.split: negative server id";
          if Hashtbl.mem h s then
            invalid_arg
              (Fmt.str "Transport.split: server %d appears in two groups" s);
          Hashtbl.replace h s gi)
        servers)
    groups;
  h

(* grow-and-copy so the published arrays are never mutated in place *)
let with_cell arr n server v ~default =
  let a = Array.make (max n (Array.length arr)) default in
  Array.blit arr 0 a 0 (Array.length arr);
  a.(server) <- v;
  a

let dest_str = function
  | To_server s -> "s" ^ string_of_int s
  | To_client c -> "c" ^ string_of_int c

let env_args env =
  [
    ("src", Sink.Event.I env.src);
    ("dest", Sink.Event.S (dest_str env.dest));
    ("rid", Sink.Event.I (Regemu_netsim.Proto.rid_of env.payload));
  ]

(* [p] as an event on a seeded integer rng *)
let hit rng p =
  p > 0.0 && Regemu_sim.Rng.int rng ~bound:1_000_000 < int_of_float (p *. 1e6)

(** Online consistency checking of a live run.

    A checker thread periodically snapshots the cluster history —
    completed {e and} pending operations, in wall-clock real-time order
    — and runs the paper's WS-Regularity checker on it, so a violation
    is caught while the run is still in progress, not post-mortem.
    [stop] performs a final check on the complete history and, when
    requested, the brute-force atomicity (linearizability) check for
    write-back variants.

    Mid-run snapshots are sound: the checkers treat a pending write as
    concurrent with everything after its invocation, which is exactly
    its status in real time. *)

type result = {
  checks : int;  (** snapshots checked (including the final one) *)
  ws : Regemu_history.Ws_check.verdict;
      (** first violation seen, otherwise the final verdict *)
  atomic : bool option;
      (** final linearizability verdict, when requested and the
          history is small enough to brute-force *)
  ops_checked : int;  (** operations in the final history *)
}

(** [true] when nothing was violated. *)
val ok : result -> bool

val result_pp : result Fmt.t

type t

(** [spawn cluster ()] starts the checker thread (or, with [sched], a
    cooperative checker actor whose ticks elapse in virtual time).
    [final_atomic] additionally runs {!Regemu_history.Linearize} with
    register semantics on the final history when it has at most
    [atomic_limit] operations (default 600 — the brute force is
    exponential in concurrency, not length, but stay modest). *)
val spawn :
  ?sched:Sched_hook.t ->
  Cluster.t ->
  ?interval_s:float ->
  ?final_atomic:bool ->
  ?atomic_limit:int ->
  unit ->
  t

(** Final checks, then join the checker thread. *)
val stop : t -> result

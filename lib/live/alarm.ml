(* A one-shot interruptible sleep: a self-pipe plus [Unix.select],
   because the stdlib's [Condition] has no timed wait.  Loops that used
   to pay a fixed [Thread.delay] tail on shutdown (heartbeat, pacer,
   fault injectors) park here instead; [ring] ends every current and
   future wait immediately.

   Sticky by design: once rung, the alarm stays rung.  That is exactly
   the shutdown protocol — set your [running] flag false, then [ring];
   the loop can never sleep through the stop, no matter how the flag
   write and the park interleave. *)

type t = {
  r : Unix.file_descr;
  w : Unix.file_descr;
  rung : bool Atomic.t;
}

let create () =
  let r, w = Unix.pipe ~cloexec:true () in
  { r; w; rung = Atomic.make false }

let rung t = Atomic.get t.rung

let ring t =
  if not (Atomic.exchange t.rung true) then
    (* one byte is enough: waits never drain the pipe *)
    try ignore (Unix.write t.w (Bytes.of_string "!") 0 1)
    with Unix.Unix_error _ -> ()

let wait t d =
  let deadline = Clock.now_s () +. d in
  let rec go left =
    if (not (Atomic.get t.rung)) && left > 0.0 then
      match Unix.select [ t.r ] [] [] left with
      | [], _, _ -> ()  (* timed out *)
      | _ -> ()  (* readable: rung *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          go (deadline -. Clock.now_s ())
  in
  go d

let close t =
  ring t;
  (* safe only once no thread can wait again; callers close after join *)
  (try Unix.close t.r with Unix.Unix_error _ -> ());
  try Unix.close t.w with Unix.Unix_error _ -> ()

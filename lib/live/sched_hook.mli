(** The pluggable scheduler seam of the live runtime.

    Every blocking primitive in [lib/live] — mailbox pop, courier lane
    wait, client await, injector / checker / nemesis pacing — consults
    an optional hook of this type.  With no hook installed (the
    default), the runtime blocks on real [Condition]s and [Thread.delay]
    exactly as before: the OS scheduler owns the interleaving.  With a
    hook installed, those same yield points are surrendered to an
    external cooperative scheduler (see [Regemu_dst.Sched]), which runs
    exactly one actor at a time, picks the next one deterministically,
    and owns a virtual clock — so one (seed, config) pair fully
    determines the run.

    Contract for implementations:

    - [spawn ~name body] registers [body] as a new actor instead of
      [Thread.create].  The actor must not run until the scheduler
      grants it a turn.
    - [suspend ?timeout_s ?mutex ready] parks the calling actor until
      [ready ()] is true or, if [timeout_s] is given, until that much
      virtual time has passed — whichever comes first.  [mutex], when
      given, is released while parked and re-acquired before returning
      (the [Condition.wait] protocol).  [ready] is evaluated by the
      scheduler while no actor runs, so it must be a pure read of
      state the caller shares with other actors and must not itself
      suspend.
    - [sleep s] parks the calling actor for [s] {e virtual} seconds.

    Code holding a mutex across a yield point must pass it to
    [suspend]; an actor is never parked while holding a lock another
    actor can contend on. *)

type t = {
  spawn : name:string -> (unit -> unit) -> unit;
  suspend : ?timeout_s:float -> ?mutex:Mutex.t -> (unit -> bool) -> unit;
  sleep : float -> unit;
}

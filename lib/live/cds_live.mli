(** The Chockler–Dobre–Shraer–Spiegelman reliable multi-writer data
    store (arXiv:1508.03762) over a live {!Cluster} — the third live
    algorithm beside {!Abd_live} and {!Alg2_live}, at a different point
    of the space/progress tradeoff.

    Each of the [2f+1] replicas holds one base register {e per writer}
    (a slot, allocated on first touch), together forming the paper's
    layered [k]-writer max-register: a server applies write-max within
    a slot, and a collect returns every resident slot.  A write
    collects from a quorum of [f+1] to learn the largest timestamp,
    then writes [(seq+1, v)] into {e its own} slot at a quorum; a read
    collects from a quorum and returns the lexicographically largest
    timestamped value.  Timestamps embed the writer's slot index, so
    concurrent writers never tie.

    Both sides are wait-free with at most [f] crashed servers, and no
    covering discipline is needed — the price is [k] registers on
    every replica ([(2f+1)k] total), against Algorithm 2's
    [kf + ⌈k/z⌉(f+1)] total and ABD's [2f+1] (one max-register each,
    but of unbounded domain). *)

open Regemu_objects

type t

(** Needs at least [2f+1] servers; uses the first [2f+1].  [writers]
    fixes the slot assignment: writer [i] of the list owns slot [i].
    At most 1024 writers. *)
val create :
  Cluster.t -> f:int -> writers:Cluster.client list -> unit -> t

val replicas : t -> int

(** Number of writer slots this emulation was created with. *)
val writer_slots : t -> int

(** Blocking; records the operation in the cluster history.  Raises
    [Invalid_argument] for a client not in [writers]. *)
val write : t -> Cluster.client -> Value.t -> unit

val read : t -> Cluster.client -> Value.t

(* The [Socket] backend: each server is a separate forked process
   speaking the length-prefixed binary {!Codec} over a Unix-domain
   socketpair (the framing is TCP-ready; only the dial here is
   process-local).  The parent keeps a per-server slot — an MPSC
   outbox, a writer thread applying the seeded request-fault stream,
   and a reader thread decoding replies and applying the reply-fault
   stream — while the child is nothing but a [Proto.store] stepped by
   frames on stdin/stdout.

   Children are re-execed images of the current executable (the
   [REGEMU_SOCKET_SERVER] environment variable short-circuits [main]
   into {!child_check}), which sidesteps fork-without-exec hazards in
   a threaded parent.

   Crash injection is real: [set_server_up false] SIGKILLs the child
   and reaps it; messages already in its kernel buffer die with it
   (genuine message loss — the retry layer's job), while messages
   still in the parent-side outbox wait for the restart, like a
   mailbox to a crashed-but-reachable server.  A restart execs a
   fresh image, so the store always comes back empty: this backend is
   inherently amnesiac, whatever the configured recovery mode.

   Parent-side register allocations reach a live child via
   [Ensure_regs] control frames, emitted by the writer whenever the
   parent's count has grown past what the child was spawned with. *)

open Transport_intf

let env_server = "REGEMU_SOCKET_SERVER"
let env_regs = "REGEMU_SOCKET_REGS"

(* The child's first bytes on the wire.  Linked libraries are free to
   print to stdout at module-init time (qcheck-alcotest announces its
   seed, for one), and those prints land on the socketpair {e before}
   [child_check] can run — so the parent discards everything up to
   this preamble, and the child re-points fd 1 at stderr before
   serving so no later print (including at_exit channel flushes) can
   corrupt a frame. *)
let magic = "\xa5\x00regemu-sock/1\x00\x5a"

(* --- the child ----------------------------------------------------------- *)

let serve ~server ~regs =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* a private dup of the socket (fds 0 and 1 are the same socketpair
     end), then route fd 1 — and with it the stdlib [stdout] channel —
     to stderr: stray prints must never interleave with frames *)
  let sock = Unix.dup Unix.stdin in
  Unix.dup2 Unix.stderr Unix.stdout;
  ignore (Unix.write_substring sock magic 0 (String.length magic));
  let store = Regemu_netsim.Proto.store_create () in
  for _ = 1 to regs do
    ignore (Regemu_netsim.Proto.alloc_reg store)
  done;
  let ensure n =
    while Regemu_netsim.Proto.num_regs store < n do
      ignore (Regemu_netsim.Proto.alloc_reg store)
    done
  in
  let rec loop () =
    match Codec.read_msg sock with
    | None -> ()  (* parent closed the pipe: clean shutdown *)
    | Some (Codec.Ensure_regs n) ->
        ensure n;
        loop ()
    | Some (Codec.Env env) ->
        let replies = Regemu_netsim.Proto.step store env.payload in
        List.iter
          (fun reply ->
            Codec.write_msg sock
              (Codec.Env
                 { src = server; dest = To_client env.src; payload = reply }))
          replies;
        loop ()
  in
  (* a SIGKILLed parent, a torn frame: either way the child just exits *)
  (try loop () with Codec.Malformed _ | Unix.Unix_error _ -> ());
  exit 0

(* Call first thing in [main] of any executable that may host this
   backend: a process spawned as a socket server serves and exits
   here, never reaching the caller's own logic. *)
let child_check () =
  match Sys.getenv_opt env_server with
  | None -> ()
  | Some sid ->
      let server = int_of_string sid in
      let regs =
        match Sys.getenv_opt env_regs with
        | Some r -> int_of_string r
        | None -> 0
      in
      serve ~server ~regs

(* --- the parent ---------------------------------------------------------- *)

type child = { pid : int; fd : Unix.file_descr }

type slot = {
  server : int;
  outq : envelope Mpsc.t;
  wrng : Regemu_sim.Rng.t;  (* writer-thread private: request faults *)
  rrng : Regemu_sim.Rng.t;  (* reader-thread private: reply faults *)
  lrec : Sink.Trace.recorder option;
  child : child option Atomic.t;  (* [None] while crashed *)
  mutable child_regs : int;  (* writer-private: regs the child has *)
  mutable writer : Thread.t option;
  mutable readers : Thread.t list;  (* one live + one exiting per restart *)
  rm : Mutex.t;  (* guards [readers] and [old_fds] *)
  mutable old_fds : Unix.file_descr list;  (* closed at [stop]: never
                                              reuse an fd a thread may
                                              still be blocked on *)
}

type t = {
  cfg : config;
  deliver : envelope -> unit;
  nservers : int;
  server_regs : int -> int;  (* parent-side register count, per server *)
  slots : slot array;
  state : net_state Atomic.t;
  up : bool Atomic.t array;
  stopped : bool Atomic.t;
  sent : int Atomic.t;
  duplicated : int Atomic.t;
  delayed : int Atomic.t;
  slowed : int Atomic.t;
  dropped : int Atomic.t;
  cut : int Atomic.t;
  delivered : int Atomic.t;
}

let create ?(sink = Sink.none) cfg ~servers ~deliver ~server_regs =
  validate_config cfg;
  if servers < 1 then invalid_arg "Transport.create: need >= 1 server";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    cfg;
    deliver;
    nservers = servers;
    server_regs;
    slots =
      Array.init servers (fun i ->
          {
            server = i;
            outq = Mpsc.create ();
            wrng = Regemu_sim.Rng.create (cfg.seed + ((i + 1) * 0x9e3779b9));
            rrng = Regemu_sim.Rng.create (cfg.seed + ((i + 1) * 0x85ebca6b));
            lrec = Sink.recorder sink ~name:(Fmt.str "sock-s%d" i);
            child = Atomic.make None;
            child_regs = 0;
            writer = None;
            readers = [];
            rm = Mutex.create ();
            old_fds = [];
          });
    state = Atomic.make (initial_state cfg);
    up = Array.init servers (fun _ -> Atomic.make true);
    stopped = Atomic.make false;
    sent = Sink.counter sink ~help:"envelopes accepted for delivery" "transport.sent";
    duplicated = Sink.counter sink ~help:"envelopes duplicated in flight" "transport.duplicated";
    delayed = Sink.counter sink ~help:"envelopes held by a delivery delay" "transport.delayed";
    slowed = Sink.counter sink ~help:"envelopes held by a gray slow link" "transport.slowed";
    dropped = Sink.counter sink ~help:"envelopes lost to the drop rates" "transport.dropped";
    cut = Sink.counter sink ~help:"envelopes lost to a partition" "transport.cut";
    delivered = Sink.counter sink ~help:"envelopes handed to their destination" "transport.delivered";
  }

let msg_point slot name env =
  if Sink.sample_msg slot.lrec then
    Sink.instant slot.lrec ~cat:"msg" ~args:(env_args env) name

let spawn_child t slot =
  let parent_end, child_end =
    Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.set_close_on_exec parent_end;
  let env =
    Array.append (Unix.environment ())
      [|
        Fmt.str "%s=%d" env_server slot.server;
        Fmt.str "%s=%d" env_regs (t.server_regs slot.server);
      |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env child_end child_end Unix.stderr
  in
  Unix.close child_end;
  slot.child_regs <- t.server_regs slot.server;
  { pid; fd = parent_end }

(* --- reader -------------------------------------------------------------- *)

(* discard the child's pre-[serve] stdout noise: scan for {!magic},
   sliding a window one byte at a time (a few dozen bytes at most) *)
let await_magic fd =
  let m = Bytes.of_string magic in
  let lm = Bytes.length m in
  let win = Bytes.create lm in
  let got = ref 0 in
  let scanned = ref 0 in
  let b = Bytes.create 1 in
  let rec rd () =
    match Unix.read fd b 0 1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
    | n -> n
  in
  let rec go () =
    if !scanned > 65536 then
      raise (Codec.Malformed "no magic preamble from the server child");
    if rd () = 0 then
      raise (Codec.Malformed "eof before the server child's preamble");
    incr scanned;
    if !got < lm then begin
      Bytes.set win !got (Bytes.get b 0);
      incr got
    end
    else begin
      Bytes.blit win 1 win 0 (lm - 1);
      Bytes.set win (lm - 1) (Bytes.get b 0)
    end;
    if not (!got = lm && Bytes.equal win m) then go ()
  in
  go ()

let reader_loop t slot fd =
  let rec loop () =
    match Codec.read_msg fd with
    | None -> ()  (* EOF: the child died or we are stopping *)
    | Some (Codec.Ensure_regs _) -> loop ()  (* children never send these *)
    | Some (Codec.Env env) ->
        let st = Atomic.get t.state in
        if not (reachable_of st ~server:env.src) then begin
          Atomic.incr t.cut;
          msg_point slot "cut" env
        end
        else if hit slot.rrng st.drop_replies then begin
          Atomic.incr t.dropped;
          msg_point slot "drop" env
        end
        else begin
          let slow_us = slow_of st ~server:env.src in
          if slow_us > 0 then begin
            Atomic.incr t.slowed;
            Thread.delay (float_of_int slow_us *. 1e-6)
          end;
          t.deliver env;
          Atomic.incr t.delivered;
          msg_point slot "recv" env
        end;
        loop ()
  in
  (* a SIGKILL mid-frame surfaces as a malformed tail — expected *)
  try
    await_magic fd;
    loop ()
  with Codec.Malformed _ | Unix.Unix_error _ -> ()

let add_reader t slot fd =
  Mutex.lock slot.rm;
  slot.readers <- Thread.create (fun () -> reader_loop t slot fd) () :: slot.readers;
  Mutex.unlock slot.rm

(* --- writer -------------------------------------------------------------- *)

let slot_gated t slot =
  (not (Atomic.get t.up.(slot.server)))
  || frozen_of (Atomic.get t.state) ~server:slot.server
  || Atomic.get slot.child = None

(* one attempted frame write; a dead or dying child loses the message,
   which the retry layer treats like any other loss *)
let try_write t slot msg =
  match Atomic.get slot.child with
  | None -> ()
  | Some c -> (
      try Codec.write_msg c.fd msg
      with Unix.Unix_error _ ->
        Atomic.incr t.dropped)

let writer_loop t slot =
  let ready () =
    Atomic.get t.stopped
    || ((not (Mpsc.is_empty slot.outq)) && not (slot_gated t slot))
  in
  while not (Atomic.get t.stopped) do
    if Mpsc.is_empty slot.outq || slot_gated t slot then
      Mpsc.park slot.outq ~ready
    else begin
      match Mpsc.try_pop slot.outq with
      | None -> ()
      | Some env ->
          let st = Atomic.get t.state in
          if not (reachable_of st ~server:slot.server) then begin
            Atomic.incr t.cut;
            msg_point slot "cut" env
          end
          else if hit slot.wrng st.drop_requests then begin
            Atomic.incr t.dropped;
            msg_point slot "drop" env
          end
          else begin
            let dup = hit slot.wrng t.cfg.dup_prob in
            if dup then begin
              Atomic.incr t.sent;
              Atomic.incr t.duplicated;
              msg_point slot "dup" env
            end;
            let delay_us =
              if hit slot.wrng t.cfg.delay_prob && t.cfg.max_delay_us > 0
              then begin
                Atomic.incr t.delayed;
                1 + Regemu_sim.Rng.int slot.wrng ~bound:t.cfg.max_delay_us
              end
              else 0
            in
            let slow_us = slow_of st ~server:slot.server in
            if slow_us > 0 then Atomic.incr t.slowed;
            let delay_us = delay_us + slow_us in
            if delay_us > 0 then
              Thread.delay (float_of_int delay_us *. 1e-6);
            (* forward any parent-side register growth first, so the
               child can step a Reg_* request the parent just set up *)
            let want = t.server_regs slot.server in
            if want > slot.child_regs then begin
              try_write t slot (Codec.Ensure_regs want);
              slot.child_regs <- want
            end;
            try_write t slot (Codec.Env env);
            for _ = 1 to if dup then 1 else 0 do
              try_write t slot (Codec.Env env)
            done
          end
    end
  done

(* --- lifecycle ----------------------------------------------------------- *)

let start t =
  Array.iter
    (fun slot ->
      let c = spawn_child t slot in
      Atomic.set slot.child (Some c);
      add_reader t slot c.fd;
      slot.writer <- Some (Thread.create (writer_loop t) slot))
    t.slots

let send t env =
  if not (Atomic.get t.stopped) then begin
    match env.dest with
    | To_server s when s >= 0 && s < t.nservers ->
        Atomic.incr t.sent;
        msg_point t.slots.(s) "send" env;
        Mpsc.push t.slots.(s).outq env
    | To_server _ -> ()
    | To_client _ ->
        (* parent-local: only possible if a layer above loops a reply
           back through the transport — deliver directly *)
        Atomic.incr t.sent;
        t.deliver env;
        Atomic.incr t.delivered
  end

let check_server t what server =
  if server < 0 || server >= t.nservers then
    invalid_arg
      (Fmt.str "Transport.%s: server %d out of range [0,%d)" what server
         t.nservers)

let kill_child slot =
  match Atomic.exchange slot.child None with
  | None -> ()
  | Some c ->
      (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ());
      (* the reader blocked on [c.fd] sees EOF and exits; the fd is
         parked until [stop] so its number cannot be reused under a
         thread still touching it *)
      Mutex.lock slot.rm;
      slot.old_fds <- c.fd :: slot.old_fds;
      Mutex.unlock slot.rm

let set_server_up t ~server v =
  check_server t "set_server_up" server;
  let slot = t.slots.(server) in
  if not v then begin
    Atomic.set t.up.(server) false;
    kill_child slot
  end
  else begin
    if Atomic.get slot.child = None && not (Atomic.get t.stopped) then begin
      let c = spawn_child t slot in
      Atomic.set slot.child (Some c);
      add_reader t slot c.fd
    end;
    Atomic.set t.up.(server) true;
    Mpsc.wake slot.outq
  end

(* --- hostile-network controls ------------------------------------------- *)

let update_state t f = Atomic.set t.state (f (Atomic.get t.state))

let split t ~groups ~clients_with =
  let h = groups_table ~groups ~clients_with in
  update_state t (fun st ->
      { st with groups = Some h; client_group = clients_with })

let heal t = update_state t (fun st -> { st with groups = None; client_group = 0 })

let set_drop t ?requests ?replies () =
  Option.iter (check_prob "requests") requests;
  Option.iter (check_prob "replies") replies;
  update_state t (fun st ->
      {
        st with
        drop_requests = Option.value ~default:st.drop_requests requests;
        drop_replies = Option.value ~default:st.drop_replies replies;
      })

let reachable t ~server = reachable_of (Atomic.get t.state) ~server

let set_slow t ~server us =
  check_server t "set_slow" server;
  if us < 0 then invalid_arg "Transport.set_slow: negative delay";
  update_state t (fun st ->
      { st with slow = with_cell st.slow t.nservers server us ~default:0 })

let slow_us t ~server =
  check_server t "slow_us" server;
  slow_of (Atomic.get t.state) ~server

let set_frozen t ~server v =
  update_state t (fun st ->
      { st with frozen = with_cell st.frozen t.nservers server v ~default:false });
  if not v then Mpsc.wake t.slots.(server).outq

let freeze t ~server =
  check_server t "freeze" server;
  set_frozen t ~server true

let thaw t ~server =
  check_server t "thaw" server;
  set_frozen t ~server false

let frozen t ~server =
  check_server t "frozen" server;
  frozen_of (Atomic.get t.state) ~server

let heal_gray t =
  update_state t (fun st -> { st with slow = [||]; frozen = [||] });
  Array.iter (fun slot -> Mpsc.wake slot.outq) t.slots

let stop t =
  Atomic.set t.stopped true;
  Array.iter (fun slot -> Mpsc.wake slot.outq) t.slots;
  Array.iter
    (fun slot ->
      Option.iter Thread.join slot.writer;
      slot.writer <- None)
    t.slots;
  (* kill the children so every reader unblocks on EOF *)
  Array.iter kill_child t.slots;
  Array.iter
    (fun slot ->
      Mutex.lock slot.rm;
      let readers = slot.readers and fds = slot.old_fds in
      slot.readers <- [];
      slot.old_fds <- [];
      Mutex.unlock slot.rm;
      List.iter Thread.join readers;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        fds)
    t.slots

let lanes t = t.nservers
let sent t = Atomic.get t.sent
let delivered t = Atomic.get t.delivered
let duplicated t = Atomic.get t.duplicated
let delayed t = Atomic.get t.delayed
let slowed t = Atomic.get t.slowed
let dropped t = Atomic.get t.dropped
let cut t = Atomic.get t.cut

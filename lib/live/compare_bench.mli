(** The three-way space-vs-throughput-vs-fault-tolerance comparison:
    ABD, the paper's Algorithm 2, and the CDS multi-writer data store
    ({!Cds_live}, arXiv:1508.03762), raced on the same live cluster at
    the same load points and reported side by side.

    Each row of the emitted [regemu-compare/1] document is one
    (algorithm, backend, load point) cell carrying measured throughput,
    latency percentiles, the resident-space maxima sampled from the
    server stores ({!Cluster.resident_space}), and the paper-side
    predicted cluster-wide cell count for that configuration:

    - ABD: [2f+1] cells total (one unbounded max-register per replica,
      independent of the writer count);
    - Algorithm 2: {!Regemu_bounds.Formulas.register_upper_bound},
      i.e. [kf + ceil(k/z)(f+1)] cells spread across the cluster;
    - CDS: [k(2f+1)] cells (one slot per writer on every replica).

    The committed [BENCH_compare.json] is produced by [regemu compare];
    [regemu compare --smoke] runs the bounded variant in CI. *)

type load = {
  label : string;  (** row key, e.g. ["k2-f1"] *)
  k : int;  (** writers *)
  readers : int;
  f : int;
  n : int;
}

(** The full-bench load points: ["k2-f1"] (k=2, f=1, n=5) and
    ["k6-f2"] (k=6, f=2, n=7) — chosen so the three constructions'
    space budgets actually separate (at [k = 1] all three hold one
    resident cell per server). *)
val loads : load list

(** The CI smoke point: ["k2-f1"] with fewer readers. *)
val smoke_loads : load list

(** [Abd; Alg2; Cds] — one write-path per construction (the ABD
    write-back read variant occupies the same space as ABD and is
    left out). *)
val algos : Live_bench.algo list

(** [Threads; Domains].  The socket backend's stores live in child
    processes the space sampler cannot observe, so it is excluded
    from the comparison. *)
val backends : Transport.backend list

(** The predicted cluster-wide resident cell count for [algo] at a
    load point (see the module header). *)
val formula_cells_total : algo:Live_bench.algo -> load -> int

(** The full matrix as [(load, spec)] pairs: every load × algorithm ×
    backend, backends adjacent per (load, algo) so
    {!Live_bench.run_sweep_median}'s round-robin measures each
    threads/domains pair under the same machine weather.  Default
    [ops_per_client = 150]. *)
val specs :
  ?loads:load list -> ?ops_per_client:int -> seed:int -> unit -> (load * Live_bench.spec) list

(** {!specs} restricted to {!smoke_loads} at 25 ops per client. *)
val smoke_specs : seed:int -> unit -> (load * Live_bench.spec) list

type row = { load : load; outcome : Live_bench.outcome }

(** Run the matrix through {!Live_bench.run_sweep_median} and zip the
    load points back on.  Default [reps = 1]; pass [reps = 3] for the
    committed table. *)
val run :
  ?sink:Sink.t -> ?reps:int -> (load * Live_bench.spec) list -> row list

(** Every row's outcome is {!Live_bench.clean}. *)
val clean : row list -> bool

val row_pp : row Fmt.t

(** The [regemu-compare/1] document: schema id, seed, smoke flag,
    one row per (algorithm, backend, load), and an overall [clean]
    verdict. *)
val to_json : seed:int -> smoke:bool -> row list -> Regemu_obs.Json.t

(** Structural validation of a [regemu-compare/1] document — applied
    both to the document about to be written and to the bytes read
    back from disk: schema id, non-empty rows, known algorithm and
    backend names, numeric measurement fields, boolean [clean], and
    full coverage (exactly one row per algorithm × backend for every
    load label present — a missing or duplicated cell is an error). *)
val validate_compare_json : Regemu_obs.Json.t -> (unit, string) result

open Regemu_objects
open Regemu_netsim

type t = {
  cluster : Cluster.t;
  f : int;
  replicas : int list;
  write_back_reads : bool;
}

let create cluster ~f ?(write_back_reads = false) () =
  let needed = (2 * f) + 1 in
  if Cluster.num_servers cluster < needed then
    invalid_arg
      (Fmt.str "Abd_live.create: need at least %d servers, have %d" needed
         (Cluster.num_servers cluster));
  { cluster; f; replicas = List.init needed Fun.id; write_back_reads }

let replicas t = List.length t.replicas

(* issue a request built from a fresh rid per server, await [f+1]
   replies, fold them.  Without hedging this broadcasts to all
   replicas; with it, [rpc_quorum] contacts a health-biased subset
   first and hedges the rest.  [rpc] retransmits lost requests;
   replies are deduplicated per rid, so a reply counts toward the
   quorum once. *)
let quorum_round t cl ~request ~fold ~init =
  let quorum = t.f + 1 in
  let count = ref 0 in
  let acc = ref init in
  Cluster.locked cl (fun () ->
      Cluster.rpc_quorum t.cluster ~src:cl ~quorum ~make:request
        ~handler:(fun reply ->
          acc := fold !acc reply;
          incr count)
        t.replicas);
  Cluster.await t.cluster cl
    ~need:(t.replicas, quorum)
    (fun () -> !count >= quorum);
  Cluster.locked cl (fun () -> !acc)

let query_max t cl =
  quorum_round t cl
    ~request:(fun rid -> Proto.Query { rid })
    ~init:Value.v0
    ~fold:(fun best reply ->
      match reply with
      | Proto.Query_reply { stored; _ } -> Value.max best stored
      | _ -> best)

let update t cl ts_val =
  ignore
    (quorum_round t cl
       ~request:(fun rid -> Proto.Update { rid; proposed = ts_val })
       ~init:() ~fold:(fun () _ -> ()))

let write t cl v =
  ignore
    (Cluster.invoke t.cluster cl (Regemu_sim.Trace.H_write v) (fun () ->
         let latest = query_max t cl in
         update t cl (Value.with_ts (Value.ts latest + 1) v);
         Value.Unit))

let read t cl =
  Cluster.invoke t.cluster cl Regemu_sim.Trace.H_read (fun () ->
      let latest = query_max t cl in
      if t.write_back_reads then update t cl latest;
      Value.payload latest)

include Regemu_obs.Json

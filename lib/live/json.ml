type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let rec emit b indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 1));
          emit b (indent + 1) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 1));
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b (indent + 1) x)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b 0 v;
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(** The nil-by-default observability seam — the {!Sched_hook} pattern
    applied to tracing and metrics.

    A {!t} bundles an optional {!Regemu_obs.Trace.t} and an optional
    {!Regemu_obs.Metrics.t}.  Instrumented components thread one
    through construction, hold per-actor [recorder option]s, and emit
    through the wrappers here: with {!none} (the default everywhere)
    every emission is a single [match] on [None], every counter a plain
    unregistered [Atomic.t] — the uninstrumented hot path is
    unchanged.

    {!counter} and {!histogram} return live handles either way; only
    {e registration} (visibility in snapshots) depends on the sink.
    That is how the registry subsumes the pre-existing ad-hoc atomics:
    the same atomic the stats accessors read {e is} the registered
    metric. *)

module Trace = Regemu_obs.Trace
module Event = Regemu_obs.Event
module Metrics = Regemu_obs.Metrics

type t

val none : t
val make : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t
val is_none : t -> bool
val trace : t -> Trace.t option
val metrics : t -> Metrics.t option

(** [None] when the sink carries no trace. *)
val recorder : t -> name:string -> Trace.recorder option

(** {2 Emission through an optional recorder} *)

val instant :
  ?args:(string * Event.arg) list ->
  cat:string ->
  Trace.recorder option ->
  string ->
  unit

val span_begin :
  ?args:(string * Event.arg) list ->
  cat:string ->
  Trace.recorder option ->
  string ->
  unit

val span_end :
  ?args:(string * Event.arg) list ->
  cat:string ->
  Trace.recorder option ->
  string ->
  unit

(** [false] when untraced — callers skip span bookkeeping entirely. *)
val sample_op : Trace.recorder option -> bool

val sample_msg : Trace.recorder option -> bool

(** {2 Metrics handles (registered iff the sink has a registry)} *)

val counter :
  t -> ?unit_:string -> ?help:string -> string -> Metrics.counter

val histogram :
  t ->
  ?unit_:string ->
  ?help:string ->
  edges:int array ->
  string ->
  Metrics.histogram

(** Register a polled gauge; no-op without a registry. *)
val gauge_fn :
  t -> ?unit_:string -> ?help:string -> string -> (unit -> int) -> unit

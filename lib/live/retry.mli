(** Client-side retransmission policy: per-request backoff state with
    exponential growth and decorrelated jitter, plus the per-operation
    deadline and the watchdog grace period.

    The mechanics live here; {!Cluster.rpc} registers a {!pending}
    per in-flight request and {!Cluster.await} retransmits the ones
    {!due} whenever the awaiting client thread wakes (a reply arrived
    or the heartbeat fired).  Retransmissions reuse the original
    request id, so the cluster's one-shot reply dispatch doubles as
    duplicate-reply suppression: the first reply consumes the handler
    and the pending entry, later copies are ignored. *)

type config = {
  base_s : float;  (** first retransmission after this long *)
  cap_s : float;  (** backoff ceiling *)
  deadline_s : float;
      (** per-operation deadline: an operation older than this fails
          with {!Cluster.Unavailable} instead of retrying forever *)
  grace_s : float;
      (** how long an await must be stalled before the liveness
          watchdog may fail it fast on a lost quorum *)
}

(** 80ms base, 1s cap, 10s deadline, 300ms grace. *)
val default_config : config

(** Raises [Invalid_argument] on non-positive times or [cap < base]. *)
val validate : config -> unit

type pending = {
  server : int;
  payload : Regemu_netsim.Proto.payload;  (** fixed rid: resent verbatim *)
  sticky : bool;
      (** survive the end of the await that created it — used by the
          covering-discipline writes of Algorithm 2, which must chase
          their acknowledgement across operations *)
  mutable tries : int;  (** retransmissions so far *)
  mutable backoff_s : float;
  mutable next_at : float;
}

val make :
  config -> now:float -> server:int -> sticky:bool ->
  Regemu_netsim.Proto.payload -> pending

(** [due cfg rng ~now p] is [true] when [p] should be retransmitted
    now; in that case the backoff state is advanced (decorrelated
    jitter, capped). *)
val due : config -> Regemu_sim.Rng.t -> now:float -> pending -> bool

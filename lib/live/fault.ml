(* the gray repertoire: slow-not-dead faults the crash/restart loop
   cannot express.  Every mode is driven by the injector's seeded rng,
   so a (seed, config) pair replays the same gray timeline. *)
type gray =
  | Straggler of int  (* one seeded server, fixed +us on its link *)
  | Rotating of int  (* the +us slowdown re-picks its victim each step *)
  | Stutter  (* freeze a random lane one step, thaw it the next *)
  | Creep of { step_us : int; max_us : int }
      (* one server degrades by [step_us] per step up to [max_us] *)

type config = {
  f : int;
  pool : int;
  period_s : float;
  leave_crashed : int;
  gray : gray option;
  gray_period_s : float;
  seed : int;
}

let default_config ~f ~pool ~seed =
  {
    f;
    pool;
    period_s = 0.002;
    leave_crashed = min f 1;
    gray = None;
    gray_period_s = 0.01;
    seed;
  }

type t = {
  cfg : config;
  cluster : Cluster.t;
  frec : Sink.Trace.recorder option;  (* the injector's decisions *)
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable gthread : Thread.t option;
  alarm : Alarm.t;  (* interrupts the threaded pauses at [stop] *)
  mutable crashed : int list;  (* injector-thread private *)
  mutable crashes : int;
  mutable restarts : int;
  (* gray-thread private *)
  mutable gtarget : int option;  (* the server currently slowed/frozen *)
  mutable gcur_us : int;  (* creep's accumulated slowdown *)
  mutable gfrozen : bool;  (* stutter: is the target mid-burst? *)
  mutable grays : int;
}

let decide t name s =
  Sink.instant t.frec ~cat:"fault" ~args:[ ("server", Sink.Event.I s) ] name

let jitter rng p =
  (* 0.5x .. 1.5x the period *)
  p *. (0.5 +. float_of_int (Regemu_sim.Rng.int rng ~bound:1000) /. 1000.)

(* threaded pauses park on the injector's {!Alarm}: [stop] rings it,
   so ending a run never waits out a pending period (the old
   slice-and-poll loop still paid up to one 25ms slice).  Under
   [sched] the sleep is virtual and join-free, so it stays a single
   (deterministic) timed park. *)
let interruptible_pause t d = if t.running then Alarm.wait t.alarm d

let injector_loop ?sched t =
  let pause =
    match sched with
    | None -> interruptible_pause t
    | Some (hook : Sched_hook.t) -> hook.sleep
  in
  let rng = Regemu_sim.Rng.create t.cfg.seed in
  while t.running do
    pause (jitter rng t.cfg.period_s);
    if t.running then begin
      let up =
        List.filter
          (fun s -> not (List.mem s t.crashed))
          (List.init t.cfg.pool Fun.id)
      in
      let may_crash = List.length t.crashed < t.cfg.f && up <> [] in
      let may_restart = t.crashed <> [] in
      match (may_crash, may_restart) with
      | false, false -> ()
      | true, false | true, true when Regemu_sim.Rng.bool rng || not may_restart
        ->
          let s = Regemu_sim.Rng.pick rng up in
          decide t "inject-crash" s;
          Cluster.crash t.cluster s;
          t.crashed <- s :: t.crashed;
          t.crashes <- t.crashes + 1
      | _ ->
          let s = Regemu_sim.Rng.pick rng t.crashed in
          decide t "inject-restart" s;
          Cluster.restart t.cluster s;
          t.crashed <- List.filter (fun x -> x <> s) t.crashed;
          t.restarts <- t.restarts + 1
    end
  done

(* One gray step.  Crashed servers are fair game — a slow link on a
   down server is a no-op until it restarts, which is itself a gray
   scenario (the replica comes back already degraded). *)
let gray_step t rng mode =
  let pick () = Regemu_sim.Rng.int rng ~bound:t.cfg.pool in
  let slow s us =
    decide t "inject-slow" s;
    Cluster.set_slow t.cluster ~server:s us;
    t.grays <- t.grays + 1
  in
  (match mode with
  | Straggler us ->
      (* fixed victim, picked (seeded) on the first step *)
      let s =
        match t.gtarget with
        | Some s -> s
        | None ->
            let s = pick () in
            t.gtarget <- Some s;
            s
      in
      slow s us
  | Rotating us ->
      Option.iter
        (fun prev ->
          decide t "inject-heal-slow" prev;
          Cluster.set_slow t.cluster ~server:prev 0)
        t.gtarget;
      let s = pick () in
      t.gtarget <- Some s;
      slow s us
  | Stutter ->
      if t.gfrozen then begin
        Option.iter
          (fun s ->
            decide t "inject-thaw" s;
            Cluster.thaw t.cluster ~server:s)
          t.gtarget;
        t.gfrozen <- false;
        t.gtarget <- None
      end
      else begin
        let s = pick () in
        decide t "inject-freeze" s;
        Cluster.freeze t.cluster ~server:s;
        t.gtarget <- Some s;
        t.gfrozen <- true;
        t.grays <- t.grays + 1
      end
  | Creep { step_us; max_us } ->
      let s =
        match t.gtarget with
        | Some s -> s
        | None ->
            let s = pick () in
            t.gtarget <- Some s;
            s
      in
      t.gcur_us <- min max_us (t.gcur_us + step_us);
      slow s t.gcur_us);
  ()

let gray_loop ?sched t mode =
  let pause =
    match sched with
    | None -> interruptible_pause t
    | Some (hook : Sched_hook.t) -> hook.sleep
  in
  (* a distinct seeded stream: the gray timeline must not perturb the
     crash/restart decisions (and vice versa) *)
  let rng = Regemu_sim.Rng.create (t.cfg.seed + 0x9e37) in
  while t.running do
    pause (jitter rng t.cfg.gray_period_s);
    if t.running then gray_step t rng mode
  done

let validate_config cfg =
  if cfg.f < 0 then invalid_arg "Fault: f must be >= 0";
  if cfg.leave_crashed < 0 || cfg.leave_crashed > cfg.f then
    invalid_arg "Fault: leave_crashed must be in [0, f]";
  if cfg.pool < (2 * cfg.f) + 1 then
    invalid_arg
      (Fmt.str
         "Fault: pool=%d too small — crashing up to f=%d servers needs a \
          pool of at least 2f+1=%d"
         cfg.pool cfg.f ((2 * cfg.f) + 1));
  if not (cfg.period_s > 0.0) then
    invalid_arg "Fault: period_s must be positive";
  if not (cfg.gray_period_s > 0.0) then
    invalid_arg "Fault: gray_period_s must be positive";
  match cfg.gray with
  | Some (Straggler us | Rotating us) when us < 0 ->
      invalid_arg "Fault: gray slowdown must be >= 0 us"
  | Some (Creep { step_us; max_us }) when step_us <= 0 || max_us < step_us ->
      invalid_arg "Fault: creep needs 0 < step_us <= max_us"
  | _ -> ()

let spawn ?sched cluster cfg =
  validate_config cfg;
  let t =
    {
      cfg;
      cluster;
      frec = Sink.recorder (Cluster.sink cluster) ~name:"injector";
      running = true;
      thread = None;
      gthread = None;
      alarm = Alarm.create ();
      crashed = [];
      crashes = 0;
      restarts = 0;
      gtarget = None;
      gcur_us = 0;
      gfrozen = false;
      grays = 0;
    }
  in
  (match sched with
  | None ->
      t.thread <- Some (Thread.create (injector_loop ?sched:None) t);
      Option.iter
        (fun mode ->
          t.gthread <- Some (Thread.create (gray_loop ?sched:None t) mode))
        cfg.gray
  | Some hook ->
      hook.Sched_hook.spawn ~name:"injector" (fun () ->
          injector_loop ~sched:hook t);
      Option.iter
        (fun mode ->
          hook.Sched_hook.spawn ~name:"gray-injector" (fun () ->
              gray_loop ~sched:hook t mode))
        cfg.gray);
  t

let stop t =
  t.running <- false;
  Alarm.ring t.alarm;
  Option.iter Thread.join t.thread;
  t.thread <- None;
  Option.iter Thread.join t.gthread;
  t.gthread <- None;
  Alarm.close t.alarm;
  (* clear every gray fault we may have left behind: slow links reset,
     frozen lanes thawed — gray faults never outlive their injector *)
  if t.cfg.gray <> None then begin
    Cluster.heal_gray t.cluster;
    t.gtarget <- None;
    t.gcur_us <- 0;
    t.gfrozen <- false
  end;
  (* leave at most [leave_crashed] down; revive the rest *)
  let rec revive = function
    | [] -> []
    | keep when List.length keep <= t.cfg.leave_crashed -> keep
    | s :: rest ->
        decide t "inject-restart" s;
        Cluster.restart t.cluster s;
        t.restarts <- t.restarts + 1;
        revive rest
  in
  t.crashed <- revive t.crashed

let crashes t = t.crashes
let restarts t = t.restarts
let grays t = t.grays

type config = {
  f : int;
  pool : int;
  period_s : float;
  leave_crashed : int;
  seed : int;
}

let default_config ~f ~pool ~seed =
  { f; pool; period_s = 0.002; leave_crashed = min f 1; seed }

type t = {
  cfg : config;
  cluster : Cluster.t;
  frec : Sink.Trace.recorder option;  (* the injector's decisions *)
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable crashed : int list;  (* injector-thread private *)
  mutable crashes : int;
  mutable restarts : int;
}

let decide t name s =
  Sink.instant t.frec ~cat:"fault" ~args:[ ("server", Sink.Event.I s) ] name

let jitter rng p =
  (* 0.5x .. 1.5x the period *)
  p *. (0.5 +. float_of_int (Regemu_sim.Rng.int rng ~bound:1000) /. 1000.)

let injector_loop ?sched t =
  let pause =
    match sched with
    | None -> Thread.delay
    | Some (hook : Sched_hook.t) -> hook.sleep
  in
  let rng = Regemu_sim.Rng.create t.cfg.seed in
  while t.running do
    pause (jitter rng t.cfg.period_s);
    if t.running then begin
      let up =
        List.filter
          (fun s -> not (List.mem s t.crashed))
          (List.init t.cfg.pool Fun.id)
      in
      let may_crash = List.length t.crashed < t.cfg.f && up <> [] in
      let may_restart = t.crashed <> [] in
      match (may_crash, may_restart) with
      | false, false -> ()
      | true, false | true, true when Regemu_sim.Rng.bool rng || not may_restart
        ->
          let s = Regemu_sim.Rng.pick rng up in
          decide t "inject-crash" s;
          Cluster.crash t.cluster s;
          t.crashed <- s :: t.crashed;
          t.crashes <- t.crashes + 1
      | _ ->
          let s = Regemu_sim.Rng.pick rng t.crashed in
          decide t "inject-restart" s;
          Cluster.restart t.cluster s;
          t.crashed <- List.filter (fun x -> x <> s) t.crashed;
          t.restarts <- t.restarts + 1
    end
  done

let validate_config cfg =
  if cfg.f < 0 then invalid_arg "Fault: f must be >= 0";
  if cfg.leave_crashed < 0 || cfg.leave_crashed > cfg.f then
    invalid_arg "Fault: leave_crashed must be in [0, f]";
  if cfg.pool < (2 * cfg.f) + 1 then
    invalid_arg
      (Fmt.str
         "Fault: pool=%d too small — crashing up to f=%d servers needs a \
          pool of at least 2f+1=%d"
         cfg.pool cfg.f ((2 * cfg.f) + 1));
  if not (cfg.period_s > 0.0) then
    invalid_arg "Fault: period_s must be positive"

let spawn ?sched cluster cfg =
  validate_config cfg;
  let t =
    {
      cfg;
      cluster;
      frec = Sink.recorder (Cluster.sink cluster) ~name:"injector";
      running = true;
      thread = None;
      crashed = [];
      crashes = 0;
      restarts = 0;
    }
  in
  (match sched with
  | None -> t.thread <- Some (Thread.create (injector_loop ?sched:None) t)
  | Some hook ->
      hook.Sched_hook.spawn ~name:"injector" (fun () ->
          injector_loop ~sched:hook t));
  t

let stop t =
  t.running <- false;
  Option.iter Thread.join t.thread;
  t.thread <- None;
  (* leave at most [leave_crashed] down; revive the rest *)
  let rec revive = function
    | [] -> []
    | keep when List.length keep <= t.cfg.leave_crashed -> keep
    | s :: rest ->
        decide t "inject-restart" s;
        Cluster.restart t.cluster s;
        t.restarts <- t.restarts + 1;
        revive rest
  in
  t.crashed <- revive t.crashed

let crashes t = t.crashes
let restarts t = t.restarts

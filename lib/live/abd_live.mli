(** Multi-writer ABD over a live {!Cluster} — the same quorum protocol
    as {!Regemu_netsim.Abd_net}, with blocking awaits in place of
    simulator fibers.

    A write queries [2f+1] servers for the largest timestamped value,
    waits for [f+1] replies, then updates the servers with a larger
    timestamp and waits for [f+1] acks.  A read performs the query
    round and, with [write_back_reads], also the update round (the
    atomic variant).  Wait-free with at most [f] crashed servers. *)

open Regemu_objects

type t

(** Needs at least [2f+1] servers; uses the first [2f+1]. *)
val create : Cluster.t -> f:int -> ?write_back_reads:bool -> unit -> t

val replicas : t -> int

(** Blocking; records the operation in the cluster history. *)
val write : t -> Cluster.client -> Value.t -> unit

val read : t -> Cluster.client -> Value.t

type dest = To_server of int | To_client of int

type envelope = { src : int; dest : dest; payload : Regemu_netsim.Proto.payload }

type config = {
  couriers : int;
  delay_prob : float;
  max_delay_us : int;
  dup_prob : float;
  reorder : bool;
  seed : int;
}

let default_config ~seed =
  {
    couriers = 2;
    delay_prob = 0.0;
    max_delay_us = 0;
    dup_prob = 0.0;
    reorder = true;
    seed;
  }

type t = {
  cfg : config;
  deliver : envelope -> unit;
  m : Mutex.t;
  c : Condition.t;
  q : envelope Queue.t;
  rng : Regemu_sim.Rng.t;  (* protected by [m] *)
  mutable stopped : bool;
  mutable threads : Thread.t list;
  mutable sent : int;
  mutable duplicated : int;
  mutable delayed : int;
  delivered : int Atomic.t;
}

let create cfg ~deliver =
  if cfg.couriers < 1 then invalid_arg "Transport.create: need >= 1 courier";
  {
    cfg;
    deliver;
    m = Mutex.create ();
    c = Condition.create ();
    q = Queue.create ();
    rng = Regemu_sim.Rng.create cfg.seed;
    stopped = false;
    threads = [];
    sent = 0;
    duplicated = 0;
    delayed = 0;
    delivered = Atomic.make 0;
  }

(* [p] as an event on a seeded integer rng *)
let hit rng p =
  p > 0.0 && Regemu_sim.Rng.int rng ~bound:1_000_000 < int_of_float (p *. 1e6)

(* remove the [i]-th element of the queue *)
let take_nth q i =
  let tmp = Queue.create () in
  let rec skip k =
    if k = 0 then ()
    else begin
      Queue.push (Queue.pop q) tmp;
      skip (k - 1)
    end
  in
  skip i;
  let x = Queue.pop q in
  Queue.transfer q tmp;
  Queue.transfer tmp q;
  x

let rec courier_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.stopped do
    Condition.wait t.c t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let env =
      if t.cfg.reorder && Queue.length t.q > 1 then
        take_nth t.q (Regemu_sim.Rng.int t.rng ~bound:(Queue.length t.q))
      else Queue.pop t.q
    in
    let delay_us =
      if hit t.rng t.cfg.delay_prob && t.cfg.max_delay_us > 0 then begin
        t.delayed <- t.delayed + 1;
        1 + Regemu_sim.Rng.int t.rng ~bound:t.cfg.max_delay_us
      end
      else 0
    in
    Mutex.unlock t.m;
    if delay_us > 0 then Thread.delay (float_of_int delay_us *. 1e-6);
    t.deliver env;
    Atomic.incr t.delivered;
    courier_loop t
  end

let start t =
  t.threads <- List.init t.cfg.couriers (fun _ -> Thread.create courier_loop t)

let send t env =
  Mutex.lock t.m;
  if not t.stopped then begin
    Queue.push env t.q;
    t.sent <- t.sent + 1;
    Condition.signal t.c;
    if hit t.rng t.cfg.dup_prob then begin
      Queue.push env t.q;
      t.sent <- t.sent + 1;
      t.duplicated <- t.duplicated + 1;
      Condition.signal t.c
    end
  end;
  Mutex.unlock t.m

let stop t =
  Mutex.lock t.m;
  t.stopped <- true;
  Queue.clear t.q;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Thread.join t.threads;
  t.threads <- []

let sent t =
  Mutex.lock t.m;
  let v = t.sent in
  Mutex.unlock t.m;
  v

let delivered t = Atomic.get t.delivered

let duplicated t =
  Mutex.lock t.m;
  let v = t.duplicated in
  Mutex.unlock t.m;
  v

let delayed t =
  Mutex.lock t.m;
  let v = t.delayed in
  Mutex.unlock t.m;
  v

(* The transport seam: one message-fabric API, three backends.

   [Threads] is the seeded in-process courier fabric
   ({!Transport_courier}) — the deterministic backend, and the only
   one a {!Sched_hook} can drive, so the presence of a scheduler
   forces it regardless of the configured backend.  [Domains] runs
   each server lane in its own OCaml 5 domain over lock-free MPSC
   rings ({!Transport_domains}); [Socket] runs each server as a
   forked process behind the binary codec ({!Transport_socket}).
   Everything above this module — Cluster, the algorithms, the
   nemesis, the checkers — is backend-agnostic. *)

type backend = Transport_intf.backend = Threads | Domains | Socket

let backend_name = Transport_intf.backend_name
let backend_of_name = Transport_intf.backend_of_name
let backend_pp = Transport_intf.backend_pp

type dest = Transport_intf.dest = To_server of int | To_client of int

type envelope = Transport_intf.envelope = {
  src : int;
  dest : dest;
  payload : Regemu_netsim.Proto.payload;
}

type config = Transport_intf.config = {
  couriers : int;
  delay_prob : float;
  max_delay_us : int;
  dup_prob : float;
  drop_prob : float;
  reorder : bool;
  sharded : bool;
  backend : backend;
  seed : int;
}

let default_config ~seed =
  {
    couriers = 2;
    delay_prob = 0.0;
    max_delay_us = 0;
    dup_prob = 0.0;
    drop_prob = 0.0;
    reorder = true;
    sharded = true;
    backend = Threads;
    seed;
  }

(* the scheduler owns all concurrency in a DST run: only the courier
   fabric cooperates with it, so [?sched] wins over [cfg.backend] *)
let effective_backend ?sched cfg =
  match sched with Some _ -> Threads | None -> cfg.backend

type t =
  | C of Transport_courier.t
  | D of Transport_domains.t
  | S of Transport_socket.t

let create ?sched ?sink ?server_regs cfg ~servers ~deliver =
  match effective_backend ?sched cfg with
  | Threads -> C (Transport_courier.create ?sched ?sink cfg ~servers ~deliver)
  | Domains -> D (Transport_domains.create ?sink cfg ~servers ~deliver)
  | Socket ->
      S
        (Transport_socket.create ?sink cfg ~servers ~deliver
           ~server_regs:(Option.value server_regs ~default:(fun _ -> 0)))

let backend = function C _ -> Threads | D _ -> Domains | S _ -> Socket

let start = function
  | C x -> Transport_courier.start x
  | D x -> Transport_domains.start x
  | S x -> Transport_socket.start x

let send t env =
  match t with
  | C x -> Transport_courier.send x env
  | D x -> Transport_domains.send x env
  | S x -> Transport_socket.send x env

let set_server_up t ~server v =
  match t with
  | C _ -> ()  (* courier delivery is up-agnostic: the mailbox gates *)
  | D x -> Transport_domains.set_server_up x ~server v
  | S x -> Transport_socket.set_server_up x ~server v

let split t ~groups ~clients_with =
  match t with
  | C x -> Transport_courier.split x ~groups ~clients_with
  | D x -> Transport_domains.split x ~groups ~clients_with
  | S x -> Transport_socket.split x ~groups ~clients_with

let heal = function
  | C x -> Transport_courier.heal x
  | D x -> Transport_domains.heal x
  | S x -> Transport_socket.heal x

let set_drop t ?requests ?replies () =
  match t with
  | C x -> Transport_courier.set_drop x ?requests ?replies ()
  | D x -> Transport_domains.set_drop x ?requests ?replies ()
  | S x -> Transport_socket.set_drop x ?requests ?replies ()

let reachable t ~server =
  match t with
  | C x -> Transport_courier.reachable x ~server
  | D x -> Transport_domains.reachable x ~server
  | S x -> Transport_socket.reachable x ~server

let set_slow t ~server us =
  match t with
  | C x -> Transport_courier.set_slow x ~server us
  | D x -> Transport_domains.set_slow x ~server us
  | S x -> Transport_socket.set_slow x ~server us

let slow_us t ~server =
  match t with
  | C x -> Transport_courier.slow_us x ~server
  | D x -> Transport_domains.slow_us x ~server
  | S x -> Transport_socket.slow_us x ~server

let freeze t ~server =
  match t with
  | C x -> Transport_courier.freeze x ~server
  | D x -> Transport_domains.freeze x ~server
  | S x -> Transport_socket.freeze x ~server

let thaw t ~server =
  match t with
  | C x -> Transport_courier.thaw x ~server
  | D x -> Transport_domains.thaw x ~server
  | S x -> Transport_socket.thaw x ~server

let frozen t ~server =
  match t with
  | C x -> Transport_courier.frozen x ~server
  | D x -> Transport_domains.frozen x ~server
  | S x -> Transport_socket.frozen x ~server

let heal_gray = function
  | C x -> Transport_courier.heal_gray x
  | D x -> Transport_domains.heal_gray x
  | S x -> Transport_socket.heal_gray x

let stop = function
  | C x -> Transport_courier.stop x
  | D x -> Transport_domains.stop x
  | S x -> Transport_socket.stop x

let lanes = function
  | C x -> Transport_courier.lanes x
  | D x -> Transport_domains.lanes x
  | S x -> Transport_socket.lanes x

let sent = function
  | C x -> Transport_courier.sent x
  | D x -> Transport_domains.sent x
  | S x -> Transport_socket.sent x

let delivered = function
  | C x -> Transport_courier.delivered x
  | D x -> Transport_domains.delivered x
  | S x -> Transport_socket.delivered x

let duplicated = function
  | C x -> Transport_courier.duplicated x
  | D x -> Transport_domains.duplicated x
  | S x -> Transport_socket.duplicated x

let delayed = function
  | C x -> Transport_courier.delayed x
  | D x -> Transport_domains.delayed x
  | S x -> Transport_socket.delayed x

let slowed = function
  | C x -> Transport_courier.slowed x
  | D x -> Transport_domains.slowed x
  | S x -> Transport_socket.slowed x

let dropped = function
  | C x -> Transport_courier.dropped x
  | D x -> Transport_domains.dropped x
  | S x -> Transport_socket.dropped x

let cut = function
  | C x -> Transport_courier.cut x
  | D x -> Transport_domains.cut x
  | S x -> Transport_socket.cut x

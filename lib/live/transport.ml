type dest = To_server of int | To_client of int

type envelope = { src : int; dest : dest; payload : Regemu_netsim.Proto.payload }

type config = {
  couriers : int;
  delay_prob : float;
  max_delay_us : int;
  dup_prob : float;
  drop_prob : float;
  reorder : bool;
  seed : int;
}

let default_config ~seed =
  {
    couriers = 2;
    delay_prob = 0.0;
    max_delay_us = 0;
    dup_prob = 0.0;
    drop_prob = 0.0;
    reorder = true;
    seed;
  }

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Fmt.str "Transport: %s=%g not a probability in [0,1]" what p)

let validate_config cfg =
  if cfg.couriers < 1 then invalid_arg "Transport.create: need >= 1 courier";
  if cfg.max_delay_us < 0 then
    invalid_arg "Transport.create: max_delay_us must be >= 0";
  check_prob "delay_prob" cfg.delay_prob;
  check_prob "dup_prob" cfg.dup_prob;
  check_prob "drop_prob" cfg.drop_prob

type t = {
  cfg : config;
  deliver : envelope -> unit;
  m : Mutex.t;
  c : Condition.t;
  q : envelope Queue.t;
  rng : Regemu_sim.Rng.t;  (* protected by [m] *)
  mutable stopped : bool;
  mutable threads : Thread.t list;
  mutable sent : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable dropped : int;
  mutable cut : int;
  (* hostile-network state, protected by [m] *)
  mutable drop_requests : float;
  mutable drop_replies : float;
  mutable groups : (int, int) Hashtbl.t option;  (* server -> group id *)
  mutable client_group : int;
  delivered : int Atomic.t;
}

let create cfg ~deliver =
  validate_config cfg;
  {
    cfg;
    deliver;
    m = Mutex.create ();
    c = Condition.create ();
    q = Queue.create ();
    rng = Regemu_sim.Rng.create cfg.seed;
    stopped = false;
    threads = [];
    sent = 0;
    duplicated = 0;
    delayed = 0;
    dropped = 0;
    cut = 0;
    drop_requests = cfg.drop_prob;
    drop_replies = cfg.drop_prob;
    groups = None;
    client_group = 0;
    delivered = Atomic.make 0;
  }

(* [p] as an event on a seeded integer rng *)
let hit rng p =
  p > 0.0 && Regemu_sim.Rng.int rng ~bound:1_000_000 < int_of_float (p *. 1e6)

(* remove the [i]-th element of the queue *)
let take_nth q i =
  let tmp = Queue.create () in
  let rec skip k =
    if k = 0 then ()
    else begin
      Queue.push (Queue.pop q) tmp;
      skip (k - 1)
    end
  in
  skip i;
  let x = Queue.pop q in
  Queue.transfer q tmp;
  Queue.transfer tmp q;
  x

let rec courier_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.stopped do
    Condition.wait t.c t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let env =
      if t.cfg.reorder && Queue.length t.q > 1 then
        take_nth t.q (Regemu_sim.Rng.int t.rng ~bound:(Queue.length t.q))
      else Queue.pop t.q
    in
    let delay_us =
      if hit t.rng t.cfg.delay_prob && t.cfg.max_delay_us > 0 then begin
        t.delayed <- t.delayed + 1;
        1 + Regemu_sim.Rng.int t.rng ~bound:t.cfg.max_delay_us
      end
      else 0
    in
    Mutex.unlock t.m;
    if delay_us > 0 then Thread.delay (float_of_int delay_us *. 1e-6);
    t.deliver env;
    Atomic.incr t.delivered;
    courier_loop t
  end

let start t =
  t.threads <- List.init t.cfg.couriers (fun _ -> Thread.create courier_loop t)

(* caller holds [t.m].  Which server is this envelope's link attached
   to?  (Clients are not partitioned among themselves.) *)
let link_server env =
  match env.dest with To_server s -> s | To_client _ -> env.src

let reachable_locked t ~server =
  match t.groups with
  | None -> true
  | Some g -> Hashtbl.find_opt g server = Some t.client_group

let send t env =
  Mutex.lock t.m;
  if not t.stopped then begin
    if not (reachable_locked t ~server:(link_server env)) then
      t.cut <- t.cut + 1
    else
      let drop_p =
        if Regemu_netsim.Proto.is_reply env.payload then t.drop_replies
        else t.drop_requests
      in
      if hit t.rng drop_p then t.dropped <- t.dropped + 1
      else begin
        Queue.push env t.q;
        t.sent <- t.sent + 1;
        Condition.signal t.c;
        if hit t.rng t.cfg.dup_prob then begin
          Queue.push env t.q;
          t.sent <- t.sent + 1;
          t.duplicated <- t.duplicated + 1;
          Condition.signal t.c
        end
      end
  end;
  Mutex.unlock t.m

(* --- hostile-network controls ------------------------------------------ *)

let split t ~groups ~clients_with =
  if groups = [] then invalid_arg "Transport.split: no groups";
  if clients_with < 0 || clients_with >= List.length groups then
    invalid_arg
      (Fmt.str "Transport.split: clients_with=%d not a group index"
         clients_with);
  let h = Hashtbl.create 16 in
  List.iteri
    (fun gi servers ->
      List.iter
        (fun s ->
          if s < 0 then invalid_arg "Transport.split: negative server id";
          if Hashtbl.mem h s then
            invalid_arg
              (Fmt.str "Transport.split: server %d appears in two groups" s);
          Hashtbl.replace h s gi)
        servers)
    groups;
  Mutex.lock t.m;
  t.groups <- Some h;
  t.client_group <- clients_with;
  Mutex.unlock t.m

let heal t =
  Mutex.lock t.m;
  t.groups <- None;
  t.client_group <- 0;
  Mutex.unlock t.m

let set_drop t ?requests ?replies () =
  Option.iter (check_prob "requests") requests;
  Option.iter (check_prob "replies") replies;
  Mutex.lock t.m;
  Option.iter (fun p -> t.drop_requests <- p) requests;
  Option.iter (fun p -> t.drop_replies <- p) replies;
  Mutex.unlock t.m

let reachable t ~server =
  Mutex.lock t.m;
  let v = reachable_locked t ~server in
  Mutex.unlock t.m;
  v

let stop t =
  Mutex.lock t.m;
  t.stopped <- true;
  Queue.clear t.q;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Thread.join t.threads;
  t.threads <- []

let counter t f =
  Mutex.lock t.m;
  let v = f t in
  Mutex.unlock t.m;
  v

let sent t = counter t (fun t -> t.sent)
let delivered t = Atomic.get t.delivered
let duplicated t = counter t (fun t -> t.duplicated)
let delayed t = counter t (fun t -> t.delayed)
let dropped t = counter t (fun t -> t.dropped)
let cut t = counter t (fun t -> t.cut)

(* A lock-free multi-producer single-consumer queue (Vyukov's
   intrusive MPSC), plus an eventcount so the consumer can park when
   the queue is truly idle.

   Push is one [Atomic.exchange] on the tail followed by one
   [Atomic.set] linking the predecessor — no mutex, no condvar, no CAS
   retry loop on the send path.  The only lock is the park mutex, and
   a producer touches it only when the consumer has published that it
   is parked (an idle lane), so the hot path of a busy lane is purely
   atomic.

   Ordering guarantees: the total pop order is some interleaving of
   the producers' push orders, and each producer's elements come out
   in its own push order (per-producer FIFO).  With a single producer
   the queue is exactly FIFO.

   The park protocol is the standard eventcount argument, relying on
   OCaml [Atomic] operations being sequentially consistent: the
   consumer publishes [parked := true] *before* re-checking emptiness,
   and a producer reads [parked] *after* linking its node.  Either the
   consumer's emptiness check observes the new node, or that check
   precedes the link in the SC total order — in which case the
   consumer's [parked := true] precedes the producer's [parked] read,
   so the producer takes the mutex and signals.  Because the consumer
   holds the park mutex from publishing [parked] until the condvar
   wait releases it, the signal cannot fire in the gap. *)

type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  mutable head : 'a node;  (* consumer-owned; a consumed stub *)
  tail : 'a node Atomic.t;
  parked : bool Atomic.t;
  m : Mutex.t;
  c : Condition.t;
  pushed : int Atomic.t;
  popped : int Atomic.t;
}

let create () =
  let stub = { value = None; next = Atomic.make None } in
  {
    head = stub;
    tail = Atomic.make stub;
    parked = Atomic.make false;
    m = Mutex.create ();
    c = Condition.create ();
    pushed = Atomic.make 0;
    popped = Atomic.make 0;
  }

let push t x =
  let n = { value = Some x; next = Atomic.make None } in
  let prev = Atomic.exchange t.tail n in
  (* the queue is momentarily "torn" between the exchange and this
     link; the consumer treats an unlinked suffix as not-yet-there *)
  Atomic.set prev.next (Some n);
  Atomic.incr t.pushed;
  if Atomic.get t.parked then begin
    Mutex.lock t.m;
    Condition.broadcast t.c;
    Mutex.unlock t.m
  end

(* single consumer only *)
let try_pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
      let v = n.value in
      n.value <- None;  (* drop the reference; [n] becomes the stub *)
      t.head <- n;
      Atomic.incr t.popped;
      v

(* Conservative: [true] may be stale the instant it returns, and a
   pushed-but-not-yet-linked node reads as absent — the park protocol
   compensates (the producer signals after linking). *)
let is_empty t = Atomic.get t.head.next = None

let length t = Atomic.get t.pushed - Atomic.get t.popped

(* Park until [ready ()] — re-checked after every wake-up.  The
   predicate must read only [Atomic] state (the queue itself, stop
   flags, gate flags): producers and [wake] callers signal blindly and
   the predicate decides. *)
let park t ~ready =
  Mutex.lock t.m;
  Atomic.set t.parked true;
  while not (ready ()) do
    Condition.wait t.c t.m
  done;
  Atomic.set t.parked false;
  Mutex.unlock t.m

(* Wake a parked consumer so it re-evaluates its predicate (used by
   stop, crash/restart gating, freeze/thaw — anything that changes
   [ready] without pushing). *)
let wake t =
  Mutex.lock t.m;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let pushed t = Atomic.get t.pushed
let popped t = Atomic.get t.popped

(** Length-prefixed binary codec for the {!Transport} [Socket]
    backend: every Proto payload (plain and keyed), wrapped in an
    envelope, as one [[len : u32 BE]][body] frame.

    The encoding is canonical — each message has exactly one byte
    representation — so [encode (decode s) = s] for every well-formed
    body [s].  Integers are 8-byte big-endian, strings u32-length
    prefixed, unions single-byte tagged.  The framing carries no
    process-local state, so the same codec serves a Unix-domain
    socketpair or a TCP stream. *)

exception Malformed of string
(** Raised on truncated input, an unknown tag, a non-canonical byte,
    trailing garbage, or an absurd frame length. *)

type msg =
  | Env of Transport_intf.envelope  (** a routed protocol message *)
  | Ensure_regs of int
      (** control, parent→child: grow the register file to [n] cells
          (idempotent), forwarding parent-side [alloc_reg] calls *)

(** One message body, unframed. *)
val encode : msg -> string

(** Inverse of {!encode} on exactly one body; raises {!Malformed}
    otherwise. *)
val decode : string -> msg

(** Write one framed message; blocks until fully written. *)
val write_msg : Unix.file_descr -> msg -> unit

(** Read one framed message; [None] on a clean EOF at a frame
    boundary, {!Malformed} on a mid-frame EOF or a bad body. *)
val read_msg : Unix.file_descr -> msg option

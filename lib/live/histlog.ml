open Regemu_objects
open Regemu_sim

let chunk_size = 256

type cell = {
  hop : Trace.hop;
  invoked_at : int;
  invoked_ns : int64;  (* monotonic *)
  mutable returned_at : int option;
  mutable result : Value.t option;
  mutable latency_ns : int;
}

(* placeholder for preallocated chunk slots; never read (only slots
   [< count] are) *)
let hole =
  {
    hop = Trace.H_read;
    invoked_at = 0;
    invoked_ns = 0L;
    returned_at = None;
    result = None;
    latency_ns = 0;
  }

type t = {
  m : Mutex.t;  (* guards [writers] registration only *)
  mutable writers : writer list;
  clock : int Atomic.t;  (* the real-time event order *)
  invoked : int Atomic.t;
  completed : int Atomic.t;
}

and writer = {
  log : t;
  client : Id.Client.t;
  wm : Mutex.t;  (* guards this client's chunks; never contended across
                    clients — the op hot path shares no lock *)
  mutable full : cell array list;  (* filled chunks, newest first *)
  mutable nfull : int;
  mutable last : cell array;  (* current chunk, preallocated *)
  mutable last_len : int;
}

type ticket = { tw : writer; cell : cell }

let create () =
  {
    m = Mutex.create ();
    writers = [];
    clock = Atomic.make 1;
    invoked = Atomic.make 0;
    completed = Atomic.make 0;
  }

let new_writer t ~client =
  let w =
    {
      log = t;
      client;
      wm = Mutex.create ();
      full = [];
      nfull = 0;
      last = Array.make chunk_size hole;
      last_len = 0;
    }
  in
  Mutex.lock t.m;
  t.writers <- w :: t.writers;
  Mutex.unlock t.m;
  w

let tick t = Atomic.fetch_and_add t.clock 1

let invoke w hop =
  let t = w.log in
  let cell =
    {
      hop;
      invoked_at = tick t;
      invoked_ns = Clock.now_ns ();
      returned_at = None;
      result = None;
      latency_ns = 0;
    }
  in
  Mutex.lock w.wm;
  if w.last_len = chunk_size then begin
    w.full <- w.last :: w.full;
    w.nfull <- w.nfull + 1;
    w.last <- Array.make chunk_size hole;
    w.last_len <- 0
  end;
  w.last.(w.last_len) <- cell;
  w.last_len <- w.last_len + 1;
  Mutex.unlock w.wm;
  Atomic.incr t.invoked;
  { tw = w; cell }

let return { tw; cell } v =
  let t = tw.log in
  Mutex.lock tw.wm;
  cell.returned_at <- Some (tick t);
  cell.result <- Some v;
  cell.latency_ns <- Int64.to_int (Int64.sub (Clock.now_ns ()) cell.invoked_ns);
  Mutex.unlock tw.wm;
  Atomic.incr t.completed

(* Copy one writer's cells under its lock: a consistent per-client view
   (each op's returned_at/result pair is published atomically under
   [wm]).  [f] receives each cell's fields, oldest first. *)
let fold_writer w f acc =
  Mutex.lock w.wm;
  let chunks = List.rev (Array.sub w.last 0 w.last_len :: w.full) in
  let acc =
    List.fold_left (fun acc chunk -> Array.fold_left f acc chunk) acc chunks
  in
  Mutex.unlock w.wm;
  acc

let writers t =
  Mutex.lock t.m;
  let ws = t.writers in
  Mutex.unlock t.m;
  ws

let writer_client w = w.client

type cell_view = {
  v_hop : Trace.hop;
  v_invoked_at : int;
  v_returned_at : int option;
  v_result : Value.t option;
}

(* Visit cells [from ..] of one writer, oldest first, under its lock —
   the online checker's incremental feed.  Only the chunks holding the
   requested suffix are touched, so a poll that is nearly caught up
   costs O(new cells), not O(history). *)
let poll w ~from f =
  Mutex.lock w.wm;
  let len = (w.nfull * chunk_size) + w.last_len in
  if from < len then begin
    let start_chunk = from / chunk_size in
    (* [full] is newest first: the chunks at or after [start_chunk] are
       a prefix of it *)
    let rec prefix n = function
      | x :: rest when n > 0 -> x :: prefix (n - 1) rest
      | _ -> []
    in
    let visit base chunk upto =
      for i = 0 to upto - 1 do
        if base + i >= from then begin
          let c = chunk.(i) in
          f
            {
              v_hop = c.hop;
              v_invoked_at = c.invoked_at;
              v_returned_at = c.returned_at;
              v_result = c.result;
            }
        end
      done
    in
    List.iteri
      (fun i chunk ->
        visit ((start_chunk + i) * chunk_size) chunk chunk_size)
      (List.rev (prefix (w.nfull - start_chunk) w.full));
    visit (w.nfull * chunk_size) w.last w.last_len
  end;
  Mutex.unlock w.wm;
  len

(* Cells across clients merge by the shared atomic clock: sorting by
   [invoked_at] rebuilds global invocation order, and the index is the
   rank in that order — exactly what the old single-list log produced,
   without its global hot-path mutex. *)
let snapshot t =
  let cells =
    List.fold_left
      (fun acc w ->
        fold_writer w
          (fun acc (c : cell) ->
            ( c.invoked_at,
              fun index ->
                {
                  Regemu_history.History.index;
                  client = w.client;
                  hop = c.hop;
                  invoked_at = c.invoked_at;
                  returned_at = c.returned_at;
                  result = c.result;
                } )
            :: acc)
          acc)
      [] (writers t)
  in
  let cells =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) cells
  in
  List.mapi (fun i (_, mk) -> mk i) cells

let completed t = Atomic.get t.completed
let invoked t = Atomic.get t.invoked

(* Resident footprint, for the checker-memory gauges: count whole
   chunks (allocation is chunked, so that is what the GC sees) and
   price each cell at a conservative boxed-record estimate. *)
let cell_bytes = 96

let resident_cells t =
  List.fold_left
    (fun acc w ->
      Mutex.lock w.wm;
      let n = ((w.nfull + 1) * chunk_size) in
      Mutex.unlock w.wm;
      acc + n)
    0 (writers t)

let approx_bytes t = resident_cells t * cell_bytes

let latencies_ns t =
  let lats =
    List.fold_left
      (fun acc w ->
        fold_writer w
          (fun acc (c : cell) ->
            match c.returned_at with
            | Some _ -> (c.invoked_at, c.latency_ns) :: acc
            | None -> acc)
          acc)
      [] (writers t)
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) lats)

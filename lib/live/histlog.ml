open Regemu_objects
open Regemu_sim

type cell = {
  index : int;
  client : Id.Client.t;
  hop : Trace.hop;
  invoked_at : int;
  invoked_ns : float;
  mutable returned_at : int option;
  mutable result : Value.t option;
  mutable latency_ns : int;
}

type ticket = cell

type t = {
  m : Mutex.t;
  mutable cells : cell list;  (* newest first *)
  mutable count : int;
  mutable completed : int;
  clock : int Atomic.t;  (* the real-time event order *)
}

let create () =
  {
    m = Mutex.create ();
    cells = [];
    count = 0;
    completed = 0;
    clock = Atomic.make 1;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let tick t = Atomic.fetch_and_add t.clock 1

let invoke t ~client hop =
  locked t (fun () ->
      let cell =
        {
          index = t.count;
          client;
          hop;
          invoked_at = tick t;
          invoked_ns = Unix.gettimeofday ();
          returned_at = None;
          result = None;
          latency_ns = 0;
        }
      in
      t.count <- t.count + 1;
      t.cells <- cell :: t.cells;
      cell)

let return t cell v =
  locked t (fun () ->
      cell.returned_at <- Some (tick t);
      cell.result <- Some v;
      cell.latency_ns <-
        int_of_float ((Unix.gettimeofday () -. cell.invoked_ns) *. 1e9);
      t.completed <- t.completed + 1)

let snapshot t =
  locked t (fun () ->
      List.rev_map
        (fun (c : cell) ->
          {
            Regemu_history.History.index = c.index;
            client = c.client;
            hop = c.hop;
            invoked_at = c.invoked_at;
            returned_at = c.returned_at;
            result = c.result;
          })
        t.cells)

let completed t = locked t (fun () -> t.completed)
let invoked t = locked t (fun () -> t.count)

let latencies_ns t =
  locked t (fun () ->
      (* cells are newest first; fold rebuilds invocation order *)
      List.fold_left
        (fun acc c ->
          match c.returned_at with Some _ -> c.latency_ns :: acc | None -> acc)
        [] t.cells)

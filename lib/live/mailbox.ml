type 'a t = {
  m : Mutex.t;
  c : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
  mutable pushed : int;
  mutable popped : int;
}

let create () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    q = Queue.create ();
    closed = false;
    pushed = 0;
    popped = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  locked t (fun () ->
      if not t.closed then begin
        Queue.push x t.q;
        t.pushed <- t.pushed + 1;
        Condition.signal t.c
      end)

let pop t =
  locked t (fun () ->
      let rec go () =
        if t.closed then None
        else if Queue.is_empty t.q then begin
          Condition.wait t.c t.m;
          go ()
        end
        else begin
          t.popped <- t.popped + 1;
          Some (Queue.pop t.q)
        end
      in
      go ())

let try_pop t =
  locked t (fun () ->
      if t.closed || Queue.is_empty t.q then None
      else begin
        t.popped <- t.popped + 1;
        Some (Queue.pop t.q)
      end)

let length t = locked t (fun () -> Queue.length t.q)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.c)

let pushed t = locked t (fun () -> t.pushed)
let popped t = locked t (fun () -> t.popped)

type 'a t = {
  m : Mutex.t;
  c : Condition.t;
  q : 'a Ringbuf.t;
  mutable closed : bool;
  sched : Sched_hook.t option;
  pushed : int Atomic.t;
  popped : int Atomic.t;
}

let create ?sched () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    q = Ringbuf.create ();
    closed = false;
    sched;
    pushed = Atomic.make 0;
    popped = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Block until there is something to drain or the box is closed.
   Called with [t.m] held; returns with it held. *)
let wait_nonempty t =
  match t.sched with
  | None ->
      while Ringbuf.is_empty t.q && not t.closed do
        Condition.wait t.c t.m
      done
  | Some hook ->
      hook.suspend ~mutex:t.m (fun () ->
          t.closed || not (Ringbuf.is_empty t.q))

let push t x =
  let accepted =
    locked t (fun () ->
        if t.closed then false
        else begin
          Ringbuf.push t.q x;
          Condition.signal t.c;
          true
        end)
  in
  if accepted then Atomic.incr t.pushed

let pop t =
  let r =
    locked t (fun () ->
        wait_nonempty t;
        if Ringbuf.is_empty t.q then None else Some (Ringbuf.pop t.q))
  in
  if r <> None then Atomic.incr t.popped;
  r

let try_pop t =
  let r =
    locked t (fun () ->
        if Ringbuf.is_empty t.q then None else Some (Ringbuf.pop t.q))
  in
  if r <> None then Atomic.incr t.popped;
  r

let pop_batch t ~max =
  if max < 1 then invalid_arg "Mailbox.pop_batch: max must be >= 1";
  let r =
    locked t (fun () ->
        wait_nonempty t;
        if Ringbuf.is_empty t.q then None
        else begin
          let n = min max (Ringbuf.length t.q) in
          let rec take n acc =
            if n = 0 then List.rev acc
            else take (n - 1) (Ringbuf.pop t.q :: acc)
          in
          Some (take n [])
        end)
  in
  (match r with
  | Some xs -> ignore (Atomic.fetch_and_add t.popped (List.length xs))
  | None -> ());
  r

let length t = locked t (fun () -> Ringbuf.length t.q)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.c)

let pushed t = Atomic.get t.pushed
let popped t = Atomic.get t.popped

type 'a t = {
  m : Mutex.t;
  c : Condition.t;
  q : 'a Ringbuf.t;
  mutable closed : bool;
  pushed : int Atomic.t;
  popped : int Atomic.t;
}

let create () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    q = Ringbuf.create ();
    closed = false;
    pushed = Atomic.make 0;
    popped = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  let accepted =
    locked t (fun () ->
        if t.closed then false
        else begin
          Ringbuf.push t.q x;
          Condition.signal t.c;
          true
        end)
  in
  if accepted then Atomic.incr t.pushed

let pop t =
  let r =
    locked t (fun () ->
        let rec go () =
          if t.closed then None
          else if Ringbuf.is_empty t.q then begin
            Condition.wait t.c t.m;
            go ()
          end
          else Some (Ringbuf.pop t.q)
        in
        go ())
  in
  if r <> None then Atomic.incr t.popped;
  r

let try_pop t =
  let r =
    locked t (fun () ->
        if t.closed || Ringbuf.is_empty t.q then None
        else Some (Ringbuf.pop t.q))
  in
  if r <> None then Atomic.incr t.popped;
  r

let pop_batch t ~max =
  if max < 1 then invalid_arg "Mailbox.pop_batch: max must be >= 1";
  let r =
    locked t (fun () ->
        let rec go () =
          if t.closed then None
          else if Ringbuf.is_empty t.q then begin
            Condition.wait t.c t.m;
            go ()
          end
          else begin
            let n = min max (Ringbuf.length t.q) in
            let rec take n acc =
              if n = 0 then List.rev acc
              else take (n - 1) (Ringbuf.pop t.q :: acc)
            in
            Some (take n [])
          end
        in
        go ())
  in
  (match r with
  | Some xs -> ignore (Atomic.fetch_and_add t.popped (List.length xs))
  | None -> ());
  r

let length t = locked t (fun () -> Ringbuf.length t.q)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Ringbuf.clear t.q;
      Condition.broadcast t.c)

let pushed t = Atomic.get t.pushed
let popped t = Atomic.get t.popped

(** Lock-protected history of high-level operations for a live run.

    Plays the role the trace plays in the simulator: every [write]/
    [read] on the emulated register takes a ticket at invocation and
    completes it at return.  Event order is a shared atomic counter, so
    the [invoked_at]/[returned_at] fields of the resulting
    {!Regemu_history.History.t} reflect {e wall-clock real-time order}:
    operation [a] precedes operation [b] exactly when [a] returned
    before [b] was invoked, which is what the WS-Regularity and
    atomicity checkers need.  Wall-clock latency is recorded alongside
    for throughput/percentile reporting. *)

open Regemu_objects
open Regemu_sim

type t
type ticket

val create : unit -> t

(** Take an invocation ticket.  Must be called before the operation
    sends its first message. *)
val invoke : t -> client:Id.Client.t -> Trace.hop -> ticket

(** Complete a ticket with the operation's result.  Must be called
    after the operation's last await. *)
val return : t -> ticket -> Value.t -> unit

(** Consistent snapshot of all operations so far (completed and
    pending), in invocation order, ready for the checkers. *)
val snapshot : t -> Regemu_history.History.t

(** Number of completed operations. *)
val completed : t -> int

(** Number of invoked operations. *)
val invoked : t -> int

(** Wall-clock latency of each completed operation, in nanoseconds. *)
val latencies_ns : t -> int list

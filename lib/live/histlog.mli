(** Sharded history of high-level operations for a live run.

    Plays the role the trace plays in the simulator: every [write]/
    [read] on the emulated register takes a ticket at invocation and
    completes it at return.  Event order is a shared atomic counter, so
    the [invoked_at]/[returned_at] fields of the resulting
    {!Regemu_history.History.t} reflect {e real-time order}: operation
    [a] precedes operation [b] exactly when [a] returned before [b] was
    invoked, which is what the WS-Regularity and atomicity checkers
    need.

    Storage is sharded per client: each {!writer} appends into its own
    preallocated chunked arrays under its own lock, so the op hot path
    never contends across clients (the old design pushed every ticket
    through one global mutex onto a cons list).  Latency is measured on
    the {e monotonic} clock ({!Clock}), immune to NTP steps.  Cells are
    merged and sorted by the atomic event counter only at {!snapshot}.

    A snapshot taken while writers are live is a consistent per-client
    prefix: an operation that returns during the snapshot may still
    appear pending, which the checkers already treat soundly (a pending
    operation is concurrent with everything after it).  The final
    snapshot, taken after client threads join, is exact. *)

open Regemu_objects
open Regemu_sim

type t
type writer
type ticket

val create : unit -> t

(** Register a client's private append log.  Called once per client,
    before its first operation. *)
val new_writer : t -> client:Id.Client.t -> writer

(** Take an invocation ticket.  Must be called before the operation
    sends its first message.  Lock-free across clients. *)
val invoke : writer -> Trace.hop -> ticket

(** Complete a ticket with the operation's result.  Must be called
    after the operation's last await. *)
val return : ticket -> Value.t -> unit

(** Consistent snapshot of all operations so far (completed and
    pending), in invocation order, ready for the checkers. *)
val snapshot : t -> Regemu_history.History.t

(** {2 Incremental access (the online checker's feed)} *)

val writers : t -> writer list
val writer_client : writer -> Id.Client.t

type cell_view = {
  v_hop : Trace.hop;
  v_invoked_at : int;
  v_returned_at : int option;
  v_result : Value.t option;
}

(** [poll w ~from f] visits [w]'s operations from position [from]
    onward, oldest first, under the writer's lock, and returns the
    writer's current length.  A poll that is nearly caught up costs
    O(new cells), not O(history) — the basis of incremental online
    checking.  A cell seen pending may be completed by a later poll of
    the same range; callers keep their own cursors and deduplicate. *)
val poll : writer -> from:int -> (cell_view -> unit) -> int

(** Number of completed operations. *)
val completed : t -> int

(** Number of invoked operations. *)
val invoked : t -> int

(** Cells currently resident (whole preallocated chunks, summed across
    writers).  Grows O(ops) — the quantity the keyspace's GC'd log
    ([Regemu_keyspace.Klog]) keeps bounded instead. *)
val resident_cells : t -> int

(** [resident_cells] priced at a fixed per-cell estimate — the
    checker-memory gauge's unit of account. *)
val approx_bytes : t -> int

(** Monotonic-clock latency of each completed operation, in
    nanoseconds, in invocation order. *)
val latencies_ns : t -> int list

(** Throughput/latency benchmark of the live cluster runtime: ABD (and
    its atomic write-back variant) vs the paper's Algorithm 2, across
    client-thread counts and fault rates, every run validated online by
    the consistency checkers.

    A run spawns [n] server threads, [k] writer + [readers] reader
    threads, an online {!Checker}, optionally a {!Fault} injector, and
    measures wall-clock ops/s and p50/p95/p99 operation latency
    (via {!Regemu_sim.Stats.percentiles}). *)

type algo = Abd | Abd_wb | Alg2

val algo_name : algo -> string
val algo_of_name : string -> algo option

type spec = {
  algo : algo;
  k : int;  (** writer threads *)
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  couriers : int;
  chaos : bool;  (** crash/restart injector + delays + duplication *)
  seed : int;
}

(** [k + readers = 4] client threads, [n = 2f+1] servers by default. *)
val default_spec : algo:algo -> chaos:bool -> seed:int -> spec

type outcome = {
  spec : spec;
  ops : int;  (** completed operations *)
  wall_s : float;
  throughput : float;  (** completed ops per second *)
  mean_us : float;
  pcts_us : (float * float) list;  (** (level, latency µs) for p50/p95/p99 *)
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_dropped : int;  (** lost to the chaos drop rate *)
  msgs_cut : int;  (** lost to a partition *)
  crashes : int;
  restarts : int;
  retries : int;  (** client retransmissions *)
  unavailable : int;  (** operations failed fast *)
  check : Checker.result;
}

(** [true] when the run completed all operations and no checker
    violation was found. *)
val clean : outcome -> bool

val outcome_pp : outcome Fmt.t

(** Run one specification to completion (spawns and joins all threads). *)
val run : spec -> outcome

(** The standard suite: quiet and chaos runs of each algorithm. *)
val suite : ?ops_per_client:int -> seed:int -> unit -> spec list

(** The bounded, seed-fixed smoke suite for CI. *)
val smoke_suite : unit -> spec list

(** The [BENCH_live.json] document: schema id, specs, and results. *)
val to_json : outcome list -> Json.t

(** Throughput/latency benchmark of the live cluster runtime: ABD (and
    its atomic write-back variant) vs the paper's Algorithm 2, across
    client-thread counts and fault rates, every run validated online by
    the consistency checkers.

    A run spawns [n] server threads, [k] writer + [readers] reader
    threads, an online {!Checker}, optionally a {!Fault} injector, and
    measures wall-clock ops/s and p50/p95/p99 operation latency
    (via {!Regemu_sim.Stats.percentiles}). *)

type algo = Abd | Abd_wb | Alg2

val algo_name : algo -> string
val algo_of_name : string -> algo option

type spec = {
  algo : algo;
  k : int;  (** writer threads *)
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  couriers : int;
  chaos : bool;  (** crash/restart injector + delays + duplication *)
  reorder : bool;  (** transport reordering (off in saturation mode) *)
  seed : int;
}

(** [k + readers = 4] client threads, [n = 2f+1] servers by default. *)
val default_spec : algo:algo -> chaos:bool -> seed:int -> spec

type outcome = {
  spec : spec;
  ops : int;  (** completed operations *)
  wall_s : float;
  throughput : float;  (** completed ops per second *)
  mean_us : float;
  pcts_us : (float * float) list;  (** (level, latency µs) for p50/p95/p99 *)
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_dropped : int;  (** lost to the chaos drop rate *)
  msgs_cut : int;  (** lost to a partition *)
  crashes : int;
  restarts : int;
  retries : int;  (** client retransmissions *)
  unavailable : int;  (** operations failed fast *)
  check : Checker.result;
}

(** [true] when the run completed all operations and no checker
    violation was found. *)
val clean : outcome -> bool

val outcome_pp : outcome Fmt.t

(** Run one specification to completion (spawns and joins all threads).
    [sink] instruments the run ({!Cluster.create}).  One sink may span
    several runs: trace recorders are per-run (thread names repeat),
    and metric registration is idempotent, so counters accumulate
    across the runs Prometheus-style. *)
val run : ?sink:Sink.t -> spec -> outcome

(** [run_median ~reps spec] runs [spec] [reps] times and keeps the
    median-throughput outcome — the saturation sweep's defence against
    single-core scheduler noise.  A rep that is not {!clean} is
    returned instead, so failures are never averaged away.  Default
    [reps = 1].  [sink] spans every rep (see {!run}). *)
val run_median : ?reps:int -> ?sink:Sink.t -> spec -> outcome

(** [run_sweep_median ~reps specs] runs the whole list [reps] times
    round-robin and keeps each spec's median-throughput outcome — a
    point's repetitions are spread across the sweep, so a transient
    machine stall cannot poison all of them at once.  A rep that is
    not {!clean} is surfaced instead.  Default [reps = 1].  [sink]
    spans the whole sweep (see {!run}). *)
val run_sweep_median : ?reps:int -> ?sink:Sink.t -> spec list -> outcome list

(** The standard suite: quiet and chaos runs of each algorithm. *)
val suite : ?ops_per_client:int -> seed:int -> unit -> spec list

(** The bounded, seed-fixed smoke suite for CI. *)
val smoke_suite : unit -> spec list

(** The [regemu-live-bench/1] document: schema id, specs, and results. *)
val to_json : outcome list -> Regemu_obs.Json.t

(** {2 Saturation mode}

    The perf-trajectory benchmark: sweep client-thread counts at fixed
    [k = 1], [readers = clients - 1], [f = 1], [n = 3] on a quiet,
    non-reordering transport (peak pipeline), and report ops/s and
    latency percentiles per point, against the recorded pre-sharding
    baseline. *)

(** One saturation point.  Raises [Invalid_argument] if [clients < 2]. *)
val saturate_spec :
  algo:algo -> clients:int -> ops_per_client:int -> seed:int -> spec

(** The default sweep: [2; 4; 8; 16]. *)
val saturate_clients : int list

(** The full sweep, ABD and Algorithm 2 at each client count. *)
val saturate_specs :
  ?clients:int list -> ?ops_per_client:int -> seed:int -> unit -> spec list

(** Pre-sharding throughput on the reference machine, [(algo, clients,
    ops/s)] — the "before" column baked into the emitted document. *)
val seed_baseline_ops_s : (algo * int * float) list

(** The [BENCH_live.json] document in the [regemu-bench/1] schema:
    one benchmark entry per outcome ([ns_per_run] = ns per completed
    op) with throughput, percentiles, and baseline/speedup extras. *)
val saturate_json : outcome list -> Regemu_obs.Json.t

(** Structural validation of a [regemu-bench/1] document (also
    applicable to the micro-benchmark emitter's output). *)
val validate_bench_json : Regemu_obs.Json.t -> (unit, string) result

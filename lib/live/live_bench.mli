(** Throughput/latency benchmark of the live cluster runtime: ABD (and
    its atomic write-back variant) vs the paper's Algorithm 2 vs the
    CDS multi-writer data store ({!Cds_live}), across client-thread
    counts and fault rates, every run validated online by the
    consistency checkers.

    A run spawns [n] server threads, [k] writer + [readers] reader
    threads, an online {!Checker}, optionally a {!Fault} injector, and
    measures wall-clock ops/s, p50/p95/p99 operation latency (via
    {!Regemu_sim.Stats.percentiles}), and the resident-space maxima
    sampled from the server stores through the run. *)

type algo = Abd | Abd_wb | Alg2 | Cds

val algo_name : algo -> string

(** Every valid {!algo_name}, in declaration order — the list CLI
    errors quote. *)
val algo_names : string list

val algo_of_name : string -> algo option

type spec = {
  algo : algo;
  k : int;  (** writer threads *)
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  couriers : int;
  chaos : bool;  (** crash/restart injector + delays + duplication *)
  reorder : bool;  (** transport reordering (off in saturation mode) *)
  backend : Transport.backend;  (** message fabric under the cluster *)
  seed : int;
}

(** [k + readers = 4] client threads, [n = 2f+1] servers by default;
    [backend] defaults to [Threads]. *)
val default_spec :
  ?backend:Transport.backend -> algo:algo -> chaos:bool -> seed:int -> unit -> spec

type outcome = {
  spec : spec;
  ops : int;  (** completed operations *)
  wall_s : float;
  throughput : float;  (** completed ops per second *)
  mean_us : float;
  pcts_us : (float * float) list;  (** (level, latency µs) for p50/p95/p99 *)
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_dropped : int;  (** lost to the chaos drop rate *)
  msgs_cut : int;  (** lost to a partition *)
  crashes : int;
  restarts : int;
  retries : int;  (** client retransmissions *)
  unavailable : int;  (** operations failed fast *)
  space_cells : int;
      (** resident cells, max over servers and over the run — sampled
          every 5 ms plus once at quiesce ({!Cluster.resident_space}) *)
  space_bytes : int;  (** resident bytes, same maxima *)
  space_cells_total : int;  (** cluster-wide resident cells at the peak *)
  check : Checker.result;
}

(** [true] when the run completed all operations and no checker
    violation was found. *)
val clean : outcome -> bool

val outcome_pp : outcome Fmt.t

(** Run one specification to completion (spawns and joins all threads).
    [sink] instruments the run ({!Cluster.create}).  One sink may span
    several runs: trace recorders are per-run (thread names repeat),
    and metric registration is idempotent, so counters accumulate
    across the runs Prometheus-style. *)
val run : ?sink:Sink.t -> spec -> outcome

(** [run_median ~reps spec] runs [spec] [reps] times and keeps the
    median-throughput outcome — the saturation sweep's defence against
    single-core scheduler noise.  A rep that is not {!clean} is
    returned instead, so failures are never averaged away.  Default
    [reps = 1].  [sink] spans every rep (see {!run}). *)
val run_median : ?reps:int -> ?sink:Sink.t -> spec -> outcome

(** [run_sweep_median ~reps specs] runs the whole list [reps] times
    round-robin and keeps each spec's median-throughput outcome — a
    point's repetitions are spread across the sweep, so a transient
    machine stall cannot poison all of them at once.  A rep that is
    not {!clean} is surfaced instead.  Default [reps = 1].  [sink]
    spans the whole sweep (see {!run}). *)
val run_sweep_median : ?reps:int -> ?sink:Sink.t -> spec list -> outcome list

(** The standard suite: quiet and chaos runs of each algorithm. *)
val suite : ?ops_per_client:int -> seed:int -> unit -> spec list

(** The bounded, seed-fixed smoke suite for CI on the given backend
    (default [Threads]).  The [Socket] backend's smoke runs quiet
    (no chaos): a SIGKILLed child execs back with an empty store, and
    ABD under quorum-visible amnesia is not WS-regular — the checker
    would rightly flag it. *)
val smoke_suite : ?backend:Transport.backend -> unit -> spec list

(** The [regemu-live-bench/1] document: schema id, specs, and results. *)
val to_json : outcome list -> Regemu_obs.Json.t

(** {2 Saturation mode}

    The perf-trajectory benchmark: sweep client-thread counts at fixed
    [k = 1], [readers = clients - 1], [f = 1], [n = 3] on a quiet,
    non-reordering transport (peak pipeline), and report ops/s and
    latency percentiles per point, against the recorded pre-sharding
    baseline. *)

(** One saturation point.  Raises [Invalid_argument] if [clients < 2]. *)
val saturate_spec :
  ?backend:Transport.backend ->
  algo:algo ->
  clients:int ->
  ops_per_client:int ->
  seed:int ->
  unit ->
  spec

(** The default sweep: [2; 4; 8; 16]. *)
val saturate_clients : int list

(** The full single-backend sweep, ABD, Algorithm 2, and CDS at each
    client count. *)
val saturate_specs :
  ?backend:Transport.backend ->
  ?clients:int list ->
  ?ops_per_client:int ->
  seed:int ->
  unit ->
  spec list

(** {2 The three-way backend A/B}

    ABD at each client count on each backend, backends adjacent per
    count so {!run_sweep_median}'s round-robin repeats every
    (clients, backend) triple under the same machine weather. *)

(** The A/B client counts: [16; 32; 64; 128; 256]. *)
val saturate_ab_clients : int list

(** [Threads; Domains; Socket] — the A/B arms, in emission order. *)
val saturate_ab_backends : Transport.backend list

val saturate_ab_specs :
  ?clients:int list -> ?ops_per_client:int -> seed:int -> unit -> spec list

(** Pre-sharding throughput on the reference machine, [(algo, clients,
    ops/s)] — the "before" column baked into the emitted document. *)
val seed_baseline_ops_s : (algo * int * float) list

(** The [BENCH_live.json] document in the [regemu-bench/2] schema:
    one benchmark entry per outcome ([ns_per_run] = ns per completed
    op) with throughput, percentiles, and a [backend] column; a
    non-threads row carries [speedup_vs_threads] against the
    same-algo same-clients threads row, a threads row the recorded
    pre-sharding [baseline_ops_per_s]/[speedup] extras. *)
val saturate_json : outcome list -> Regemu_obs.Json.t

(** Structural validation of a [regemu-bench/2] document: schema id,
    a valid [backend] on every row, numeric [ns_per_run], and no
    lingering [r_square] (dropped in /2). *)
val validate_bench_json : Regemu_obs.Json.t -> (unit, string) result

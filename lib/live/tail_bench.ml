module Json = Regemu_obs.Json

type spec = {
  algo : Live_bench.algo;
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  base_us : int;
  straggler_us : int;
  straggler : int;
  couriers : int;
  backend : Transport.backend;
  seed : int;
}

let default_spec ?(backend = Transport.Threads) ?(algo = Live_bench.Abd) ~seed
    () =
  {
    algo;
    readers = 3;
    f = 1;
    n = 3;
    ops_per_client = 120;
    base_us = 1_000;
    straggler_us = 10_000;
    straggler = 2;
    couriers = 3;
    backend;
    seed;
  }

let smoke_spec ?backend ?algo ~seed () =
  { (default_spec ?backend ?algo ~seed ()) with ops_per_client = 25 }

let validate_spec s =
  if s.readers < 1 then invalid_arg "Tail_bench: need at least one reader";
  if s.ops_per_client < 1 then
    invalid_arg "Tail_bench: ops_per_client must be >= 1";
  if s.straggler < 0 || s.straggler >= s.n then
    invalid_arg "Tail_bench: straggler server out of range";
  if s.base_us < 0 || s.straggler_us < s.base_us then
    invalid_arg "Tail_bench: need 0 <= base_us <= straggler_us"

(* The three arms.  [Baseline] is the fault-free reference; the other
   two run under the straggler and differ only in whether the armed
   hedge ever fires — [Unhedged] sends each round to the chosen
   quorum-sized subset and then just waits, which is exactly the
   ablation the hedge must beat. *)
type arm = Baseline | Unhedged | Hedged

let arm_name = function
  | Baseline -> "baseline"
  | Unhedged -> "unhedged"
  | Hedged -> "hedged"

type arm_outcome = {
  arm : arm;
  ops : int;
  wall_s : float;
  mean_us : float;
  pcts_us : (float * float) list;
  hedges : int;
  hedge_wins : int;
  msgs_slowed : int;
  retries : int;
  unavailable : int;
  check : Checker.result;
}

type outcome = { spec : spec; arms : arm_outcome list }

let arm_clean s a =
  Checker.ok a.check && a.ops = (1 + s.readers) * s.ops_per_client

let clean o = List.for_all (arm_clean o.spec) o.arms

let pct o p = try List.assoc p o.pcts_us with Not_found -> 0.0

let find_arm o arm = List.find (fun a -> a.arm = arm) o.arms

(* hedged-under-straggler p99 over fault-free p99 — the headline
   number; 0 when the baseline measured nothing *)
let p99_ratio o =
  let b = pct (find_arm o Baseline) 0.99 in
  if b > 0.0 then pct (find_arm o Hedged) 0.99 /. b else 0.0

let run_arm ?(sink = Sink.none) s arm =
  let transport =
    {
      Transport.couriers = s.couriers;
      delay_prob = 0.0;
      max_delay_us = 0;
      dup_prob = 0.0;
      drop_prob = 0.0;
      reorder = true;
      sharded = true;
      backend = s.backend;
      seed = s.seed;
    }
  in
  (* every arm runs with the same hedge/deadline machinery armed, so
     subset selection and the adaptive deadline are held constant; the
     only differences are the straggler and whether hedges fire *)
  let hedge =
    Some { Hedge.default_config with fire = (arm <> Unhedged) }
  in
  let cluster =
    Cluster.create ~sink
      {
        Cluster.n = s.n;
        transport;
        op_timeout_s = 30.0;
        recovery = Recovery.Persist;
        retry = Some Retry.default_config;
        hedge;
        deadline = Some Deadline.default_config;
      }
  in
  let writers = [ Cluster.new_client cluster ] in
  let readers = List.init s.readers (fun _ -> Cluster.new_client cluster) in
  let write, read =
    match s.algo with
    | Live_bench.Abd | Live_bench.Abd_wb ->
        let abd =
          Abd_live.create cluster ~f:s.f
            ~write_back_reads:(s.algo = Live_bench.Abd_wb) ()
        in
        (Abd_live.write abd, Abd_live.read abd)
    | Live_bench.Alg2 ->
        let p = Regemu_bounds.Params.make_exn ~k:1 ~f:s.f ~n:s.n in
        let alg2 = Alg2_live.create cluster p ~writers () in
        (Alg2_live.write alg2, Alg2_live.read alg2)
    | Live_bench.Cds ->
        let cds = Cds_live.create cluster ~f:s.f ~writers () in
        (Cds_live.write cds, Cds_live.read cds)
  in
  Cluster.start cluster;
  (* the gray injection: a uniform per-envelope delay on every link
     models the network floor, and one server gets the 10x version *)
  for srv = 0 to s.n - 1 do
    Cluster.set_slow cluster ~server:srv s.base_us
  done;
  if arm <> Baseline then
    Cluster.set_slow cluster ~server:s.straggler s.straggler_us;
  let checker = Checker.spawn cluster ~interval_s:0.01 () in
  let t0 = Clock.now_s () in
  let result =
    try
      Load.run ~write ~read ~writers ~readers
        ~ops_per_client:s.ops_per_client;
      Ok ()
    with e -> Error e
  in
  let wall_s = Clock.now_s () -. t0 in
  let check = Checker.stop checker in
  let stats = Cluster.stats cluster in
  let lats = Cluster.latencies_ns cluster in
  Cluster.shutdown cluster;
  (match result with Ok () -> () | Error e -> raise e);
  let mean_us =
    match lats with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a l -> a +. float_of_int l) 0.0 lats
        /. float_of_int (List.length lats) /. 1e3
  in
  {
    arm;
    ops = stats.Cluster.ops_completed;
    wall_s;
    mean_us;
    pcts_us =
      List.map
        (fun (p, ns) -> (p, float_of_int ns /. 1e3))
        (Regemu_sim.Stats.percentiles lats);
    hedges = stats.Cluster.hedges;
    hedge_wins = stats.Cluster.hedge_wins;
    msgs_slowed = stats.Cluster.msgs_slowed;
    retries = stats.Cluster.retries;
    unavailable = stats.Cluster.unavailable;
    check;
  }

(* Single-core thread scheduling injects multi-millisecond hiccups
   into any arm's p99 (the same noise live_bench medians out), so the
   reported arms are per-arm medians-by-p99 over [reps] interleaved
   rounds — a transient machine stall poisons one round of each arm,
   never all of one arm's reps.  A dirty rep disqualifies the arm
   whole, surfacing the failure instead of a lucky median. *)
let run ?sink ?(reps = 1) s =
  validate_spec s;
  if reps < 1 then invalid_arg "Tail_bench: reps must be >= 1";
  let order = [ Baseline; Unhedged; Hedged ] in
  let rounds =
    List.init reps (fun i ->
        List.map (run_arm ?sink { s with seed = s.seed + (1000 * i) }) order)
  in
  let arms =
    List.mapi
      (fun i _ ->
        let outs = List.map (fun round -> List.nth round i) rounds in
        match List.find_opt (fun a -> not (arm_clean s a)) outs with
        | Some bad -> bad
        | None ->
            let sorted =
              List.sort
                (fun a b -> Float.compare (pct a 0.99) (pct b 0.99))
                outs
            in
            List.nth sorted (reps / 2))
      order
  in
  { spec = s; arms }

(* --- reporting ---------------------------------------------------------- *)

let arm_pp s ppf a =
  Fmt.pf ppf
    "%-8s %d ops in %.3fs: µs mean=%.0f %a; %d hedges (%d won), %d slowed, \
     %d retries, %d unavailable%s"
    (arm_name a.arm) a.ops a.wall_s a.mean_us
    Fmt.(
      list ~sep:(any " ") (fun ppf (p, v) ->
          Fmt.pf ppf "p%.0f=%.0f" (p *. 100.) v))
    a.pcts_us a.hedges a.hedge_wins a.msgs_slowed a.retries a.unavailable
    (if arm_clean s a then "" else " DIRTY")

let outcome_pp ppf o =
  Fmt.pf ppf
    "tail: straggler server %d at +%dus (base +%dus), %d ops/client"
    o.spec.straggler o.spec.straggler_us o.spec.base_us o.spec.ops_per_client;
  List.iter (fun a -> Fmt.pf ppf "@.  %a" (arm_pp o.spec) a) o.arms;
  Fmt.pf ppf "@.  hedged p99 / fault-free p99 = %.2f" (p99_ratio o)

let arm_json s a =
  Json.Obj
    [
      ("arm", Json.Str (arm_name a.arm));
      ("straggler", Json.Bool (a.arm <> Baseline));
      ("hedge_fires", Json.Bool (a.arm <> Unhedged));
      ("ops", Json.Int a.ops);
      ("wall_s", Json.Float a.wall_s);
      ("latency_mean_us", Json.Float a.mean_us);
      ("latency_p50_us", Json.Float (pct a 0.50));
      ("latency_p95_us", Json.Float (pct a 0.95));
      ("latency_p99_us", Json.Float (pct a 0.99));
      ("hedges", Json.Int a.hedges);
      ("hedge_wins", Json.Int a.hedge_wins);
      ("msgs_slowed", Json.Int a.msgs_slowed);
      ("retries", Json.Int a.retries);
      ("unavailable", Json.Int a.unavailable);
      ( "ws_regular",
        Json.Str
          (Fmt.str "%a" Regemu_history.Ws_check.verdict_pp a.check.Checker.ws)
      );
      ("clean", Json.Bool (arm_clean s a));
    ]

let to_json o =
  Json.Obj
    [
      ("schema", Json.Str "regemu-tail/1");
      ("algo", Json.Str (Live_bench.algo_name o.spec.algo));
      ("seed", Json.Int o.spec.seed);
      ("n", Json.Int o.spec.n);
      ("f", Json.Int o.spec.f);
      ("clients", Json.Int (1 + o.spec.readers));
      ("ops_per_client", Json.Int o.spec.ops_per_client);
      ("base_us", Json.Int o.spec.base_us);
      ("straggler_us", Json.Int o.spec.straggler_us);
      ("straggler_server", Json.Int o.spec.straggler);
      ("arms", Json.List (List.map (arm_json o.spec) o.arms));
      ("hedged_p99_over_baseline_p99", Json.Float (p99_ratio o));
      ("clean", Json.Bool (clean o));
    ]

(* Structural check of the regemu-tail/1 document: the three arms must
   be present (in A/B/ablation order) with numeric latency fields, and
   the headline ratio must be a number. *)
let validate_tail_json json =
  let ( let* ) = Result.bind in
  let field name = function
    | Json.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Fmt.str "missing field %S" name))
    | _ -> Error "expected an object"
  in
  let numeric what = function
    | Json.Float _ | Json.Int _ -> Ok ()
    | _ -> Error (Fmt.str "%s must be a number" what)
  in
  let* schema = field "schema" json in
  let* () =
    match schema with
    | Json.Str "regemu-tail/1" -> Ok ()
    | Json.Str s -> Error (Fmt.str "bad schema %S" s)
    | _ -> Error "schema must be a string"
  in
  let* ratio = field "hedged_p99_over_baseline_p99" json in
  let* () = numeric "hedged_p99_over_baseline_p99" ratio in
  let* arms = field "arms" json in
  let* arms =
    match arms with Json.List l -> Ok l | _ -> Error "arms must be a list"
  in
  let* names =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* name = field "arm" a in
        let* name =
          match name with
          | Json.Str s -> Ok s
          | _ -> Error "arm name must be a string"
        in
        let* () =
          List.fold_left
            (fun acc k ->
              let* () = acc in
              let* v = field k a in
              numeric k v)
            (Ok ())
            [ "latency_p50_us"; "latency_p95_us"; "latency_p99_us" ]
        in
        Ok (name :: acc))
      (Ok []) arms
  in
  if List.rev names <> [ "baseline"; "unhedged"; "hedged" ] then
    Error "arms must be [baseline; unhedged; hedged]"
  else Ok ()

include Regemu_obs.Clock

type t = {
  spawn : name:string -> (unit -> unit) -> unit;
  suspend : ?timeout_s:float -> ?mutex:Mutex.t -> (unit -> bool) -> unit;
  sleep : float -> unit;
}

(** Monotonic time for the live runtime.

    Every latency measurement and retry/deadline clock in [lib/live]
    reads CLOCK_MONOTONIC (via the [bechamel.monotonic_clock] stub, a
    [@@noalloc] external), never [Unix.gettimeofday]: an NTP step or a
    leap-second smear must not produce negative latencies or spurious
    retransmission storms. *)

(** Nanoseconds on the monotonic clock (origin unspecified; only
    differences are meaningful). *)
val now_ns : unit -> int64

(** Monotonic seconds as a float — drop-in for elapsed-time arithmetic
    previously done on [Unix.gettimeofday]. *)
val now_s : unit -> float

(** Compatibility alias: the monotonic/virtual clock now lives in
    {!Regemu_obs.Clock}, below the live runtime, so trace events and
    metrics read the same (virtualizable) time source as every retry
    and deadline timer.  See {!Regemu_obs.Clock} for semantics. *)

val now_ns : unit -> int64
val now_s : unit -> float
val set_source : (unit -> int64) -> unit
val clear_source : unit -> unit
val virtualized : unit -> bool

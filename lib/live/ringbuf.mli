(** A growable array-backed FIFO deque with O(1) random removal.

    The queue behind every {!Transport} lane: [push]/[pop] give plain
    FIFO order, and [take_at] removes the [i]-th oldest element in
    constant time by swapping the front element into its slot — the
    relative order of the untouched elements is perturbed, which is
    exactly the use case (a courier picking a {e random} envelope to
    reorder delivery).  Contrast with the O(n) double-[Queue.transfer]
    splice this replaces.

    Not thread-safe; callers hold their own lock. *)

type 'a t

(** [create ()] is an empty buffer; the backing array is allocated on
    first push and doubles as needed (never shrinks except on
    {!clear}). *)
val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Append at the back. *)
val push : 'a t -> 'a -> unit

(** Remove the front (oldest) element.  Raises [Invalid_argument] when
    empty. *)
val pop : 'a t -> 'a

(** [take_at t i] removes and returns the [i]-th oldest element
    ([take_at t 0 = pop t]) in O(1): the front element is swapped into
    slot [i], then the front advances.  Raises [Invalid_argument]
    unless [0 <= i < length t]. *)
val take_at : 'a t -> int -> 'a

(** Drop all elements and release the backing array. *)
val clear : 'a t -> unit

(** Front-to-back element list (for tests). *)
val to_list : 'a t -> 'a list

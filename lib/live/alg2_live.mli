(** The paper's Algorithm 2 (space-optimal register-based emulation)
    over a live {!Cluster} — the same protocol as
    {!Regemu_netsim.Alg2_net}, with blocking awaits in place of
    simulator fibers.

    Register cells are laid out by the Section 3.3 construction (set
    [i]'s register [j] on server [(i+j) mod n]); each writer owns a
    slot over its register set and follows the covering discipline: a
    stale acknowledgement (the cell now holds an old value) triggers an
    immediate re-send of the current value.  Reads collect every cell
    of [n-f] servers and return the maximum.  WS-Regular, wait-free
    with at most [f] crashed servers. *)

open Regemu_bounds
open Regemu_objects

type t

(** [create cluster p ~writers ()] allocates the layout's register
    cells (call before {!Cluster.start}) and registers the [k] writer
    clients.  [naive] uses the unsafe 2f+1-cell strawman instead. *)
val create :
  Cluster.t -> Params.t -> ?naive:bool -> writers:Cluster.client list -> unit -> t

(** Total register cells allocated. *)
val cells : t -> int

(** Blocking; records the operation in the cluster history.  [write]
    requires a registered writer client. *)
val write : t -> Cluster.client -> Value.t -> unit

val read : t -> Cluster.client -> Value.t

module Trace = Regemu_obs.Trace
module Event = Regemu_obs.Event
module Metrics = Regemu_obs.Metrics

type t = { trace : Trace.t option; metrics : Metrics.t option }

let none = { trace = None; metrics = None }
let make ?trace ?metrics () = { trace; metrics }
let is_none s = s.trace = None && s.metrics = None
let trace s = s.trace
let metrics s = s.metrics

let recorder s ~name = Option.map (fun tr -> Trace.recorder tr ~name) s.trace

let instant ?args ~cat r name =
  match r with None -> () | Some r -> Trace.instant r ?args ~cat name

let span_begin ?args ~cat r name =
  match r with None -> () | Some r -> Trace.span_begin r ?args ~cat name

let span_end ?args ~cat r name =
  match r with None -> () | Some r -> Trace.span_end r ?args ~cat name

let sample_op = function None -> false | Some r -> Trace.sample_op r
let sample_msg = function None -> false | Some r -> Trace.sample_msg r

let counter s ?unit_ ?help name =
  match s.metrics with
  | Some m -> Metrics.counter m ?unit_ ?help name
  | None -> Atomic.make 0

let histogram s ?unit_ ?help ~edges name =
  match s.metrics with
  | Some m -> Metrics.histogram m ?unit_ ?help ~edges name
  | None -> Metrics.hist_create ~edges

let gauge_fn s ?unit_ ?help name f =
  Option.iter (fun m -> Metrics.gauge_fn m ?unit_ ?help name f) s.metrics

open Regemu_bounds

type algo = Abd | Abd_wb | Alg2

let algo_name = function
  | Abd -> "abd"
  | Abd_wb -> "abd-wb"
  | Alg2 -> "algorithm2"

let algo_of_name = function
  | "abd" -> Some Abd
  | "abd-wb" -> Some Abd_wb
  | "algorithm2" | "alg2" -> Some Alg2
  | _ -> None

type spec = {
  algo : algo;
  k : int;
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  couriers : int;
  chaos : bool;
  seed : int;
}

let default_spec ~algo ~chaos ~seed =
  { algo; k = 1; readers = 3; f = 1; n = 3; ops_per_client = 150;
    couriers = 3; chaos; seed }

type outcome = {
  spec : spec;
  ops : int;
  wall_s : float;
  throughput : float;
  mean_us : float;
  pcts_us : (float * float) list;
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_dropped : int;
  msgs_cut : int;
  crashes : int;
  restarts : int;
  retries : int;
  unavailable : int;
  check : Checker.result;
}

let clean o =
  Checker.ok o.check
  && o.ops = (o.spec.k + o.spec.readers) * o.spec.ops_per_client

let outcome_pp ppf o =
  Fmt.pf ppf
    "%-10s %s k=%d readers=%d f=%d n=%d: %d ops in %.3fs (%.0f ops/s), \
     latency µs mean=%.0f %a; %d msgs (%d dup, %d delayed, %d dropped), %d \
     crashes / %d restarts, %d retries, %d unavailable; %a"
    (algo_name o.spec.algo)
    (if o.spec.chaos then "chaos" else "quiet")
    o.spec.k o.spec.readers o.spec.f o.spec.n o.ops o.wall_s o.throughput
    o.mean_us
    Fmt.(
      list ~sep:(any " ") (fun ppf (p, v) ->
          Fmt.pf ppf "p%.0f=%.0f" (p *. 100.) v))
    o.pcts_us o.msgs_sent o.msgs_duplicated o.msgs_delayed o.msgs_dropped
    o.crashes o.restarts o.retries o.unavailable Checker.result_pp o.check

let run spec =
  let transport =
    {
      Transport.couriers = spec.couriers;
      delay_prob = (if spec.chaos then 0.05 else 0.0);
      max_delay_us = (if spec.chaos then 500 else 0);
      dup_prob = (if spec.chaos then 0.05 else 0.0);
      drop_prob = (if spec.chaos then 0.03 else 0.0);
      reorder = true;
      seed = spec.seed;
    }
  in
  let cluster =
    Cluster.create
      {
        Cluster.n = spec.n;
        transport;
        op_timeout_s = 30.0;
        recovery = Recovery.Persist;
        retry = Some Retry.default_config;
      }
  in
  let writers = List.init spec.k (fun _ -> Cluster.new_client cluster) in
  let readers = List.init spec.readers (fun _ -> Cluster.new_client cluster) in
  let write, read =
    match spec.algo with
    | Abd | Abd_wb ->
        let abd =
          Abd_live.create cluster ~f:spec.f
            ~write_back_reads:(spec.algo = Abd_wb) ()
        in
        (Abd_live.write abd, Abd_live.read abd)
    | Alg2 ->
        let p = Params.make_exn ~k:spec.k ~f:spec.f ~n:spec.n in
        let alg2 = Alg2_live.create cluster p ~writers () in
        (Alg2_live.write alg2, Alg2_live.read alg2)
  in
  Cluster.start cluster;
  (* atomicity is only promised by the write-back variant, and the
     brute-force checker needs a write-sequential-ish history: check it
     for single-writer write-back runs *)
  let checker =
    Checker.spawn cluster ~interval_s:0.01
      ~final_atomic:(spec.algo = Abd_wb && spec.k = 1)
      ()
  in
  let injector =
    if spec.chaos then
      Some
        (Fault.spawn cluster
           (Fault.default_config ~f:spec.f ~pool:spec.n ~seed:(spec.seed + 1)))
    else None
  in
  let t0 = Unix.gettimeofday () in
  let result =
    try
      Load.run ~write ~read ~writers ~readers
        ~ops_per_client:spec.ops_per_client;
      Ok ()
    with e -> Error e
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Option.iter Fault.stop injector;
  let check = Checker.stop checker in
  let stats = Cluster.stats cluster in
  let lats = Cluster.latencies_ns cluster in
  Cluster.shutdown cluster;
  (match result with Ok () -> () | Error e -> raise e);
  let ops = stats.Cluster.ops_completed in
  let mean_us =
    match lats with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a l -> a +. float_of_int l) 0.0 lats
        /. float_of_int (List.length lats) /. 1e3
  in
  {
    spec;
    ops;
    wall_s;
    throughput = (if wall_s > 0.0 then float_of_int ops /. wall_s else 0.0);
    mean_us;
    pcts_us =
      List.map
        (fun (p, ns) -> (p, float_of_int ns /. 1e3))
        (Regemu_sim.Stats.percentiles lats);
    msgs_sent = stats.Cluster.msgs_sent;
    msgs_delivered = stats.Cluster.msgs_delivered;
    msgs_duplicated = stats.Cluster.msgs_duplicated;
    msgs_delayed = stats.Cluster.msgs_delayed;
    msgs_dropped = stats.Cluster.msgs_dropped;
    msgs_cut = stats.Cluster.msgs_cut;
    crashes = stats.Cluster.crashes;
    restarts = stats.Cluster.restarts;
    retries = stats.Cluster.retries;
    unavailable = stats.Cluster.unavailable;
    check;
  }

let suite ?(ops_per_client = 150) ~seed () =
  List.concat_map
    (fun algo ->
      List.map
        (fun chaos -> { (default_spec ~algo ~chaos ~seed) with ops_per_client })
        [ false; true ])
    [ Abd; Abd_wb; Alg2 ]

let smoke_suite () =
  [
    { (default_spec ~algo:Abd ~chaos:true ~seed:42) with ops_per_client = 40 };
    {
      (default_spec ~algo:Alg2 ~chaos:true ~seed:43) with ops_per_client = 40;
    };
  ]

let spec_json s =
  Json.Obj
    [
      ("algo", Json.Str (algo_name s.algo));
      ("writers", Json.Int s.k);
      ("readers", Json.Int s.readers);
      ("f", Json.Int s.f);
      ("n", Json.Int s.n);
      ("ops_per_client", Json.Int s.ops_per_client);
      ("couriers", Json.Int s.couriers);
      ("chaos", Json.Bool s.chaos);
      ("seed", Json.Int s.seed);
    ]

let outcome_json o =
  let pct name p =
    ( name,
      Json.Float
        (try List.assoc p o.pcts_us with Not_found -> 0.0) )
  in
  Json.Obj
    [
      ("spec", spec_json o.spec);
      ("ops", Json.Int o.ops);
      ("wall_s", Json.Float o.wall_s);
      ("ops_per_s", Json.Float o.throughput);
      ("latency_mean_us", Json.Float o.mean_us);
      pct "latency_p50_us" 0.50;
      pct "latency_p95_us" 0.95;
      pct "latency_p99_us" 0.99;
      ("msgs_sent", Json.Int o.msgs_sent);
      ("msgs_delivered", Json.Int o.msgs_delivered);
      ("msgs_duplicated", Json.Int o.msgs_duplicated);
      ("msgs_delayed", Json.Int o.msgs_delayed);
      ("msgs_dropped", Json.Int o.msgs_dropped);
      ("msgs_cut", Json.Int o.msgs_cut);
      ("crashes", Json.Int o.crashes);
      ("restarts", Json.Int o.restarts);
      ("retries", Json.Int o.retries);
      ("unavailable", Json.Int o.unavailable);
      ("online_checks", Json.Int o.check.Checker.checks);
      ( "ws_regular",
        Json.Str
          (Fmt.str "%a" Regemu_history.Ws_check.verdict_pp o.check.Checker.ws)
      );
      ( "atomic",
        match o.check.Checker.atomic with
        | None -> Json.Null
        | Some b -> Json.Bool b );
      ("clean", Json.Bool (clean o));
    ]

let to_json outcomes =
  Json.Obj
    [
      ("schema", Json.Str "regemu-live-bench/1");
      ("results", Json.List (List.map outcome_json outcomes));
    ]

open Regemu_bounds
module Json = Regemu_obs.Json

type algo = Abd | Abd_wb | Alg2 | Cds

let algo_name = function
  | Abd -> "abd"
  | Abd_wb -> "abd-wb"
  | Alg2 -> "algorithm2"
  | Cds -> "cds"

let algo_names = List.map algo_name [ Abd; Abd_wb; Alg2; Cds ]

let algo_of_name = function
  | "abd" -> Some Abd
  | "abd-wb" -> Some Abd_wb
  | "algorithm2" | "alg2" -> Some Alg2
  | "cds" -> Some Cds
  | _ -> None

type spec = {
  algo : algo;
  k : int;
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  couriers : int;
  chaos : bool;
  reorder : bool;
  backend : Transport.backend;
  seed : int;
}

let default_spec ?(backend = Transport.Threads) ~algo ~chaos ~seed () =
  { algo; k = 1; readers = 3; f = 1; n = 3; ops_per_client = 150;
    couriers = 3; chaos; reorder = true; backend; seed }

type outcome = {
  spec : spec;
  ops : int;
  wall_s : float;
  throughput : float;
  mean_us : float;
  pcts_us : (float * float) list;
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_dropped : int;
  msgs_cut : int;
  crashes : int;
  restarts : int;
  retries : int;
  unavailable : int;
  space_cells : int;  (* resident cells, max over servers, max over run *)
  space_bytes : int;  (* resident bytes likewise *)
  space_cells_total : int;  (* cluster-wide resident cells at the peak *)
  check : Checker.result;
}

let clean o =
  Checker.ok o.check
  && o.ops = (o.spec.k + o.spec.readers) * o.spec.ops_per_client

let outcome_pp ppf o =
  Fmt.pf ppf
    "%-10s %-7s %s k=%d readers=%d f=%d n=%d: %d ops in %.3fs (%.0f ops/s), \
     latency µs mean=%.0f %a; %d msgs (%d dup, %d delayed, %d dropped), %d \
     crashes / %d restarts, %d retries, %d unavailable; %a"
    (algo_name o.spec.algo)
    (Transport.backend_name o.spec.backend)
    (if o.spec.chaos then "chaos" else "quiet")
    o.spec.k o.spec.readers o.spec.f o.spec.n o.ops o.wall_s o.throughput
    o.mean_us
    Fmt.(
      list ~sep:(any " ") (fun ppf (p, v) ->
          Fmt.pf ppf "p%.0f=%.0f" (p *. 100.) v))
    o.pcts_us o.msgs_sent o.msgs_duplicated o.msgs_delayed o.msgs_dropped
    o.crashes o.restarts o.retries o.unavailable Checker.result_pp o.check

let run ?(sink = Sink.none) spec =
  let transport =
    {
      Transport.couriers = spec.couriers;
      delay_prob = (if spec.chaos then 0.05 else 0.0);
      max_delay_us = (if spec.chaos then 500 else 0);
      dup_prob = (if spec.chaos then 0.05 else 0.0);
      drop_prob = (if spec.chaos then 0.03 else 0.0);
      reorder = spec.reorder;
      sharded = true;
      backend = spec.backend;
      seed = spec.seed;
    }
  in
  let cluster =
    Cluster.create ~sink
      {
        Cluster.n = spec.n;
        transport;
        op_timeout_s = 30.0;
        recovery = Recovery.Persist;
        retry = Some Retry.default_config;
        hedge = None;
        deadline = None;
      }
  in
  let writers = List.init spec.k (fun _ -> Cluster.new_client cluster) in
  let readers = List.init spec.readers (fun _ -> Cluster.new_client cluster) in
  let write, read =
    match spec.algo with
    | Abd | Abd_wb ->
        let abd =
          Abd_live.create cluster ~f:spec.f
            ~write_back_reads:(spec.algo = Abd_wb) ()
        in
        (Abd_live.write abd, Abd_live.read abd)
    | Alg2 ->
        let p = Params.make_exn ~k:spec.k ~f:spec.f ~n:spec.n in
        let alg2 = Alg2_live.create cluster p ~writers () in
        (Alg2_live.write alg2, Alg2_live.read alg2)
    | Cds ->
        let cds = Cds_live.create cluster ~f:spec.f ~writers () in
        (Cds_live.write cds, Cds_live.read cds)
  in
  Cluster.start cluster;
  (* the space axis: sample resident cells/bytes through the run and
     keep the maxima.  Sampling is unsynchronised (a gauge, not an
     invariant) — a mid-rehash glance on the domains backend may throw,
     so each sample is best-effort; the final sample after the load
     drains is quiescent and authoritative for these monotone stores. *)
  let space = ref (0, 0, 0) in
  let sample_space () =
    try
      let c, b, tot = Cluster.resident_space cluster in
      let c0, b0, t0 = !space in
      space := (max c c0, max b b0, max tot t0)
    with _ -> ()
  in
  let sampling = Atomic.make true in
  let sampler =
    Thread.create
      (fun () ->
        while Atomic.get sampling do
          sample_space ();
          Thread.delay 0.005
        done)
      ()
  in
  (* atomicity is only promised by the write-back variant, and the
     brute-force checker needs a write-sequential-ish history: check it
     for single-writer write-back runs *)
  let checker =
    Checker.spawn cluster ~interval_s:0.01
      ~final_atomic:(spec.algo = Abd_wb && spec.k = 1)
      ()
  in
  let injector =
    if spec.chaos then
      Some
        (Fault.spawn cluster
           (Fault.default_config ~f:spec.f ~pool:spec.n ~seed:(spec.seed + 1)))
    else None
  in
  let t0 = Clock.now_s () in
  let result =
    try
      Load.run ~write ~read ~writers ~readers
        ~ops_per_client:spec.ops_per_client;
      Ok ()
    with e -> Error e
  in
  let wall_s = Clock.now_s () -. t0 in
  Option.iter Fault.stop injector;
  Atomic.set sampling false;
  Thread.join sampler;
  sample_space ();
  let space_cells, space_bytes, space_cells_total = !space in
  let check = Checker.stop checker in
  let stats = Cluster.stats cluster in
  let lats = Cluster.latencies_ns cluster in
  Cluster.shutdown cluster;
  (match result with Ok () -> () | Error e -> raise e);
  let ops = stats.Cluster.ops_completed in
  let mean_us =
    match lats with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a l -> a +. float_of_int l) 0.0 lats
        /. float_of_int (List.length lats) /. 1e3
  in
  {
    spec;
    ops;
    wall_s;
    throughput = (if wall_s > 0.0 then float_of_int ops /. wall_s else 0.0);
    mean_us;
    pcts_us =
      List.map
        (fun (p, ns) -> (p, float_of_int ns /. 1e3))
        (Regemu_sim.Stats.percentiles lats);
    msgs_sent = stats.Cluster.msgs_sent;
    msgs_delivered = stats.Cluster.msgs_delivered;
    msgs_duplicated = stats.Cluster.msgs_duplicated;
    msgs_delayed = stats.Cluster.msgs_delayed;
    msgs_dropped = stats.Cluster.msgs_dropped;
    msgs_cut = stats.Cluster.msgs_cut;
    crashes = stats.Cluster.crashes;
    restarts = stats.Cluster.restarts;
    retries = stats.Cluster.retries;
    unavailable = stats.Cluster.unavailable;
    space_cells;
    space_bytes;
    space_cells_total;
    check;
  }

(* Single-core thread-pipeline throughput is noisy (scheduler +
   machine-neighbour effects, easily ±30% run to run); the saturation
   numbers are medians so one unlucky run doesn't masquerade as a
   regression.  The median outcome is kept whole — its latency
   percentiles belong to the run whose throughput is reported. *)
let run_median ?(reps = 1) ?sink spec =
  if reps < 1 then invalid_arg "run_median: reps must be >= 1";
  let outcomes = List.init reps (fun _ -> run ?sink spec) in
  let sorted =
    List.sort (fun a b -> Float.compare a.throughput b.throughput) outcomes
  in
  (* any dirty rep disqualifies the point: surface the first dirty one
     so [clean] reports the failure rather than a lucky median *)
  match List.find_opt (fun o -> not (clean o)) outcomes with
  | Some bad -> bad
  | None -> List.nth sorted (reps / 2)

(* Same defence, for a whole sweep: run the spec list [reps] times
   round-robin and keep each spec's median.  A machine stall lasting a
   few seconds poisons every back-to-back repetition of one point but
   only one round-robin pass of each, so the medians survive it. *)
let run_sweep_median ?(reps = 1) ?sink specs =
  if reps < 1 then invalid_arg "run_sweep_median: reps must be >= 1";
  let rounds = List.init reps (fun _ -> List.map (run ?sink) specs) in
  List.mapi
    (fun i _ ->
      let outs = List.map (fun round -> List.nth round i) rounds in
      match List.find_opt (fun o -> not (clean o)) outs with
      | Some bad -> bad
      | None ->
          let sorted =
            List.sort
              (fun a b -> Float.compare a.throughput b.throughput)
              outs
          in
          List.nth sorted (reps / 2))
    specs

let suite ?(ops_per_client = 150) ~seed () =
  List.concat_map
    (fun algo ->
      List.map
        (fun chaos ->
          { (default_spec ~algo ~chaos ~seed ()) with ops_per_client })
        [ false; true ])
    [ Abd; Abd_wb; Alg2; Cds ]

(* The socket smoke runs quiet: a killed child execs back with an empty
   store whatever the recovery mode, and ABD under quorum-visible
   amnesia is not WS-regular — a chaos run would (correctly) trip the
   checker.  The other backends keep the crash/restart chaos. *)
let smoke_suite ?(backend = Transport.Threads) () =
  let chaos = backend <> Transport.Socket in
  [
    {
      (default_spec ~backend ~algo:Abd ~chaos ~seed:42 ()) with
      ops_per_client = 40;
    };
    {
      (default_spec ~backend ~algo:Alg2 ~chaos ~seed:43 ()) with
      ops_per_client = 40;
    };
    {
      (default_spec ~backend ~algo:Cds ~chaos ~seed:44 ()) with
      ops_per_client = 40;
    };
  ]

let spec_json s =
  Json.Obj
    [
      ("algo", Json.Str (algo_name s.algo));
      ("writers", Json.Int s.k);
      ("readers", Json.Int s.readers);
      ("f", Json.Int s.f);
      ("n", Json.Int s.n);
      ("ops_per_client", Json.Int s.ops_per_client);
      ("couriers", Json.Int s.couriers);
      ("chaos", Json.Bool s.chaos);
      ("reorder", Json.Bool s.reorder);
      ("backend", Json.Str (Transport.backend_name s.backend));
      ("seed", Json.Int s.seed);
    ]

let outcome_json o =
  let pct name p =
    ( name,
      Json.Float
        (try List.assoc p o.pcts_us with Not_found -> 0.0) )
  in
  Json.Obj
    [
      ("spec", spec_json o.spec);
      ("ops", Json.Int o.ops);
      ("wall_s", Json.Float o.wall_s);
      ("ops_per_s", Json.Float o.throughput);
      ("latency_mean_us", Json.Float o.mean_us);
      pct "latency_p50_us" 0.50;
      pct "latency_p95_us" 0.95;
      pct "latency_p99_us" 0.99;
      ("msgs_sent", Json.Int o.msgs_sent);
      ("msgs_delivered", Json.Int o.msgs_delivered);
      ("msgs_duplicated", Json.Int o.msgs_duplicated);
      ("msgs_delayed", Json.Int o.msgs_delayed);
      ("msgs_dropped", Json.Int o.msgs_dropped);
      ("msgs_cut", Json.Int o.msgs_cut);
      ("crashes", Json.Int o.crashes);
      ("restarts", Json.Int o.restarts);
      ("retries", Json.Int o.retries);
      ("unavailable", Json.Int o.unavailable);
      ("space_resident_cells", Json.Int o.space_cells);
      ("space_resident_bytes", Json.Int o.space_bytes);
      ("space_cells_total", Json.Int o.space_cells_total);
      ("online_checks", Json.Int o.check.Checker.checks);
      ( "ws_regular",
        Json.Str
          (Fmt.str "%a" Regemu_history.Ws_check.verdict_pp o.check.Checker.ws)
      );
      ( "atomic",
        match o.check.Checker.atomic with
        | None -> Json.Null
        | Some b -> Json.Bool b );
      ("clean", Json.Bool (clean o));
    ]

let to_json outcomes =
  Json.Obj
    [
      ("schema", Json.Str "regemu-live-bench/1");
      ("results", Json.List (List.map outcome_json outcomes));
    ]

(* --- saturation mode ---------------------------------------------------- *)

let saturate_spec ?(backend = Transport.Threads) ~algo ~clients
    ~ops_per_client ~seed () =
  if clients < 2 then invalid_arg "saturate: need at least 2 clients";
  {
    algo;
    k = 1;
    readers = clients - 1;
    f = 1;
    n = 3;
    ops_per_client;
    couriers = 3;
    chaos = false;
    (* peak-pipeline mode: no artificial reordering in the lanes —
       chaos and correctness suites keep reorder on *)
    reorder = false;
    backend;
    seed;
  }

let saturate_clients = [ 2; 4; 8; 16 ]

let saturate_specs ?(backend = Transport.Threads) ?(clients = saturate_clients)
    ?(ops_per_client = 200) ~seed () =
  List.concat_map
    (fun algo ->
      List.map
        (fun c ->
          saturate_spec ~backend ~algo ~clients:c ~ops_per_client ~seed ())
        clients)
    [ Abd; Alg2; Cds ]

(* The head-to-head sweep: the same saturation point on every backend,
   backends adjacent in the run order (and the whole list round-robined
   by [run_sweep_median]), so each threads/domains/socket triple is
   measured under the same machine weather. *)
let saturate_ab_clients = [ 16; 32; 64; 128; 256 ]

let saturate_ab_backends =
  [ Transport.Threads; Transport.Domains; Transport.Socket ]

let saturate_ab_specs ?(clients = saturate_ab_clients)
    ?(ops_per_client = 200) ~seed () =
  List.concat_map
    (fun c ->
      List.map
        (fun backend ->
          saturate_spec ~backend ~algo:Abd ~clients:c ~ops_per_client ~seed ())
        saturate_ab_backends)
    clients

(* Throughput of the pre-sharding runtime on the reference machine
   (same spec shape: quiet, reorder off, ops_per_client 200, seed 42),
   recorded before the lane rewrite so BENCH_live.json carries its own
   before/after evidence.  Each value is the median of repeated runs of
   the old binary, interleaved with runs of the new one on the same
   machine state — the single-core box drifts ±30% between sessions,
   and only interleaved medians make the speedup column meaningful.
   (algo, clients, ops/s.) *)
let seed_baseline_ops_s =
  [
    (Abd, 2, 14104.); (Abd, 4, 23420.); (Abd, 8, 28595.); (Abd, 16, 30275.);
    (Alg2, 2, 14220.); (Alg2, 4, 20270.); (Alg2, 8, 29999.);
    (Alg2, 16, 31118.);
  ]

let clients_of_spec s = s.k + s.readers

(* regemu-bench/2: the [backend] column arrives, the never-populated
   [r_square] column of /1 is gone (the live sweep has no regression
   fit; the micro-bench emitter in bench/main.ml, which does, stays on
   /1), and non-threads rows carry [speedup_vs_threads] against the
   same-algo same-clients threads row of the same document. *)
let saturate_json outcomes =
  let threads_row algo clients =
    List.find_opt
      (fun o ->
        o.spec.algo = algo
        && o.spec.backend = Transport.Threads
        && clients_of_spec o.spec = clients)
      outcomes
  in
  let bench o =
    let clients = clients_of_spec o.spec in
    let pct p = try List.assoc p o.pcts_us with Not_found -> 0.0 in
    let baseline =
      (* the pre-sharding baseline was recorded on the threaded
         runtime: it is only an apples-to-apples column there *)
      if o.spec.backend <> Transport.Threads then None
      else
        List.find_opt
          (fun (a, c, _) -> a = o.spec.algo && c = clients)
          seed_baseline_ops_s
    in
    Json.Obj
      ([
         ( "name",
           Json.Str
             (Fmt.str "saturate/%s/%s/clients=%d" (algo_name o.spec.algo)
                (Transport.backend_name o.spec.backend)
                clients) );
         ("measure", Json.Str "throughput");
         ("backend", Json.Str (Transport.backend_name o.spec.backend));
         (* ns per completed operation, the schema's canonical unit *)
         ( "ns_per_run",
           if o.throughput > 0.0 then Json.Float (1e9 /. o.throughput)
           else Json.Null );
         ("clients", Json.Int clients);
         ("ops", Json.Int o.ops);
         ("ops_per_s", Json.Float o.throughput);
         ("latency_p50_us", Json.Float (pct 0.50));
         ("latency_p95_us", Json.Float (pct 0.95));
         ("latency_p99_us", Json.Float (pct 0.99));
         ("space_resident_cells", Json.Int o.space_cells);
         ("space_resident_bytes", Json.Int o.space_bytes);
         ("clean", Json.Bool (clean o));
       ]
      @ (match
           if o.spec.backend = Transport.Threads then None
           else threads_row o.spec.algo clients
         with
        | None -> []
        | Some th ->
            [
              ( "speedup_vs_threads",
                if th.throughput > 0.0 then
                  Json.Float (o.throughput /. th.throughput)
                else Json.Null );
            ])
      @
      match baseline with
      | None -> []
      | Some (_, _, b) ->
          [
            ("baseline_ops_per_s", Json.Float b);
            ( "speedup",
              if b > 0.0 then Json.Float (o.throughput /. b) else Json.Null );
          ])
  in
  Json.Obj
    [
      ("schema", Json.Str "regemu-bench/2");
      ("benchmarks", Json.List (List.map bench outcomes));
    ]

let backend_names = List.map Transport.backend_name saturate_ab_backends

(* Structural check of the regemu-bench/2 document, run before every
   write: catches a schema drift before a dashboard does.  /2 requires
   a valid [backend] on every row and rejects a lingering [r_square]
   (always null in /1, dropped rather than carried dead). *)
let validate_bench_json json =
  let ( let* ) = Result.bind in
  let field name = function
    | Json.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Fmt.str "missing field %S" name))
    | _ -> Error "expected an object"
  in
  let* schema = field "schema" json in
  let* () =
    match schema with
    | Json.Str "regemu-bench/2" -> Ok ()
    | Json.Str s -> Error (Fmt.str "bad schema %S" s)
    | _ -> Error "schema must be a string"
  in
  let* benchmarks = field "benchmarks" json in
  let* bs =
    match benchmarks with
    | Json.List bs -> Ok bs
    | _ -> Error "benchmarks must be a list"
  in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      let* name = field "name" b in
      let* () =
        match name with
        | Json.Str _ -> Ok ()
        | _ -> Error "name must be a string"
      in
      let* measure = field "measure" b in
      let* () =
        match measure with
        | Json.Str _ -> Ok ()
        | _ -> Error "measure must be a string"
      in
      let* backend = field "backend" b in
      let* () =
        match backend with
        | Json.Str s when List.mem s backend_names -> Ok ()
        | Json.Str s -> Error (Fmt.str "unknown backend %S" s)
        | _ -> Error "backend must be a string"
      in
      let* () =
        match b with
        | Json.Obj kvs when List.mem_assoc "r_square" kvs ->
            Error "r_square was dropped in regemu-bench/2"
        | _ -> Ok ()
      in
      let numeric what = function
        | Json.Float _ | Json.Int _ | Json.Null -> Ok ()
        | _ -> Error (Fmt.str "%s must be a number or null" what)
      in
      let* ns = field "ns_per_run" b in
      let* () = numeric "ns_per_run" ns in
      match b with
      | Json.Obj kvs -> (
          match List.assoc_opt "speedup_vs_threads" kvs with
          | Some v -> numeric "speedup_vs_threads" v
          | None -> Ok ())
      | _ -> Ok ())
    (Ok ()) bs

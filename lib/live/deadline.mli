(** Adaptive per-operation deadlines from observed RPC latencies.

    The static [Retry.deadline_s] treats a 10 ms cluster and a 10 s
    cluster the same: an operation only fails after the full worst-case
    budget even when every healthy round trip takes microseconds.  This
    estimator watches the client's own reply latencies and answers
    "how long should {e this} cluster be given?" — a windowed quantile
    (robust to a few outliers) combined with an EWMA (fast to track
    level shifts), scaled by a safety multiplier and clamped.

    The estimator is a pure fold over its sample sequence: no clock, no
    RNG, no allocation after {!create}.  Under {!Sched} the samples
    themselves are virtual-time differences, so the estimate — and
    every decision made from it — is a deterministic function of
    (seed, config).

    {!Hedge} reads the same state through {!latency_s} to derive its
    retransmission delay, so one sample stream feeds both defenses. *)

type config = {
  window : int;  (** samples kept for the quantile; ≥ 1 *)
  quantile : float;  (** nearest-rank quantile over the window, [0,1] *)
  ewma_alpha : float;  (** EWMA weight of the newest sample, (0,1] *)
  mult : float;  (** safety multiplier on the latency estimate; > 0 *)
  min_s : float;  (** clamp floor for {!estimate_s}, seconds *)
  max_s : float;
      (** clamp ceiling, seconds — also the answer before any sample
          arrives, so callers keep their static deadline until there
          is evidence to tighten it *)
}

val default_config : config
(** window 64, p95, α 0.2, ×4, clamped to [50 ms, 10 s] — the ceiling
    matches [Retry.default_config.deadline_s]. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on a malformed field. *)

type t

val create : config -> t
(** Validates, then allocates the sample window once. *)

val observe : t -> float -> unit
(** Record one reply latency in seconds (negative values clip to 0).
    Not thread-safe: callers serialize under their own lock (the
    cluster feeds this under the client mutex). *)

val samples : t -> int
(** Samples currently in the window (saturates at [window]). *)

val ewma : t -> float
(** The smoothed latency, 0 before any sample. *)

val quantile : t -> float
(** The configured window quantile, 0 before any sample. *)

val latency_s : t -> float
(** [max quantile ewma] — the raw latency level {!Hedge} keys off;
    0 before any sample. *)

val estimate_s : t -> float
(** The adaptive deadline: [clamp (mult × latency_s)], or [max_s]
    before any sample. *)

(** A thread-safe FIFO mailbox built on [Mutex]/[Condition].

    The unit of server-side asynchrony in the live runtime: every
    server thread drains one mailbox, every courier thread pushes into
    them.  Delivery is exactly-once — an item pushed before [close] is
    popped by exactly one consumer (the transport layer, not the
    mailbox, is where duplication and reordering are injected).

    [close] is {e drain-then-None}: it stops further pushes and wakes
    blocked poppers, but items already queued remain poppable — a
    server asked to shut down still processes the requests it has
    accepted before reporting end-of-stream.  Only once the queue is
    empty do [pop]/[pop_batch] return [None]. *)

type 'a t

(** [create ?sched ()] — with [sched], blocking pops park on the
    cooperative scheduler instead of the condvar ({!Sched_hook}). *)
val create : ?sched:Sched_hook.t -> unit -> 'a t

(** [push t x] appends [x].  A no-op after {!close}. *)
val push : 'a t -> 'a -> unit

(** [pop t] blocks until an item is available and removes it.  [None]
    once the mailbox has been closed {e and} drained. *)
val pop : 'a t -> 'a option

(** Non-blocking variant: [None] when currently empty. *)
val try_pop : 'a t -> 'a option

(** [pop_batch t ~max] blocks until at least one item is available and
    removes up to [max] of them, oldest first — one lock acquisition
    and at most one condvar wait for a whole burst.  [None] once
    closed and drained.  Raises [Invalid_argument] if [max < 1]. *)
val pop_batch : 'a t -> max:int -> 'a list option

val length : 'a t -> int

(** Stop accepting pushes and wake all blocked poppers; queued items
    stay poppable, then pops return [None]. *)
val close : 'a t -> unit

(** Total items accepted by [push] (monotone; for accounting tests). *)
val pushed : 'a t -> int

(** Total items handed out by [pop]/[try_pop]. *)
val popped : 'a t -> int

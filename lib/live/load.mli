(** The load generator: a pool of client threads driving an emulated
    register as fast as it will go.

    Each writer thread performs [ops_per_client] writes of distinct
    values ("w<writer>-<seq>"), each reader thread [ops_per_client]
    reads, all concurrently.  Exceptions raised by any worker (e.g.
    {!Cluster.Timeout}) are re-raised on the calling thread after all
    workers have been joined, so a liveness failure surfaces as a test
    failure. *)

open Regemu_objects

val run :
  write:(Cluster.client -> Value.t -> unit) ->
  read:(Cluster.client -> Value.t) ->
  writers:Cluster.client list ->
  readers:Cluster.client list ->
  ops_per_client:int ->
  unit

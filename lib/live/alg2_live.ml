open Regemu_bounds
open Regemu_objects
open Regemu_netsim

type cell = { server : int; reg : int }

(* per-writer covering-discipline slot over its register-cell set; all
   fields are touched only under the owning client's mutex *)
type slot = {
  client : Cluster.client;
  rset : cell array;
  mutable ts_val : Value.t;
  mutable acked : int list;  (* rset indexes acknowledged for ts_val *)
  outstanding : (int, Value.t) Hashtbl.t;  (* rset index -> value in flight *)
}

type t = {
  cluster : Cluster.t;
  params : Params.t;
  naive : bool;
  cells : cell list;
  by_server : cell list array;
  slots : (int * slot) list;  (* writer client id -> slot *)
}

let cells t = List.length t.cells

let distribute cluster (p : Params.t) =
  (* the Section 3.3 layout: set i's register j on server (i+j) mod n *)
  let sizes = Formulas.set_sizes p in
  let by_server = Array.make p.n [] in
  let sets =
    List.mapi
      (fun i size ->
        Array.init size (fun j ->
            let server = (i + j) mod p.n in
            let reg = Cluster.alloc_reg cluster ~server in
            let c = { server; reg } in
            by_server.(server) <- by_server.(server) @ [ c ];
            c))
      sizes
  in
  (sets, by_server)

let naive_cells cluster (p : Params.t) =
  let by_server = Array.make p.n [] in
  let cells =
    List.init ((2 * p.f) + 1) (fun i ->
        let reg = Cluster.alloc_reg cluster ~server:i in
        let c = { server = i; reg } in
        by_server.(i) <- [ c ];
        c)
  in
  (cells, by_server)

let create cluster (p : Params.t) ?(naive = false) ~writers () =
  if List.length writers <> p.k then
    invalid_arg "Alg2_live.create: writer count mismatch";
  if Cluster.num_servers cluster <> p.n then
    invalid_arg "Alg2_live.create: server count mismatch";
  let mk_slot rset client =
    {
      client;
      rset;
      ts_val = Value.with_ts 0 Value.v0;
      acked = [];
      outstanding = Hashtbl.create 8;
    }
  in
  if naive then begin
    let cells, by_server = naive_cells cluster p in
    let rset = Array.of_list cells in
    let slots =
      List.map
        (fun c -> (Id.Client.to_int (Cluster.client_id c), mk_slot rset c))
        writers
    in
    { cluster; params = p; naive; cells; by_server; slots }
  end
  else begin
    let sets, by_server = distribute cluster p in
    let z = Formulas.z p in
    let slots =
      List.mapi
        (fun i c ->
          ( Id.Client.to_int (Cluster.client_id c),
            mk_slot (List.nth sets (i / z)) c ))
        writers
    in
    {
      cluster;
      params = p;
      naive;
      cells = List.concat_map Array.to_list sets;
      by_server;
      slots;
    }
  end

let slot_of t c what =
  match List.assoc_opt (Id.Client.to_int (Cluster.client_id c)) t.slots with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Alg2_live.%s: not a registered writer" what)

(* send the slot's current value to rset index [i]; register the
   covering-discipline acknowledgement handler.  Caller holds the
   client mutex (reply handlers do by construction).  The request is
   [sticky]: its acknowledgement matters across operations, so it is
   retransmitted until acked even if the submitting operation has
   long returned. *)
let rec send_current t slot i =
  let cell = slot.rset.(i) in
  let v = slot.ts_val in
  Hashtbl.replace slot.outstanding i v;
  Cluster.rpc t.cluster ~src:slot.client ~sticky:true cell.server
    ~make:(fun rid -> Proto.Reg_write { rid; reg = cell.reg; proposed = v })
    ~handler:(fun _ ->
      match Hashtbl.find_opt slot.outstanding i with
      | None -> ()  (* naive mode: a superseded acknowledgement *)
      | Some sent ->
          Hashtbl.remove slot.outstanding i;
          if Value.equal sent slot.ts_val then begin
            if not (List.mem i slot.acked) then slot.acked <- i :: slot.acked
          end
          else if not t.naive then
            (* a stale acknowledgement finally arrived: the cell now
               holds an old value; immediately re-send the current one *)
            send_current t slot i)

let submit t slot v ~quorum =
  Cluster.locked slot.client (fun () ->
      slot.ts_val <- v;
      slot.acked <- [];
      Array.iteri
        (fun i _ ->
          if t.naive || not (Hashtbl.mem slot.outstanding i) then
            send_current t slot i)
        slot.rset);
  (* the quorum counts acked cells, so the watchdog's server list
     carries one entry per cell of the register set *)
  let cell_servers =
    Array.to_list (Array.map (fun c -> c.server) slot.rset)
  in
  Cluster.await t.cluster slot.client ~need:(cell_servers, quorum) (fun () ->
      List.length slot.acked >= quorum)

(* read every cell of [n - f] servers, return the maximum *)
let collect t cl =
  let scans = ref 0 in
  let best = ref Value.v0 in
  (* servers holding no cell count as scanned for free; the watchdog
     needs the rest, one entry per server that must answer *)
  let auto =
    Array.fold_left
      (fun a cells -> if cells = [] then a + 1 else a)
      0 t.by_server
  in
  let busy_servers =
    List.filteri
      (fun s _ -> t.by_server.(s) <> [])
      (List.init t.params.Params.n Fun.id)
  in
  Cluster.locked cl (fun () ->
      Array.iter
        (fun cells ->
          match cells with
          | [] -> incr scans
          | cells ->
              let remaining = ref (List.length cells) in
              List.iter
                (fun cell ->
                  Cluster.rpc t.cluster ~src:cl cell.server
                    ~make:(fun rid -> Proto.Reg_read { rid; reg = cell.reg })
                    ~handler:(fun reply ->
                      (match reply with
                      | Proto.Reg_read_reply { stored; _ } ->
                          best := Value.max !best stored
                      | _ -> ());
                      decr remaining;
                      if !remaining = 0 then incr scans))
                cells)
        t.by_server);
  Cluster.await t.cluster cl
    ~need:(busy_servers, max 0 (t.params.Params.n - t.params.Params.f - auto))
    (fun () -> !scans >= t.params.Params.n - t.params.Params.f);
  Cluster.locked cl (fun () -> !best)

let write t c v =
  let slot = slot_of t c "write" in
  ignore
    (Cluster.invoke t.cluster c (Regemu_sim.Trace.H_write v) (fun () ->
         let latest = collect t c in
         let quorum =
           if t.naive then t.params.Params.f + 1
           else Array.length slot.rset - t.params.Params.f
         in
         submit t slot (Value.with_ts (Value.ts latest + 1) v) ~quorum;
         Value.Unit))

let read t c =
  Cluster.invoke t.cluster c Regemu_sim.Trace.H_read (fun () ->
      Value.payload (collect t c))

(* The length-prefixed binary wire codec of the [Socket] backend.

   Frame: [len : u32 BE][body], where the body is one {!msg}.  All
   integers are 8-byte big-endian two's complement (OCaml ints fit);
   strings are u32-length-prefixed bytes; values and payloads are
   tagged unions in declaration order.  The encoding is canonical —
   one byte string per message — so decode-then-encode is the
   identity on well-formed frames, which the round-trip tests pin
   down.  Framing is transport-neutral: the same bytes work over a
   Unix-domain socketpair today and a TCP stream tomorrow. *)

open Regemu_objects
open Regemu_netsim

exception Malformed of string

type msg =
  | Env of Transport_intf.envelope
  | Ensure_regs of int
      (* control: grow the server's register file to [n] cells, so
         parent-side [alloc_reg] calls reach an already-running child *)

let bad fmt = Fmt.kstr (fun s -> raise (Malformed s)) fmt

(* refuse absurd frames before allocating for them *)
let max_frame = 16 * 1024 * 1024

(* --- primitive writers -------------------------------------------------- *)

let add_int b n =
  let tmp = Bytes.create 8 in
  Bytes.set_int64_be tmp 0 (Int64.of_int n);
  Buffer.add_bytes b tmp

let add_u32 b n =
  let tmp = Bytes.create 4 in
  Bytes.set_int32_be tmp 0 (Int32.of_int n);
  Buffer.add_bytes b tmp

let add_byte b n = Buffer.add_char b (Char.chr (n land 0xff))

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

(* --- primitive readers -------------------------------------------------- *)

type rd = { s : string; mutable pos : int }

let need r n what =
  if r.pos + n > String.length r.s then bad "truncated %s" what

let get_byte r what =
  need r 1 what;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_int r what =
  need r 8 what;
  let v = Int64.to_int (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let get_u32 r what =
  need r 4 what;
  let v = Int32.to_int (String.get_int32_be r.s r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then bad "negative length in %s" what;
  v

let get_str r what =
  let n = get_u32 r what in
  need r n what;
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

(* --- values -------------------------------------------------------------- *)

let rec add_value b = function
  | Value.Unit -> add_byte b 0
  | Value.Bool v ->
      add_byte b 1;
      add_byte b (if v then 1 else 0)
  | Value.Int n ->
      add_byte b 2;
      add_int b n
  | Value.Str s ->
      add_byte b 3;
      add_str b s
  | Value.Pair (l, r) ->
      add_byte b 4;
      add_value b l;
      add_value b r

let rec get_value r =
  match get_byte r "value tag" with
  | 0 -> Value.Unit
  | 1 -> (
      match get_byte r "bool" with
      | 0 -> Value.Bool false
      | 1 -> Value.Bool true
      | n -> bad "bool byte %d" n)
  | 2 -> Value.Int (get_int r "int")
  | 3 -> Value.Str (get_str r "str")
  | 4 ->
      let l = get_value r in
      let rv = get_value r in
      Value.Pair (l, rv)
  | n -> bad "value tag %d" n

(* --- payloads ------------------------------------------------------------ *)

let add_payload b = function
  | Proto.Query { rid } ->
      add_byte b 0;
      add_int b rid
  | Proto.Query_reply { rid; stored } ->
      add_byte b 1;
      add_int b rid;
      add_value b stored
  | Proto.Update { rid; proposed } ->
      add_byte b 2;
      add_int b rid;
      add_value b proposed
  | Proto.Update_reply { rid } ->
      add_byte b 3;
      add_int b rid
  | Proto.Reg_read { rid; reg } ->
      add_byte b 4;
      add_int b rid;
      add_int b reg
  | Proto.Reg_read_reply { rid; stored } ->
      add_byte b 5;
      add_int b rid;
      add_value b stored
  | Proto.Reg_write { rid; reg; proposed } ->
      add_byte b 6;
      add_int b rid;
      add_int b reg;
      add_value b proposed
  | Proto.Reg_write_reply { rid } ->
      add_byte b 7;
      add_int b rid
  | Proto.Kquery { rid; key } ->
      add_byte b 8;
      add_int b rid;
      add_int b key
  | Proto.Kquery_reply { rid; key; stored } ->
      add_byte b 9;
      add_int b rid;
      add_int b key;
      add_value b stored
  | Proto.Kupdate { rid; key; proposed } ->
      add_byte b 10;
      add_int b rid;
      add_int b key;
      add_value b proposed
  | Proto.Kupdate_reply { rid; key } ->
      add_byte b 11;
      add_int b rid;
      add_int b key
  | Proto.Cquery { rid } ->
      add_byte b 12;
      add_int b rid
  | Proto.Cquery_reply { rid; slots } ->
      add_byte b 13;
      add_int b rid;
      add_u32 b (List.length slots);
      List.iter
        (fun (slot, v) ->
          add_int b slot;
          add_value b v)
        slots
  | Proto.Cwrite { rid; slot; proposed } ->
      add_byte b 14;
      add_int b rid;
      add_int b slot;
      add_value b proposed
  | Proto.Cwrite_reply { rid; slot } ->
      add_byte b 15;
      add_int b rid;
      add_int b slot

let get_payload r =
  match get_byte r "payload tag" with
  | 0 -> Proto.Query { rid = get_int r "rid" }
  | 1 ->
      let rid = get_int r "rid" in
      Proto.Query_reply { rid; stored = get_value r }
  | 2 ->
      let rid = get_int r "rid" in
      Proto.Update { rid; proposed = get_value r }
  | 3 -> Proto.Update_reply { rid = get_int r "rid" }
  | 4 ->
      let rid = get_int r "rid" in
      Proto.Reg_read { rid; reg = get_int r "reg" }
  | 5 ->
      let rid = get_int r "rid" in
      Proto.Reg_read_reply { rid; stored = get_value r }
  | 6 ->
      let rid = get_int r "rid" in
      let reg = get_int r "reg" in
      Proto.Reg_write { rid; reg; proposed = get_value r }
  | 7 -> Proto.Reg_write_reply { rid = get_int r "rid" }
  | 8 ->
      let rid = get_int r "rid" in
      Proto.Kquery { rid; key = get_int r "key" }
  | 9 ->
      let rid = get_int r "rid" in
      let key = get_int r "key" in
      Proto.Kquery_reply { rid; key; stored = get_value r }
  | 10 ->
      let rid = get_int r "rid" in
      let key = get_int r "key" in
      Proto.Kupdate { rid; key; proposed = get_value r }
  | 11 ->
      let rid = get_int r "rid" in
      Proto.Kupdate_reply { rid; key = get_int r "key" }
  | 12 -> Proto.Cquery { rid = get_int r "rid" }
  | 13 ->
      let rid = get_int r "rid" in
      let count = get_u32 r "slot count" in
      let slots = ref [] in
      for _ = 1 to count do
        let slot = get_int r "slot" in
        let v = get_value r in
        slots := (slot, v) :: !slots
      done;
      Proto.Cquery_reply { rid; slots = List.rev !slots }
  | 14 ->
      let rid = get_int r "rid" in
      let slot = get_int r "slot" in
      Proto.Cwrite { rid; slot; proposed = get_value r }
  | 15 ->
      let rid = get_int r "rid" in
      Proto.Cwrite_reply { rid; slot = get_int r "slot" }
  | n -> bad "payload tag %d" n

(* --- messages ------------------------------------------------------------ *)

let add_dest b = function
  | Transport_intf.To_server s ->
      add_byte b 0;
      add_int b s
  | Transport_intf.To_client c ->
      add_byte b 1;
      add_int b c

let get_dest r =
  match get_byte r "dest tag" with
  | 0 -> Transport_intf.To_server (get_int r "server")
  | 1 -> Transport_intf.To_client (get_int r "client")
  | n -> bad "dest tag %d" n

let encode msg =
  let b = Buffer.create 64 in
  (match msg with
  | Env env ->
      add_byte b 0xE0;
      add_int b env.Transport_intf.src;
      add_dest b env.dest;
      add_payload b env.payload
  | Ensure_regs n ->
      add_byte b 0xC0;
      add_int b n);
  Buffer.contents b

let decode s =
  let r = { s; pos = 0 } in
  let msg =
    match get_byte r "msg tag" with
    | 0xE0 ->
        let src = get_int r "src" in
        let dest = get_dest r in
        let payload = get_payload r in
        Env { Transport_intf.src; dest; payload }
    | 0xC0 -> Ensure_regs (get_int r "regs")
    | n -> bad "msg tag %d" n
  in
  if r.pos <> String.length s then
    bad "%d trailing bytes" (String.length s - r.pos);
  msg

(* --- framing ------------------------------------------------------------- *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

let write_msg fd msg =
  let body = encode msg in
  let n = String.length body in
  let frame = Bytes.create (4 + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit_string body 0 frame 4 n;
  write_all fd frame 0 (4 + n)

(* read exactly [len] bytes; [`Eof] only at offset 0 (a clean
   inter-frame boundary), otherwise a mid-frame EOF is malformed *)
let read_exactly fd len what =
  let buf = Bytes.create len in
  let rec go pos =
    if pos >= len then `Ok buf
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> if pos = 0 then `Eof else bad "eof inside %s" what
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let read_msg fd =
  match read_exactly fd 4 "frame header" with
  | `Eof -> None
  | `Ok hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len <= 0 || len > max_frame then bad "frame length %d" len;
      (match read_exactly fd len "frame body" with
      | `Eof -> bad "eof inside frame body"
      | `Ok body -> Some (decode (Bytes.to_string body)))

type config = {
  base_s : float;
  cap_s : float;
  deadline_s : float;
  grace_s : float;
}

let default_config =
  { base_s = 0.08; cap_s = 1.0; deadline_s = 10.0; grace_s = 0.3 }

let validate cfg =
  if not (cfg.base_s > 0.0) then
    invalid_arg "Retry: base_s must be positive";
  if cfg.cap_s < cfg.base_s then
    invalid_arg "Retry: cap_s must be >= base_s";
  if not (cfg.deadline_s > 0.0) then
    invalid_arg "Retry: deadline_s must be positive";
  if cfg.grace_s < 0.0 then invalid_arg "Retry: grace_s must be >= 0"

type pending = {
  server : int;
  payload : Regemu_netsim.Proto.payload;
  sticky : bool;
  mutable tries : int;
  mutable backoff_s : float;
  mutable next_at : float;
}

let make cfg ~now ~server ~sticky payload =
  {
    server;
    payload;
    sticky;
    tries = 0;
    backoff_s = cfg.base_s;
    next_at = now +. cfg.base_s;
  }

let due cfg rng ~now p =
  if now < p.next_at then false
  else begin
    p.tries <- p.tries + 1;
    (* decorrelated jitter: next backoff uniform in [base, 3 * previous],
       capped — spreads retransmissions of competing clients apart
       instead of synchronizing them *)
    let frac = float_of_int (Regemu_sim.Rng.int rng ~bound:1000) /. 999.0 in
    let hi = Float.max cfg.base_s (3.0 *. p.backoff_s) in
    p.backoff_s <-
      Float.min cfg.cap_s (cfg.base_s +. (frac *. (hi -. cfg.base_s)));
    p.next_at <- now +. p.backoff_s;
    true
  end

open Regemu_objects
open Regemu_netsim

(* Timestamps are [seq * ts_stride + slot], so [Value.max] over
   timestamped values orders (seq, writer) lexicographically: no two
   writers ever produce the same timestamp, and a writer's own
   timestamps strictly increase (its collect sees its previous write's
   quorum).  1024 writers per emulation is far beyond anything the
   benches drive. *)
let ts_stride = 1024

type t = {
  cluster : Cluster.t;
  f : int;
  replicas : int list;
  slots : (int * int) list;  (* writer client id -> slot index *)
}

let create cluster ~f ~writers () =
  let needed = (2 * f) + 1 in
  if Cluster.num_servers cluster < needed then
    invalid_arg
      (Fmt.str "Cds_live.create: need at least %d servers, have %d" needed
         (Cluster.num_servers cluster));
  if List.length writers > ts_stride then
    invalid_arg
      (Fmt.str "Cds_live.create: at most %d writers supported" ts_stride);
  let slots =
    List.mapi
      (fun i c -> (Id.Client.to_int (Cluster.client_id c), i))
      writers
  in
  { cluster; f; replicas = List.init needed Fun.id; slots }

let replicas t = List.length t.replicas
let writer_slots t = List.length t.slots

let slot_of t c =
  match List.assoc_opt (Id.Client.to_int (Cluster.client_id c)) t.slots with
  | Some s -> s
  | None -> invalid_arg "Cds_live.write: not a registered writer"

(* same quorum skeleton as [Abd_live]: fresh rid per server, await
   [f+1] deduplicated replies, fold them *)
let quorum_round t cl ~request ~fold ~init =
  let quorum = t.f + 1 in
  let count = ref 0 in
  let acc = ref init in
  Cluster.locked cl (fun () ->
      Cluster.rpc_quorum t.cluster ~src:cl ~quorum ~make:request
        ~handler:(fun reply ->
          acc := fold !acc reply;
          incr count)
        t.replicas);
  Cluster.await t.cluster cl
    ~need:(t.replicas, quorum)
    (fun () -> !count >= quorum);
  Cluster.locked cl (fun () -> !acc)

(* the collect phase: every resident slot of a quorum, folded to the
   lexicographic maximum *)
let collect t cl =
  quorum_round t cl
    ~request:(fun rid -> Proto.Cquery { rid })
    ~init:Value.v0
    ~fold:(fun best reply ->
      match reply with
      | Proto.Cquery_reply { slots; _ } ->
          List.fold_left (fun b (_, v) -> Value.max b v) best slots
      | _ -> best)

let write t cl v =
  let slot = slot_of t cl in
  ignore
    (Cluster.invoke t.cluster cl (Regemu_sim.Trace.H_write v) (fun () ->
         let latest = collect t cl in
         let seq = (Value.ts latest / ts_stride) + 1 in
         let ts_val = Value.with_ts ((seq * ts_stride) + slot) v in
         ignore
           (quorum_round t cl
              ~request:(fun rid -> Proto.Cwrite { rid; slot; proposed = ts_val })
              ~init:()
              ~fold:(fun () _ -> ()));
         Value.Unit))

let read t cl =
  Cluster.invoke t.cluster cl Regemu_sim.Trace.H_read (fun () ->
      Value.payload (collect t cl))

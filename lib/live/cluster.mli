(** A live cluster: every server of the network model as a real OS
    thread draining a {!Mailbox}, clients as caller threads blocking on
    per-client [Condition]s, and the environment as the {!Transport}
    couriers plus whatever crash/restart faults are injected.

    The servers execute {!Regemu_netsim.Proto.step} — byte-for-byte the
    same protocol core as the scripted simulator in
    {!Regemu_netsim.Net}.  What changes is only the environment: the OS
    scheduler and the transport's seeded faults replace the scripted
    event choice.

    {2 Crash semantics}

    {!crash} halts a server's message processing; its mailbox keeps
    queueing.  {!restart} resumes it (its storage survives, like a
    reboot with a persistent disk).  In the asynchronous model a
    crashed process is indistinguishable from an arbitrarily slow one,
    so "stop consuming, never lose" is the faithful translation: a
    server crashed forever equals the paper's crash, and the protocols
    must — and do — tolerate [f] of those.

    {2 Locking discipline}

    Each client has one mutex guarding its reply-handler table and any
    protocol state owned by that client.  Reply handlers run {e under}
    that mutex (on courier threads), so handler bodies and the
    client's own thread never race; client code wraps its accesses in
    {!locked}.  The only lock nesting is client-mutex → transport/
    mailbox-mutex, so the system is deadlock-free by ordering. *)

open Regemu_objects
open Regemu_netsim

type config = {
  n : int;  (** number of server threads *)
  transport : Transport.config;
  op_timeout_s : float;
      (** an operation awaiting longer than this raises [Timeout] —
          turns a liveness bug into a test failure instead of a hang *)
}

val default_config : n:int -> seed:int -> config

exception Timeout of string

type t
type client

val create : config -> t

(** Spawn server, courier, and heartbeat threads.  Allocate clients
    and register cells before starting. *)
val start : t -> unit

val num_servers : t -> int
val new_client : t -> client
val client_id : client -> Id.Client.t

(** Allocate a plain register cell on a server (before {!start}). *)
val alloc_reg : t -> server:int -> int

(** {2 Client-side primitives (the live analogue of {!Net}'s API)} *)

(** Globally fresh request id. *)
val fresh_rid : t -> int

(** Run [f] under the client's mutex.  All client-side protocol state
    must be touched only under it. *)
val locked : client -> (unit -> 'a) -> 'a

(** Register a one-shot reply handler for [rid].  The caller must hold
    the client's mutex ({!locked}); handlers themselves already do. *)
val on_reply : client -> rid:int -> (Proto.payload -> unit) -> unit

(** Send a request to a server.  Safe with or without the client
    mutex held. *)
val send : t -> src:client -> int -> Proto.payload -> unit

(** Block the calling thread until [pred] holds.  [pred] is evaluated
    under the client's mutex; it is re-checked whenever a reply is
    dispatched to this client and on a periodic heartbeat.  Raises
    {!Timeout} after [op_timeout_s]. *)
val await : t -> client -> (unit -> bool) -> unit

(** {2 High-level operations}

    [invoke t cl hop body] records the operation in the cluster history
    (real-time invocation ticket), runs [body] on the calling thread,
    records the return, and yields the result. *)
val invoke : t -> client -> Regemu_sim.Trace.hop -> (unit -> Value.t) -> Value.t

(** {2 Failures} *)

val crash : t -> int -> unit
val restart : t -> int -> unit
val is_up : t -> int -> bool
val crashed_count : t -> int

(** {2 Observation} *)

val history : t -> Regemu_history.History.t
val latencies_ns : t -> int list
val completed_ops : t -> int

type stats = {
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  crashes : int;
  restarts : int;
  ops_completed : int;
}

val stats : t -> stats

(** Peek a server's storage (assertions/debugging only). *)
val peek_reg : t -> server:int -> int -> Value.t

(** Stop everything: revive crashed servers so they can exit, close
    mailboxes, stop the transport, join all threads.  Idempotent. *)
val shutdown : t -> unit

(** A live cluster: every server of the network model as a real OS
    thread draining a {!Mailbox}, clients as caller threads blocking on
    per-client [Condition]s, and the environment as the {!Transport}
    couriers plus whatever crash/partition/loss faults are injected.

    The servers execute {!Regemu_netsim.Proto.step} — byte-for-byte the
    same protocol core as the scripted simulator in
    {!Regemu_netsim.Net}.  What changes is only the environment: the OS
    scheduler and the transport's seeded faults replace the scripted
    event choice.

    {2 Crash semantics}

    {!crash} halts a server's message processing; its mailbox keeps
    queueing.  {!restart} resumes it.  What the server remembers is the
    {!Recovery.mode} of the cluster: [Persist] (storage survives, the
    paper's model) or [Amnesia] (a diskless reboot — the store is
    wiped, and the consistency checkers are expected to flag the
    fallout).  In the asynchronous model a crashed process is
    indistinguishable from an arbitrarily slow one, so "stop consuming,
    never lose" is the faithful translation of a [Persist] crash.

    {2 Losing messages, and surviving it}

    With a loss-free transport a request eventually arrives; with
    {!Transport} drops or partitions it may not.  The client layer
    compensates: {!rpc} registers retransmission state for every
    request and {!await} retransmits due requests (exponential backoff,
    decorrelated jitter — see {!Retry}) each time the awaiting thread
    wakes.  Retransmissions reuse the request id, and reply dispatch is
    one-shot per id, so duplicate replies — whether from transport
    duplication or retransmission — never double-count toward a
    quorum.

    {2 Graceful degradation}

    [await ~need:(servers, required)] also runs the liveness watchdog:
    once an await has stalled past the retry grace period while fewer
    than [required] of the operation's [servers] are up and reachable,
    the operation fails fast with a structured {!Unavailable} instead
    of blocking until the deadline — and once the fault heals,
    subsequent operations proceed normally.  An operation that
    out-lives the per-op retry deadline fails the same way.  The
    legacy [op_timeout_s] backstop ({!Timeout}) remains for
    retry-disabled clusters and genuine liveness bugs.

    {2 Locking discipline}

    Each client has one mutex guarding its reply-handler table,
    retransmission table, and any protocol state owned by that client.
    Reply handlers run {e under} that mutex (on courier threads), so
    handler bodies and the client's own thread never race; client code
    wraps its accesses in {!locked}.  The only lock nesting is
    client-mutex → transport/mailbox/server/global-mutex, so the system
    is deadlock-free by ordering. *)

open Regemu_objects
open Regemu_netsim

type config = {
  n : int;  (** number of server threads *)
  transport : Transport.config;
  op_timeout_s : float;
      (** an operation awaiting longer than this raises [Timeout] —
          turns a liveness bug into a test failure instead of a hang *)
  recovery : Recovery.mode;  (** what restart preserves *)
  retry : Retry.config option;
      (** [None] disables retransmission and the watchdog (the loss-free
          PR 1 behaviour); [Some] makes clients survive a lossy
          transport *)
  hedge : Hedge.config option;
      (** [Some] makes {!rpc_quorum} contact a health-biased subset
          first and retransmit to the rest after an adaptive delay —
          the gray-failure defense; [None] (the default) broadcasts to
          every replica as before *)
  deadline : Deadline.config option;
      (** [Some] tightens the static per-op retry deadline to an
          adaptive estimate learned from this client's observed reply
          latencies; [None] (the default) keeps the static budget *)
}

val default_config : n:int -> seed:int -> config
(** [Persist] recovery, retry enabled with {!Retry.default_config},
    hedging and adaptive deadlines off. *)

exception Timeout of string

type cause = Quorum_lost | Deadline_exceeded

val cause_pp : cause Fmt.t

type unavailable = {
  client : Id.Client.t;
  cause : cause;
  elapsed_s : float;  (** since the operation's invocation *)
  reachable : int;  (** needed servers up and reachable at failure *)
  required : int;
}

(** The structured fail-fast result of an operation that cannot make
    progress: more than [f] of the servers it needs are down or
    partitioned away ([Quorum_lost]), or it out-lived its retry
    deadline ([Deadline_exceeded]).  Never raised while the cluster
    satisfies the model's [≤ f] fault bound. *)
exception Unavailable of unavailable

val unavailable_pp : unavailable Fmt.t

type t
type client

(** Raises [Invalid_argument] on a non-positive [n] or [op_timeout_s],
    or an invalid transport/retry configuration.  With [sched], every
    server loop and courier runs as a cooperative actor on the given
    scheduler and all blocking points park on it ({!Sched_hook}) —
    deterministic-schedule testing; without it (the default) the
    cluster runs on OS threads exactly as before.

    With [sink] ({!Sink.none} by default), the cluster traces itself:
    each client records sampled operation spans (with nested [await]
    quorum-wait spans) plus always-recorded [retry]/[unavailable]
    events, a control-plane recorder logs
    [crash]/[restart]/[partition]/[heal]/[set-drop] instants, the
    transport records per-lane message points, and the cluster's
    counters — message totals, retries, backoff histogram, op and
    mailbox totals — register in the metrics registry.  The sink also
    reaches components built {e on} this cluster ({!Checker},
    {!Fault}) via {!sink}. *)
val create : ?sched:Sched_hook.t -> ?sink:Sink.t -> config -> t

(** The observability sink the cluster was created with. *)
val sink : t -> Sink.t

(** Spawn server, courier, and heartbeat threads (or register them as
    scheduler actors under [?sched], which replaces the heartbeat with
    timed parks).  Allocate clients and register cells before
    starting. *)
val start : t -> unit

val num_servers : t -> int
val recovery_mode : t -> Recovery.mode
val new_client : t -> client
val client_id : client -> Id.Client.t

(** Allocate a plain register cell on a server (before {!start}). *)
val alloc_reg : t -> server:int -> int

(** {2 Client-side primitives (the live analogue of {!Net}'s API)} *)

(** Globally fresh request id. *)
val fresh_rid : t -> int

(** Run [f] under the client's mutex.  All client-side protocol state
    must be touched only under it. *)
val locked : client -> (unit -> 'a) -> 'a

(** Register a one-shot reply handler for [rid].  The caller must hold
    the client's mutex ({!locked}); handlers themselves already do.
    Low-level: {!rpc} also registers retransmission state. *)
val on_reply : client -> rid:int -> (Proto.payload -> unit) -> unit

(** Send a request to a server, fire-and-forget (no retransmission).
    Safe with or without the client mutex held. *)
val send : t -> src:client -> int -> Proto.payload -> unit

(** [rpc t ~src server ~make ~handler] allocates a fresh rid, sends
    [make rid] to [server], registers the one-shot [handler], and (when
    retry is enabled) a retransmission entry that {!await} keeps
    resending until the first reply arrives.  [sticky] entries survive
    the end of the await that created them and keep being retransmitted
    by this client's later awaits — for requests whose acknowledgement
    matters beyond the current operation (Algorithm 2's covering
    writes).  The caller must hold the client's mutex. *)
val rpc :
  t ->
  src:client ->
  ?sticky:bool ->
  int ->
  make:(int -> Proto.payload) ->
  handler:(Proto.payload -> unit) ->
  unit

(** [rpc_quorum t ~src ~quorum ~make ~handler replicas] issues one
    quorum round's RPCs.  Without a hedge config this is exactly
    [List.iter (rpc ...)]: broadcast to every replica.  With one, the
    round contacts an initial subset of [quorum + spares] replicas —
    rotated by the client's seeded RNG, biased toward the healthiest
    (lowest reply-latency EWMA) — and arms the deferred rest behind the
    adaptive hedge delay; if the round is still open when it elapses,
    the deferred replicas are contacted too (fresh rids, so the
    one-shot dispatch dedupes hedged replies like retransmitted ones).
    The hedge disarms with the round.  The caller must hold the
    client's mutex and should pass the same [replicas] to [await]'s
    [need] so the watchdog sees the whole replica set. *)
val rpc_quorum :
  t ->
  src:client ->
  quorum:int ->
  make:(int -> Proto.payload) ->
  handler:(Proto.payload -> unit) ->
  int list ->
  unit

(** Block the calling thread until [pred] holds.  [pred] is evaluated
    under the client's mutex; it is re-checked whenever a reply is
    dispatched to this client and on a periodic heartbeat, and each
    wake retransmits the client's due requests.  [need = (servers,
    required)] names the servers the operation draws replies from
    (with multiplicity, if several awaited replies live on one server)
    and how many replies the predicate needs: the watchdog uses it to
    fail fast with {!Unavailable} when the quorum is unreachable.
    Raises {!Timeout} after [op_timeout_s] as a last-resort backstop. *)
val await : t -> client -> ?need:int list * int -> (unit -> bool) -> unit

(** {2 High-level operations}

    [invoke t cl hop body] records the operation in the cluster history
    (real-time invocation ticket), runs [body] on the calling thread,
    records the return, and yields the result.  Starts the per-op
    retry-deadline clock.  If [body] escapes with {!Unavailable}, the
    ticket stays pending — sound for the checkers, which treat a
    pending operation as concurrent with everything after it. *)
val invoke : t -> client -> Regemu_sim.Trace.hop -> (unit -> Value.t) -> Value.t

(** Start the per-op retry-deadline clock {e without} taking a history
    ticket — for layers ([Regemu_keyspace]) that keep their own
    bounded operation log instead of the cluster {!Histlog}. *)
val begin_op : client -> unit

(** {2 Failures} *)

val crash : t -> int -> unit

(** Resume a crashed server; under [Amnesia] recovery its store is
    wiped first. *)
val restart : t -> int -> unit

val is_up : t -> int -> bool
val crashed_count : t -> int

(** Up {e and} reachable through the current partition. *)
val is_reachable : t -> int -> bool

(** {2 Network faults (nemesis passthroughs to {!Transport})} *)

val split : t -> groups:int list list -> clients_with:int -> unit
val heal : t -> unit
val set_drop : t -> ?requests:float -> ?replies:float -> unit -> unit

(** {2 Gray faults (nemesis passthroughs to {!Transport})} *)

(** Add [us] microseconds to every envelope on a server's link
    (0 heals); the replica is slow, not dead. *)
val set_slow : t -> server:int -> int -> unit

val slow_us : t -> server:int -> int

(** Freeze / resume a server's request lane (a stutter burst). *)
val freeze : t -> server:int -> unit

val thaw : t -> server:int -> unit
val frozen : t -> server:int -> bool

(** Clear every slow link and frozen lane. *)
val heal_gray : t -> unit

(** A server's reply-latency EWMA as observed by the clients, seconds
    (0 until a reply from it is seen; meaningful only with hedging or
    adaptive deadlines on). *)
val server_health : t -> server:int -> float

(** {2 Observation} *)

val history : t -> Regemu_history.History.t

(** The underlying sharded history log — the online checker polls it
    incrementally instead of snapshotting. *)
val log : t -> Histlog.t
val latencies_ns : t -> int list
val completed_ops : t -> int

type stats = {
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_slowed : int;  (** held by a gray slow link *)
  msgs_dropped : int;  (** lost to the random drop rates *)
  msgs_cut : int;  (** lost to a partition *)
  crashes : int;
  restarts : int;
  wipes : int;  (** amnesia restarts that erased a store *)
  retries : int;  (** client retransmissions *)
  unavailable : int;  (** operations failed fast with {!Unavailable} *)
  hedges : int;  (** hedged retransmissions to deferred replicas *)
  hedge_wins : int;  (** hedged replies that counted toward a quorum *)
  ops_completed : int;
}

val stats : t -> stats

(** Retransmission backoffs bucketed by duration:
    [(bucket_upper_bound_ms, count)], last bucket unbounded. *)
val backoff_histogram : t -> (int * int) list

(** Peek a server's storage (assertions/debugging only). *)
val peek_reg : t -> server:int -> int -> Value.t

(** Distinct keys resident in a server's keyed max-register table —
    the per-server space metric of the keyspace experiments. *)
val server_num_keys : t -> server:int -> int

(** Peek one key's max-register on a server. *)
val peek_kmax : t -> server:int -> int -> Value.t

(** One CDS per-writer slot of one server's store; {!Value.v0} for a
    slot never written there. *)
val peek_slot : t -> server:int -> int -> Value.t

(** Cells resident on one server's store — see
    {!Regemu_netsim.Proto.resident_cells}. *)
val server_resident_cells : t -> server:int -> int

(** Bytes resident on one server's store (canonical wire encoding). *)
val server_resident_bytes : t -> server:int -> int

(** [(cells_max, bytes_max, cells_total)] over all servers: the
    per-server maxima of resident cells and bytes plus the cluster-wide
    cell total.  Best-effort on the [Domains] backend (stores are
    sampled without synchronisation) and parent-side only on [Socket]
    (children own the real stores). *)
val resident_space : t -> int * int * int

(** Stop everything: revive crashed servers so they can exit, close
    mailboxes, stop the transport, join all threads.  Idempotent. *)
val shutdown : t -> unit

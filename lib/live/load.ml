open Regemu_objects

let run ~write ~read ~writers ~readers ~ops_per_client =
  let first_error = Atomic.make None in
  let guard body () =
    try body ()
    with e ->
      ignore (Atomic.compare_and_set first_error None (Some e))
  in
  let writer_thread i cl () =
    for j = 1 to ops_per_client do
      write cl (Value.Str (Printf.sprintf "w%d-%04d" i j))
    done
  in
  let reader_thread cl () =
    for _ = 1 to ops_per_client do
      ignore (read cl)
    done
  in
  let threads =
    List.mapi (fun i cl -> Thread.create (guard (writer_thread i cl)) ()) writers
    @ List.map (fun cl -> Thread.create (guard (reader_thread cl)) ()) readers
  in
  List.iter Thread.join threads;
  match Atomic.get first_error with Some e -> raise e | None -> ()

(** The chaos thread: crashes and restarts servers while a live run is
    in progress, keeping at most [f] servers down at any instant so the
    protocols' wait-freedom guarantee is exactly exercised, never
    exceeded.

    Message-level faults (delay / duplication / reordering) are
    configured on the {!Transport}; this module owns process faults —
    including the {e gray} kind: with [gray] set, a second seeded loop
    drives slow-not-dead faults ({!Cluster.set_slow} /
    {!Cluster.freeze}) against random servers.  Gray faults never
    count against the [f] crash budget (a slow server is still
    correct) and are all cleared on {!stop}. *)

(** Seeded slow-replica modes, paced by [gray_period_s]:
    - [Straggler us]: one (seeded) server gets a fixed [+us] link;
    - [Rotating us]: the slowdown re-picks its victim every step,
      healing the previous one;
    - [Stutter]: freeze a random server's request lane for one step,
      thaw it the next — bursty, queued-not-lost;
    - [Creep]: one server degrades by [step_us] per step up to
      [max_us] — the failing-disk curve. *)
type gray =
  | Straggler of int
  | Rotating of int
  | Stutter
  | Creep of { step_us : int; max_us : int }

type config = {
  f : int;  (** never more than this many down at once *)
  pool : int;  (** target servers [0 .. pool-1] *)
  period_s : float;  (** mean delay between fault actions *)
  leave_crashed : int;  (** servers left permanently down on [stop], ≤ f *)
  gray : gray option;  (** default [None]: crash/restart only *)
  gray_period_s : float;  (** mean delay between gray steps *)
  seed : int;
}

val default_config : f:int -> pool:int -> seed:int -> config

type t

(** Raises [Invalid_argument] unless [0 ≤ leave_crashed ≤ f],
    [pool ≥ 2f+1] (crashing up to [f] servers of a smaller pool would
    leave no quorum), and [period_s > 0].  With [sched], the injector
    runs as a cooperative actor pacing itself in virtual time. *)
val spawn : ?sched:Sched_hook.t -> Cluster.t -> config -> t

(** Stop injecting; restarts all but [leave_crashed] of the currently
    crashed servers, clears every gray fault
    ({!Cluster.heal_gray}), then joins the injector threads. *)
val stop : t -> unit

(** Counters (stable once [stop] has returned). *)
val crashes : t -> int

val restarts : t -> int

(** Gray actions applied (slow-link sets, freezes; thaws and heals not
    counted). *)
val grays : t -> int

(** The chaos thread: crashes and restarts servers while a live run is
    in progress, keeping at most [f] servers down at any instant so the
    protocols' wait-freedom guarantee is exactly exercised, never
    exceeded.

    Message-level faults (delay / duplication / reordering) are
    configured on the {!Transport}; this module owns process faults. *)

type config = {
  f : int;  (** never more than this many down at once *)
  pool : int;  (** target servers [0 .. pool-1] *)
  period_s : float;  (** mean delay between fault actions *)
  leave_crashed : int;  (** servers left permanently down on [stop], ≤ f *)
  seed : int;
}

val default_config : f:int -> pool:int -> seed:int -> config

type t

(** Raises [Invalid_argument] unless [0 ≤ leave_crashed ≤ f],
    [pool ≥ 2f+1] (crashing up to [f] servers of a smaller pool would
    leave no quorum), and [period_s > 0].  With [sched], the injector
    runs as a cooperative actor pacing itself in virtual time. *)
val spawn : ?sched:Sched_hook.t -> Cluster.t -> config -> t

(** Stop injecting; restarts all but [leave_crashed] of the currently
    crashed servers, then joins the injector thread. *)
val stop : t -> unit

(** Counters (stable once [stop] has returned). *)
val crashes : t -> int

val restarts : t -> int

(** The tail-latency A/B bench: what a single 10x gray straggler does
    to operation latency (ABD by default, any {!Live_bench.algo} via
    the [algo] field), and how much of it hedged quorum rounds claw
    back.

    Three arms run the same seeded workload on the same cluster shape,
    all with the hedge/deadline machinery armed (so subset selection
    and the adaptive deadline are held constant across arms):

    - [baseline]: no straggler — the fault-free reference;
    - [unhedged]: one server's link at [straggler_us] per envelope,
      but hedges never fire — each round sends to its quorum-sized
      subset and waits, the ablation;
    - [hedged]: the same straggler, hedges live.

    Every server link carries [base_us] per envelope (the network
    floor), so [straggler_us = 10 * base_us] is a 10x straggler.  The
    headline number is hedged-under-straggler p99 over fault-free p99,
    written to the [regemu-tail/1] document. *)

type spec = {
  algo : Live_bench.algo;  (** which emulation runs the arms *)
  readers : int;  (** reader clients; always exactly one writer *)
  f : int;
  n : int;
  ops_per_client : int;
  base_us : int;  (** per-envelope delay on every server link *)
  straggler_us : int;  (** the straggler's per-envelope delay *)
  straggler : int;  (** which server turns gray *)
  couriers : int;
  backend : Transport.backend;  (** message fabric (default [Threads]) *)
  seed : int;
}

(** 1+3 clients, f=1 n=3, 120 ops/client, base 1ms, straggler 10ms on
    server 2; [algo] defaults to [Abd]. *)
val default_spec :
  ?backend:Transport.backend ->
  ?algo:Live_bench.algo ->
  seed:int ->
  unit ->
  spec

(** [default_spec] cut to 25 ops/client for CI. *)
val smoke_spec :
  ?backend:Transport.backend ->
  ?algo:Live_bench.algo ->
  seed:int ->
  unit ->
  spec

type arm = Baseline | Unhedged | Hedged

val arm_name : arm -> string

type arm_outcome = {
  arm : arm;
  ops : int;
  wall_s : float;
  mean_us : float;
  pcts_us : (float * float) list;
  hedges : int;
  hedge_wins : int;
  msgs_slowed : int;
  retries : int;
  unavailable : int;
  check : Checker.result;
}

type outcome = { spec : spec; arms : arm_outcome list }

(** Run all three arms in order (baseline, unhedged, hedged), [reps]
    (default 1) interleaved rounds each; each reported arm is its
    median-by-p99 round, so a transient machine stall cannot
    masquerade as a tail regression.  A rep that fails its checks
    disqualifies the arm whole.  Raises [Invalid_argument] on a
    malformed spec. *)
val run : ?sink:Sink.t -> ?reps:int -> spec -> outcome

(** Every arm completed all its operations with a quiet checker. *)
val clean : outcome -> bool

(** Hedged-under-straggler p99 over fault-free p99; 0 when the
    baseline measured nothing. *)
val p99_ratio : outcome -> float

val outcome_pp : outcome Fmt.t

(** The [regemu-tail/1] document. *)
val to_json : outcome -> Regemu_obs.Json.t

(** Structural check of a [regemu-tail/1] document: schema tag, the
    three arms in order with numeric latency percentiles, a numeric
    headline ratio. *)
val validate_tail_json : Regemu_obs.Json.t -> (unit, string) result

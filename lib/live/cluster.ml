open Regemu_objects
open Regemu_netsim

type config = {
  n : int;
  transport : Transport.config;
  op_timeout_s : float;
  recovery : Recovery.mode;
  retry : Retry.config option;
  hedge : Hedge.config option;
  deadline : Deadline.config option;
}

let default_config ~n ~seed =
  {
    n;
    transport = Transport.default_config ~seed;
    op_timeout_s = 30.0;
    recovery = Recovery.Persist;
    retry = Some Retry.default_config;
    hedge = None;
    deadline = None;
  }

exception Timeout of string

type cause = Quorum_lost | Deadline_exceeded

let cause_pp ppf = function
  | Quorum_lost -> Fmt.string ppf "quorum lost"
  | Deadline_exceeded -> Fmt.string ppf "deadline exceeded"

type unavailable = {
  client : Id.Client.t;
  cause : cause;
  elapsed_s : float;
  reachable : int;
  required : int;
}

exception Unavailable of unavailable

let unavailable_pp ppf u =
  Fmt.pf ppf "client %a unavailable after %.2fs (%a: %d of %d needed servers \
              reachable)"
    Id.Client.pp u.client u.elapsed_s cause_pp u.cause u.reachable u.required

(* how many mailbox messages a server drains per wakeup *)
let server_batch = 16

type server = {
  sid : int;
  store : Proto.store;
  mailbox : (int * Proto.payload) Mailbox.t;
  sm : Mutex.t;
  sc : Condition.t;
  mutable up : bool;
  mutable closing : bool;
  mutable sthread : Thread.t option;
}

(* a hedged round's deferred sends, armed until the round completes or
   the adaptive delay elapses; owned by the client mutex *)
type hedge_pending = {
  h_armed : float;  (* when the round's initial sends went out *)
  h_due : float;  (* monotonic fire time *)
  h_servers : int list;  (* the not-yet-contacted replicas *)
  h_make : int -> Proto.payload;
  h_handler : Proto.payload -> unit;
}

type client = {
  id : Id.Client.t;
  crec : Sink.Trace.recorder option;  (* this client's trace stream *)
  mutable op_live : bool;
      (* the current op's span is open (it was sampled); client-thread
         private, so awaits know whether to nest their own spans *)
  cm : Mutex.t;
  cc : Condition.t;
  handlers : (int, Proto.payload -> unit) Hashtbl.t;
  pending : (int, Retry.pending) Hashtbl.t;  (* rid -> retransmission state *)
  crng : Regemu_sim.Rng.t;  (* jitter; touched only under [cm] *)
  hlog : Histlog.writer;  (* this client's private history shard *)
  dl : Deadline.t option;  (* reply-latency estimator; under [cm] *)
  mutable hedge : hedge_pending option;  (* armed hedge; under [cm] *)
  mutable op_t0 : float;  (* monotonic invocation time of the current op *)
  mutable waiting : bool;  (* a thread is blocked in [await]; under [cm],
                              read opportunistically by wakers *)
  mutable pred : (unit -> bool) option;
      (* the predicate that await is blocked on, under [cm]: reply
         dispatch signals only when it flips, so the sub-quorum replies
         of a round never wake the client *)
}

(* retransmission-backoff histogram bucket upper edges, milliseconds
   (the metrics histogram adds the unbounded bucket itself) *)
let backoff_edges_ms = [| 100; 250; 500; 1000; 2000; 4000 |]

type t = {
  cfg : config;
  sched : Sched_hook.t option;
  backend : Transport.backend;  (* the fabric actually running (sched forces
                                   [Threads]); decides where servers execute *)
  sink : Sink.t;
  ctl : Sink.Trace.recorder option;  (* control-plane events: faults, nemesis *)
  alarm : Alarm.t;  (* interrupts the heartbeat/pacer sleeps at shutdown *)
  servers : server array;
  mutable clients : client array;
  gm : Mutex.t;  (* guards [clients] growth and fault counters *)
  rid : int Atomic.t;
  log : Histlog.t;
  mutable transport : Transport.t option;
  mutable heartbeat : Thread.t option;
  mutable pacer : Thread.t option;  (* hedge timer thread (threaded mode) *)
  mutable running : bool;
  mutable shut : bool;
  mutable crashes : int;
  mutable restarts : int;
  mutable wipes : int;
  retries : int Atomic.t;
  unavailable : int Atomic.t;
  health : float Atomic.t array;
      (* per-server reply-latency EWMA (seconds, 0 = no data); feeds
         hedged replica selection.  Benign races in threaded mode: a
         lost update only staleness-shifts a score. *)
  hedge_sent : int Atomic.t;
  hedge_won : int Atomic.t;
  backoff_hist : Sink.Metrics.histogram;  (* backoff_ms per retransmission *)
}

let transport t =
  match t.transport with
  | Some tr -> tr
  | None -> invalid_arg "Cluster: torn down"

let sink t = t.sink

(* --- routing ----------------------------------------------------------- *)

let dispatch_to_client t cid payload =
  let clients = t.clients in
  if cid >= 0 && cid < Array.length clients then begin
    let cl = clients.(cid) in
    Mutex.lock cl.cm;
    (match Hashtbl.find_opt cl.handlers (Proto.rid_of payload) with
    | Some f ->
        (* one-shot: a duplicated or retransmitted reply must not
           double-count toward a quorum *)
        Hashtbl.remove cl.handlers (Proto.rid_of payload);
        f payload;
        (* targeted wakeup: only the client this reply progressed, only
           when it is blocked, and only when its awaited predicate
           flipped — a duplicate reply (no handler) or a sub-quorum
           reply wakes nobody *)
        if cl.waiting then (
          match cl.pred with
          | Some p -> if p () then Condition.signal cl.cc
          | None -> Condition.signal cl.cc)
    | None -> ());
    Mutex.unlock cl.cm
  end

(* Execute one server step on the delivering thread — the [Domains]
   backend's request path: the lane's domain is the server's execution
   context, so there is no mailbox and no server thread.  A crashed
   server blocks its lane head-of-line (messages wait, exactly like
   mail to a crashed-but-reachable server); the transport gates the
   lane too, so this wait only catches envelopes already drained when
   the crash landed. *)
let step_here t srv src payload =
  Mutex.lock srv.sm;
  while (not srv.up) && not srv.closing do
    Condition.wait srv.sc srv.sm
  done;
  let closing = srv.closing in
  Mutex.unlock srv.sm;
  if not closing then
    List.iter
      (fun reply ->
        Transport.send (transport t)
          {
            Transport.src = srv.sid;
            dest = Transport.To_client src;
            payload = reply;
          })
      (Proto.step srv.store payload)

let deliver t (env : Transport.envelope) =
  match env.dest with
  | Transport.To_server i -> (
      match t.backend with
      | Transport.Domains -> step_here t t.servers.(i) env.src env.payload
      | Transport.Threads | Transport.Socket ->
          (* [Socket] never routes a request here — children serve
             them — but a stray one waits in the mailbox harmlessly *)
          Mailbox.push t.servers.(i).mailbox (env.src, env.payload))
  | Transport.To_client c -> dispatch_to_client t c env.payload

(* --- servers ----------------------------------------------------------- *)

let server_loop t srv =
  let handle (src, payload) =
    Mutex.lock srv.sm;
    (* protect, not straight-line unlock: on scheduler teardown the
       suspend raises with [srv.sm] re-held, and a leaked [sm] wedges
       every other actor that touches this server *)
    let closing =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock srv.sm)
        (fun () ->
          (match t.sched with
          | None ->
              while (not srv.up) && not srv.closing do
                Condition.wait srv.sc srv.sm
              done
          | Some hook ->
              hook.suspend ~mutex:srv.sm (fun () -> srv.up || srv.closing));
          srv.closing)
    in
    if closing then false
    else begin
      let replies = Proto.step srv.store payload in
      List.iter
        (fun reply ->
          Transport.send (transport t)
            {
              Transport.src = srv.sid;
              dest = Transport.To_client src;
              payload = reply;
            })
        replies;
      true
    end
  in
  let rec go () =
    match Mailbox.pop_batch srv.mailbox ~max:server_batch with
    | None -> ()  (* mailbox closed: teardown *)
    | Some batch -> if List.for_all handle batch then go ()
  in
  go ()

(* --- construction ------------------------------------------------------ *)

let create ?sched ?(sink = Sink.none) cfg =
  if cfg.n <= 0 then invalid_arg "Cluster.create: n must be positive";
  if not (cfg.op_timeout_s > 0.0) then
    invalid_arg "Cluster.create: op_timeout_s must be positive";
  Option.iter Retry.validate cfg.retry;
  Option.iter Hedge.validate_config cfg.hedge;
  Option.iter Deadline.validate_config cfg.deadline;
  let servers =
    Array.init cfg.n (fun sid ->
        {
          sid;
          store = Proto.store_create ();
          mailbox = Mailbox.create ?sched ();
          sm = Mutex.create ();
          sc = Condition.create ();
          up = true;
          closing = false;
          sthread = None;
        })
  in
  let t =
    {
      cfg;
      sched;
      backend = Transport.effective_backend ?sched cfg.transport;
      sink;
      ctl = Sink.recorder sink ~name:"cluster";
      alarm = Alarm.create ();
      servers;
      clients = [||];
      gm = Mutex.create ();
      rid = Atomic.make 0;
      log = Histlog.create ();
      transport = None;
      heartbeat = None;
      pacer = None;
      running = false;
      shut = false;
      crashes = 0;
      restarts = 0;
      wipes = 0;
      retries =
        Sink.counter sink ~help:"client retransmissions" "client.retries";
      unavailable =
        Sink.counter sink ~help:"operations failed fast as Unavailable"
          "client.unavailable";
      health = Array.init cfg.n (fun _ -> Atomic.make 0.0);
      hedge_sent =
        Sink.counter sink ~help:"hedged retransmissions to deferred replicas"
          "client.hedge_sent";
      hedge_won =
        Sink.counter sink ~help:"replies from hedged requests that counted"
          "client.hedge_won";
      backoff_hist =
        Sink.histogram sink ~unit_:"ms"
          ~help:"retransmission backoff at each resend" ~edges:backoff_edges_ms
          "client.backoff_ms";
    }
  in
  t.transport <-
    Some
      (Transport.create ?sched ~sink
         ~server_regs:(fun s ->
           if s >= 0 && s < cfg.n then Proto.num_regs servers.(s).store else 0)
         cfg.transport ~servers:cfg.n ~deliver:(deliver t));
  Sink.gauge_fn sink ~help:"operations invoked" "ops.invoked" (fun () ->
      Histlog.invoked t.log);
  Sink.gauge_fn sink ~help:"operations completed" "ops.completed" (fun () ->
      Histlog.completed t.log);
  Sink.gauge_fn sink ~help:"messages enqueued to server mailboxes"
    "mailbox.pushed" (fun () ->
      Array.fold_left (fun a s -> a + Mailbox.pushed s.mailbox) 0 t.servers);
  Sink.gauge_fn sink ~help:"messages drained from server mailboxes"
    "mailbox.popped" (fun () ->
      Array.fold_left (fun a s -> a + Mailbox.popped s.mailbox) 0 t.servers);
  Sink.gauge_fn sink ~help:"server crashes injected" "cluster.crashes"
    (fun () -> t.crashes);
  Sink.gauge_fn sink ~help:"server restarts" "cluster.restarts" (fun () ->
      t.restarts);
  Sink.gauge_fn sink ~help:"amnesia restarts that wiped a store"
    "cluster.wipes" (fun () -> t.wipes);
  Sink.gauge_fn sink
    ~help:"resident register cells, max over servers (space axis)"
    "store.resident_cells" (fun () ->
      Array.fold_left
        (fun a s -> max a (Proto.resident_cells s.store))
        0 t.servers);
  Sink.gauge_fn sink
    ~help:"resident cell bytes (canonical encoding), max over servers"
    "store.resident_bytes" (fun () ->
      Array.fold_left
        (fun a s -> max a (Proto.resident_bytes s.store))
        0 t.servers);
  Sink.gauge_fn sink
    ~help:"adaptive per-op deadline, microseconds (max over clients)"
    "client.deadline_estimate_us" (fun () ->
      Array.fold_left
        (fun acc cl ->
          match cl.dl with
          | Some dl -> max acc (int_of_float (Deadline.estimate_s dl *. 1e6))
          | None -> acc)
        0 t.clients);
  t

let num_servers t = t.cfg.n
let recovery_mode t = t.cfg.recovery

let new_client t =
  Mutex.lock t.gm;
  let ix = Array.length t.clients in
  let id = Id.Client.of_int ix in
  let cl =
    {
      id;
      crec = Sink.recorder t.sink ~name:(Fmt.str "client-%d" ix);
      op_live = false;
      cm = Mutex.create ();
      cc = Condition.create ();
      handlers = Hashtbl.create 32;
      pending = Hashtbl.create 32;
      crng =
        Regemu_sim.Rng.create (t.cfg.transport.Transport.seed + (7919 * ix));
      hlog = Histlog.new_writer t.log ~client:id;
      dl =
        (* the estimator also runs when only hedging is on: the hedge
           delay keys off the same observed-latency state *)
        (match (t.cfg.deadline, t.cfg.hedge) with
        | Some dcfg, _ -> Some (Deadline.create dcfg)
        | None, Some _ -> Some (Deadline.create Deadline.default_config)
        | None, None -> None);
      hedge = None;
      op_t0 = 0.0;
      waiting = false;
      pred = None;
    }
  in
  t.clients <- Array.append t.clients [| cl |];
  Mutex.unlock t.gm;
  cl

let client_id cl = cl.id

let alloc_reg t ~server =
  if server < 0 || server >= t.cfg.n then invalid_arg "Cluster: unknown server";
  Proto.alloc_reg t.servers.(server).store

(* --- client primitives -------------------------------------------------- *)

let fresh_rid t = Atomic.fetch_and_add t.rid 1

let locked cl f =
  Mutex.lock cl.cm;
  Fun.protect ~finally:(fun () -> Mutex.unlock cl.cm) f

let on_reply cl ~rid f = Hashtbl.replace cl.handlers rid f

let check_server t i =
  if i < 0 || i >= t.cfg.n then invalid_arg "Cluster: unknown server"

let send t ~src server payload =
  check_server t server;
  Transport.send (transport t)
    {
      Transport.src = Id.Client.to_int src.id;
      dest = Transport.To_server server;
      payload;
    }

(* fold one observed reply latency into a server's health EWMA *)
let health_alpha = 0.2

let note_health t server lat =
  let cell = t.health.(server) in
  let prev = Atomic.get cell in
  Atomic.set cell
    (if prev <= 0.0 then lat
     else ((1.0 -. health_alpha) *. prev) +. (health_alpha *. lat))

(* raise a server's health score to at least [lat] — for lower-bound
   evidence (a reply that never came), where an EWMA fold of a small
   bound would wrongly signal speed *)
let penalize_health t server lat =
  let cell = t.health.(server) in
  if lat > Atomic.get cell then Atomic.set cell lat

let server_health t ~server =
  check_server t server;
  Atomic.get t.health.(server)

let rpc t ~src:cl ?(sticky = false) server ~make ~handler =
  check_server t server;
  let rid = fresh_rid t in
  let payload = make rid in
  let handler =
    match cl.dl with
    | None -> handler
    | Some dl ->
        (* reply latency includes any retransmission gap — that is the
           latency the operation actually experienced.  Handlers run
           under [cl.cm], so [observe] is serialized. *)
        let sent_at = Clock.now_s () in
        fun reply ->
          let lat = Clock.now_s () -. sent_at in
          Deadline.observe dl lat;
          note_health t server lat;
          handler reply
  in
  Hashtbl.replace cl.handlers rid (fun reply ->
      Hashtbl.remove cl.pending rid;
      handler reply);
  (match t.cfg.retry with
  | Some rcfg ->
      Hashtbl.replace cl.pending rid
        (Retry.make rcfg ~now:(Clock.now_s ()) ~server ~sticky payload)
  | None -> ());
  if Sink.sample_msg cl.crec then
    Sink.instant cl.crec ~cat:"msg"
      ~args:
        [
          ("rid", Sink.Event.I rid);
          ("server", Sink.Event.I server);
          ("sticky", Sink.Event.B sticky);
        ]
      "rpc";
  Transport.send (transport t)
    {
      Transport.src = Id.Client.to_int cl.id;
      dest = Transport.To_server server;
      payload;
    }

(* caller holds [cl.cm]; a hedge armed for the finished round dies
   with it *)
let clear_round_pendings cl =
  cl.hedge <- None;
  let stale =
    Hashtbl.fold
      (fun rid (p : Retry.pending) acc ->
        if p.Retry.sticky then acc else rid :: acc)
      cl.pending []
  in
  List.iter (Hashtbl.remove cl.pending) stale

(* send the deferred half of a hedged round; caller holds [cl.cm].
   A hedge firing is a control event like a retransmission: always
   recorded, never sampled away. *)
let fire_hedge t cl hp =
  cl.hedge <- None;
  List.iter
    (fun server ->
      Atomic.incr t.hedge_sent;
      Sink.instant cl.crec ~cat:"hedge"
        ~args:[ ("server", Sink.Event.I server) ]
        "hedge";
      rpc t ~src:cl server ~make:hp.h_make ~handler:(fun reply ->
          Atomic.incr t.hedge_won;
          (* A won hedge is health evidence: every server still pending
             has now been outrun by a request sent a whole hedge delay
             later, and has been silent since the round was armed —
             a lower bound on the latency it is inflicting.  Replies
             landing after the round completes are dropped unmatched,
             so without this penalty a straggler that never beats the
             round's end would keep a pristine health score — and keep
             being picked.  [penalize_health] is a max, not an EWMA
             fold: a lower bound must never drag an estimate down. *)
          let late = Clock.now_s () -. hp.h_armed in
          Hashtbl.iter
            (fun _rid (p : Retry.pending) ->
              if not p.Retry.sticky then penalize_health t p.Retry.server late)
            cl.pending;
          hp.h_handler reply))
    hp.h_servers

(* caller holds [cl.cm] *)
let fire_due_hedge t cl now =
  match cl.hedge with
  | Some hp when now >= hp.h_due -> fire_hedge t cl hp
  | _ -> ()

let rpc_quorum t ~src:cl ~quorum ~make ~handler replicas =
  match t.cfg.hedge with
  | None -> List.iter (fun s -> rpc t ~src:cl s ~make ~handler) replicas
  | Some h ->
      (* health-biased, seeded-rotation subset: contact quorum+spares
         now, arm the rest behind the adaptive hedge delay *)
      let n = List.length replicas in
      let rot = if n = 0 then 0 else Regemu_sim.Rng.int cl.crng ~bound:n in
      let health s = Atomic.get t.health.(s) in
      let initial, deferred = Hedge.select h ~rot ~health ~quorum replicas in
      List.iter (fun s -> rpc t ~src:cl s ~make ~handler) initial;
      if deferred <> [] && h.Hedge.fire then begin
        (* key the hedge delay off the EWMA (typical latency), not
           [latency_s]'s tail quantile: one straggler-inflated sample
           would otherwise hold the quantile — and with it the hedge
           delay — above the very stall the hedge exists to cut short *)
        let latency_s =
          match cl.dl with Some dl -> Deadline.ewma dl | None -> 0.0
        in
        let now = Clock.now_s () in
        cl.hedge <-
          Some
            {
              h_armed = now;
              h_due = now +. Hedge.delay_s h ~latency_s;
              h_servers = deferred;
              h_make = make;
              h_handler = handler;
            }
      end

(* --- background threads and startup ------------------------------------- *)

let heartbeat_loop t =
  (* periodically wake awaiting clients so deadlines and due
     retransmissions are checked even when no reply arrives; clients
     not blocked in [await] are skipped.  The sleep is an {!Alarm}
     wait, not [Thread.delay]: {!shutdown} rings it, so stopping never
     pays the period as a tail. *)
  while t.running do
    Alarm.wait t.alarm 0.05;
    if t.running then
      Array.iter
        (fun cl ->
          if cl.waiting then begin
            Mutex.lock cl.cm;
            if cl.waiting then Condition.signal cl.cc;
            Mutex.unlock cl.cm
          end)
        t.clients
  done

(* the hedge timer (threaded mode only): hedge delays sit well under
   the 50ms heartbeat, so due hedges get their own fine-grained scan.
   The unlocked [cl.hedge] peek is a benign race — the armed/not-armed
   decision is re-made under the client mutex. *)
let pacer_loop t (h : Hedge.config) =
  while t.running do
    Alarm.wait t.alarm h.Hedge.tick_s;
    if t.running then
      Array.iter
        (fun cl ->
          match cl.hedge with
          | None -> ()
          | Some _ ->
              Mutex.lock cl.cm;
              fire_due_hedge t cl (Clock.now_s ());
              Mutex.unlock cl.cm)
        t.clients
  done

let start t =
  t.running <- true;
  (match t.sched with
  | None ->
      (* only the threaded backend hosts servers in this process's
         threads: [Domains] executes them in the lane domains
         ([step_here]), [Socket] in forked children *)
      if t.backend = Transport.Threads then
        Array.iter
          (fun srv -> srv.sthread <- Some (Thread.create (server_loop t) srv))
          t.servers
  | Some hook ->
      Array.iter
        (fun srv ->
          hook.spawn ~name:(Fmt.str "server-%d" srv.sid) (fun () ->
              server_loop t srv))
        t.servers);
  Transport.start (transport t);
  (* no heartbeat or pacer under a scheduler: [await] parks with a
     timeout instead (shortened to an armed hedge's due time), so
     deadline, retransmission, and hedge checks run off virtual time
     rather than off polling threads *)
  if Option.is_none t.sched then begin
    t.heartbeat <- Some (Thread.create heartbeat_loop t);
    match t.cfg.hedge with
    | Some h when h.Hedge.fire ->
        t.pacer <- Some (Thread.create (pacer_loop t) h)
    | _ -> ()
  end

let note_retry t backoff_s =
  Atomic.incr t.retries;
  Sink.Metrics.observe t.backoff_hist (int_of_float (backoff_s *. 1e3))

(* caller holds [cl.cm] *)
let retransmit_due t cl now =
  match t.cfg.retry with
  | None -> ()
  | Some rcfg ->
      let due =
        Hashtbl.fold
          (fun _rid (p : Retry.pending) acc ->
            if Retry.due rcfg cl.crng ~now p then p :: acc else acc)
          cl.pending []
      in
      List.iter
        (fun (p : Retry.pending) ->
          note_retry t p.Retry.backoff_s;
          (* a retransmission is a control event: always recorded *)
          Sink.instant cl.crec ~cat:"retry"
            ~args:
              [
                ("rid", Sink.Event.I (Proto.rid_of p.Retry.payload));
                ("server", Sink.Event.I p.Retry.server);
                ( "backoff_ms",
                  Sink.Event.I (int_of_float (p.Retry.backoff_s *. 1e3)) );
              ]
            "retry";
          Transport.send (transport t)
            {
              Transport.src = Id.Client.to_int cl.id;
              dest = Transport.To_server p.Retry.server;
              payload = p.Retry.payload;
            })
        due

let is_reachable t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let up = srv.up in
  Mutex.unlock srv.sm;
  up && Transport.reachable (transport t) ~server:i

let fail_unavailable t cl ~cause ~elapsed ~reachable ~required =
  Atomic.incr t.unavailable;
  Sink.instant cl.crec ~cat:"op"
    ~args:
      [
        ("cause", Sink.Event.S (Fmt.str "%a" cause_pp cause));
        ("elapsed_ms", Sink.Event.I (int_of_float (elapsed *. 1e3)));
        ("reachable", Sink.Event.I reachable);
        ("required", Sink.Event.I required);
      ]
    "unavailable";
  raise
    (Unavailable
       { client = cl.id; cause; elapsed_s = elapsed; reachable; required })

(* The per-op deadline: the static retry budget, tightened to the
   adaptive estimate when the estimator is enabled and has evidence.
   Caller holds [cl.cm]. *)
let effective_deadline_s t cl (rcfg : Retry.config) =
  match (t.cfg.deadline, cl.dl) with
  | Some _, Some dl -> Float.min rcfg.Retry.deadline_s (Deadline.estimate_s dl)
  | _ -> rcfg.Retry.deadline_s

let await_body t cl ?need pred =
  let t_enter = Clock.now_s () in
  let op_t0 = if cl.op_t0 > 0.0 then cl.op_t0 else t_enter in
  let hard_deadline = t_enter +. t.cfg.op_timeout_s in
  locked cl (fun () ->
      let rec go () =
        if pred () then clear_round_pendings cl
        else begin
          let now = Clock.now_s () in
          retransmit_due t cl now;
          fire_due_hedge t cl now;
          (match t.cfg.retry with
          | None -> ()
          | Some rcfg ->
              if now -. op_t0 > effective_deadline_s t cl rcfg then begin
                clear_round_pendings cl;
                let reachable, required =
                  match need with
                  | None -> (0, 0)
                  | Some (servers, q) ->
                      (List.length (List.filter (is_reachable t) servers), q)
                in
                fail_unavailable t cl ~cause:Deadline_exceeded
                  ~elapsed:(now -. op_t0) ~reachable ~required
              end
              else
                match need with
                | Some (servers, required)
                  when now -. t_enter > rcfg.Retry.grace_s ->
                    let reachable =
                      List.length (List.filter (is_reachable t) servers)
                    in
                    if reachable < required then begin
                      clear_round_pendings cl;
                      fail_unavailable t cl ~cause:Quorum_lost
                        ~elapsed:(now -. op_t0) ~reachable ~required
                    end
                | _ -> ());
          if now > hard_deadline then
            raise
              (Timeout
                 (Fmt.str "client %a: no quorum within %.1fs" Id.Client.pp
                    cl.id t.cfg.op_timeout_s));
          (match t.sched with
          | None ->
              cl.waiting <- true;
              cl.pred <- Some pred;
              Fun.protect
                ~finally:(fun () ->
                  cl.waiting <- false;
                  cl.pred <- None)
                (fun () -> Condition.wait cl.cc cl.cm)
          | Some hook ->
              (* park on the scheduler; the timeout stands in for the
                 heartbeat so retransmissions and deadlines are still
                 checked when no reply flips the predicate.  An armed
                 hedge shortens the park so it fires on time (there is
                 no pacer thread under the scheduler — the awaiting
                 client is its own timer, in virtual time). *)
              let timeout_s =
                match cl.hedge with
                | Some hp -> Float.max 1e-4 (Float.min 0.05 (hp.h_due -. now))
                | None -> 0.05
              in
              hook.suspend ~timeout_s ~mutex:cl.cm pred);
          go ()
        end
      in
      go ())

let await t cl ?need pred =
  if not cl.op_live then await_body t cl ?need pred
  else begin
    (* nest a quorum-wait span inside the sampled op's span; closed on
       the exceptional paths too, so span bracketing stays balanced *)
    Sink.span_begin cl.crec ~cat:"op" "await";
    Fun.protect
      ~finally:(fun () -> Sink.span_end cl.crec ~cat:"op" "await")
      (fun () -> await_body t cl ?need pred)
  end

let exn_label = function
  | Unavailable _ -> "unavailable"
  | Timeout _ -> "timeout"
  | e -> Printexc.exn_slot_name e

let begin_op cl = cl.op_t0 <- Clock.now_s ()

let invoke _t cl hop body =
  cl.op_t0 <- Clock.now_s ();
  let ticket = Histlog.invoke cl.hlog hop in
  let sampled = Sink.sample_op cl.crec in
  let name =
    match hop with Regemu_sim.Trace.H_write _ -> "write" | H_read -> "read"
  in
  if sampled then begin
    cl.op_live <- true;
    let args =
      match hop with
      | Regemu_sim.Trace.H_write v ->
          [ ("value", Sink.Event.S (Value.to_string v)) ]
      | H_read -> []
    in
    Sink.span_begin cl.crec ~cat:"op" ~args name
  end;
  match body () with
  | v ->
      Histlog.return ticket v;
      if sampled then begin
        cl.op_live <- false;
        Sink.span_end cl.crec ~cat:"op"
          ~args:[ ("result", Sink.Event.S (Value.to_string v)) ]
          name
      end;
      v
  | exception e ->
      (* the ticket stays pending (sound for the checkers); the span
         still closes, labelled with how the operation escaped *)
      if sampled then begin
        cl.op_live <- false;
        Sink.span_end cl.crec ~cat:"op"
          ~args:[ ("outcome", Sink.Event.S (exn_label e)) ]
          name
      end;
      raise e

(* --- failures ----------------------------------------------------------- *)

let crash t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let was_up = srv.up in
  srv.up <- false;
  Mutex.unlock srv.sm;
  if was_up then begin
    (* tell the fabric too: [Domains] parks the server's lane, [Socket]
       SIGKILLs the child process; [Threads] ignores it (the mailbox
       gates) *)
    Transport.set_server_up (transport t) ~server:i false;
    Mutex.lock t.gm;
    t.crashes <- t.crashes + 1;
    Mutex.unlock t.gm;
    Sink.instant t.ctl ~cat:"fault"
      ~args:[ ("server", Sink.Event.I i) ]
      "crash"
  end

let restart t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let was_down = not srv.up in
  if
    was_down
    && t.cfg.recovery = Recovery.Amnesia
    && t.backend <> Transport.Socket
  then
    (* a diskless reboot: the server comes back with an empty store.
       [Socket] skips the wipe — its restart execs a fresh process, so
       recovery is amnesiac by construction, and the parent-side store
       must keep its register count for [Ensure_regs] forwarding. *)
    Proto.reset srv.store;
  srv.up <- true;
  Condition.broadcast srv.sc;
  Mutex.unlock srv.sm;
  if was_down then begin
    let wiped =
      t.cfg.recovery = Recovery.Amnesia || t.backend = Transport.Socket
    in
    Transport.set_server_up (transport t) ~server:i true;
    Mutex.lock t.gm;
    t.restarts <- t.restarts + 1;
    if wiped then t.wipes <- t.wipes + 1;
    Mutex.unlock t.gm;
    Sink.instant t.ctl ~cat:"fault"
      ~args:
        [ ("server", Sink.Event.I i); ("wiped", Sink.Event.B wiped) ]
      "restart"
  end

let is_up t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let v = srv.up in
  Mutex.unlock srv.sm;
  v

let crashed_count t =
  let n = ref 0 in
  Array.iteri (fun i _ -> if not (is_up t i) then incr n) t.servers;
  !n

(* --- nemesis passthroughs ----------------------------------------------- *)

let split t ~groups ~clients_with =
  List.iter (List.iter (check_server t)) groups;
  Transport.split (transport t) ~groups ~clients_with;
  Sink.instant t.ctl ~cat:"fault"
    ~args:
      [
        ( "groups",
          Sink.Event.S
            (Fmt.str "%a" Fmt.(list ~sep:(any "|") (list ~sep:comma int)) groups)
        );
        ("clients_with", Sink.Event.I clients_with);
      ]
    "partition"

let heal t =
  Transport.heal (transport t);
  Sink.instant t.ctl ~cat:"fault" "heal"

let set_drop t ?requests ?replies () =
  Transport.set_drop (transport t) ?requests ?replies ();
  Sink.instant t.ctl ~cat:"fault"
    ~args:
      (List.filter_map
         (fun (k, v) -> Option.map (fun p -> (k, Sink.Event.F p)) v)
         [ ("requests", requests); ("replies", replies) ])
    "set-drop"

let set_slow t ~server us =
  check_server t server;
  Transport.set_slow (transport t) ~server us;
  Sink.instant t.ctl ~cat:"fault"
    ~args:[ ("server", Sink.Event.I server); ("slow_us", Sink.Event.I us) ]
    "set-slow"

let slow_us t ~server = Transport.slow_us (transport t) ~server

let freeze t ~server =
  check_server t server;
  Transport.freeze (transport t) ~server;
  Sink.instant t.ctl ~cat:"fault"
    ~args:[ ("server", Sink.Event.I server) ]
    "freeze"

let thaw t ~server =
  check_server t server;
  Transport.thaw (transport t) ~server;
  Sink.instant t.ctl ~cat:"fault"
    ~args:[ ("server", Sink.Event.I server) ]
    "thaw"

let frozen t ~server = Transport.frozen (transport t) ~server

let heal_gray t =
  Transport.heal_gray (transport t);
  Sink.instant t.ctl ~cat:"fault" "heal-gray"

(* --- observation -------------------------------------------------------- *)

let history t = Histlog.snapshot t.log
let log t = t.log
let latencies_ns t = Histlog.latencies_ns t.log
let completed_ops t = Histlog.completed t.log

type stats = {
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_slowed : int;
  msgs_dropped : int;
  msgs_cut : int;
  crashes : int;
  restarts : int;
  wipes : int;
  retries : int;
  unavailable : int;
  hedges : int;
  hedge_wins : int;
  ops_completed : int;
}

let stats t =
  let tr = transport t in
  Mutex.lock t.gm;
  let crashes = t.crashes and restarts = t.restarts and wipes = t.wipes in
  Mutex.unlock t.gm;
  {
    msgs_sent = Transport.sent tr;
    msgs_delivered = Transport.delivered tr;
    msgs_duplicated = Transport.duplicated tr;
    msgs_delayed = Transport.delayed tr;
    msgs_slowed = Transport.slowed tr;
    msgs_dropped = Transport.dropped tr;
    msgs_cut = Transport.cut tr;
    crashes;
    restarts;
    wipes;
    retries = Atomic.get t.retries;
    unavailable = Atomic.get t.unavailable;
    hedges = Atomic.get t.hedge_sent;
    hedge_wins = Atomic.get t.hedge_won;
    ops_completed = Histlog.completed t.log;
  }

let backoff_histogram t =
  let counts = Sink.Metrics.hist_buckets t.backoff_hist in
  Array.to_list
    (Array.mapi
       (fun i c ->
         ((if i < Array.length backoff_edges_ms then backoff_edges_ms.(i)
           else max_int),
          c))
       counts)

let peek_reg t ~server reg =
  check_server t server;
  Proto.peek_reg t.servers.(server).store reg

let server_num_keys t ~server =
  check_server t server;
  Proto.num_keys t.servers.(server).store

let peek_kmax t ~server key =
  check_server t server;
  Proto.peek_kmax t.servers.(server).store key

let peek_slot t ~server slot =
  check_server t server;
  Proto.peek_slot t.servers.(server).store slot

let server_resident_cells t ~server =
  check_server t server;
  Proto.resident_cells t.servers.(server).store

let server_resident_bytes t ~server =
  check_server t server;
  Proto.resident_bytes t.servers.(server).store

(* On the [Socket] backend only the parent-side mirror store is
   visible here (children own the real ones), so resident space reads
   as the parent's view: allocated plain cells, nothing touched by
   traffic.  The space benches therefore report on the in-process
   backends. *)
let resident_space t =
  Array.fold_left
    (fun (cells, bytes, total) srv ->
      let c = Proto.resident_cells srv.store in
      ( max cells c,
        max bytes (Proto.resident_bytes srv.store),
        total + c ))
    (0, 0, 0) t.servers

(* --- teardown ----------------------------------------------------------- *)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    t.running <- false;
    (* interrupt the periodic sleeps: joining must not wait out a tick *)
    Alarm.ring t.alarm;
    Option.iter Thread.join t.heartbeat;
    t.heartbeat <- None;
    Option.iter Thread.join t.pacer;
    t.pacer <- None;
    (* wake crashed servers and tell every server loop to exit *)
    Array.iter
      (fun srv ->
        Mutex.lock srv.sm;
        srv.closing <- true;
        Condition.broadcast srv.sc;
        Mutex.unlock srv.sm;
        Mailbox.close srv.mailbox)
      t.servers;
    Transport.stop (transport t);
    Array.iter
      (fun srv ->
        Option.iter Thread.join srv.sthread;
        srv.sthread <- None)
      t.servers;
    Alarm.close t.alarm
  end

open Regemu_objects
open Regemu_netsim

type config = {
  n : int;
  transport : Transport.config;
  op_timeout_s : float;
}

let default_config ~n ~seed =
  { n; transport = Transport.default_config ~seed; op_timeout_s = 30.0 }

exception Timeout of string

type server = {
  sid : int;
  store : Proto.store;
  mailbox : (int * Proto.payload) Mailbox.t;
  sm : Mutex.t;
  sc : Condition.t;
  mutable up : bool;
  mutable closing : bool;
  mutable sthread : Thread.t option;
}

type client = {
  id : Id.Client.t;
  cm : Mutex.t;
  cc : Condition.t;
  handlers : (int, Proto.payload -> unit) Hashtbl.t;
}

type t = {
  cfg : config;
  servers : server array;
  mutable clients : client array;
  gm : Mutex.t;  (* guards [clients] growth and fault counters *)
  rid : int Atomic.t;
  log : Histlog.t;
  mutable transport : Transport.t option;
  mutable heartbeat : Thread.t option;
  mutable running : bool;
  mutable shut : bool;
  mutable crashes : int;
  mutable restarts : int;
}

let transport t =
  match t.transport with
  | Some tr -> tr
  | None -> invalid_arg "Cluster: torn down"

(* --- routing ----------------------------------------------------------- *)

let dispatch_to_client t cid payload =
  let clients = t.clients in
  if cid >= 0 && cid < Array.length clients then begin
    let cl = clients.(cid) in
    Mutex.lock cl.cm;
    (match Hashtbl.find_opt cl.handlers (Proto.rid_of payload) with
    | Some f ->
        (* one-shot: a duplicated reply must not double-count toward a
           quorum *)
        Hashtbl.remove cl.handlers (Proto.rid_of payload);
        f payload
    | None -> ());
    Condition.broadcast cl.cc;
    Mutex.unlock cl.cm
  end

let deliver t (env : Transport.envelope) =
  match env.dest with
  | Transport.To_server i ->
      Mailbox.push t.servers.(i).mailbox (env.src, env.payload)
  | Transport.To_client c -> dispatch_to_client t c env.payload

(* --- servers ----------------------------------------------------------- *)

let server_loop t srv =
  let rec go () =
    match Mailbox.pop srv.mailbox with
    | None -> ()  (* mailbox closed: teardown *)
    | Some (src, payload) ->
        Mutex.lock srv.sm;
        while (not srv.up) && not srv.closing do
          Condition.wait srv.sc srv.sm
        done;
        let closing = srv.closing in
        Mutex.unlock srv.sm;
        if not closing then begin
          let replies = Proto.step srv.store payload in
          List.iter
            (fun reply ->
              Transport.send (transport t)
                {
                  Transport.src = srv.sid;
                  dest = Transport.To_client src;
                  payload = reply;
                })
            replies;
          go ()
        end
  in
  go ()

(* --- construction ------------------------------------------------------ *)

let create cfg =
  if cfg.n <= 0 then invalid_arg "Cluster.create: n must be positive";
  let servers =
    Array.init cfg.n (fun sid ->
        {
          sid;
          store = Proto.store_create ();
          mailbox = Mailbox.create ();
          sm = Mutex.create ();
          sc = Condition.create ();
          up = true;
          closing = false;
          sthread = None;
        })
  in
  let t =
    {
      cfg;
      servers;
      clients = [||];
      gm = Mutex.create ();
      rid = Atomic.make 0;
      log = Histlog.create ();
      transport = None;
      heartbeat = None;
      running = false;
      shut = false;
      crashes = 0;
      restarts = 0;
    }
  in
  t.transport <- Some (Transport.create cfg.transport ~deliver:(deliver t));
  t

let heartbeat_loop t =
  (* periodically wake every awaiting client so deadlines are checked
     even when no reply arrives *)
  while t.running do
    Thread.delay 0.05;
    Array.iter
      (fun cl ->
        Mutex.lock cl.cm;
        Condition.broadcast cl.cc;
        Mutex.unlock cl.cm)
      t.clients
  done

let start t =
  t.running <- true;
  Array.iter
    (fun srv -> srv.sthread <- Some (Thread.create (server_loop t) srv))
    t.servers;
  Transport.start (transport t);
  t.heartbeat <- Some (Thread.create heartbeat_loop t)

let num_servers t = t.cfg.n

let new_client t =
  Mutex.lock t.gm;
  let cl =
    {
      id = Id.Client.of_int (Array.length t.clients);
      cm = Mutex.create ();
      cc = Condition.create ();
      handlers = Hashtbl.create 32;
    }
  in
  t.clients <- Array.append t.clients [| cl |];
  Mutex.unlock t.gm;
  cl

let client_id cl = cl.id

let alloc_reg t ~server =
  if server < 0 || server >= t.cfg.n then invalid_arg "Cluster: unknown server";
  Proto.alloc_reg t.servers.(server).store

(* --- client primitives -------------------------------------------------- *)

let fresh_rid t = Atomic.fetch_and_add t.rid 1

let locked cl f =
  Mutex.lock cl.cm;
  Fun.protect ~finally:(fun () -> Mutex.unlock cl.cm) f

let on_reply cl ~rid f = Hashtbl.replace cl.handlers rid f

let send t ~src server payload =
  if server < 0 || server >= t.cfg.n then invalid_arg "Cluster: unknown server";
  Transport.send (transport t)
    {
      Transport.src = Id.Client.to_int src.id;
      dest = Transport.To_server server;
      payload;
    }

let await t cl pred =
  let deadline = Unix.gettimeofday () +. t.cfg.op_timeout_s in
  locked cl (fun () ->
      let rec go () =
        if pred () then ()
        else if Unix.gettimeofday () > deadline then
          raise
            (Timeout
               (Fmt.str "client %a: no quorum within %.1fs" Id.Client.pp cl.id
                  t.cfg.op_timeout_s))
        else begin
          Condition.wait cl.cc cl.cm;
          go ()
        end
      in
      go ())

let invoke t cl hop body =
  let ticket = Histlog.invoke t.log ~client:cl.id hop in
  let v = body () in
  Histlog.return t.log ticket v;
  v

(* --- failures ----------------------------------------------------------- *)

let check_server t i =
  if i < 0 || i >= t.cfg.n then invalid_arg "Cluster: unknown server"

let crash t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let was_up = srv.up in
  srv.up <- false;
  Mutex.unlock srv.sm;
  if was_up then begin
    Mutex.lock t.gm;
    t.crashes <- t.crashes + 1;
    Mutex.unlock t.gm
  end

let restart t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let was_down = not srv.up in
  srv.up <- true;
  Condition.broadcast srv.sc;
  Mutex.unlock srv.sm;
  if was_down then begin
    Mutex.lock t.gm;
    t.restarts <- t.restarts + 1;
    Mutex.unlock t.gm
  end

let is_up t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let v = srv.up in
  Mutex.unlock srv.sm;
  v

let crashed_count t =
  let n = ref 0 in
  Array.iteri (fun i _ -> if not (is_up t i) then incr n) t.servers;
  !n

(* --- observation -------------------------------------------------------- *)

let history t = Histlog.snapshot t.log
let latencies_ns t = Histlog.latencies_ns t.log
let completed_ops t = Histlog.completed t.log

type stats = {
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  crashes : int;
  restarts : int;
  ops_completed : int;
}

let stats t =
  let tr = transport t in
  Mutex.lock t.gm;
  let crashes = t.crashes and restarts = t.restarts in
  Mutex.unlock t.gm;
  {
    msgs_sent = Transport.sent tr;
    msgs_delivered = Transport.delivered tr;
    msgs_duplicated = Transport.duplicated tr;
    msgs_delayed = Transport.delayed tr;
    crashes;
    restarts;
    ops_completed = Histlog.completed t.log;
  }

let peek_reg t ~server reg =
  check_server t server;
  Proto.peek_reg t.servers.(server).store reg

(* --- teardown ----------------------------------------------------------- *)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    t.running <- false;
    Option.iter Thread.join t.heartbeat;
    t.heartbeat <- None;
    (* wake crashed servers and tell every server loop to exit *)
    Array.iter
      (fun srv ->
        Mutex.lock srv.sm;
        srv.closing <- true;
        Condition.broadcast srv.sc;
        Mutex.unlock srv.sm;
        Mailbox.close srv.mailbox)
      t.servers;
    Transport.stop (transport t);
    Array.iter
      (fun srv ->
        Option.iter Thread.join srv.sthread;
        srv.sthread <- None)
      t.servers
  end

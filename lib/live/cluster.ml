open Regemu_objects
open Regemu_netsim

type config = {
  n : int;
  transport : Transport.config;
  op_timeout_s : float;
  recovery : Recovery.mode;
  retry : Retry.config option;
}

let default_config ~n ~seed =
  {
    n;
    transport = Transport.default_config ~seed;
    op_timeout_s = 30.0;
    recovery = Recovery.Persist;
    retry = Some Retry.default_config;
  }

exception Timeout of string

type cause = Quorum_lost | Deadline_exceeded

let cause_pp ppf = function
  | Quorum_lost -> Fmt.string ppf "quorum lost"
  | Deadline_exceeded -> Fmt.string ppf "deadline exceeded"

type unavailable = {
  client : Id.Client.t;
  cause : cause;
  elapsed_s : float;
  reachable : int;
  required : int;
}

exception Unavailable of unavailable

let unavailable_pp ppf u =
  Fmt.pf ppf "client %a unavailable after %.2fs (%a: %d of %d needed servers \
              reachable)"
    Id.Client.pp u.client u.elapsed_s cause_pp u.cause u.reachable u.required

(* how many mailbox messages a server drains per wakeup *)
let server_batch = 16

type server = {
  sid : int;
  store : Proto.store;
  mailbox : (int * Proto.payload) Mailbox.t;
  sm : Mutex.t;
  sc : Condition.t;
  mutable up : bool;
  mutable closing : bool;
  mutable sthread : Thread.t option;
}

type client = {
  id : Id.Client.t;
  crec : Sink.Trace.recorder option;  (* this client's trace stream *)
  mutable op_live : bool;
      (* the current op's span is open (it was sampled); client-thread
         private, so awaits know whether to nest their own spans *)
  cm : Mutex.t;
  cc : Condition.t;
  handlers : (int, Proto.payload -> unit) Hashtbl.t;
  pending : (int, Retry.pending) Hashtbl.t;  (* rid -> retransmission state *)
  crng : Regemu_sim.Rng.t;  (* jitter; touched only under [cm] *)
  hlog : Histlog.writer;  (* this client's private history shard *)
  mutable op_t0 : float;  (* monotonic invocation time of the current op *)
  mutable waiting : bool;  (* a thread is blocked in [await]; under [cm],
                              read opportunistically by wakers *)
  mutable pred : (unit -> bool) option;
      (* the predicate that await is blocked on, under [cm]: reply
         dispatch signals only when it flips, so the sub-quorum replies
         of a round never wake the client *)
}

(* retransmission-backoff histogram bucket upper edges, milliseconds
   (the metrics histogram adds the unbounded bucket itself) *)
let backoff_edges_ms = [| 100; 250; 500; 1000; 2000; 4000 |]

type t = {
  cfg : config;
  sched : Sched_hook.t option;
  sink : Sink.t;
  ctl : Sink.Trace.recorder option;  (* control-plane events: faults, nemesis *)
  servers : server array;
  mutable clients : client array;
  gm : Mutex.t;  (* guards [clients] growth and fault counters *)
  rid : int Atomic.t;
  log : Histlog.t;
  mutable transport : Transport.t option;
  mutable heartbeat : Thread.t option;
  mutable running : bool;
  mutable shut : bool;
  mutable crashes : int;
  mutable restarts : int;
  mutable wipes : int;
  retries : int Atomic.t;
  unavailable : int Atomic.t;
  backoff_hist : Sink.Metrics.histogram;  (* backoff_ms per retransmission *)
}

let transport t =
  match t.transport with
  | Some tr -> tr
  | None -> invalid_arg "Cluster: torn down"

let sink t = t.sink

(* --- routing ----------------------------------------------------------- *)

let dispatch_to_client t cid payload =
  let clients = t.clients in
  if cid >= 0 && cid < Array.length clients then begin
    let cl = clients.(cid) in
    Mutex.lock cl.cm;
    (match Hashtbl.find_opt cl.handlers (Proto.rid_of payload) with
    | Some f ->
        (* one-shot: a duplicated or retransmitted reply must not
           double-count toward a quorum *)
        Hashtbl.remove cl.handlers (Proto.rid_of payload);
        f payload;
        (* targeted wakeup: only the client this reply progressed, only
           when it is blocked, and only when its awaited predicate
           flipped — a duplicate reply (no handler) or a sub-quorum
           reply wakes nobody *)
        if cl.waiting then (
          match cl.pred with
          | Some p -> if p () then Condition.signal cl.cc
          | None -> Condition.signal cl.cc)
    | None -> ());
    Mutex.unlock cl.cm
  end

let deliver t (env : Transport.envelope) =
  match env.dest with
  | Transport.To_server i ->
      Mailbox.push t.servers.(i).mailbox (env.src, env.payload)
  | Transport.To_client c -> dispatch_to_client t c env.payload

(* --- servers ----------------------------------------------------------- *)

let server_loop t srv =
  let handle (src, payload) =
    Mutex.lock srv.sm;
    (match t.sched with
    | None ->
        while (not srv.up) && not srv.closing do
          Condition.wait srv.sc srv.sm
        done
    | Some hook ->
        hook.suspend ~mutex:srv.sm (fun () -> srv.up || srv.closing));
    let closing = srv.closing in
    Mutex.unlock srv.sm;
    if closing then false
    else begin
      let replies = Proto.step srv.store payload in
      List.iter
        (fun reply ->
          Transport.send (transport t)
            {
              Transport.src = srv.sid;
              dest = Transport.To_client src;
              payload = reply;
            })
        replies;
      true
    end
  in
  let rec go () =
    match Mailbox.pop_batch srv.mailbox ~max:server_batch with
    | None -> ()  (* mailbox closed: teardown *)
    | Some batch -> if List.for_all handle batch then go ()
  in
  go ()

(* --- construction ------------------------------------------------------ *)

let create ?sched ?(sink = Sink.none) cfg =
  if cfg.n <= 0 then invalid_arg "Cluster.create: n must be positive";
  if not (cfg.op_timeout_s > 0.0) then
    invalid_arg "Cluster.create: op_timeout_s must be positive";
  Option.iter Retry.validate cfg.retry;
  let servers =
    Array.init cfg.n (fun sid ->
        {
          sid;
          store = Proto.store_create ();
          mailbox = Mailbox.create ?sched ();
          sm = Mutex.create ();
          sc = Condition.create ();
          up = true;
          closing = false;
          sthread = None;
        })
  in
  let t =
    {
      cfg;
      sched;
      sink;
      ctl = Sink.recorder sink ~name:"cluster";
      servers;
      clients = [||];
      gm = Mutex.create ();
      rid = Atomic.make 0;
      log = Histlog.create ();
      transport = None;
      heartbeat = None;
      running = false;
      shut = false;
      crashes = 0;
      restarts = 0;
      wipes = 0;
      retries =
        Sink.counter sink ~help:"client retransmissions" "client.retries";
      unavailable =
        Sink.counter sink ~help:"operations failed fast as Unavailable"
          "client.unavailable";
      backoff_hist =
        Sink.histogram sink ~unit_:"ms"
          ~help:"retransmission backoff at each resend" ~edges:backoff_edges_ms
          "client.backoff_ms";
    }
  in
  t.transport <-
    Some
      (Transport.create ?sched ~sink cfg.transport ~servers:cfg.n
         ~deliver:(deliver t));
  Sink.gauge_fn sink ~help:"operations invoked" "ops.invoked" (fun () ->
      Histlog.invoked t.log);
  Sink.gauge_fn sink ~help:"operations completed" "ops.completed" (fun () ->
      Histlog.completed t.log);
  Sink.gauge_fn sink ~help:"messages enqueued to server mailboxes"
    "mailbox.pushed" (fun () ->
      Array.fold_left (fun a s -> a + Mailbox.pushed s.mailbox) 0 t.servers);
  Sink.gauge_fn sink ~help:"messages drained from server mailboxes"
    "mailbox.popped" (fun () ->
      Array.fold_left (fun a s -> a + Mailbox.popped s.mailbox) 0 t.servers);
  Sink.gauge_fn sink ~help:"server crashes injected" "cluster.crashes"
    (fun () -> t.crashes);
  Sink.gauge_fn sink ~help:"server restarts" "cluster.restarts" (fun () ->
      t.restarts);
  Sink.gauge_fn sink ~help:"amnesia restarts that wiped a store"
    "cluster.wipes" (fun () -> t.wipes);
  t

let heartbeat_loop t =
  (* periodically wake awaiting clients so deadlines and due
     retransmissions are checked even when no reply arrives; clients
     not blocked in [await] are skipped *)
  while t.running do
    Thread.delay 0.05;
    Array.iter
      (fun cl ->
        if cl.waiting then begin
          Mutex.lock cl.cm;
          if cl.waiting then Condition.signal cl.cc;
          Mutex.unlock cl.cm
        end)
      t.clients
  done

let start t =
  t.running <- true;
  (match t.sched with
  | None ->
      Array.iter
        (fun srv -> srv.sthread <- Some (Thread.create (server_loop t) srv))
        t.servers
  | Some hook ->
      Array.iter
        (fun srv ->
          hook.spawn ~name:(Fmt.str "server-%d" srv.sid) (fun () ->
              server_loop t srv))
        t.servers);
  Transport.start (transport t);
  (* no heartbeat under a scheduler: [await] parks with a timeout
     instead, so deadline and retransmission checks run off virtual
     time rather than off a polling thread *)
  if Option.is_none t.sched then
    t.heartbeat <- Some (Thread.create heartbeat_loop t)

let num_servers t = t.cfg.n
let recovery_mode t = t.cfg.recovery

let new_client t =
  Mutex.lock t.gm;
  let ix = Array.length t.clients in
  let id = Id.Client.of_int ix in
  let cl =
    {
      id;
      crec = Sink.recorder t.sink ~name:(Fmt.str "client-%d" ix);
      op_live = false;
      cm = Mutex.create ();
      cc = Condition.create ();
      handlers = Hashtbl.create 32;
      pending = Hashtbl.create 32;
      crng =
        Regemu_sim.Rng.create (t.cfg.transport.Transport.seed + (7919 * ix));
      hlog = Histlog.new_writer t.log ~client:id;
      op_t0 = 0.0;
      waiting = false;
      pred = None;
    }
  in
  t.clients <- Array.append t.clients [| cl |];
  Mutex.unlock t.gm;
  cl

let client_id cl = cl.id

let alloc_reg t ~server =
  if server < 0 || server >= t.cfg.n then invalid_arg "Cluster: unknown server";
  Proto.alloc_reg t.servers.(server).store

(* --- client primitives -------------------------------------------------- *)

let fresh_rid t = Atomic.fetch_and_add t.rid 1

let locked cl f =
  Mutex.lock cl.cm;
  Fun.protect ~finally:(fun () -> Mutex.unlock cl.cm) f

let on_reply cl ~rid f = Hashtbl.replace cl.handlers rid f

let check_server t i =
  if i < 0 || i >= t.cfg.n then invalid_arg "Cluster: unknown server"

let send t ~src server payload =
  check_server t server;
  Transport.send (transport t)
    {
      Transport.src = Id.Client.to_int src.id;
      dest = Transport.To_server server;
      payload;
    }

let rpc t ~src:cl ?(sticky = false) server ~make ~handler =
  check_server t server;
  let rid = fresh_rid t in
  let payload = make rid in
  Hashtbl.replace cl.handlers rid (fun reply ->
      Hashtbl.remove cl.pending rid;
      handler reply);
  (match t.cfg.retry with
  | Some rcfg ->
      Hashtbl.replace cl.pending rid
        (Retry.make rcfg ~now:(Clock.now_s ()) ~server ~sticky payload)
  | None -> ());
  if Sink.sample_msg cl.crec then
    Sink.instant cl.crec ~cat:"msg"
      ~args:
        [
          ("rid", Sink.Event.I rid);
          ("server", Sink.Event.I server);
          ("sticky", Sink.Event.B sticky);
        ]
      "rpc";
  Transport.send (transport t)
    {
      Transport.src = Id.Client.to_int cl.id;
      dest = Transport.To_server server;
      payload;
    }

(* caller holds [cl.cm] *)
let clear_round_pendings cl =
  let stale =
    Hashtbl.fold
      (fun rid (p : Retry.pending) acc ->
        if p.Retry.sticky then acc else rid :: acc)
      cl.pending []
  in
  List.iter (Hashtbl.remove cl.pending) stale

let note_retry t backoff_s =
  Atomic.incr t.retries;
  Sink.Metrics.observe t.backoff_hist (int_of_float (backoff_s *. 1e3))

(* caller holds [cl.cm] *)
let retransmit_due t cl now =
  match t.cfg.retry with
  | None -> ()
  | Some rcfg ->
      let due =
        Hashtbl.fold
          (fun _rid (p : Retry.pending) acc ->
            if Retry.due rcfg cl.crng ~now p then p :: acc else acc)
          cl.pending []
      in
      List.iter
        (fun (p : Retry.pending) ->
          note_retry t p.Retry.backoff_s;
          (* a retransmission is a control event: always recorded *)
          Sink.instant cl.crec ~cat:"retry"
            ~args:
              [
                ("rid", Sink.Event.I (Proto.rid_of p.Retry.payload));
                ("server", Sink.Event.I p.Retry.server);
                ( "backoff_ms",
                  Sink.Event.I (int_of_float (p.Retry.backoff_s *. 1e3)) );
              ]
            "retry";
          Transport.send (transport t)
            {
              Transport.src = Id.Client.to_int cl.id;
              dest = Transport.To_server p.Retry.server;
              payload = p.Retry.payload;
            })
        due

let is_reachable t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let up = srv.up in
  Mutex.unlock srv.sm;
  up && Transport.reachable (transport t) ~server:i

let fail_unavailable t cl ~cause ~elapsed ~reachable ~required =
  Atomic.incr t.unavailable;
  Sink.instant cl.crec ~cat:"op"
    ~args:
      [
        ("cause", Sink.Event.S (Fmt.str "%a" cause_pp cause));
        ("elapsed_ms", Sink.Event.I (int_of_float (elapsed *. 1e3)));
        ("reachable", Sink.Event.I reachable);
        ("required", Sink.Event.I required);
      ]
    "unavailable";
  raise
    (Unavailable
       { client = cl.id; cause; elapsed_s = elapsed; reachable; required })

let await_body t cl ?need pred =
  let t_enter = Clock.now_s () in
  let op_t0 = if cl.op_t0 > 0.0 then cl.op_t0 else t_enter in
  let hard_deadline = t_enter +. t.cfg.op_timeout_s in
  locked cl (fun () ->
      let rec go () =
        if pred () then clear_round_pendings cl
        else begin
          let now = Clock.now_s () in
          retransmit_due t cl now;
          (match t.cfg.retry with
          | None -> ()
          | Some rcfg ->
              if now -. op_t0 > rcfg.Retry.deadline_s then begin
                clear_round_pendings cl;
                let reachable, required =
                  match need with
                  | None -> (0, 0)
                  | Some (servers, q) ->
                      (List.length (List.filter (is_reachable t) servers), q)
                in
                fail_unavailable t cl ~cause:Deadline_exceeded
                  ~elapsed:(now -. op_t0) ~reachable ~required
              end
              else
                match need with
                | Some (servers, required)
                  when now -. t_enter > rcfg.Retry.grace_s ->
                    let reachable =
                      List.length (List.filter (is_reachable t) servers)
                    in
                    if reachable < required then begin
                      clear_round_pendings cl;
                      fail_unavailable t cl ~cause:Quorum_lost
                        ~elapsed:(now -. op_t0) ~reachable ~required
                    end
                | _ -> ());
          if now > hard_deadline then
            raise
              (Timeout
                 (Fmt.str "client %a: no quorum within %.1fs" Id.Client.pp
                    cl.id t.cfg.op_timeout_s));
          (match t.sched with
          | None ->
              cl.waiting <- true;
              cl.pred <- Some pred;
              Fun.protect
                ~finally:(fun () ->
                  cl.waiting <- false;
                  cl.pred <- None)
                (fun () -> Condition.wait cl.cc cl.cm)
          | Some hook ->
              (* park on the scheduler; the timeout stands in for the
                 heartbeat so retransmissions and deadlines are still
                 checked when no reply flips the predicate *)
              hook.suspend ~timeout_s:0.05 ~mutex:cl.cm pred);
          go ()
        end
      in
      go ())

let await t cl ?need pred =
  if not cl.op_live then await_body t cl ?need pred
  else begin
    (* nest a quorum-wait span inside the sampled op's span; closed on
       the exceptional paths too, so span bracketing stays balanced *)
    Sink.span_begin cl.crec ~cat:"op" "await";
    Fun.protect
      ~finally:(fun () -> Sink.span_end cl.crec ~cat:"op" "await")
      (fun () -> await_body t cl ?need pred)
  end

let exn_label = function
  | Unavailable _ -> "unavailable"
  | Timeout _ -> "timeout"
  | e -> Printexc.exn_slot_name e

let begin_op cl = cl.op_t0 <- Clock.now_s ()

let invoke _t cl hop body =
  cl.op_t0 <- Clock.now_s ();
  let ticket = Histlog.invoke cl.hlog hop in
  let sampled = Sink.sample_op cl.crec in
  let name =
    match hop with Regemu_sim.Trace.H_write _ -> "write" | H_read -> "read"
  in
  if sampled then begin
    cl.op_live <- true;
    let args =
      match hop with
      | Regemu_sim.Trace.H_write v ->
          [ ("value", Sink.Event.S (Value.to_string v)) ]
      | H_read -> []
    in
    Sink.span_begin cl.crec ~cat:"op" ~args name
  end;
  match body () with
  | v ->
      Histlog.return ticket v;
      if sampled then begin
        cl.op_live <- false;
        Sink.span_end cl.crec ~cat:"op"
          ~args:[ ("result", Sink.Event.S (Value.to_string v)) ]
          name
      end;
      v
  | exception e ->
      (* the ticket stays pending (sound for the checkers); the span
         still closes, labelled with how the operation escaped *)
      if sampled then begin
        cl.op_live <- false;
        Sink.span_end cl.crec ~cat:"op"
          ~args:[ ("outcome", Sink.Event.S (exn_label e)) ]
          name
      end;
      raise e

(* --- failures ----------------------------------------------------------- *)

let crash t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let was_up = srv.up in
  srv.up <- false;
  Mutex.unlock srv.sm;
  if was_up then begin
    Mutex.lock t.gm;
    t.crashes <- t.crashes + 1;
    Mutex.unlock t.gm;
    Sink.instant t.ctl ~cat:"fault"
      ~args:[ ("server", Sink.Event.I i) ]
      "crash"
  end

let restart t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let was_down = not srv.up in
  if was_down && t.cfg.recovery = Recovery.Amnesia then
    (* a diskless reboot: the server comes back with an empty store *)
    Proto.reset srv.store;
  srv.up <- true;
  Condition.broadcast srv.sc;
  Mutex.unlock srv.sm;
  if was_down then begin
    Mutex.lock t.gm;
    t.restarts <- t.restarts + 1;
    if t.cfg.recovery = Recovery.Amnesia then t.wipes <- t.wipes + 1;
    Mutex.unlock t.gm;
    Sink.instant t.ctl ~cat:"fault"
      ~args:
        [
          ("server", Sink.Event.I i);
          ("wiped", Sink.Event.B (t.cfg.recovery = Recovery.Amnesia));
        ]
      "restart"
  end

let is_up t i =
  check_server t i;
  let srv = t.servers.(i) in
  Mutex.lock srv.sm;
  let v = srv.up in
  Mutex.unlock srv.sm;
  v

let crashed_count t =
  let n = ref 0 in
  Array.iteri (fun i _ -> if not (is_up t i) then incr n) t.servers;
  !n

(* --- nemesis passthroughs ----------------------------------------------- *)

let split t ~groups ~clients_with =
  List.iter (List.iter (check_server t)) groups;
  Transport.split (transport t) ~groups ~clients_with;
  Sink.instant t.ctl ~cat:"fault"
    ~args:
      [
        ( "groups",
          Sink.Event.S
            (Fmt.str "%a" Fmt.(list ~sep:(any "|") (list ~sep:comma int)) groups)
        );
        ("clients_with", Sink.Event.I clients_with);
      ]
    "partition"

let heal t =
  Transport.heal (transport t);
  Sink.instant t.ctl ~cat:"fault" "heal"

let set_drop t ?requests ?replies () =
  Transport.set_drop (transport t) ?requests ?replies ();
  Sink.instant t.ctl ~cat:"fault"
    ~args:
      (List.filter_map
         (fun (k, v) -> Option.map (fun p -> (k, Sink.Event.F p)) v)
         [ ("requests", requests); ("replies", replies) ])
    "set-drop"

(* --- observation -------------------------------------------------------- *)

let history t = Histlog.snapshot t.log
let log t = t.log
let latencies_ns t = Histlog.latencies_ns t.log
let completed_ops t = Histlog.completed t.log

type stats = {
  msgs_sent : int;
  msgs_delivered : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_dropped : int;
  msgs_cut : int;
  crashes : int;
  restarts : int;
  wipes : int;
  retries : int;
  unavailable : int;
  ops_completed : int;
}

let stats t =
  let tr = transport t in
  Mutex.lock t.gm;
  let crashes = t.crashes and restarts = t.restarts and wipes = t.wipes in
  Mutex.unlock t.gm;
  {
    msgs_sent = Transport.sent tr;
    msgs_delivered = Transport.delivered tr;
    msgs_duplicated = Transport.duplicated tr;
    msgs_delayed = Transport.delayed tr;
    msgs_dropped = Transport.dropped tr;
    msgs_cut = Transport.cut tr;
    crashes;
    restarts;
    wipes;
    retries = Atomic.get t.retries;
    unavailable = Atomic.get t.unavailable;
    ops_completed = Histlog.completed t.log;
  }

let backoff_histogram t =
  let counts = Sink.Metrics.hist_buckets t.backoff_hist in
  Array.to_list
    (Array.mapi
       (fun i c ->
         ((if i < Array.length backoff_edges_ms then backoff_edges_ms.(i)
           else max_int),
          c))
       counts)

let peek_reg t ~server reg =
  check_server t server;
  Proto.peek_reg t.servers.(server).store reg

let server_num_keys t ~server =
  check_server t server;
  Proto.num_keys t.servers.(server).store

let peek_kmax t ~server key =
  check_server t server;
  Proto.peek_kmax t.servers.(server).store key

(* --- teardown ----------------------------------------------------------- *)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    t.running <- false;
    Option.iter Thread.join t.heartbeat;
    t.heartbeat <- None;
    (* wake crashed servers and tell every server loop to exit *)
    Array.iter
      (fun srv ->
        Mutex.lock srv.sm;
        srv.closing <- true;
        Condition.broadcast srv.sc;
        Mutex.unlock srv.sm;
        Mailbox.close srv.mailbox)
      t.servers;
    Transport.stop (transport t);
    Array.iter
      (fun srv ->
        Option.iter Thread.join srv.sthread;
        srv.sthread <- None)
      t.servers
  end

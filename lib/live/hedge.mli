(** Hedged quorum requests: defend tail latency against gray failures.

    ABD and Algorithm 2 need only the fastest [n − f] replies, yet the
    classic broadcast-to-all round still {e pays} for a straggler
    whenever the quorum happens to need it — and always pays its
    bandwidth.  Hedging splits the round in two: contact a
    health-biased initial subset (quorum + [spares]) immediately, and
    only if the round is still open after an adaptive delay,
    retransmit to the deferred replicas — first reply wins, duplicate
    replies suppressed by the Retry rid machinery exactly as
    retransmissions are.

    This module is the pure policy: subset selection and delay
    computation, no clocks, no threads.  {!Cluster} owns the pacer
    that fires due hedges and the per-server health scores (reply-
    latency EWMAs) that feed {!select}.  Both inputs derive from the
    client's seeded RNG and observed virtual-time latencies, so under
    {!Sched} every hedge decision is a deterministic function of
    (seed, config). *)

type config = {
  spares : int;
      (** replicas contacted immediately beyond the quorum size; 0 =
          send exactly a quorum and rely on the hedge timer *)
  delay_mult : float;
      (** hedge delay = [delay_mult × Deadline.latency_s]; > 0.
          Values ≥ 1 hedge only after a round has outlived a typical
          round trip. *)
  min_delay_s : float;  (** clamp floor for the hedge delay *)
  max_delay_s : float;
      (** clamp ceiling — also the delay before any latency sample
          exists *)
  tick_s : float;  (** resolution of the cluster's hedge pacer; > 0 *)
  fire : bool;
      (** [false] disables the timer but keeps subset selection: the
          unhedged ablation arm of the tail bench *)
}

val default_config : config
(** No spares, delay 3× the observed latency clamped to [1 ms, 0.5 s],
    1 ms pacer tick, firing enabled. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on a malformed field. *)

val delay_s : config -> latency_s:float -> float
(** The adaptive hedge delay for the current latency level
    ({!Deadline.latency_s}); the floor when [latency_s <= 0] (no
    evidence yet — a cold round hedges eagerly, since a premature
    hedge costs one duplicate request). *)

val select :
  config ->
  rot:int ->
  health:(int -> float) ->
  quorum:int ->
  int list ->
  int list * int list
(** [select cfg ~rot ~health ~quorum replicas] partitions the replica
    list into [(initial, deferred)]: rotate by [rot] (spreads load
    across equal replicas), stable-sort by [health] ascending (lower =
    faster; unknown servers score 0 and stay explorable), then cut
    after [quorum + spares].  Pure and total: empty input yields
    [([], [])], and [initial] is never larger than the input. *)

open Regemu_objects
open Regemu_history

type result = {
  checks : int;
  ws : Ws_check.verdict;
  atomic : bool option;
  ops_checked : int;
}

let ok r =
  (match r.ws with Ws_check.Violated _ -> false | _ -> true)
  && match r.atomic with Some false -> false | _ -> true

let result_pp ppf r =
  Fmt.pf ppf "%d online checks over %d ops: WS-Regular %a%a" r.checks
    r.ops_checked Ws_check.verdict_pp r.ws
    Fmt.(
      option (fun ppf a ->
          Fmt.pf ppf ", atomic %s" (if a then "yes" else "NO")))
    r.atomic

(* The online checker is incremental: work per tick is proportional to
   the operations that completed since the last tick, not to the whole
   history.  The old implementation snapshotted and reran the full
   [Ws_check.check_ws_regular] — an O(writes²) sequentiality scan plus
   an O(reads × writes) admissibility scan over an O(n log n) snapshot
   — every 10 ms on the single runtime lock, which visibly throttled
   the cluster as histories grew.

   Three facts make incrementality sound:

   - completed operations never change, so a pair of completed writes
     once checked comparable stays comparable ([wseq] caches the
     verified total order; [wbroken] is a sticky "two completed writes
     overlap");
   - a completed read validated against the write order stays valid as
     later writes arrive: any write it has not seen was invoked after
     the read returned, so it can only land at positions the check
     already excludes — each read is checked exactly once;
   - each client is sequential, so a per-writer cursor into the
     {!Histlog} advances past a contiguous completed prefix and only
     the in-flight suffix is ever re-polled ({!Histlog.poll}). *)
type t = {
  cluster : Cluster.t;
  interval_s : float;
  final_atomic : bool;
  atomic_limit : int;
  cr : Sink.Trace.recorder option;  (* verdict-flip instants *)
  mutable last_class : string;  (* verdict class of the previous tick *)
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable checks : int;
  mutable violation : Ws_check.verdict option;  (* first Violated seen *)
  cursors : (int, int) Hashtbl.t;  (* client -> consumed prefix length *)
  seen : (int, unit) Hashtbl.t;  (* invoked_at of collected ops *)
  mutable wseq : History.op list;
      (* completed writes, newest first, verified pairwise sequential *)
  mutable max_wret : int;  (* latest return tick in [wseq] *)
  mutable wbroken : bool;  (* two completed writes overlap: vacuous for
                              good *)
  mutable backlog : History.op list;
      (* completed reads collected during a non-write-sequential tick
         (e.g. while a write was in flight), awaiting validation *)
}

let op_of_view client (cv : Histlog.cell_view) =
  {
    History.index = cv.v_invoked_at;
    client;
    hop = cv.v_hop;
    invoked_at = cv.v_invoked_at;
    returned_at = cv.v_returned_at;
    result = cv.v_result;
  }

(* Insert a newly completed write into the verified order.  Writers are
   polled independently, so a write can surface after a later-invoked
   one — it must land at its invocation position and be comparable with
   both neighbours.  The common case (new latest write) is O(1). *)
let insert_write t (w : History.op) =
  let rec ins newer_rev = function
    | x :: rest when x.History.invoked_at > w.History.invoked_at ->
        ins (x :: newer_rev) rest
    | older ->
        let ok_newer =
          match newer_rev with
          | [] -> true
          | nx :: _ -> History.precedes w nx
        in
        let ok_older =
          match older with [] -> true | p :: _ -> History.precedes p w
        in
        (List.rev_append newer_rev (w :: older), ok_newer && ok_older)
  in
  let ws, sequential = ins [] t.wseq in
  t.wseq <- ws;
  (match w.History.returned_at with
  | Some r -> if r > t.max_wret then t.max_wret <- r
  | None -> assert false);
  if not sequential then t.wbroken <- true

(* first index in [arr.(lo..)] with [arr.(i) >= x]; [arr] ascending *)
let lower_bound arr x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length arr)

(* Validate completed reads against the write order [wseq @ pending]:
   for each read, the admissible write positions form a contiguous
   window (writes returned before its invocation are excluded below,
   writes invoked after its return above), found by binary search —
   O(log writes + window) per read instead of the closed-form checker's
   O(writes). *)
let validate_reads t ~pending reads =
  let ws = Array.of_list (List.rev_append t.wseq pending) in
  let rets =
    Array.map
      (fun (w : History.op) ->
        match w.returned_at with Some r -> r | None -> max_int)
      ws
  in
  let invs = Array.map (fun (w : History.op) -> w.invoked_at) ws
  and vals =
    Array.map
      (fun w ->
        match History.written_value w with Some v -> v | None -> assert false)
      ws
  in
  let check_read (rd : History.op) =
    match (rd.result, rd.returned_at) with
    | Some got, Some ret ->
        (* positions [p .. q], 1-based over writes; position 0 is the
           initial value, admissible when no write precedes the read *)
        let p = lower_bound rets rd.invoked_at in
        let q = lower_bound invs ret in
        let admissible =
          (p = 0 && Value.equal got Value.v0)
          ||
          let rec probe j =
            j <= q && (Value.equal got vals.(j - 1) || probe (j + 1))
          in
          probe (max p 1)
        in
        if admissible then None
        else
          let allowed =
            (if p = 0 then [ Value.v0 ] else [])
            @ List.init (max 0 (q - max p 1 + 1)) (fun i ->
                  vals.(max p 1 + i - 1))
          in
          Some
            {
              Ws_check.read = rd;
              got;
              allowed;
              reason =
                "WS-Regular: no linearization of the writes and this read \
                 exists";
            }
    | _ -> None
  in
  let rec go = function
    | [] -> Ws_check.Holds
    | rd :: rest -> (
        match check_read rd with
        | None -> go rest
        | Some v -> Ws_check.Violated v)
  in
  go reads

(* One incremental pass over the log. *)
let check_once t =
  t.checks <- t.checks + 1;
  let new_writes = ref [] and pending_w = ref [] and fresh = ref [] in
  List.iter
    (fun w ->
      let client = Histlog.writer_client w in
      let key = Id.Client.to_int client in
      let cur = Option.value ~default:0 (Hashtbl.find_opt t.cursors key) in
      let newcur = ref cur and contiguous = ref true in
      let _len =
        Histlog.poll w ~from:cur (fun cv ->
            let completed = cv.Histlog.v_returned_at <> None in
            if completed && !contiguous then incr newcur
            else contiguous := false;
            let is_write = Regemu_sim.Trace.hop_is_write cv.Histlog.v_hop in
            if completed && not (Hashtbl.mem t.seen cv.Histlog.v_invoked_at)
            then begin
              Hashtbl.replace t.seen cv.Histlog.v_invoked_at ();
              let op = op_of_view client cv in
              if is_write then new_writes := op :: !new_writes
              else fresh := op :: !fresh
            end
            else if (not completed) && is_write then
              pending_w := op_of_view client cv :: !pending_w)
      in
      Hashtbl.replace t.cursors key !newcur)
    (Histlog.writers (Cluster.log t.cluster));
  List.iter (insert_write t)
    (List.sort
       (fun (a : History.op) b -> Int.compare a.invoked_at b.invoked_at)
       !new_writes);
  let sequential_now =
    (not t.wbroken)
    &&
    (* a pending write is comparable only with writes that returned
       before it was invoked; two pending writes never are *)
    match !pending_w with
    | [] -> true
    | [ w ] -> w.History.invoked_at > t.max_wret
    | _ :: _ :: _ -> false
  in
  let v =
    if not sequential_now then begin
      (* vacuous this tick (sticky only via [wbroken]); hold the reads
         until the write order is total again *)
      t.backlog <- List.rev_append !fresh t.backlog;
      Ws_check.Vacuous
    end
    else begin
      let reads = List.rev_append !fresh t.backlog in
      t.backlog <- [];
      match reads with
      | [] -> Ws_check.Holds
      | _ ->
          let pending =
            List.sort
              (fun (a : History.op) b -> Int.compare a.invoked_at b.invoked_at)
              !pending_w
          in
          validate_reads t ~pending reads
    end
  in
  (match v with
  | Ws_check.Violated _ when t.violation = None -> t.violation <- Some v
  | _ -> ());
  (* a verdict-class flip is a control event: always recorded *)
  let cls =
    match v with
    | Ws_check.Holds -> "holds"
    | Ws_check.Vacuous -> "vacuous"
    | Ws_check.Violated _ -> "violated"
  in
  if cls <> t.last_class then begin
    Sink.instant t.cr ~cat:"checker"
      ~args:
        [ ("from", Sink.Event.S t.last_class); ("to", Sink.Event.S cls) ]
      "verdict";
    t.last_class <- cls
  end;
  v

let checker_loop ?sched t =
  let pause =
    match sched with
    | None -> Thread.delay
    | Some (hook : Sched_hook.t) -> hook.sleep
  in
  while t.running do
    pause t.interval_s;
    if t.running then ignore (check_once t)
  done

let spawn ?sched cluster ?(interval_s = 0.02) ?(final_atomic = false)
    ?(atomic_limit = 600) () =
  let sink = Cluster.sink cluster in
  let t =
    {
      cluster;
      interval_s;
      final_atomic;
      atomic_limit;
      cr = Sink.recorder sink ~name:"checker";
      last_class = "holds";
      running = true;
      thread = None;
      checks = 0;
      violation = None;
      cursors = Hashtbl.create 32;
      seen = Hashtbl.create 1024;
      wseq = [];
      max_wret = 0;
      wbroken = false;
      backlog = [];
    }
  in
  Sink.gauge_fn sink ~help:"online checker passes" "checker.checks" (fun () ->
      t.checks);
  Sink.gauge_fn sink ~help:"1 iff a WS-Regularity violation was seen"
    "checker.violation" (fun () -> if t.violation = None then 0 else 1);
  (* checker memory: this checker reads the full unbounded Histlog, so
     its resident feed is the log itself — published here so the GC'd
     keyspace checker ([Regemu_keyspace.Kchecker]) is directly
     comparable in the same --metrics snapshot *)
  let hlog = Cluster.log cluster in
  Sink.gauge_fn sink ~unit_:"bytes"
    ~help:"resident history feeding the checker (unbounded Histlog)"
    "checker.resident_bytes" (fun () -> Histlog.approx_bytes hlog);
  Sink.gauge_fn sink ~help:"invoked but not yet completed operations"
    "checker.pending_ops" (fun () ->
      Histlog.invoked hlog - Histlog.completed hlog);
  (match sched with
  | None -> t.thread <- Some (Thread.create (checker_loop ?sched:None) t)
  | Some hook ->
      hook.Sched_hook.spawn ~name:"checker" (fun () -> checker_loop ~sched:hook t));
  t

let stop t =
  t.running <- false;
  Option.iter Thread.join t.thread;
  t.thread <- None;
  (* the final pass sees the complete history; everything validated
     online is skipped, so it costs only the tail *)
  let final = check_once t in
  let ws =
    match t.violation with
    | Some v -> v
    | None -> (
        (* the last tick's verdict only covers fresh reads; lift it to
           the whole run *)
        match final with
        | Ws_check.Vacuous -> Ws_check.Vacuous
        | Ws_check.Holds | Ws_check.Violated _ -> Ws_check.Holds)
  in
  let h = Cluster.history t.cluster in
  let atomic =
    if t.final_atomic && List.length h <= t.atomic_limit then
      Some (Linearize.linearizable Linearize.register h)
    else None
  in
  { checks = t.checks; ws; atomic; ops_checked = List.length h }

open Regemu_history

type result = {
  checks : int;
  ws : Ws_check.verdict;
  atomic : bool option;
  ops_checked : int;
}

let ok r =
  (match r.ws with Ws_check.Violated _ -> false | _ -> true)
  && match r.atomic with Some false -> false | _ -> true

let result_pp ppf r =
  Fmt.pf ppf "%d online checks over %d ops: WS-Regular %a%a" r.checks
    r.ops_checked Ws_check.verdict_pp r.ws
    Fmt.(
      option (fun ppf a ->
          Fmt.pf ppf ", atomic %s" (if a then "yes" else "NO")))
    r.atomic

type t = {
  cluster : Cluster.t;
  interval_s : float;
  final_atomic : bool;
  atomic_limit : int;
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable checks : int;
  mutable violation : Ws_check.verdict option;  (* first Violated seen *)
}

let check_once t =
  let h = Cluster.history t.cluster in
  let v = Ws_check.check_ws_regular h in
  t.checks <- t.checks + 1;
  (match v with
  | Ws_check.Violated _ when t.violation = None -> t.violation <- Some v
  | _ -> ());
  (h, v)

let checker_loop t =
  while t.running do
    Thread.delay t.interval_s;
    if t.running then ignore (check_once t)
  done

let spawn cluster ?(interval_s = 0.02) ?(final_atomic = false)
    ?(atomic_limit = 600) () =
  let t =
    {
      cluster;
      interval_s;
      final_atomic;
      atomic_limit;
      running = true;
      thread = None;
      checks = 0;
      violation = None;
    }
  in
  t.thread <- Some (Thread.create checker_loop t);
  t

let stop t =
  t.running <- false;
  Option.iter Thread.join t.thread;
  t.thread <- None;
  let h, final = check_once t in
  let ws = match t.violation with Some v -> v | None -> final in
  let atomic =
    if t.final_atomic && List.length h <= t.atomic_limit then
      Some (Linearize.linearizable Linearize.register h)
    else None
  in
  { checks = t.checks; ws; atomic; ops_checked = List.length h }

(** A one-shot interruptible sleep (self-pipe + [select]), standing in
    for the timed condition-variable wait the stdlib lacks.

    Periodic loops park in {!wait} instead of [Thread.delay]; {!ring}
    wakes every current waiter and makes every future wait return
    immediately (sticky), so a [stop] never pays the period as a
    shutdown tail.  One alarm serves one component for one lifetime —
    create a fresh one to run again. *)

type t

val create : unit -> t

(** Sleep up to [d] seconds; returns early — immediately, once rung —
    when {!ring} fires.  Multiple threads may wait on one alarm. *)
val wait : t -> float -> unit

(** Wake all waiters, now and forever (idempotent). *)
val ring : t -> unit

(** Has {!ring} fired? *)
val rung : t -> bool

(** Release the pipe; call only after the waiting threads are joined. *)
val close : t -> unit

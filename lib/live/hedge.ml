type config = {
  spares : int;
  delay_mult : float;
  min_delay_s : float;
  max_delay_s : float;
  tick_s : float;
  fire : bool;
}

let default_config =
  {
    spares = 0;
    delay_mult = 3.0;
    min_delay_s = 0.001;
    max_delay_s = 0.5;
    tick_s = 0.001;
    fire = true;
  }

let validate_config cfg =
  if cfg.spares < 0 then invalid_arg "Hedge: spares must be >= 0";
  if not (cfg.delay_mult > 0.0) then
    invalid_arg "Hedge: delay_mult must be > 0";
  if not (cfg.min_delay_s >= 0.0) then
    invalid_arg "Hedge: min_delay_s must be >= 0";
  if not (cfg.max_delay_s >= cfg.min_delay_s) then
    invalid_arg "Hedge: max_delay_s must be >= min_delay_s";
  if not (cfg.tick_s > 0.0) then invalid_arg "Hedge: tick_s must be > 0"

(* With no latency evidence yet, hedge at the floor: a cold round is
   exactly the one that cannot tell a straggler from the network, and
   the cost of a premature hedge is one duplicate request.  (The
   opposite stance to Deadline's "no samples = no tightening" — a
   hedge is a cheap bet, an abort is not.) *)
let delay_s cfg ~latency_s =
  if latency_s <= 0.0 then cfg.min_delay_s
  else
    Float.min cfg.max_delay_s
      (Float.max cfg.min_delay_s (cfg.delay_mult *. latency_s))

(* rotate by [rot] for load spreading, then stable-sort by health so
   the slowest replicas sink to the deferred tail; ties keep the
   rotated order, so equal-health clusters still spread load *)
let select cfg ~rot ~health ~quorum replicas =
  let n = List.length replicas in
  if n = 0 then ([], [])
  else begin
    let arr = Array.of_list replicas in
    let rot = ((rot mod n) + n) mod n in
    let rotated = List.init n (fun i -> arr.((i + rot) mod n)) in
    let ranked =
      List.stable_sort
        (fun a b -> Float.compare (health a) (health b))
        rotated
    in
    let take = min n (quorum + cfg.spares) in
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | rest when i = take -> (List.rev acc, rest)
      | s :: rest -> split (i + 1) (s :: acc) rest
    in
    split 0 [] ranked
  end

(* The seeded in-process courier fabric — the [Threads] backend, and
   the only one the deterministic scheduler can drive.  This is the
   original Transport implementation, moved behind the backend seam
   unchanged: every lock, wakeup, and seeded draw happens in the same
   order as before, so DST digests and traced replays are preserved
   bit for bit. *)

open Transport_intf

(* One delivery lane: its own queue, lock, condvar, seeded RNG, and
   courier pool.  Sharding assigns each destination its own lane, so
   concurrent RPCs to different servers (and their replies) never
   contend on a common lock. *)
type lane = {
  lserver : int option;  (* Some s: this is server [s]'s request lane *)
  lm : Mutex.t;
  lc : Condition.t;
  buf : envelope Ringbuf.t;  (* protected by [lm] *)
  lrng : Regemu_sim.Rng.t;  (* protected by [lm] *)
  lrec : Sink.Trace.recorder option;  (* this lane's trace stream *)
  mutable inflight : int;  (* popped but not yet delivered; under [lm] *)
  mutable lthreads : Thread.t list;
}

type t = {
  cfg : config;
  sched : Sched_hook.t option;
  deliver : envelope -> unit;
  nservers : int;
  lanes : lane array;  (* sharded: one per server + a client lane *)
  state : net_state Atomic.t;
  stopped : bool Atomic.t;
  sent : int Atomic.t;
  duplicated : int Atomic.t;
  delayed : int Atomic.t;
  slowed : int Atomic.t;
  dropped : int Atomic.t;
  cut : int Atomic.t;
  delivered : int Atomic.t;
}

(* how many envelopes a courier drains per wakeup *)
let batch_max = 32

let make_lane ~seed ~sink ~name ~lserver i =
  {
    lserver;
    lm = Mutex.create ();
    lc = Condition.create ();
    buf = Ringbuf.create ();
    lrng = Regemu_sim.Rng.create (seed + ((i + 1) * 0x9e3779b9));
    lrec = Sink.recorder sink ~name;
    inflight = 0;
    lthreads = [];
  }

let create ?sched ?(sink = Sink.none) cfg ~servers ~deliver =
  validate_config cfg;
  if servers < 1 then invalid_arg "Transport.create: need >= 1 server";
  let num_lanes = if cfg.sharded then servers + 1 else 1 in
  let lane_name i =
    if num_lanes = 1 then "lane-all"
    else if i < servers then Fmt.str "lane-s%d" i
    else "lane-client"
  in
  {
    cfg;
    sched;
    deliver;
    nservers = servers;
    lanes =
      Array.init num_lanes (fun i ->
          let lserver =
            if cfg.sharded && i < servers then Some i else None
          in
          make_lane ~seed:cfg.seed ~sink ~name:(lane_name i) ~lserver i);
    state = Atomic.make (initial_state cfg);
    stopped = Atomic.make false;
    sent = Sink.counter sink ~help:"envelopes accepted for delivery" "transport.sent";
    duplicated = Sink.counter sink ~help:"envelopes duplicated in flight" "transport.duplicated";
    delayed = Sink.counter sink ~help:"envelopes held by a delivery delay" "transport.delayed";
    slowed = Sink.counter sink ~help:"envelopes held by a gray slow link" "transport.slowed";
    dropped = Sink.counter sink ~help:"envelopes lost to the drop rates" "transport.dropped";
    cut = Sink.counter sink ~help:"envelopes lost to a partition" "transport.cut";
    delivered = Sink.counter sink ~help:"envelopes handed to their destination" "transport.delivered";
  }

(* server lanes first, then the client lane; servers beyond the
   declared count (impossible through Cluster) fold into the client
   lane.  (Splitting the client lane into a hashed per-client pool was
   measured and is a wash on a single core: replies to different
   clients rarely collide for long, and the extra courier threads cost
   as much as the collisions.) *)
let lane_for t dest =
  if Array.length t.lanes = 1 then t.lanes.(0)
  else
    match dest with
    | To_server s when s >= 0 && s < t.nservers -> t.lanes.(s)
    | To_server _ | To_client _ -> t.lanes.(t.nservers)

(* a sampled message point event on a lane's recorder *)
let msg_point lane name env =
  if Sink.sample_msg lane.lrec then
    Sink.instant lane.lrec ~cat:"msg" ~args:(env_args env) name

(* pause a courier that drew a delivery delay — virtual time under DST *)
let courier_pause t s =
  match t.sched with None -> Thread.delay s | Some hook -> hook.sleep s

(* A frozen server lane stops draining: envelopes queue up exactly as
   they would behind a stuttering NIC.  Only sharded server lanes can
   freeze (the shared client/fallback lane carries everyone's traffic). *)
let lane_frozen t lane =
  match lane.lserver with
  | None -> false
  | Some s -> frozen_of (Atomic.get t.state) ~server:s

let rec courier_loop t lane =
  Mutex.lock lane.lm;
  (match t.sched with
  | None ->
      while
        (Ringbuf.is_empty lane.buf || lane_frozen t lane)
        && not (Atomic.get t.stopped)
      do
        Condition.wait lane.lc lane.lm
      done
  | Some hook -> (
      try
        hook.suspend ~mutex:lane.lm (fun () ->
            ((not (Ringbuf.is_empty lane.buf)) && not (lane_frozen t lane))
            || Atomic.get t.stopped)
      with exn ->
        (* scheduler teardown: the halt arrives with [lane.lm] re-held;
           release it, or the lane's other couriers wedge forever on a
           mutex owned by a finished thread *)
        Mutex.unlock lane.lm;
        raise exn));
  if Atomic.get t.stopped then Mutex.unlock lane.lm
  else begin
    (* drain a batch under one lock acquisition; fault decisions use
       the lane's own rng, so each lane is a deterministic stream.
       Gray slowness reads the state once per batch: a slow link adds
       a fixed per-envelope delay on top of any random delay drawn. *)
    let st = Atomic.get t.state in
    let n = min batch_max (Ringbuf.length lane.buf) in
    let prompt = ref [] and held = ref [] in
    for _ = 1 to n do
      let len = Ringbuf.length lane.buf in
      let env =
        if t.cfg.reorder && len > 1 then
          Ringbuf.take_at lane.buf (Regemu_sim.Rng.int lane.lrng ~bound:len)
        else Ringbuf.pop lane.buf
      in
      let delay_us =
        if hit lane.lrng t.cfg.delay_prob && t.cfg.max_delay_us > 0 then begin
          Atomic.incr t.delayed;
          let d = 1 + Regemu_sim.Rng.int lane.lrng ~bound:t.cfg.max_delay_us in
          if Sink.sample_msg lane.lrec then
            Sink.instant lane.lrec ~cat:"msg"
              ~args:(("delay_us", Sink.Event.I d) :: env_args env)
              "delay";
          d
        end
        else 0
      in
      let slow_us = slow_of st ~server:(link_server env) in
      if slow_us > 0 then begin
        Atomic.incr t.slowed;
        if Sink.sample_msg lane.lrec then
          Sink.instant lane.lrec ~cat:"msg"
            ~args:(("slow_us", Sink.Event.I slow_us) :: env_args env)
            "slow"
      end;
      let delay_us = delay_us + slow_us in
      if delay_us = 0 then prompt := env :: !prompt
      else held := (delay_us, env) :: !held
    done;
    lane.inflight <- lane.inflight + n;
    Mutex.unlock lane.lm;
    List.iter
      (fun env ->
        t.deliver env;
        Atomic.incr t.delivered;
        msg_point lane "recv" env)
      (List.rev !prompt);
    (* deliver the held envelopes in delay order, sleeping only the
       remaining gap — the courier holds exactly these messages while
       its lane's other couriers keep delivering past it *)
    let held =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !held)
    in
    let slept = ref 0 in
    List.iter
      (fun (d, env) ->
        if d > !slept then begin
          courier_pause t (float_of_int (d - !slept) *. 1e-6);
          slept := d
        end;
        t.deliver env;
        Atomic.incr t.delivered;
        msg_point lane "recv" env)
      held;
    Mutex.lock lane.lm;
    lane.inflight <- lane.inflight - n;
    Mutex.unlock lane.lm;
    courier_loop t lane
  end

let start t =
  match t.sched with
  | None ->
      Array.iter
        (fun lane ->
          lane.lthreads <-
            List.init t.cfg.couriers (fun _ ->
                Thread.create (fun () -> courier_loop t lane) ()))
        t.lanes
  | Some hook ->
      Array.iteri
        (fun li lane ->
          for ci = 0 to t.cfg.couriers - 1 do
            hook.spawn
              ~name:(Fmt.str "courier-%d.%d" li ci)
              (fun () -> courier_loop t lane)
          done)
        t.lanes

let send t env =
  if not (Atomic.get t.stopped) then begin
    let st = Atomic.get t.state in
    let lane = lane_for t env.dest in
    if not (reachable_of st ~server:(link_server env)) then begin
      Atomic.incr t.cut;
      msg_point lane "cut" env
    end
    else begin
      let drop_p =
        if Regemu_netsim.Proto.is_reply env.payload then st.drop_replies
        else st.drop_requests
      in
      Mutex.lock lane.lm;
      if hit lane.lrng drop_p then begin
        Mutex.unlock lane.lm;
        Atomic.incr t.dropped;
        msg_point lane "drop" env
      end
      else begin
        let dup = hit lane.lrng t.cfg.dup_prob in
        (* fast path: without reordering, an idle lane (nothing queued,
           nothing popped-but-undelivered) may deliver on the sending
           thread — same FIFO order, two context switches fewer.  Any
           backlog, in-flight delayed message, or reorder mode goes
           through the couriers. *)
        let inline_ok =
          (not t.cfg.reorder)
          && t.cfg.delay_prob = 0.0
          && Ringbuf.is_empty lane.buf
          && lane.inflight = 0
          (* a slow or frozen link must queue so the couriers apply
             the gray delay (or hold the lane shut) *)
          && slow_of st ~server:(link_server env) = 0
          && not
               (match env.dest with
               | To_server s -> frozen_of st ~server:s
               | To_client _ -> false)
        in
        if inline_ok then begin
          lane.inflight <- lane.inflight + 1;
          if dup then Ringbuf.push lane.buf env;
          if dup then Condition.signal lane.lc;
          Mutex.unlock lane.lm;
          t.deliver env;
          Atomic.incr t.delivered;
          msg_point lane "recv" env;
          Mutex.lock lane.lm;
          lane.inflight <- lane.inflight - 1;
          Mutex.unlock lane.lm
        end
        else begin
          Ringbuf.push lane.buf env;
          if dup then Ringbuf.push lane.buf env;
          Condition.signal lane.lc;
          if dup then Condition.signal lane.lc;
          Mutex.unlock lane.lm
        end;
        Atomic.incr t.sent;
        msg_point lane "send" env;
        if dup then begin
          Atomic.incr t.sent;
          Atomic.incr t.duplicated;
          msg_point lane "dup" env
        end
      end
    end
  end

(* --- hostile-network controls ------------------------------------------ *)

(* swap in a new state derived from the current one; sole writers are
   the nemesis thread, so a plain read-modify-write is enough *)
let update_state t f = Atomic.set t.state (f (Atomic.get t.state))

let split t ~groups ~clients_with =
  let h = groups_table ~groups ~clients_with in
  update_state t (fun st ->
      { st with groups = Some h; client_group = clients_with })

let heal t = update_state t (fun st -> { st with groups = None; client_group = 0 })

let set_drop t ?requests ?replies () =
  Option.iter (check_prob "requests") requests;
  Option.iter (check_prob "replies") replies;
  update_state t (fun st ->
      {
        st with
        drop_requests = Option.value ~default:st.drop_requests requests;
        drop_replies = Option.value ~default:st.drop_replies replies;
      })

let reachable t ~server = reachable_of (Atomic.get t.state) ~server

(* --- gray-failure controls --------------------------------------------- *)

let check_server t what server =
  if server < 0 || server >= t.nservers then
    invalid_arg
      (Fmt.str "Transport.%s: server %d out of range [0,%d)" what server
         t.nservers)

let set_slow t ~server us =
  check_server t "set_slow" server;
  if us < 0 then invalid_arg "Transport.set_slow: negative delay";
  update_state t (fun st ->
      { st with slow = with_cell st.slow t.nservers server us ~default:0 })

let slow_us t ~server =
  check_server t "slow_us" server;
  slow_of (Atomic.get t.state) ~server

let set_frozen t ~server v =
  update_state t (fun st ->
      { st with frozen = with_cell st.frozen t.nservers server v ~default:false });
  (* threaded couriers park on the lane condvar while frozen; wake them
     so the predicate is re-checked (the DST runner re-polls on its own) *)
  if not v then begin
    let lane = lane_for t (To_server server) in
    Mutex.lock lane.lm;
    Condition.broadcast lane.lc;
    Mutex.unlock lane.lm
  end

let freeze t ~server =
  check_server t "freeze" server;
  set_frozen t ~server true

let thaw t ~server =
  check_server t "thaw" server;
  set_frozen t ~server false

let frozen t ~server =
  check_server t "frozen" server;
  frozen_of (Atomic.get t.state) ~server

let heal_gray t =
  update_state t (fun st -> { st with slow = [||]; frozen = [||] });
  Array.iter
    (fun lane ->
      Mutex.lock lane.lm;
      Condition.broadcast lane.lc;
      Mutex.unlock lane.lm)
    t.lanes

let stop t =
  Atomic.set t.stopped true;
  Array.iter
    (fun lane ->
      Mutex.lock lane.lm;
      Ringbuf.clear lane.buf;
      Condition.broadcast lane.lc;
      Mutex.unlock lane.lm)
    t.lanes;
  Array.iter
    (fun lane ->
      List.iter Thread.join lane.lthreads;
      lane.lthreads <- [])
    t.lanes

let lanes t = Array.length t.lanes
let sent t = Atomic.get t.sent
let delivered t = Atomic.get t.delivered
let duplicated t = Atomic.get t.duplicated
let delayed t = Atomic.get t.delayed
let slowed t = Atomic.get t.slowed
let dropped t = Atomic.get t.dropped
let cut t = Atomic.get t.cut

(** What a server remembers across a crash/restart.

    [Persist] is the paper's model: a base object survives the crash
    of its server (a reboot with a persistent disk), so restart resumes
    from the last stored state and the emulations stay correct with
    any number of crash/recover cycles, as long as at most [f] servers
    are down at once.

    [Amnesia] wipes the store on restart (a diskless reboot).  This is
    deliberately {e outside} the model: rolling diskless restarts can
    erase every copy of a registered value without ever exceeding [f]
    simultaneous failures, and the WS-Regularity checker then flags the
    resulting stale reads — a demonstration of why [2f+1] {e
    persistent} replicas are the minimum, not [2f+1] processes. *)

type mode = Persist | Amnesia

val to_string : mode -> string
val of_string : string -> mode option
val pp : mode Fmt.t

type mode = Persist | Amnesia

let to_string = function Persist -> "persist" | Amnesia -> "amnesia"

let of_string = function
  | "persist" -> Some Persist
  | "amnesia" -> Some Amnesia
  | _ -> None

let pp ppf m = Fmt.string ppf (to_string m)

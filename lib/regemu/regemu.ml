(** Umbrella entry point: every public module of the reproduction under
    one namespace.

    {[
      let p = Regemu.Params.make_exn ~k:2 ~f:1 ~n:5 in
      let sim = Regemu.Sim.create ~n:p.n () in
      ...
    ]}

    The individual libraries remain usable directly ([Regemu_sim],
    [Regemu_core], ...) for finer dependency control. *)

(** {1 Parameters and bounds} *)

module Params = Regemu_bounds.Params
module Formulas = Regemu_bounds.Formulas

(** {1 Values and base objects} *)

module Value = Regemu_objects.Value
module Id = Regemu_objects.Id
module Base_object = Regemu_objects.Base_object

(** {1 The simulator} *)

module Sim = Regemu_sim.Sim
module Policy = Regemu_sim.Policy
module Driver = Regemu_sim.Driver
module Rng = Regemu_sim.Rng
module Trace = Regemu_sim.Trace
module Stats = Regemu_sim.Stats

(** {1 Histories and checkers} *)

module History = Regemu_history.History
module Ws_check = Regemu_history.Ws_check
module Regularity = Regemu_history.Regularity
module Linearize = Regemu_history.Linearize

(** {1 The paper's construction} *)

module Layout = Regemu_core.Layout
module Emulation = Regemu_core.Emulation
module Algorithm2 = Regemu_core.Algorithm2

(** {1 Baseline emulations} *)

module Abd_max = Regemu_baselines.Abd_max
module Abd_max_atomic = Regemu_baselines.Abd_max_atomic
module Abd_cas = Regemu_baselines.Abd_cas
module Cas_maxreg = Regemu_baselines.Cas_maxreg
module Reg_maxreg = Regemu_baselines.Reg_maxreg
module Tree_maxreg = Regemu_baselines.Tree_maxreg
module Layered = Regemu_baselines.Layered
module Naive_reg = Regemu_baselines.Naive_reg
module Waitall_reg = Regemu_baselines.Waitall_reg
module Algorithm2_rwb = Regemu_baselines.Algorithm2_rwb

(** {1 The lower-bound machinery} *)

module Epoch_state = Regemu_adversary.Epoch_state
module Lemma2 = Regemu_adversary.Lemma2
module Lowerbound = Regemu_adversary.Lowerbound
module Violation = Regemu_adversary.Violation
module Inversion = Regemu_adversary.Inversion
module Partition = Regemu_adversary.Partition
module Script = Regemu_adversary.Script
module Adi_policy = Regemu_adversary.Adi_policy

(** {1 The message-passing substrate} *)

module Net = Regemu_netsim.Net
module Abd_net = Regemu_netsim.Abd_net
module Alg2_net = Regemu_netsim.Alg2_net
module Net_scenario = Regemu_netsim.Net_scenario
module Net_lowerbound = Regemu_netsim.Net_lowerbound
module Net_fuzz = Regemu_netsim.Net_fuzz

(** {1 Systematic schedule exploration} *)

module Explore = Regemu_mcheck.Explore
module Net_explore = Regemu_mcheck.Net_explore

(** {1 Applications} *)

module Kv = Regemu_apps.Kv
module Leaderboard = Regemu_apps.Leaderboard

(** {1 Workloads and experiments} *)

module Scenario = Regemu_workload.Scenario
module Report = Regemu_harness.Report
module Table1 = Regemu_harness.Table1
module Figures = Regemu_harness.Figures
module Theorems = Regemu_harness.Theorems

(** All register-emulation factories, keyed by name. *)
let all_factories : (string * Emulation.factory) list =
  [
    ("algorithm2", Algorithm2.factory);
    ("abd-max", Abd_max.factory);
    ("abd-max-atomic", Abd_max_atomic.factory);
    ("abd-cas", Abd_cas.factory);
    ("layered-2f+1", Layered.factory);
    ("naive-reg", Naive_reg.factory);
    ("waitall-reg", Waitall_reg.factory);
  ]

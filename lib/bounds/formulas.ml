let ceil_div a b =
  if b <= 0 then invalid_arg "Formulas.ceil_div: divisor must be positive";
  (a + b - 1) / b

let z (p : Params.t) = (p.n - (p.f + 1)) / p.f
let y (p : Params.t) = (z p * p.f) + p.f + 1
let num_sets (p : Params.t) = ceil_div p.k (z p)

let set_sizes (p : Params.t) =
  let z = z p and y = y p in
  let full = p.k / z and rem = p.k mod z in
  let fulls = List.init full (fun _ -> y) in
  if rem = 0 then fulls else fulls @ [ (rem * p.f) + p.f + 1 ]

let register_lower_bound (p : Params.t) =
  (p.k * p.f) + (ceil_div (p.k * p.f) (p.n - (p.f + 1)) * (p.f + 1))

let register_upper_bound (p : Params.t) =
  (p.k * p.f) + (ceil_div p.k (z p) * (p.f + 1))

let maxreg_bound (p : Params.t) = (2 * p.f) + 1
let cas_bound = maxreg_bound
let maxreg_register_lower_bound ~k = k

let per_server_lower_bound_at_minimum_n (p : Params.t) =
  if p.n <> (2 * p.f) + 1 then
    invalid_arg "per_server_lower_bound_at_minimum_n: requires n = 2f+1";
  p.k

let min_servers ~k ~f ~capacity =
  if capacity <= 0 then invalid_arg "Formulas.min_servers: capacity <= 0";
  ceil_div (k * f) capacity + f + 1

let max_writers ~f ~n ~budget =
  match Params.make ~k:1 ~f ~n with
  | Error _ -> None
  | Ok p1 ->
      if register_upper_bound p1 > budget then None
      else begin
        (* the bound grows by at least f per writer, so k <= budget/f *)
        let rec grow k best =
          if k > (budget / f) + 1 then best
          else
            match Params.make ~k ~f ~n with
            | Error _ -> best
            | Ok p ->
                if register_upper_bound p <= budget then grow (k + 1) k
                else best
        in
        Some (grow 2 1)
      end

let bounds_coincide p = register_lower_bound p = register_upper_bound p
let saturation_n ~k ~f = (k * f) + f + 1

let replicas_per_key ~f =
  if f < 1 then invalid_arg "Formulas.replicas_per_key: f < 1";
  (2 * f) + 1

let max_keys ~n ~f ~per_server_capacity =
  if per_server_capacity <= 0 then
    invalid_arg "Formulas.max_keys: per_server_capacity <= 0";
  let r = replicas_per_key ~f in
  if n < r then None
  else
    (* each key costs one max-register cell on each of its 2f+1
       replicas; a balanced layout spreads K*r cells over n servers *)
    Some (n * per_server_capacity / r)

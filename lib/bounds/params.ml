type t = { k : int; f : int; n : int }

let pp ppf { k; f; n } = Fmt.pf ppf "(k=%d, f=%d, n=%d)" k f n
let equal a b = a.k = b.k && a.f = b.f && a.n = b.n
let compare = Stdlib.compare

let make ~k ~f ~n =
  if k <= 0 then Error (Fmt.str "k must be positive, got %d" k)
  else if f <= 0 then Error (Fmt.str "f must be positive, got %d" f)
  else if n < (2 * f) + 1 then
    Error (Fmt.str "n must be at least 2f+1 = %d, got %d" ((2 * f) + 1) n)
  else Ok { k; f; n }

let make_exn ~k ~f ~n =
  match make ~k ~f ~n with
  | Ok t -> t
  | Error msg -> invalid_arg ("Params.make_exn: " ^ msg)

let grid ~ks ~fs ~ns =
  List.concat_map
    (fun k ->
      List.concat_map
        (fun f ->
          List.filter_map
            (fun n ->
              match make ~k ~f ~n with Ok t -> Some t | Error _ -> None)
            ns)
        fs)
    ks

(** The bound formulas of the paper (Table 1 and Theorems 1, 3, 6, 7).

    All functions take a validated {!Params.t}; arithmetic is exact
    integer arithmetic with explicit ceilings and floors, matching the
    paper's notation. *)

(** [ceil_div a b] is [ceil (a / b)] for positive [b]. *)
val ceil_div : int -> int -> int

(** [z p] is [floor ((n - (f+1)) / f)], the maximum number of writers a
    single register set of the upper-bound layout can support
    (Section 3.3).  [z p >= 1] for every valid parameter triple. *)
val z : Params.t -> int

(** [y p] is [z*f + f + 1], the size of a full register set in the
    upper-bound layout. *)
val y : Params.t -> int

(** [num_sets p] is [ceil (k / z)], the number of register sets
    [R_0 .. R_{m-1}] in the upper-bound layout. *)
val num_sets : Params.t -> int

(** Sizes [|R_0|; ...; |R_{m-1}|] of the register sets of the
    upper-bound layout: all full sets have size [y]; if [z] does not
    divide [k], the final overflow set has size
    [(k mod z) * f + f + 1]. *)
val set_sizes : Params.t -> int list

(** Lower bound on the number of base read/write registers needed by any
    [f]-tolerant WS-Safe obstruction-free [k]-register emulation
    (Theorem 1): [kf + ceil (kf / (n - (f+1))) * (f+1)]. *)
val register_lower_bound : Params.t -> int

(** Number of base registers used by the upper-bound construction
    (Theorem 3): [kf + ceil (k / z) * (f+1)].  Always at least
    {!register_lower_bound}. *)
val register_upper_bound : Params.t -> int

(** Bounds for max-register and CAS base objects are both [2f + 1],
    independent of [k] and [n] (Table 1). *)
val maxreg_bound : Params.t -> int

val cas_bound : Params.t -> int

(** Theorem 2: a wait-free [k]-writer max-register built from wait-free
    MWMR atomic registers needs at least [k] of them (no failures). *)
val maxreg_register_lower_bound : k:int -> int

(** Theorem 6: when [n = 2f+1], every server must store at least [k]
    registers. *)
val per_server_lower_bound_at_minimum_n : Params.t -> int

(** Theorem 7: with at most [m] registers per server, at least
    [ceil (kf / m) + f + 1] servers are needed. *)
val min_servers : k:int -> f:int -> capacity:int -> int

(** [max_writers ~f ~n ~budget] is the largest [k] such that the
    upper-bound construction fits within [budget] base registers
    ([register_upper_bound <= budget]), or [None] if even [k = 1] does
    not fit.  The inverse of {!register_upper_bound} in [k], used for
    capacity planning. *)
val max_writers : f:int -> n:int -> budget:int -> int option

(** [bounds_coincide p] is [true] when lower and upper register bounds
    are equal; guaranteed by the paper at [n = 2f+1] (both equal
    [kf + k(f+1)]) and at [n >= kf + f + 1] (both equal [kf + f + 1]). *)
val bounds_coincide : Params.t -> bool

(** Smallest [n] at which the register bounds flatten to [kf + f + 1]. *)
val saturation_n : k:int -> f:int -> int

(** {2 Keyspace capacity}

    A keyspace ([Regemu_keyspace]) stores each key's max-register on a
    replica set of [2f+1] servers (Table 1: the max-register bound is
    independent of [k] and [n]), so space scales per {e key}, not per
    writer. *)

(** [2f+1] — the replica-set size of every key.  Raises on [f < 1]. *)
val replicas_per_key : f:int -> int

(** [max_keys ~n ~f ~per_server_capacity] is the largest number of keys
    a balanced layout can place when each of the [n] servers stores at
    most [per_server_capacity] max-register cells: [n*c / (2f+1)],
    or [None] when [n < 2f+1] (no replica set fits at all).  The
    keyspace analogue of {!max_writers}. *)
val max_keys : n:int -> f:int -> per_server_capacity:int -> int option

(** System parameters of a fault-tolerant register emulation.

    A parameter triple fixes the number of writers [k], the failure
    threshold [f] (maximum number of servers that may crash), and the
    number of available servers [n].  The paper assumes [k > 0],
    [f > 0], and [n >= 2f + 1] throughout (Section 1); the smart
    constructor {!make} enforces exactly these constraints. *)

type t = private { k : int;  (** number of writers *)
                   f : int;  (** failure threshold *)
                   n : int   (** number of servers *) }

val pp : t Fmt.t

val equal : t -> t -> bool

val compare : t -> t -> int

(** [make ~k ~f ~n] validates the triple.  Errors if [k <= 0], [f <= 0],
    or [n < 2f + 1] (an [f]-tolerant WS-Safe obstruction-free emulation
    is impossible with fewer than [2f+1] servers, Theorem 5). *)
val make : k:int -> f:int -> n:int -> (t, string) result

(** [make_exn ~k ~f ~n] is {!make} but raises [Invalid_argument]. *)
val make_exn : k:int -> f:int -> n:int -> t

(** All valid triples in the cross product of the given lists;
    invalid combinations are silently dropped. *)
val grid : ks:int list -> fs:int list -> ns:int list -> t list

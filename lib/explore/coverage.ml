type t = { bits : Bytes.t; mutable set : int }

let slots = 1 lsl 16
let create () = { bits = Bytes.make (slots / 8) '\000'; set = 0 }

(* Fibonacci-hash the (prev, site) pair into a slot.  [prev] is
   rotated (AFL's [prev >> 1]) so that A->B and B->A land in different
   slots. *)
let edge_slot prev site =
  let h = (prev lsl 1) lxor (site * 0x9E3779B1) in
  (h lxor (h lsr 13)) land (slots - 1)

let mark t slot =
  let byte = slot lsr 3 and bit = slot land 7 in
  let b = Char.code (Bytes.get t.bits byte) in
  let mask = 1 lsl bit in
  if b land mask = 0 then begin
    Bytes.set t.bits byte (Char.chr (b lor mask));
    t.set <- t.set + 1;
    true
  end
  else false

let add_run t ~sites =
  let fresh = ref 0 in
  let prev = ref 0 in
  Array.iter
    (fun site ->
      if mark t (edge_slot !prev site) then incr fresh;
      prev := site)
    sites;
  !fresh

let covered t = t.set
let ratio t = float_of_int t.set /. float_of_int slots

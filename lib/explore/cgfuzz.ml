open Regemu_dst

type entry = {
  choices : int array;
  digest : string;
  mutable hits : int;
  mutable wins : int;
}

type violation = {
  v_key : string list;
  v_choices : int array;
  v_run : int;
}

type report = {
  profile : Dst_fuzz.profile;
  runs : int;
  corpus : entry list;
  schedules : int;
  edges : int;
  failing_runs : int;
  violations : violation list;
}

(* Branch widths are small (a handful of runnable actors), and replay
   folds out-of-range values back in modulo the width, so mutated
   values need only a little headroom. *)
let rand_choice rng = Random.State.int rng 6

let mutate rng corpus parent =
  let c = parent.choices in
  let n = Array.length c in
  let pick_other () = List.nth corpus (Random.State.int rng (List.length corpus)) in
  match Random.State.int rng 4 with
  | 0 when n > 1 ->
      (* truncate: keep a prefix, let the PRNG improvise the tail *)
      Array.sub c 0 (1 + Random.State.int rng (n - 1))
  | 1 when n > 0 ->
      (* flip: redirect a few branch points *)
      let m = Array.copy c in
      let flips = 1 + Random.State.int rng 4 in
      for _ = 1 to flips do
        m.(Random.State.int rng n) <- rand_choice rng
      done;
      m
  | 2 when n > 0 && List.length corpus > 1 ->
      (* splice: our prefix, another entry's suffix *)
      let o = (pick_other ()).choices in
      let on = Array.length o in
      let cut = Random.State.int rng (n + 1) in
      let ocut = if on = 0 then 0 else Random.State.int rng on in
      Array.append (Array.sub c 0 cut) (Array.sub o ocut (on - ocut))
  | _ ->
      (* extend: push the trace deeper into the run *)
      let extra = 1 + Random.State.int rng 32 in
      Array.append c (Array.init extra (fun _ -> rand_choice rng))

(* Energy: reward entries whose children keep being novel, damp
   entries that have been hammered without paying off. *)
let energy e =
  (1.0 +. float_of_int e.wins) /. (1.0 +. (float_of_int e.hits /. 8.0))

let select rng corpus =
  let total = List.fold_left (fun a e -> a +. energy e) 0.0 corpus in
  let r = Random.State.float rng total in
  let rec go acc = function
    | [ e ] -> e
    | e :: tl ->
        let acc = acc +. energy e in
        if r < acc then e else go acc tl
    | [] -> invalid_arg "select: empty corpus"
  in
  go 0.0 corpus

let fuzz ?progress ?(init = []) ~profile ~base ~budget () =
  if budget < 1 then invalid_arg "Cgfuzz.fuzz: budget must be >= 1";
  let cfg = Dst_fuzz.config_for profile ~base ~seed:base.Dst.seed in
  let rng = Random.State.make [| base.Dst.seed; 0x5eed |] in
  let cov = Coverage.create () in
  let digests = Hashtbl.create 256 in
  let seen_keys = Hashtbl.create 8 in
  let corpus = ref [] and corpus_n = ref 0 in
  let violations = ref [] in
  let runs = ref 0 and failing = ref 0 in
  let execute ?parent choices =
    incr runs;
    let o = Dst.run ~choices cfg in
    let rep = o.Dst.report in
    let fresh_edges = Coverage.add_run cov ~sites:rep.Sched.sites in
    let fresh_digest = not (Hashtbl.mem digests rep.Sched.digest) in
    if fresh_digest then Hashtbl.add digests rep.Sched.digest ();
    if fresh_edges > 0 || fresh_digest then begin
      (* store the canonical recorded trace, not the mutant: replay
         clamps and PRNG tails are folded into real branch choices *)
      corpus :=
        !corpus
        @ [ { choices = rep.Sched.choices; digest = rep.Sched.digest;
              hits = 0; wins = 0 } ];
      incr corpus_n;
      Option.iter (fun p -> p.wins <- p.wins + 1) parent
    end;
    if not (Dst.passed o) then begin
      incr failing;
      let key = Dst_fuzz.failure_key o in
      let tag = String.concat "|" key in
      if not (Hashtbl.mem seen_keys tag) then begin
        Hashtbl.add seen_keys tag ();
        violations :=
          !violations
          @ [ { v_key = key; v_choices = rep.Sched.choices; v_run = !runs } ]
      end
    end;
    Option.iter (fun p -> p o) progress
  in
  (* seed phase: the provided corpus first, then the PRNG baseline *)
  List.iter (fun c -> if !runs < budget then execute c) init;
  if !runs < budget && !corpus = [] then execute [||];
  while !runs < budget do
    match !corpus with
    | [] -> execute [||]
    | c ->
        let parent = select rng c in
        parent.hits <- parent.hits + 1;
        execute ~parent (mutate rng c parent)
  done;
  {
    profile;
    runs = !runs;
    corpus = !corpus;
    schedules = Hashtbl.length digests;
    edges = Coverage.covered cov;
    failing_runs = !failing;
    violations = !violations;
  }

let violation_keys r = List.map (fun v -> v.v_key) r.violations
let found r key = List.exists (fun v -> v.v_key = key) r.violations

let report_pp ppf r =
  Fmt.pf ppf
    "cgfuzz[%s]: %d runs, %d corpus, %d schedules, %d edges, %d failing, %d \
     violation kind(s)%a"
    (Dst_fuzz.profile_name r.profile)
    r.runs
    (List.length r.corpus)
    r.schedules r.edges r.failing_runs
    (List.length r.violations)
    (Fmt.list ~sep:Fmt.nop (fun ppf v ->
         Fmt.pf ppf "@.  run %d: %a" v.v_run
           Fmt.(list ~sep:(any ",") string)
           v.v_key))
    r.violations

let report_json r =
  let open Regemu_obs in
  Json.Obj
    [
      ("schema", Json.Str "regemu-cgfuzz/1");
      ("profile", Json.Str (Dst_fuzz.profile_name r.profile));
      ("runs", Json.Int r.runs);
      ("corpus", Json.Int (List.length r.corpus));
      ("schedules", Json.Int r.schedules);
      ("edges", Json.Int r.edges);
      ("failing_runs", Json.Int r.failing_runs);
      ( "violations",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("key", Json.List (List.map (fun s -> Json.Str s) v.v_key));
                   ("run", Json.Int v.v_run);
                   ( "choices",
                     Json.List
                       (Array.to_list
                          (Array.map (fun c -> Json.Int c) v.v_choices)) );
                 ])
             r.violations) );
    ]

(** [regemu-cert/1] exploration certificates.

    A certificate is the durable artifact of a bounded-exhaustive
    {!Regemu_mcheck.Dpor} run: the exact configuration explored, the
    transition counts, how much of the schedule space the reduction
    pruned, and the verdict.  It is the machine-checkable record that
    "algorithm X on configuration C has no WS-Safety or WS-Regularity
    violation under {e any} interleaving of this scenario" — or the
    counterexample tally when it does.

    [brute_force_floor = explored + pruned] is a lower bound on the
    transitions an unreduced search of the same tree would have
    executed: every pruned transition was enabled at a visited state
    and roots at least one unexplored subtree. *)

type config = {
  algo : string;
  k : int;
  f : int;
  n : int;
  mode : string;  (** ["sequential"] or ["eager"] *)
  writer_ops : int list;  (** operations per writer *)
  readers : int;
  reads_each : int;
  crashes : int;
  max_explored : int;  (** the bound the search ran under *)
}

type t = {
  config : config;
  dpor : bool;  (** reduction on (false = brute force in the same engine) *)
  sleep : bool;
  explored : int;
  pruned : int;
  pruned_ratio : float;  (** [pruned / (explored + pruned)] *)
  brute_force_floor : int;
  terminal_runs : int;
  stuck_runs : int;
  distinct_states : int;
  max_depth : int;
  exhaustive : bool;
  ws_safe_violations : int;
  ws_regular_violations : int;
  invariant_violations : int;
  first_violation : string option;
  verdict : string;
      (** ["verified-clean"] (exhaustive, zero violations),
          ["violations-found"], or ["inconclusive"] (bound hit before
          the space was exhausted, nothing found) *)
}

val schema : string

val make :
  config:config -> dpor:bool -> sleep:bool -> Regemu_mcheck.Dpor.stats -> t

val to_json : t -> Regemu_obs.Json.t
val of_json : Regemu_obs.Json.t -> (t, string) result

(** Internal-consistency check of a parsed certificate: counters
    non-negative, ratio and floor recomputable from [explored] /
    [pruned], verdict coherent with [exhaustive] and the violation
    counters, [distinct_states] bounded by terminal+stuck runs. *)
val validate : t -> (unit, string) result

val pp : t Fmt.t

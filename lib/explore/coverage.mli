(** Schedule-edge coverage map for the coverage-guided fuzzer.

    {!Regemu_dst.Sched} reports one {e site} per branch point — a
    packing of the chosen actor's id and the branch width
    ([Sched.report.sites]).  This module folds consecutive sites into
    {e edges} the way AFL folds basic-block transitions: each pair
    [(prev, site)] hashes into a fixed 64 Ki-slot bitmap, so an
    interleaving is "new" when it drives the scheduler through an
    actor-to-actor handoff no earlier run took at that branch shape.
    Collisions just merge two edges into one slot — acceptable for a
    novelty signal, exactly as in AFL. *)

type t

val slots : int
(** Bitmap width (65536). *)

val create : unit -> t

val add_run : t -> sites:int array -> int
(** Fold one run's site sequence into the map; returns the number of
    edge slots set for the first time — [0] means the schedule walked
    only known territory. *)

val covered : t -> int
(** Total slots ever set. *)

val ratio : t -> float
(** [covered / slots]. *)

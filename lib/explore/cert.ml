module Dpor = Regemu_mcheck.Dpor
module Json = Regemu_obs.Json

type config = {
  algo : string;
  k : int;
  f : int;
  n : int;
  mode : string;
  writer_ops : int list;
  readers : int;
  reads_each : int;
  crashes : int;
  max_explored : int;
}

type t = {
  config : config;
  dpor : bool;
  sleep : bool;
  explored : int;
  pruned : int;
  pruned_ratio : float;
  brute_force_floor : int;
  terminal_runs : int;
  stuck_runs : int;
  distinct_states : int;
  max_depth : int;
  exhaustive : bool;
  ws_safe_violations : int;
  ws_regular_violations : int;
  invariant_violations : int;
  first_violation : string option;
  verdict : string;
}

let schema = "regemu-cert/1"

let ratio ~explored ~pruned =
  let d = explored + pruned in
  if d = 0 then 0.0 else float_of_int pruned /. float_of_int d

let verdict_of (s : Dpor.stats) =
  let violations =
    s.ws_safe_violations + s.ws_regular_violations + s.invariant_violations
  in
  if violations > 0 then "violations-found"
  else if s.exhaustive then "verified-clean"
  else "inconclusive"

let make ~config ~dpor ~sleep (s : Dpor.stats) =
  {
    config;
    dpor;
    sleep;
    explored = s.explored;
    pruned = s.pruned;
    pruned_ratio = ratio ~explored:s.explored ~pruned:s.pruned;
    brute_force_floor = s.explored + s.pruned;
    terminal_runs = s.terminal_runs;
    stuck_runs = s.stuck_runs;
    distinct_states = s.distinct_states;
    max_depth = s.max_depth;
    exhaustive = s.exhaustive;
    ws_safe_violations = s.ws_safe_violations;
    ws_regular_violations = s.ws_regular_violations;
    invariant_violations = s.invariant_violations;
    first_violation = s.first_violation;
    verdict = verdict_of s;
  }

let config_json c =
  Json.Obj
    [
      ("algo", Json.Str c.algo);
      ("k", Json.Int c.k);
      ("f", Json.Int c.f);
      ("n", Json.Int c.n);
      ("mode", Json.Str c.mode);
      ("writer_ops", Json.List (List.map (fun o -> Json.Int o) c.writer_ops));
      ("readers", Json.Int c.readers);
      ("reads_each", Json.Int c.reads_each);
      ("crashes", Json.Int c.crashes);
      ("max_explored", Json.Int c.max_explored);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("config", config_json t.config);
      ("dpor", Json.Bool t.dpor);
      ("sleep", Json.Bool t.sleep);
      ("explored", Json.Int t.explored);
      ("pruned", Json.Int t.pruned);
      ("pruned_ratio", Json.Float t.pruned_ratio);
      ("brute_force_floor", Json.Int t.brute_force_floor);
      ("terminal_runs", Json.Int t.terminal_runs);
      ("stuck_runs", Json.Int t.stuck_runs);
      ("distinct_states", Json.Int t.distinct_states);
      ("max_depth", Json.Int t.max_depth);
      ("exhaustive", Json.Bool t.exhaustive);
      ("ws_safe_violations", Json.Int t.ws_safe_violations);
      ("ws_regular_violations", Json.Int t.ws_regular_violations);
      ("invariant_violations", Json.Int t.invariant_violations);
      ( "first_violation",
        match t.first_violation with None -> Json.Null | Some v -> Json.Str v
      );
      ("verdict", Json.Str t.verdict);
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Fmt.str "cert: missing or ill-typed field %S" name)

let of_json j =
  let* s = field "schema" Json.to_str_opt j in
  if s <> schema then Error (Fmt.str "cert: schema %S, expected %S" s schema)
  else
    let* cj =
      match Json.member "config" j with
      | Some c -> Ok c
      | None -> Error "cert: missing field \"config\""
    in
    let* algo = field "algo" Json.to_str_opt cj in
    let* k = field "k" Json.to_int_opt cj in
    let* f = field "f" Json.to_int_opt cj in
    let* n = field "n" Json.to_int_opt cj in
    let* mode = field "mode" Json.to_str_opt cj in
    let* ops_j = field "writer_ops" Json.to_list_opt cj in
    let* writer_ops =
      List.fold_right
        (fun o acc ->
          let* acc = acc in
          match Json.to_int_opt o with
          | Some i -> Ok (i :: acc)
          | None -> Error "cert: non-integer writer_ops entry")
        ops_j (Ok [])
    in
    let* readers = field "readers" Json.to_int_opt cj in
    let* reads_each = field "reads_each" Json.to_int_opt cj in
    let* crashes = field "crashes" Json.to_int_opt cj in
    let* max_explored = field "max_explored" Json.to_int_opt cj in
    let* dpor = field "dpor" Json.to_bool_opt j in
    let* sleep = field "sleep" Json.to_bool_opt j in
    let* explored = field "explored" Json.to_int_opt j in
    let* pruned = field "pruned" Json.to_int_opt j in
    let* pruned_ratio = field "pruned_ratio" Json.to_float_opt j in
    let* brute_force_floor = field "brute_force_floor" Json.to_int_opt j in
    let* terminal_runs = field "terminal_runs" Json.to_int_opt j in
    let* stuck_runs = field "stuck_runs" Json.to_int_opt j in
    let* distinct_states = field "distinct_states" Json.to_int_opt j in
    let* max_depth = field "max_depth" Json.to_int_opt j in
    let* exhaustive = field "exhaustive" Json.to_bool_opt j in
    let* ws_safe_violations = field "ws_safe_violations" Json.to_int_opt j in
    let* ws_regular_violations =
      field "ws_regular_violations" Json.to_int_opt j
    in
    let* invariant_violations =
      field "invariant_violations" Json.to_int_opt j
    in
    let first_violation =
      Option.bind (Json.member "first_violation" j) Json.to_str_opt
    in
    let* verdict = field "verdict" Json.to_str_opt j in
    Ok
      {
        config =
          {
            algo;
            k;
            f;
            n;
            mode;
            writer_ops;
            readers;
            reads_each;
            crashes;
            max_explored;
          };
        dpor;
        sleep;
        explored;
        pruned;
        pruned_ratio;
        brute_force_floor;
        terminal_runs;
        stuck_runs;
        distinct_states;
        max_depth;
        exhaustive;
        ws_safe_violations;
        ws_regular_violations;
        invariant_violations;
        first_violation;
        verdict;
      }

let validate t =
  let err fmt = Fmt.kstr (fun m -> Error ("cert: " ^ m)) fmt in
  let violations =
    t.ws_safe_violations + t.ws_regular_violations + t.invariant_violations
  in
  if
    t.explored < 0 || t.pruned < 0 || t.terminal_runs < 0 || t.stuck_runs < 0
    || t.distinct_states < 0 || t.max_depth < 0 || violations < 0
  then err "negative counter"
  else if t.brute_force_floor <> t.explored + t.pruned then
    err "brute_force_floor %d <> explored %d + pruned %d" t.brute_force_floor
      t.explored t.pruned
  else if
    Float.abs (t.pruned_ratio -. ratio ~explored:t.explored ~pruned:t.pruned)
    > 1e-9
  then err "pruned_ratio does not match explored/pruned"
  else if t.distinct_states > t.terminal_runs + t.stuck_runs then
    err "distinct_states %d exceeds terminal %d + stuck %d runs"
      t.distinct_states t.terminal_runs t.stuck_runs
  else if t.explored > t.config.max_explored then
    err "explored %d exceeds the declared bound %d" t.explored
      t.config.max_explored
  else
    match t.verdict with
    | "verified-clean" when t.exhaustive && violations = 0 -> Ok ()
    | "verified-clean" -> err "verified-clean but not exhaustive-and-clean"
    | "violations-found" when violations > 0 -> Ok ()
    | "violations-found" -> err "violations-found but all counters are zero"
    | "inconclusive" when (not t.exhaustive) && violations = 0 -> Ok ()
    | "inconclusive" -> err "inconclusive but exhaustive or violating"
    | v -> err "unknown verdict %S" v

let pp ppf t =
  Fmt.pf ppf
    "cert %s %s k=%d f=%d n=%d %s: %s — %d explored, %d pruned (ratio %.3f, \
     floor %d), %d terminal / %d stuck runs, %d states, depth %d%s"
    schema t.config.algo t.config.k t.config.f t.config.n t.config.mode
    t.verdict t.explored t.pruned t.pruned_ratio t.brute_force_floor
    t.terminal_runs t.stuck_runs t.distinct_states t.max_depth
    (match t.first_violation with
    | None -> ""
    | Some v -> Fmt.str "; first violation: %s" v)

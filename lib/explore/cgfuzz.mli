(** Coverage-guided schedule fuzzing over {!Regemu_dst.Dst} — the {e
    searching} counterpart to {!Regemu_dst.Dst_fuzz}'s seed sweeps.

    Where the seed sweep samples interleavings independently, this
    loop keeps a {e corpus} of branch-choice traces and mutates them
    (truncate / flip / splice / extend), holding the config and fault
    schedule fixed so the choice trace is the only input.  A mutant
    earns a place in the corpus when its run is {e novel}: it sets a
    new edge in the {!Coverage} bitmap or produces a schedule digest
    never seen before.  Corpus entries that keep producing novel
    children accumulate {e energy} and are mutated more often — the
    classic AFL feedback loop, transplanted onto a deterministic
    scheduler where an "input" is literally the interleaving.

    Every failing run is tallied by its violation-kind key
    ({!Regemu_dst.Dst_fuzz.failure_key}); the first witness trace of
    each distinct kind is kept, replayable via [Dst.run ~choices]. *)

open Regemu_dst

type entry = {
  choices : int array;  (** canonical recorded trace of the novel run *)
  digest : string;  (** its schedule digest *)
  mutable hits : int;  (** times picked as a mutation parent *)
  mutable wins : int;  (** children that turned out novel *)
}

type violation = {
  v_key : string list;  (** {!Dst_fuzz.failure_key} of the failing run *)
  v_choices : int array;  (** witness trace: replay with [Dst.run ~choices] *)
  v_run : int;  (** 1-based index of the run that found it *)
}

type report = {
  profile : Dst_fuzz.profile;
  runs : int;  (** total [Dst.run] executions *)
  corpus : entry list;  (** final corpus, in discovery order *)
  schedules : int;  (** distinct schedule digests observed *)
  edges : int;  (** coverage slots set ({!Coverage.covered}) *)
  failing_runs : int;
  violations : violation list;
      (** one per distinct violation kind, in discovery order *)
}

(** [fuzz ~profile ~base ~budget ()] runs at most [budget] simulations
    against [Dst_fuzz.config_for profile ~base ~seed:base.seed] —
    config and nemesis fixed, interleaving searched.  [init] traces
    are executed first (each costs a run) and seed the corpus; an
    empty corpus bootstraps from the PRNG schedule.  [progress] fires
    after every run.  The mutation PRNG is seeded from [base.seed], so
    the whole campaign is deterministic.  Raises [Invalid_argument] if
    [budget < 1]. *)
val fuzz :
  ?progress:(Dst.outcome -> unit) ->
  ?init:int array list ->
  profile:Dst_fuzz.profile ->
  base:Dst.config ->
  budget:int ->
  unit ->
  report

(** The distinct violation-kind keys, in discovery order. *)
val violation_keys : report -> string list list

(** [found report key] — did some run fail with exactly [key]? *)
val found : report -> string list -> bool

val report_pp : report Fmt.t

(** [regemu-cgfuzz/1]: campaign counters plus each violation kind and
    its witness trace. *)
val report_json : report -> Regemu_obs.Json.t

(** The schedule fuzzer: sweep seeds through {!Dst.run}, and when a
    seed fails, delta-debug the failure down to a minimal, replayable
    counterexample.

    {2 Shrinking}

    A failing seed is minimized along two axes, in order: the {e
    input} (ddmin over the nemesis event list, then halving the
    operation count and dropping extra clients) and the {e
    interleaving} (the recorded branch-choice trace is truncated from
    the tail, then zeroed chunk-wise — a zero choice means "first
    eligible actor", so the nonzero entries that survive are exactly
    the scheduling decisions the bug needs).  Every candidate is
    accepted only if it still fails with the {e same set of violation
    kinds}, so shrinking never trades the original bug for a
    different one.

    {2 Replay files}

    A shrunk counterexample is written as a [regemu-dst/1] JSON
    document: the full config, the nemesis schedule, the choice
    trace, and the expected verdict (violations + run digest).
    [regemu dst --replay FILE] re-executes it step for step and
    compares both. *)

type profile =
  | Quiet  (** base config as given; expected clean *)
  | Chaos  (** + seeded ≤f flapping timeline; expected clean (Persist) *)
  | Hunt
      (** Amnesia recovery + rolling diskless wipes — outside the
          model, so violations are expected: shrinker fodder *)

val profile_name : profile -> string
val profile_of_name : string -> profile option

(** The per-seed config a profile derives from the base. *)
val config_for : profile -> base:Dst.config -> seed:int -> Dst.config

type failure = { seed : int; outcome : Dst.outcome }

type fuzz_report = {
  profile : profile;
  seeds : int;
  passed : int;
  failures : failure list;  (** in seed order *)
}

(** [fuzz ~profile ~base ~seeds ()] runs seeds [base.seed .. base.seed
    + seeds - 1].  [progress] is called after every run.  Raises
    [Invalid_argument] if [seeds < 1]. *)
val fuzz :
  ?progress:(Dst.outcome -> unit) ->
  profile:profile ->
  base:Dst.config ->
  seeds:int ->
  unit ->
  fuzz_report

(** Minimal subsequence of the input for which [test] still holds
    (classic ddmin; exposed for tests). *)
val ddmin : test:('a list -> bool) -> 'a list -> 'a list

(** The violation kinds of a failing outcome — the invariant shrinking
    preserves. *)
val failure_key : Dst.outcome -> string list

type shrink_result = {
  cfg : Dst.config;  (** minimized config (nemesis, ops, clients) *)
  choices : int array;  (** minimized interleaving trace *)
  outcome : Dst.outcome;  (** the minimized failing run *)
  runs_spent : int;  (** distinct runs actually executed *)
  memo_hits : int;
      (** candidates answered from the memo table: runs are pure in
          (config, nemesis, choices), so ddmin's repeated subsets and
          complements replay for free and don't touch the budget *)
}

(** [shrink cfg outcome] minimizes a failing run within a [budget] of
    re-executions (default 250); identical candidates are memoized and
    cost nothing.  Raises [Invalid_argument] if [outcome] did not
    fail. *)
val shrink : ?budget:int -> Dst.config -> Dst.outcome -> shrink_result

(** {2 regemu-dst/1 replay files} *)

val schema : string

val replay_json :
  cfg:Dst.config -> choices:int array -> outcome:Dst.outcome -> Regemu_obs.Json.t

val write_replay :
  string -> cfg:Dst.config -> choices:int array -> outcome:Dst.outcome -> unit

type replay_spec = {
  r_cfg : Dst.config;
  r_choices : int array;
  r_expected_violations : string list;
  r_expected_digest : string;
}

val parse_replay : Regemu_obs.Json.t -> (replay_spec, string) result
val read_replay : string -> (replay_spec, string) result

type replay_result = {
  spec : replay_spec;
  outcome : Dst.outcome;
  digest_matched : bool;
  violations_matched : bool;
}

(** Did the re-execution reproduce the recorded verdict exactly? *)
val replay_matched : replay_result -> bool

(** [sink] instruments the replayed run ({!Dst.run}) — the way to get
    a trace out of a saved counterexample. *)
val replay : ?sink:Regemu_live.Sink.t -> replay_spec -> replay_result

(** The deterministic cooperative scheduler — FoundationDB-style
    simulation for the live cluster.

    Every actor of a run (server loops, transport couriers, the
    checker, the fault injector, the nemesis, workload clients, and the
    root function itself) is a real OS thread, but exactly one holds
    the {e baton} at any instant: all others are parked on their own
    condition variable.  At each step the runner evaluates which parked
    actors are runnable — [Ready], blocked with a true predicate or an
    expired timeout, or sleeping past their deadline — and picks one
    from a seeded PRNG.  Since no two actors ever run concurrently, the
    whole run (message interleavings, fault timings, history
    timestamps) is a pure function of [(seed, config, program)].

    {2 Virtual time}

    The scheduler owns a virtual nanosecond clock, installed as the
    {!Regemu_live.Clock} source for the duration of {!run}.  Time
    advances by [step_ns] per scheduling step and jumps to the earliest
    parked deadline when nothing is runnable — a 5-second backoff
    elapses in microseconds of wall time.  If nothing is runnable and
    no deadline is pending, the run is declared {e deadlocked} (the
    parked actor names are reported) and torn down.

    {2 Choice trace and replay}

    A choice is recorded only at real branch points (≥ 2 eligible
    actors).  Passing a recorded trace back via [?replay] reproduces
    the run step for step; a trace edited by the shrinker still
    replays safely — out-of-range values fold back in modulo the
    branch width, and an exhausted trace falls back to the PRNG.  The
    [digest] folds every step's chosen actor and branch width through
    FNV-1a, so two runs are schedule-identical iff their digests
    match.

    One run at a time per process: the virtual clock override is
    global. *)

(** Raised inside parked actors when the run is torn down after a
    deadlock or stall; treated as a clean actor exit. *)
exception Halt

type config = {
  seed : int;
  step_ns : int;  (** virtual time elapsing per scheduling step *)
  max_steps : int;  (** livelock backstop: exceeded ⇒ [stalled] *)
}

(** [step_ns] 20 µs, [max_steps] 2,000,000. *)
val default_config : seed:int -> config

type t

type report = {
  steps : int;
  vtime_ns : int64;  (** final virtual clock *)
  digest : string;  (** FNV-1a over the schedule, hex *)
  choices : int array;  (** recorded branch choices, replayable *)
  sites : int array;
      (** per-branch-point coverage sites, aligned with [choices]: each
          packs the chosen actor's id and the branch width, the raw
          signal for the coverage-guided fuzzer's edge bitmap *)
  replay_clamped : int;
      (** replayed values that were out of range for their branch point
          and folded back in modulo the width *)
  replay_unused : int;
      (** replay entries left unconsumed because the run branched fewer
          times than the trace is long *)
  deadlock : string list option;  (** parked actors, if wedged *)
  stalled : bool;  (** hit [max_steps] *)
  actor_crashes : (string * string) list;  (** actor name, exception *)
  actors : int;  (** total actors over the run's lifetime *)
}

(** The {!Regemu_live.Sched_hook.t} connecting this scheduler to the
    live runtime — pass it to [Cluster.create ~sched], etc. *)
val hook : t -> Regemu_live.Sched_hook.t

(** Register a new actor (used by the harness for workload fibers; the
    cluster's own actors arrive through {!hook}). *)
val spawn : t -> name:string -> (unit -> unit) -> unit

(** [run cfg f] drives [f] (the root actor) and everything it spawns
    to completion under the deterministic schedule; returns [f]'s
    value — [None] if the root crashed or the run was torn down — and
    the {!report}.  Raises [Invalid_argument] on a non-positive
    [step_ns] or [max_steps]. *)
val run : ?replay:int array -> config -> (t -> 'a) -> 'a option * report

open Regemu_live
open Regemu_objects
open Regemu_chaos
module Json = Regemu_obs.Json

type config = {
  seed : int;
  algo : Live_bench.algo;
  writers : int;
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  recovery : Recovery.mode;
  reorder : bool;
  drop_prob : float;
  dup_prob : float;
  delay_prob : float;
  max_delay_us : int;
  hedge : bool;
  nemesis : Schedule.t;
  step_ns : int;
  max_steps : int;
}

let default_config ~seed =
  {
    seed;
    algo = Live_bench.Abd;
    (* one writer: WS-regularity is only checkable on write-sequential
       histories, so concurrent writers would leave every verdict
       vacuous *)
    writers = 1;
    readers = 2;
    f = 1;
    n = 3;
    ops_per_client = 8;
    recovery = Recovery.Persist;
    reorder = true;
    drop_prob = 0.02;
    dup_prob = 0.05;
    delay_prob = 0.0;
    max_delay_us = 0;
    hedge = false;
    nemesis = [];
    step_ns = 20_000;
    max_steps = 400_000;
  }

let validate_config cfg =
  if cfg.writers < 1 then invalid_arg "Dst: need at least one writer";
  if cfg.readers < 0 then invalid_arg "Dst: readers must be >= 0";
  if cfg.ops_per_client < 1 then invalid_arg "Dst: ops_per_client must be >= 1";
  Schedule.validate ~n:cfg.n cfg.nemesis

(* what actually happened inside the scheduled run *)
type run_stats = {
  online : Checker.result;
  full_ws : Regemu_history.Ws_check.verdict;
  nemesis_counters : Nemesis.counters;
  cluster_stats : Cluster.stats;
  history_digest : string;
}

type outcome = {
  cfg : config;
  stats : run_stats option;  (* [None]: the run never reached its end *)
  report : Sched.report;
  violations : string list;  (* empty = clean run *)
}

let passed o = o.violations = []

(* a stable fingerprint of the observable history: client, op kind,
   result, logical invocation/return order — two runs with equal
   schedule digests must also agree here *)
let history_digest h =
  let d = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let mix_str s =
    String.iter
      (fun c ->
        d := Int64.mul (Int64.logxor !d (Int64.of_int (Char.code c))) prime)
      s
  in
  let mix_int i =
    mix_str (string_of_int i);
    mix_str ";"
  in
  List.iter
    (fun (op : Regemu_history.History.op) ->
      mix_int (Id.Client.to_int op.client);
      mix_str (Fmt.str "%a" Regemu_sim.Trace.hop_pp op.hop);
      (match op.result with
      | None -> mix_str "?"
      | Some v -> mix_str (Fmt.str "%a" Value.pp v));
      mix_int op.invoked_at;
      mix_int (Option.value ~default:(-1) op.returned_at))
    h;
  Printf.sprintf "%016Lx" !d

(* class of a WS verdict, for online-vs-full agreement: two Violated
   verdicts may flag different reads first, which is still agreement *)
let verdict_class = function
  | Regemu_history.Ws_check.Holds -> "holds"
  | Regemu_history.Ws_check.Vacuous -> "vacuous"
  | Regemu_history.Ws_check.Violated _ -> "violated"

let violations_of ~stats ~(report : Sched.report) =
  let v = ref [] in
  let add s = v := s :: !v in
  (match report.deadlock with
  | Some names ->
      add (Fmt.str "deadlock: parked actors [%s]" (String.concat ", " names))
  | None -> ());
  if report.stalled then
    add (Fmt.str "stall: exceeded %d scheduling steps" report.steps);
  List.iter
    (fun (name, exn) -> add (Fmt.str "actor-crash: %s: %s" name exn))
    report.actor_crashes;
  (match stats with
  | None ->
      if report.deadlock = None && (not report.stalled)
         && report.actor_crashes = []
      then add "run ended without a result"
  | Some s ->
      (match s.online.Checker.ws with
      | Regemu_history.Ws_check.Violated viol ->
          add
            (Fmt.str "online-checker: %a" Regemu_history.Ws_check.violation_pp
               viol)
      | _ -> ());
      (match s.full_ws with
      | Regemu_history.Ws_check.Violated viol ->
          add
            (Fmt.str "full-pass: %a" Regemu_history.Ws_check.violation_pp viol)
      | _ -> ());
      (match s.online.Checker.atomic with
      | Some false -> add "online-checker: final atomicity check failed"
      | _ -> ());
      if verdict_class s.online.Checker.ws <> verdict_class s.full_ws then
        add
          (Fmt.str "checker-disagreement: online %s vs full-pass %s"
             (verdict_class s.online.Checker.ws)
             (verdict_class s.full_ws)));
  List.rev !v

let run ?(choices = [||]) ?(sink = Sink.none) cfg =
  validate_config cfg;
  let scfg =
    { Sched.seed = cfg.seed; step_ns = cfg.step_ns; max_steps = cfg.max_steps }
  in
  let value, report =
    Sched.run ~replay:choices scfg (fun s ->
        let hook = Sched.hook s in
        let transport =
          {
            Transport.couriers = 2;
            delay_prob = cfg.delay_prob;
            max_delay_us = cfg.max_delay_us;
            dup_prob = cfg.dup_prob;
            drop_prob = cfg.drop_prob;
            reorder = cfg.reorder;
            sharded = true;
            (* a DST run is scheduler-driven: Threads is the only backend
               the cooperative scheduler can replay *)
            backend = Transport.Threads;
            seed = cfg.seed;
          }
        in
        let cluster =
          Cluster.create ~sched:hook ~sink
            {
              Cluster.n = cfg.n;
              transport;
              op_timeout_s = 300.0;
              recovery = cfg.recovery;
              retry = Some Retry.default_config;
              hedge = (if cfg.hedge then Some Hedge.default_config else None);
              deadline =
                (if cfg.hedge then Some Deadline.default_config else None);
            }
        in
        let writers =
          List.init cfg.writers (fun _ -> Cluster.new_client cluster)
        in
        let readers =
          List.init cfg.readers (fun _ -> Cluster.new_client cluster)
        in
        let write, read =
          match cfg.algo with
          | Live_bench.Abd | Live_bench.Abd_wb ->
              let abd =
                Abd_live.create cluster ~f:cfg.f
                  ~write_back_reads:(cfg.algo = Live_bench.Abd_wb) ()
              in
              (Abd_live.write abd, Abd_live.read abd)
          | Live_bench.Alg2 ->
              let p =
                Regemu_bounds.Params.make_exn ~k:cfg.writers ~f:cfg.f ~n:cfg.n
              in
              let alg2 = Alg2_live.create cluster p ~writers () in
              (Alg2_live.write alg2, Alg2_live.read alg2)
          | Live_bench.Cds ->
              let cds = Cds_live.create cluster ~f:cfg.f ~writers () in
              (Cds_live.write cds, Cds_live.read cds)
        in
        Cluster.start cluster;
        let checker = Checker.spawn ~sched:hook cluster ~interval_s:0.005 () in
        let nem =
          if cfg.nemesis = [] then None
          else Some (Nemesis.start ~sched:hook cluster cfg.nemesis)
        in
        (* workload fibers: unavailability under induced faults is
           data, not a crash — catch it per operation and push on *)
        let live = Atomic.make (cfg.writers + cfg.readers) in
        let op body =
          try body ()
          with Cluster.Unavailable _ | Cluster.Timeout _ -> ()
        in
        List.iteri
          (fun i cl ->
            Sched.spawn s ~name:(Fmt.str "writer-%d" i) (fun () ->
                for j = 1 to cfg.ops_per_client do
                  op (fun () ->
                      write cl (Value.Str (Printf.sprintf "w%d-%04d" i j)))
                done;
                Atomic.decr live))
          writers;
        List.iteri
          (fun i cl ->
            Sched.spawn s ~name:(Fmt.str "reader-%d" i) (fun () ->
                for _ = 1 to cfg.ops_per_client do
                  op (fun () -> ignore (read cl))
                done;
                Atomic.decr live))
          readers;
        (Sched.hook s).suspend (fun () -> Atomic.get live = 0);
        let nemesis_counters =
          match nem with
          | None ->
              {
                Nemesis.crashes = 0;
                restarts = 0;
                partitions = 0;
                heals = 0;
                drop_changes = 0;
                slows = 0;
                stutters = 0;
                heal_slows = 0;
              }
          | Some nm -> Nemesis.join nm
        in
        let online = Checker.stop checker in
        let h = Cluster.history cluster in
        let full_ws = Regemu_history.Ws_check.check_ws_regular h in
        let cluster_stats = Cluster.stats cluster in
        let history_digest = history_digest h in
        Cluster.shutdown cluster;
        { online; full_ws; nemesis_counters; cluster_stats; history_digest })
  in
  let violations = violations_of ~stats:value ~report in
  { cfg; stats = value; report; violations }

(* one string that must be byte-identical across reruns of the same
   (seed, config): the schedule digest plus the history fingerprint *)
let run_digest o =
  match o.stats with
  | None -> o.report.Sched.digest
  | Some s -> o.report.Sched.digest ^ "-" ^ s.history_digest

(* --- config (de)serialization, the replay-file core --------------------- *)

let config_json cfg =
  Json.Obj
    [
      ("seed", Json.Int cfg.seed);
      ("algo", Json.Str (Live_bench.algo_name cfg.algo));
      ("writers", Json.Int cfg.writers);
      ("readers", Json.Int cfg.readers);
      ("f", Json.Int cfg.f);
      ("n", Json.Int cfg.n);
      ("ops_per_client", Json.Int cfg.ops_per_client);
      ("recovery", Json.Str (Recovery.to_string cfg.recovery));
      ("reorder", Json.Bool cfg.reorder);
      ("drop_prob", Json.Float cfg.drop_prob);
      ("dup_prob", Json.Float cfg.dup_prob);
      ("delay_prob", Json.Float cfg.delay_prob);
      ("max_delay_us", Json.Int cfg.max_delay_us);
      ("hedge", Json.Bool cfg.hedge);
      ("step_ns", Json.Int cfg.step_ns);
      ("max_steps", Json.Int cfg.max_steps);
    ]

let config_of_json j =
  let ( let* ) = Result.bind in
  let get what conv k =
    match Option.bind (Json.member k j) conv with
    | Some v -> Ok v
    | None -> Error (Fmt.str "config: missing or bad %s %S" what k)
  in
  let int = get "int" Json.to_int_opt in
  let flt = get "float" Json.to_float_opt in
  let str = get "string" Json.to_str_opt in
  let bol = get "bool" Json.to_bool_opt in
  let* seed = int "seed" in
  let* algo_s = str "algo" in
  let* algo =
    match Live_bench.algo_of_name algo_s with
    | Some a -> Ok a
    | None ->
        Error
          (Fmt.str "config: unknown algo %S; valid: %s" algo_s
             (String.concat ", " Live_bench.algo_names))
  in
  let* writers = int "writers" in
  let* readers = int "readers" in
  let* f = int "f" in
  let* n = int "n" in
  let* ops_per_client = int "ops_per_client" in
  let* recovery_s = str "recovery" in
  let* recovery =
    match Recovery.of_string recovery_s with
    | Some r -> Ok r
    | None -> Error (Fmt.str "config: unknown recovery %S" recovery_s)
  in
  let* reorder = bol "reorder" in
  let* drop_prob = flt "drop_prob" in
  let* dup_prob = flt "dup_prob" in
  let* delay_prob = flt "delay_prob" in
  let* max_delay_us = int "max_delay_us" in
  (* absent in pre-hedging replay files: default off *)
  let hedge =
    match Option.bind (Json.member "hedge" j) Json.to_bool_opt with
    | Some b -> b
    | None -> false
  in
  let* step_ns = int "step_ns" in
  let* max_steps = int "max_steps" in
  Ok
    {
      seed;
      algo;
      writers;
      readers;
      f;
      n;
      ops_per_client;
      recovery;
      reorder;
      drop_prob;
      dup_prob;
      delay_prob;
      max_delay_us;
      hedge;
      nemesis = [];
      step_ns;
      max_steps;
    }

let outcome_json o =
  Json.Obj
    [
      ("config", config_json o.cfg);
      ("nemesis", Schedule.to_json o.cfg.nemesis);
      ("passed", Json.Bool (passed o));
      ("violations", Json.List (List.map (fun s -> Json.Str s) o.violations));
      ("digest", Json.Str (run_digest o));
      ("steps", Json.Int o.report.Sched.steps);
      ("vtime_s", Json.Float (Int64.to_float o.report.Sched.vtime_ns *. 1e-9));
      ("actors", Json.Int o.report.Sched.actors);
      ("branch_points", Json.Int (Array.length o.report.Sched.choices));
      ( "ops_completed",
        match o.stats with
        | None -> Json.Null
        | Some s -> Json.Int s.cluster_stats.Cluster.ops_completed );
      ( "online_ws",
        match o.stats with
        | None -> Json.Null
        | Some s -> Json.Str (verdict_class s.online.Checker.ws) );
      ( "full_ws",
        match o.stats with
        | None -> Json.Null
        | Some s -> Json.Str (verdict_class s.full_ws) );
      ( "nemesis_applied",
        match o.stats with
        | None -> Json.Null
        | Some s -> Nemesis.counters_json s.nemesis_counters );
    ]

let outcome_pp ppf o =
  Fmt.pf ppf "seed=%d %s: %s (%d steps, %d branch points, %.3fs virtual%s)"
    o.cfg.seed
    (Live_bench.algo_name o.cfg.algo)
    (if passed o then "PASS" else "FAIL")
    o.report.Sched.steps
    (Array.length o.report.Sched.choices)
    (Int64.to_float o.report.Sched.vtime_ns *. 1e-9)
    (match o.stats with
    | None -> ""
    | Some s ->
        Fmt.str ", %d ops" s.cluster_stats.Cluster.ops_completed);
  List.iter (fun v -> Fmt.pf ppf "@.  - %s" v) o.violations

open Regemu_live
open Regemu_keyspace

type profile = Quiet | Chaos

let profile_name = function Quiet -> "quiet" | Chaos -> "chaos"

let profile_of_name = function
  | "quiet" -> Some Quiet
  | "chaos" -> Some Chaos
  | _ -> None

type config = {
  seed : int;
  profile : profile;
  n : int;
  f : int;
  keys : int;
  zipf : float;
  arrival_rate : float;
  total_ops : int;
  window : int;
  write_fraction : float;
  deep_sample : int;
  wipe_frac : float;
  step_ns : int;
  max_steps : int;
}

let default_config ~profile ~seed =
  {
    seed;
    profile;
    n = 5;
    f = 1;
    keys = 16;
    zipf = 0.8;
    arrival_rate = 400.0;
    total_ops = 120;
    window = 3;
    write_fraction = 0.6;
    deep_sample = 4;
    wipe_frac = 0.5;
    step_ns = 20_000;
    max_steps = 2_000_000;
  }

type outcome = {
  cfg : config;
  result : Kchecker.result option;
  load : Openload.outcome option;
  report : Sched.report;
  settled_at_wipe : int;
  caught : bool;
  problems : string list;
}

let transport_of cfg =
  let clean =
    {
      Transport.couriers = 2;
      delay_prob = 0.0;
      max_delay_us = 0;
      dup_prob = 0.0;
      drop_prob = 0.0;
      reorder = false;
      sharded = true;
      backend = Transport.Threads;
      seed = cfg.seed;
    }
  in
  match cfg.profile with
  | Quiet -> clean
  | Chaos ->
      { clean with drop_prob = 0.02; dup_prob = 0.05; reorder = true }

let run ?(sink = Sink.none) cfg =
  if cfg.wipe_frac < 0.0 || cfg.wipe_frac >= 1.0 then
    invalid_arg "Dst_keyspace: wipe_frac must be in [0, 1)";
  let scfg =
    { Sched.seed = cfg.seed; step_ns = cfg.step_ns; max_steps = cfg.max_steps }
  in
  let settled_at_wipe = ref (-1) in
  let value, report =
    Sched.run scfg (fun s ->
        let hook = Sched.hook s in
        let cluster =
          Cluster.create ~sched:hook ~sink
            {
              Cluster.n = cfg.n;
              transport = transport_of cfg;
              op_timeout_s = 300.0;
              recovery = Recovery.Amnesia;
              retry = Some Retry.default_config;
              hedge = None;
              deadline = None;
            }
        in
        let ks = Kspace.create cluster ~f:cfg.f () in
        Cluster.start cluster;
        let checker =
          Kchecker.spawn ~sched:hook ~sink
            ~config:
              {
                Kchecker.interval_s = 0.002;
                deep_sample = cfg.deep_sample;
                deep_cap = 65_536;
              }
            (Kspace.klog ks)
        in
        (* the injection fiber: after [wipe_frac] of the load's virtual
           duration, roll a diskless wipe across every server — one at
           a time, so a quorum is always up and operations keep
           completing on the wiped state *)
        if cfg.wipe_frac > 0.0 then begin
          let duration = float_of_int cfg.total_ops /. cfg.arrival_rate in
          Sched.spawn s ~name:"wiper" (fun () ->
              hook.Sched_hook.sleep (cfg.wipe_frac *. duration);
              settled_at_wipe := Kchecker.settled checker;
              for srv = 0 to cfg.n - 1 do
                Cluster.crash cluster srv;
                Cluster.restart cluster srv
              done)
        end;
        let load =
          Openload.run ~sched:hook ks
            {
              Openload.keys = cfg.keys;
              zipf = cfg.zipf;
              arrival_rate = cfg.arrival_rate;
              total_ops = cfg.total_ops;
              window = cfg.window;
              write_fraction = cfg.write_fraction;
              seed = cfg.seed;
            }
        in
        let result = Kchecker.stop checker in
        Cluster.shutdown cluster;
        (result, load))
  in
  let result = Option.map fst value in
  let load = Option.map snd value in
  let problems = ref [] in
  let add p = problems := p :: !problems in
  (match report.Sched.deadlock with
  | Some names ->
      add (Fmt.str "deadlock: parked actors [%s]" (String.concat ", " names))
  | None -> ());
  if report.Sched.stalled then
    add (Fmt.str "stall: exceeded %d scheduling steps" report.Sched.steps);
  List.iter
    (fun (name, exn) -> add (Fmt.str "actor-crash: %s: %s" name exn))
    report.Sched.actor_crashes;
  (match result with
  | None ->
      if !problems = [] then add "run ended without a result"
  | Some r ->
      if r.Kchecker.deep_mismatches > 0 then
        add
          (Fmt.str "deep-check mismatch on %d keys: the GC lost an answer"
             r.Kchecker.deep_mismatches));
  let caught =
    match result with Some r -> r.Kchecker.violations > 0 | None -> false
  in
  {
    cfg;
    result;
    load;
    report;
    settled_at_wipe = !settled_at_wipe;
    caught;
    problems = List.rev !problems;
  }

let gc_soundness_holds o =
  o.problems = [] && o.settled_at_wipe > 0 && o.caught

let outcome_pp ppf o =
  Fmt.pf ppf "seed=%d %s keyspace: %s (%d steps, %.3fs virtual)" o.cfg.seed
    (profile_name o.cfg.profile)
    (if o.problems = [] then "ran" else "FAILED")
    o.report.Sched.steps
    (Int64.to_float o.report.Sched.vtime_ns *. 1e-9);
  (match o.result with
  | Some r ->
      Fmt.pf ppf
        "@.  checks=%d violations=%d settled=%d (at wipe: %d) resident<=%d \
         caught=%b"
        r.Kchecker.checks r.Kchecker.violations r.Kchecker.settled_writes
        o.settled_at_wipe r.Kchecker.max_resident_ops o.caught
  | None -> ());
  List.iter (fun p -> Fmt.pf ppf "@.  - %s" p) o.problems

open Regemu_live
open Regemu_chaos
module Json = Regemu_obs.Json

(* --- fuzz profiles ------------------------------------------------------- *)

type profile = Quiet | Chaos | Hunt

let profile_name = function
  | Quiet -> "quiet"
  | Chaos -> "chaos"
  | Hunt -> "hunt"

let profile_of_name = function
  | "quiet" -> Some Quiet
  | "chaos" -> Some Chaos
  | "hunt" -> Some Hunt
  | _ -> None

(* Per-seed config for a profile.  [Quiet] keeps the base as given;
   [Chaos] adds a seeded ≤f fault timeline (expected clean under
   Persist); [Hunt] goes deliberately outside the model — diskless
   rolling wipes under Amnesia recovery — so the checker has real
   violations to find and the shrinker real counterexamples to
   minimize. *)
let config_for profile ~(base : Dst.config) ~seed =
  let base = { base with Dst.seed } in
  match profile with
  | Quiet -> base
  | Chaos ->
      (* tight gaps: the virtual-time workload finishes in ~10 ms, so
         the fault timeline must land inside that window to matter *)
      {
        base with
        Dst.nemesis = Schedule.flapping ~n:base.Dst.n ~flips:4 ~gap_ms:3 ~seed;
      }
  | Hunt ->
      {
        base with
        Dst.recovery = Recovery.Amnesia;
        ops_per_client = max base.Dst.ops_per_client 12;
        nemesis = Schedule.wipe_storm ~n:base.Dst.n ~at_ms:3 ~storms:2 ();
      }

(* --- the seed sweep ------------------------------------------------------ *)

type failure = { seed : int; outcome : Dst.outcome }

type fuzz_report = {
  profile : profile;
  seeds : int;
  passed : int;
  failures : failure list;  (* in seed order *)
}

let fuzz ?(progress = fun _ -> ()) ~profile ~(base : Dst.config) ~seeds () =
  if seeds < 1 then invalid_arg "Dst_fuzz.fuzz: seeds must be >= 1";
  let failures = ref [] and npassed = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = base.Dst.seed + i in
    let cfg = config_for profile ~base ~seed in
    let outcome = Dst.run cfg in
    progress outcome;
    if Dst.passed outcome then incr npassed
    else failures := { seed; outcome } :: !failures
  done;
  { profile; seeds; passed = !npassed; failures = List.rev !failures }

(* --- shrinking ----------------------------------------------------------- *)

(* The shrinker must preserve *this* failure, not trade it for another
   bug: candidates count only if they fail with the same set of
   violation kinds (the prefix before the first ':'). *)
let violation_kind v =
  match String.index_opt v ':' with
  | Some i -> String.sub v 0 i
  | None -> v

let failure_key (o : Dst.outcome) =
  List.sort_uniq compare (List.map violation_kind o.Dst.violations)

(* Zeller-style ddmin over a list: the minimal subsequence for which
   [test] still holds, testing subsets and complements at doubling
   granularity.  [test []] is allowed to hold (an input-independent
   failure shrinks to the empty schedule). *)
let ddmin ~test xs =
  let split_chunks n xs =
    let len = List.length xs in
    let base = len / n and extra = len mod n in
    let rec go i xs acc =
      if i >= n then List.rev acc
      else
        let size = base + if i < extra then 1 else 0 in
        let chunk, rest =
          let rec take k xs acc =
            if k = 0 then (List.rev acc, xs)
            else
              match xs with
              | [] -> (List.rev acc, [])
              | x :: xs -> take (k - 1) xs (x :: acc)
          in
          take size xs []
        in
        go (i + 1) rest (chunk :: acc)
    in
    go 0 xs []
  in
  let rec go xs n =
    if List.length xs <= 1 then xs
    else begin
      let chunks = split_chunks n xs in
      let rec try_subsets = function
        | [] -> None
        | c :: rest ->
            if c <> xs && test c then Some (c, 2) else try_subsets rest
      in
      let rec try_complements i = function
        | [] -> None
        | c :: rest ->
            let comp = List.concat (List.filteri (fun j _ -> j <> i) chunks) in
            ignore c;
            if comp <> xs && comp <> [] && test comp then
              Some (comp, max (n - 1) 2)
            else try_complements (i + 1) rest
      in
      match try_subsets chunks with
      | Some (c, n') -> go c n'
      | None -> (
          match try_complements 0 chunks with
          | Some (c, n') -> go c n'
          | None ->
              if n < List.length xs then go xs (min (List.length xs) (2 * n))
              else xs)
    end
  in
  if test [] then [] else go xs 2

type shrink_result = {
  cfg : Dst.config;  (* minimized config (nemesis, ops, clients) *)
  choices : int array;  (* minimized interleaving trace *)
  outcome : Dst.outcome;  (* the minimized failing run *)
  runs_spent : int;
  memo_hits : int;
}

let shrink ?(budget = 250) (cfg0 : Dst.config) (original : Dst.outcome) =
  let key = failure_key original in
  if key = [] then invalid_arg "Dst_fuzz.shrink: outcome is not a failure";
  let spent = ref 0 and memo_hits = ref 0 in
  (* Runs are pure functions of (config, nemesis, choices), so identical
     candidates — ddmin retests subsets and complements it has already
     seen, and later passes re-probe the current best — need not
     re-execute the whole virtual cluster.  Memoized replays cost a
     table lookup and don't count against the budget. *)
  let memo : (string, Dst.outcome) Hashtbl.t = Hashtbl.create 64 in
  let memo_key ?choices (cfg : Dst.config) =
    let b = Buffer.create 256 in
    Buffer.add_string b (Json.to_string (Dst.config_json cfg));
    Buffer.add_string b (Json.to_string (Schedule.to_json cfg.Dst.nemesis));
    (match choices with
    | None -> Buffer.add_string b "|prng"
    | Some cs ->
        Buffer.add_char b '|';
        Array.iter
          (fun c ->
            Buffer.add_string b (string_of_int c);
            Buffer.add_char b ',')
          cs);
    Buffer.contents b
  in
  let run_always ?choices cfg =
    let k = memo_key ?choices cfg in
    match Hashtbl.find_opt memo k with
    | Some o ->
        incr memo_hits;
        o
    | None ->
        incr spent;
        let o = Dst.run ?choices cfg in
        Hashtbl.add memo k o;
        o
  in
  let try_run ?choices cfg =
    let cached = Hashtbl.mem memo (memo_key ?choices cfg) in
    if (not cached) && !spent >= budget then None
    else
      let o = run_always ?choices cfg in
      if (not (Dst.passed o)) && failure_key o = key then Some o else None
  in
  (* pass 1: minimal fault schedule *)
  let cfg = ref cfg0 in
  let nemesis =
    ddmin
      ~test:(fun evs ->
        Option.is_some (try_run { !cfg with Dst.nemesis = evs }))
      cfg0.Dst.nemesis
  in
  cfg := { !cfg with Dst.nemesis = nemesis };
  (* pass 2: fewer operations *)
  let rec shrink_ops () =
    let ops = !cfg.Dst.ops_per_client in
    if ops > 1 then begin
      let candidate = { !cfg with Dst.ops_per_client = max 1 (ops / 2) } in
      match try_run candidate with
      | Some _ ->
          cfg := candidate;
          shrink_ops ()
      | None -> ()
    end
  in
  shrink_ops ();
  (* pass 3: fewer clients *)
  (if !cfg.Dst.readers > 1 then
     let candidate = { !cfg with Dst.readers = 1 } in
     if Option.is_some (try_run candidate) then cfg := candidate);
  (if !cfg.Dst.writers > 1 then
     let candidate = { !cfg with Dst.writers = 1 } in
     if Option.is_some (try_run candidate) then cfg := candidate);
  (* record the minimized config's own interleaving as the trace *)
  let witness = run_always !cfg in
  let witness =
    if (not (Dst.passed witness)) && failure_key witness = key then witness
    else original
  in
  let cfg =
    if witness == original then cfg0 (* re-shrunk run diverged; keep safe *)
    else !cfg
  in
  let choices = ref witness.Dst.report.Sched.choices in
  (* pass 4: shorten the trace — a truncated replay falls back to the
     PRNG, which often still walks into the same violation *)
  let rec shrink_tail () =
    let n = Array.length !choices in
    if n > 0 then begin
      let candidate = Array.sub !choices 0 (n / 2) in
      match try_run ~choices:candidate cfg with
      | Some _ ->
          choices := candidate;
          shrink_tail ()
      | None -> ()
    end
  in
  shrink_tail ();
  (* pass 5: zero out choice chunks — a 0 means "first eligible", the
     least adversarial pick, so surviving nonzeros mark the decisions
     the counterexample actually needs *)
  let rec zero_chunks size =
    if size >= 1 && Array.length !choices > 0 then begin
      let n = Array.length !choices in
      let i = ref 0 in
      while !i < n do
        let hi = min n (!i + size) in
        let has_nonzero = ref false in
        for j = !i to hi - 1 do
          if !choices.(j) <> 0 then has_nonzero := true
        done;
        if !has_nonzero then begin
          let candidate = Array.copy !choices in
          for j = !i to hi - 1 do
            candidate.(j) <- 0
          done;
          match try_run ~choices:candidate cfg with
          | Some _ -> choices := candidate
          | None -> ()
        end;
        i := hi
      done;
      zero_chunks (size / 4)
    end
  in
  zero_chunks (max 1 (Array.length !choices / 4));
  (* final witness under the minimized (config, trace) *)
  let outcome = run_always ~choices:!choices cfg in
  let outcome, choices =
    if (not (Dst.passed outcome)) && failure_key outcome = key then
      (outcome, !choices)
    else (witness, witness.Dst.report.Sched.choices)
  in
  { cfg; choices; outcome; runs_spent = !spent; memo_hits = !memo_hits }

(* --- the regemu-dst/1 replay file ---------------------------------------- *)

let schema = "regemu-dst/1"

let replay_json ~(cfg : Dst.config) ~choices ~(outcome : Dst.outcome) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("config", Dst.config_json cfg);
      ("nemesis", Schedule.to_json cfg.Dst.nemesis);
      ("choices", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) choices)));
      ( "expected",
        Json.Obj
          [
            ( "violations",
              Json.List
                (List.map (fun s -> Json.Str s) outcome.Dst.violations) );
            ("digest", Json.Str (Dst.run_digest outcome));
            ( "ops_completed",
              match outcome.Dst.stats with
              | None -> Json.Null
              | Some s -> Json.Int s.Dst.cluster_stats.Cluster.ops_completed );
          ] );
    ]

let write_replay path ~cfg ~choices ~outcome =
  Json.to_file path (replay_json ~cfg ~choices ~outcome)

type replay_spec = {
  r_cfg : Dst.config;
  r_choices : int array;
  r_expected_violations : string list;
  r_expected_digest : string;
}

let parse_replay json =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" json with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error (Fmt.str "unsupported schema %S" s)
    | _ -> Error "missing schema"
  in
  let* cfg =
    match Json.member "config" json with
    | Some c -> Dst.config_of_json c
    | None -> Error "missing config"
  in
  let* nemesis =
    match Json.member "nemesis" json with
    | Some n -> Schedule.of_json n
    | None -> Ok []
  in
  let* choices =
    match Json.member "choices" json with
    | Some (Json.List cs) ->
        List.fold_left
          (fun acc c ->
            match (acc, Json.to_int_opt c) with
            | Ok acc, Some c -> Ok (c :: acc)
            | (Error _ as e), _ -> e
            | Ok _, None -> Error "choices must be integers")
          (Ok []) cs
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error "missing choices"
  in
  let expected = Json.member "expected" json in
  let r_expected_violations =
    match Option.bind expected (Json.member "violations") with
    | Some (Json.List vs) -> List.filter_map Json.to_str_opt vs
    | _ -> []
  in
  let r_expected_digest =
    match Option.bind expected (Json.member "digest") with
    | Some (Json.Str d) -> d
    | _ -> ""
  in
  Ok
    {
      r_cfg = { cfg with Dst.nemesis };
      r_choices = choices;
      r_expected_violations;
      r_expected_digest;
    }

let read_replay path =
  match Json.of_file path with
  | Error e -> Error (Fmt.str "%s: %s" path e)
  | Ok json -> parse_replay json

type replay_result = {
  spec : replay_spec;
  outcome : Dst.outcome;
  digest_matched : bool;
  violations_matched : bool;
}

let replay_matched r = r.digest_matched && r.violations_matched

let replay ?sink spec =
  let outcome = Dst.run ~choices:spec.r_choices ?sink spec.r_cfg in
  {
    spec;
    outcome;
    digest_matched = Dst.run_digest outcome = spec.r_expected_digest;
    violations_matched = outcome.Dst.violations = spec.r_expected_violations;
  }

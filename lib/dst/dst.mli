(** One deterministic simulation run: the full live stack — cluster,
    transport, checker, nemesis, workload — driven by {!Sched} so the
    entire run is a pure function of [(config, choices)].

    The harness mirrors {!Regemu_live.Live_bench.run}: writer and
    reader fibers issue operations through the selected algorithm while
    the incremental online checker ticks in virtual time and a
    {!Regemu_chaos.Schedule} replays against the virtual clock.  At the
    end it runs the {e full-pass} WS-Regularity check over the complete
    history and compares the two verdicts — the online checker's
    incrementality argument, tested rather than trusted.

    A run {e fails} when any of these hold: the online checker or the
    full pass reports a violation, their verdict classes disagree, the
    final atomicity check fails, an actor crashed, or the scheduler
    declared a deadlock or stall. *)

open Regemu_live
open Regemu_chaos

type config = {
  seed : int;  (** drives the schedule PRNG and every transport lane *)
  algo : Live_bench.algo;
  writers : int;
  readers : int;
  f : int;
  n : int;
  ops_per_client : int;
  recovery : Recovery.mode;
  reorder : bool;
  drop_prob : float;
  dup_prob : float;
  delay_prob : float;
  max_delay_us : int;
  hedge : bool;
      (** hedged quorum rounds + adaptive deadlines
          ({!Regemu_live.Hedge.default_config} /
          {!Regemu_live.Deadline.default_config}); default off *)
  nemesis : Schedule.t;  (** replayed in virtual time *)
  step_ns : int;  (** {!Sched.config} *)
  max_steps : int;
}

(** ABD, 1 writer × 2 readers × 8 ops, f=1 n=3, reorder + light
    drop/duplication, no nemesis.  One writer because WS-regularity
    is only checkable on write-sequential histories — concurrent
    writers would leave every verdict vacuous. *)
val default_config : seed:int -> config

type run_stats = {
  online : Checker.result;
  full_ws : Regemu_history.Ws_check.verdict;
  nemesis_counters : Nemesis.counters;
  cluster_stats : Cluster.stats;
  history_digest : string;
}

type outcome = {
  cfg : config;
  stats : run_stats option;  (** [None]: the run never reached its end *)
  report : Sched.report;
  violations : string list;  (** empty = clean run *)
}

val passed : outcome -> bool

(** [run ?choices cfg] executes one simulation.  [choices] replays a
    recorded interleaving ({!Sched.report.choices}); omitted, the
    seeded PRNG decides.  [sink] instruments the run
    ({!Regemu_live.Cluster.create}); since the whole stack runs in
    virtual time on a deterministic scheduler, two replays of one
    schedule yield byte-identical trace exports.  Pass a fresh sink
    per run.  Raises [Invalid_argument] on a malformed config. *)
val run : ?choices:int array -> ?sink:Regemu_live.Sink.t -> config -> outcome

(** The determinism fingerprint: schedule digest plus a hash of the
    observable history (clients, operations, results, logical order).
    Two invocations of [run] with equal inputs must agree on it
    byte-for-byte. *)
val run_digest : outcome -> string

(** Verdict class ("holds" / "vacuous" / "violated") — the unit of
    online-vs-full agreement. *)
val verdict_class : Regemu_history.Ws_check.verdict -> string

val config_json : config -> Regemu_obs.Json.t

(** Inverse of {!config_json} except [nemesis], which travels
    separately in the replay file ({!Dst_fuzz}). *)
val config_of_json : Regemu_obs.Json.t -> (config, string) result

val outcome_json : outcome -> Regemu_obs.Json.t
val outcome_pp : outcome Fmt.t

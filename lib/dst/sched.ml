open Regemu_live

exception Halt

type config = { seed : int; step_ns : int; max_steps : int }

let default_config ~seed = { seed; step_ns = 20_000; max_steps = 2_000_000 }

let validate_config cfg =
  if cfg.step_ns <= 0 then invalid_arg "Sched: step_ns must be positive";
  if cfg.max_steps <= 0 then invalid_arg "Sched: max_steps must be positive"

type astate =
  | Ready
  | Running
  | Blocked of { pred : unit -> bool; deadline : int64 option }
  | Sleeping of int64
  | Finished

type actor = {
  aid : int;
  name : string;
  mutable st : astate;
  cond : Condition.t;  (* parked actor waits here, on [gm] *)
  mutable granted : bool;
}

type t = {
  cfg : config;
  rng : Regemu_sim.Rng.t;
  gm : Mutex.t;  (* the one scheduler lock; actor state lives under it *)
  runner_c : Condition.t;  (* the runner waits here for the baton back *)
  mutable actors : actor array;  (* spawn order; grow-only *)
  mutable nactors : int;
  mutable threads : Thread.t list;
  by_thread : (int, actor) Hashtbl.t;
  mutable now : int64;  (* virtual nanoseconds *)
  mutable steps : int;
  mutable digest : int64;  (* FNV-1a over every step's chosen actor *)
  mutable choices_rev : int list;  (* recorded branch choices, newest first *)
  mutable sites_rev : int list;  (* branch-point sites (aid, width), newest first *)
  replay : int array;
  mutable replay_pos : int;
  mutable replay_clamped : int;  (* replayed values folded back in range *)
  mutable stopping : bool;
  mutable deadlock : string list option;
  mutable stalled : bool;
  mutable crashes : (string * string) list;
}

type report = {
  steps : int;
  vtime_ns : int64;
  digest : string;
  choices : int array;
  sites : int array;
  replay_clamped : int;
  replay_unused : int;
  deadlock : string list option;
  stalled : bool;
  actor_crashes : (string * string) list;
  actors : int;
}

(* --- FNV-1a, 64-bit ------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_mix d x =
  let d = ref d in
  for shift = 0 to 3 do
    let byte = Int64.of_int ((x lsr (8 * shift)) land 0xff) in
    d := Int64.mul (Int64.logxor !d byte) fnv_prime
  done;
  !d

let hex_of_digest d = Printf.sprintf "%016Lx" d

(* --- actor bookkeeping --------------------------------------------------- *)

let add_actor t a =
  if t.nactors = Array.length t.actors then begin
    let bigger = Array.make (max 8 (2 * t.nactors)) a in
    Array.blit t.actors 0 bigger 0 t.nactors;
    t.actors <- bigger
  end;
  t.actors.(t.nactors) <- a;
  t.nactors <- t.nactors + 1

(* called with [gm] held *)
let self t =
  match Hashtbl.find_opt t.by_thread (Thread.id (Thread.self ())) with
  | Some a -> a
  | None -> invalid_arg "Sched: blocking call from a non-actor thread"

(* Give the baton back to the runner with [st] as our new state, then
   park until granted again.  Called with [gm] held; returns with it
   held, running. *)
let yield_baton t a st =
  a.st <- st;
  a.granted <- false;
  Condition.signal t.runner_c;
  while not a.granted do
    Condition.wait a.cond t.gm
  done

let ns_of_s s = Int64.of_float (s *. 1e9)

(* --- the three hook operations ------------------------------------------ *)

let suspend t ?timeout_s ?mutex pred =
  Mutex.lock t.gm;
  let a = self t in
  Option.iter Mutex.unlock mutex;
  let deadline = Option.map (fun s -> Int64.add t.now (ns_of_s s)) timeout_s in
  yield_baton t a (Blocked { pred; deadline });
  let stop = t.stopping in
  Mutex.unlock t.gm;
  (* relock before raising so the caller's unlock-on-exit stays sound *)
  Option.iter Mutex.lock mutex;
  if stop then raise Halt

let sleep t s =
  Mutex.lock t.gm;
  let a = self t in
  yield_baton t a (Sleeping (Int64.add t.now (ns_of_s (Float.max 0.0 s))));
  let stop = t.stopping in
  Mutex.unlock t.gm;
  if stop then raise Halt

let spawn t ~name body =
  Mutex.lock t.gm;
  let a =
    {
      aid = t.nactors;
      name;
      st = Ready;
      cond = Condition.create ();
      granted = false;
    }
  in
  add_actor t a;
  let th =
    Thread.create
      (fun () ->
        Mutex.lock t.gm;
        Hashtbl.replace t.by_thread (Thread.id (Thread.self ())) a;
        while not a.granted do
          Condition.wait a.cond t.gm
        done;
        let stop = t.stopping in
        Mutex.unlock t.gm;
        (if not stop then
           try body () with
           | Halt -> ()
           | exn ->
               let msg = Printexc.to_string exn in
               Mutex.lock t.gm;
               t.crashes <- (name, msg) :: t.crashes;
               Mutex.unlock t.gm);
        Mutex.lock t.gm;
        a.st <- Finished;
        a.granted <- false;
        Condition.signal t.runner_c;
        Mutex.unlock t.gm)
      ()
  in
  t.threads <- th :: t.threads;
  Mutex.unlock t.gm

let hook t =
  {
    Sched_hook.spawn = (fun ~name body -> spawn t ~name body);
    suspend = (fun ?timeout_s ?mutex pred -> suspend t ?timeout_s ?mutex pred);
    sleep = (fun s -> sleep t s);
  }

(* --- the runner ---------------------------------------------------------- *)

(* called with [gm] held; hands the baton to [a] and waits for it back *)
let grant t a =
  a.st <- Running;
  a.granted <- true;
  Condition.signal a.cond;
  while a.granted do
    Condition.wait t.runner_c t.gm
  done

(* is [a] runnable right now?  [pred]s are evaluated here, on the
   runner, while every actor is parked — so they are plain reads with
   no possible race *)
let eligible t a =
  match a.st with
  | Ready -> true
  | Running | Finished -> false
  | Sleeping d -> d <= t.now
  | Blocked { pred; deadline } -> (
      (try pred () with _ -> true)
      || match deadline with Some d -> d <= t.now | None -> false)

let earliest_deadline t =
  let best = ref None in
  for i = 0 to t.nactors - 1 do
    let take d =
      match !best with
      | Some b when b <= d -> ()
      | _ -> best := Some d
    in
    match t.actors.(i).st with
    | Sleeping d -> take d
    | Blocked { deadline = Some d; _ } -> take d
    | _ -> ()
  done;
  !best

let parked_names t =
  let acc = ref [] in
  for i = t.nactors - 1 downto 0 do
    match t.actors.(i).st with
    | Finished -> ()
    | _ -> acc := t.actors.(i).name :: !acc
  done;
  !acc

let all_finished t =
  let rec go i = i >= t.nactors || (t.actors.(i).st = Finished && go (i + 1)) in
  go 0

(* pick the next actor: replayed choice if one is left (out-of-range
   values fold back in), the seeded rng otherwise; choices are recorded
   only at real branch points (more than one eligible actor) *)
let choose t n =
  if n = 1 then 0
  else begin
    let k =
      if t.replay_pos < Array.length t.replay then begin
        let v = t.replay.(t.replay_pos) in
        let k = ((v mod n) + n) mod n in
        if k <> v then t.replay_clamped <- t.replay_clamped + 1;
        k
      end
      else Regemu_sim.Rng.int t.rng ~bound:n
    in
    t.replay_pos <- t.replay_pos + 1;
    t.choices_rev <- k :: t.choices_rev;
    k
  end

(* a coverage site for the branch point that picked actor [a] among [n]
   eligible ones; sites feed the coverage-guided fuzzer's edge bitmap *)
let site_of aid n = ((aid land 0xffff) lsl 8) lor (n land 0xff)

let run ?(replay = [||]) cfg f =
  validate_config cfg;
  let t =
    {
      cfg;
      rng = Regemu_sim.Rng.create cfg.seed;
      gm = Mutex.create ();
      runner_c = Condition.create ();
      actors = [||];
      nactors = 0;
      threads = [];
      by_thread = Hashtbl.create 64;
      (* a nonzero epoch so no timestamp is confused with an unset 0 *)
      now = 1_000_000_000L;
      steps = 0;
      digest = fnv_offset;
      choices_rev = [];
      sites_rev = [];
      replay;
      replay_pos = 0;
      replay_clamped = 0;
      stopping = false;
      deadlock = None;
      stalled = false;
      crashes = [];
    }
  in
  Clock.set_source (fun () -> t.now);
  Fun.protect ~finally:Clock.clear_source @@ fun () ->
  let result = ref None in
  spawn t ~name:"main" (fun () -> result := Some (f t));
  Mutex.lock t.gm;
  while (not (all_finished t)) && not t.stopping do
    let elig = ref [] in
    for i = t.nactors - 1 downto 0 do
      let a = t.actors.(i) in
      if eligible t a then elig := a :: !elig
    done;
    match !elig with
    | [] -> (
        (* nothing runnable: jump virtual time to the next deadline, or
           declare the run wedged *)
        match earliest_deadline t with
        | Some d -> t.now <- Int64.max d (Int64.add t.now 1L)
        | None ->
            t.deadlock <- Some (parked_names t);
            t.stopping <- true)
    | elig ->
        let n = List.length elig in
        let a = List.nth elig (choose t n) in
        if n > 1 then t.sites_rev <- site_of a.aid n :: t.sites_rev;
        t.steps <- t.steps + 1;
        t.digest <- fnv_mix (fnv_mix t.digest a.aid) n;
        t.now <- Int64.add t.now (Int64.of_int cfg.step_ns);
        if t.steps > cfg.max_steps then begin
          t.stalled <- true;
          t.stopping <- true
        end
        else grant t a
  done;
  (* teardown on deadlock/stall: grant every surviving actor once so it
     observes [stopping], raises {!Halt} out of its yield point, and
     finishes; repeat until no actor is left (a granted actor may spawn
     or briefly run before its next yield) *)
  let rec drain guard =
    if guard > 0 && not (all_finished t) then begin
      for i = 0 to t.nactors - 1 do
        let a = t.actors.(i) in
        if a.st <> Finished then grant t a
      done;
      drain (guard - 1)
    end
  in
  if t.stopping then drain (t.nactors + 16);
  let threads = t.threads in
  let finished = all_finished t in
  Mutex.unlock t.gm;
  if finished then List.iter Thread.join threads;
  ( !result,
    {
      steps = t.steps;
      vtime_ns = t.now;
      digest = hex_of_digest t.digest;
      choices = Array.of_list (List.rev t.choices_rev);
      sites = Array.of_list (List.rev t.sites_rev);
      replay_clamped = t.replay_clamped;
      replay_unused = max 0 (Array.length t.replay - t.replay_pos);
      deadlock = t.deadlock;
      stalled = t.stalled;
      actor_crashes = List.rev t.crashes;
      actors = t.nactors;
    } )

(** Deterministic-schedule testing of the keyspace and its GC'd
    checker.

    A run drives an open-loop keyspace workload under the virtual
    scheduler ({!Sched}), with {!Regemu_keyspace.Kchecker} as a
    cooperative actor — one (seed, config) pair fully determines the
    run.  With [wipe_frac > 0], after that fraction of the virtual
    load duration an injection fiber rolls an {e amnesia wipe} over
    every server (crash + diskless restart, one at a time, so quorums
    stay live): every per-key register silently reverts to the initial
    value, a WS-Regularity violation for any key written earlier.

    The point of the regression: the wipe fires {e after} the checker
    has settled (GC'd) a prefix of history — [settled_at_wipe] proves
    it — and the checker must flag the fallout anyway, from the
    [wlast] writes it kept.  Settled means settled. *)

type profile = Quiet  (** clean transport *) | Chaos  (** drops + dups + reorder *)

val profile_name : profile -> string
val profile_of_name : string -> profile option

type config = {
  seed : int;
  profile : profile;
  n : int;
  f : int;
  keys : int;
  zipf : float;
  arrival_rate : float;  (** virtual ops/s *)
  total_ops : int;
  window : int;
  write_fraction : float;
  deep_sample : int;
  wipe_frac : float;  (** 0 disables injection; else fraction of the
                          load duration after which the wipe rolls *)
  step_ns : int;
  max_steps : int;
}

(** A small wiped run on the given profile. *)
val default_config : profile:profile -> seed:int -> config

type outcome = {
  cfg : config;
  result : Regemu_keyspace.Kchecker.result option;
      (** [None]: the run never reached its end *)
  load : Regemu_keyspace.Openload.outcome option;
  report : Sched.report;
  settled_at_wipe : int;  (** GC'd writes when the wipe began; -1 if no wipe *)
  caught : bool;  (** the checker flagged a violation *)
  problems : string list;  (** harness-level failures (deadlock, crash…) *)
}

val run : ?sink:Regemu_live.Sink.t -> config -> outcome

(** The regression predicate: the run completed, a prefix was settled
    before the wipe, and the checker caught the fallout. *)
val gc_soundness_holds : outcome -> bool

val outcome_pp : outcome Fmt.t

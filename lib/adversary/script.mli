(** Deterministic scripted schedules.

    The proofs in the paper (Lemma 4, and classic results like the
    new/old read inversion that motivates reader write-back) are
    specific interleavings.  This module provides the small vocabulary
    needed to write such interleavings directly against a simulator:
    fire only events matching a predicate until a goal holds, release
    the response of a specific pending operation, etc.

    All helpers are deterministic (first enabled match wins) and
    bounded, returning [Error] with a stage name instead of hanging. *)

open Regemu_objects
open Regemu_sim

(** [true] for [Read]/[Max_read] low-level operations. *)
val is_read_op : Base_object.op -> bool

(** Look up a pending operation by trigger id. *)
val pending_info : Sim.t -> Id.Lop.t -> Sim.pending_info option

(** Pending mutators (register writes / write-max / CAS) by [client]. *)
val pending_writes_by : Sim.t -> Id.Client.t -> Sim.pending_info list

(** Event filter admitting client steps and read responses only —
    lets collect/read phases complete while holding all writes. *)
val keep_reads_and_steps : Sim.t -> Sim.event -> bool

(** Event filter admitting client steps only. *)
val keep_steps : Sim.t -> Sim.event -> bool

(** [drive_until sim ~keep ~goal ~budget ~what] repeatedly fires the
    first enabled event satisfying [keep] until [goal ()]. *)
val drive_until :
  Sim.t ->
  keep:(Sim.t -> Sim.event -> bool) ->
  goal:(unit -> bool) ->
  budget:int ->
  what:string ->
  (unit, string) result

(** Respond to the pending mutator by [client] on [obj]. *)
val release_write :
  Sim.t -> client:Id.Client.t -> obj:Id.Obj.t -> what:string ->
  (unit, string) result

(** Respond to the pending mutators by [client] on each of [objs]. *)
val release_writes :
  Sim.t -> client:Id.Client.t -> objs:Id.Obj.t list -> what:string ->
  (unit, string) result

(** Respond to the pending read by [client] on [obj]. *)
val release_read :
  Sim.t -> client:Id.Client.t -> obj:Id.Obj.t -> what:string ->
  (unit, string) result

(** Respond to the pending reads by [client] on each of [objs]. *)
val release_reads :
  Sim.t -> client:Id.Client.t -> objs:Id.Obj.t list -> what:string ->
  (unit, string) result

(** Step the given client until its current call returns. *)
val step_to_return :
  Sim.t -> Sim.call -> budget:int -> what:string -> (unit, string) result

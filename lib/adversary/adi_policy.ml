open Regemu_objects
open Regemu_sim

type t = {
  sim : Sim.t;
  f_set : Id.Server.Set.t;
  rng : Rng.t;
  mutable state : Epoch_state.t;
  mutable completed : Id.Client.Set.t;
  mutable epochs : int;
  mutable cursor : int;  (* trace index scanned for write returns *)
}

let create sim ~f_set ~rng =
  {
    sim;
    f_set;
    rng;
    state = Epoch_state.start sim ~f_set ~completed_clients:Id.Client.Set.empty;
    completed = Id.Client.Set.empty;
    epochs = 0;
    cursor = Sim.now sim;
  }

(* Rotate the epoch whenever a high-level write returned since the last
   look: its writer joins C(t_{i-1}) and Definition 1 restarts. *)
let rotate_epochs t =
  let entries = Trace.since (Sim.trace t.sim) t.cursor in
  t.cursor <- Sim.now t.sim;
  List.iter
    (fun entry ->
      match entry with
      | Trace.Return (c, Trace.H_write _, _) ->
          t.completed <- Id.Client.Set.add c t.completed;
          t.epochs <- t.epochs + 1;
          t.state <-
            Epoch_state.start t.sim ~f_set:t.f_set
              ~completed_clients:t.completed
      | _ -> ())
    entries

let blocked t ev =
  match ev with
  | Sim.Step _ -> false
  | Sim.Respond lid -> (
      match
        List.find_opt
          (fun (p : Sim.pending_info) -> Id.Lop.equal p.lid lid)
          (Sim.pending t.sim)
      with
      | None -> true
      | Some p -> Epoch_state.blocked t.state p)

let policy t =
  {
    Policy.name = "Ad_i";
    choose =
      (fun _sim enabled ->
        rotate_epochs t;
        Epoch_state.advance t.state;
        match List.filter (fun ev -> not (blocked t ev)) enabled with
        | [] -> None
        | kept -> Some (Rng.pick t.rng kept));
  }

let epochs_completed t =
  rotate_epochs t;
  t.epochs
let covered t = Id.Obj.Set.cardinal (Sim.covered_objects t.sim)

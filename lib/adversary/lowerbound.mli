(** The Lemma 1 run construction, executable.

    Builds the write-only sequential runs [r_1, ..., r_k]: epoch [i]
    has a fresh client invoke a high-level write of a fresh value while
    the environment behaves like [Ad_i] (Definition 3): no failures, no
    blocked write ever responds, everything else eventually does.
    After the write returns, the run is extended (still under [Ad_i])
    until no register of [F] remains newly covered, establishing
    Lemma 1's invariants (a) [|Cov(t_i)| >= i*f] and
    (b) [delta(Cov(t_i)) ∩ F = ∅] for algorithms that match the lower
    bound; for any correct algorithm the construction yields at least
    these covering counts.

    Optionally monitors the Lemma 2 invariants at every step. *)

open Regemu_bounds
open Regemu_objects
open Regemu_core

type epoch_stats = {
  epoch : int;  (** [i], 1-based *)
  write_returned : bool;
      (** Lemma 3: the write must return despite the blocking *)
  cov_total : int;  (** [|Cov(t_i)|] *)
  cov_new : int;  (** registers newly covered this epoch *)
  cov_on_f : int;  (** [|delta(Cov(t_i)) ∩ F|] — 0 per Lemma 1(b) *)
  q_size : int;  (** [|Q_i|] at the write's return — f per Corollary 2 *)
  f_size : int;  (** [|F_i|] at the write's return *)
  fresh_servers_triggered : int;
      (** [|delta(Tr_i \ Cov(t_{i-1}))|] — > 2f per Lemma 4 and
          extended Lemma 1(c) *)
  new_cov_servers : int;
      (** [|delta(Cov(t_i) \ Cov(t_{i-1}))|] — >= f per extended
          Lemma 1(d) *)
  cov_monotone : bool;
      (** [Cov(t_i) ⊇ Cov(t_{i-1})] — extended Lemma 1(e) *)
  objects_used_total : int;  (** resource consumption so far *)
  point_contention : int;  (** 1 throughout (Theorem 8's hypothesis) *)
  lemma2_failure : string option;
}

val epoch_stats_pp : epoch_stats Fmt.t

type run = {
  params : Params.t;
  algo : string;
  f_set : Id.Server.Set.t;
  epochs : epoch_stats list;
  final_cov : int;
  final_objects_used : int;
  final_cov_per_server : (Id.Server.t * int) list;
      (** covered registers per server at the end of the run — the
          quantity Theorem 6 bounds below by [k] on every server
          outside [F] when [n = 2f+1] *)
  trace : Regemu_sim.Trace.t;  (** the full run, for audits *)
  kind_of : Id.Obj.t -> Regemu_objects.Base_object.kind;
}

(** [execute factory p ~seed ()] runs the construction for all [k]
    writers.  [f_set] defaults to the last [f+1] servers.  Fails with a
    message if some write does not return within the budget (a genuine
    obstruction-freedom violation under [Ad_i]) or the epoch-end
    extension cannot clear [F]. *)
val execute :
  Emulation.factory ->
  Params.t ->
  ?f_set:Id.Server.Set.t ->
  ?check_lemma2:bool ->
  ?budget_per_epoch:int ->
  seed:int ->
  unit ->
  (run, string) result

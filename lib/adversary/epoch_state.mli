(** The adversary's bookkeeping for one epoch of the Lemma 1
    construction (Definition 1 of the paper).

    An epoch [i] starts at time [t_{i-1}] (the end of the previous
    high-level write) and tracks, incrementally from the trace:

    - [Tr_i(t)]: registers with a low-level write triggered in-epoch;
    - [Rr_i(t)]: registers whose in-epoch write also responded in-epoch;
    - [Cov_i(t) = Cov(t) \ Cov(t_{i-1})]: newly covered registers;
    - [Q_i(t)]: the first at-most-[f] newly covered servers outside [F]
      (sticky once [|delta(Cov_i) \ F| > f], Definition 1.4);
    - [F_i(t)]: servers of [F] that responded to an in-epoch write;
    - [M_i(t) = delta(Cov_i) ∩ (F \ F_i)];
    - [G_i(t) = M_i] when [|Q_i| < |F_i|], else empty.

    Call {!advance} before inspecting any set: it consumes the trace
    entries recorded since the last call and replays the definitions
    action by action, so the sticky [Q_i] matches the paper's
    time-indexed definition exactly. *)

open Regemu_objects
open Regemu_sim

type t

(** [start sim ~f_set ~completed_clients] opens an epoch at the current
    time of [sim].  [f_set] is the paper's [F] ([|F| = f+1]);
    [completed_clients] is [C(t_{i-1})], the clients that completed a
    high-level write before the epoch. *)
val start :
  Sim.t ->
  f_set:Id.Server.Set.t ->
  completed_clients:Id.Client.Set.t ->
  t

val epoch_start_time : t -> int
val f_set : t -> Id.Server.Set.t

(** Consume newly recorded trace entries. *)
val advance : t -> unit

(** {2 The sets of Definition 1} — all valid as of the last {!advance}. *)

val tri : t -> Id.Obj.Set.t
val rri : t -> Id.Obj.Set.t
val covi : t -> Id.Obj.Set.t
val qi : t -> Id.Server.Set.t
val fi : t -> Id.Server.Set.t
val mi : t -> Id.Server.Set.t
val gi : t -> Id.Server.Set.t

(** [delta(Cov_i)] and [delta(Rr_i)] — server images of the sets. *)
val delta_covi : t -> Id.Server.Set.t

val delta_rri : t -> Id.Server.Set.t

(** The failure threshold [f = |F| - 1]. *)
val f_count : t -> int

(** [Cov(t_{i-1})]: registers covered when the epoch started. *)
val cov_start : t -> Id.Obj.Set.t

(** Current [Cov(t)] (from the simulator). *)
val cov_now : t -> Id.Obj.Set.t

(** [blocked t p] decides [BlockedWrites_i] membership for a pending
    low-level operation (Definition 2): a pending register write is
    blocked iff it was triggered by a client of [C(t_{i-1})] or on a
    register mapped to [Q_i ∪ G_i].  Non-write operations are never
    blocked. *)
val blocked : t -> Sim.pending_info -> bool

(** Servers of [Tr_i \ Cov(t_{i-1})] — the quantity bounded below by
    [2f+1] in Lemma 4. *)
val servers_triggered_fresh : t -> Id.Server.Set.t

open Regemu_objects
open Regemu_sim
open Regemu_history

type outcome = {
  history : History.t;
  verdict : Ws_check.verdict;
  read_value : Value.t;
  written : Value.t;
  steps : string list;
}

let ( let* ) = Result.bind

(* An ABD-style register over n = 2f max-registers with quorums of
   size f — the largest quorum an f-tolerant algorithm can await on 2f
   servers.  Deliberately doomed; only used to exhibit Theorem 5. *)
let doomed_emulation sim ~f =
  let objects =
    List.init (2 * f) (fun i ->
        Sim.alloc sim ~server:(Id.Server.of_int i) Base_object.Max_register)
  in
  let quorum = f in
  let phase ~client ~op k =
    let count = ref 0 in
    let best = ref Value.v0 in
    List.iter
      (fun b ->
        ignore
          (Sim.trigger sim ~client b op ~on_response:(fun v ->
               best := Value.max !best v;
               incr count)))
      objects;
    Sim.wait_until (fun () -> !count >= quorum);
    k !best
  in
  let write client v =
    Sim.invoke sim ~client (Trace.H_write v) (fun () ->
        phase ~client ~op:Base_object.Max_read (fun latest ->
            let ts_val = Value.with_ts (Value.ts latest + 1) v in
            phase ~client ~op:(Base_object.Max_write ts_val) (fun _ ->
                Value.Unit)))
  in
  let read client =
    Sim.invoke sim ~client Trace.H_read (fun () ->
        phase ~client ~op:Base_object.Max_read Value.payload)
  in
  (objects, write, read)

let impossibility ~f =
  if f <= 0 then invalid_arg "Partition.impossibility: f must be positive";
  let sim = Sim.create ~n:(2 * f) () in
  let writer = Sim.new_client sim in
  let reader = Sim.new_client sim in
  let objects, write, read = doomed_emulation sim ~f in
  let objs = Array.of_list objects in
  let half_a = List.init f (fun i -> objs.(i)) in
  let half_b = List.init f (fun i -> objs.(f + i)) in
  let steps = ref [] in
  let note fmt = Fmt.kstr (fun s -> steps := s :: !steps) fmt in
  let v = Value.Str "v1" in

  note "n = 2f = %d servers; an f-tolerant operation may await only f = %d"
    (2 * f) f;

  (* the write is served entirely by half A *)
  let w = write writer v in
  let* () =
    Script.release_reads sim ~client:writer ~objs:half_a ~what:"write phase 1"
  in
  let* () =
    Script.drive_until sim ~keep:Script.keep_steps
      ~goal:(fun () -> Script.pending_writes_by sim writer <> [])
      ~budget:100 ~what:"write phase 2 trigger"
  in
  let* () =
    Script.release_writes sim ~client:writer ~objs:half_a ~what:"write phase 2"
  in
  let* () = Script.step_to_return sim w ~budget:100 ~what:"write return" in
  note
    "the write completes using servers s0..s%d only (s%d..s%d appear \
     crashed — which f-tolerance must allow)"
    (f - 1) f ((2 * f) - 1);

  (* the read is served entirely by half B *)
  let rd = read reader in
  let* () =
    Script.release_reads sim ~client:reader ~objs:half_b ~what:"read phase"
  in
  let* () = Script.step_to_return sim rd ~budget:100 ~what:"read return" in
  let read_value = Option.get (Sim.call_result rd) in
  note
    "the read completes using servers s%d..s%d only (s0..s%d appear \
     crashed) and returns %a"
    f ((2 * f) - 1) (f - 1) Value.pp read_value;
  note "the two halves never intersect: the completed write is invisible";

  let history = History.of_trace (Sim.trace sim) in
  Ok
    {
      history;
      verdict = Ws_check.check_ws_safe history;
      read_value;
      written = v;
      steps = List.rev !steps;
    }

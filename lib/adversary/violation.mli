(** The runs of Lemma 4 / Figure 2, constructed concretely against the
    naive [2f+1]-register algorithm ({!Regemu_baselines.Naive_reg}).

    The schedule, for any [f >= 1] (two writers, one reader,
    [n = 2f+1], one register [b_j] per server):

    + [W_1 = write(v_1)] by [c_1]: its low-level writes respond on
      [b_0..b_f]; the remaining [f] stay pending (covering).
      [W_1] returns with its [f+1]-ack quorum.
    + [W_2 = write(v_2)] by [c_2]: its low-level writes respond on
      [b_{f+1}..b_{2f}] and on [b_0]; the writes on [b_1..b_f] stay
      pending.  [W_2] returns.
    + The environment now lets [W_1]'s stale covering writes take
      effect: [b_{f+1}..b_{2f}] are overwritten back to [v_1]'s
      timestamped value.  Every register except [b_0] now holds [v_1].
    + A reader runs: its reads respond on [f+1] registers among
      [b_1..b_{2f}] (server [s_0] appears slow — it may legitimately be
      one of the [f] crashed servers).  All of them hold [v_1], so the
      read returns [v_1] even though [W_2] completed long before —
      a WS-Safety violation.

    This is exactly why a register (unlike a max-register) cannot be
    reused while it has a pending write, and hence why the register
    bound grows with [k]. *)

open Regemu_objects
open Regemu_history

type outcome = {
  history : History.t;
  verdict : Ws_check.verdict;  (** [Violated _] — asserted by the tests *)
  read_value : Value.t;  (** the stale [v_1] *)
  last_written : Value.t;  (** [v_2] *)
  steps : string list;  (** human-readable narration of the schedule *)
}

(** Build the violating run against {!Regemu_baselines.Naive_reg} for
    the given failure threshold. *)
val against_naive : f:int -> (outcome, string) result

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history

type outcome = {
  history : History.t;
  verdict : Ws_check.verdict;
  read_value : Value.t;
  last_written : Value.t;
  steps : string list;
}

let ( let* ) = Result.bind

let against_naive ~f =
  let p = Params.make_exn ~k:2 ~f ~n:((2 * f) + 1) in
  let sim = Sim.create ~n:p.n () in
  let c1 = Sim.new_client sim and c2 = Sim.new_client sim in
  let reader = Sim.new_client sim in
  let instance =
    Regemu_baselines.Naive_reg.factory.make sim p ~writers:[ c1; c2 ]
  in
  let objs = Array.of_list (instance.objects ()) in
  let v1 = Value.Str "v1" and v2 = Value.Str "v2" in
  let steps = ref [] in
  let note fmt = Fmt.kstr (fun s -> steps := s :: !steps) fmt in
  let range a b = List.init (b - a + 1) (fun i -> objs.(a + i)) in

  (* Phase A: W1 *)
  let w1 = instance.write c1 v1 in
  let* () =
    Script.drive_until sim ~keep:Script.keep_reads_and_steps
      ~goal:(fun () ->
        List.length (Script.pending_writes_by sim c1) = (2 * f) + 1)
      ~budget:10_000 ~what:"W1 collect phase"
  in
  note "W1 by c1 collected timestamps and triggered writes on all %d registers"
    ((2 * f) + 1);
  let* () =
    Script.release_writes sim ~client:c1 ~objs:(range 0 f) ~what:"W1 quorum"
  in
  note "environment responds to W1's writes on b0..b%d (quorum of %d)" f
    (f + 1);
  let* () = Script.step_to_return sim w1 ~budget:100 ~what:"W1 return" in
  note "W1 returns; its writes on b%d..b%d remain pending (covering)" (f + 1)
    (2 * f);

  (* Phase B: W2 *)
  let w2 = instance.write c2 v2 in
  let* () =
    Script.drive_until sim ~keep:Script.keep_reads_and_steps
      ~goal:(fun () ->
        List.length (Script.pending_writes_by sim c2) = (2 * f) + 1)
      ~budget:10_000 ~what:"W2 collect phase"
  in
  note "W2 by c2 collected timestamps and triggered writes everywhere";
  let* () =
    Script.release_writes sim ~client:c2
      ~objs:(range (f + 1) (2 * f) @ [ objs.(0) ])
      ~what:"W2 quorum"
  in
  note
    "environment responds to W2's writes on b%d..b%d and b0 (quorum of %d); \
     b1..b%d keep W2's writes pending"
    (f + 1) (2 * f) (f + 1) f;
  let* () = Script.step_to_return sim w2 ~budget:100 ~what:"W2 return" in
  note "W2 returns";

  (* Phase C: the stale covering writes of W1 take effect *)
  let* () =
    Script.release_writes sim ~client:c1
      ~objs:(range (f + 1) (2 * f))
      ~what:"stale release"
  in
  note
    "W1's stale covering writes on b%d..b%d finally take effect, erasing v2 \
     there"
    (f + 1) (2 * f);

  (* Phase D: a read that misses v2 *)
  let rd = instance.read reader in
  let* () =
    Script.release_reads sim ~client:reader
      ~objs:(range 1 (f + 1))
      ~what:"reader"
  in
  note
    "a reader's reads respond on b1..b%d only (server s0 appears slow — it \
     could be crashed)"
    (f + 1);
  let* () = Script.step_to_return sim rd ~budget:100 ~what:"read return" in
  let read_value = Option.get (Sim.call_result rd) in
  note "the read returns %a although W2=%a completed before it started"
    Value.pp read_value Value.pp v2;
  let history = History.of_trace (Sim.trace sim) in
  Ok
    {
      history;
      verdict = Ws_check.check_ws_safe history;
      read_value;
      last_written = v2;
      steps = List.rev !steps;
    }

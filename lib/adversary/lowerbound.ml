open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

type epoch_stats = {
  epoch : int;
  write_returned : bool;
  cov_total : int;
  cov_new : int;
  cov_on_f : int;
  q_size : int;
  f_size : int;
  fresh_servers_triggered : int;
  new_cov_servers : int;
  cov_monotone : bool;
  objects_used_total : int;
  point_contention : int;
  lemma2_failure : string option;
}

let epoch_stats_pp ppf s =
  Fmt.pf ppf
    "epoch %d: returned=%b |Cov|=%d (+%d) on-F=%d |Qi|=%d |Fi|=%d fresh-servers=%d used=%d pc=%d%a"
    s.epoch s.write_returned s.cov_total s.cov_new s.cov_on_f s.q_size
    s.f_size s.fresh_servers_triggered s.objects_used_total s.point_contention
    Fmt.(option (fun ppf m -> Fmt.pf ppf " LEMMA2-FAIL: %s" m))
    s.lemma2_failure

type run = {
  params : Params.t;
  algo : string;
  f_set : Id.Server.Set.t;
  epochs : epoch_stats list;
  final_cov : int;
  final_objects_used : int;
  final_cov_per_server : (Id.Server.t * int) list;
  trace : Trace.t;
  kind_of : Id.Obj.t -> Base_object.kind;
}

let default_f_set (p : Params.t) =
  Id.Server.set_of_list
    (List.init (p.f + 1) (fun i -> Id.Server.of_int (p.n - 1 - i)))

(* Fire one Ad_i-allowed event chosen uniformly; [None] if everything
   enabled is blocked. *)
let adi_step sim rng state =
  Epoch_state.advance state;
  let allowed =
    List.filter
      (fun ev ->
        match ev with
        | Sim.Step _ -> true
        | Sim.Respond lid -> (
            match
              List.find_opt
                (fun (p : Sim.pending_info) -> Id.Lop.equal p.lid lid)
                (Sim.pending sim)
            with
            | None -> false
            | Some p -> not (Epoch_state.blocked state p)))
      (Sim.enabled sim)
  in
  match allowed with
  | [] -> false
  | evs ->
      Sim.fire sim (Rng.pick rng evs);
      true

let execute (factory : Emulation.factory) (p : Params.t) ?f_set
    ?(check_lemma2 = true) ?(budget_per_epoch = 200_000) ~seed () =
  let f_set = Option.value f_set ~default:(default_f_set p) in
  if Id.Server.Set.cardinal f_set <> p.f + 1 then
    invalid_arg "Lowerbound.execute: |F| must be f+1";
  let sim = Sim.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Sim.new_client sim) in
  let instance = factory.make sim p ~writers in
  let rng = Rng.create seed in
  let completed = ref Id.Client.Set.empty in
  let cov_card () = Id.Obj.Set.cardinal (Sim.covered_objects sim) in
  let cov_on_f () =
    Id.Obj.Set.cardinal
      (Id.Obj.Set.filter
         (fun b -> Id.Server.Set.mem (Sim.delta sim b) f_set)
         (Sim.covered_objects sim))
  in
  let run_epoch i writer =
    let state =
      Epoch_state.start sim ~f_set ~completed_clients:!completed
    in
    let lemma2_failure = ref None in
    let snapshot = ref Lemma2.initial in
    let monitor () =
      if check_lemma2 && !lemma2_failure = None then begin
        Epoch_state.advance state;
        match Lemma2.check state ~prev:!snapshot with
        | Ok snap -> snapshot := snap
        | Error fl -> lemma2_failure := Some (Fmt.str "%a" Lemma2.failure_pp fl)
      end
    in
    let call = instance.write writer (Value.Str (Fmt.str "v%d" i)) in
    monitor ();
    (* drive the write to completion under Ad_i *)
    let rec drive budget =
      if Sim.call_returned call then Ok budget
      else if budget = 0 then
        Error (Fmt.str "epoch %d: write exhausted its budget under Ad_i" i)
      else if adi_step sim rng state then begin
        monitor ();
        drive (budget - 1)
      end
      else
        Error
          (Fmt.str
             "epoch %d: write is stuck — every enabled event is blocked \
              (obstruction-freedom violation under Ad_i)"
             i)
    in
    match drive budget_per_epoch with
    | Error _ as e -> e
    | Ok budget_left ->
        Epoch_state.advance state;
        let q_size = Id.Server.Set.cardinal (Epoch_state.qi state) in
        let f_size = Id.Server.Set.cardinal (Epoch_state.fi state) in
        let fresh =
          Id.Server.Set.cardinal (Epoch_state.servers_triggered_fresh state)
        in
        (* epoch-end extension: drain the allowed responses until no newly
           covered register remains on F *)
        let rec extend budget =
          Epoch_state.advance state;
          monitor ();
          let f_clear =
            Id.Server.Set.is_empty
              (Id.Server.Set.inter (Epoch_state.delta_covi state) f_set)
          in
          let responds =
            List.filter
              (fun (pd : Sim.pending_info) -> not (Epoch_state.blocked state pd))
              (Sim.pending sim)
            |> List.filter (fun (pd : Sim.pending_info) ->
                   List.exists
                     (Sim.event_equal (Sim.Respond pd.lid))
                     (Sim.enabled sim))
          in
          if f_clear && responds = [] then Ok ()
          else if budget = 0 then
            Error (Fmt.str "epoch %d: extension exhausted its budget" i)
          else
            match responds with
            | [] ->
                Error
                  (Fmt.str
                     "epoch %d: F still newly covered but no allowed \
                      response remains"
                     i)
            | pd :: _ ->
                Sim.fire sim (Sim.Respond pd.lid);
                extend (budget - 1)
        in
        (match extend budget_left with
        | Error _ as e -> e
        | Ok () ->
            completed := Id.Client.Set.add writer !completed;
            Epoch_state.advance state;
            Ok
              {
                epoch = i;
                write_returned = true;
                cov_total = cov_card ();
                cov_new =
                  Id.Obj.Set.cardinal
                    (Id.Obj.Set.diff (Sim.covered_objects sim)
                       (Epoch_state.cov_start state));
                cov_on_f = cov_on_f ();
                q_size;
                f_size;
                fresh_servers_triggered = fresh;
                new_cov_servers =
                  Id.Server.Set.cardinal (Epoch_state.delta_covi state);
                cov_monotone =
                  Id.Obj.Set.subset (Epoch_state.cov_start state)
                    (Sim.covered_objects sim);
                objects_used_total =
                  Id.Obj.Set.cardinal (Sim.used_objects sim);
                point_contention = 1;
                lemma2_failure = !lemma2_failure;
              })
  in
  let rec epochs i acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
        match run_epoch i w with
        | Error _ as e -> e
        | Ok stats -> epochs (i + 1) (stats :: acc) rest)
  in
  match epochs 1 [] writers with
  | Error _ as e -> e
  | Ok eps ->
      Ok
        {
          params = p;
          algo = factory.name;
          f_set;
          epochs = eps;
          final_cov = cov_card ();
          final_objects_used = Id.Obj.Set.cardinal (Sim.used_objects sim);
          final_cov_per_server =
            List.map
              (fun s ->
                ( s,
                  Id.Obj.Set.cardinal
                    (Id.Obj.Set.filter
                       (fun b -> Id.Server.equal (Sim.delta sim b) s)
                       (Sim.covered_objects sim)) ))
              (Sim.servers sim);
          trace = Sim.trace sim;
          kind_of = Sim.kind_of sim;
        }

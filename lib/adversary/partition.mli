(** Theorem 5: no [f]-tolerant WS-Safe obstruction-free emulation exists
    on fewer than [2f+1] servers — the partitioning argument, executed.

    With [n = 2f] servers, an [f]-tolerant operation may wait for at
    most [n - f = f] servers, so two disjoint "quorums" of [f] servers
    exist.  The schedule:

    + a write completes using only the first half (the second half
      appears crashed);
    + a read completes using only the second half (the first half
      appears crashed);
    + neither half has seen the other's traffic, so the read returns
      the initial value after a completed write — a WS-Safety
      violation.

    Built against an ABD-style emulation over [2f] max-registers with
    quorum size [f] (the only quorum size that tolerates [f] crashes on
    [2f] servers).  Since {!Regemu_bounds.Params} refuses [n <= 2f],
    the doomed emulation is constructed directly here. *)

open Regemu_objects
open Regemu_history

type outcome = {
  history : History.t;
  verdict : Ws_check.verdict;  (** [Violated _], asserted in tests *)
  read_value : Value.t;  (** the stale initial value *)
  written : Value.t;
  steps : string list;
}

val impossibility : f:int -> (outcome, string) result

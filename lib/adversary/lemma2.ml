open Regemu_objects

type snapshot = {
  qi : Id.Server.Set.t;
  fi : Id.Server.Set.t;
  mi : Id.Server.Set.t;
  fresh : bool;
}

let initial =
  {
    qi = Id.Server.Set.empty;
    fi = Id.Server.Set.empty;
    mi = Id.Server.Set.empty;
    fresh = true;
  }

type failure = { claim : int; detail : string }

let failure_pp ppf { claim; detail } =
  Fmt.pf ppf "Lemma 2.%d violated: %s" claim detail

let show_servers s =
  Fmt.str "{%a}" Fmt.(list ~sep:comma Id.Server.pp) (Id.Server.Set.elements s)

let check st ~prev =
  let f = Epoch_state.f_count st in
  let qi = Epoch_state.qi st
  and fi = Epoch_state.fi st
  and mi = Epoch_state.mi st
  and f_set = Epoch_state.f_set st in
  let d_covi_no_f = Id.Server.Set.diff (Epoch_state.delta_covi st) f_set in
  let d_rri = Epoch_state.delta_rri st in
  let fail claim detail = Error { claim; detail } in
  let ( let* ) r k = match r with Error _ as e -> e | Ok () -> k () in
  let card = Id.Server.Set.cardinal in
  let* () =
    (* 1. Q_i ⊆ delta(Cov_i) \ F *)
    if Id.Server.Set.subset qi d_covi_no_f then Ok ()
    else
      fail 1
        (Fmt.str "Qi=%s not within delta(Covi)\\F=%s" (show_servers qi)
           (show_servers d_covi_no_f))
  in
  let* () =
    (* 2. Q_i monotone *)
    if prev.fresh || Id.Server.Set.subset prev.qi qi then Ok ()
    else
      fail 2
        (Fmt.str "Qi shrank: %s -> %s" (show_servers prev.qi)
           (show_servers qi))
  in
  let* () =
    (* 3. F_i monotone *)
    if prev.fresh || Id.Server.Set.subset prev.fi fi then Ok ()
    else
      fail 3
        (Fmt.str "Fi shrank: %s -> %s" (show_servers prev.fi)
           (show_servers fi))
  in
  let* () =
    (* 4. |F_i| - |Q_i| <= 1 *)
    if card fi - card qi <= 1 then Ok ()
    else fail 4 (Fmt.str "|Fi|=%d, |Qi|=%d" (card fi) (card qi))
  in
  let* () =
    (* 5. |Q_i| <= f *)
    if card qi <= f then Ok ()
    else fail 5 (Fmt.str "|Qi|=%d > f=%d" (card qi) f)
  in
  let* () =
    (* 6. |F_i| <= f+1 *)
    if card fi <= f + 1 then Ok ()
    else fail 6 (Fmt.str "|Fi|=%d > f+1=%d" (card fi) (f + 1))
  in
  let* () =
    (* 7. F_i unchanged => M_i grows monotonically *)
    if
      prev.fresh
      || (not (Id.Server.Set.equal prev.fi fi))
      || Id.Server.Set.subset prev.mi mi
    then Ok ()
    else
      fail 7
        (Fmt.str "Mi shrank under stable Fi: %s -> %s"
           (show_servers prev.mi) (show_servers mi))
  in
  let* () =
    (* 8. |M_i| <= f+1 *)
    if card mi <= f + 1 then Ok () else fail 8 (Fmt.str "|Mi|=%d" (card mi))
  in
  let* () =
    (* 9. |delta(Cov_i)\F| >= f => |Q_i| >= f *)
    if card d_covi_no_f < f || card qi >= f then Ok ()
    else
      fail 9
        (Fmt.str "|delta(Covi)\\F|=%d but |Qi|=%d < f=%d" (card d_covi_no_f)
           (card qi) f)
  in
  let* () =
    (* 10. |delta(Cov_i)\F| < f => delta(Rr_i)\F = ∅ *)
    if
      card d_covi_no_f >= f
      || Id.Server.Set.is_empty (Id.Server.Set.diff d_rri f_set)
    then Ok ()
    else
      fail 10
        (Fmt.str "delta(Rri)\\F=%s while |delta(Covi)\\F|=%d < f"
           (show_servers (Id.Server.Set.diff d_rri f_set))
           (card d_covi_no_f))
  in
  let* () =
    (* 11. (Q_i ∪ M_i) ∩ delta(Rr_i) = ∅ *)
    let qm = Id.Server.Set.union qi mi in
    if Id.Server.Set.is_empty (Id.Server.Set.inter qm d_rri) then Ok ()
    else
      fail 11
        (Fmt.str "(Qi ∪ Mi) ∩ delta(Rri) = %s"
           (show_servers (Id.Server.Set.inter qm d_rri)))
  in
  Ok { qi; fi; mi; fresh = false }

(** The [Ad_i] adversary packaged as a reusable schedule policy.

    {!Regemu_adversary.Lowerbound} drives its own carefully staged run;
    this module instead wraps the same blocking rule (Definitions 1–3)
    as a {!Regemu_sim.Policy.t} that any driver or scenario can use:

    - it tracks epochs automatically: whenever a high-level {e write}
      returns, the current epoch closes, the writer joins
      [C(t_{i-1})], and fresh Definition 1 bookkeeping starts;
    - at every choice it refuses to fire responses of blocked covering
      writes and picks uniformly among the rest;
    - reads and client steps are never blocked, so obstruction-free
      algorithms keep making progress — exactly the environment of the
      lower bound.

    Driving a workload under this policy shows the covering staircase
    on any register-based emulation without the bespoke Lemma 1
    driver; the test suite checks that Algorithm 2 completes
    write-sequential workloads under it with coverage at least
    [writes * f]. *)

open Regemu_objects
open Regemu_sim

type t

(** [create sim ~f_set ~rng] — [f_set] is the protected server set [F]
    ([|F| = f+1]). *)
val create : Sim.t -> f_set:Id.Server.Set.t -> rng:Rng.t -> t

(** The policy; stateful, tied to [sim]. *)
val policy : t -> Policy.t

(** Epochs completed so far (= high-level writes returned). *)
val epochs_completed : t -> int

(** Currently covered registers (the staircase's current height). *)
val covered : t -> int

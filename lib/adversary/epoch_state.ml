open Regemu_objects
open Regemu_sim

type t = {
  sim : Sim.t;
  f_set : Id.Server.Set.t;
  f : int;  (* |F| - 1 *)
  start_time : int;
  completed_clients : Id.Client.Set.t;
  cov_start : Id.Obj.Set.t;
  mutable cursor : int;  (* next trace index to consume *)
  mutable tri : Id.Obj.Set.t;
  mutable rri : Id.Obj.Set.t;
  mutable covi : Id.Obj.Set.t;
  mutable qi : Id.Server.Set.t;
  mutable fi : Id.Server.Set.t;
  mutable epoch_writes : Id.Lop.Set.t;  (* in-epoch triggered write lids *)
  pending_count : (int, int) Hashtbl.t;
      (* in-epoch pending writes per object (for Cov_i maintenance) *)
}

let is_reg_write = function Base_object.Write _ -> true | _ -> false

let start sim ~f_set ~completed_clients =
  {
    sim;
    f_set;
    f = Id.Server.Set.cardinal f_set - 1;
    start_time = Sim.now sim;
    completed_clients;
    cov_start = Sim.covered_objects sim;
    cursor = Sim.now sim;
    tri = Id.Obj.Set.empty;
    rri = Id.Obj.Set.empty;
    covi = Id.Obj.Set.empty;
    qi = Id.Server.Set.empty;
    fi = Id.Server.Set.empty;
    epoch_writes = Id.Lop.Set.empty;
    pending_count = Hashtbl.create 32;
  }

let epoch_start_time t = t.start_time
let f_set t = t.f_set

let delta_set t objs =
  Id.Obj.Set.fold
    (fun b acc -> Id.Server.Set.add (Sim.delta t.sim b) acc)
    objs Id.Server.Set.empty

(* Definition 1.4: Q_i follows delta(Cov_i) \ F while that set has at
   most f servers, and freezes otherwise. *)
let update_qi t =
  let d = Id.Server.Set.diff (delta_set t t.covi) t.f_set in
  if Id.Server.Set.cardinal d <= t.f then t.qi <- d

let bump t b d =
  let key = Id.Obj.to_int b in
  let v = Option.value ~default:0 (Hashtbl.find_opt t.pending_count key) + d in
  Hashtbl.replace t.pending_count key v;
  v

let consume t entry =
  match entry with
  | Trace.Trigger { lid; obj; op; _ } when is_reg_write op ->
      t.epoch_writes <- Id.Lop.Set.add lid t.epoch_writes;
      t.tri <- Id.Obj.Set.add obj t.tri;
      let cnt = bump t obj 1 in
      if cnt = 1 && not (Id.Obj.Set.mem obj t.cov_start) then begin
        t.covi <- Id.Obj.Set.add obj t.covi;
        update_qi t
      end
  | Trace.Respond { lid; obj; op; _ }
    when is_reg_write op && Id.Lop.Set.mem lid t.epoch_writes ->
      t.rri <- Id.Obj.Set.add obj t.rri;
      let s = Sim.delta t.sim obj in
      if Id.Server.Set.mem s t.f_set then t.fi <- Id.Server.Set.add s t.fi;
      let cnt = bump t obj (-1) in
      if cnt = 0 && not (Id.Obj.Set.mem obj t.cov_start) then begin
        t.covi <- Id.Obj.Set.remove obj t.covi;
        update_qi t
      end
  | Trace.Trigger _ | Trace.Respond _ | Trace.Invoke _ | Trace.Return _
  | Trace.Server_crash _ | Trace.Client_crash _ ->
      ()

let advance t =
  let entries = Trace.since (Sim.trace t.sim) t.cursor in
  t.cursor <- Sim.now t.sim;
  List.iter (consume t) entries

let tri t = t.tri
let rri t = t.rri
let covi t = t.covi
let qi t = t.qi
let fi t = t.fi
let delta_covi t = delta_set t t.covi
let delta_rri t = delta_set t t.rri
let f_count t = t.f
let cov_start t = t.cov_start
let cov_now t = Sim.covered_objects t.sim

let mi t =
  Id.Server.Set.inter (delta_set t t.covi) (Id.Server.Set.diff t.f_set t.fi)

let gi t =
  if Id.Server.Set.cardinal t.qi < Id.Server.Set.cardinal t.fi then mi t
  else Id.Server.Set.empty

let blocked t (p : Sim.pending_info) =
  is_reg_write p.op
  && (Id.Client.Set.mem p.client t.completed_clients
     ||
     let qg = Id.Server.Set.union t.qi (gi t) in
     Id.Server.Set.mem (Sim.delta t.sim p.obj) qg)

let servers_triggered_fresh t =
  delta_set t (Id.Obj.Set.diff t.tri t.cov_start)

(** The classic new/old read inversion against ABD {e without} reader
    write-back.

    The paper proves its upper bounds for WS-Regularity precisely
    because atomicity usually requires readers to write (Section 1).
    This module makes the gap concrete: a deterministic schedule in
    which, while a write is still in flight,

    + reader 1's quorum includes the one server already holding the new
      value, so it returns the new value;
    + reader 2 — which starts {e after} reader 1 finished — is served
      by a quorum of servers that all still hold the old value, so it
      returns the old value.

    The resulting history is weakly regular (each read individually
    linearizes against the writes) but {e not} atomic; the write-back
    variant {!Regemu_baselines.Abd_max_atomic} closes the gap.  Both
    facts are asserted in the test suite with the brute-force
    checkers. *)

open Regemu_history

type outcome = {
  history : History.t;
  first_read : Regemu_objects.Value.t;  (** the new value *)
  second_read : Regemu_objects.Value.t;  (** the stale old value *)
  atomic : bool;  (** [false] for {!Abd_max}, asserted in tests *)
  weakly_regular : bool;  (** [true] *)
  steps : string list;
}

(** Build the inversion against {!Regemu_baselines.Abd_max} with
    [k = 1, f = 1, n = 3]. *)
val against_abd_max : unit -> (outcome, string) result

open Regemu_objects
open Regemu_sim

let is_read_op = function
  | Base_object.Read | Base_object.Max_read -> true
  | Base_object.Write _ | Base_object.Max_write _
  | Base_object.Compare_and_swap _ ->
      false

let pending_info sim lid =
  List.find_opt
    (fun (p : Sim.pending_info) -> Id.Lop.equal p.lid lid)
    (Sim.pending sim)

let pending_writes_by sim client =
  List.filter
    (fun (p : Sim.pending_info) ->
      Id.Client.equal p.client client && not (is_read_op p.op))
    (Sim.pending sim)

let keep_reads_and_steps sim = function
  | Sim.Step _ -> true
  | Sim.Respond lid -> (
      match pending_info sim lid with
      | Some p -> is_read_op p.op
      | None -> false)

let keep_steps _sim = function Sim.Step _ -> true | Sim.Respond _ -> false

let drive_until sim ~keep ~goal ~budget ~what =
  let rec go budget =
    if goal () then Ok ()
    else if budget = 0 then Error (Fmt.str "%s: budget exhausted" what)
    else
      match List.filter (keep sim) (Sim.enabled sim) with
      | [] -> Error (Fmt.str "%s: stuck" what)
      | ev :: _ ->
          Sim.fire sim ev;
          go (budget - 1)
  in
  go budget

let release_write sim ~client ~obj ~what =
  match
    List.find_opt
      (fun (p : Sim.pending_info) -> Id.Obj.equal p.obj obj)
      (pending_writes_by sim client)
  with
  | Some p ->
      Sim.fire sim (Sim.Respond p.lid);
      Ok ()
  | None ->
      Error (Fmt.str "%s: no pending write by %a on %a" what Id.Client.pp
               client Id.Obj.pp obj)

let ( let* ) = Result.bind

let rec release_writes sim ~client ~objs ~what =
  match objs with
  | [] -> Ok ()
  | o :: rest ->
      let* () = release_write sim ~client ~obj:o ~what in
      release_writes sim ~client ~objs:rest ~what

let release_read sim ~client ~obj ~what =
  match
    List.find_opt
      (fun (p : Sim.pending_info) ->
        Id.Client.equal p.client client
        && Id.Obj.equal p.obj obj && is_read_op p.op)
      (Sim.pending sim)
  with
  | Some p ->
      Sim.fire sim (Sim.Respond p.lid);
      Ok ()
  | None ->
      Error (Fmt.str "%s: no pending read by %a on %a" what Id.Client.pp
               client Id.Obj.pp obj)

let rec release_reads sim ~client ~objs ~what =
  match objs with
  | [] -> Ok ()
  | o :: rest ->
      let* () = release_read sim ~client ~obj:o ~what in
      release_reads sim ~client ~objs:rest ~what

let step_to_return sim call ~budget ~what =
  drive_until sim ~keep:keep_steps
    ~goal:(fun () -> Sim.call_returned call)
    ~budget ~what

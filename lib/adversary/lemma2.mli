(** Runtime monitor for the eleven claims of Lemma 2.

    During an adversarial run, the claims of Lemma 2 are invariants of
    the {!Epoch_state} bookkeeping.  The monitor checks all of them
    after every simulator event; claims relating consecutive times
    (monotonicity of [Q_i], [F_i], and claim 7 on [M_i]) are checked
    against the previous snapshot. *)

type snapshot

(** Initial snapshot (empty previous state). *)
val initial : snapshot

type failure = { claim : int; detail : string }

val failure_pp : failure Fmt.t

(** [check state ~prev] verifies all claims of Lemma 2 on the current
    epoch state ([advance] it first); returns the snapshot to pass as
    [~prev] next time, or the first failing claim. *)
val check : Epoch_state.t -> prev:snapshot -> (snapshot, failure) result

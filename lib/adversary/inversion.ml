open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history

type outcome = {
  history : History.t;
  first_read : Value.t;
  second_read : Value.t;
  atomic : bool;
  weakly_regular : bool;
  steps : string list;
}

let ( let* ) = Result.bind

let against_abd_max () =
  let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
  let sim = Sim.create ~n:p.n () in
  let writer = Sim.new_client sim in
  let r1 = Sim.new_client sim and r2 = Sim.new_client sim in
  let instance =
    Regemu_baselines.Abd_max.factory.make sim p ~writers:[ writer ]
  in
  let objs = Array.of_list (instance.objects ()) in
  let steps = ref [] in
  let note fmt = Fmt.kstr (fun s -> steps := s :: !steps) fmt in

  (* the write gets as far as updating server s0 only *)
  let w = instance.write writer (Value.Str "new") in
  let* () =
    Script.drive_until sim ~keep:Script.keep_reads_and_steps
      ~goal:(fun () -> List.length (Script.pending_writes_by sim writer) = 3)
      ~budget:1_000 ~what:"write phase 1"
  in
  note "the write picked its timestamp and triggered write-max everywhere";
  let* () =
    Script.release_write sim ~client:writer ~obj:objs.(0) ~what:"s0 update"
  in
  note "only server s0's max-register has applied the new value so far";

  (* reader 1 is served by {s0, s1}: it observes the new value *)
  let rd1 = instance.read r1 in
  let* () =
    Script.release_reads sim ~client:r1
      ~objs:[ objs.(0); objs.(1) ]
      ~what:"reader 1"
  in
  let* () = Script.step_to_return sim rd1 ~budget:100 ~what:"rd1 return" in
  let first_read = Option.get (Sim.call_result rd1) in
  note "reader 1 (quorum {s0,s1}) returns %a" Value.pp first_read;

  (* reader 2 starts after reader 1 returned, served by {s1, s2} *)
  let rd2 = instance.read r2 in
  let* () =
    Script.release_reads sim ~client:r2
      ~objs:[ objs.(1); objs.(2) ]
      ~what:"reader 2"
  in
  let* () = Script.step_to_return sim rd2 ~budget:100 ~what:"rd2 return" in
  let second_read = Option.get (Sim.call_result rd2) in
  note "reader 2 (quorum {s1,s2}, started after reader 1 finished) returns %a"
    Value.pp second_read;

  (* let the write finish so the history is tidy *)
  let* () =
    Script.release_write sim ~client:writer ~obj:objs.(1) ~what:"s1 update"
  in
  let* () = Script.step_to_return sim w ~budget:100 ~what:"write return" in
  note "the write finally completes";

  let history = History.of_trace (Sim.trace sim) in
  Ok
    {
      history;
      first_read;
      second_read;
      atomic = Regularity.is_atomic history;
      weakly_regular = Regularity.is_weak_regular history;
      steps = List.rev !steps;
    }

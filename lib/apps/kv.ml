open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

type t = {
  sim : Sim.t;
  params : Params.t;
  factory : Emulation.factory;
  writers : Id.Client.t list;
  mutable regs : (string * Emulation.instance) list;  (* first-put order *)
}

(* the reserved "absent" marker: a Pair value no Str payload collides
   with *)
let absent = Value.Pair (Value.Bool false, Value.Bool false)

let create sim (p : Params.t) ~factory ~writers =
  if List.length writers <> p.k then
    invalid_arg "Kv.create: writer count must be k";
  if Sim.num_servers sim <> p.n then
    invalid_arg "Kv.create: server count mismatch";
  { sim; params = p; factory; writers; regs = [] }

let keys t = List.map fst t.regs
let storage_objects t =
  List.fold_left
    (fun acc (_, inst) -> acc + List.length (inst.Emulation.objects ()))
    0 t.regs

let instance t key =
  match List.assoc_opt key t.regs with
  | Some inst -> inst
  | None ->
      let inst = t.factory.make t.sim t.params ~writers:t.writers in
      t.regs <- t.regs @ [ (key, inst) ];
      inst

let put_async t ~client key value =
  (instance t key).Emulation.write client (Value.Str value)

let get_async t ~client key =
  match List.assoc_opt key t.regs with
  | Some inst -> inst.Emulation.read client
  | None ->
      (* unknown key: still a real (trivial) operation so callers can
         treat every get uniformly *)
      Sim.invoke t.sim ~client Trace.H_read (fun () -> absent)

let finish t ~policy ~what call =
  match Driver.finish_call t.sim policy ~budget:200_000 call with
  | Ok v -> v
  | Error o -> failwith (Fmt.str "Kv.%s: %a" what Driver.outcome_pp o)

let put t ~policy ~client key value =
  ignore (finish t ~policy ~what:"put" (put_async t ~client key value))

let get t ~policy ~client key =
  match finish t ~policy ~what:"get" (get_async t ~client key) with
  | Value.Str s -> Some s
  | v when Value.equal v absent -> None
  | v when Value.equal v Value.v0 -> None  (* allocated, never written *)
  | v -> Some (Value.to_string v)

let delete t ~policy ~client key =
  ignore
    (finish t ~policy ~what:"delete"
       ((instance t key).Emulation.write client absent))

(** A fault-tolerant high-score table — max-registers as an
    application type.

    A player's best score only ever increases: that is a max-register,
    the very type whose emulation the paper shows costs just [2f+1]
    fault-prone objects regardless of how many players submit scores.
    Each player gets one emulated max-register over the shared server
    pool ({!Regemu_baselines.Abd_max}-style quorum rounds); submitting
    a lower score is a semantic no-op, concurrent submissions cannot
    lose the maximum, and the table survives [f] server crashes.

    Compare {!Kv}: a general register per key costs
    [kf + ceil(k/z)(f+1)] base objects; the leaderboard's monotone
    cells cost [2f+1] each — the paper's type separation, felt at the
    application layer. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim

type t

(** [create sim p ()] — scores may be submitted by any client;
    [p] fixes the fault tolerance ([p.k] is irrelevant here, which is
    the point). *)
val create : Sim.t -> Params.t -> unit -> t

(** Base objects per player cell: always [2f+1]. *)
val objects_per_player : t -> int

val storage_objects : t -> int

(** [submit t ~policy ~client player score] records [score] if it beats
    the player's best. *)
val submit :
  t -> policy:Policy.t -> client:Id.Client.t -> string -> int -> unit

(** The player's best score so far ([0] if none). *)
val best :
  t -> policy:Policy.t -> client:Id.Client.t -> string -> int

(** All players with their best scores, highest first. *)
val standings :
  t -> policy:Policy.t -> client:Id.Client.t -> (string * int) list

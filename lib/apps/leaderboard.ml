open Regemu_bounds
open Regemu_objects
open Regemu_sim

(* one emulated max-register per player: 2f+1 base max-registers on the
   first 2f+1 servers, quorum f+1 for both phases *)
type cell = { objs : Id.Obj.t list }

type t = {
  sim : Sim.t;
  f : int;
  mutable cells : (string * cell) list;  (* insertion order *)
}

let create sim (p : Params.t) () =
  if Sim.num_servers sim <> p.n then
    invalid_arg "Leaderboard.create: server count mismatch";
  { sim; f = p.f; cells = [] }

let objects_per_player t = (2 * t.f) + 1

let storage_objects t =
  List.fold_left (fun acc (_, c) -> acc + List.length c.objs) 0 t.cells

let cell t player =
  match List.assoc_opt player t.cells with
  | Some c -> c
  | None ->
      let objs =
        List.init ((2 * t.f) + 1) (fun i ->
            Sim.alloc t.sim ~server:(Id.Server.of_int i)
              Base_object.Max_register)
      in
      let c = { objs } in
      t.cells <- t.cells @ [ (player, c) ];
      c

(* quorum round: trigger [op] on every object, wait for f+1, fold *)
let round t ~client c op =
  let count = ref 0 in
  let best = ref Value.v0 in
  List.iter
    (fun b ->
      ignore
        (Sim.trigger t.sim ~client b op ~on_response:(fun v ->
             best := Value.max !best v;
             incr count)))
    c.objs;
  Sim.wait_until (fun () -> !count >= t.f + 1);
  !best

let finish t ~policy ~what call =
  match Driver.finish_call t.sim policy ~budget:200_000 call with
  | Ok v -> v
  | Error o -> failwith (Fmt.str "Leaderboard.%s: %a" what Driver.outcome_pp o)

let submit t ~policy ~client player score =
  if score < 0 then invalid_arg "Leaderboard.submit: negative score";
  let c = cell t player in
  let call =
    Sim.invoke t.sim ~client (Trace.H_write (Value.Int score)) (fun () ->
        let _ =
          round t ~client c (Base_object.Max_write (Value.Int score))
        in
        Value.Unit)
  in
  ignore (finish t ~policy ~what:"submit" call)

let read_best t ~client c =
  Sim.invoke t.sim ~client Trace.H_read (fun () ->
      round t ~client c Base_object.Max_read)

let best t ~policy ~client player =
  match List.assoc_opt player t.cells with
  | None -> 0
  | Some c -> (
      match finish t ~policy ~what:"best" (read_best t ~client c) with
      | Value.Int i -> i
      | v when Value.equal v Value.v0 -> 0
      | v -> invalid_arg (Fmt.str "Leaderboard.best: odd cell %a" Value.pp v))

let standings t ~policy ~client =
  List.map (fun (player, _) -> (player, best t ~policy ~client player)) t.cells
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(** A replicated key-value store over emulated registers — the
    cloud-storage application the paper's introduction motivates, built
    entirely on the public emulation API.

    Each key is one emulated multi-writer register; all keys share the
    same pool of [n] crash-prone servers, so the store tolerates [f]
    server crashes as a whole.  The emulation algorithm is pluggable
    (any {!Regemu_core.Emulation.factory}); with Algorithm 2 the
    storage budget is [keys * (kf + ceil(k/z)(f+1))] base registers.

    Keys are created lazily on first {!put}; a {!get} of an unknown key
    is [None].  Writer capacity is [p.k] {e writer clients} per key
    (the same [k] clients write all keys). *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim

type t

(** [create sim p ~factory ~writers] — [writers] are the clients
    allowed to [put]; anyone may [get]. *)
val create :
  Sim.t ->
  Params.t ->
  factory:Regemu_core.Emulation.factory ->
  writers:Id.Client.t list ->
  t

(** Keys currently allocated (in first-put order). *)
val keys : t -> string list

(** Total base objects allocated across all keys. *)
val storage_objects : t -> int

(** Asynchronous operations (invoke; drive the sim to complete them). *)
val put_async : t -> client:Id.Client.t -> string -> string -> Sim.call

val get_async : t -> client:Id.Client.t -> string -> Sim.call

(** Synchronous convenience wrappers: drive the call to completion
    under the given policy.  Raise [Failure] on liveness failure. *)
val put :
  t -> policy:Policy.t -> client:Id.Client.t -> string -> string -> unit

val get :
  t -> policy:Policy.t -> client:Id.Client.t -> string -> string option

(** Delete is a put of the reserved absent value. *)
val delete : t -> policy:Policy.t -> client:Id.Client.t -> string -> unit

(* Tests for the fault-prone shared-memory simulator. *)

open Regemu_objects
open Regemu_sim

let test name f = Alcotest.test_case name `Quick f
let value_t = Alcotest.testable Value.pp Value.equal
let s0 = Id.Server.of_int 0
let s1 = Id.Server.of_int 1

let make_sim ?(n = 3) () = Sim.create ~n ()

(* --- allocation and mapping ---------------------------------------- *)

let alloc_tests =
  [
    test "objects get fresh ids and the right server" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let b = Sim.alloc sim ~server:s1 Base_object.Cas in
        Alcotest.(check bool) "distinct" false (Id.Obj.equal a b);
        Alcotest.(check int) "delta a" 0 (Id.Server.to_int (Sim.delta sim a));
        Alcotest.(check int) "delta b" 1 (Id.Server.to_int (Sim.delta sim b)));
    test "objects_on filters by server" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let _b = Sim.alloc sim ~server:s1 Base_object.Register in
        let c = Sim.alloc sim ~server:s0 Base_object.Max_register in
        Alcotest.(check (list int))
          "on s0"
          [ Id.Obj.to_int a; Id.Obj.to_int c ]
          (List.map Id.Obj.to_int (Sim.objects_on sim s0)));
    test "initial state is v0" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        Alcotest.check value_t "v0" Value.v0 (Sim.peek sim a));
    test "unknown server rejected" (fun () ->
        let sim = make_sim () in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Sim.alloc sim ~server:(Id.Server.of_int 9) Base_object.Cas);
             false
           with Invalid_argument _ -> true));
  ]

(* --- trigger / respond --------------------------------------------- *)

let trigger_tests =
  [
    test "trigger is pending until respond fires" (fun () ->
        let sim = make_sim () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let got = ref None in
        let lid =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 7))
            ~on_response:(fun v -> got := Some v)
        in
        Alcotest.(check int) "one pending" 1 (List.length (Sim.pending sim));
        Alcotest.check value_t "state unchanged" Value.v0 (Sim.peek sim b);
        Sim.fire sim (Sim.Respond lid);
        Alcotest.(check int) "no pending" 0 (List.length (Sim.pending sim));
        Alcotest.check value_t "state applied" (Value.Int 7) (Sim.peek sim b);
        Alcotest.check (Alcotest.option value_t) "ack" (Some Value.Unit) !got);
    test "writes linearize at respond, in respond order" (fun () ->
        (* Assumption 1: two pending writes; the later-responding one wins *)
        let sim = make_sim () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let l1 =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
            ~on_response:ignore
        in
        let l2 =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 2))
            ~on_response:ignore
        in
        Sim.fire sim (Sim.Respond l2);
        Sim.fire sim (Sim.Respond l1);
        (* the old write took effect last and erased the newer value —
           the phenomenon the lower bound exploits *)
        Alcotest.check value_t "old write erased new" (Value.Int 1)
          (Sim.peek sim b));
    test "used_objects counts triggered objects once" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let _b = Sim.alloc sim ~server:s1 Base_object.Register in
        let c = Sim.new_client sim in
        ignore
          (Sim.trigger sim ~client:c a Base_object.Read ~on_response:ignore);
        ignore
          (Sim.trigger sim ~client:c a Base_object.Read ~on_response:ignore);
        Alcotest.(check int)
          "one used" 1
          (Id.Obj.Set.cardinal (Sim.used_objects sim)));
    test "covered_objects tracks pending mutators only" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let b = Sim.alloc sim ~server:s1 Base_object.Register in
        let c = Sim.new_client sim in
        ignore
          (Sim.trigger sim ~client:c a Base_object.Read ~on_response:ignore);
        let lw =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
            ~on_response:ignore
        in
        Alcotest.(check int)
          "only the write covers" 1
          (Id.Obj.Set.cardinal (Sim.covered_objects sim));
        Sim.fire sim (Sim.Respond lw);
        Alcotest.(check int)
          "uncovered after respond" 0
          (Id.Obj.Set.cardinal (Sim.covered_objects sim)));
    test "kind mismatch rejected at trigger" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Cas in
        let c = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore
               (Sim.trigger sim ~client:c a Base_object.Read
                  ~on_response:ignore);
             false
           with Invalid_argument _ -> true));
    test "response callback may re-trigger" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        ignore
          (Sim.trigger sim ~client:c a (Base_object.Write (Value.Int 1))
             ~on_response:(fun _ ->
               ignore
                 (Sim.trigger sim ~client:c a (Base_object.Write (Value.Int 2))
                    ~on_response:ignore)));
        let policy = Policy.responds_first in
        let _ = Driver.quiesce sim policy ~budget:10 in
        Alcotest.check value_t "second write applied" (Value.Int 2)
          (Sim.peek sim a));
  ]

(* --- crashes -------------------------------------------------------- *)

let crash_tests =
  [
    test "pending ops on a crashed server never respond" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        ignore
          (Sim.trigger sim ~client:c a (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        Sim.crash_server sim s0;
        Alcotest.(check (list bool)) "nothing enabled" []
          (List.map (fun _ -> true) (Sim.enabled sim));
        (* the op is still pending: it covers the register forever *)
        Alcotest.(check int) "still pending" 1 (List.length (Sim.pending sim)));
    test "crashed client's pending write still takes effect" (fun () ->
        let sim = make_sim () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let called = ref false in
        let l =
          Sim.trigger sim ~client:c a (Base_object.Write (Value.Int 1))
            ~on_response:(fun _ -> called := true)
        in
        Sim.crash_client sim c;
        Sim.fire sim (Sim.Respond l);
        Alcotest.check value_t "applied" (Value.Int 1) (Sim.peek sim a);
        Alcotest.(check bool) "handler skipped" false !called);
    test "crash is recorded once" (fun () ->
        let sim = make_sim () in
        Sim.crash_server sim s0;
        Sim.crash_server sim s0;
        let crashes =
          List.filter
            (function Trace.Server_crash _ -> true | _ -> false)
            (Trace.to_list (Sim.trace sim))
        in
        Alcotest.(check int) "one entry" 1 (List.length crashes));
    test "crashed_servers set" (fun () ->
        let sim = make_sim () in
        Sim.crash_server sim s1;
        Alcotest.(check (list int))
          "s1" [ 1 ]
          (List.map Id.Server.to_int
             (Id.Server.Set.elements (Sim.crashed_servers sim))));
  ]

(* --- fibers and high-level calls ------------------------------------ *)

let fiber_tests =
  [
    test "invoke runs the fiber to its first wait" (fun () ->
        let sim = make_sim () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c (Trace.H_write (Value.Int 5)) (fun () ->
              let done_ = ref false in
              ignore
                (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 5))
                   ~on_response:(fun _ -> done_ := true));
              Sim.wait_until (fun () -> !done_);
              Value.Unit)
        in
        Alcotest.(check bool) "not returned yet" false (Sim.call_returned call);
        Alcotest.(check bool) "busy" true (Sim.client_busy sim c);
        let v = Driver.finish_call_exn sim Policy.responds_first ~budget:10 call in
        Alcotest.check value_t "ack" Value.Unit v;
        Alcotest.(check bool) "idle again" false (Sim.client_busy sim c));
    test "fiber with no waits returns immediately" (fun () ->
        let sim = make_sim () in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c Trace.H_read (fun () -> Value.Int 1)
        in
        Alcotest.(check bool) "returned" true (Sim.call_returned call));
    test "double invoke on busy client rejected" (fun () ->
        let sim = make_sim () in
        let c = Sim.new_client sim in
        let _call =
          Sim.invoke sim ~client:c Trace.H_read (fun () ->
              Sim.wait_until (fun () -> false);
              Value.Unit)
        in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Sim.invoke sim ~client:c Trace.H_read (fun () -> Value.Unit));
             false
           with Invalid_argument _ -> true));
    test "two clients interleave under uniform policy" (fun () ->
        let sim = make_sim () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let mk c v =
          Sim.invoke sim ~client:c (Trace.H_write (Value.Int v)) (fun () ->
              let done_ = ref false in
              ignore
                (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int v))
                   ~on_response:(fun _ -> done_ := true));
              Sim.wait_until (fun () -> !done_);
              Value.Unit)
        in
        let c1 = Sim.new_client sim and c2 = Sim.new_client sim in
        let call1 = mk c1 1 and call2 = mk c2 2 in
        let policy = Policy.uniform (Rng.create 42) in
        let o =
          Driver.run_until sim policy ~budget:100 (fun () ->
              Sim.call_returned call1 && Sim.call_returned call2)
        in
        Alcotest.(check bool)
          "both returned" true
          (Driver.outcome_equal o Driver.Satisfied));
    test "waiting on a response from a crashed server gets stuck" (fun () ->
        let sim = make_sim () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c Trace.H_read (fun () ->
              let got = ref None in
              ignore
                (Sim.trigger sim ~client:c b Base_object.Read
                   ~on_response:(fun v -> got := Some v));
              Sim.wait_until (fun () -> !got <> None);
              Option.get !got)
        in
        Sim.crash_server sim s0;
        (match Driver.finish_call sim Policy.responds_first ~budget:100 call with
        | Error Driver.Stuck -> ()
        | _ -> Alcotest.fail "expected Stuck"));
  ]

(* --- trace / history ------------------------------------------------ *)

let trace_tests =
  [
    test "trace records invoke/trigger/respond/return in order" (fun () ->
        let sim = make_sim () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c (Trace.H_write (Value.Int 3)) (fun () ->
              let done_ = ref false in
              ignore
                (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 3))
                   ~on_response:(fun _ -> done_ := true));
              Sim.wait_until (fun () -> !done_);
              Value.Unit)
        in
        ignore (Driver.finish_call_exn sim Policy.responds_first ~budget:10 call);
        let kinds =
          List.map
            (function
              | Trace.Invoke _ -> "invoke"
              | Trace.Trigger _ -> "trigger"
              | Trace.Respond _ -> "respond"
              | Trace.Return _ -> "return"
              | Trace.Server_crash _ -> "scrash"
              | Trace.Client_crash _ -> "ccrash")
            (Trace.to_list (Sim.trace sim))
        in
        Alcotest.(check (list string))
          "order"
          [ "invoke"; "trigger"; "respond"; "return" ]
          kinds);
    test "Trace.since slices" (fun () ->
        let tr = Trace.create () in
        Trace.record tr (Trace.Server_crash s0);
        Trace.record tr (Trace.Server_crash s1);
        Alcotest.(check int) "from 1" 1 (List.length (Trace.since tr 1));
        Alcotest.(check int) "from 0" 2 (List.length (Trace.since tr 0));
        Alcotest.(check int) "beyond" 0 (List.length (Trace.since tr 5)));
  ]

(* --- rng ------------------------------------------------------------ *)

let rng_tests =
  [
    test "deterministic from seed" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        let xs = List.init 20 (fun _ -> Rng.int a ~bound:1000) in
        let ys = List.init 20 (fun _ -> Rng.int b ~bound:1000) in
        Alcotest.(check (list int)) "same stream" xs ys);
    test "different seeds differ" (fun () ->
        let a = Rng.create 7 and b = Rng.create 8 in
        let xs = List.init 20 (fun _ -> Rng.int a ~bound:1000000) in
        let ys = List.init 20 (fun _ -> Rng.int b ~bound:1000000) in
        Alcotest.(check bool) "differ" false (xs = ys));
    test "bounds respected" (fun () ->
        let r = Rng.create 1 in
        for _ = 1 to 1000 do
          let x = Rng.int r ~bound:7 in
          if x < 0 || x >= 7 then Alcotest.fail "out of bounds"
        done);
    test "shuffle is a permutation" (fun () ->
        let r = Rng.create 3 in
        let xs = List.init 30 Fun.id in
        let ys = Rng.shuffle r xs in
        Alcotest.(check (list int)) "sorted equal" xs (List.sort compare ys));
  ]

let suites =
  [
    ("sim:alloc", alloc_tests);
    ("sim:trigger", trigger_tests);
    ("sim:crash", crash_tests);
    ("sim:fibers", fiber_tests);
    ("sim:trace", trace_tests);
    ("sim:rng", rng_tests);
  ]

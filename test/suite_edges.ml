(* Edge and error paths across the public APIs, plus focused unit tests
   for the covering-discipline quorum write. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

let test name f = Alcotest.test_case name `Quick f
let s0 = Id.Server.of_int 0

let raises f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* --- simulator error paths ------------------------------------------------ *)

let sim_edge_tests =
  [
    test "fire of a non-enabled step raises" (fun () ->
        let sim = Sim.create ~n:1 () in
        let c = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> Sim.fire sim (Sim.Step c))));
    test "fire of an unknown response raises" (fun () ->
        let sim = Sim.create ~n:1 () in
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> Sim.fire sim (Sim.Respond (Id.Lop.of_int 7)))));
    test "respond on a crashed server raises even if forced" (fun () ->
        let sim = Sim.create ~n:1 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let l =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
            ~on_response:ignore
        in
        Sim.crash_server sim s0;
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> Sim.fire sim (Sim.Respond l))));
    test "trigger by a crashed client raises" (fun () ->
        let sim = Sim.create ~n:1 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        Sim.crash_client sim c;
        Alcotest.(check bool)
          "raises" true
          (raises (fun () ->
               ignore
                 (Sim.trigger sim ~client:c b Base_object.Read
                    ~on_response:ignore))));
    test "invoke on a crashed client raises" (fun () ->
        let sim = Sim.create ~n:1 () in
        let c = Sim.new_client sim in
        Sim.crash_client sim c;
        Alcotest.(check bool)
          "raises" true
          (raises (fun () ->
               ignore (Sim.invoke sim ~client:c Trace.H_read (fun () -> Value.Unit)))));
    test "peek/kind_of on unknown objects raise" (fun () ->
        let sim = Sim.create ~n:1 () in
        Alcotest.(check bool)
          "peek" true
          (raises (fun () -> ignore (Sim.peek sim (Id.Obj.of_int 3))));
        Alcotest.(check bool)
          "kind" true
          (raises (fun () -> ignore (Sim.kind_of sim (Id.Obj.of_int 3)))));
    test "Trace.get out of bounds raises" (fun () ->
        let tr = Trace.create () in
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> ignore (Trace.get tr 0))));
    test "create with zero servers raises" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> ignore (Sim.create ~n:0 ()))));
    test "Rng.pick on empty list raises" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> ignore (Rng.pick (Rng.create 1) ([] : int list)))));
    test "Rng.int with non-positive bound raises" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> ignore (Rng.int (Rng.create 1) ~bound:0))));
  ]

(* --- quorum write (the covering discipline in isolation) ------------------- *)

let qw_setup () =
  let sim = Sim.create ~n:3 () in
  let regs =
    Array.init 3 (fun i ->
        Sim.alloc sim ~server:(Id.Server.of_int i) Base_object.Register)
  in
  let c = Sim.new_client sim in
  (sim, regs, c)

(* run a submit inside a fiber and return the call *)
let submit_call sim qw v ~quorum =
  Sim.invoke sim
    ~client:(Quorum_write.client qw)
    (Trace.H_write v)
    (fun () ->
      Quorum_write.submit sim qw v ~quorum;
      Value.Unit)

let quorum_write_tests =
  [
    test "first submit triggers on every register" (fun () ->
        let sim, regs, c = qw_setup () in
        let qw = Quorum_write.create c regs in
        ignore (submit_call sim qw (Value.Int 1) ~quorum:2);
        Alcotest.(check int) "three pending" 3 (List.length (Sim.pending sim)));
    test "quorum larger than the set raises" (fun () ->
        let sim, regs, c = qw_setup () in
        let qw = Quorum_write.create c regs in
        Alcotest.(check bool)
          "raises" true
          (raises (fun () ->
               ignore (submit_call sim qw (Value.Int 1) ~quorum:4))));
    test "returns after exactly quorum responses" (fun () ->
        let sim, regs, c = qw_setup () in
        let qw = Quorum_write.create c regs in
        let call = submit_call sim qw (Value.Int 1) ~quorum:2 in
        let respond_one () =
          match
            List.filter
              (function Sim.Respond _ -> true | _ -> false)
              (Sim.enabled sim)
          with
          | ev :: _ -> Sim.fire sim ev
          | [] -> Alcotest.fail "no response available"
        in
        respond_one ();
        Alcotest.(check bool) "not yet" false (Sim.call_returned call);
        respond_one ();
        (* predicate now true: step the fiber *)
        (match Sim.enabled sim with
        | Sim.Step _ :: _ as evs -> Sim.fire sim (List.hd evs)
        | _ -> Alcotest.fail "fiber not runnable");
        Alcotest.(check bool) "returned" true (Sim.call_returned call));
    test "second submit skips covered registers and re-triggers on their \
          response" (fun () ->
        let sim, regs, c = qw_setup () in
        let qw = Quorum_write.create c regs in
        let call1 = submit_call sim qw (Value.Int 1) ~quorum:2 in
        (* respond on regs 0 and 1 only; reg 2 stays covered *)
        let respond_on target =
          match
            List.find_opt
              (fun (p : Sim.pending_info) -> Id.Obj.equal p.obj target)
              (Sim.pending sim)
          with
          | Some p -> Sim.fire sim (Sim.Respond p.lid)
          | None -> Alcotest.failf "no pending on %a" Id.Obj.pp target
        in
        respond_on regs.(0);
        respond_on regs.(1);
        ignore
          (Driver.run_until sim Policy.steps_first ~budget:5 (fun () ->
               Sim.call_returned call1));
        Alcotest.(check bool) "call1 done" true (Sim.call_returned call1);
        Alcotest.(check int) "reg2 covered" 1 (List.length (Sim.pending sim));
        (* submit a new value: regs 0 and 1 get fresh triggers; reg 2
           must NOT *)
        ignore (submit_call sim qw (Value.Int 2) ~quorum:2);
        let pend_on r = List.length (Sim.pending_on sim r) in
        Alcotest.(check int) "reg0" 1 (pend_on regs.(0));
        Alcotest.(check int) "reg1" 1 (pend_on regs.(1));
        Alcotest.(check int) "reg2 still single" 1 (pend_on regs.(2));
        (* when reg2's old write finally responds, the current value is
           re-triggered immediately *)
        respond_on regs.(2);
        Alcotest.(check int) "reg2 re-triggered" 1 (pend_on regs.(2));
        (match List.hd (Sim.pending_on sim regs.(2)) with
        | { op = Base_object.Write v; _ } ->
            Alcotest.(check bool)
              "carries the current value" true
              (Value.equal v (Value.Int 2))
        | _ -> Alcotest.fail "expected a write"));
    test "current reflects the latest submitted value" (fun () ->
        let sim, regs, c = qw_setup () in
        let qw = Quorum_write.create c regs in
        ignore (submit_call sim qw (Value.Int 7) ~quorum:1);
        Alcotest.(check bool)
          "current" true
          (Value.equal (Quorum_write.current qw) (Value.Int 7)));
  ]

(* --- formulas edge cases ----------------------------------------------------- *)

let formula_edge_tests =
  [
    test "ceil_div rejects non-positive divisor" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> ignore (Formulas.ceil_div 1 0))));
    test "min_servers rejects non-positive capacity" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (raises (fun () -> ignore (Formulas.min_servers ~k:1 ~f:1 ~capacity:0))));
    test "huge parameters stay exact (no overflow in practice range)"
      (fun () ->
        let p = Params.make_exn ~k:1000 ~f:10 ~n:10_000 in
        Alcotest.(check bool)
          "sane" true
          (Formulas.register_lower_bound p > 1000 * 10
          && Formulas.register_upper_bound p >= Formulas.register_lower_bound p));
    test "k=1 boundary: exactly one set" (fun () ->
        let p = Params.make_exn ~k:1 ~f:3 ~n:7 in
        Alcotest.(check int) "sets" 1 (Formulas.num_sets p);
        Alcotest.(check (list int)) "sizes" [ 7 ] (Formulas.set_sizes p));
  ]

let suites =
  [
    ("edges:sim", sim_edge_tests);
    ("edges:quorum-write", quorum_write_tests);
    ("edges:formulas", formula_edge_tests);
  ]

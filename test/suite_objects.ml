(* Tests for values, identifiers, and base-object sequential semantics. *)

open Regemu_objects

let test name f = Alcotest.test_case name `Quick f

let value_t = Alcotest.testable Value.pp Value.equal

(* --- Value --------------------------------------------------------- *)

let value_tests =
  [
    test "v0 is minimal" (fun () ->
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (Fmt.str "v0 <= %a" Value.pp v)
              true
              (Value.compare Value.v0 v <= 0))
          [
            Value.Unit;
            Value.Bool false;
            Value.Int (-100);
            Value.Str "";
            Value.Pair (Value.Unit, Value.Unit);
          ]);
    test "compare is total on mixed constructors" (fun () ->
        Alcotest.(check bool)
          "Int < Str" true
          (Value.compare (Value.Int 5) (Value.Str "a") < 0);
        Alcotest.(check bool)
          "Bool < Int" true
          (Value.compare (Value.Bool true) (Value.Int 0) < 0));
    test "pairs compare lexicographically" (fun () ->
        Alcotest.(check bool)
          "ts dominates" true
          (Value.compare
             (Value.with_ts 2 (Value.Str "a"))
             (Value.with_ts 1 (Value.Str "z"))
           > 0));
    test "max picks larger" (fun () ->
        Alcotest.check value_t "max" (Value.Int 5)
          (Value.max (Value.Int 3) (Value.Int 5)));
    test "with_ts / ts / payload roundtrip" (fun () ->
        let v = Value.with_ts 7 (Value.Str "x") in
        Alcotest.(check int) "ts" 7 (Value.ts v);
        Alcotest.check value_t "payload" (Value.Str "x") (Value.payload v));
    test "ts of v0 is 0" (fun () ->
        Alcotest.(check int) "ts" 0 (Value.ts Value.v0));
    test "payload of plain value is itself" (fun () ->
        Alcotest.check value_t "payload" (Value.Int 3)
          (Value.payload (Value.Int 3)));
  ]

let gen_value =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        let base =
          oneof
            [
              return Value.Unit;
              map (fun b -> Value.Bool b) bool;
              map (fun i -> Value.Int i) small_signed_int;
              map (fun s -> Value.Str s) (string_size (int_range 0 4));
            ]
        in
        if size <= 1 then base
        else
          frequency
            [
              (3, base);
              ( 1,
                map2
                  (fun a b -> Value.Pair (a, b))
                  (self (size / 2)) (self (size / 2)) );
            ]))

let arb_value = QCheck.make gen_value ~print:Value.to_string

let prop name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb p)

let value_property_tests =
  [
    prop "compare reflexive" arb_value (fun v -> Value.compare v v = 0);
    prop "compare antisymmetric" (QCheck.pair arb_value arb_value)
      (fun (a, b) ->
        let c = Value.compare a b and c' = Value.compare b a in
        (c = 0 && c' = 0) || (c > 0 && c' < 0) || (c < 0 && c' > 0));
    prop "compare transitive"
      (QCheck.triple arb_value arb_value arb_value)
      (fun (a, b, c) ->
        let sorted = List.sort Value.compare [ a; b; c ] in
        match sorted with
        | [ x; y; z ] ->
            Value.compare x y <= 0 && Value.compare y z <= 0
            && Value.compare x z <= 0
        | _ -> false);
    prop "max is commutative and idempotent"
      (QCheck.pair arb_value arb_value) (fun (a, b) ->
        Value.equal (Value.max a b) (Value.max b a)
        && Value.equal (Value.max a a) a);
    prop "equal agrees with compare" (QCheck.pair arb_value arb_value)
      (fun (a, b) -> Value.equal a b = (Value.compare a b = 0));
  ]

(* --- Ids ----------------------------------------------------------- *)

let id_tests =
  [
    test "roundtrip" (fun () ->
        Alcotest.(check int) "obj" 42 Id.Obj.(to_int (of_int 42)));
    test "range" (fun () ->
        Alcotest.(check (list int))
          "range" [ 0; 1; 2 ]
          (List.map Id.Server.to_int (Id.Server.range 3)));
    test "set_of_list deduplicates" (fun () ->
        let s = Id.Client.set_of_list (List.map Id.Client.of_int [ 1; 1; 2 ]) in
        Alcotest.(check int) "card" 2 (Id.Client.Set.cardinal s));
  ]

(* --- Base object semantics ----------------------------------------- *)

let apply_tests =
  let open Base_object in
  [
    test "register read returns state" (fun () ->
        let state', resp = apply Register (Value.Int 3) Read in
        Alcotest.check value_t "state" (Value.Int 3) state';
        Alcotest.check value_t "resp" (Value.Int 3) resp);
    test "register write overwrites unconditionally" (fun () ->
        let state', resp = apply Register (Value.Int 9) (Write (Value.Int 1)) in
        Alcotest.check value_t "state" (Value.Int 1) state';
        Alcotest.check value_t "ack" Value.Unit resp);
    test "write-max keeps max" (fun () ->
        let state', _ =
          apply Max_register (Value.Int 9) (Max_write (Value.Int 1))
        in
        Alcotest.check value_t "state" (Value.Int 9) state';
        let state', _ =
          apply Max_register (Value.Int 9) (Max_write (Value.Int 12))
        in
        Alcotest.check value_t "state" (Value.Int 12) state');
    test "read-max returns state" (fun () ->
        let _, resp = apply Max_register (Value.Int 4) Max_read in
        Alcotest.check value_t "resp" (Value.Int 4) resp);
    test "CAS succeeds on expected match, returns old value" (fun () ->
        let state', resp =
          apply Cas (Value.Int 1)
            (Compare_and_swap { expected = Value.Int 1; desired = Value.Int 2 })
        in
        Alcotest.check value_t "state" (Value.Int 2) state';
        Alcotest.check value_t "old" (Value.Int 1) resp);
    test "CAS fails on mismatch, state unchanged" (fun () ->
        let state', resp =
          apply Cas (Value.Int 5)
            (Compare_and_swap { expected = Value.Int 1; desired = Value.Int 2 })
        in
        Alcotest.check value_t "state" (Value.Int 5) state';
        Alcotest.check value_t "old" (Value.Int 5) resp);
    test "kind mismatch rejected" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (apply Register Value.Unit Max_read);
             false
           with Invalid_argument _ -> true));
    test "is_mutator classification" (fun () ->
        Alcotest.(check bool) "write" true (is_mutator (Write Value.Unit));
        Alcotest.(check bool) "max-write" true (is_mutator (Max_write Value.Unit));
        Alcotest.(check bool)
          "cas" true
          (is_mutator
             (Compare_and_swap { expected = Value.Unit; desired = Value.Unit }));
        Alcotest.(check bool) "read" false (is_mutator Read);
        Alcotest.(check bool) "read-max" false (is_mutator Max_read));
    test "matches table" (fun () ->
        Alcotest.(check bool) "reg/read" true (matches Register Read);
        Alcotest.(check bool) "reg/max" false (matches Register Max_read);
        Alcotest.(check bool) "max/max" true (matches Max_register Max_read);
        Alcotest.(check bool)
          "cas/cas" true
          (matches Cas
             (Compare_and_swap { expected = Value.Unit; desired = Value.Unit })));
  ]

let apply_property_tests =
  [
    prop "write-max is monotone" (QCheck.pair arb_value arb_value)
      (fun (state, v) ->
        let state', _ = Base_object.apply Max_register state (Max_write v) in
        Value.compare state' state >= 0 && Value.compare state' v >= 0);
    prop "register write result is the written value" arb_value (fun v ->
        let state', _ = Base_object.apply Register Value.Unit (Write v) in
        Value.equal state' v);
    prop "CAS either installs desired or keeps state"
      (QCheck.triple arb_value arb_value arb_value)
      (fun (state, expected, desired) ->
        let state', old =
          Base_object.apply Cas state (Compare_and_swap { expected; desired })
        in
        Value.equal old state
        &&
        if Value.equal state expected then Value.equal state' desired
        else Value.equal state' state);
  ]

let suites =
  [
    ("objects:value", value_tests);
    ("objects:value-props", value_property_tests);
    ("objects:ids", id_tests);
    ("objects:semantics", apply_tests);
    ("objects:semantics-props", apply_property_tests);
  ]

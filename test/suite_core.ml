(* Tests for the layout (Section 3.3 / Figure 1) and Algorithm 2. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

let test name f = Alcotest.test_case name `Quick f
let params k f n = Params.make_exn ~k ~f ~n

(* --- Layout --------------------------------------------------------- *)

let layout_for p =
  let sim = Sim.create ~n:p.Params.n () in
  (sim, Layout.build sim p)

let layout_props p =
  let sim, layout = layout_for p in
  (* total size matches the upper-bound formula *)
  Alcotest.(check int)
    (Fmt.str "size at %a" Params.pp p)
    (Formulas.register_upper_bound p)
    (Layout.size layout);
  (* sets are pairwise disjoint *)
  let sets = List.init (Layout.num_sets layout) (Layout.set layout) in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then
            Array.iter
              (fun b ->
                if Array.exists (Id.Obj.equal b) sj then
                  Alcotest.failf "sets %d and %d share %a" i j Id.Obj.pp b)
              si)
        sets)
    sets;
  (* within a set, registers sit on pairwise distinct servers *)
  List.iter
    (fun s ->
      let servers =
        Array.to_list s |> List.map (Sim.delta sim)
        |> Id.Server.set_of_list
      in
      Alcotest.(check int)
        "distinct servers" (Array.length s)
        (Id.Server.Set.cardinal servers))
    sets;
  (* every set size within [2f+1, n] *)
  List.iter
    (fun s ->
      let len = Array.length s in
      if len < (2 * p.Params.f) + 1 || len > p.Params.n then
        Alcotest.failf "set size %d outside [2f+1=%d, n=%d]" len
          ((2 * p.Params.f) + 1)
          p.Params.n)
    sets;
  (* objects_on is consistent with delta *)
  List.iter
    (fun s ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            "delta matches" true
            (Id.Server.equal (Sim.delta sim b) s))
        (Layout.objects_on layout s))
    (Sim.servers sim)

let layout_tests =
  [
    test "figure 1 parameters: 25 registers in 5 disjoint sets" (fun () ->
        let p = params 5 2 6 in
        let _, layout = layout_for p in
        Alcotest.(check int) "sets" 5 (Layout.num_sets layout);
        Alcotest.(check int) "size" 25 (Layout.size layout);
        layout_props p);
    test "overflow set parameters" (fun () -> layout_props (params 5 2 10));
    test "minimum n" (fun () -> layout_props (params 4 1 3));
    test "saturated n" (fun () ->
        layout_props (params 3 2 (Formulas.saturation_n ~k:3 ~f:2)));
    test "writer slots map to sets by floor(slot/z)" (fun () ->
        let p = params 5 2 10 in
        (* z = 3: slots 0,1,2 -> set 0; slots 3,4 -> overflow set 1 *)
        let _, layout = layout_for p in
        List.iter
          (fun (slot, expect) ->
            Alcotest.(check int)
              (Fmt.str "slot %d" slot)
              expect
              (Layout.set_index_for_slot layout ~slot))
          [ (0, 0); (1, 0); (2, 0); (3, 1); (4, 1) ]);
    test "slot out of range rejected" (fun () ->
        let _, layout = layout_for (params 2 1 3) in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Layout.set_index_for_slot layout ~slot:2);
             false
           with Invalid_argument _ -> true));
    test "server count mismatch rejected" (fun () ->
        let sim = Sim.create ~n:4 () in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Layout.build sim (params 2 1 3));
             false
           with Invalid_argument _ -> true));
  ]

let gen_params =
  QCheck.Gen.(
    let* f = int_range 1 3 in
    let* k = int_range 1 8 in
    let* n = int_range ((2 * f) + 1) 15 in
    return (Params.make_exn ~k ~f ~n))

let arb_params =
  QCheck.make gen_params ~print:(fun p -> Fmt.str "%a" Params.pp p)

let layout_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"layout invariants hold for random params"
         ~count:200 arb_params (fun p ->
           layout_props p;
           true));
  ]

(* --- Algorithm 2 ----------------------------------------------------- *)

let run_seq ?(read_after_each = true) ?(rounds = 1) ?(seed = 1) p =
  match
    Regemu_workload.Scenario.write_sequential Algorithm2.factory p
      ~read_after_each ~rounds ~seed ()
  with
  | Ok r -> r
  | Error e ->
      Alcotest.failf "scenario failed: %a" Regemu_workload.Scenario.error_pp e

let check_reads_see_last_write (r : Regemu_workload.Scenario.result) =
  match Regemu_history.Ws_check.check_ws_safe r.history with
  | Regemu_history.Ws_check.Holds -> ()
  | v ->
      Alcotest.failf "WS-Safe should hold: %a" Regemu_history.Ws_check.verdict_pp
        v

let algorithm2_tests =
  [
    test "single writer, write then read" (fun () ->
        let p = params 1 1 3 in
        let r = run_seq p in
        check_reads_see_last_write r;
        (* the read observed the written value *)
        let reads = Regemu_history.History.reads r.history in
        match reads with
        | [ rd ] ->
            Alcotest.(check bool)
              "read w0.r1" true
              (rd.result = Some (Value.Str "w0.r1"))
        | _ -> Alcotest.fail "expected exactly one read");
    test "figure 1 configuration, 2 rounds of 5 writers" (fun () ->
        let p = params 5 2 6 in
        let r = run_seq ~rounds:2 p in
        check_reads_see_last_write r);
    test "object usage never exceeds the upper-bound formula" (fun () ->
        List.iter
          (fun p ->
            let r = run_seq ~rounds:2 ~read_after_each:false p in
            if r.objects_used > Formulas.register_upper_bound p then
              Alcotest.failf "%a: used %d > bound %d" Params.pp p
                r.objects_used
                (Formulas.register_upper_bound p))
          [ params 1 1 3; params 3 1 5; params 5 2 6; params 4 2 12 ]);
    test "writes return ack" (fun () ->
        let p = params 2 1 4 in
        let r = run_seq ~read_after_each:false p in
        List.iter
          (fun (w : Regemu_history.History.op) ->
            Alcotest.(check bool) "ack" true (w.result = Some Value.Unit))
          (Regemu_history.History.writes r.history));
    test "unregistered writer rejected" (fun () ->
        let p = params 1 1 3 in
        let sim, instance, _ = Regemu_workload.Scenario.setup Algorithm2.factory p in
        let stranger = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (instance.write stranger (Value.Int 1));
             false
           with Invalid_argument _ -> true));
    test "wrong writer count rejected" (fun () ->
        let p = params 2 1 3 in
        let sim = Sim.create ~n:3 () in
        let w = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Algorithm2.factory.make sim p ~writers:[ w ]);
             false
           with Invalid_argument _ -> true));
    test "a writer leaves at most f registers covered after each write"
      (fun () ->
        let p = params 3 2 8 in
        let sim, instance, writers =
          Regemu_workload.Scenario.setup Algorithm2.factory p
        in
        let policy = Policy.uniform (Rng.create 5) in
        List.iteri
          (fun slot w ->
            let call = instance.write w (Value.Str (Fmt.str "v%d" slot)) in
            ignore (Driver.finish_call_exn sim policy ~budget:50_000 call);
            let covered = Sim.covered_objects sim in
            if Id.Obj.Set.cardinal covered > p.Params.f * (slot + 1) then
              Alcotest.failf "after write %d: %d covered > %d" slot
                (Id.Obj.Set.cardinal covered)
                (p.Params.f * (slot + 1)))
          writers);
    test "read before any write returns v0" (fun () ->
        let p = params 1 1 3 in
        let sim, instance, _ = Regemu_workload.Scenario.setup Algorithm2.factory p in
        let reader = Sim.new_client sim in
        let call = instance.read reader in
        let v =
          Driver.finish_call_exn sim Policy.responds_first ~budget:10_000 call
        in
        Alcotest.(check bool) "v0" true (Value.equal v Value.v0));
  ]

let suites =
  [
    ("core:layout", layout_tests);
    ("core:layout-props", layout_property_tests);
    ("core:algorithm2", algorithm2_tests);
  ]

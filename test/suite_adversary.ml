(* Tests for the lower-bound machinery: epoch bookkeeping, Lemma 2
   invariants, the Lemma 1 construction, and the Figure 2 violation. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_adversary

let test name f = Alcotest.test_case name `Quick f
let params k f n = Params.make_exn ~k ~f ~n

(* --- Epoch_state unit tests ------------------------------------------- *)

let epoch_basic_tests =
  [
    test "fresh epoch has empty sets" (fun () ->
        let sim = Sim.create ~n:3 () in
        let f_set = Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ] in
        let st =
          Epoch_state.start sim ~f_set
            ~completed_clients:Id.Client.Set.empty
        in
        Epoch_state.advance st;
        Alcotest.(check int) "tri" 0 (Id.Obj.Set.cardinal (Epoch_state.tri st));
        Alcotest.(check int) "qi" 0 (Id.Server.Set.cardinal (Epoch_state.qi st));
        Alcotest.(check int) "f" 1 (Epoch_state.f_count st));
    test "trigger adds to Tri and Covi; respond moves to Rri" (fun () ->
        let sim = Sim.create ~n:3 () in
        let b = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c = Sim.new_client sim in
        let f_set = Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ] in
        let st =
          Epoch_state.start sim ~f_set ~completed_clients:Id.Client.Set.empty
        in
        let lid =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
            ~on_response:ignore
        in
        Epoch_state.advance st;
        Alcotest.(check int) "tri" 1 (Id.Obj.Set.cardinal (Epoch_state.tri st));
        Alcotest.(check int) "covi" 1 (Id.Obj.Set.cardinal (Epoch_state.covi st));
        Alcotest.(check int) "qi has s0" 1 (Id.Server.Set.cardinal (Epoch_state.qi st));
        Sim.fire sim (Sim.Respond lid);
        Epoch_state.advance st;
        Alcotest.(check int) "rri" 1 (Id.Obj.Set.cardinal (Epoch_state.rri st));
        Alcotest.(check int) "covi empty" 0 (Id.Obj.Set.cardinal (Epoch_state.covi st)));
    test "pre-epoch covered registers are excluded from Covi" (fun () ->
        let sim = Sim.create ~n:3 () in
        let b = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c = Sim.new_client sim in
        (* cover b before the epoch starts *)
        ignore
          (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        let f_set = Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ] in
        let st =
          Epoch_state.start sim ~f_set ~completed_clients:Id.Client.Set.empty
        in
        ignore
          (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 2))
             ~on_response:ignore);
        Epoch_state.advance st;
        Alcotest.(check int) "covi" 0 (Id.Obj.Set.cardinal (Epoch_state.covi st));
        Alcotest.(check int) "tri" 1 (Id.Obj.Set.cardinal (Epoch_state.tri st)));
    test "qi is sticky once delta(Covi)\\F exceeds f" (fun () ->
        let sim = Sim.create ~n:5 () in
        let bs =
          List.init 3 (fun i ->
              Sim.alloc sim ~server:(Id.Server.of_int i) Base_object.Register)
        in
        let c = Sim.new_client sim in
        let f_set = Id.Server.set_of_list [ Id.Server.of_int 3; Id.Server.of_int 4 ] in
        let st =
          Epoch_state.start sim ~f_set ~completed_clients:Id.Client.Set.empty
        in
        (* f = 1; cover three servers outside F one by one *)
        List.iter
          (fun b ->
            ignore
              (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
                 ~on_response:ignore))
          bs;
        Epoch_state.advance st;
        (* first covered server s0 froze into Qi *)
        Alcotest.(check (list int))
          "qi = {s0}" [ 0 ]
          (List.map Id.Server.to_int
             (Id.Server.Set.elements (Epoch_state.qi st))));
    test "blocked: completed clients' writes and Qi-server writes" (fun () ->
        let sim = Sim.create ~n:3 () in
        let b0 = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let old_client = Sim.new_client sim in
        let new_client = Sim.new_client sim in
        (* old covering write from before the epoch *)
        ignore
          (Sim.trigger sim ~client:old_client b0 (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        let f_set = Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ] in
        let st =
          Epoch_state.start sim ~f_set
            ~completed_clients:(Id.Client.set_of_list [ old_client ])
        in
        ignore
          (Sim.trigger sim ~client:new_client b0 (Base_object.Write (Value.Int 2))
             ~on_response:ignore);
        Epoch_state.advance st;
        let blocked_of cl =
          List.filter
            (fun (p : Sim.pending_info) -> Id.Client.equal p.client cl)
            (Sim.pending sim)
          |> List.map (Epoch_state.blocked st)
        in
        Alcotest.(check (list bool)) "old blocked (rule 1)" [ true ]
          (blocked_of old_client);
        (* b0 is on server s0 which is not newly covered (it was covered
           pre-epoch), hence not in Qi: the new write is NOT blocked *)
        Alcotest.(check (list bool)) "new unblocked" [ false ]
          (blocked_of new_client));
    test "reads are never blocked" (fun () ->
        let sim = Sim.create ~n:3 () in
        let b0 = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c = Sim.new_client sim in
        let f_set = Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ] in
        let st =
          Epoch_state.start sim ~f_set
            ~completed_clients:(Id.Client.set_of_list [ c ])
        in
        ignore (Sim.trigger sim ~client:c b0 Base_object.Read ~on_response:ignore);
        Epoch_state.advance st;
        List.iter
          (fun p ->
            Alcotest.(check bool) "read unblocked" false (Epoch_state.blocked st p))
          (Sim.pending sim));
  ]

(* --- Lemma 1 construction --------------------------------------------- *)

let check_lemma1 (p : Params.t) (run : Lowerbound.run) =
  List.iter
    (fun (s : Lowerbound.epoch_stats) ->
      (* Lemma 3: the write returned *)
      Alcotest.(check bool)
        (Fmt.str "epoch %d returned" s.epoch)
        true s.write_returned;
      (* Lemma 1(a): |Cov(t_i)| >= i*f *)
      if s.cov_total < s.epoch * p.f then
        Alcotest.failf "epoch %d: |Cov|=%d < i*f=%d" s.epoch s.cov_total
          (s.epoch * p.f);
      (* Lemma 1(b): no covered register on F *)
      Alcotest.(check int) (Fmt.str "epoch %d cov on F" s.epoch) 0 s.cov_on_f;
      (* Corollary 2: |Q_i| = f at the write's return *)
      Alcotest.(check int) (Fmt.str "epoch %d |Qi|" s.epoch) p.f s.q_size;
      (* Lemma 4: writes triggered on > 2f fresh servers *)
      if s.fresh_servers_triggered <= 2 * p.f then
        Alcotest.failf "epoch %d: fresh servers %d <= 2f" s.epoch
          s.fresh_servers_triggered;
      (* extended Lemma 1(d): newly covered registers on >= f servers *)
      if s.new_cov_servers < p.f then
        Alcotest.failf "epoch %d: new coverage on %d < f servers" s.epoch
          s.new_cov_servers;
      (* extended Lemma 1(e): coverage is monotone *)
      Alcotest.(check bool)
        (Fmt.str "epoch %d cov monotone" s.epoch)
        true s.cov_monotone;
      (* Theorem 8 hypothesis: point contention stays 1 *)
      Alcotest.(check int) "point contention" 1 s.point_contention;
      (* Lemma 2 invariants held throughout *)
      match s.lemma2_failure with
      | None -> ()
      | Some m -> Alcotest.failf "epoch %d: %s" s.epoch m)
    run.epochs;
  (* final coverage at least kf *)
  if run.final_cov < p.k * p.f then
    Alcotest.failf "final |Cov|=%d < kf=%d" run.final_cov (p.k * p.f)

let lb_param_grid =
  [ params 1 1 3; params 3 1 3; params 4 1 5; params 5 2 6; params 3 2 5;
    params 2 2 9; params 4 2 12 ]

let run_lb factory p seed =
  match Lowerbound.execute factory p ~seed () with
  | Ok run -> run
  | Error e -> Alcotest.failf "lower-bound run failed: %s" e

let lemma1_tests =
  List.map
    (fun p ->
      test
        (Fmt.str "Lemma 1 invariants vs algorithm2 at %a" Params.pp p)
        (fun () -> check_lemma1 p (run_lb Regemu_core.Algorithm2.factory p 42)))
    lb_param_grid
  @ [
      test "Lemma 1 invariants vs layered construction (n=2f+1)" (fun () ->
          let p = params 3 2 5 in
          check_lemma1 p (run_lb Regemu_baselines.Layered.factory p 17));
      test "coverage grows by exactly f per epoch for algorithm2" (fun () ->
          let p = params 5 2 6 in
          let run = run_lb Regemu_core.Algorithm2.factory p 1 in
          List.iter
            (fun (s : Lowerbound.epoch_stats) ->
              Alcotest.(check int)
                (Fmt.str "epoch %d total" s.epoch)
                (s.epoch * p.f) s.cov_total)
            run.epochs);
      test "adversarial usage respects Theorem 1's lower bound" (fun () ->
          (* the algorithm must use at least the Theorem 1 count *)
          List.iter
            (fun p ->
              let run = run_lb Regemu_core.Algorithm2.factory p 7 in
              if run.final_objects_used < Formulas.register_lower_bound p then
                Alcotest.failf "%a: used %d < lower bound %d" Params.pp p
                  run.final_objects_used
                  (Formulas.register_lower_bound p))
            lb_param_grid);
      test "F defaults to the last f+1 servers but any F works" (fun () ->
          let p = params 3 1 5 in
          let f_set =
            Id.Server.set_of_list [ Id.Server.of_int 0; Id.Server.of_int 2 ]
          in
          let run =
            match
              Lowerbound.execute Regemu_core.Algorithm2.factory p ~f_set
                ~seed:3 ()
            with
            | Ok r -> r
            | Error e -> Alcotest.failf "failed: %s" e
          in
          check_lemma1 p run);
      test "wrong |F| rejected" (fun () ->
          let p = params 2 2 5 in
          Alcotest.(check bool)
            "raises" true
            (try
               ignore
                 (Lowerbound.execute Regemu_core.Algorithm2.factory p
                    ~f_set:(Id.Server.set_of_list [ Id.Server.of_int 0 ])
                    ~seed:1 ());
               false
             with Invalid_argument _ -> true));
    ]

let lemma1_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"Lemma 1 invariants hold for random params and seeds"
         ~count:40
         (QCheck.make
            QCheck.Gen.(
              let* f = int_range 1 2 in
              let* k = int_range 1 4 in
              let* n = int_range ((2 * f) + 1) 10 in
              let* seed = int_range 0 100_000 in
              return (Params.make_exn ~k ~f ~n, seed))
            ~print:(fun (p, s) -> Fmt.str "%a seed=%d" Params.pp p s))
         (fun (p, seed) ->
           check_lemma1 p (run_lb Regemu_core.Algorithm2.factory p seed);
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"Lemma 1 holds for every choice of F (random F sets)"
         ~count:30
         (QCheck.make
            QCheck.Gen.(
              let* f = int_range 1 2 in
              let* k = int_range 1 3 in
              let* n = int_range ((2 * f) + 1) 8 in
              let* seed = int_range 0 100_000 in
              (* pick f+1 distinct servers at random *)
              let* perm = shuffle_l (List.init n Fun.id) in
              let f_servers =
                List.filteri (fun i _ -> i <= f) perm
                |> List.map Id.Server.of_int
              in
              return (Params.make_exn ~k ~f ~n, seed, f_servers))
            ~print:(fun (p, s, fs) ->
              Fmt.str "%a seed=%d F={%a}" Params.pp p s
                Fmt.(list ~sep:comma Id.Server.pp)
                fs))
         (fun (p, seed, f_servers) ->
           let f_set = Id.Server.set_of_list f_servers in
           match
             Lowerbound.execute Regemu_core.Algorithm2.factory p ~f_set ~seed
               ()
           with
           | Error e -> QCheck.Test.fail_reportf "%s" e
           | Ok run ->
               check_lemma1 p run;
               true));
  ]

(* --- Theorem 8: no adaptivity to point contention ---------------------- *)

(* --- Theorem 6: per-server covering at n = 2f+1 ------------------------ *)

let theorem6_tests =
  [
    test "every server outside F accumulates k covered registers" (fun () ->
        let k = 4 and f = 2 in
        let p = params k f ((2 * f) + 1) in
        let run = run_lb Regemu_core.Algorithm2.factory p 21 in
        List.iter
          (fun (s, covered) ->
            if Id.Server.Set.mem s run.f_set then
              Alcotest.(check int)
                (Fmt.str "%a in F" Id.Server.pp s)
                0 covered
            else
              Alcotest.(check int)
                (Fmt.str "%a outside F" Id.Server.pp s)
                k covered)
          run.final_cov_per_server);
    test "theorem6_adversarial report is well-formed" (fun () ->
        match Regemu_harness.Theorems.theorem6_adversarial ~k:3 ~f:1 ~seed:2 with
        | Error e -> Alcotest.failf "failed: %s" e
        | Ok r ->
            Alcotest.(check int) "rows = n" 3 (List.length r.rows);
            (* servers not in F show k covered *)
            List.iter
              (fun row ->
                match (List.nth row 1, List.nth row 2) with
                | "no", covered -> Alcotest.(check string) "k" "3" covered
                | "yes", covered -> Alcotest.(check string) "0" "0" covered
                | _ -> Alcotest.fail "unexpected row")
              r.rows);
  ]

let theorem8_tests =
  [
    test "resource use grows with writes while point contention stays 1"
      (fun () ->
        let p = params 6 1 14 in
        let run = run_lb Regemu_core.Algorithm2.factory p 9 in
        let covs = List.map (fun (s : Lowerbound.epoch_stats) -> s.cov_total) run.epochs in
        (* coverage strictly increases epoch over epoch *)
        let rec strictly_increasing = function
          | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone coverage" true (strictly_increasing covs);
        List.iter
          (fun (s : Lowerbound.epoch_stats) ->
            Alcotest.(check int) "pc" 1 s.point_contention)
          run.epochs);
  ]

(* --- Figure 2 / Lemma 4 violation -------------------------------------- *)

let violation_tests =
  [
    test "naive 2f+1-register algorithm violates WS-Safety (f=1)" (fun () ->
        match Violation.against_naive ~f:1 with
        | Error e -> Alcotest.failf "construction failed: %s" e
        | Ok o -> (
            Alcotest.(check bool)
              "stale value read" true
              (Value.equal o.read_value (Value.Str "v1"));
            match o.verdict with
            | Regemu_history.Ws_check.Violated _ -> ()
            | v ->
                Alcotest.failf "expected violation, got %a"
                  Regemu_history.Ws_check.verdict_pp v));
    test "violation scales to any f" (fun () ->
        List.iter
          (fun f ->
            match Violation.against_naive ~f with
            | Error e -> Alcotest.failf "f=%d: %s" f e
            | Ok o -> (
                match o.verdict with
                | Regemu_history.Ws_check.Violated _ -> ()
                | v ->
                    Alcotest.failf "f=%d: expected violation, got %a" f
                      Regemu_history.Ws_check.verdict_pp v))
          [ 1; 2; 3; 4 ]);
    test "the same schedule cannot break algorithm2 (covering discipline)"
      (fun () ->
        (* drive algorithm2 adversarially through the whole Lemma 1 run
           and then read: the value must be the last written one *)
        let p = params 2 1 3 in
        match Lowerbound.execute Regemu_core.Algorithm2.factory p ~seed:5 () with
        | Error e -> Alcotest.failf "run failed: %s" e
        | Ok _ -> (
            (* re-run, then issue a read under a fair policy and check *)
            let sim = Sim.create ~n:p.n () in
            let writers = List.init p.k (fun _ -> Sim.new_client sim) in
            let instance =
              Regemu_core.Algorithm2.factory.make sim p ~writers
            in
            let policy = Policy.uniform (Rng.create 11) in
            List.iteri
              (fun i w ->
                ignore
                  (Driver.finish_call_exn sim policy ~budget:50_000
                     (instance.write w (Value.Str (Fmt.str "v%d" i)))))
              writers;
            let reader = Sim.new_client sim in
            let rd =
              Driver.finish_call_exn sim policy ~budget:50_000
                (instance.read reader)
            in
            match rd with
            | Value.Str "v1" -> ()
            | v -> Alcotest.failf "read %a instead of v1" Value.pp v));
    test "narration is non-empty and ends with the violation" (fun () ->
        match Violation.against_naive ~f:2 with
        | Error e -> Alcotest.failf "construction failed: %s" e
        | Ok o ->
            Alcotest.(check bool) "has steps" true (List.length o.steps >= 5));
  ]

let suites =
  [
    ("adversary:epoch-state", epoch_basic_tests);
    ("adversary:lemma1", lemma1_tests);
    ("adversary:lemma1-props", lemma1_property_tests);
    ("adversary:theorem6", theorem6_tests);
    ("adversary:theorem8", theorem8_tests);
    ("adversary:violation", violation_tests);
  ]
